package blmr_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benchmarks for the design choices called out in DESIGN.md and
// wall-clock benchmarks of the real-concurrency engine. Simulated-cluster
// benchmarks report virtual job completion seconds as "vsec/job" alongside
// the usual wall-clock ns/op of running the simulation itself.

import (
	"testing"

	"blmr/internal/apps"
	"blmr/internal/harness"
	"blmr/internal/mr"
	"blmr/internal/simmr"
	"blmr/internal/store"
	"blmr/internal/workload"
)

// benchRun executes a RunSpec b.N times, reporting virtual completion time.
func benchRun(b *testing.B, spec harness.RunSpec) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		res := harness.Run(spec)
		if res.Failed && spec.HeapBudgetMB == 0 {
			b.Fatalf("job failed: %s", res.FailReason)
		}
		last = res.Completion
	}
	b.ReportMetric(last, "vsec/job")
}

// --- Figure 4: WordCount progress, 3GB -------------------------------------

func BenchmarkFig4WordCount3GB_Barrier(b *testing.B) {
	ds := harness.WordCountData(3)
	benchRun(b, harness.RunSpec{App: apps.WordCount(), Data: ds, Mode: simmr.Barrier,
		Reducers: 60, Costs: harness.CalibWordCount})
}

func BenchmarkFig4WordCount3GB_Pipelined(b *testing.B) {
	ds := harness.WordCountData(3)
	benchRun(b, harness.RunSpec{App: apps.WordCount(), Data: ds, Mode: simmr.Pipelined,
		Reducers: 60, Costs: harness.CalibWordCount})
}

// --- Figure 5: memory management under a 1400MB heap -----------------------

func BenchmarkFig5SpillMerge16GB(b *testing.B) {
	ds := harness.WordCountData(16)
	benchRun(b, harness.RunSpec{App: apps.WordCount(), Data: ds, Mode: simmr.Pipelined,
		Reducers: 10, Store: store.SpillMerge, SpillThresholdMB: 240,
		HeapBudgetMB: 1400, Costs: harness.CalibWordCount})
}

func BenchmarkFig5InMemoryOOM16GB(b *testing.B) {
	ds := harness.WordCountData(16)
	for i := 0; i < b.N; i++ {
		res := harness.Run(harness.RunSpec{App: apps.WordCount(), Data: ds,
			Mode: simmr.Pipelined, Reducers: 10, Store: store.InMemory,
			HeapBudgetMB: 1400, Costs: harness.CalibWordCount})
		if !res.Failed {
			b.Fatal("expected OOM")
		}
	}
}

// --- Figure 6: one benchmark per panel at a representative point ------------

func fig6Bench(b *testing.B, app apps.App, ds harness.Dataset, costs simmr.CostModel, mode simmr.Mode, reducers int) {
	b.Helper()
	benchRun(b, harness.RunSpec{App: app, Data: ds, Mode: mode, Reducers: reducers, Costs: costs})
}

func BenchmarkFig6Sort8GB_Barrier(b *testing.B) {
	fig6Bench(b, apps.Sort(), harness.SortData(8), harness.CalibSort, simmr.Barrier, 60)
}
func BenchmarkFig6Sort8GB_Pipelined(b *testing.B) {
	fig6Bench(b, apps.Sort(), harness.SortData(8), harness.CalibSort, simmr.Pipelined, 60)
}
func BenchmarkFig6WordCount8GB_Barrier(b *testing.B) {
	fig6Bench(b, apps.WordCount(), harness.WordCountData(8), harness.CalibWordCount, simmr.Barrier, 60)
}
func BenchmarkFig6WordCount8GB_Pipelined(b *testing.B) {
	fig6Bench(b, apps.WordCount(), harness.WordCountData(8), harness.CalibWordCount, simmr.Pipelined, 60)
}
func BenchmarkFig6KNN8GB_Barrier(b *testing.B) {
	ds, exp := harness.KNNData(8)
	fig6Bench(b, apps.KNN(10, exp), ds, harness.CalibKNN, simmr.Barrier, 60)
}
func BenchmarkFig6KNN8GB_Pipelined(b *testing.B) {
	ds, exp := harness.KNNData(8)
	fig6Bench(b, apps.KNN(10, exp), ds, harness.CalibKNN, simmr.Pipelined, 60)
}
func BenchmarkFig6LastFM8GB_Barrier(b *testing.B) {
	fig6Bench(b, apps.LastFM(), harness.LastFMData(8), harness.CalibLastFM, simmr.Barrier, 60)
}
func BenchmarkFig6LastFM8GB_Pipelined(b *testing.B) {
	fig6Bench(b, apps.LastFM(), harness.LastFMData(8), harness.CalibLastFM, simmr.Pipelined, 60)
}
func BenchmarkFig6GA150_Barrier(b *testing.B) {
	fig6Bench(b, apps.GA(200), harness.GAData(150), harness.CalibGA, simmr.Barrier, 40)
}
func BenchmarkFig6GA150_Pipelined(b *testing.B) {
	fig6Bench(b, apps.GA(200), harness.GAData(150), harness.CalibGA, simmr.Pipelined, 40)
}
func BenchmarkFig6BlackScholes100_Barrier(b *testing.B) {
	fig6Bench(b, apps.BlackScholes(harness.BSPaperParams()), harness.BSData(100), harness.CalibBS, simmr.Barrier, 1)
}
func BenchmarkFig6BlackScholes100_Pipelined(b *testing.B) {
	fig6Bench(b, apps.BlackScholes(harness.BSPaperParams()), harness.BSData(100), harness.CalibBS, simmr.Pipelined, 1)
}

// --- Figure 7: derived from Figure 6; benchmark the box-plot computation ----

func BenchmarkFig7Improvements(b *testing.B) {
	sw := harness.Fig6WordCount([]float64{2, 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = harness.Improvements(sw.Series[0], sw.Series[1])
	}
}

// --- Figure 8: GA reducer sweep; benchmark the second-wave case -------------

func BenchmarkFig8GA70Reducers_Barrier(b *testing.B) {
	fig6Bench(b, apps.GA(200), harness.GAData(150), harness.CalibGA, simmr.Barrier, 70)
}
func BenchmarkFig8GA70Reducers_Pipelined(b *testing.B) {
	fig6Bench(b, apps.GA(200), harness.GAData(150), harness.CalibGA, simmr.Pipelined, 70)
}

// --- Figures 9/10: memory-management techniques, 16GB, 30 reducers ----------

func fig9Bench(b *testing.B, kind store.Kind) {
	b.Helper()
	ds := harness.WordCountData(16)
	benchRun(b, harness.RunSpec{App: apps.WordCount(), Data: ds, Mode: simmr.Pipelined,
		Reducers: 30, Store: kind, SpillThresholdMB: 240, KVCacheMB: 512,
		Costs: harness.CalibWordCount})
}

func BenchmarkFig9Barrier(b *testing.B) {
	ds := harness.WordCountData(16)
	benchRun(b, harness.RunSpec{App: apps.WordCount(), Data: ds, Mode: simmr.Barrier,
		Reducers: 30, Costs: harness.CalibWordCount})
}
func BenchmarkFig9InMemory(b *testing.B)   { fig9Bench(b, store.InMemory) }
func BenchmarkFig9SpillMerge(b *testing.B) { fig9Bench(b, store.SpillMerge) }
func BenchmarkFig9KVStore(b *testing.B)    { fig9Bench(b, store.KV) }

// --- Tables ------------------------------------------------------------------

func BenchmarkTable1Measurement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := harness.Table1(); len(rows) != 7 {
			b.Fatal("bad table1")
		}
	}
}

func BenchmarkTable2LoCCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md design choices) ------------------------------------

// AblationChunkSize varies the pipelined shuffle's transfer granularity.
func BenchmarkAblationChunkSize(b *testing.B) {
	for _, mb := range []int64{1, 4, 16} {
		mb := mb
		b.Run(sizeName(mb), func(b *testing.B) {
			ds := harness.WordCountData(8)
			cl := harness.PaperCluster()
			cl.TransferChunkBytes = mb << 20
			benchRun(b, harness.RunSpec{App: apps.WordCount(), Data: ds,
				Mode: simmr.Pipelined, Reducers: 60, Costs: harness.CalibWordCount,
				Cluster: cl})
		})
	}
}

func sizeName(mb int64) string {
	switch mb {
	case 1:
		return "1MB"
	case 4:
		return "4MB"
	default:
		return "16MB"
	}
}

// AblationSpillThreshold varies Figure 5(b)'s 240MB partial-result budget.
func BenchmarkAblationSpillThreshold(b *testing.B) {
	for _, th := range []int{60, 240, 960} {
		th := th
		b.Run(thName(th), func(b *testing.B) {
			ds := harness.WordCountData(16)
			benchRun(b, harness.RunSpec{App: apps.WordCount(), Data: ds,
				Mode: simmr.Pipelined, Reducers: 10, Store: store.SpillMerge,
				SpillThresholdMB: th, Costs: harness.CalibWordCount})
		})
	}
}

func thName(th int) string {
	switch th {
	case 60:
		return "60MB"
	case 240:
		return "240MB"
	default:
		return "960MB"
	}
}

// AblationReplication varies the DFS replication factor (output pipeline
// depth).
func BenchmarkAblationReplication(b *testing.B) {
	for _, repl := range []int{1, 3} {
		repl := repl
		name := "r1"
		if repl == 3 {
			name = "r3"
		}
		b.Run(name, func(b *testing.B) {
			ds := harness.WordCountData(8)
			benchRun(b, harness.RunSpec{App: apps.WordCount(), Data: ds,
				Mode: simmr.Pipelined, Reducers: 60, Costs: harness.CalibWordCount,
				Replication: repl})
		})
	}
}

// AblationFetchParallelism varies Hadoop's parallel-copies knob in the
// barrier shuffle.
func BenchmarkAblationFetchParallelism(b *testing.B) {
	for _, par := range []int{1, 5, 20} {
		par := par
		name := map[int]string{1: "p1", 5: "p5", 20: "p20"}[par]
		b.Run(name, func(b *testing.B) {
			ds := harness.WordCountData(8)
			benchRun(b, harness.RunSpec{App: apps.WordCount(), Data: ds,
				Mode: simmr.Barrier, Reducers: 60, Costs: harness.CalibWordCount,
				FetchParallelism: par})
		})
	}
}

// --- Wall-clock benchmarks of the real-concurrency engine --------------------

func mrJob(app apps.App) mr.Job {
	return mr.Job{Name: app.Name, Mapper: app.Mapper, NewGroup: app.NewGroup,
		NewStream: app.NewStream, Merger: app.Merger}
}

func BenchmarkMRWordCount_Barrier(b *testing.B) {
	input := workload.Text(1, 20000, 5000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mr.Run(mrJob(apps.WordCount()), input, mr.Options{Mode: mr.Barrier, Mappers: 4, Reducers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMRWordCount_Pipelined(b *testing.B) {
	input := workload.Text(1, 20000, 5000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mr.Run(mrJob(apps.WordCount()), input, mr.Options{Mode: mr.Pipelined, Mappers: 4, Reducers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// The unbatched (BatchSize=1) variant is the original record-at-a-time
// shuffle, kept as the perf-trajectory baseline; the combiner variant is
// the full WordCount fast path (see internal/mr/mr_bench_test.go for the
// 1M-record versions).
func BenchmarkMRWordCount_PipelinedUnbatched(b *testing.B) {
	input := workload.Text(1, 20000, 5000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// QueueCap 1024 restores the pre-batching engine's per-reducer
		// record buffer (QueueCap now counts batches).
		if _, err := mr.Run(mrJob(apps.WordCount()), input, mr.Options{Mode: mr.Pipelined, Mappers: 4, Reducers: 4, BatchSize: 1, QueueCap: 1024}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMRWordCount_PipelinedCombiner(b *testing.B) {
	input := workload.Text(1, 20000, 5000, 10)
	job := mrJob(apps.WordCount())
	job.Combiner = job.Merger
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mr.Run(job, input, mr.Options{Mode: mr.Pipelined, Mappers: 4, Reducers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMRSort_Barrier(b *testing.B) {
	input := workload.UniformKeys(2, 100000, 1<<40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mr.Run(mrJob(apps.Sort()), input, mr.Options{Mode: mr.Barrier, Mappers: 4, Reducers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMRSort_Pipelined(b *testing.B) {
	input := workload.UniformKeys(2, 100000, 1<<40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mr.Run(mrJob(apps.Sort()), input, mr.Options{Mode: mr.Pipelined, Mappers: 4, Reducers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// AblationCombiner measures the map-side combiner's effect on WordCount.
func BenchmarkAblationCombiner(b *testing.B) {
	for _, on := range []bool{false, true} {
		on := on
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			ds := harness.WordCountData(8)
			var last float64
			for i := 0; i < b.N; i++ {
				e := simmr.NewEngine(simmr.Config{
					Cluster: harness.PaperCluster(), Replication: 3,
					ByteScale: ds.ByteScale, RecordScale: ds.RecordScale, FailMapTask: -1,
				})
				f := e.Ingest("in", ds.Splits)
				app := apps.WordCount()
				job := simmr.JobSpec{Name: app.Name, Mapper: app.Mapper,
					NewGroup: app.NewGroup, NewStream: app.NewStream, Merger: app.Merger,
					Reducers: 60, Mode: simmr.Pipelined, Costs: harness.CalibWordCount}
				if on {
					job.Combiner = app.Merger
				}
				res := e.Run(job, f)
				last = res.Completion
			}
			b.ReportMetric(last, "vsec/job")
		})
	}
}

// BenchmarkMemoization compares a cold run against a fully memoized rerun.
func BenchmarkMemoization(b *testing.B) {
	ds := harness.WordCountData(4)
	app := apps.WordCount()
	run := func(memo *simmr.MemoCache) float64 {
		e := simmr.NewEngine(simmr.Config{
			Cluster: harness.PaperCluster(), Replication: 3,
			ByteScale: ds.ByteScale, RecordScale: ds.RecordScale,
			FailMapTask: -1, Memo: memo,
		})
		f := e.Ingest("in", ds.Splits)
		return e.Run(simmr.JobSpec{Name: app.Name, Mapper: app.Mapper,
			NewGroup: app.NewGroup, NewStream: app.NewStream, Merger: app.Merger,
			Reducers: 60, Mode: simmr.Pipelined, Costs: harness.CalibWordCount}, f).Completion
	}
	b.Run("cold", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			last = run(simmr.NewMemoCache())
		}
		b.ReportMetric(last, "vsec/job")
	})
	b.Run("warm", func(b *testing.B) {
		memo := simmr.NewMemoCache()
		run(memo) // prime
		var last float64
		for i := 0; i < b.N; i++ {
			last = run(memo)
		}
		b.ReportMetric(last, "vsec/job")
	})
}

// --- Worker-churn recovery (simulated prediction for the parity band) -------

// benchFaultPrediction reports the simulator's predicted recovery overhead
// for losing one of three workers at 40% of the job — the prediction the
// real-engine parity test and the ClusterRecovery wall-clock benchmarks are
// compared against (within harness.FaultTolerance).
func benchFaultPrediction(b *testing.B, mode simmr.Mode) {
	b.Helper()
	var est harness.FaultEstimate
	for i := 0; i < b.N; i++ {
		est = harness.FaultPrediction(1, 3, 0.4, mode)
	}
	b.ReportMetric(est.Killed, "vsec/job")
	b.ReportMetric(est.Overhead*100, "overhead%")
}

func BenchmarkFaultPredicted3Workers_Barrier(b *testing.B) {
	benchFaultPrediction(b, simmr.Barrier)
}

func BenchmarkFaultPredicted3Workers_Pipelined(b *testing.B) {
	benchFaultPrediction(b, simmr.Pipelined)
}
