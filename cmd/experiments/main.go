// Command experiments regenerates every table and figure of the paper's
// evaluation on the simulated cluster and prints the textual equivalents.
//
// Usage:
//
//	experiments            # run everything
//	experiments -only fig6b,fig9,table2
//	experiments -quick     # smaller sweeps for a fast smoke run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"blmr/internal/harness"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (fig4, fig5, fig6a..fig6f, fig7, fig8, fig9, fig10, hetero, table1, table2)")
	quick := flag.Bool("quick", false, "use reduced sweeps")
	flag.Parse()

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	sizes := harness.PaperSizesGB()
	gaMappers := harness.PaperGAMappers()
	bsMappers := harness.PaperBSMappers()
	fig8R := harness.PaperFig8Reducers()
	fig9R := harness.PaperFig9Reducers()
	fig10S := harness.PaperFig10Sizes()
	if *quick {
		sizes = []float64{2, 8}
		gaMappers = []float64{50, 150}
		bsMappers = []float64{25, 100}
		fig8R = []float64{40, 60, 70}
		fig9R = []float64{10, 30, 60}
		fig10S = []float64{4, 16, 24}
	}

	section := func(id string, fn func() string) {
		if !want(id) {
			return
		}
		fmt.Println(strings.Repeat("=", 78))
		fmt.Println(fn())
	}

	section("fig4", func() string { return harness.Fig4().Render() })
	section("fig5", func() string { return harness.Fig5().Render() })
	section("fig6a", func() string { return report(harness.Fig6Sort(sizes)) })
	section("fig6b", func() string { return report(harness.Fig6WordCount(sizes)) })
	section("fig6c", func() string { return report(harness.Fig6KNN(sizes)) })
	section("fig6d", func() string { return report(harness.Fig6LastFM(sizes)) })
	section("fig6e", func() string { return report(harness.Fig6GA(gaMappers)) })
	section("fig6f", func() string { return report(harness.Fig6BlackScholes(bsMappers)) })
	section("fig7", func() string { return harness.Fig7().Render() })
	section("fig8", func() string { return report(harness.Fig8(fig8R)) })
	section("fig9", func() string { return report(harness.Fig9(fig9R)) })
	section("fig10", func() string { return report(harness.Fig10(fig10S)) })
	section("hetero", func() string { return harness.RenderHetero(harness.ExpHeterogeneity(harness.HeteroSpreads())) })
	section("table1", func() string { return harness.RenderTable1(harness.Table1()) })
	section("table2", func() string {
		rows, err := harness.Table2()
		if err != nil {
			fmt.Fprintln(os.Stderr, "table2:", err)
			os.Exit(1)
		}
		return harness.RenderTable2(rows)
	})
}

// report renders a sweep plus its mean improvement line.
func report(sw harness.Sweep) string {
	out := sw.Render()
	if len(sw.Series) == 2 {
		out += fmt.Sprintf("mean improvement of %s over %s: %.1f%%\n",
			sw.Series[1].Label, sw.Series[0].Label,
			harness.MeanImprovement(sw.Series[0], sw.Series[1]))
	}
	return out
}
