// Command blmr runs a single MapReduce application on the simulated
// cluster in either execution mode, printing completion time, stage
// bounds, and memory behaviour — a workbench for exploring the barrier-less
// framework beyond the canned experiments.
//
// Usage:
//
//	blmr -app wordcount -size 8 -mode pipelined -store spill -reducers 40
//	blmr -app blackscholes -mappers 100 -mode barrier
//	blmr -app wordcount -size 4 -timeline
package main

import (
	"flag"
	"fmt"
	"os"

	"blmr/internal/apps"
	"blmr/internal/harness"
	"blmr/internal/metrics"
	"blmr/internal/simmr"
	"blmr/internal/store"
)

func main() {
	appName := flag.String("app", "wordcount", "application: grep|sort|wordcount|knn|lastfm|ga|blackscholes")
	sizeGB := flag.Float64("size", 4, "input size in (virtual) GB for size-driven apps")
	mappers := flag.Int("mappers", 100, "mapper count for ga/blackscholes")
	mode := flag.String("mode", "pipelined", "barrier|pipelined")
	storeKind := flag.String("store", "memory", "partial-result store: memory|spill|kv")
	reducers := flag.Int("reducers", 60, "number of reduce tasks")
	heapMB := flag.Int("heap", 0, "per-reducer heap cap in MB (0 = unlimited)")
	spillMB := flag.Int("spill", 240, "spill threshold in MB for -store spill")
	spillBytes := flag.Int64("spill-bytes", 0, "per-task intermediate buffer budget in bytes: map outputs spill to sorted runs and reducers merge externally (0 = all in RAM)")
	timeline := flag.Bool("timeline", false, "print the task-count timeline")
	speculative := flag.Bool("speculative", false, "enable speculative map execution")
	combine := flag.Bool("combine", false, "enable the map-side combiner (aggregation-class apps only; uses the app's merger)")
	snapshot := flag.Float64("snapshot", 0, "pipelined progress snapshot period in virtual seconds (0 = off)")
	flag.Parse()

	var app apps.App
	var ds harness.Dataset
	var costs simmr.CostModel
	switch *appName {
	case "grep":
		app, ds, costs = apps.Grep("word00042"), harness.WordCountData(*sizeGB), harness.CalibWordCount
	case "sort":
		app, ds, costs = apps.Sort(), harness.SortData(*sizeGB), harness.CalibSort
	case "wordcount":
		app, ds, costs = apps.WordCount(), harness.WordCountData(*sizeGB), harness.CalibWordCount
	case "knn":
		var exp []uint64
		ds, exp = harness.KNNData(*sizeGB)
		app, costs = apps.KNN(10, exp), harness.CalibKNN
	case "lastfm":
		app, ds, costs = apps.LastFM(), harness.LastFMData(*sizeGB), harness.CalibLastFM
	case "ga":
		app, ds, costs = apps.GA(200), harness.GAData(*mappers), harness.CalibGA
	case "blackscholes":
		app, ds, costs = apps.BlackScholes(harness.BSPaperParams()), harness.BSData(*mappers), harness.CalibBS
		*reducers = 1
	default:
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *appName)
		os.Exit(2)
	}

	m := simmr.Pipelined
	if *mode == "barrier" {
		m = simmr.Barrier
	}
	var kind store.Kind
	switch *storeKind {
	case "memory":
		kind = store.InMemory
	case "spill":
		kind = store.SpillMerge
	case "kv":
		kind = store.KV
	default:
		fmt.Fprintf(os.Stderr, "unknown store %q\n", *storeKind)
		os.Exit(2)
	}

	res := harness.Run(harness.RunSpec{
		App: app, Data: ds, Mode: m, Reducers: *reducers, Store: kind,
		Costs: costs, HeapBudgetMB: *heapMB, SpillThresholdMB: *spillMB, KVCacheMB: 512,
		SpillBytes:  *spillBytes,
		Speculative: *speculative, Combine: *combine, SnapshotPeriod: *snapshot,
	})

	fmt.Printf("app=%s mode=%s store=%s reducers=%d\n", app.Name, m, kind, *reducers)
	fmt.Printf("completion: %.1fs  (map outputs ready: %.1fs)\n", res.Completion, res.MapOutputsReady)
	if res.Failed {
		fmt.Printf("JOB FAILED: %s\n", res.FailReason)
	}
	fmt.Printf("map tasks: %d (retries %d, backups %d/%d won)  output records: %d  spills: %d  peak partials: %d MB  shuffle: %d MB\n",
		res.MapTasks, res.MapRetries, res.BackupsWon, res.BackupsLaunched, len(res.Output), res.Spills, res.PeakMemVirt>>20, res.ShuffleBytes>>20)
	if *spillBytes > 0 {
		fmt.Printf("external shuffle: budget %d KB, %d map-side spill runs\n", *spillBytes>>10, res.SpillRuns)
	}
	if len(res.Snapshots) > 0 {
		fmt.Printf("progress snapshots: %d (first %.1fs, last %.1fs)\n",
			len(res.Snapshots), res.Snapshots[0].T, res.Snapshots[len(res.Snapshots)-1].T)
	}
	for _, st := range []metrics.Stage{metrics.StageMap, metrics.StageShuffle, metrics.StageSort, metrics.StageReduce, metrics.StageOutput} {
		if first, last, ok := res.Metrics.StageBounds(st); ok {
			fmt.Printf("  %-8s %8.1fs .. %8.1fs\n", st, first, last)
		}
	}
	if *timeline {
		step := res.Completion / 40
		fmt.Println(metrics.RenderTimeline(res.Metrics,
			[]metrics.Stage{metrics.StageMap, metrics.StageShuffle, metrics.StageSort, metrics.StageReduce, metrics.StageOutput}, step))
	}
}
