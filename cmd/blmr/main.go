// Command blmr runs a single MapReduce application on any of the three
// engines:
//
//   - the simulated cluster (default): virtual time/memory, the paper's
//     testbed shape;
//   - the real-concurrency in-process engine (-transport inproc|spill|tcp):
//     wall-clock execution with the chosen shuffle transport;
//   - the multi-process cluster engine (-workers N -transport tcp): N
//     worker subprocesses register with a coordinator, exchange sealed
//     spill runs through per-worker loopback TCP run-servers, and return
//     reduce outputs over the control connection.
//
// Usage:
//
//	blmr -app wordcount -size 8 -mode pipelined -store spill -reducers 40
//	blmr -app blackscholes -mappers 100 -mode barrier
//	blmr -app wordcount -size 4 -timeline
//	blmr -app wordcount -transport tcp -verify          # real engine, loopback TCP shuffle
//	blmr -app sort -workers 3 -transport tcp -verify    # 3 worker subprocesses
//	blmr -app wordcount -workers 8                      # simulator, 8-worker sub-cluster
//
// -verify re-runs the job on the single-process in-memory path and checks
// the outputs match (byte-identical in barrier mode).
//
// The multi-process engine also runs as a durable multi-job service:
//
//	blmr -serve -workers 3 -state-dir DIR    # journal every admitted job
//	blmr -submit -addr HOST:PORT ...         # stream submissions to it
//	blmr -serve -workers 3 -state-dir DIR -resume
//	blmr -state-dir DIR -journal-stat        # read-only journal summary
//
// -resume rebinds the coordinator address journaled in DIR/coord.addr
// (the dead service's workers survive and re-dial it), waits for them to
// re-register, replays the job journal, runs every unfinished job —
// re-attaching journaled map outputs whose sealed runs the returning
// workers still hold — verifies each against the in-process reference,
// and exits non-zero on any mismatch.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"blmr/internal/apps"
	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/harness"
	"blmr/internal/metrics"
	"blmr/internal/mpexec"
	"blmr/internal/mr"
	"blmr/internal/shuffle"
	"blmr/internal/simmr"
	"blmr/internal/store"
)

func main() {
	appName := flag.String("app", "wordcount", "application: grep|sort|wordcount|knn|lastfm|ga|blackscholes")
	sizeGB := flag.Float64("size", 4, "input size in (virtual) GB for size-driven apps")
	mappers := flag.Int("mappers", 100, "mapper count for ga/blackscholes")
	mode := flag.String("mode", "pipelined", "barrier|pipelined")
	storeKind := flag.String("store", "memory", "partial-result store: memory|spill|kv")
	reducers := flag.Int("reducers", 60, "number of reduce tasks")
	heapMB := flag.Int("heap", 0, "per-reducer heap cap in MB (0 = unlimited)")
	spillMB := flag.Int("spill", 240, "spill threshold in MB for -store spill")
	spillBytes := flag.Int64("spill-bytes", 0, "per-task intermediate buffer budget in bytes: map outputs spill to sorted runs and reducers merge externally (0 = all in RAM)")
	timeline := flag.Bool("timeline", false, "print the task-count timeline")
	speculative := flag.Bool("speculative", false, "enable speculative map execution (simulator and multi-process cluster)")
	specThreshold := flag.Float64("spec-threshold", 0, "completed map fraction before speculative clones launch (0 = default 0.75)")
	heartbeat := flag.Duration("heartbeat", 0, "cluster worker heartbeat interval (0 = default 1s); a worker silent for 4 intervals is declared dead")
	chaosKill := flag.Duration("chaos-kill", 0, "cluster mode: SIGKILL one worker this long after the job starts (fault-injection; 0 = off)")
	combine := flag.Bool("combine", false, "enable the map-side combiner (aggregation-class apps only; uses the app's merger)")
	snapshot := flag.Float64("snapshot", 0, "pipelined progress snapshot period in virtual seconds (0 = off)")
	transport := flag.String("transport", "", "run on the REAL engine with this shuffle transport: inproc|spill|tcp (empty = simulator)")
	staged := flag.Bool("staged", false, "disable cross-wave overlap: dispatch the reduce wave only after the whole map wave (multi-process engine and TCP-transport simulator; default overlapped)")
	workers := flag.Int("workers", 0, "with -transport tcp: run N worker subprocesses (multi-process cluster mode); with the simulator: place tasks on an N-node sub-cluster (0 = all nodes)")
	mapTasks := flag.Int("map-tasks", 0, "real engine: number of map tasks (0 = NumCPU)")
	fanIn := flag.Int("merge-fan-in", 0, "real engine: external merge fan-in cap (0 = default 64)")
	decodeWorkers := flag.Int("decode-workers", 0, "real engine, tcp transport: parallel block-decode workers per fetch pool; fetched compressed sections CRC-check and decompress concurrently with the merge (1 = inline, 0 = default min(GOMAXPROCS, 8))")
	compress := flag.String("compress", "none", "sealed-run codec: none|block|delta — compresses spill runs, run-exchange segments and TCP fetch bytes (delta front-codes sorted keys)")
	verify := flag.Bool("verify", false, "real engine: check output against the single-process in-memory path (byte-identical in barrier mode)")
	serve := flag.Bool("serve", false, "run the multi-tenant job service: spawn -workers worker subprocesses and accept -submit jobs on -addr until SIGTERM (drains admitted jobs)")
	submit := flag.Bool("submit", false, "submit one job (-app/-size/-mode/-reducers/-spill-bytes/-compress/-verify/-chaos-kill) to a running -serve service at -addr")
	addr := flag.String("addr", "127.0.0.1:7420", "job service submission address for -serve/-submit")
	policy := flag.String("policy", "", "job service placement policy: round-robin|least-loaded|locality (empty = work-stealing dispatch)")
	maxConcurrent := flag.Int("max-concurrent", 2, "job service: max simultaneously running jobs")
	maxQueued := flag.Int("max-queued", 16, "job service: admission queue bound (a full queue refuses submissions)")
	workerCoord := flag.String("worker-coord", "", "internal: run as a cluster worker, dialing this coordinator address")
	stateDir := flag.String("state-dir", "", "job service durable state directory: admissions and task completions are journaled so a crashed coordinator can be restarted with -resume (empty = in-memory only)")
	resume := flag.Bool("resume", false, "with -serve -state-dir: instead of a fresh pool, rebind the journaled coordinator address, wait for the surviving workers to re-register, replay the journal, run the resumed jobs to completion (re-attaching journaled map output from surviving sealed runs), verify each against the in-process reference, and exit")
	journalStat := flag.Bool("journal-stat", false, "print per-kind record counts from the -state-dir job journal and exit (read-only; safe while a service is appending)")
	flag.Parse()

	if *journalStat {
		runJournalStat(*stateDir)
		return
	}

	app, ds, costs, ok := buildApp(*appName, *sizeGB, *mappers)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *appName)
		os.Exit(2)
	}
	if app.Name == "blackscholes" {
		*reducers = 1
	}

	simMode := simmr.Pipelined
	realMode := mr.Pipelined
	if *mode == "barrier" {
		simMode = simmr.Barrier
		realMode = mr.Barrier
	}
	kind, ok := parseStore(*storeKind)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown store %q\n", *storeKind)
		os.Exit(2)
	}
	comp, err := codec.ParseCompression(*compress)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *workerCoord != "" {
		opts := realOptions(realMode, kind, *reducers, *mapTasks, *spillBytes, *spillMB, *fanIn, *decodeWorkers, comp, *staged)
		opts.HeartbeatInterval = *heartbeat
		var err error
		if *serve {
			// A service-pool worker carries many jobs with differing apps and
			// options: resolve each from the registry by the name the job-
			// start frame ships, with these flags as the base options.
			err = mpexec.ServeJobs(*workerCoord, registryResolver(*combine), opts)
		} else {
			err = mpexec.Serve(*workerCoord, mrJob(app, *combine), opts)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		return
	}

	if *serve {
		cfg := serveConfig{
			addr: *addr, workers: *workers, policy: *policy,
			maxConcurrent: *maxConcurrent, maxQueued: *maxQueued,
			mapTasks: *mapTasks, combine: *combine, stateDir: *stateDir,
		}
		if *resume {
			runResume(cfg)
		} else {
			runServe(cfg)
		}
		return
	}

	if *submit {
		runSubmit(*addr, submitRequest{
			App: *appName, Size: *sizeGB, Mode: *mode, Reducers: *reducers,
			SpillBytes: *spillBytes, Compress: *compress, Verify: *verify,
			ChaosKillMs: int((*chaosKill).Milliseconds()),
		})
		return
	}

	if *transport != "" {
		runReal(app, ds, realMode, kind, *transport, *reducers, *mapTasks,
			*spillBytes, *spillMB, *fanIn, *decodeWorkers, *workers, comp, *combine, *staged, *verify,
			*speculative, *specThreshold, *heartbeat, *chaosKill)
		return
	}

	runSim(app, ds, costs, simMode, kind, *reducers, *heapMB, *spillMB, *spillBytes,
		*workers, comp, *speculative, *combine, *staged, *snapshot, *timeline)
}

func buildApp(name string, sizeGB float64, mappers int) (apps.App, harness.Dataset, simmr.CostModel, bool) {
	switch name {
	case "grep":
		return apps.Grep("word00042"), harness.WordCountData(sizeGB), harness.CalibWordCount, true
	case "sort":
		return apps.Sort(), harness.SortData(sizeGB), harness.CalibSort, true
	case "wordcount":
		return apps.WordCount(), harness.WordCountData(sizeGB), harness.CalibWordCount, true
	case "knn":
		ds, exp := harness.KNNData(sizeGB)
		return apps.KNN(10, exp), ds, harness.CalibKNN, true
	case "lastfm":
		return apps.LastFM(), harness.LastFMData(sizeGB), harness.CalibLastFM, true
	case "ga":
		return apps.GA(200), harness.GAData(mappers), harness.CalibGA, true
	case "blackscholes":
		return apps.BlackScholes(harness.BSPaperParams()), harness.BSData(mappers), harness.CalibBS, true
	}
	return apps.App{}, harness.Dataset{}, simmr.CostModel{}, false
}

func parseStore(s string) (store.Kind, bool) {
	switch s {
	case "memory":
		return store.InMemory, true
	case "spill":
		return store.SpillMerge, true
	case "kv":
		return store.KV, true
	}
	return 0, false
}

func mrJob(app apps.App, combine bool) mr.Job {
	job := mr.Job{Name: app.Name, Mapper: app.Mapper, NewGroup: app.NewGroup,
		NewStream: app.NewStream, Merger: app.Merger}
	if combine && app.Class == core.ClassAggregation {
		job.Combiner = app.Merger
	}
	return job
}

func realOptions(mode mr.Mode, kind store.Kind, reducers, mapTasks int, spillBytes int64, spillMB, fanIn, decodeWorkers int, comp codec.Compression, staged bool) mr.Options {
	return mr.Options{
		Mappers: mapTasks, Reducers: reducers, Mode: mode, Store: kind,
		SpillBytes: spillBytes, SpillThresholdBytes: int64(spillMB) << 20,
		MergeFanIn: fanIn, DecodeWorkers: decodeWorkers,
		Compression: comp, Staged: staged,
	}
}

// runReal executes the job on the real-concurrency engine — in-process over
// the chosen transport, or across worker subprocesses when -workers > 0.
func runReal(app apps.App, ds harness.Dataset, mode mr.Mode, kind store.Kind, transportName string, reducers, mapTasks int, spillBytes int64, spillMB, fanIn, decodeWorkers, workers int, comp codec.Compression, combine, staged, verify bool, speculative bool, specThreshold float64, heartbeat, chaosKill time.Duration) {
	tkind, err := shuffle.ParseKind(transportName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	input := flatten(ds)
	job := mrJob(app, combine)
	opts := realOptions(mode, kind, reducers, mapTasks, spillBytes, spillMB, fanIn, decodeWorkers, comp, staged)
	opts.Transport = tkind
	opts.Speculative = speculative
	opts.SpeculativeThreshold = specThreshold
	opts.HeartbeatInterval = heartbeat

	var res *mr.Result
	if workers > 0 {
		if tkind != shuffle.TCP {
			fmt.Fprintln(os.Stderr, "multi-process mode needs -transport tcp (sealed runs are the only cross-process exchange)")
			os.Exit(2)
		}
		res, err = runCluster(job, input, opts, workers, chaosKill)
	} else {
		res, err = mr.Run(job, input, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "job failed:", err)
		os.Exit(1)
	}

	engine := "real/" + tkind.String()
	if workers > 0 {
		engine = fmt.Sprintf("cluster/%d-workers", workers)
		if staged {
			engine += "/staged"
		}
	}
	fmt.Printf("app=%s engine=%s mode=%s store=%s reducers=%d\n", app.Name, engine, mode, kind, reducers)
	fmt.Printf("records: in=%d out=%d shuffled=%d\n", len(input), len(res.Output), res.ShuffleRecords)
	fmt.Printf("wall: %.1fms (map %.1fms)  spills: %d (%d KB sealed)  merge passes: %d  peak partials: %d KB\n",
		res.Wall.Seconds()*1e3, res.MapWall.Seconds()*1e3,
		res.Spills, res.SpilledBytes>>10, res.MergePasses, res.PeakPartialBytes>>10)
	if res.FetchDials > 0 {
		fmt.Printf("fetch plane: %d KB over %d pooled run-server conns, %d server file opens\n",
			res.FetchBytes>>10, res.FetchDials, res.ServerOpens)
	}
	if res.MapRetries+res.ReduceRetries+res.BackupsLaunched > 0 {
		fmt.Printf("recovery: %d map re-executions, %d reduce re-executions, %d speculative clones (%d won)\n",
			res.MapRetries, res.ReduceRetries, res.BackupsLaunched, res.BackupsWon)
	}
	if comp != codec.None && res.CompressedSpillBytes > 0 {
		fmt.Printf("compression (%s): %d KB raw -> %d KB sealed (%.2fx)  fetched: %d KB\n",
			comp, res.RawSpillBytes>>10, res.CompressedSpillBytes>>10,
			float64(res.RawSpillBytes)/float64(res.CompressedSpillBytes), res.FetchBytes>>10)
	}

	if verify {
		ref, err := mr.Run(job, input, mr.Options{
			Mappers: mapTasks, Reducers: reducers, Mode: mode, Store: kind,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "verify run failed:", err)
			os.Exit(1)
		}
		if err := compareOutputs(ref.Output, res.Output, mode == mr.Barrier,
			app.Class == core.ClassCrossKey); err != nil {
			fmt.Fprintln(os.Stderr, "VERIFY FAILED:", err)
			os.Exit(1)
		}
		how := "sorted multisets match"
		if mode == mr.Barrier {
			how = "byte-identical"
		} else if app.Class == core.ClassCrossKey {
			how = "record counts match; cross-key output is arrival-order-dependent"
		}
		fmt.Printf("verify: OK — output matches the single-process in-memory path (%s)\n", how)
	}
}

// runCluster spawns worker subprocesses (this binary re-executed with the
// same flags plus -worker-coord; workers rebuild the same app/job from
// those flags) and coordinates the job across them. chaosKill > 0 SIGKILLs
// the first worker that long after the job starts — the fault-injection
// path CI's chaos smoke drives to prove a worker death is survivable.
func runCluster(job mr.Job, input []core.Record, opts mr.Options, workers int, chaosKill time.Duration) (*mr.Result, error) {
	cluster, err := mpexec.SpawnLocal(os.Args[1:], workers, 60*time.Second)
	if err != nil {
		return nil, err
	}
	defer cluster.Teardown()
	if chaosKill > 0 {
		if workers < 2 {
			return nil, fmt.Errorf("-chaos-kill needs at least 2 workers to leave a survivor")
		}
		timer := time.AfterFunc(chaosKill, func() {
			if err := cluster.Kill(0); err == nil {
				fmt.Fprintf(os.Stderr, "chaos: killed worker 0 after %s\n", chaosKill)
			}
		})
		defer timer.Stop()
	}
	return cluster.Coord.Run(job, input, opts)
}

func flatten(ds harness.Dataset) []core.Record {
	var n int
	for _, s := range ds.Splits {
		n += len(s)
	}
	out := make([]core.Record, 0, n)
	for _, s := range ds.Splits {
		out = append(out, s...)
	}
	return out
}

// compareOutputs checks b against the reference a: byte-identical when
// exact (barrier mode), as key-sorted multisets otherwise. countOnly
// (cross-key apps like GA, whose pipelined output depends on arrival
// order) compares record counts.
func compareOutputs(a, b []core.Record, exact, countOnly bool) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d records vs reference's %d", len(b), len(a))
	}
	if countOnly && !exact {
		return nil
	}
	if !exact {
		a = append([]core.Record(nil), a...)
		b = append([]core.Record(nil), b...)
		mr.SortOutput(a)
		mr.SortOutput(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("record %d: %v vs reference's %v", i, b[i], a[i])
		}
	}
	return nil
}

func runSim(app apps.App, ds harness.Dataset, costs simmr.CostModel, m simmr.Mode, kind store.Kind, reducers, heapMB, spillMB int, spillBytes int64, workers int, comp codec.Compression, speculative, combine, staged bool, snapshot float64, timeline bool) {
	res := harness.Run(harness.RunSpec{
		App: app, Data: ds, Mode: m, Reducers: reducers, Store: kind,
		Costs: costs, HeapBudgetMB: heapMB, SpillThresholdMB: spillMB, KVCacheMB: 512,
		SpillBytes:  spillBytes,
		Workers:     workers,
		Compression: comp,
		Speculative: speculative, Combine: combine, Staged: staged, SnapshotPeriod: snapshot,
	})

	fmt.Printf("app=%s mode=%s store=%s reducers=%d", app.Name, m, kind, reducers)
	if workers > 0 {
		fmt.Printf(" workers=%d", workers)
	}
	fmt.Println()
	fmt.Printf("completion: %.1fs  (map outputs ready: %.1fs)\n", res.Completion, res.MapOutputsReady)
	if res.Failed {
		fmt.Printf("JOB FAILED: %s\n", res.FailReason)
	}
	fmt.Printf("map tasks: %d (retries %d, backups %d/%d won)  output records: %d  spills: %d  peak partials: %d MB  shuffle: %d MB\n",
		res.MapTasks, res.MapRetries, res.BackupsWon, res.BackupsLaunched, len(res.Output), res.Spills, res.PeakMemVirt>>20, res.ShuffleBytes>>20)
	if spillBytes > 0 {
		fmt.Printf("external shuffle: budget %d KB, %d map-side spill runs\n", spillBytes>>10, res.SpillRuns)
	}
	if len(res.Snapshots) > 0 {
		fmt.Printf("progress snapshots: %d (first %.1fs, last %.1fs)\n",
			len(res.Snapshots), res.Snapshots[0].T, res.Snapshots[len(res.Snapshots)-1].T)
	}
	for _, st := range []metrics.Stage{metrics.StageMap, metrics.StageShuffle, metrics.StageSort, metrics.StageReduce, metrics.StageOutput} {
		if first, last, ok := res.Metrics.StageBounds(st); ok {
			fmt.Printf("  %-8s %8.1fs .. %8.1fs\n", st, first, last)
		}
	}
	if timeline {
		step := res.Completion / 40
		fmt.Println(metrics.RenderTimeline(res.Metrics,
			[]metrics.Stage{metrics.StageMap, metrics.StageShuffle, metrics.StageSort, metrics.StageReduce, metrics.StageOutput}, step))
	}
}
