package main

// The multi-tenant job service face of cmd/blmr: -serve runs a long-lived
// coordinator with a local worker pool and admits a stream of jobs
// submitted over a newline-delimited JSON protocol; -submit is the
// matching client. One submission per connection:
//
//	-> {"app":"wordcount","size":0.01,"mode":"barrier","reducers":3,
//	    "spillBytes":8192,"compress":"delta","verify":true,"chaosKillMs":200}
//	<- {"id":0,"ok":true,"records":1234,"wall_ms":87.5,"verified":true}
//
// Workers are this binary re-executed (SpawnLocal appends -worker-coord);
// under -serve they run the multi-job protocol with a registry resolver, so
// one pool carries concurrently admitted jobs with differing apps, modes
// and spill budgets. SIGTERM/SIGINT drains: admitted jobs finish, new
// submissions are refused, workers are torn down, then the process exits
// cleanly — the lifecycle CI's service-smoke job drives.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/mpexec"
	"blmr/internal/mr"
)

// submitRequest is one job submission. Zero fields take the server's
// defaults (mode pipelined, reducers from -reducers).
type submitRequest struct {
	App        string  `json:"app"`
	Size       float64 `json:"size"`
	Mode       string  `json:"mode"`
	Reducers   int     `json:"reducers"`
	SpillBytes int64   `json:"spillBytes"`
	Compress   string  `json:"compress"`
	Verify     bool    `json:"verify"`
	// ChaosKillMs, when > 0, SIGKILLs one pool worker that long after this
	// job is admitted — fault injection against the whole service; every
	// admitted job must still complete.
	ChaosKillMs int `json:"chaosKillMs"`
}

// submitReply reports one submission's outcome.
type submitReply struct {
	ID       int     `json:"id"`
	OK       bool    `json:"ok"`
	Records  int     `json:"records"`
	WallMS   float64 `json:"wall_ms"`
	Verified bool    `json:"verified,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// registryResolver is the serve-mode worker's job registry: every
// size-independent app, resolved by the name the coordinator ships in the
// job-start frame. KNN is excluded — its reduce function bakes in a
// dataset-derived parameter the name alone cannot reconstruct.
func registryResolver(combine bool) mpexec.JobResolver {
	return func(name string) (mr.Job, bool) {
		if name == "knn" {
			return mr.Job{}, false
		}
		app, _, _, ok := buildApp(name, 1, 100)
		if !ok {
			return mr.Job{}, false
		}
		return mrJob(app, combine), true
	}
}

// serveConfig carries the service flags from main.
type serveConfig struct {
	addr          string
	workers       int
	policy        string
	maxConcurrent int
	maxQueued     int
	mapTasks      int
	combine       bool
	stateDir      string
}

// runServe bootstraps the pool and serves submissions until SIGTERM. With
// -state-dir the service journals admissions and task completions there
// and records the coordinator's control address, so a SIGKILLed serve
// process can be brought back with -resume over the same directory (the
// orphaned workers keep their sealed runs and re-dial that address).
func runServe(cfg serveConfig) {
	if cfg.workers < 1 {
		fmt.Fprintln(os.Stderr, "-serve needs -workers N (the local pool size)")
		os.Exit(2)
	}
	lc, err := mpexec.SpawnLocal(os.Args[1:], cfg.workers, 60*time.Second)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	defer lc.Teardown()
	sc := mpexec.ServiceConfig{
		MaxQueued:     cfg.maxQueued,
		MaxConcurrent: cfg.maxConcurrent,
		Policy:        cfg.policy,
	}
	if cfg.stateDir != "" {
		sc.StateDir = cfg.stateDir
		sc.Resolver = registryResolver(cfg.combine)
		if err := os.MkdirAll(cfg.stateDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		// -resume must rebind this exact address: the orphaned workers
		// re-dial the coordinator address they were spawned with.
		if err := os.WriteFile(coordAddrPath(cfg.stateDir),
			[]byte(lc.Coord.Addr()+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	}
	svc, err := mpexec.NewService(lc.Coord, cfg.workers, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sigs
		fmt.Fprintf(os.Stderr, "serve: %v — draining admitted jobs\n", s)
		_ = ln.Close()
	}()
	fmt.Printf("serve: %d workers, policy=%q, accepting jobs on %s\n",
		cfg.workers, cfg.policy, ln.Addr())
	var conns sync.WaitGroup
	var chaosOnce sync.Once
	for {
		conn, err := ln.Accept()
		if err != nil {
			break // listener closed: drain
		}
		conns.Add(1)
		go func(conn net.Conn) {
			defer conns.Done()
			defer conn.Close()
			handleSubmission(conn, svc, lc, cfg, &chaosOnce)
		}(conn)
	}
	conns.Wait()
	svc.Close()
	fmt.Println("serve: drained, shutting down workers")
}

// handleSubmission runs one submission end to end: decode, admit, wait,
// optionally verify against the in-process engine, reply.
func handleSubmission(conn net.Conn, svc *mpexec.Service, lc *mpexec.LocalCluster, cfg serveConfig, chaosOnce *sync.Once) {
	fail := func(id int, err error) {
		_ = json.NewEncoder(conn).Encode(submitReply{ID: id, Error: err.Error()})
	}
	var req submitRequest
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&req); err != nil {
		fail(-1, fmt.Errorf("bad request: %w", err))
		return
	}
	if req.App == "" {
		req.App = "wordcount"
	}
	if req.Size <= 0 {
		req.Size = 0.01
	}
	app, ds, _, ok := buildApp(req.App, req.Size, 100)
	if !ok {
		fail(-1, fmt.Errorf("unknown app %q", req.App))
		return
	}
	m := mr.Pipelined
	if req.Mode == "barrier" {
		m = mr.Barrier
	}
	reducers := req.Reducers
	if reducers <= 0 {
		reducers = 4
	}
	if app.Name == "blackscholes" {
		reducers = 1
	}
	comp := codec.None
	if req.Compress != "" {
		var err error
		if comp, err = codec.ParseCompression(req.Compress); err != nil {
			fail(-1, err)
			return
		}
	}
	if req.ChaosKillMs > 0 && cfg.workers < 2 {
		fail(-1, fmt.Errorf("chaosKillMs needs at least 2 workers to leave a survivor"))
		return
	}
	input := flatten(ds)
	opts := mr.Options{
		Mappers: cfg.mapTasks, Reducers: reducers, Mode: m,
		SpillBytes: req.SpillBytes, Compression: comp,
	}
	tk, err := svc.Submit(mrJob(app, cfg.combine), input, opts)
	if err != nil {
		fail(-1, err)
		return
	}
	if req.ChaosKillMs > 0 {
		chaosOnce.Do(func() {
			time.AfterFunc(time.Duration(req.ChaosKillMs)*time.Millisecond, func() {
				if err := lc.Kill(0); err == nil {
					fmt.Fprintf(os.Stderr, "chaos: killed worker 0 %dms after job %d was admitted\n",
						req.ChaosKillMs, tk.ID)
				}
			})
		})
	}
	start := time.Now()
	res, err := tk.Wait()
	if err != nil {
		fail(tk.ID, err)
		return
	}
	reply := submitReply{ID: tk.ID, OK: true, Records: len(res.Output),
		WallMS: time.Since(start).Seconds() * 1e3}
	if req.Verify {
		ref, err := mr.Run(mrJob(app, cfg.combine), input,
			mr.Options{Mappers: cfg.mapTasks, Reducers: reducers, Mode: m})
		if err != nil {
			fail(tk.ID, fmt.Errorf("verify run: %w", err))
			return
		}
		if err := compareOutputs(ref.Output, res.Output, m == mr.Barrier,
			app.Class == core.ClassCrossKey); err != nil {
			fail(tk.ID, fmt.Errorf("VERIFY FAILED: %w", err))
			return
		}
		reply.Verified = true
	}
	_ = json.NewEncoder(conn).Encode(reply)
}

// runSubmit is the client: one connection, one job, one reply.
func runSubmit(addr string, req submitRequest) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		fmt.Fprintln(os.Stderr, "submit:", err)
		os.Exit(1)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		fmt.Fprintln(os.Stderr, "submit:", err)
		os.Exit(1)
	}
	var reply submitReply
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&reply); err != nil {
		fmt.Fprintln(os.Stderr, "submit: reading reply:", err)
		os.Exit(1)
	}
	if !reply.OK {
		fmt.Fprintf(os.Stderr, "submit: job %d failed: %s\n", reply.ID, reply.Error)
		os.Exit(1)
	}
	verified := ""
	if reply.Verified {
		verified = "  verified: OK"
	}
	fmt.Printf("job %d: %d records in %.1fms%s\n", reply.ID, reply.Records, reply.WallMS, verified)
}

// coordAddrPath is where -serve -state-dir records the coordinator's
// control address for -resume to rebind.
func coordAddrPath(stateDir string) string {
	return filepath.Join(stateDir, "coord.addr")
}

// runResume is the crash-recovery path: rebind the journaled coordinator
// address, wait for the orphaned workers to re-register (they re-dial with
// capped backoff and advertise their surviving sealed runs), replay the
// journal, run every resumed job to completion — journaled map completions
// whose sealed runs survive re-attach instead of re-executing — verify each
// output against the single-process in-memory reference, and exit. Exit
// status 0 means every resumed job completed and verified.
func runResume(cfg serveConfig) {
	if cfg.stateDir == "" {
		fmt.Fprintln(os.Stderr, "-resume needs -state-dir (the crashed service's journal)")
		os.Exit(2)
	}
	if cfg.workers < 1 {
		fmt.Fprintln(os.Stderr, "-resume needs -workers N (how many workers to wait for)")
		os.Exit(2)
	}
	raw, err := os.ReadFile(coordAddrPath(cfg.stateDir))
	if err != nil {
		fmt.Fprintln(os.Stderr, "resume:", err)
		os.Exit(1)
	}
	addr := strings.TrimSpace(string(raw))
	var c *mpexec.Coordinator
	rebind := time.Now().Add(15 * time.Second)
	for {
		if c, err = mpexec.ListenOn(addr); err == nil {
			break
		}
		if time.Now().After(rebind) {
			fmt.Fprintf(os.Stderr, "resume: rebind %s: %v\n", addr, err)
			os.Exit(1)
		}
		time.Sleep(25 * time.Millisecond)
	}
	fmt.Printf("resume: rebound %s, waiting for %d returning workers\n", addr, cfg.workers)
	if err := c.WaitWorkers(cfg.workers, 90*time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "resume:", err)
		os.Exit(1)
	}
	svc, err := mpexec.NewService(c, cfg.workers, mpexec.ServiceConfig{
		MaxQueued:     cfg.maxQueued,
		MaxConcurrent: cfg.maxConcurrent,
		Policy:        cfg.policy,
		StateDir:      cfg.stateDir,
		Resolver:      registryResolver(cfg.combine),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "resume:", err)
		os.Exit(1)
	}
	resumed := svc.Resumed()
	fmt.Printf("resume: %d journaled jobs re-entered\n", len(resumed))
	failed := 0
	reattached := 0
	for _, tk := range resumed {
		res, err := tk.Wait()
		if err != nil {
			fmt.Fprintf(os.Stderr, "resume: job %d failed: %v\n", tk.ID, err)
			failed++
			continue
		}
		reattached += res.ReattachedMaps
		job, input, opts := tk.Spec()
		ref, err := mr.Run(job, input, mr.Options{
			Mappers: opts.Mappers, Reducers: opts.Reducers, Mode: opts.Mode,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "resume: job %d verify run: %v\n", tk.ID, err)
			failed++
			continue
		}
		countOnly := false
		if app, _, _, ok := buildApp(job.Name, 1, 100); ok {
			countOnly = app.Class == core.ClassCrossKey
		}
		if err := compareOutputs(ref.Output, res.Output, opts.Mode == mr.Barrier, countOnly); err != nil {
			fmt.Fprintf(os.Stderr, "resume: job %d VERIFY FAILED: %v\n", tk.ID, err)
			failed++
			continue
		}
		fmt.Printf("resume: job %d (%s): %d records, %d re-attached maps, verified OK\n",
			tk.ID, job.Name, len(res.Output), res.ReattachedMaps)
	}
	svc.Close()
	_ = c.Close()
	fmt.Printf("resume: drained — %d jobs, %d failed, %d re-attached maps total\n",
		len(resumed), failed, reattached)
	if failed > 0 {
		os.Exit(1)
	}
}

// runJournalStat prints one line of per-kind journal record counts —
// stable, grep-friendly, safe to run against a live service (read-only
// replay that tolerates a torn tail). CI polls it to time the kill.
func runJournalStat(stateDir string) {
	if stateDir == "" {
		fmt.Fprintln(os.Stderr, "-journal-stat needs -state-dir")
		os.Exit(2)
	}
	st, err := mpexec.ReadJournalStats(filepath.Join(stateDir, "journal.wal"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "journal-stat:", err)
		os.Exit(1)
	}
	fmt.Printf("journal: records=%d admitted=%d started=%d mapdone=%d reducedone=%d done=%d aborted=%d live=%d livemapdone=%d\n",
		st.Records, st.Admitted, st.Started, st.MapDone, st.ReduceDone, st.Done, st.Aborted, st.Live, st.LiveMapDone)
}
