// Package blmr is a from-scratch Go reproduction of "Breaking the MapReduce
// Stage Barrier" (Verma, Zea, Cho, Gupta, Campbell — CLUSTER 2010): a
// barrier-less MapReduce framework in which the Reduce stage consumes
// records as the shuffle delivers them, holding per-key partial results in
// pluggable memory-managed stores.
//
// The implementation lives under internal/: a discrete-event cluster
// simulator (sim, cluster, dfs) carrying the full MapReduce engine (simmr),
// a real-concurrency in-process engine (mr), the seven Reduce-operation
// classes (reducers), partial-result stores including disk spill-and-merge
// and a BerkeleyDB-style KV store (store, kvstore), the paper's six
// benchmark applications (apps), and an experiment harness reproducing
// every table and figure of the evaluation (harness).
//
// See README.md for a guided tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package blmr
