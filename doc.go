// Package blmr is a from-scratch Go reproduction of "Breaking the MapReduce
// Stage Barrier" (Verma, Zea, Cho, Gupta, Campbell — CLUSTER 2010): a
// barrier-less MapReduce framework in which the Reduce stage consumes
// records as the shuffle delivers them, holding per-key partial results in
// pluggable memory-managed stores.
//
// The implementation lives under internal/: a discrete-event cluster
// simulator (sim, cluster, dfs) carrying the full MapReduce engine (simmr),
// a real-concurrency engine split into an execution plane (exec: task
// bodies plus a slot-aware scheduler), pluggable shuffle transports
// (shuffle: in-process batched channels, a sealed spill-run exchange, and
// the same exchange over a loopback TCP run-server) and a thin composition
// (mr), a multi-process engine running worker subprocesses over that wire
// format (mpexec), the seven Reduce-operation classes (reducers),
// partial-result stores including disk spill-and-merge and a
// BerkeleyDB-style KV store (store, kvstore), the paper's six benchmark
// applications (apps), and an experiment harness reproducing every table
// and figure of the evaluation (harness).
//
// The real-concurrency engine's shuffle is batched and allocation-lean:
// mr.Options.BatchSize sets the records-per-channel-send granularity
// (default 256; 1 reproduces record-at-a-time shuffling), mr.Options.QueueCap
// the per-reducer buffering in batches, and mr.Job.Combiner — parity with
// simmr.JobSpec.Combiner — enables map-side folding of same-key records
// (bounded by mr.Options.CombineKeys distinct keys per buffer) so
// aggregation-class jobs shuffle a fraction of their intermediate records.
//
// The shuffle is also memory-bounded on demand: mr.Options.SpillBytes caps
// each task's buffered intermediate data. Barrier mappers spill sorted,
// codec-encoded runs to disk (dfs.RunDir) whenever they cross the budget
// and reducers stream an external k-way merge (sortx.Merger over streaming
// sortx.Sources) straight into the reduce function; pipelined reducers
// hold partials in a disk-backed spill-merge store with the same budget.
// Datasets whose intermediate data dwarfs RAM complete with partial-result
// memory pinned near the budget (see examples/spill), at byte-identical
// output. simmr.JobSpec.SpillBytes models the same discipline's I/O cost
// on the simulated cluster (harness.SpillTradeoff sweeps the trade-off).
//
// Sealed runs are compressible: mr.Options.Compression (cmd/blmr
// -compress none|block|delta) selects a block codec for every run the
// engine seals — spill waves, run-exchange segments, intermediate merge
// runs, pipelined store spills. codec.Block is a dependency-free
// snappy-shaped LZ over 32KiB blocks; codec.DeltaBlock additionally
// front-codes the sorted keys inside each block, the big win for
// text-heavy keys (a 1M-line WordCount spill seals ~30x smaller).
// Compressed sections travel compressed through the TCP run-server and
// decompress at the consuming merger, so fetch bytes shrink by the same
// ratio; decompressed merge order is unchanged, so barrier output stays
// byte-identical across codecs. mr.Result.{RawSpillBytes,
// CompressedSpillBytes,FetchBytes} report the ratio and wire volume;
// simmr.JobSpec.Compression with Costs.{CompressDelay,CompressRatio}
// model the trade-off on the simulated cluster
// (harness.CompressionTradeoff sweeps the codecs).
//
// The shuffle data plane is pluggable: mr.Options.Transport selects
// shuffle.InProc (shared memory), shuffle.SpillExchange (every map output
// wave sealed as a spill-run segment file and re-read from disk) or
// shuffle.TCP (sections fetched from a loopback run-server) — all three
// byte-identical in barrier mode. mr.Options.MergeFanIn (default 64) caps
// how many runs the external merge opens at once, folding the excess
// through intermediate passes (mr.Result.MergePasses). Multi-process
// execution composes the same task bodies across worker subprocesses:
// `blmr -workers N -transport tcp` (internal/mpexec, examples/cluster).
// The simulator mirrors the knobs with simmr.JobSpec.Workers (N-node
// sub-cluster placement), JobSpec.Transport and Costs.RunFetchDelay
// (harness.WorkerScaling sweeps worker counts).
//
// The multi-process engine breaks the stage barrier: reduce tasks are
// dispatched at job start and every completed map's sealed-run metadata is
// streamed to them as push messages, so reducers fetch and consume runs
// while later maps are still running (mr.Options.Staged — cmd/blmr
// -staged — restores the back-to-back waves; barrier output stays
// byte-identical either way). Pipelined run-exchange maps seal
// partitioned-but-unsorted waves (stream reducers impose no input order),
// deleting the map-side sort from the barrier-less path. Section fetches
// ride a pooled, multiplexed "BLR2" plane (shuffle.FetchPool): one
// connection per peer run-server with request-id-framed pipelining
// (prefetch bounded by MergeFanIn) and per-connection reusable decode
// buffers plus arena string allocation, so the fetch path stops
// allocating per section (mr.Result.FetchDials counts dials; compressed
// block headers carry a CRC32 verified at decode). simmr.JobSpec.Staged
// and the per-pooled-peer Costs.RunFetchDelay model the same machinery
// on the simulated cluster (harness.OverlapSweep sweeps staged vs
// overlapped; overlap is never slower).
//
// The fetch plane has a raw-speed floor on both ends of that
// connection. Serving: the run-server resolves sections through a
// refcounted LRU of open file handles (one os.Open per distinct sealed
// file instead of one per request — mr.Result.ServerOpens counts the
// misses) and ships large sections zero-copy with offset sendfile, the
// header flushed ahead (Linux; buffered io.Copy elsewhere and for small
// sections). Consuming: compressed fetched sections CRC-verify and
// decompress on a bounded per-pool worker pool (exec.Options.DecodeWorkers,
// cmd/blmr -decode-workers, default min(GOMAXPROCS,8)) while the merger
// consumes decoded blocks in submission order, so codec work overlaps
// the merge — record order and job output are byte-identical at any
// setting, and 1 decodes inline. Sealed runs carry the "BLC3" format:
// per-block CRC32 plus a cross-block LZ dictionary window (a block's
// matches may reach 32KiB into its predecessor's raw bytes; sections
// still start self-contained), with "BLC1"/"BLC2" runs still decoding.
//
// The multi-process engine survives worker churn: workers heartbeat on
// their control connection (exec.Options.HeartbeatInterval, cmd/blmr
// -heartbeat; silent for four intervals means dead), a dead worker's
// in-flight tasks are requeued on survivors, completed maps whose sealed
// runs died with it are re-executed with supersede pushes re-routing any
// parked reduce task, and section fetches retry with backed-off redials
// (internal/retry). exec.Options.Speculative (cmd/blmr -speculative,
// -spec-threshold) clones straggler maps onto idle slots near the end of
// the wave; attempt IDs keep duplicate routes idempotent, so barrier
// output stays byte-identical through the loss of any single worker.
// cmd/blmr -chaos-kill injects the fault (SIGKILL one worker mid-job) for
// smoke runs. The simulator mirrors the model with
// simmr.JobSpec.{KillWorkerAt,KillWorker}; harness.FaultSweep sweeps kill
// times, and harness.FaultPrediction is pinned to the real engine's
// measured recovery overhead within harness.FaultTolerance.
//
// The multi-process engine is multi-tenant: mpexec.Service runs a stream
// of concurrently admitted jobs on one coordinator and worker pool
// (cmd/blmr -serve / -submit, newline-delimited JSON submissions on
// -addr). Admission is a bounded queue (mpexec.ServiceConfig.MaxQueued;
// full refuses, it never buffers unboundedly) feeding at most
// MaxConcurrent running jobs; each job gets per-worker slot shares
// (MapShare/ReduceShare) under a cross-job slot ledger (exec.SlotPool,
// PoolMapSlots/PoolReduceSlots caps) and a fresh instance of the placement
// policy named by ServiceConfig.Policy (cmd/blmr -policy): exec.ParsePolicy
// builds round-robin, least-loaded or locality policies routing every task
// over per-worker snapshots (exec.WorkerSnapshot, with kind-split
// cross-job load). Every job's frames, spill directories, reduce sources
// and abort latch are its own, so per-job barrier output stays
// byte-identical under concurrency and churn. The simulator mirrors the
// stream with simmr.RunStream (same Policy interface over a cross-job
// assignment ledger); harness.PolicySweep sweeps skew levels, and
// harness.PolicyPrediction is pinned to the real engine's measured
// makespan ratio within harness.PolicyTolerance.
//
// The job service survives its own death: with mpexec.ServiceConfig
// .StateDir (cmd/blmr -serve -state-dir) every durable state transition —
// admission, start, each completed map's sealed-wave metadata, each reduce
// partition's output, retirement — is appended to a length+CRC-framed
// write-ahead journal (internal/wal: torn tails from a mid-append crash
// are truncated on reopen, any other damage is wal.ErrCorrupt) and
// compacted down to live-ticket state as jobs retire. A restarted service
// (cmd/blmr -resume; mpexec.NewService over the same StateDir, with
// ServiceConfig.Resolver mapping journaled job names back to code) replays
// the journal, re-enters unfinished jobs ahead of new submissions, and
// rebinds the address recorded in <state-dir>/coord.addr, because the
// dead coordinator's workers keep their run-servers and sealed files
// alive and re-dial that address under capped backoff. Each
// re-registration carries an 'A' advertisement of the sealed files still
// verifiably on disk (CRC-checked), and journaled maps whose files all
// match re-attach into the routing table instead of re-executing —
// Result.ReattachedMaps counts them, Service.Resumed exposes the replayed
// tickets, mpexec.ReadJournalStats (cmd/blmr -journal-stat) summarises a
// journal read-only, and Service.Abandon simulates the crash in-process
// for tests. Barrier output is byte-identical across the kill.
// simmr.JobSpec.KillCoordinatorAt with Costs.{CoordRestartDelay,
// ReattachPerMap} model the crash on the simulated cluster;
// harness.RestartSweep sweeps crash times, and harness.RestartPrediction
// is pinned to the real engine's measured restart overhead within
// harness.RestartTolerance.
//
// See DESIGN.md for the system inventory and the design-choice ablations.
package blmr
