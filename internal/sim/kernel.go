// Package sim provides a deterministic discrete-event simulation kernel.
//
// Simulated activities are written as ordinary Go functions running in
// goroutine-backed processes (Proc). At any instant exactly one goroutine —
// either the kernel or a single process — is runnable; control is handed off
// through unbuffered channels, so execution is fully deterministic: events
// scheduled for the same virtual time fire in the order they were scheduled.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual time in seconds.
type Time = float64

type event struct {
	t   Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Kernel owns the virtual clock and the pending-event queue.
// The zero value is not usable; call NewKernel.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap
	yield  chan struct{} // processes signal the kernel here when they park or exit
	live   map[*Proc]bool
	parked map[*Proc]bool
	next   int // process id counter
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{
		yield:  make(chan struct{}),
		live:   make(map[*Proc]bool),
		parked: make(map[*Proc]bool),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run in kernel context at absolute time t.
// Scheduling in the past panics.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	k.events.pushEvent(event{t: t, seq: k.seq, fn: fn})
}

// After schedules fn to run in kernel context d seconds from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// abortSignal unwinds a process goroutine when the simulation is torn down
// while the process is still parked.
type abortSignal struct{}

// Proc is a simulated process. All blocking operations (Sleep, resource
// acquisition, queue operations) must go through the Proc that is currently
// executing; sharing a Proc across goroutines is invalid.
type Proc struct {
	k       *Kernel
	id      int
	name    string
	wake    chan bool // true = resume normally, false = abort
	blocked string    // description of what the proc is blocked on (diagnostics)
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Spawn creates a process running fn. The process starts at the current
// virtual time, after the currently executing event completes.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	k.next++
	p := &Proc{k: k, id: k.next, name: name, wake: make(chan bool)}
	k.live[p] = true
	k.At(k.now, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortSignal); !ok {
						// Re-panic on the kernel goroutine so test failures surface.
						delete(k.live, p)
						k.yield <- struct{}{}
						panic(r)
					}
				}
				delete(k.live, p)
				k.yield <- struct{}{}
			}()
			fn(p)
		}()
		<-k.yield
	})
	return p
}

// park suspends the process until something calls k.resume(p).
func (p *Proc) park(why string) {
	p.blocked = why
	p.k.parked[p] = true
	p.k.yield <- struct{}{}
	ok := <-p.wake
	p.blocked = ""
	if !ok {
		panic(abortSignal{})
	}
}

// resume wakes p. Must be called from kernel context (inside an event fn).
func (k *Kernel) resume(p *Proc) {
	delete(k.parked, p)
	p.wake <- true
	<-k.yield
}

// scheduleResume schedules p to be resumed at absolute time t.
func (k *Kernel) scheduleResume(p *Proc, t Time) {
	k.At(t, func() { k.resume(p) })
}

// Sleep suspends the process for d virtual seconds. Negative d sleeps zero.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.k.scheduleResume(p, p.k.now+d)
	p.park("sleep")
}

// Yield lets every other event scheduled for the current instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Run executes events until the queue is exhausted, then aborts any process
// still parked on a resource or queue (their goroutines unwind via panic so
// no goroutines leak). It returns the final virtual time.
func (k *Kernel) Run() Time {
	for k.events.Len() > 0 {
		e := k.events.popEvent()
		k.now = e.t
		e.fn()
	}
	// Abort leftover parked processes deterministically (by id).
	for len(k.live) > 0 {
		var victim *Proc
		for p := range k.parked {
			if victim == nil || p.id < victim.id {
				victim = p
			}
		}
		if victim == nil {
			// Live but not parked should be impossible: kernel only runs
			// when all processes are parked or finished.
			panic("sim: live processes remain but none are parked")
		}
		delete(k.parked, victim)
		victim.wake <- false
		<-k.yield
		// The abort may have released resources and scheduled events;
		// those are torn down too, so just keep draining the parked set.
		for k.events.Len() > 0 {
			e := k.events.popEvent()
			k.now = e.t
			e.fn()
		}
	}
	return k.now
}

// RunUntil executes events with timestamps <= deadline and then stops,
// leaving the remaining events queued. It returns the current time.
func (k *Kernel) RunUntil(deadline Time) Time {
	for k.events.Len() > 0 && k.events.peek().t <= deadline {
		e := k.events.popEvent()
		k.now = e.t
		e.fn()
	}
	if k.now < deadline {
		k.now = deadline
	}
	return k.now
}

// LiveProcs returns the number of processes that have been spawned and have
// not yet finished.
func (k *Kernel) LiveProcs() int { return len(k.live) }

// BlockedOn reports what each parked process is blocked on, for debugging
// simulation deadlocks.
func (k *Kernel) BlockedOn() []string {
	var out []string
	for p := range k.parked {
		out = append(out, fmt.Sprintf("%s: %s", p.name, p.blocked))
	}
	return out
}
