package sim

// Event is a one-shot broadcast latch: processes Wait until Fire is called,
// after which Wait returns immediately forever.
type Event struct {
	k       *Kernel
	name    string
	fired   bool
	waiters []*Proc
}

// NewEvent creates an unfired event.
func NewEvent(k *Kernel, name string) *Event {
	return &Event{k: k, name: name}
}

// Fired reports whether the event has fired.
func (e *Event) Fired() bool { return e.fired }

// Wait blocks p until the event fires.
func (e *Event) Wait(p *Proc) {
	if e.fired {
		return
	}
	e.waiters = append(e.waiters, p)
	p.park("event " + e.name)
}

// Fire releases all current and future waiters. Firing twice is a no-op.
// Safe to call from kernel context or any process.
func (e *Event) Fire() {
	if e.fired {
		return
	}
	e.fired = true
	for _, w := range e.waiters {
		wp := w
		e.k.At(e.k.now, func() { e.k.resume(wp) })
	}
	e.waiters = nil
}

// WaitGroup counts down to zero, then releases waiters (like sync.WaitGroup
// but for simulated processes).
type WaitGroup struct {
	k       *Kernel
	name    string
	count   int
	waiters []*Proc
}

// NewWaitGroup creates a WaitGroup with an initial count.
func NewWaitGroup(k *Kernel, name string, count int) *WaitGroup {
	return &WaitGroup{k: k, name: name, count: count}
}

// Add increases (or with negative delta decreases) the count.
func (w *WaitGroup) Add(delta int) {
	w.count += delta
	if w.count < 0 {
		panic("sim: negative WaitGroup count " + w.name)
	}
	if w.count == 0 {
		w.release()
	}
}

// Done decrements the count by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Count returns the current count.
func (w *WaitGroup) Count() int { return w.count }

// Wait blocks p until the count reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.count == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.park("waitgroup " + w.name)
}

func (w *WaitGroup) release() {
	for _, p := range w.waiters {
		wp := p
		w.k.At(w.k.now, func() { w.k.resume(wp) })
	}
	w.waiters = nil
}
