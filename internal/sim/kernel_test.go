package sim

import (
	"testing"
	"testing/quick"
)

func TestClockAdvances(t *testing.T) {
	k := NewKernel()
	var times []Time
	k.Spawn("a", func(p *Proc) {
		p.Sleep(1.5)
		times = append(times, p.Now())
		p.Sleep(2.5)
		times = append(times, p.Now())
	})
	end := k.Run()
	if end != 4.0 {
		t.Fatalf("end time = %v, want 4.0", end)
	}
	if len(times) != 2 || times[0] != 1.5 || times[1] != 4.0 {
		t.Fatalf("times = %v", times)
	}
}

func TestEventOrderingAtSameInstant(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(1.0, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("events fired out of schedule order: %v", order)
		}
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	k := NewKernel()
	k.Spawn("a", func(p *Proc) {
		p.Sleep(-5)
		if p.Now() != 0 {
			t.Errorf("now = %v after negative sleep", p.Now())
		}
	})
	k.Run()
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		k.At(1, func() {})
	})
	k.Run()
}

func TestSpawnStartsAtCurrentTime(t *testing.T) {
	k := NewKernel()
	var started Time = -1
	k.At(3, func() {
		k.Spawn("child", func(p *Proc) { started = p.Now() })
	})
	k.Run()
	if started != 3 {
		t.Fatalf("child started at %v, want 3", started)
	}
}

func TestInterleavingIsDeterministic(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			k.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(1)
					log = append(log, name)
				}
			})
		}
		k.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 20; trial++ {
		got := run()
		if len(got) != len(first) {
			t.Fatalf("nondeterministic length")
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, got)
			}
		}
	}
}

func TestNoLeakedProcsAfterRun(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "slots", 1)
	// Second proc will block forever on the resource; Run must abort it.
	k.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(1)
		// Never releases.
	})
	k.Spawn("waiter", func(p *Proc) {
		p.Sleep(0.5)
		r.Acquire(p, 1) // blocks forever
		t.Error("waiter should never acquire")
	})
	k.Run()
	if n := k.LiveProcs(); n != 0 {
		t.Fatalf("leaked %d procs: %v", n, k.BlockedOn())
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.At(1, func() { fired++ })
	k.At(2, func() { fired++ })
	k.At(3, func() { fired++ })
	k.RunUntil(2)
	if fired != 2 {
		t.Fatalf("fired = %d at deadline 2, want 2", fired)
	}
	if k.Now() != 2 {
		t.Fatalf("now = %v, want 2", k.Now())
	}
	k.Run()
	if fired != 3 {
		t.Fatalf("fired = %d after full run, want 3", fired)
	}
}

func TestSleepMonotonicProperty(t *testing.T) {
	// Property: for any list of sleep durations, observed times are the
	// prefix sums of the clamped-to-zero durations.
	f := func(durs []float64) bool {
		k := NewKernel()
		var got []Time
		k.Spawn("p", func(p *Proc) {
			for _, d := range durs {
				if d < 0 {
					d = -d
				}
				if d > 1e6 {
					d = 1e6
				}
				p.Sleep(d)
				got = append(got, p.Now())
			}
		})
		k.Run()
		sum := 0.0
		for i, d := range durs {
			if d < 0 {
				d = -d
			}
			if d > 1e6 {
				d = 1e6
			}
			sum += d
			if got[i] != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
