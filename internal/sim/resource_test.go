package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceSerializes(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "disk", 1)
	var done []Time
	for i := 0; i < 3; i++ {
		k.Spawn("user", func(p *Proc) {
			r.Use(p, 1, func() { p.Sleep(2) })
			done = append(done, p.Now())
		})
	}
	k.Run()
	want := []Time{2, 4, 6}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "res", 2)
	var order []int
	k.Spawn("hog", func(p *Proc) {
		r.Acquire(p, 2)
		p.Sleep(10)
		r.Release(2)
	})
	for i := 0; i < 5; i++ {
		i := i
		k.Spawn("w", func(p *Proc) {
			p.Sleep(Time(i) + 1) // arrive in index order
			r.Acquire(p, 1)
			order = append(order, i)
			p.Sleep(100) // hold to force strict admission order
			r.Release(1)
		})
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("admission order = %v, want FIFO", order)
		}
	}
}

func TestResourceHeadOfLineBlocking(t *testing.T) {
	// A big request at the head must not be starved by small ones behind it.
	k := NewKernel()
	r := NewResource(k, "res", 4)
	var got []string
	k.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 3)
		p.Sleep(5)
		r.Release(3)
	})
	k.Spawn("big", func(p *Proc) {
		p.Sleep(1)
		r.Acquire(p, 4)
		got = append(got, "big")
		r.Release(4)
	})
	k.Spawn("small", func(p *Proc) {
		p.Sleep(2)
		r.Acquire(p, 1) // would fit now, but big is queued ahead
		got = append(got, "small")
		r.Release(1)
	})
	k.Run()
	if len(got) != 2 || got[0] != "big" || got[1] != "small" {
		t.Fatalf("order = %v, want [big small]", got)
	}
}

func TestTryAcquire(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "res", 2)
	if !r.TryAcquire(2) {
		t.Fatal("first TryAcquire should succeed")
	}
	if r.TryAcquire(1) {
		t.Fatal("TryAcquire should fail when full")
	}
	r.Release(2)
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire should succeed after release")
	}
}

func TestAcquireOverCapacityPanics(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "res", 1)
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
			panic(abortSignal{}) // unwind cleanly
		}()
		r.Acquire(p, 2)
	})
	k.Run()
}

func TestOverReleasePanics(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "res", 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.Release(1)
}

func TestResourceConservationProperty(t *testing.T) {
	// Property: with random hold times and demands, in-use never exceeds
	// capacity and returns to zero.
	f := func(holds []uint8) bool {
		k := NewKernel()
		const capUnits = 4
		r := NewResource(k, "res", capUnits)
		violated := false
		for _, h := range holds {
			need := int64(h%capUnits) + 1
			dur := Time(h%7) + 0.5
			k.Spawn("u", func(p *Proc) {
				r.Acquire(p, need)
				if r.InUse() > capUnits {
					violated = true
				}
				p.Sleep(dur)
				r.Release(need)
			})
		}
		k.Run()
		return !violated && r.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
