package sim

import "testing"

func TestQueueFIFO(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 0)
	var got []int
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(1)
			q.Put(p, i)
		}
		q.Close()
	})
	k.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	k.Run()
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("not FIFO: %v", got)
		}
	}
}

func TestQueueBoundedBlocksProducer(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 2)
	var putDone Time
	k.Spawn("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Put(p, 3) // must block until consumer reads at t=5
		putDone = p.Now()
		q.Close()
	})
	k.Spawn("consumer", func(p *Proc) {
		p.Sleep(5)
		for {
			if _, ok := q.Get(p); !ok {
				return
			}
		}
	})
	k.Run()
	if putDone != 5 {
		t.Fatalf("third put completed at %v, want 5", putDone)
	}
}

func TestQueueGetBlocksUntilPut(t *testing.T) {
	k := NewKernel()
	q := NewQueue[string](k, "q", 0)
	var gotAt Time
	k.Spawn("consumer", func(p *Proc) {
		v, ok := q.Get(p)
		if !ok || v != "x" {
			t.Errorf("got %q %v", v, ok)
		}
		gotAt = p.Now()
	})
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(3)
		q.Put(p, "x")
		q.Close()
	})
	k.Run()
	if gotAt != 3 {
		t.Fatalf("consumer unblocked at %v, want 3", gotAt)
	}
}

func TestQueueCloseWakesAllGetters(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 0)
	woken := 0
	for i := 0; i < 3; i++ {
		k.Spawn("g", func(p *Proc) {
			if _, ok := q.Get(p); !ok {
				woken++
			}
		})
	}
	k.Spawn("closer", func(p *Proc) {
		p.Sleep(1)
		q.Close()
	})
	k.Run()
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestQueueDrainAfterClose(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 0)
	var got []int
	k.Spawn("p", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Close()
	})
	k.Spawn("c", func(p *Proc) {
		p.Sleep(10) // start after close
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	k.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

func TestQueueTryGet(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 0)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue should fail")
	}
	k.Spawn("p", func(p *Proc) { q.Put(p, 7) })
	k.Run()
	if v, ok := q.TryGet(); !ok || v != 7 {
		t.Fatalf("TryGet = %v %v", v, ok)
	}
}

func TestEventBroadcast(t *testing.T) {
	k := NewKernel()
	e := NewEvent(k, "done")
	var woken []Time
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(p *Proc) {
			e.Wait(p)
			woken = append(woken, p.Now())
		})
	}
	k.Spawn("firer", func(p *Proc) {
		p.Sleep(4)
		e.Fire()
		e.Fire() // double fire is a no-op
	})
	k.Run()
	if len(woken) != 3 {
		t.Fatalf("woken %v", woken)
	}
	for _, w := range woken {
		if w != 4 {
			t.Fatalf("woken times %v, want all 4", woken)
		}
	}
	// Waiting after fire returns immediately.
	k2 := NewKernel()
	e2 := NewEvent(k2, "e2")
	e2.Fire()
	var at Time = -1
	k2.Spawn("late", func(p *Proc) {
		e2.Wait(p)
		at = p.Now()
	})
	k2.Run()
	if at != 0 {
		t.Fatalf("late waiter at %v, want 0", at)
	}
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel()
	wg := NewWaitGroup(k, "wg", 3)
	var releasedAt Time = -1
	k.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		releasedAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		i := i
		k.Spawn("worker", func(p *Proc) {
			p.Sleep(Time(i))
			wg.Done()
		})
	}
	k.Run()
	if releasedAt != 3 {
		t.Fatalf("released at %v, want 3", releasedAt)
	}
	if wg.Count() != 0 {
		t.Fatalf("count = %d", wg.Count())
	}
}
