package sim

// Queue is a FIFO channel-like conduit between simulated processes.
// A capacity of 0 means unbounded. Closing wakes all blocked getters;
// Put on a closed queue panics, mirroring Go channel semantics.
type Queue[T any] struct {
	k       *Kernel
	name    string
	cap     int
	buf     []T
	closed  bool
	getters []*Proc
	putters []qPutter[T]
}

type qPutter[T any] struct {
	p *Proc
	v T
}

// NewQueue creates a queue. capacity <= 0 means unbounded.
func NewQueue[T any](k *Kernel, name string, capacity int) *Queue[T] {
	return &Queue[T]{k: k, name: name, cap: capacity}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.buf) }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Put appends v, blocking while the queue is full.
func (q *Queue[T]) Put(p *Proc, v T) {
	if q.closed {
		panic("sim: put on closed queue " + q.name)
	}
	if q.cap <= 0 || len(q.buf)+len(q.putters) < q.cap {
		q.buf = append(q.buf, v)
		q.wakeGetter()
		return
	}
	q.putters = append(q.putters, qPutter[T]{p: p, v: v})
	p.park("queue put " + q.name)
	// When resumed, the value has been moved into buf by the getter side.
}

// Get removes and returns the oldest item. ok is false when the queue is
// closed and drained.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	for {
		if len(q.buf) > 0 {
			v = q.buf[0]
			q.buf = q.buf[1:]
			q.admitPutter()
			return v, true
		}
		if q.closed {
			var zero T
			return zero, false
		}
		q.getters = append(q.getters, p)
		p.park("queue get " + q.name)
	}
}

// TryGet removes the oldest item without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.buf) == 0 {
		var zero T
		return zero, false
	}
	v = q.buf[0]
	q.buf = q.buf[1:]
	q.admitPutter()
	return v, true
}

// Close marks the queue closed and wakes all blocked getters.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, g := range q.getters {
		gp := g
		q.k.At(q.k.now, func() { q.k.resume(gp) })
	}
	q.getters = nil
}

func (q *Queue[T]) wakeGetter() {
	if len(q.getters) == 0 {
		return
	}
	gp := q.getters[0]
	q.getters = q.getters[1:]
	q.k.At(q.k.now, func() { q.k.resume(gp) })
}

func (q *Queue[T]) admitPutter() {
	if len(q.putters) == 0 {
		return
	}
	w := q.putters[0]
	q.putters = q.putters[1:]
	q.buf = append(q.buf, w.v)
	wp := w.p
	q.k.At(q.k.now, func() { q.k.resume(wp) })
}
