package sim

// Resource is a counted resource with FIFO admission: a waiter at the head
// of the queue blocks later waiters even if they would fit, which prevents
// starvation of large requests.
type Resource struct {
	k        *Kernel
	name     string
	capacity int64
	used     int64
	waiters  []resWaiter
}

type resWaiter struct {
	p *Proc
	n int64
}

// NewResource creates a resource with the given capacity (units are up to
// the caller: slots, bytes in flight, etc.).
func NewResource(k *Kernel, name string, capacity int64) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive: " + name)
	}
	return &Resource{k: k, name: name, capacity: capacity}
}

// Capacity returns the total capacity.
func (r *Resource) Capacity() int64 { return r.capacity }

// InUse returns the currently held units.
func (r *Resource) InUse() int64 { return r.used }

// Waiting returns the number of queued acquirers.
func (r *Resource) Waiting() int { return len(r.waiters) }

// Acquire blocks p until n units are available. n must not exceed capacity.
func (r *Resource) Acquire(p *Proc, n int64) {
	if n <= 0 {
		return
	}
	if n > r.capacity {
		panic("sim: acquire exceeds capacity of " + r.name)
	}
	if len(r.waiters) == 0 && r.used+n <= r.capacity {
		r.used += n
		return
	}
	r.waiters = append(r.waiters, resWaiter{p: p, n: n})
	p.park("resource " + r.name)
}

// TryAcquire acquires n units without blocking; it reports whether it
// succeeded.
func (r *Resource) TryAcquire(n int64) bool {
	if n <= 0 {
		return true
	}
	if len(r.waiters) == 0 && r.used+n <= r.capacity {
		r.used += n
		return true
	}
	return false
}

// Release returns n units and admits queued waiters in FIFO order.
// It may be called from kernel context or from any process.
func (r *Resource) Release(n int64) {
	if n <= 0 {
		return
	}
	r.used -= n
	if r.used < 0 {
		panic("sim: over-release of resource " + r.name)
	}
	r.dispatch()
}

func (r *Resource) dispatch() {
	for len(r.waiters) > 0 && r.used+r.waiters[0].n <= r.capacity {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.used += w.n
		wp := w.p
		r.k.At(r.k.now, func() { r.k.resume(wp) })
	}
}

// Use acquires n units, runs fn, and releases them. The release happens even
// if fn panics (including simulation teardown aborts).
func (r *Resource) Use(p *Proc, n int64, fn func()) {
	r.Acquire(p, n)
	defer r.Release(n)
	fn()
}
