package sim

import "testing"

func TestAccessors(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "res", 3)
	if r.Capacity() != 3 || r.InUse() != 0 || r.Waiting() != 0 {
		t.Fatal("fresh resource accessors wrong")
	}
	q := NewQueue[int](k, "q", 2)
	if q.Len() != 0 || q.Closed() {
		t.Fatal("fresh queue accessors wrong")
	}
	e := NewEvent(k, "ev")
	if e.Fired() {
		t.Fatal("fresh event fired")
	}
	var name, blocked string
	p := k.Spawn("worker", func(p *Proc) {
		name = p.Name()
		if p.Kernel() != k {
			t.Error("Kernel() wrong")
		}
		p.Yield()
		q.Put(p, 1)
		e.Fire()
		r.Acquire(p, 1)
	})
	_ = p
	k.At(0.5, func() {
		bl := k.BlockedOn()
		_ = bl
	})
	k.Run()
	if name != "worker" {
		t.Fatalf("name = %q", name)
	}
	if !e.Fired() || q.Len() != 1 {
		t.Fatal("event/queue state wrong after run")
	}
	if r.InUse() != 1 {
		t.Fatal("resource not held")
	}
	_ = blocked
}

func TestAfterSchedulesRelative(t *testing.T) {
	k := NewKernel()
	var at Time
	k.After(2, func() {
		at = k.Now()
		k.After(3, func() { at = k.Now() })
	})
	k.Run()
	if at != 5 {
		t.Fatalf("nested After fired at %v, want 5", at)
	}
}

func TestBlockedOnReportsWaiters(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "gate", 1)
	r.TryAcquire(1)
	k.Spawn("stuck", func(p *Proc) { r.Acquire(p, 1) })
	var report []string
	k.At(1, func() { report = k.BlockedOn() })
	k.Run()
	if len(report) != 1 || report[0] != "stuck: resource gate" {
		t.Fatalf("BlockedOn = %v", report)
	}
}

func TestResourceUseReleasesOnAbort(t *testing.T) {
	// A process aborted at teardown while inside Use must still release.
	k := NewKernel()
	r := NewResource(k, "res", 1)
	gate := NewResource(k, "gate", 1)
	gate.TryAcquire(1) // never released: holder blocks forever
	k.Spawn("holder", func(p *Proc) {
		r.Use(p, 1, func() {
			gate.Acquire(p, 1) // parks forever; aborted at teardown
		})
	})
	k.Run()
	if r.InUse() != 0 {
		t.Fatalf("resource leaked %d units across abort", r.InUse())
	}
	if k.LiveProcs() != 0 {
		t.Fatal("leaked procs")
	}
}

func TestZeroCapacityResourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewResource(NewKernel(), "bad", 0)
}

func TestPutOnClosedQueuePanics(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 0)
	q.Close()
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic putting on closed queue")
			}
			panic(abortSignal{})
		}()
		q.Put(p, 1)
	})
	k.Run()
}

func TestAcquireZeroIsNoop(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "res", 1)
	k.Spawn("p", func(p *Proc) {
		r.Acquire(p, 0)
		r.Release(0)
	})
	k.Run()
	if r.InUse() != 0 {
		t.Fatal("zero acquire changed state")
	}
	if !r.TryAcquire(0) {
		t.Fatal("TryAcquire(0) should succeed")
	}
}

func TestEventWaitAfterAbortCleanup(t *testing.T) {
	// Multiple procs waiting on an event that never fires must all be
	// aborted without leaks.
	k := NewKernel()
	e := NewEvent(k, "never")
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(p *Proc) { e.Wait(p) })
	}
	k.Run()
	if k.LiveProcs() != 0 {
		t.Fatalf("leaked %d procs", k.LiveProcs())
	}
}
