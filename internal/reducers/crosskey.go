package reducers

import (
	"blmr/internal/core"
)

// Cross-key operations (Section 4.6): the reduce computation depends on a
// window of previously seen keys rather than on a single key (genetic
// algorithms: collect window_size individuals, then select/crossover and
// emit). Memory is O(window_size) in both modes, so the same implementation
// serves as GroupReducer, StreamReducer and Cleanup.

// WindowOp processes one full (or final partial) window of records and
// emits outputs.
type WindowOp func(window []core.Record, out core.Output)

// CrossKeyWindow buffers records into tumbling windows of the given size
// and applies op to each full window; Finish/Cleanup flushes the remainder.
type CrossKeyWindow struct {
	size   int
	op     WindowOp
	window []core.Record
}

// NewCrossKeyWindow creates a windowed cross-key reducer.
func NewCrossKeyWindow(size int, op WindowOp) *CrossKeyWindow {
	if size <= 0 {
		panic("reducers: window size must be positive")
	}
	return &CrossKeyWindow{size: size, op: op}
}

// MemBytes reports the current window footprint (O(window_size)).
func (c *CrossKeyWindow) MemBytes() int64 { return core.RecordsSize(c.window) }

// Consume implements core.StreamReducer.
func (c *CrossKeyWindow) Consume(rec core.Record, out core.Output) {
	c.window = append(c.window, rec)
	if len(c.window) >= c.size {
		c.op(c.window, out)
		c.window = c.window[:0]
	}
}

// Finish implements core.StreamReducer.
func (c *CrossKeyWindow) Finish(out core.Output) {
	if len(c.window) > 0 {
		c.op(c.window, out)
		c.window = c.window[:0]
	}
}

// Reduce implements core.GroupReducer: each (key, value) pair joins the
// window exactly as in the stream form.
func (c *CrossKeyWindow) Reduce(key string, values []string, out core.Output) {
	for _, v := range values {
		c.Consume(core.Record{Key: key, Value: v}, out)
	}
}

// Cleanup implements core.Cleanup for the barrier engine.
func (c *CrossKeyWindow) Cleanup(out core.Output) { c.Finish(out) }
