// Package reducers implements the paper's seven classes of Reduce
// operations (Section 4, Table 1), each in two forms:
//
//   - a classic barrier-mode GroupReducer, which receives a key with all of
//     its values at once, in key-sorted order; and
//   - a barrier-less StreamReducer, which receives records one at a time in
//     arrival order and maintains per-key partial results in a store.Store.
//
// The pairs are semantically equivalent: for identical inputs they produce
// identical output multisets (the test suite verifies this per class), which
// is the paper's "correctness and completeness is not compromised" claim.
package reducers

import (
	"strconv"
	"strings"

	"blmr/internal/core"
	"blmr/internal/store"
)

// --- Shared mergers --------------------------------------------------------

// SumMerger adds two decimal-integer partials (the word-count combiner).
func SumMerger(a, b string) string {
	x, _ := strconv.ParseInt(a, 10, 64)
	y, _ := strconv.ParseInt(b, 10, 64)
	return strconv.FormatInt(x+y, 10)
}

// --- Identity (Section 4.1) -------------------------------------------------

// Identity passes records straight through: no sorting requirement, no
// partial results. Identical in both modes (e.g. distributed grep).
type Identity struct{}

// Reduce implements core.GroupReducer.
func (Identity) Reduce(key string, values []string, out core.Output) {
	for _, v := range values {
		out.Write(key, v)
	}
}

// Consume implements core.StreamReducer.
func (Identity) Consume(rec core.Record, out core.Output) { out.Write(rec.Key, rec.Value) }

// Finish implements core.StreamReducer.
func (Identity) Finish(core.Output) {}

// --- Sorting (Section 4.2) ---------------------------------------------------

// SortingGroup is the barrier-mode sort "reducer": the framework has already
// sorted by key, so it just writes each record out.
type SortingGroup struct{}

// Reduce implements core.GroupReducer.
func (SortingGroup) Reduce(key string, values []string, out core.Output) {
	for range values {
		out.Write(key, "")
	}
}

// SortingStream is the barrier-less sort: a per-key duplicate count is kept
// in the store (so duplicates don't consume memory, per Section 6.1.1), and
// keys are emitted count times, in order, at Finish.
type SortingStream struct {
	st store.Store
}

// NewSortingStream creates a barrier-less sorter over st. Use SumMerger as
// the store's spill merger.
func NewSortingStream(st store.Store) *SortingStream { return &SortingStream{st: st} }

// Consume implements core.StreamReducer: one single-descent increment of
// the key's duplicate count.
func (s *SortingStream) Consume(rec core.Record, out core.Output) {
	s.st.Merge(rec.Key, "1", SumMerger)
}

// Finish implements core.StreamReducer: emit each key count times.
func (s *SortingStream) Finish(out core.Output) {
	s.st.Emit(core.OutputFunc(func(key, val string) {
		n, _ := strconv.ParseInt(val, 10, 64)
		for i := int64(0); i < n; i++ {
			out.Write(key, "")
		}
	}))
}

// --- Aggregation (Section 4.3) -----------------------------------------------

// AggregationGroup folds all values of a key with a commutative combine
// function and emits the aggregate immediately (barrier mode).
type AggregationGroup struct {
	Combine store.Merger
}

// Reduce implements core.GroupReducer.
func (a AggregationGroup) Reduce(key string, values []string, out core.Output) {
	if len(values) == 1 {
		// Single-value groups skip the fold, so the retained value would
		// alias the merge input — on the pooled TCP fetch path, a view
		// into a shared 64KiB decode-arena chunk. Clone it: thousands of
		// hapax keys each pinning a chunk would hold the whole fetched
		// partition live for the lifetime of the output (see codec.Arena).
		out.Write(key, strings.Clone(values[0]))
		return
	}
	acc := a.Combine(values[0], values[1])
	for _, v := range values[2:] {
		acc = a.Combine(acc, v)
	}
	out.Write(key, acc)
}

// AggregationStream keeps a running aggregate per key in the store
// (barrier-less word count). The combine function doubles as the spill
// merger.
type AggregationStream struct {
	st      store.Store
	combine store.Merger
}

// NewAggregationStream creates a running aggregator over st.
func NewAggregationStream(st store.Store, combine store.Merger) *AggregationStream {
	return &AggregationStream{st: st, combine: combine}
}

// Consume implements core.StreamReducer: the read-modify-update cycle, one
// store descent per record via Merge.
func (a *AggregationStream) Consume(rec core.Record, out core.Output) {
	a.st.Merge(rec.Key, rec.Value, a.combine)
}

// Finish implements core.StreamReducer.
func (a *AggregationStream) Finish(out core.Output) { a.st.Emit(out) }
