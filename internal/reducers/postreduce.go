package reducers

import (
	"sort"
	"strconv"

	"blmr/internal/core"
	"blmr/internal/store"
)

// Post-reduction processing (Section 4.5): values for a key are first
// collected into a temporary structure (here: a duplicate-free set), and a
// post-processing step computes the final output (here: the set's
// cardinality) — the Last.fm unique-listens computation.

// PostReductionGroup is the barrier-mode form: all values for the key are
// present, so dedupe and count directly.
type PostReductionGroup struct{}

// Reduce implements core.GroupReducer.
func (PostReductionGroup) Reduce(key string, values []string, out core.Output) {
	set := make(map[string]bool, len(values))
	for _, v := range values {
		set[v] = true
	}
	out.Write(key, strconv.Itoa(len(set)))
}

// PostReductionStream maintains a per-key set in the store as a sorted
// joined string; Finish counts each set. Partial results grow with the
// number of distinct values — O(records) worst case, the paper's motivating
// class for memory management.
type PostReductionStream struct {
	st store.Store
}

// NewPostReductionStream creates a unique-value counter over st. Use
// SetUnionMerger as the store's spill merger.
func NewPostReductionStream(st store.Store) *PostReductionStream {
	return &PostReductionStream{st: st}
}

// Consume implements core.StreamReducer.
func (p *PostReductionStream) Consume(rec core.Record, out core.Output) {
	var set []string
	if prev, ok := p.st.Get(rec.Key); ok {
		set = core.SplitList(prev)
	}
	pos := sort.SearchStrings(set, rec.Value)
	if pos < len(set) && set[pos] == rec.Value {
		return // duplicate
	}
	set = append(set, "")
	copy(set[pos+1:], set[pos:])
	set[pos] = rec.Value
	p.st.Put(rec.Key, core.JoinList(set...))
}

// Finish implements core.StreamReducer: post-process each set to its count.
func (p *PostReductionStream) Finish(out core.Output) {
	p.st.Emit(core.OutputFunc(func(key, joined string) {
		out.Write(key, strconv.Itoa(len(core.SplitList(joined))))
	}))
}

// SetUnionMerger merges two sorted duplicate-free sets into one.
func SetUnionMerger(a, b string) string {
	la, lb := core.SplitList(a), core.SplitList(b)
	merged := make([]string, 0, len(la)+len(lb))
	i, j := 0, 0
	for i < len(la) || j < len(lb) {
		switch {
		case i >= len(la):
			merged = append(merged, lb[j])
			j++
		case j >= len(lb):
			merged = append(merged, la[i])
			i++
		case la[i] < lb[j]:
			merged = append(merged, la[i])
			i++
		case la[i] > lb[j]:
			merged = append(merged, lb[j])
			j++
		default:
			merged = append(merged, la[i])
			i++
			j++
		}
	}
	return core.JoinList(merged...)
}
