package reducers

import (
	"math"
	"strconv"

	"blmr/internal/core"
)

// Single reducer aggregation (Section 4.7): one reducer computes global
// statistics (mean and standard deviation) over every mapped value, using
// the paper's running-sums identity
//
//	sigma = sqrt( (1/N) * sum(x_i^2) - mean^2 )
//
// so only O(1) partial state is kept. Mappers emit the value and its square
// joined into one record value.

// MomentsValue encodes x for consumption by Moments (the mapper-side half
// of the paper's trick: emit the square along with the value).
func MomentsValue(x float64) string {
	return core.JoinValues(
		strconv.FormatFloat(x, 'g', 17, 64),
		strconv.FormatFloat(x*x, 'g', 17, 64),
	)
}

// Moments accumulates count, sum and sum-of-squares, and emits mean and
// standard deviation at the end. It implements both reduce contracts plus
// Cleanup so it can run under either engine.
type Moments struct {
	n     int64
	sum   float64
	sumSq float64
}

// NewMoments creates an empty accumulator.
func NewMoments() *Moments { return &Moments{} }

// Consume implements core.StreamReducer.
func (m *Moments) Consume(rec core.Record, out core.Output) { m.add(rec.Value) }

// Reduce implements core.GroupReducer.
func (m *Moments) Reduce(key string, values []string, out core.Output) {
	for _, v := range values {
		m.add(v)
	}
}

func (m *Moments) add(v string) {
	parts := core.SplitValues(v)
	if len(parts) != 2 {
		panic("reducers: Moments value must be MomentsValue-encoded")
	}
	x, _ := strconv.ParseFloat(parts[0], 64)
	x2, _ := strconv.ParseFloat(parts[1], 64)
	m.n++
	m.sum += x
	m.sumSq += x2
}

// Finish implements core.StreamReducer.
func (m *Moments) Finish(out core.Output) {
	if m.n == 0 {
		return
	}
	mean := m.sum / float64(m.n)
	variance := m.sumSq/float64(m.n) - mean*mean
	if variance < 0 {
		variance = 0 // guard tiny negative from floating-point cancellation
	}
	out.Write("count", strconv.FormatInt(m.n, 10))
	out.Write("mean", strconv.FormatFloat(mean, 'g', 12, 64))
	out.Write("stddev", strconv.FormatFloat(math.Sqrt(variance), 'g', 12, 64))
}

// Cleanup implements core.Cleanup for the barrier engine.
func (m *Moments) Cleanup(out core.Output) { m.Finish(out) }
