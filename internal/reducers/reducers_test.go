package reducers

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"testing"
	"testing/quick"

	"blmr/internal/core"
	"blmr/internal/kvstore"
	"blmr/internal/sortx"
	"blmr/internal/store"
)

type sink struct{ recs []core.Record }

func (s *sink) Write(k, v string) { s.recs = append(s.recs, core.Record{Key: k, Value: v}) }

// sortedCopy returns records sorted by (key, value) for multiset comparison.
func sortedCopy(recs []core.Record) []core.Record {
	out := append([]core.Record(nil), recs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Value < out[j].Value
	})
	return out
}

func sameMultiset(t *testing.T, name string, a, b []core.Record) {
	t.Helper()
	sa, sb := sortedCopy(a), sortedCopy(b)
	if len(sa) != len(sb) {
		t.Fatalf("%s: %d vs %d records", name, len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("%s: record %d differs: %v vs %v", name, i, sa[i], sb[i])
		}
	}
}

// runBarrier drives a GroupReducer the way the barrier engine does: records
// sorted by key, grouped, plus Cleanup if implemented.
func runBarrier(gr core.GroupReducer, recs []core.Record) []core.Record {
	sorted := append([]core.Record(nil), recs...)
	sortx.ByKey(sorted)
	out := &sink{}
	sortx.Group(sorted, func(k string, vs []string) { gr.Reduce(k, vs, out) })
	if c, ok := gr.(core.Cleanup); ok {
		c.Cleanup(out)
	}
	return out.recs
}

// runStream drives a StreamReducer in arrival order.
func runStream(sr core.StreamReducer, recs []core.Record) []core.Record {
	out := &sink{}
	for _, r := range recs {
		sr.Consume(r, out)
	}
	sr.Finish(out)
	return out.recs
}

func shuffled(recs []core.Record, seed int64) []core.Record {
	out := append([]core.Record(nil), recs...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func eachStore(t *testing.T, merger store.Merger, fn func(name string, st store.Store)) {
	t.Helper()
	fn("in-memory", store.NewMemStore())
	fn("spill", store.NewSpillStore(1024, merger, nil))
	fn("kv", store.NewKVStore(kvstore.New(kvstore.Config{CacheBytes: 512})))
}

func TestIdentityEquivalence(t *testing.T) {
	var recs []core.Record
	for i := 0; i < 200; i++ {
		recs = append(recs, core.Record{Key: fmt.Sprintf("line%03d", i%50), Value: fmt.Sprintf("text %d", i)})
	}
	b := runBarrier(Identity{}, recs)
	s := runStream(Identity{}, shuffled(recs, 1))
	sameMultiset(t, "identity", b, s)
	if len(b) != len(recs) {
		t.Fatalf("identity dropped records: %d of %d", len(b), len(recs))
	}
}

func TestSortingEquivalence(t *testing.T) {
	var recs []core.Record
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		recs = append(recs, core.Record{Key: core.EncodeUint64(uint64(rng.Intn(100))), Value: ""})
	}
	b := runBarrier(SortingGroup{}, recs)
	if !sort.SliceIsSorted(b, func(i, j int) bool { return b[i].Key < b[j].Key }) {
		t.Fatal("barrier sort output not sorted")
	}
	eachStore(t, SumMerger, func(name string, st store.Store) {
		s := runStream(NewSortingStream(st), shuffled(recs, 3))
		if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i].Key < s[j].Key }) {
			t.Fatalf("%s: stream sort output not sorted", name)
		}
		sameMultiset(t, "sorting/"+name, b, s)
	})
}

func TestAggregationEquivalence(t *testing.T) {
	var recs []core.Record
	for i := 0; i < 3000; i++ {
		recs = append(recs, core.Record{Key: fmt.Sprintf("w%02d", i%40), Value: "1"})
	}
	b := runBarrier(AggregationGroup{Combine: SumMerger}, recs)
	if len(b) != 40 {
		t.Fatalf("barrier produced %d keys", len(b))
	}
	eachStore(t, SumMerger, func(name string, st store.Store) {
		s := runStream(NewAggregationStream(st, SumMerger), shuffled(recs, 4))
		sameMultiset(t, "aggregation/"+name, b, s)
	})
}

func TestAggregationCountsExactly(t *testing.T) {
	recs := []core.Record{
		{Key: "a", Value: "1"}, {Key: "b", Value: "1"}, {Key: "a", Value: "1"},
		{Key: "a", Value: "1"}, {Key: "b", Value: "1"},
	}
	got := runStream(NewAggregationStream(store.NewMemStore(), SumMerger), recs)
	want := map[string]string{"a": "3", "b": "2"}
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	for _, r := range got {
		if want[r.Key] != r.Value {
			t.Fatalf("%s = %s, want %s", r.Key, r.Value, want[r.Key])
		}
	}
}

func TestSelectionEquivalence(t *testing.T) {
	const k = 5
	rng := rand.New(rand.NewSource(5))
	var recs []core.Record
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("q%02d", i%20)
		dist := rng.Float64() * 1000
		val := core.JoinValues(core.EncodeFloat64(dist), fmt.Sprintf("p%d", i))
		recs = append(recs, core.Record{Key: key, Value: val})
	}
	b := runBarrier(SelectionGroup{K: k}, recs)
	if len(b) != 20*k {
		t.Fatalf("barrier selected %d, want %d", len(b), 20*k)
	}
	eachStore(t, SelectionMerger(k), func(name string, st store.Store) {
		s := runStream(NewSelectionStream(st, k), shuffled(recs, 6))
		sameMultiset(t, "selection/"+name, b, s)
	})
}

func TestSelectionKeepsSmallest(t *testing.T) {
	st := store.NewMemStore()
	sel := NewSelectionStream(st, 2)
	for _, d := range []float64{5, 1, 9, 3, 7} {
		sel.Consume(core.Record{Key: "x", Value: core.JoinValues(core.EncodeFloat64(d), "")}, nil)
	}
	out := &sink{}
	sel.Finish(out)
	if len(out.recs) != 2 {
		t.Fatalf("kept %d", len(out.recs))
	}
	d0 := core.DecodeFloat64(core.SplitValues(out.recs[0].Value)[0])
	d1 := core.DecodeFloat64(core.SplitValues(out.recs[1].Value)[0])
	if d0 != 1 || d1 != 3 {
		t.Fatalf("kept distances %v %v, want 1 3", d0, d1)
	}
}

func TestSelectionMergerProperty(t *testing.T) {
	// Property: merging two top-k lists equals computing top-k of the union.
	f := func(xs, ys []uint16, kk uint8) bool {
		k := int(kk%8) + 1
		mk := func(vals []uint16) string {
			var list []string
			for _, v := range vals {
				list = insertTopK(list, core.EncodeUint64(uint64(v)), k)
			}
			return core.JoinList(list...)
		}
		merged := SelectionMerger(k)(mk(xs), mk(ys))
		var all []string
		for _, v := range append(append([]uint16{}, xs...), ys...) {
			all = insertTopK(all, core.EncodeUint64(uint64(v)), k)
		}
		return merged == core.JoinList(all...)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPostReductionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var recs []core.Record
	for i := 0; i < 3000; i++ {
		track := fmt.Sprintf("t%03d", rng.Intn(100))
		user := fmt.Sprintf("u%02d", rng.Intn(30))
		recs = append(recs, core.Record{Key: track, Value: user})
	}
	b := runBarrier(PostReductionGroup{}, recs)
	eachStore(t, SetUnionMerger, func(name string, st store.Store) {
		s := runStream(NewPostReductionStream(st), shuffled(recs, 8))
		sameMultiset(t, "postreduce/"+name, b, s)
	})
}

func TestPostReductionCountsUnique(t *testing.T) {
	recs := []core.Record{
		{Key: "song", Value: "alice"}, {Key: "song", Value: "bob"},
		{Key: "song", Value: "alice"}, {Key: "song", Value: "alice"},
	}
	got := runStream(NewPostReductionStream(store.NewMemStore()), recs)
	if len(got) != 1 || got[0].Value != "2" {
		t.Fatalf("got %v, want song=2", got)
	}
}

func TestSetUnionMergerProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		mk := func(vals []uint8) string {
			set := map[string]bool{}
			for _, v := range vals {
				set[fmt.Sprintf("v%03d", v)] = true
			}
			keys := make([]string, 0, len(set))
			for k := range set {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			return core.JoinList(keys...)
		}
		merged := SetUnionMerger(mk(xs), mk(ys))
		return merged == mk(append(append([]uint8{}, xs...), ys...))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossKeyWindow(t *testing.T) {
	var windows [][]core.Record
	op := func(w []core.Record, out core.Output) {
		windows = append(windows, append([]core.Record(nil), w...))
		for _, r := range w {
			out.Write(r.Key, r.Value)
		}
	}
	ck := NewCrossKeyWindow(4, op)
	var recs []core.Record
	for i := 0; i < 10; i++ {
		recs = append(recs, core.Record{Key: fmt.Sprintf("ind%02d", i), Value: "f"})
	}
	got := runStream(ck, recs)
	if len(got) != 10 {
		t.Fatalf("emitted %d", len(got))
	}
	if len(windows) != 3 {
		t.Fatalf("windows = %d, want 3 (4+4+2)", len(windows))
	}
	if len(windows[2]) != 2 {
		t.Fatalf("final partial window = %d, want 2", len(windows[2]))
	}
	if ck.MemBytes() != 0 {
		t.Fatal("window not drained")
	}
}

func TestCrossKeyBarrierStreamEquivalence(t *testing.T) {
	op := func(w []core.Record, out core.Output) {
		// A deterministic, order-insensitive window op: emit count and sum
		// of window fitness values.
		sum := 0
		for _, r := range w {
			f, _ := strconv.Atoi(r.Value)
			sum += f
		}
		out.Write("window", fmt.Sprintf("%d:%d", len(w), sum))
	}
	var recs []core.Record
	for i := 0; i < 23; i++ {
		recs = append(recs, core.Record{Key: core.EncodeUint64(uint64(i)), Value: strconv.Itoa(i)})
	}
	b := runBarrier(NewCrossKeyWindow(5, op), recs) // sorted arrival
	s := runStream(NewCrossKeyWindow(5, op), recs)  // same order
	sameMultiset(t, "crosskey", b, s)
}

func TestMomentsMatchesDirectComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var recs []core.Record
	var xs []float64
	for i := 0; i < 5000; i++ {
		x := rng.NormFloat64()*3 + 10
		xs = append(xs, x)
		recs = append(recs, core.Record{Key: "0", Value: MomentsValue(x)})
	}
	got := runStream(NewMoments(), recs)
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	var mean, sd float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	gm, _ := strconv.ParseFloat(got[1].Value, 64)
	gs, _ := strconv.ParseFloat(got[2].Value, 64)
	if math.Abs(gm-mean) > 1e-9*math.Abs(mean) {
		t.Fatalf("mean = %v, want %v", gm, mean)
	}
	if math.Abs(gs-sd) > 1e-6*sd {
		t.Fatalf("stddev = %v, want %v", gs, sd)
	}
}

func TestMomentsBarrierEquivalence(t *testing.T) {
	var recs []core.Record
	for i := 0; i < 100; i++ {
		recs = append(recs, core.Record{Key: "0", Value: MomentsValue(float64(i))})
	}
	b := runBarrier(NewMoments(), recs)
	s := runStream(NewMoments(), shuffled(recs, 10))
	sameMultiset(t, "moments", b, s)
}

func TestMomentsEmptyInput(t *testing.T) {
	got := runStream(NewMoments(), nil)
	if len(got) != 0 {
		t.Fatalf("empty input produced %v", got)
	}
}

func TestSumMerger(t *testing.T) {
	if SumMerger("3", "4") != "7" {
		t.Fatal("3+4")
	}
	if SumMerger("-2", "2") != "0" {
		t.Fatal("-2+2")
	}
}

func TestInsertTopKBounds(t *testing.T) {
	var list []string
	for i := 9; i >= 0; i-- {
		list = insertTopK(list, fmt.Sprintf("%d", i), 3)
	}
	if len(list) != 3 || list[0] != "0" || list[2] != "2" {
		t.Fatalf("list = %v", list)
	}
}
