package reducers

import (
	"sort"
	"strings"

	"blmr/internal/core"
	"blmr/internal/store"
)

// Selection (Section 4.4): keep the k values with the smallest metric per
// key (k-nearest-neighbors). Values must be order-preserving encoded so the
// metric is their string prefix — e.g. core.JoinValues(core.EncodeFloat64(d),
// payload); plain string comparison then orders by metric.

// SelectionGroup is the barrier-mode top-k: with all values present, sort
// and take the first k (the paper's secondary-sort idiom collapsed into the
// reducer, since our values embed the metric).
type SelectionGroup struct {
	K int
}

// Reduce implements core.GroupReducer.
func (s SelectionGroup) Reduce(key string, values []string, out core.Output) {
	sorted := append([]string(nil), values...)
	sort.Strings(sorted)
	if len(sorted) > s.K {
		sorted = sorted[:s.K]
	}
	for _, v := range sorted {
		// Clone: top-k retains a sparse subset of the group's values, and
		// on the pooled TCP fetch path those are views into shared 64KiB
		// decode-arena chunks — keeping k short strings must not pin the
		// whole fetched partition (see codec.Arena). Dense retainers
		// (Identity) keep every value, so for them the chunks are all
		// live anyway and no clone is needed.
		out.Write(key, strings.Clone(v))
	}
}

// SelectionStream is the barrier-less top-k: a size-k ordered list per key
// lives in the store as a joined string; each arriving value is inserted in
// order and the largest entry evicted when the list exceeds k — the paper's
// "size-k ordered linked list".
type SelectionStream struct {
	st store.Store
	k  int
}

// NewSelectionStream creates a top-k selector over st. Use
// SelectionMerger(k) as the store's spill merger.
func NewSelectionStream(st store.Store, k int) *SelectionStream {
	if k <= 0 {
		panic("reducers: selection k must be positive")
	}
	return &SelectionStream{st: st, k: k}
}

// Consume implements core.StreamReducer.
func (s *SelectionStream) Consume(rec core.Record, out core.Output) {
	var list []string
	if prev, ok := s.st.Get(rec.Key); ok {
		list = core.SplitList(prev)
	}
	list = insertTopK(list, rec.Value, s.k)
	s.st.Put(rec.Key, core.JoinList(list...))
}

// Finish implements core.StreamReducer: unpack each key's list into
// individual output records, matching the barrier-mode format.
func (s *SelectionStream) Finish(out core.Output) {
	s.st.Emit(core.OutputFunc(func(key, joined string) {
		for _, v := range core.SplitList(joined) {
			out.Write(key, v)
		}
	}))
}

// insertTopK inserts v into the sorted list, keeping at most k entries.
func insertTopK(list []string, v string, k int) []string {
	pos := sort.SearchStrings(list, v)
	if pos >= k {
		return list // v is larger than everything we keep
	}
	list = append(list, "")
	copy(list[pos+1:], list[pos:])
	list[pos] = v
	if len(list) > k {
		list = list[:k]
	}
	return list
}

// SelectionMerger returns a spill merger that merges two top-k lists into
// one, preserving the k smallest entries overall.
func SelectionMerger(k int) store.Merger {
	return func(a, b string) string {
		la, lb := core.SplitList(a), core.SplitList(b)
		merged := make([]string, 0, len(la)+len(lb))
		i, j := 0, 0
		for (i < len(la) || j < len(lb)) && len(merged) < k {
			switch {
			case i >= len(la):
				merged = append(merged, lb[j])
				j++
			case j >= len(lb) || la[i] <= lb[j]:
				merged = append(merged, la[i])
				i++
			default:
				merged = append(merged, lb[j])
				j++
			}
		}
		return core.JoinList(merged...)
	}
}
