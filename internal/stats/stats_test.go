package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	b := Summarize([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.Q1 != 2 || b.Q3 != 4 || b.N != 5 {
		t.Fatalf("box = %+v", b)
	}
}

func TestSummarizeSingle(t *testing.T) {
	b := Summarize([]float64{7})
	if b.Min != 7 || b.Max != 7 || b.Median != 7 || b.Q1 != 7 || b.Q3 != 7 {
		t.Fatalf("box = %+v", b)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := []float64{0, 10}
	if q := Quantile(s, 0.5); q != 5 {
		t.Fatalf("median of {0,10} = %v", q)
	}
	if q := Quantile(s, 0.25); q != 2.5 {
		t.Fatalf("q1 = %v", q)
	}
	if Quantile(s, 0) != 0 || Quantile(s, 1) != 10 {
		t.Fatal("extremes wrong")
	}
}

func TestBoxOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		b := Summarize(xs)
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileWithinRangeProperty(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		qq := math.Mod(math.Abs(q), 1)
		v := Quantile(xs, qq)
		return v >= xs[0] && v <= xs[len(xs)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean of 1,2,3")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(200, 150); got != 25 {
		t.Fatalf("improvement = %v, want 25", got)
	}
	if got := Improvement(100, 187); got != -87 {
		t.Fatalf("slowdown = %v, want -87", got)
	}
	if Improvement(0, 5) != 0 {
		t.Fatal("zero base")
	}
}

func TestRenderBoxes(t *testing.T) {
	out := RenderBoxes([]string{"WC", "BS"}, []Box{
		{Min: 10, Q1: 12, Median: 15, Q3: 20, Max: 30, N: 4},
		{Min: 40, Q1: 50, Median: 60, Q3: 70, Max: 87, N: 4},
	}, 40)
	if !strings.Contains(out, "WC") || !strings.Contains(out, "BS") {
		t.Fatalf("labels missing:\n%s", out)
	}
	if !strings.Contains(out, "M") {
		t.Fatal("median marker missing")
	}
	if !strings.Contains(out, "max=  87.0") {
		t.Fatalf("stats missing:\n%s", out)
	}
}
