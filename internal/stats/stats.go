// Package stats provides the small statistical summaries the evaluation
// needs: quartile box-plot summaries (Figure 7) and percentage-improvement
// helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Box is a five-number summary.
type Box struct {
	Min, Q1, Median, Q3, Max float64
	N                        int
}

// Summarize computes the five-number summary of xs using linear
// interpolation between order statistics (type-7 quantiles, the common
// spreadsheet definition). It panics on empty input.
func Summarize(xs []float64) Box {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Box{
		Min:    s[0],
		Q1:     Quantile(s, 0.25),
		Median: Quantile(s, 0.5),
		Q3:     Quantile(s, 0.75),
		Max:    s[len(s)-1],
		N:      len(s),
	}
}

// Quantile returns the q-quantile (0..1) of a sorted sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Improvement returns the percent reduction of with relative to base:
// 100*(base-with)/base. Positive = faster.
func Improvement(base, with float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - with) / base
}

// RenderBoxes draws a textual box plot: one labeled row per box, with the
// min/Q1/median/Q3/max marked on a shared horizontal axis — the textual
// equivalent of Figure 7.
func RenderBoxes(labels []string, boxes []Box, width int) string {
	if len(labels) != len(boxes) {
		panic("stats: labels/boxes length mismatch")
	}
	if width < 20 {
		width = 60
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range boxes {
		lo = math.Min(lo, b.Min)
		hi = math.Max(hi, b.Max)
	}
	if lo == hi {
		hi = lo + 1
	}
	scale := func(v float64) int {
		p := int(float64(width-1) * (v - lo) / (hi - lo))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	var sb strings.Builder
	for i, b := range boxes {
		row := make([]byte, width)
		for j := range row {
			row[j] = ' '
		}
		for j := scale(b.Min); j <= scale(b.Max); j++ {
			row[j] = '-'
		}
		for j := scale(b.Q1); j <= scale(b.Q3); j++ {
			row[j] = '='
		}
		row[scale(b.Min)] = '|'
		row[scale(b.Max)] = '|'
		row[scale(b.Median)] = 'M'
		fmt.Fprintf(&sb, "%-8s %s  min=%6.1f q1=%6.1f med=%6.1f q3=%6.1f max=%6.1f\n",
			labels[i], string(row), b.Min, b.Q1, b.Median, b.Q3, b.Max)
	}
	fmt.Fprintf(&sb, "%-8s %-*.1f%*.1f\n", "scale", width/2, lo, width/2, hi)
	return sb.String()
}
