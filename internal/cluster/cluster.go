// Package cluster models a MapReduce datacenter on the sim kernel: nodes
// with map/reduce task slots, CPUs of (optionally) heterogeneous speed,
// exclusive-access disks, and full-duplex NICs connected through a core
// switch whose aggregate capacity can be oversubscribed — the commodity-
// cluster properties (skewed machines, oversubscribed links) that create
// the mapper slack the paper exploits.
package cluster

import (
	"fmt"

	"blmr/internal/sim"
	"blmr/internal/workload"
)

// Config describes the simulated cluster. The defaults (see Default) mirror
// the paper's testbed: 15 worker nodes, 4 map + 4 reduce slots each (dual
// quad-core), GigE NICs.
type Config struct {
	// Nodes is the number of worker nodes (the paper used 15 workers plus
	// one master; the master is not simulated as it does no data work).
	Nodes int
	// MapSlots and ReduceSlots are concurrent task slots per node.
	MapSlots    int
	ReduceSlots int
	// DiskMBps is sequential disk bandwidth per node, MB/s.
	DiskMBps float64
	// NICMBps is per-node link bandwidth, MB/s (GigE ~ 117 MB/s).
	NICMBps float64
	// Oversubscription divides the core switch capacity: aggregate core
	// bandwidth = Nodes*NICMBps/Oversubscription. 1 = non-blocking.
	Oversubscription float64
	// SpeedSpread introduces heterogeneity: node speed is uniform in
	// [1-SpeedSpread, 1+SpeedSpread]. 0 = homogeneous.
	SpeedSpread float64
	// TransferChunkBytes is the store-and-forward granularity for network
	// transfers and disk bursts (virtual bytes).
	TransferChunkBytes int64
	// Seed drives heterogeneity assignment.
	Seed uint64
}

// Default returns the paper-shaped cluster configuration.
func Default() Config {
	return Config{
		Nodes:              15,
		MapSlots:           4,
		ReduceSlots:        4,
		DiskMBps:           80,
		NICMBps:            117,
		Oversubscription:   2,
		SpeedSpread:        0.15,
		TransferChunkBytes: 4 << 20,
		Seed:               1,
	}
}

// Cluster is a set of simulated nodes plus the shared core switch.
type Cluster struct {
	K     *sim.Kernel
	Cfg   Config
	Nodes []*Node
	core  *sim.Resource
}

// Node is one worker machine.
type Node struct {
	ID    int
	Speed float64
	// MapSlots and ReduceSlots gate concurrent tasks.
	MapSlots    *sim.Resource
	ReduceSlots *sim.Resource
	disk        *sim.Resource
	up, down    *sim.Resource
	cfg         *Config
	cluster     *Cluster
}

// New builds a cluster on kernel k.
func New(k *sim.Kernel, cfg Config) *Cluster {
	if cfg.Nodes <= 0 || cfg.MapSlots <= 0 || cfg.ReduceSlots <= 0 {
		panic("cluster: invalid slot configuration")
	}
	if cfg.DiskMBps <= 0 || cfg.NICMBps <= 0 {
		panic("cluster: bandwidths must be positive")
	}
	if cfg.Oversubscription < 1 {
		cfg.Oversubscription = 1
	}
	if cfg.TransferChunkBytes <= 0 {
		cfg.TransferChunkBytes = 4 << 20
	}
	c := &Cluster{K: k, Cfg: cfg}
	// Core switch capacity expressed as concurrent full-rate flows.
	flows := int64(float64(cfg.Nodes) / cfg.Oversubscription)
	if flows < 1 {
		flows = 1
	}
	c.core = sim.NewResource(k, "core-switch", flows)
	rng := workload.NewRNG(cfg.Seed)
	for i := 0; i < cfg.Nodes; i++ {
		speed := 1.0
		if cfg.SpeedSpread > 0 {
			speed = 1 + cfg.SpeedSpread*(2*rng.Float64()-1)
		}
		n := &Node{
			ID:          i,
			Speed:       speed,
			MapSlots:    sim.NewResource(k, fmt.Sprintf("map-slots-%d", i), int64(cfg.MapSlots)),
			ReduceSlots: sim.NewResource(k, fmt.Sprintf("reduce-slots-%d", i), int64(cfg.ReduceSlots)),
			disk:        sim.NewResource(k, fmt.Sprintf("disk-%d", i), 1),
			up:          sim.NewResource(k, fmt.Sprintf("uplink-%d", i), 1),
			down:        sim.NewResource(k, fmt.Sprintf("downlink-%d", i), 1),
			cfg:         &c.Cfg,
			cluster:     c,
		}
		c.Nodes = append(c.Nodes, n)
	}
	return c
}

// Compute busies the caller for cpuSeconds of nominal CPU work, scaled by
// the node's speed (a slow node takes proportionally longer). The caller is
// assumed to hold a task slot, which is the unit of CPU allocation — the
// paper's testbed ran 4+4 slots on 8 cores, so slots are the CPU bound.
func (n *Node) Compute(p *sim.Proc, cpuSeconds float64) {
	if cpuSeconds <= 0 {
		return
	}
	p.Sleep(cpuSeconds / n.Speed)
}

// DiskRead charges a sequential read of the given virtual bytes against the
// node's disk, in chunks so concurrent disk users interleave fairly.
func (n *Node) DiskRead(p *sim.Proc, bytes int64) { n.diskIO(p, bytes) }

// DiskWrite charges a sequential write of the given virtual bytes.
func (n *Node) DiskWrite(p *sim.Proc, bytes int64) { n.diskIO(p, bytes) }

func (n *Node) diskIO(p *sim.Proc, bytes int64) {
	if bytes <= 0 {
		return
	}
	chunk := n.cfg.TransferChunkBytes
	bps := n.cfg.DiskMBps * 1e6
	for bytes > 0 {
		b := bytes
		if b > chunk {
			b = chunk
		}
		n.disk.Use(p, 1, func() { p.Sleep(float64(b) / bps) })
		bytes -= b
	}
}

// Transfer moves bytes from src to dst across the network: each chunk holds
// the source uplink, the destination downlink, and one core-switch flow
// token for bytes/NIC-rate seconds. Local "transfers" (src == dst) are
// free — the write-local/read-remote model means local reads skip the
// network entirely.
func (c *Cluster) Transfer(p *sim.Proc, src, dst *Node, bytes int64) {
	if bytes <= 0 || src == dst {
		return
	}
	chunk := c.Cfg.TransferChunkBytes
	bps := c.Cfg.NICMBps * 1e6
	for bytes > 0 {
		b := bytes
		if b > chunk {
			b = chunk
		}
		// Fixed acquisition order (uplink, downlink, core) prevents
		// circular waits.
		src.up.Acquire(p, 1)
		dst.down.Acquire(p, 1)
		c.core.Acquire(p, 1)
		p.Sleep(float64(b) / bps)
		c.core.Release(1)
		dst.down.Release(1)
		src.up.Release(1)
		bytes -= b
	}
}

// PickLeastLoaded returns the node with the fewest held reduce slots,
// breaking ties by lowest ID (used for reduce-task placement).
func (c *Cluster) PickLeastLoaded() *Node {
	best := c.Nodes[0]
	for _, n := range c.Nodes[1:] {
		if n.ReduceSlots.InUse() < best.ReduceSlots.InUse() {
			best = n
		}
	}
	return best
}
