package cluster

import (
	"math"
	"testing"

	"blmr/internal/sim"
)

func smallCfg() Config {
	cfg := Default()
	cfg.Nodes = 4
	cfg.SpeedSpread = 0
	cfg.TransferChunkBytes = 1 << 20
	return cfg
}

func TestComputeScalesWithSpeed(t *testing.T) {
	k := sim.NewKernel()
	cfg := smallCfg()
	c := New(k, cfg)
	c.Nodes[1].Speed = 0.5
	var fast, slow sim.Time
	k.Spawn("fast", func(p *sim.Proc) {
		c.Nodes[0].Compute(p, 10)
		fast = p.Now()
	})
	k.Spawn("slow", func(p *sim.Proc) {
		c.Nodes[1].Compute(p, 10)
		slow = p.Now()
	})
	k.Run()
	if fast != 10 {
		t.Fatalf("fast node took %v", fast)
	}
	if slow != 20 {
		t.Fatalf("half-speed node took %v, want 20", slow)
	}
}

func TestDiskSerializesConcurrentIO(t *testing.T) {
	k := sim.NewKernel()
	cfg := smallCfg()
	cfg.DiskMBps = 100 // 100 MB/s
	c := New(k, cfg)
	n := c.Nodes[0]
	var t1, t2 sim.Time
	k.Spawn("a", func(p *sim.Proc) { n.DiskWrite(p, 100e6); t1 = p.Now() })
	k.Spawn("b", func(p *sim.Proc) { n.DiskWrite(p, 100e6); t2 = p.Now() })
	k.Run()
	// 200 MB total through one 100 MB/s disk: last finisher at ~2s.
	last := math.Max(t1, t2)
	if math.Abs(last-2.0) > 0.01 {
		t.Fatalf("last disk writer finished at %v, want ~2.0", last)
	}
}

func TestTransferTimeMatchesBandwidth(t *testing.T) {
	k := sim.NewKernel()
	cfg := smallCfg()
	cfg.NICMBps = 100
	cfg.Oversubscription = 1
	c := New(k, cfg)
	var done sim.Time
	k.Spawn("xfer", func(p *sim.Proc) {
		c.Transfer(p, c.Nodes[0], c.Nodes[1], 500e6)
		done = p.Now()
	})
	k.Run()
	if math.Abs(done-5.0) > 0.01 {
		t.Fatalf("500MB over 100MB/s took %v, want ~5.0", done)
	}
}

func TestLocalTransferIsFree(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, smallCfg())
	var done sim.Time = -1
	k.Spawn("xfer", func(p *sim.Proc) {
		c.Transfer(p, c.Nodes[2], c.Nodes[2], 1e9)
		done = p.Now()
	})
	k.Run()
	if done != 0 {
		t.Fatalf("local transfer took %v, want 0", done)
	}
}

func TestUplinkContention(t *testing.T) {
	// Two flows out of the same source share its uplink: total time doubles.
	k := sim.NewKernel()
	cfg := smallCfg()
	cfg.NICMBps = 100
	cfg.Oversubscription = 1
	c := New(k, cfg)
	var d1, d2 sim.Time
	k.Spawn("f1", func(p *sim.Proc) { c.Transfer(p, c.Nodes[0], c.Nodes[1], 100e6); d1 = p.Now() })
	k.Spawn("f2", func(p *sim.Proc) { c.Transfer(p, c.Nodes[0], c.Nodes[2], 100e6); d2 = p.Now() })
	k.Run()
	if math.Abs(math.Max(d1, d2)-2.0) > 0.05 {
		t.Fatalf("shared-uplink flows finished at %v/%v, want last ~2.0", d1, d2)
	}
}

func TestCoreOversubscriptionThrottles(t *testing.T) {
	// 4 nodes, oversubscription 4 => 1 concurrent flow through the core.
	k := sim.NewKernel()
	cfg := smallCfg()
	cfg.NICMBps = 100
	cfg.Oversubscription = 4
	c := New(k, cfg)
	var last sim.Time
	k.Spawn("f1", func(p *sim.Proc) {
		c.Transfer(p, c.Nodes[0], c.Nodes[1], 100e6)
		if p.Now() > last {
			last = p.Now()
		}
	})
	k.Spawn("f2", func(p *sim.Proc) {
		c.Transfer(p, c.Nodes[2], c.Nodes[3], 100e6)
		if p.Now() > last {
			last = p.Now()
		}
	})
	k.Run()
	// Disjoint node pairs, but the single core token serializes them: ~2s.
	if math.Abs(last-2.0) > 0.05 {
		t.Fatalf("oversubscribed flows finished at %v, want ~2.0", last)
	}
}

func TestNonBlockingCoreParallelism(t *testing.T) {
	k := sim.NewKernel()
	cfg := smallCfg()
	cfg.NICMBps = 100
	cfg.Oversubscription = 1
	c := New(k, cfg)
	var last sim.Time
	k.Spawn("f1", func(p *sim.Proc) {
		c.Transfer(p, c.Nodes[0], c.Nodes[1], 100e6)
		if p.Now() > last {
			last = p.Now()
		}
	})
	k.Spawn("f2", func(p *sim.Proc) {
		c.Transfer(p, c.Nodes[2], c.Nodes[3], 100e6)
		if p.Now() > last {
			last = p.Now()
		}
	})
	k.Run()
	if math.Abs(last-1.0) > 0.05 {
		t.Fatalf("disjoint flows finished at %v, want ~1.0 (parallel)", last)
	}
}

func TestHeterogeneityWithinBounds(t *testing.T) {
	k := sim.NewKernel()
	cfg := Default()
	cfg.Nodes = 50
	cfg.SpeedSpread = 0.2
	c := New(k, cfg)
	varied := false
	for _, n := range c.Nodes {
		if n.Speed < 0.8-1e-9 || n.Speed > 1.2+1e-9 {
			t.Fatalf("node %d speed %v outside [0.8,1.2]", n.ID, n.Speed)
		}
		if math.Abs(n.Speed-1) > 0.01 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("no heterogeneity generated")
	}
	// Determinism: same seed, same speeds.
	c2 := New(sim.NewKernel(), cfg)
	for i := range c.Nodes {
		if c.Nodes[i].Speed != c2.Nodes[i].Speed {
			t.Fatal("speeds not reproducible")
		}
	}
}

func TestSlotsLimitConcurrency(t *testing.T) {
	k := sim.NewKernel()
	cfg := smallCfg()
	cfg.MapSlots = 2
	c := New(k, cfg)
	n := c.Nodes[0]
	running, maxRunning := 0, 0
	for i := 0; i < 6; i++ {
		k.Spawn("task", func(p *sim.Proc) {
			n.MapSlots.Acquire(p, 1)
			running++
			if running > maxRunning {
				maxRunning = running
			}
			p.Sleep(1)
			running--
			n.MapSlots.Release(1)
		})
	}
	end := k.Run()
	if maxRunning != 2 {
		t.Fatalf("max concurrent = %d, want 2", maxRunning)
	}
	if math.Abs(end-3.0) > 0.01 {
		t.Fatalf("6 tasks x 1s on 2 slots finished at %v, want 3", end)
	}
}

func TestPickLeastLoaded(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, smallCfg())
	if !c.Nodes[1].ReduceSlots.TryAcquire(1) {
		t.Fatal("acquire failed")
	}
	if got := c.PickLeastLoaded(); got.ID != 0 {
		t.Fatalf("least loaded = node %d, want 0", got.ID)
	}
	if !c.Nodes[0].ReduceSlots.TryAcquire(2) {
		t.Fatal("acquire failed")
	}
	// Now loads are [2,1,0,0]: the first emptiest node (2) wins.
	if got := c.PickLeastLoaded(); got.ID != 2 {
		t.Fatalf("least loaded = node %d, want 2", got.ID)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(sim.NewKernel(), Config{Nodes: 0})
}
