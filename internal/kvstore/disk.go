package kvstore

import (
	"fmt"
	"os"
	"path/filepath"
)

// MemDisk is an in-memory Disk used by the simulator: contents are real
// bytes, but I/O time is charged through Hooks instead of a physical device.
type MemDisk struct {
	segSize  int64
	segments map[int][]byte
	active   int
}

// NewMemDisk creates a MemDisk rolling segments at segSize bytes.
func NewMemDisk(segSize int64) *MemDisk {
	if segSize <= 0 {
		segSize = 4 << 20
	}
	return &MemDisk{segSize: segSize, segments: map[int][]byte{0: nil}}
}

// Append implements Disk.
func (d *MemDisk) Append(data []byte) (int, int64) {
	if int64(len(d.segments[d.active])) >= d.segSize {
		d.active++
		d.segments[d.active] = nil
	}
	off := int64(len(d.segments[d.active]))
	d.segments[d.active] = append(d.segments[d.active], data...)
	return d.active, off
}

// ReadAt implements Disk.
func (d *MemDisk) ReadAt(seg int, off int64, n int) []byte {
	s, ok := d.segments[seg]
	if !ok {
		panic(fmt.Sprintf("kvstore: read from dropped segment %d", seg))
	}
	return s[off : off+int64(n)]
}

// Seal implements Disk.
func (d *MemDisk) Seal() int {
	d.active++
	d.segments[d.active] = nil
	return d.active
}

// DropSegmentsBefore implements Disk.
func (d *MemDisk) DropSegmentsBefore(seg int) {
	for i := range d.segments {
		if i < seg {
			delete(d.segments, i)
		}
	}
}

// Segments returns the number of live segments (for tests).
func (d *MemDisk) Segments() int { return len(d.segments) }

// FileDisk is a Disk backed by real segment files in a directory, used by
// the wall-clock engine and examples.
type FileDisk struct {
	dir     string
	segSize int64
	active  int
	files   map[int]*os.File
	sizes   map[int]int64
}

// NewFileDisk creates a FileDisk writing seg-N.log files under dir.
func NewFileDisk(dir string, segSize int64) (*FileDisk, error) {
	if segSize <= 0 {
		segSize = 16 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: create dir: %w", err)
	}
	d := &FileDisk{dir: dir, segSize: segSize, files: make(map[int]*os.File), sizes: make(map[int]int64)}
	if err := d.open(0); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *FileDisk) open(seg int) error {
	f, err := os.OpenFile(filepath.Join(d.dir, fmt.Sprintf("seg-%06d.log", seg)), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: open segment: %w", err)
	}
	d.files[seg] = f
	d.sizes[seg] = 0
	return nil
}

// Append implements Disk.
func (d *FileDisk) Append(data []byte) (int, int64) {
	if d.sizes[d.active] >= d.segSize {
		d.active++
		if err := d.open(d.active); err != nil {
			panic(err)
		}
	}
	off := d.sizes[d.active]
	if _, err := d.files[d.active].WriteAt(data, off); err != nil {
		panic(fmt.Errorf("kvstore: append: %w", err))
	}
	d.sizes[d.active] += int64(len(data))
	return d.active, off
}

// ReadAt implements Disk.
func (d *FileDisk) ReadAt(seg int, off int64, n int) []byte {
	f, ok := d.files[seg]
	if !ok {
		panic(fmt.Sprintf("kvstore: read from dropped segment %d", seg))
	}
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, off); err != nil {
		panic(fmt.Errorf("kvstore: read: %w", err))
	}
	return buf
}

// Seal implements Disk.
func (d *FileDisk) Seal() int {
	d.active++
	if err := d.open(d.active); err != nil {
		panic(err)
	}
	return d.active
}

// DropSegmentsBefore implements Disk.
func (d *FileDisk) DropSegmentsBefore(seg int) {
	for i, f := range d.files {
		if i < seg {
			name := f.Name()
			f.Close()
			os.Remove(name)
			delete(d.files, i)
			delete(d.sizes, i)
		}
	}
}

// Close closes all open segment files.
func (d *FileDisk) Close() error {
	var first error
	for _, f := range d.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
