package kvstore

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPutGetBasic(t *testing.T) {
	s := New(Config{})
	s.Put("a", "1")
	s.Put("b", "2")
	if v, ok := s.Get("a"); !ok || v != "1" {
		t.Fatalf("Get(a) = %q,%v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("found missing key")
	}
	s.Put("a", "updated")
	if v, _ := s.Get("a"); v != "updated" {
		t.Fatalf("Get(a) = %q after update", v)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestEvictionSpillsToDisk(t *testing.T) {
	s := New(Config{CacheBytes: 300})
	const n = 100
	for i := 0; i < n; i++ {
		s.Put(fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%03d", i))
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions with tiny cache")
	}
	if st.BytesWritten == 0 {
		t.Fatal("expected disk writes")
	}
	if s.CacheBytes() > 300+64 {
		t.Fatalf("cache overshoot: %d bytes", s.CacheBytes())
	}
	// Everything must still be readable (from disk).
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%03d", i)
		if v, ok := s.Get(k); !ok || v != fmt.Sprintf("val-%03d", i) {
			t.Fatalf("Get(%s) = %q,%v", k, v, ok)
		}
	}
	if s.Stats().BytesRead == 0 {
		t.Fatal("expected disk reads after eviction")
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
}

func TestReadModifyWriteCycle(t *testing.T) {
	// The paper's usage: every reduce invocation fetches the previous
	// partial result, updates it, and stores it back.
	s := New(Config{CacheBytes: 256})
	const keys = 50
	const rounds = 40
	for r := 0; r < rounds; r++ {
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("w%02d", i)
			prev, _ := s.Get(k)
			s.Put(k, prev+"x")
		}
	}
	for i := 0; i < keys; i++ {
		v, ok := s.Get(fmt.Sprintf("w%02d", i))
		if !ok || len(v) != rounds {
			t.Fatalf("key %d: len=%d ok=%v, want %d", i, len(v), ok, rounds)
		}
	}
}

func TestCompaction(t *testing.T) {
	d := NewMemDisk(1 << 10)
	s := New(Config{CacheBytes: 128, Disk: d, CompactMinBytes: 2048, CompactGarbageRatio: 0.4})
	// Overwrite the same small key set many times to generate garbage.
	for r := 0; r < 400; r++ {
		for i := 0; i < 8; i++ {
			s.Put(fmt.Sprintf("k%d", i), fmt.Sprintf("value-%d-%d", i, r))
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatal("expected compactions")
	}
	if st.LogBytes > 4*st.LiveBytes+2048 {
		t.Fatalf("log not compacted: log=%d live=%d", st.LogBytes, st.LiveBytes)
	}
	// All keys still correct after compaction.
	for i := 0; i < 8; i++ {
		v, ok := s.Get(fmt.Sprintf("k%d", i))
		if !ok || v != fmt.Sprintf("value-%d-399", i) {
			t.Fatalf("k%d = %q,%v", i, v, ok)
		}
	}
}

func TestKeysComplete(t *testing.T) {
	s := New(Config{CacheBytes: 200})
	want := map[string]bool{}
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("key-%02d", i)
		s.Put(k, "v")
		want[k] = true
	}
	got := s.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys() returned %d, want %d", len(got), len(want))
	}
	for _, k := range got {
		if !want[k] {
			t.Fatalf("unexpected key %q", k)
		}
	}
}

func TestFlush(t *testing.T) {
	s := New(Config{CacheBytes: 1 << 20})
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("k%d", i), "v")
	}
	if s.Stats().BytesWritten != 0 {
		t.Fatal("nothing should be written while cache fits")
	}
	s.Flush()
	if s.Stats().BytesWritten == 0 {
		t.Fatal("Flush should write dirty entries")
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestHooksObserved(t *testing.T) {
	h := &countingHooks{}
	s := New(Config{CacheBytes: 100, Hooks: h})
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("key-%04d", i), "some-value")
	}
	for i := 0; i < 50; i++ {
		s.Get(fmt.Sprintf("key-%04d", i))
	}
	if h.ops != 100 {
		t.Fatalf("ops = %d, want 100", h.ops)
	}
	if h.writes == 0 || h.reads == 0 {
		t.Fatalf("writes=%d reads=%d, want both > 0", h.writes, h.reads)
	}
}

type countingHooks struct {
	ops    int
	writes int64
	reads  int64
}

func (h *countingHooks) Op(string)         { h.ops++ }
func (h *countingHooks) DiskWrite(n int64) { h.writes += n }
func (h *countingHooks) DiskRead(n int64)  { h.reads += n }

func TestStoreMatchesMapProperty(t *testing.T) {
	// Property: under random puts/overwrites with a tiny cache, the store
	// agrees with a plain map.
	f := func(ops []uint16) bool {
		s := New(Config{CacheBytes: 200})
		ref := map[string]string{}
		for i, op := range ops {
			k := fmt.Sprintf("k%d", op%37)
			v := fmt.Sprintf("v%d", i)
			s.Put(k, v)
			ref[k] = v
		}
		if s.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := s.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFileDisk(t *testing.T) {
	dir := t.TempDir()
	d, err := NewFileDisk(dir, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := New(Config{CacheBytes: 256, Disk: d, CompactMinBytes: 4096, CompactGarbageRatio: 0.5})
	const n = 500
	for i := 0; i < n; i++ {
		s.Put(fmt.Sprintf("key-%04d", i%40), fmt.Sprintf("value-%06d", i))
	}
	for i := n - 40; i < n; i++ {
		k := fmt.Sprintf("key-%04d", i%40)
		v, ok := s.Get(k)
		if !ok || v != fmt.Sprintf("value-%06d", i) {
			t.Fatalf("%s = %q,%v", k, v, ok)
		}
	}
}

func TestMemDiskSegmentRoll(t *testing.T) {
	d := NewMemDisk(64)
	var locs [][2]int64
	for i := 0; i < 20; i++ {
		seg, off := d.Append(make([]byte, 32))
		locs = append(locs, [2]int64{int64(seg), off})
	}
	if d.Segments() < 5 {
		t.Fatalf("expected segment rolls, have %d segments", d.Segments())
	}
	if got := d.ReadAt(int(locs[3][0]), locs[3][1], 32); len(got) != 32 {
		t.Fatal("read back failed")
	}
}

func BenchmarkPutHot(b *testing.B) {
	s := New(Config{CacheBytes: 1 << 24})
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%08d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(keys[i&1023], "value-payload")
	}
}

func BenchmarkReadModifyWriteCold(b *testing.B) {
	// Cache far smaller than the working set: every op round-trips disk.
	s := New(Config{CacheBytes: 1 << 12})
	rng := rand.New(rand.NewSource(3))
	keys := make([]string, 1<<14)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%08d", i)
		s.Put(keys[i], "0")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[rng.Intn(len(keys))]
		v, _ := s.Get(k)
		s.Put(k, v)
	}
}

func TestLenWithMixedCacheDiskKeys(t *testing.T) {
	s := New(Config{CacheBytes: 150})
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for _, k := range keys {
		s.Put(k, "some-longish-value-here")
	}
	if s.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d (cache+disk dedup)", s.Len(), len(keys))
	}
	got := s.Keys()
	sort.Strings(got)
	want := append([]string(nil), keys...)
	sort.Strings(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v", got)
		}
	}
}

func TestContains(t *testing.T) {
	s := New(Config{CacheBytes: 128})
	s.Put("present", "v")
	if !s.Contains("present") {
		t.Fatal("Contains missed a cached key")
	}
	if s.Contains("absent") {
		t.Fatal("Contains found a missing key")
	}
	// Force eviction to disk; Contains must still find it via the index.
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("filler-%02d", i), "some-value-to-evict-things")
	}
	if !s.Contains("present") {
		t.Fatal("Contains missed an evicted key")
	}
}

func TestStatsSnapshot(t *testing.T) {
	s := New(Config{CacheBytes: 128})
	s.Put("a", "1")
	s.Get("a")
	s.Get("missing")
	st := s.Stats()
	if st.Puts != 1 || st.Gets != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("hit/miss = %d/%d", st.CacheHits, st.CacheMisses)
	}
	if st.CacheBytesBudget != 128 {
		t.Fatalf("budget = %d", st.CacheBytesBudget)
	}
}
