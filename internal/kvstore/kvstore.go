// Package kvstore is a disk-spilling key/value store: an LRU record cache in
// front of an append-only, log-structured disk layout with background
// compaction. It stands in for the off-the-shelf stores (BerkeleyDB JE,
// Tokyo Cabinet, MongoDB) the paper evaluated for holding partial results.
//
// Like BerkeleyDB configured by the authors, the store sacrifices
// crash-durability for speed: the MapReduce framework re-executes failed
// tasks, so the log is never synced.
package kvstore

import (
	"container/list"
	"encoding/binary"
	"fmt"

	"blmr/internal/core"
)

// Disk is the backing log device. Implementations append segments of
// encoded entries and read them back by (segment, offset).
type Disk interface {
	// Append writes data to the active segment and returns its location.
	Append(data []byte) (seg int, off int64)
	// ReadAt reads n bytes from a location written earlier.
	ReadAt(seg int, off int64, n int) []byte
	// DropSegmentsBefore discards all segments with index < seg (compaction).
	DropSegmentsBefore(seg int)
	// Seal closes the active segment and starts a new one, returning the
	// new segment's index.
	Seal() int
}

// Hooks observes store activity so callers can charge simulated time or
// throttle throughput. Any method may be a no-op.
type Hooks interface {
	// Op is invoked once per user-visible Get/Put.
	Op(name string)
	// DiskWrite is invoked when bytes are appended to the log.
	DiskWrite(bytes int64)
	// DiskRead is invoked when bytes are read from the log.
	DiskRead(bytes int64)
}

// NopHooks is a Hooks implementation that does nothing.
type NopHooks struct{}

// Op implements Hooks.
func (NopHooks) Op(string) {}

// DiskWrite implements Hooks.
func (NopHooks) DiskWrite(int64) {}

// DiskRead implements Hooks.
func (NopHooks) DiskRead(int64) {}

// Config parameterizes a Store.
type Config struct {
	// CacheBytes bounds the in-memory record cache. <=0 means a small
	// default (1 MiB).
	CacheBytes int64
	// Disk is the backing device; nil uses an in-memory MemDisk.
	Disk Disk
	// Hooks observes activity; nil means no observation.
	Hooks Hooks
	// CompactMinBytes is the log size below which compaction never runs.
	CompactMinBytes int64
	// CompactGarbageRatio triggers compaction when dead bytes exceed this
	// fraction of the log. <=0 defaults to 0.5.
	CompactGarbageRatio float64
}

type loc struct {
	seg int
	off int64
	n   int
}

type cacheEntry struct {
	key   string
	val   string
	dirty bool
}

// Stats reports cumulative store activity.
type Stats struct {
	Gets, Puts       int64
	CacheHits        int64
	CacheMisses      int64
	Evictions        int64
	Compactions      int64
	BytesWritten     int64
	BytesRead        int64
	LiveBytes        int64 // bytes of current versions on disk
	LogBytes         int64 // total log bytes including garbage
	CacheBytesInUse  int64
	CacheBytesBudget int64
}

// Store is a single-writer key/value store. Not safe for concurrent use —
// each reduce task owns its own store, matching the paper's setup.
type Store struct {
	cfg   Config
	disk  Disk
	hooks Hooks

	index map[string]loc // key -> latest on-disk location (absent if never spilled)
	cache map[string]*list.Element
	lru   *list.List // front = most recent
	inUse int64

	stats Stats
}

// New creates a store with the given configuration.
func New(cfg Config) *Store {
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 1 << 20
	}
	if cfg.Disk == nil {
		cfg.Disk = NewMemDisk(4 << 20)
	}
	if cfg.Hooks == nil {
		cfg.Hooks = NopHooks{}
	}
	if cfg.CompactGarbageRatio <= 0 {
		cfg.CompactGarbageRatio = 0.5
	}
	if cfg.CompactMinBytes <= 0 {
		cfg.CompactMinBytes = 1 << 20
	}
	return &Store{
		cfg:   cfg,
		disk:  cfg.Disk,
		hooks: cfg.Hooks,
		index: make(map[string]loc),
		cache: make(map[string]*list.Element),
		lru:   list.New(),
	}
}

func entrySize(key, val string) int64 {
	return int64(len(key)+len(val)) + core.RecordOverheadBytes
}

// Put stores val under key.
func (s *Store) Put(key, val string) {
	s.stats.Puts++
	s.hooks.Op("put")
	if el, ok := s.cache[key]; ok {
		e := el.Value.(*cacheEntry)
		s.inUse += int64(len(val) - len(e.val))
		e.val = val
		e.dirty = true
		s.lru.MoveToFront(el)
	} else {
		e := &cacheEntry{key: key, val: val, dirty: true}
		s.cache[key] = s.lru.PushFront(e)
		s.inUse += entrySize(key, val)
	}
	s.evictToFit()
}

// Get returns the value stored under key.
func (s *Store) Get(key string) (string, bool) {
	s.stats.Gets++
	s.hooks.Op("get")
	if el, ok := s.cache[key]; ok {
		s.stats.CacheHits++
		s.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).val, true
	}
	l, ok := s.index[key]
	if !ok {
		s.stats.CacheMisses++
		return "", false
	}
	s.stats.CacheMisses++
	val := s.readEntry(l, key)
	e := &cacheEntry{key: key, val: val, dirty: false}
	s.cache[key] = s.lru.PushFront(e)
	s.inUse += entrySize(key, val)
	s.evictToFit()
	return val, true
}

// Contains reports whether key exists (without promoting it in the LRU).
func (s *Store) Contains(key string) bool {
	if _, ok := s.cache[key]; ok {
		return true
	}
	_, ok := s.index[key]
	return ok
}

// Len returns the number of distinct keys.
func (s *Store) Len() int {
	n := 0
	for k := range s.cache {
		if _, onDisk := s.index[k]; !onDisk {
			n++
		}
	}
	return n + len(s.index)
}

// CacheBytes returns the in-memory footprint of the cache.
func (s *Store) CacheBytes() int64 { return s.inUse }

// Stats returns a snapshot of cumulative statistics.
func (s *Store) Stats() Stats {
	st := s.stats
	st.CacheBytesInUse = s.inUse
	st.CacheBytesBudget = s.cfg.CacheBytes
	return st
}

// Keys returns all keys (unordered). Intended for iteration at finalize
// time; callers needing order should sort or use an ordered overlay.
func (s *Store) Keys() []string {
	seen := make(map[string]bool, len(s.index)+len(s.cache))
	out := make([]string, 0, len(s.index)+len(s.cache))
	for k := range s.index {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for k := range s.cache {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// Flush writes all dirty cached entries to the log (without evicting).
func (s *Store) Flush() {
	for el := s.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		if e.dirty {
			s.writeEntry(e)
		}
	}
}

func (s *Store) evictToFit() {
	for s.inUse > s.cfg.CacheBytes && s.lru.Len() > 1 {
		el := s.lru.Back()
		e := el.Value.(*cacheEntry)
		if e.dirty {
			s.writeEntry(e)
		}
		s.lru.Remove(el)
		delete(s.cache, e.key)
		s.inUse -= entrySize(e.key, e.val)
		s.stats.Evictions++
	}
}

func (s *Store) writeEntry(e *cacheEntry) {
	buf := encodeEntry(e.key, e.val)
	seg, off := s.disk.Append(buf)
	n := int64(len(buf))
	s.hooks.DiskWrite(n)
	s.stats.BytesWritten += n
	if old, ok := s.index[e.key]; ok {
		s.stats.LiveBytes -= int64(old.n) // superseded version becomes garbage
	}
	s.index[e.key] = loc{seg: seg, off: off, n: len(buf)}
	s.stats.LiveBytes += n
	s.stats.LogBytes += n
	e.dirty = false
	s.maybeCompact()
}

func (s *Store) readEntry(l loc, wantKey string) string {
	buf := s.disk.ReadAt(l.seg, l.off, l.n)
	s.hooks.DiskRead(int64(l.n))
	s.stats.BytesRead += int64(l.n)
	key, val := decodeEntry(buf)
	if key != wantKey {
		panic(fmt.Sprintf("kvstore: index corruption: read %q, want %q", key, wantKey))
	}
	return val
}

func (s *Store) maybeCompact() {
	garbage := s.stats.LogBytes - s.stats.LiveBytes
	if s.stats.LogBytes < s.cfg.CompactMinBytes {
		return
	}
	if float64(garbage) < s.cfg.CompactGarbageRatio*float64(s.stats.LogBytes) {
		return
	}
	s.compact()
}

// compact rewrites all live entries into fresh segments and drops the old
// ones.
func (s *Store) compact() {
	s.stats.Compactions++
	newFirst := s.disk.Seal()
	var logBytes int64
	for key, l := range s.index {
		if l.seg >= newFirst {
			logBytes += int64(l.n)
			continue // already rewritten (shouldn't happen mid-compact, but safe)
		}
		val := s.readEntry(l, key)
		buf := encodeEntry(key, val)
		seg, off := s.disk.Append(buf)
		s.hooks.DiskWrite(int64(len(buf)))
		s.stats.BytesWritten += int64(len(buf))
		s.index[key] = loc{seg: seg, off: off, n: len(buf)}
		logBytes += int64(len(buf))
	}
	s.disk.DropSegmentsBefore(newFirst)
	s.stats.LogBytes = logBytes
	s.stats.LiveBytes = logBytes
}

func encodeEntry(key, val string) []byte {
	buf := make([]byte, 0, len(key)+len(val)+8)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, uint64(len(val)))
	buf = append(buf, val...)
	return buf
}

func decodeEntry(buf []byte) (key, val string) {
	kn, sz := binary.Uvarint(buf)
	if sz <= 0 {
		panic("kvstore: corrupt entry")
	}
	buf = buf[sz:]
	key = string(buf[:kn])
	buf = buf[kn:]
	vn, sz := binary.Uvarint(buf)
	if sz <= 0 {
		panic("kvstore: corrupt entry")
	}
	buf = buf[sz:]
	val = string(buf[:vn])
	return key, val
}
