package apps

import (
	"fmt"
	"strings"

	"blmr/internal/core"
	"blmr/internal/reducers"
	"blmr/internal/store"
)

// GA returns the genetic-algorithm app (Section 4.6, after Verma et al.'s
// MapReduce GA): the mapper evaluates each individual's fitness (OneMax —
// the number of set bits in the genome); the reducer keeps a window of
// individuals and, when the window fills, performs tournament selection and
// single-point crossover, emitting one offspring generation per window.
// Partial state is O(window_size) in both modes.
func GA(windowSize int) App {
	return App{
		Name:  "ga",
		Class: core.ClassCrossKey,
		Mapper: core.MapperFunc(func(key, value string, emit core.Emitter) {
			fitness := OneMax(value)
			emit.Emit(key, core.JoinValues(core.EncodeUint64(uint64(fitness)), value))
		}),
		NewGroup: func() core.GroupReducer {
			return reducers.NewCrossKeyWindow(windowSize, gaWindowOp)
		},
		NewStream: func(store.Store) core.StreamReducer {
			return reducers.NewCrossKeyWindow(windowSize, gaWindowOp)
		},
		Merger: func(a, b string) string { return a }, // window keeps no keyed partials
	}
}

// OneMax counts '1' bits in a genome bitstring.
func OneMax(genome string) int { return strings.Count(genome, "1") }

// gaWindowOp runs one selection + crossover round over a window of
// (fitness, genome) records and emits len(window) offspring. Selection is
// rank-based: the fitter half are parents (ties broken by key for
// determinism); crossover is single-point at a position derived from the
// parents' fitnesses.
func gaWindowOp(window []core.Record, out core.Output) {
	type ind struct {
		key     string
		fitness uint64
		genome  string
	}
	inds := make([]ind, len(window))
	for i, r := range window {
		parts := core.SplitValues(r.Value)
		inds[i] = ind{key: r.Key, fitness: core.DecodeUint64(parts[0]), genome: parts[1]}
	}
	// Rank by fitness descending, key ascending for determinism.
	for i := 1; i < len(inds); i++ {
		for j := i; j > 0 && better(inds[j], inds[j-1]); j-- {
			inds[j], inds[j-1] = inds[j-1], inds[j]
		}
	}
	parents := inds[:(len(inds)+1)/2]
	for i := 0; i < len(window); i++ {
		a := parents[i%len(parents)]
		b := parents[(i+1)%len(parents)]
		child := crossover(a.genome, b.genome, int(a.fitness+b.fitness))
		out.Write(fmt.Sprintf("%s+%s/%d", a.key, b.key, i), child)
	}
}

func better(a, b struct {
	key     string
	fitness uint64
	genome  string
}) bool {
	if a.fitness != b.fitness {
		return a.fitness > b.fitness
	}
	return a.key < b.key
}

// crossover splices two genomes at a deterministic point.
func crossover(a, b string, salt int) string {
	if len(a) != len(b) || len(a) == 0 {
		return a
	}
	point := (salt*2654435761 + 17) % len(a)
	if point < 0 {
		point = -point
	}
	return a[:point] + b[point:]
}
