package apps

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"

	"blmr/internal/core"
	"blmr/internal/sortx"
	"blmr/internal/store"
	"blmr/internal/workload"
)

type sink struct{ recs []core.Record }

func (s *sink) Write(k, v string) { s.recs = append(s.recs, core.Record{Key: k, Value: v}) }

// runApp executes app over input in both modes (in-process, no cluster) and
// returns (barrier output, stream output).
func runApp(app App, input []core.Record) (barrier, stream []core.Record) {
	var mapped []core.Record
	em := core.EmitterFunc(func(k, v string) { mapped = append(mapped, core.Record{Key: k, Value: v}) })
	for _, r := range input {
		app.Mapper.Map(r.Key, r.Value, em)
	}

	bSorted := append([]core.Record(nil), mapped...)
	sortx.ByKey(bSorted)
	bOut := &sink{}
	gr := app.NewGroup()
	sortx.Group(bSorted, func(k string, vs []string) { gr.Reduce(k, vs, bOut) })
	if c, ok := gr.(core.Cleanup); ok {
		c.Cleanup(bOut)
	}

	sOut := &sink{}
	st := store.NewSpillStore(2048, app.Merger, nil) // tiny threshold: exercise spills
	sr := app.NewStream(st)
	for _, r := range mapped {
		sr.Consume(r, sOut)
	}
	sr.Finish(sOut)
	return bOut.recs, sOut.recs
}

func sortRecs(recs []core.Record) []core.Record {
	out := append([]core.Record(nil), recs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Value < out[j].Value
	})
	return out
}

func requireSameMultiset(t *testing.T, name string, a, b []core.Record) {
	t.Helper()
	sa, sb := sortRecs(a), sortRecs(b)
	if len(sa) != len(sb) {
		t.Fatalf("%s: %d vs %d records", name, len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("%s: record %d: %q vs %q", name, i, sa[i], sb[i])
		}
	}
}

func TestGrepFiltersAndMatchesModes(t *testing.T) {
	input := []core.Record{
		{Key: "l1", Value: "error: disk failed"},
		{Key: "l2", Value: "all good"},
		{Key: "l3", Value: "another error here"},
	}
	app := Grep("error")
	b, s := runApp(app, input)
	requireSameMultiset(t, "grep", b, s)
	if len(b) != 2 {
		t.Fatalf("grep matched %d lines, want 2", len(b))
	}
}

func TestSortProducesSortedOutput(t *testing.T) {
	input := workload.UniformKeys(1, 2000, 1_000_000)
	app := Sort()
	b, s := runApp(app, input)
	requireSameMultiset(t, "sort", b, s)
	if len(s) != len(input) {
		t.Fatalf("sort emitted %d records, want %d", len(s), len(input))
	}
	for i := 1; i < len(s); i++ {
		if s[i].Key < s[i-1].Key {
			t.Fatal("stream sort output not in key order")
		}
	}
}

func TestWordCountCounts(t *testing.T) {
	input := []core.Record{
		{Key: "d1", Value: "the quick brown fox"},
		{Key: "d2", Value: "the lazy dog the end"},
	}
	app := WordCount()
	b, s := runApp(app, input)
	requireSameMultiset(t, "wordcount", b, s)
	counts := map[string]string{}
	for _, r := range b {
		counts[r.Key] = r.Value
	}
	if counts["the"] != "3" || counts["fox"] != "1" {
		t.Fatalf("counts = %v", counts)
	}
}

func TestWordCountLargeZipf(t *testing.T) {
	input := workload.Text(3, 2000, 500, 8)
	app := WordCount()
	b, s := runApp(app, input)
	requireSameMultiset(t, "wordcount-zipf", b, s)
	total := 0
	for _, r := range b {
		n, _ := strconv.Atoi(r.Value)
		total += n
	}
	if total != 2000*8 {
		t.Fatalf("total words = %d, want %d", total, 2000*8)
	}
}

func TestKNNFindsNearest(t *testing.T) {
	// Training values on a line; experimental point at 500: nearest 3 are
	// 498, 503, 510.
	training := []uint64{100, 498, 503, 900, 510, 2000}
	var input []core.Record
	for i, v := range training {
		input = append(input, core.Record{Key: fmt.Sprintf("t%d", i), Value: core.EncodeUint64(v)})
	}
	app := KNN(3, []uint64{500})
	b, s := runApp(app, input)
	requireSameMultiset(t, "knn", b, s)
	if len(b) != 3 {
		t.Fatalf("selected %d, want 3", len(b))
	}
	var got []uint64
	for _, r := range b {
		parts := core.SplitValues(r.Value)
		got = append(got, core.DecodeUint64(parts[1]))
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []uint64{498, 503, 510}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nearest = %v, want %v", got, want)
		}
	}
}

func TestKNNEquivalenceLarger(t *testing.T) {
	d := workload.KNN(4, 800, 50, 1_000_000)
	app := KNN(10, d.Experimental)
	b, s := runApp(app, workload.KNNRecords(d, 0))
	requireSameMultiset(t, "knn-large", b, s)
	if len(b) != 50*10 {
		t.Fatalf("output = %d records, want 500", len(b))
	}
}

func TestLastFMUniqueUsers(t *testing.T) {
	input := []core.Record{
		{Key: "e1", Value: core.JoinValues("trackA", "u1")},
		{Key: "e2", Value: core.JoinValues("trackA", "u2")},
		{Key: "e3", Value: core.JoinValues("trackA", "u1")},
		{Key: "e4", Value: core.JoinValues("trackB", "u1")},
	}
	app := LastFM()
	b, s := runApp(app, input)
	requireSameMultiset(t, "lastfm", b, s)
	m := map[string]string{}
	for _, r := range b {
		m[r.Key] = r.Value
	}
	if m["trackA"] != "2" || m["trackB"] != "1" {
		t.Fatalf("unique counts = %v", m)
	}
}

func TestLastFMGenerated(t *testing.T) {
	input := workload.Listens(6, 5000, 50, 200)
	b, s := runApp(LastFM(), input)
	requireSameMultiset(t, "lastfm-gen", b, s)
	for _, r := range b {
		n, _ := strconv.Atoi(r.Value)
		if n < 1 || n > 50 {
			t.Fatalf("track %s has %d unique users (max 50)", r.Key, n)
		}
	}
}

func TestGAEmitsOneOffspringPerIndividual(t *testing.T) {
	input := workload.Individuals(7, 100, 64)
	app := GA(20)
	b, s := runApp(app, input)
	// Window contents depend on arrival order, so outputs differ between
	// modes; the GA is stochastic by nature. Counts must match exactly.
	if len(b) != len(input) || len(s) != len(input) {
		t.Fatalf("offspring: barrier=%d stream=%d, want %d", len(b), len(s), len(input))
	}
	for _, r := range s {
		if len(r.Value) != 64 {
			t.Fatalf("child genome length %d", len(r.Value))
		}
		for _, c := range r.Value {
			if c != '0' && c != '1' {
				t.Fatal("invalid genome")
			}
		}
	}
}

func TestGASelectionPressure(t *testing.T) {
	// Offspring of a window should have average fitness >= the window's
	// average (parents are the fitter half).
	input := workload.Individuals(8, 50, 128)
	var mapped []core.Record
	em := core.EmitterFunc(func(k, v string) { mapped = append(mapped, core.Record{Key: k, Value: v}) })
	app := GA(50)
	for _, r := range input {
		app.Mapper.Map(r.Key, r.Value, em)
	}
	parentAvg := 0.0
	for _, r := range mapped {
		parentAvg += float64(core.DecodeUint64(core.SplitValues(r.Value)[0]))
	}
	parentAvg /= float64(len(mapped))
	out := &sink{}
	sr := app.NewStream(store.NewMemStore())
	for _, r := range mapped {
		sr.Consume(r, out)
	}
	sr.Finish(out)
	childAvg := 0.0
	for _, r := range out.recs {
		childAvg += float64(OneMax(r.Value))
	}
	childAvg /= float64(len(out.recs))
	if childAvg < parentAvg {
		t.Fatalf("no selection pressure: children %.2f < population %.2f", childAvg, parentAvg)
	}
}

func TestOneMax(t *testing.T) {
	if OneMax("0000") != 0 || OneMax("1111") != 4 || OneMax("1010") != 2 {
		t.Fatal("OneMax wrong")
	}
}

func TestBlackScholesConvergesToAnalytic(t *testing.T) {
	p := DefaultBSParams()
	p.Iterations = 50000
	p.Samples = 50
	app := BlackScholes(p)
	input := workload.OptionSeeds(9, 8)
	b, s := runApp(app, input)
	requireSameMultiset(t, "blackscholes", b, s)
	var mean float64
	found := false
	for _, r := range b {
		if r.Key == "mean" {
			mean, _ = strconv.ParseFloat(r.Value, 64)
			found = true
		}
	}
	if !found {
		t.Fatalf("no mean in output %v", b)
	}
	want := BSAnalytic(p)
	if math.Abs(mean-want) > 0.25 {
		t.Fatalf("MC price %.3f vs analytic %.3f", mean, want)
	}
}

func TestBlackScholesStddevPositive(t *testing.T) {
	app := BlackScholes(BSParams{Spot: 100, Strike: 100, Rate: 0.05, Volatility: 0.2, Maturity: 1, Iterations: 1000, Samples: 100})
	_, s := runApp(app, workload.OptionSeeds(10, 2))
	for _, r := range s {
		if r.Key == "stddev" {
			sd, _ := strconv.ParseFloat(r.Value, 64)
			if sd <= 0 {
				t.Fatalf("stddev = %v", sd)
			}
			return
		}
	}
	t.Fatal("no stddev emitted")
}

func TestClassesMatchTable1(t *testing.T) {
	cases := map[string]core.Class{
		"grep":         core.ClassIdentity,
		"sort":         core.ClassSorting,
		"wordcount":    core.ClassAggregation,
		"knn":          core.ClassSelection,
		"lastfm":       core.ClassPostReduction,
		"ga":           core.ClassCrossKey,
		"blackscholes": core.ClassSingleReducer,
	}
	apps := []App{
		Grep("x"), Sort(), WordCount(), KNN(10, []uint64{1}), LastFM(), GA(10),
		BlackScholes(DefaultBSParams()),
	}
	for _, a := range apps {
		if cases[a.Name] != a.Class {
			t.Errorf("%s classified as %v", a.Name, a.Class)
		}
	}
}

func TestCrossoverDeterministicAndValid(t *testing.T) {
	a := strings.Repeat("1", 32)
	b := strings.Repeat("0", 32)
	c1 := crossover(a, b, 7)
	c2 := crossover(a, b, 7)
	if c1 != c2 {
		t.Fatal("crossover not deterministic")
	}
	if len(c1) != 32 {
		t.Fatalf("child length %d", len(c1))
	}
	if OneMax(c1)+OneMax(crossover(b, a, 7)) != 32 {
		t.Fatal("complementary crossovers should cover all bits")
	}
}
