// Package apps implements the paper's benchmark applications — one per
// Reduce class of Table 1 — in both barrier and barrier-less forms:
//
//	Distributed Grep   (Identity)
//	Sort               (Sorting)
//	WordCount          (Aggregation)
//	k-Nearest Neighbor (Selection)
//	Last.fm listens    (Post-reduction processing)
//	Genetic Algorithm  (Cross-key operations)
//	Black-Scholes      (Single reducer aggregation)
//
// Each App bundles the mapper, both reducer factories and the spill merger,
// so engines and experiments can treat applications uniformly.
package apps

import (
	"strings"

	"blmr/internal/core"
	"blmr/internal/reducers"
	"blmr/internal/store"
)

// App is a runnable MapReduce application in both execution modes.
type App struct {
	// Name identifies the app in reports.
	Name string
	// Class is the paper's Reduce classification.
	Class core.Class
	// Mapper is shared by all map tasks (stateless).
	Mapper core.Mapper
	// NewGroup builds a barrier-mode reducer per reduce task.
	NewGroup func() core.GroupReducer
	// NewStream builds a barrier-less reducer per reduce task.
	NewStream func(st store.Store) core.StreamReducer
	// Merger combines same-key partials for the spill-merge store.
	Merger store.Merger
}

// Grep returns the distributed-grep app: lines containing pattern pass
// through unchanged (Identity class — byte-identical in both modes).
func Grep(pattern string) App {
	return App{
		Name:  "grep",
		Class: core.ClassIdentity,
		Mapper: core.MapperFunc(func(key, value string, emit core.Emitter) {
			if strings.Contains(value, pattern) {
				emit.Emit(key, value)
			}
		}),
		NewGroup:  func() core.GroupReducer { return reducers.Identity{} },
		NewStream: func(store.Store) core.StreamReducer { return reducers.Identity{} },
		Merger:    func(a, b string) string { return a }, // never invoked: unique keys
	}
}

// Sort returns the sort benchmark: the mapper is the identity (keys are
// already order-preserving encodings); the barrier version lets the
// framework sort, the barrier-less version counts duplicates in a tree and
// replays them in order at the end (Section 6.1.1).
func Sort() App {
	return App{
		Name:  "sort",
		Class: core.ClassSorting,
		Mapper: core.MapperFunc(func(key, value string, emit core.Emitter) {
			emit.Emit(key, value)
		}),
		NewGroup: func() core.GroupReducer { return reducers.SortingGroup{} },
		NewStream: func(st store.Store) core.StreamReducer {
			return reducers.NewSortingStream(st)
		},
		Merger: reducers.SumMerger,
	}
}

// WordCount returns the canonical aggregation app (Algorithms 1 and 2 of
// the paper).
func WordCount() App {
	return App{
		Name:  "wordcount",
		Class: core.ClassAggregation,
		Mapper: core.MapperFunc(func(key, value string, emit core.Emitter) {
			// Scan fields in place: emitting substrings avoids the
			// per-line []string that strings.Fields would allocate.
			for i := 0; i < len(value); {
				for i < len(value) && asciiSpace(value[i]) {
					i++
				}
				j := i
				for j < len(value) && !asciiSpace(value[j]) {
					j++
				}
				if j > i {
					emit.Emit(value[i:j], "1")
				}
				i = j
			}
		}),
		NewGroup: func() core.GroupReducer {
			return reducers.AggregationGroup{Combine: reducers.SumMerger}
		},
		NewStream: func(st store.Store) core.StreamReducer {
			return reducers.NewAggregationStream(st, reducers.SumMerger)
		},
		Merger: reducers.SumMerger,
	}
}

// asciiSpace reports whether c is ASCII whitespace (the corpus generators
// only emit single spaces; tabs and newlines are accepted for robustness).
func asciiSpace(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\v', '\f', '\r':
		return true
	}
	return false
}

// KNN returns the k-nearest-neighbors app (Section 4.4): each training
// record is compared against every experimental value; per experimental
// value, the k nearest training values survive. experimental is captured by
// the mapper closure (distributed via the job jar in Hadoop terms).
func KNN(k int, experimental []uint64) App {
	exp := append([]uint64(nil), experimental...)
	return App{
		Name:  "knn",
		Class: core.ClassSelection,
		Mapper: core.MapperFunc(func(key, value string, emit core.Emitter) {
			train := core.DecodeUint64(value)
			for _, ev := range exp {
				var dist uint64
				if train > ev {
					dist = train - ev
				} else {
					dist = ev - train
				}
				emit.Emit(core.EncodeUint64(ev),
					core.JoinValues(core.EncodeUint64(dist), core.EncodeUint64(train)))
			}
		}),
		NewGroup: func() core.GroupReducer { return reducers.SelectionGroup{K: k} },
		NewStream: func(st store.Store) core.StreamReducer {
			return reducers.NewSelectionStream(st, k)
		},
		Merger: reducers.SelectionMerger(k),
	}
}

// LastFM returns the unique-listens app (Section 4.5): count distinct users
// per track.
func LastFM() App {
	return App{
		Name:  "lastfm",
		Class: core.ClassPostReduction,
		Mapper: core.MapperFunc(func(key, value string, emit core.Emitter) {
			parts := core.SplitValues(value)
			emit.Emit(parts[0], parts[1]) // (track, user)
		}),
		NewGroup: func() core.GroupReducer { return reducers.PostReductionGroup{} },
		NewStream: func(st store.Store) core.StreamReducer {
			return reducers.NewPostReductionStream(st)
		},
		Merger: reducers.SetUnionMerger,
	}
}
