package apps

import (
	"math"
	"strconv"

	"blmr/internal/core"
	"blmr/internal/reducers"
	"blmr/internal/store"
	"blmr/internal/workload"
)

// BSParams are the option parameters of the Black-Scholes Monte-Carlo
// simulation (the paper's compute-heavy, single-reducer workload).
type BSParams struct {
	Spot, Strike, Rate, Volatility, Maturity float64
	// Iterations is the number of Monte-Carlo price paths per mapper.
	Iterations int
	// Samples is how many price samples each mapper emits; each emitted
	// sample is the mean of Iterations/Samples paths, so the reducer sees
	// a bounded record stream while the mapper does the heavy lifting.
	Samples int
}

// DefaultBSParams prices an at-the-money one-year call.
func DefaultBSParams() BSParams {
	return BSParams{Spot: 100, Strike: 100, Rate: 0.05, Volatility: 0.2, Maturity: 1, Iterations: 100000, Samples: 100}
}

// BlackScholes returns the options-pricing app (Section 4.7): each mapper
// runs a Monte-Carlo simulation seeded from its input record and emits
// price samples with their squares; a single reducer folds them into a
// running mean and standard deviation with O(1) state.
func BlackScholes(params BSParams) App {
	return App{
		Name:  "blackscholes",
		Class: core.ClassSingleReducer,
		Mapper: core.MapperFunc(func(key, value string, emit core.Emitter) {
			seed, _ := strconv.ParseUint(value, 10, 64)
			rng := workload.NewRNG(seed)
			perSample := params.Iterations / params.Samples
			if perSample < 1 {
				perSample = 1
			}
			drift := (params.Rate - 0.5*params.Volatility*params.Volatility) * params.Maturity
			volT := params.Volatility * math.Sqrt(params.Maturity)
			discount := math.Exp(-params.Rate * params.Maturity)
			for s := 0; s < params.Samples; s++ {
				sum := 0.0
				for i := 0; i < perSample; i++ {
					z := rng.NormFloat64()
					st := params.Spot * math.Exp(drift+volT*z)
					payoff := st - params.Strike
					if payoff < 0 {
						payoff = 0
					}
					sum += discount * payoff
				}
				emit.Emit("0", reducers.MomentsValue(sum/float64(perSample)))
			}
		}),
		NewGroup:  func() core.GroupReducer { return reducers.NewMoments() },
		NewStream: func(store.Store) core.StreamReducer { return reducers.NewMoments() },
		Merger:    func(a, b string) string { return a }, // O(1) state, never spills
	}
}

// BSAnalytic returns the closed-form Black-Scholes call price, used by
// tests to validate the Monte-Carlo pipeline end to end.
func BSAnalytic(p BSParams) float64 {
	d1 := (math.Log(p.Spot/p.Strike) + (p.Rate+0.5*p.Volatility*p.Volatility)*p.Maturity) /
		(p.Volatility * math.Sqrt(p.Maturity))
	d2 := d1 - p.Volatility*math.Sqrt(p.Maturity)
	return p.Spot*cnorm(d1) - p.Strike*math.Exp(-p.Rate*p.Maturity)*cnorm(d2)
}

// cnorm is the standard normal CDF.
func cnorm(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
