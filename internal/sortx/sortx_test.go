package sortx

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"blmr/internal/core"
)

func recs(pairs ...string) []core.Record {
	if len(pairs)%2 != 0 {
		panic("pairs")
	}
	out := make([]core.Record, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, core.Record{Key: pairs[i], Value: pairs[i+1]})
	}
	return out
}

func TestByKeyStable(t *testing.T) {
	in := recs("b", "1", "a", "1", "b", "2", "a", "2", "b", "3")
	ByKey(in)
	want := recs("a", "1", "a", "2", "b", "1", "b", "2", "b", "3")
	for i := range want {
		if in[i] != want[i] {
			t.Fatalf("sorted = %v", in)
		}
	}
}

func TestCompareCost(t *testing.T) {
	if CompareCost(0) != 0 || CompareCost(1) != 0 {
		t.Fatal("trivial sorts must cost 0")
	}
	if CompareCost(8) != 8*3 {
		t.Fatalf("CompareCost(8) = %d, want 24", CompareCost(8))
	}
	if CompareCost(1024) != 1024*10 {
		t.Fatalf("CompareCost(1024) = %d", CompareCost(1024))
	}
}

func TestGroup(t *testing.T) {
	in := recs("a", "1", "a", "2", "b", "x", "c", "y", "c", "z")
	var keys []string
	var counts []int
	Group(in, func(k string, vs []string) {
		keys = append(keys, k)
		counts = append(counts, len(vs))
	})
	if fmt.Sprint(keys) != "[a b c]" || fmt.Sprint(counts) != "[2 1 2]" {
		t.Fatalf("keys=%v counts=%v", keys, counts)
	}
}

func TestGroupPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Group(recs("b", "1", "a", "1"), func(string, []string) {})
}

func TestGroupEmpty(t *testing.T) {
	Group(nil, func(string, []string) { t.Fatal("fn called on empty input") })
}

func TestMergerBasic(t *testing.T) {
	m := NewMerger([]Run{
		NewSliceRun(recs("a", "1", "c", "1", "e", "1")),
		NewSliceRun(recs("b", "2", "c", "2", "d", "2")),
		NewSliceRun(recs("a", "3", "f", "3")),
	})
	out := m.Drain()
	wantKeys := []string{"a", "a", "b", "c", "c", "d", "e", "f"}
	if len(out) != len(wantKeys) {
		t.Fatalf("out = %v", out)
	}
	for i, k := range wantKeys {
		if out[i].Key != k {
			t.Fatalf("out[%d] = %v, want key %q", i, out[i], k)
		}
	}
	// Stability: for key "a", run 0's record precedes run 2's.
	if out[0].Value != "1" || out[1].Value != "3" {
		t.Fatalf("tie-break not stable: %v", out[:2])
	}
}

func TestMergerNextGroup(t *testing.T) {
	m := NewMerger([]Run{
		NewSliceRun(recs("a", "1", "b", "1")),
		NewSliceRun(recs("a", "2", "b", "2", "b", "3")),
	})
	k, vs, ok := m.NextGroup()
	if !ok || k != "a" || len(vs) != 2 {
		t.Fatalf("group1 = %q %v", k, vs)
	}
	k, vs, ok = m.NextGroup()
	if !ok || k != "b" || len(vs) != 3 {
		t.Fatalf("group2 = %q %v", k, vs)
	}
	if _, _, ok = m.NextGroup(); ok {
		t.Fatal("expected exhausted merger")
	}
}

func TestMergerEmptyRuns(t *testing.T) {
	m := NewMerger([]Run{NewSliceRun(nil), NewSliceRun(nil)})
	if _, ok := m.Next(); ok {
		t.Fatal("merger over empty runs should be empty")
	}
	m2 := NewMerger(nil)
	if _, ok := m2.Next(); ok {
		t.Fatal("merger with no runs should be empty")
	}
}

func TestMergeEqualsSortProperty(t *testing.T) {
	// Property: splitting a random record set into sorted runs and merging
	// yields the same key sequence as sorting everything at once.
	f := func(keys []uint16, nRuns uint8) bool {
		all := make([]core.Record, len(keys))
		for i, k := range keys {
			all[i] = core.Record{Key: core.EncodeUint64(uint64(k)), Value: fmt.Sprint(i)}
		}
		n := int(nRuns%7) + 1
		runs := make([][]core.Record, n)
		for i, r := range all {
			runs[i%n] = append(runs[i%n], r)
		}
		var asRuns []Run
		for _, rr := range runs {
			ByKey(rr)
			asRuns = append(asRuns, NewSliceRun(rr))
		}
		merged := NewMerger(asRuns).Drain()
		ref := make([]core.Record, len(all))
		copy(ref, all)
		ByKey(ref)
		if len(merged) != len(ref) {
			return false
		}
		for i := range merged {
			if merged[i].Key != ref[i].Key {
				return false
			}
		}
		return sort.SliceIsSorted(merged, func(i, j int) bool { return merged[i].Key < merged[j].Key })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCombine(t *testing.T) {
	in := recs("b", "1", "a", "2", "b", "3", "a", "4", "c", "5")
	out := Combine(in, func(a, b string) string { return a + "+" + b })
	want := recs("a", "2+4", "b", "1+3", "c", "5")
	if len(out) != len(want) {
		t.Fatalf("combined = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("combined[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	// Degenerate sizes pass through untouched.
	if got := Combine(nil, SumConcat); got != nil {
		t.Fatalf("Combine(nil) = %v", got)
	}
	one := recs("x", "1")
	if got := Combine(one, SumConcat); len(got) != 1 || got[0] != one[0] {
		t.Fatalf("Combine(single) = %v", got)
	}
}

func SumConcat(a, b string) string { return a + b }

func TestMergerReset(t *testing.T) {
	r1 := NewSliceRun(recs("a", "1", "c", "1"))
	r2 := NewSliceRun(recs("b", "2"))
	runs := []Run{r1, r2}
	m := NewMerger(runs)
	first := m.Drain()
	if len(first) != 3 {
		t.Fatalf("first drain = %v", first)
	}
	r1.Rewind()
	r2.Rewind()
	m.Reset(runs)
	second := m.Drain()
	if len(second) != 3 {
		t.Fatalf("second drain = %v", second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("drains differ at %d: %v vs %v", i, first[i], second[i])
		}
	}
}

func TestMergerCountsComparisons(t *testing.T) {
	var big []core.Record
	for i := 0; i < 1000; i++ {
		big = append(big, core.Record{Key: core.EncodeUint64(uint64(i))})
	}
	m := NewMerger([]Run{NewSliceRun(big[:500]), NewSliceRun(big[500:])})
	m.Drain()
	if m.Comparisons <= 0 {
		t.Fatal("expected comparison accounting")
	}
}

func BenchmarkByKey(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([]core.Record, 1<<14)
	for i := range base {
		base[i] = core.Record{Key: core.EncodeUint64(rng.Uint64()), Value: "v"}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		work := make([]core.Record, len(base))
		copy(work, base)
		b.StartTimer()
		ByKey(work)
	}
}

func BenchmarkMerge8Runs(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	runsData := make([][]core.Record, 8)
	for i := range runsData {
		for j := 0; j < 2048; j++ {
			runsData[i] = append(runsData[i], core.Record{Key: core.EncodeUint64(rng.Uint64())})
		}
		ByKey(runsData[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rs []Run
		for _, rd := range runsData {
			rs = append(rs, NewSliceRun(rd))
		}
		m := NewMerger(rs)
		for {
			if _, ok := m.Next(); !ok {
				break
			}
		}
	}
}
