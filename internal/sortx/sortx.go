// Package sortx provides the sorting machinery the MapReduce framework uses:
// stable in-memory record sort, grouping of sorted runs by key, map-side
// combining, and a k-way merge over sorted runs (the barrier shuffle's
// merge-sort and the spill store's merge phase both build on it).
package sortx

import (
	"slices"
	"strings"

	"blmr/internal/core"
)

// ByKey stable-sorts records by key in place and returns the number of key
// comparisons a merge sort would have performed (n log2 n), which the
// simulator charges as CPU work.
func ByKey(recs []core.Record) int64 {
	slices.SortStableFunc(recs, func(a, b core.Record) int {
		return strings.Compare(a.Key, b.Key)
	})
	return CompareCost(len(recs))
}

// CompareCost returns the nominal comparison count for sorting n records.
func CompareCost(n int) int64 {
	if n < 2 {
		return 0
	}
	cost := int64(0)
	for m := n; m > 1; m >>= 1 {
		cost += int64(n)
	}
	return cost
}

// Group invokes fn once per distinct key of a key-sorted slice, passing all
// values for that key in encounter order. It panics if the input is not
// sorted (a framework invariant violation, not a user error).
func Group(recs []core.Record, fn func(key string, values []string)) {
	for i := 0; i < len(recs); {
		j := i + 1
		for j < len(recs) && recs[j].Key == recs[i].Key {
			j++
		}
		if j < len(recs) && recs[j].Key < recs[i].Key {
			panic("sortx: Group input not sorted")
		}
		values := make([]string, 0, j-i)
		for _, r := range recs[i:j] {
			values = append(values, r.Value)
		}
		fn(recs[i].Key, values)
		i = j
	}
}

// Combine key-sorts recs in place and folds same-key neighbours left to
// right with merge, returning the combined prefix of the input slice (no
// new allocation). It is the map-side combiner primitive: merge must be
// commutative and associative, like a store.Merger.
func Combine(recs []core.Record, merge func(a, b string) string) []core.Record {
	if len(recs) < 2 {
		return recs
	}
	ByKey(recs)
	out := recs[:1]
	for _, r := range recs[1:] {
		if last := &out[len(out)-1]; r.Key == last.Key {
			last.Value = merge(last.Value, r.Value)
		} else {
			out = append(out, r)
		}
	}
	return out
}

// Run is a sorted sequence of records consumed incrementally.
type Run interface {
	// Next returns the next record; ok is false when the run is exhausted.
	Next() (core.Record, bool)
}

// Source is a Run that can fail mid-stream — the contract of disk-backed
// spill runs, whose reads can hit I/O errors or truncated files. A failed
// Source reports ok=false from Next (indistinguishable from exhaustion to
// the merge loop) and surfaces the cause through Err. Merge drivers must
// check Merger.Err after draining a merge that includes Sources.
type Source interface {
	Run
	// Err returns the error that ended the stream early, or nil.
	Err() error
}

// SliceRun adapts a pre-sorted slice to the Run interface.
type SliceRun struct {
	recs []core.Record
	pos  int
}

// NewSliceRun wraps a key-sorted slice.
func NewSliceRun(recs []core.Record) *SliceRun { return &SliceRun{recs: recs} }

// Next implements Run.
func (s *SliceRun) Next() (core.Record, bool) {
	if s.pos >= len(s.recs) {
		return core.Record{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// Rewind resets the run to its first record (so a merger can be Reset over
// the same backing slices without reallocating).
func (s *SliceRun) Rewind() { s.pos = 0 }

type mergeEntry struct {
	rec core.Record
	src int
}

// Merger merges any number of sorted runs into one globally key-sorted
// stream. Ties between runs are broken by run index, making the merge
// stable with respect to run order.
//
// The heap is a plain slice of mergeEntry with hand-rolled sift-down:
// unlike container/heap there is no interface boxing, so Next performs zero
// allocations per record merged.
type Merger struct {
	runs    []Run
	entries []mergeEntry
	// Comparisons counts heap comparisons performed, for CPU cost models.
	Comparisons int64
}

// NewMerger primes a merger with the given runs.
func NewMerger(runs []Run) *Merger {
	m := &Merger{}
	m.Reset(runs)
	return m
}

// Reset re-primes the merger over a new set of runs, reusing the heap's
// backing storage (no allocation when the run count does not grow).
func (m *Merger) Reset(runs []Run) {
	m.runs = runs
	m.entries = m.entries[:0]
	m.Comparisons = 0
	for i, r := range runs {
		if rec, ok := r.Next(); ok {
			m.entries = append(m.entries, mergeEntry{rec: rec, src: i})
		}
	}
	for i := len(m.entries)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
}

func (m *Merger) less(i, j int) bool {
	a, b := &m.entries[i], &m.entries[j]
	if a.rec.Key != b.rec.Key {
		return a.rec.Key < b.rec.Key
	}
	return a.src < b.src // stable across runs: earlier run wins ties
}

func (m *Merger) siftDown(i int) {
	n := len(m.entries)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && m.less(r, c) {
			c = r
		}
		if !m.less(c, i) {
			return
		}
		m.entries[i], m.entries[c] = m.entries[c], m.entries[i]
		i = c
	}
}

// Next returns the next record in global key order.
func (m *Merger) Next() (core.Record, bool) {
	if len(m.entries) == 0 {
		return core.Record{}, false
	}
	e := m.entries[0]
	if rec, ok := m.runs[e.src].Next(); ok {
		m.entries[0].rec = rec
		m.siftDown(0)
	} else {
		n := len(m.entries) - 1
		m.entries[0] = m.entries[n]
		m.entries[n] = mergeEntry{} // release the strings
		m.entries = m.entries[:n]
		m.siftDown(0)
	}
	m.Comparisons += int64(bits(len(m.entries)))
	return e.rec, true
}

// NextGroup returns the next key and all its values across all runs.
func (m *Merger) NextGroup() (key string, values []string, ok bool) {
	rec, ok := m.Next()
	if !ok {
		return "", nil, false
	}
	key = rec.Key
	values = append(values, rec.Value)
	for len(m.entries) > 0 && m.entries[0].rec.Key == key {
		rec, _ = m.Next()
		values = append(values, rec.Value)
	}
	return key, values, true
}

// Err returns the first deferred error of any merged run that implements
// Source (disk-backed runs). A non-nil Err means the merged stream ended
// early and its output is incomplete.
func (m *Merger) Err() error {
	for _, r := range m.runs {
		if s, ok := r.(Source); ok {
			if err := s.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Drain returns all remaining records (for tests and small merges).
func (m *Merger) Drain() []core.Record {
	var out []core.Record
	for {
		r, ok := m.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

func bits(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}
