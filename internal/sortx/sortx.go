// Package sortx provides the sorting machinery the MapReduce framework uses:
// stable in-memory record sort, grouping of sorted runs by key, and a k-way
// merge over sorted runs (the barrier shuffle's merge-sort and the spill
// store's merge phase both build on it).
package sortx

import (
	"container/heap"
	"sort"

	"blmr/internal/core"
)

// ByKey stable-sorts records by key in place and returns the number of key
// comparisons a merge sort would have performed (n log2 n), which the
// simulator charges as CPU work.
func ByKey(recs []core.Record) int64 {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	return CompareCost(len(recs))
}

// CompareCost returns the nominal comparison count for sorting n records.
func CompareCost(n int) int64 {
	if n < 2 {
		return 0
	}
	cost := int64(0)
	for m := n; m > 1; m >>= 1 {
		cost += int64(n)
	}
	return cost
}

// Group invokes fn once per distinct key of a key-sorted slice, passing all
// values for that key in encounter order. It panics if the input is not
// sorted (a framework invariant violation, not a user error).
func Group(recs []core.Record, fn func(key string, values []string)) {
	for i := 0; i < len(recs); {
		j := i + 1
		for j < len(recs) && recs[j].Key == recs[i].Key {
			j++
		}
		if j < len(recs) && recs[j].Key < recs[i].Key {
			panic("sortx: Group input not sorted")
		}
		values := make([]string, 0, j-i)
		for _, r := range recs[i:j] {
			values = append(values, r.Value)
		}
		fn(recs[i].Key, values)
		i = j
	}
}

// Run is a sorted sequence of records consumed incrementally.
type Run interface {
	// Next returns the next record; ok is false when the run is exhausted.
	Next() (core.Record, bool)
}

// SliceRun adapts a pre-sorted slice to the Run interface.
type SliceRun struct {
	recs []core.Record
	pos  int
}

// NewSliceRun wraps a key-sorted slice.
func NewSliceRun(recs []core.Record) *SliceRun { return &SliceRun{recs: recs} }

// Next implements Run.
func (s *SliceRun) Next() (core.Record, bool) {
	if s.pos >= len(s.recs) {
		return core.Record{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

type mergeEntry struct {
	rec core.Record
	src int
}

type mergeHeap struct {
	entries []mergeEntry
}

func (h mergeHeap) Len() int { return len(h.entries) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	if a.rec.Key != b.rec.Key {
		return a.rec.Key < b.rec.Key
	}
	return a.src < b.src // stable across runs: earlier run wins ties
}
func (h mergeHeap) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *mergeHeap) Push(x any)   { h.entries = append(h.entries, x.(mergeEntry)) }
func (h *mergeHeap) Pop() any {
	old := h.entries
	n := len(old)
	e := old[n-1]
	h.entries = old[:n-1]
	return e
}

// Merger merges any number of sorted runs into one globally key-sorted
// stream. Ties between runs are broken by run index, making the merge
// stable with respect to run order.
type Merger struct {
	runs []Run
	h    mergeHeap
	// Comparisons counts heap comparisons performed, for CPU cost models.
	Comparisons int64
}

// NewMerger primes a merger with the given runs.
func NewMerger(runs []Run) *Merger {
	m := &Merger{runs: runs}
	for i, r := range runs {
		if rec, ok := r.Next(); ok {
			m.h.entries = append(m.h.entries, mergeEntry{rec: rec, src: i})
		}
	}
	heap.Init(&m.h)
	return m
}

// Next returns the next record in global key order.
func (m *Merger) Next() (core.Record, bool) {
	if m.h.Len() == 0 {
		return core.Record{}, false
	}
	e := m.h.entries[0]
	if rec, ok := m.runs[e.src].Next(); ok {
		m.h.entries[0] = mergeEntry{rec: rec, src: e.src}
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	m.Comparisons += int64(bits(m.h.Len()))
	return e.rec, true
}

// NextGroup returns the next key and all its values across all runs.
func (m *Merger) NextGroup() (key string, values []string, ok bool) {
	rec, ok := m.Next()
	if !ok {
		return "", nil, false
	}
	key = rec.Key
	values = append(values, rec.Value)
	for m.h.Len() > 0 && m.h.entries[0].rec.Key == key {
		rec, _ = m.Next()
		values = append(values, rec.Value)
	}
	return key, values, true
}

// Drain returns all remaining records (for tests and small merges).
func (m *Merger) Drain() []core.Record {
	var out []core.Record
	for {
		r, ok := m.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

func bits(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}
