package sortx

// Allocation-focused microbenchmarks of the k-way merge. The slice-heap
// Merger must do zero allocations per record merged (the container/heap
// predecessor boxed every entry through `any` in Push/Pop).

import (
	"math/rand"
	"testing"

	"blmr/internal/core"
)

func buildRuns(nRuns, perRun int, seed int64) []*SliceRun {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*SliceRun, nRuns)
	for i := range out {
		recs := make([]core.Record, perRun)
		for j := range recs {
			recs[j] = core.Record{Key: core.EncodeUint64(rng.Uint64()), Value: "v"}
		}
		ByKey(recs)
		out[i] = NewSliceRun(recs)
	}
	return out
}

// BenchmarkMergerNext measures one Next call per op; allocs/op must be 0.
// The merger is Reset in-place (runs rewound) whenever it drains, so setup
// cost is amortized out of the per-record numbers.
func BenchmarkMergerNext(b *testing.B) {
	sliceRuns := buildRuns(8, 4096, 7)
	runs := make([]Run, len(sliceRuns))
	for i, r := range sliceRuns {
		runs[i] = r
	}
	m := NewMerger(runs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.Next(); !ok {
			b.StopTimer()
			for _, r := range sliceRuns {
				r.Rewind()
			}
			m.Reset(runs)
			b.StartTimer()
		}
	}
}

// BenchmarkMergerDrain measures a full 8x4096 merge per op, amortizing the
// (reused) heap setup into the run.
func BenchmarkMergerDrain(b *testing.B) {
	sliceRuns := buildRuns(8, 4096, 8)
	runs := make([]Run, len(sliceRuns))
	for i, r := range sliceRuns {
		runs[i] = r
	}
	m := NewMerger(runs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			if _, ok := m.Next(); !ok {
				break
			}
		}
		for _, r := range sliceRuns {
			r.Rewind()
		}
		m.Reset(runs)
	}
}

func BenchmarkCombine(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	base := make([]core.Record, 1<<13)
	for i := range base {
		base[i] = core.Record{Key: core.EncodeUint64(rng.Uint64() % 512), Value: "1"}
	}
	work := make([]core.Record, len(base))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		Combine(work, func(a, _ string) string { return a })
	}
}
