package workload

import (
	"math"
	"testing"
	"testing/quick"

	"blmr/internal/core"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a2 := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestIntnUniformish(t *testing.T) {
	r := NewRNG(2)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for b, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("bucket %d = %d, not ~10000", b, c)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(3)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.02 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(sd-1) > 0.02 {
		t.Fatalf("sd = %v", sd)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(4)
	z := NewZipf(r, 1000, 1.0)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] < counts[10]*3 {
		t.Fatalf("rank 0 (%d) should dominate rank 10 (%d)", counts[0], counts[10])
	}
	// Rank 0 of a Zipf(1, 1000) has p ~ 1/H_1000 ~ 0.133.
	if counts[0] < n/10 || counts[0] > n/5 {
		t.Fatalf("rank 0 frequency %d outside expected band", counts[0])
	}
}

func TestTextShape(t *testing.T) {
	recs := Text(7, 100, 50, 10)
	if len(recs) != 100 {
		t.Fatalf("lines = %d", len(recs))
	}
	again := Text(7, 100, 50, 10)
	for i := range recs {
		if recs[i] != again[i] {
			t.Fatal("Text not deterministic")
		}
	}
}

func TestUniformKeysEncoded(t *testing.T) {
	recs := UniformKeys(8, 500, 1000)
	for _, r := range recs {
		if v := core.DecodeUint64(r.Key); v >= 1000 {
			t.Fatalf("key %d out of range", v)
		}
	}
}

func TestKNNExperimentalUnique(t *testing.T) {
	d := KNN(9, 1000, 200, 1000000)
	if len(d.Training) != 1000 || len(d.Experimental) != 200 {
		t.Fatalf("sizes %d %d", len(d.Training), len(d.Experimental))
	}
	seen := map[uint64]bool{}
	for _, v := range d.Experimental {
		if seen[v] {
			t.Fatal("duplicate experimental value")
		}
		seen[v] = true
	}
	if len(KNNRecords(d, 20)) != 1000 {
		t.Fatal("KNNRecords length")
	}
}

func TestListensShape(t *testing.T) {
	recs := Listens(10, 1000, 50, 5000)
	if len(recs) != 1000 {
		t.Fatalf("n = %d", len(recs))
	}
	parts := core.SplitValues(recs[0].Value)
	if len(parts) != 2 {
		t.Fatalf("value parts = %v", parts)
	}
}

func TestIndividualsGenome(t *testing.T) {
	recs := Individuals(11, 10, 32)
	for _, r := range recs {
		if len(r.Value) != 32 {
			t.Fatalf("genome length %d", len(r.Value))
		}
		for _, c := range r.Value {
			if c != '0' && c != '1' {
				t.Fatalf("genome char %q", c)
			}
		}
	}
}

func TestSplitEvenlyProperty(t *testing.T) {
	f := func(n uint8, splits uint8) bool {
		recs := make([]core.Record, int(n))
		s := int(splits%16) + 1
		parts := SplitEvenly(recs, s)
		if len(parts) != s {
			return false
		}
		total := 0
		maxLen, minLen := 0, 1<<30
		for _, p := range parts {
			total += len(p)
			if len(p) > maxLen {
				maxLen = len(p)
			}
			if len(p) < minLen {
				minLen = len(p)
			}
		}
		// All records covered; sizes within ceil/floor of each other
		// (trailing splits may be empty when n < s).
		return total == int(n) && (maxLen-minLen <= maxLen || int(n) < s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitEvenlyCoversInOrder(t *testing.T) {
	recs := Text(12, 103, 20, 3)
	parts := SplitEvenly(recs, 7)
	var flat []core.Record
	for _, p := range parts {
		flat = append(flat, p...)
	}
	if len(flat) != len(recs) {
		t.Fatalf("flattened %d, want %d", len(flat), len(recs))
	}
	for i := range flat {
		if flat[i] != recs[i] {
			t.Fatal("order not preserved")
		}
	}
}

func TestOptionSeedsDistinct(t *testing.T) {
	recs := OptionSeeds(13, 50)
	seen := map[string]bool{}
	for _, r := range recs {
		if seen[r.Value] {
			t.Fatal("duplicate seed")
		}
		seen[r.Value] = true
	}
}

func TestTextHeapsVocabGrows(t *testing.T) {
	distinct := func(lines int) int {
		recs := TextHeaps(20, lines, 100, 8, 0.3, 1.0)
		set := map[string]bool{}
		for _, r := range recs {
			for _, w := range splitWordsForTest(r.Value) {
				set[w] = true
			}
		}
		return len(set)
	}
	small, large := distinct(200), distinct(2000)
	// With a 30% unique fraction, vocabulary must grow roughly linearly.
	if large < 4*small {
		t.Fatalf("vocab did not grow: %d -> %d", small, large)
	}
}

func splitWordsForTest(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}
