// Package workload generates the synthetic datasets for the paper's six
// applications: Zipf-distributed text (word count, grep, sort), numeric
// training/experimental sets (k-NN), Last.fm track listens, genetic-
// algorithm populations, and Black-Scholes option parameters.
//
// All generation is driven by an in-repo splitmix64 RNG so every experiment
// is reproducible bit-for-bit with no dependence on math/rand internals.
package workload

import "math"

// RNG is a splitmix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded deterministically.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn requires positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s using a precomputed CDF and binary search — matching the
// heavy word-frequency skew of natural-language corpora.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a sampler over n ranks with exponent s (s=1 is classic).
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("workload: Zipf requires positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next returns the next sampled rank.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
