package workload

import (
	"fmt"
	"strings"

	"blmr/internal/core"
)

// Text produces documents of Zipf-distributed words: one record per line,
// key = line id, value = the line's words. vocab controls distinct words,
// wordsPerLine the line length.
func Text(seed uint64, lines, vocab, wordsPerLine int) []core.Record {
	rng := NewRNG(seed)
	zipf := NewZipf(rng, vocab, 1.0)
	words := make([]string, vocab)
	for i := range words {
		words[i] = fmt.Sprintf("word%05d", i)
	}
	out := make([]core.Record, lines)
	var sb strings.Builder
	for i := range out {
		sb.Reset()
		for w := 0; w < wordsPerLine; w++ {
			if w > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(words[zipf.Next()])
		}
		out[i] = core.Record{Key: fmt.Sprintf("line%08d", i), Value: sb.String()}
	}
	return out
}

// TextHeaps produces documents like Text, but a fraction of word
// occurrences are globally unique tokens, so the distinct-word count grows
// with corpus size (Heaps' law) — matching real text corpora, where
// word-count partial results grow with the dataset and eventually overflow
// reducer memory (the paper's Figure 5(a)).
func TextHeaps(seed uint64, lines, coreVocab, wordsPerLine int, uniqueFrac, zipfS float64) []core.Record {
	rng := NewRNG(seed)
	zipf := NewZipf(rng, coreVocab, zipfS)
	words := make([]string, coreVocab)
	for i := range words {
		words[i] = fmt.Sprintf("word%05d", i)
	}
	out := make([]core.Record, lines)
	var sb strings.Builder
	uniq := 0
	for i := range out {
		sb.Reset()
		for w := 0; w < wordsPerLine; w++ {
			if w > 0 {
				sb.WriteByte(' ')
			}
			if rng.Float64() < uniqueFrac {
				fmt.Fprintf(&sb, "uniq%08dq", uniq)
				uniq++
			} else {
				sb.WriteString(words[zipf.Next()])
			}
		}
		out[i] = core.Record{Key: fmt.Sprintf("line%08d", i), Value: sb.String()}
	}
	return out
}

// UniformKeys produces records whose keys are order-preserving encodings of
// uniform integers in [0, keyRange) — the sort benchmark's input.
func UniformKeys(seed uint64, n int, keyRange uint64) []core.Record {
	rng := NewRNG(seed)
	out := make([]core.Record, n)
	for i := range out {
		out[i] = core.Record{Key: core.EncodeUint64(rng.Uint64() % keyRange), Value: ""}
	}
	return out
}

// KNNData is the k-nearest-neighbors input: a training set and an
// experimental set of integer values in [0, valueRange).
type KNNData struct {
	Training     []uint64
	Experimental []uint64
}

// KNN generates the two value sets. Experimental values are distinct (the
// paper notes experimental values must be unique), training values need not
// be.
func KNN(seed uint64, training, experimental int, valueRange uint64) KNNData {
	rng := NewRNG(seed)
	d := KNNData{
		Training:     make([]uint64, training),
		Experimental: make([]uint64, 0, experimental),
	}
	for i := range d.Training {
		d.Training[i] = rng.Uint64() % valueRange
	}
	seen := make(map[uint64]bool, experimental)
	for len(d.Experimental) < experimental {
		v := rng.Uint64() % valueRange
		if !seen[v] {
			seen[v] = true
			d.Experimental = append(d.Experimental, v)
		}
	}
	return d
}

// KNNRecords flattens the training set into framework records: value is the
// encoded training value, key is a record id padded to padBytes so input
// records have a realistic on-disk size (the experimental set rides along
// in the mapper closure).
func KNNRecords(d KNNData, padBytes int) []core.Record {
	pad := strings.Repeat("x", padBytes)
	out := make([]core.Record, len(d.Training))
	for i, v := range d.Training {
		out[i] = core.Record{Key: fmt.Sprintf("t%08d%s", i, pad), Value: core.EncodeUint64(v)}
	}
	return out
}

// Listens generates Last.fm-style play events uniformly at random across
// users and tracks (the paper used 50 users and 5000 tracks): key = record
// id, value = (trackId, userId).
func Listens(seed uint64, n, users, tracks int) []core.Record {
	rng := NewRNG(seed)
	out := make([]core.Record, n)
	for i := range out {
		track := fmt.Sprintf("track%05d", rng.Intn(tracks))
		user := fmt.Sprintf("user%04d", rng.Intn(users))
		out[i] = core.Record{Key: fmt.Sprintf("ev%08d", i), Value: core.JoinValues(track, user)}
	}
	return out
}

// Individuals generates a genetic-algorithm population: key = individual id,
// value = genome bitstring of the given length.
func Individuals(seed uint64, n, genomeBits int) []core.Record {
	rng := NewRNG(seed)
	out := make([]core.Record, n)
	genome := make([]byte, genomeBits)
	for i := range out {
		for g := range genome {
			if rng.Uint64()&1 == 1 {
				genome[g] = '1'
			} else {
				genome[g] = '0'
			}
		}
		out[i] = core.Record{Key: fmt.Sprintf("ind%08d", i), Value: string(genome)}
	}
	return out
}

// OptionSeeds generates per-mapper Monte-Carlo seeds for Black-Scholes: the
// mapper runs its simulation from the seed, so input records are tiny while
// map work is large (the paper's compute-heavy, O(1)-output workload).
func OptionSeeds(seed uint64, mappers int) []core.Record {
	rng := NewRNG(seed)
	out := make([]core.Record, mappers)
	for i := range out {
		out[i] = core.Record{
			Key:   fmt.Sprintf("task%04d", i),
			Value: fmt.Sprintf("%d", rng.Uint64()),
		}
	}
	return out
}

// SplitEvenly partitions records into n contiguous splits of near-equal
// size (the DFS ingest unit). n is clamped to [1, len(recs)] except that
// empty inputs produce n empty splits.
func SplitEvenly(recs []core.Record, n int) [][]core.Record {
	if n <= 0 {
		n = 1
	}
	out := make([][]core.Record, n)
	if len(recs) == 0 {
		return out
	}
	per := (len(recs) + n - 1) / n
	for i := 0; i < n; i++ {
		lo := i * per
		if lo > len(recs) {
			lo = len(recs)
		}
		hi := lo + per
		if hi > len(recs) {
			hi = len(recs)
		}
		out[i] = recs[lo:hi]
	}
	return out
}
