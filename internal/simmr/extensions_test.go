package simmr

import (
	"testing"

	"blmr/internal/apps"
	"blmr/internal/reducers"
	"blmr/internal/workload"
)

func TestCombinerPreservesOutput(t *testing.T) {
	input := workload.Text(21, 3000, 400, 8)
	run := func(withCombiner bool) *Result {
		e := NewEngine(testConfig())
		f := e.Ingest("in", workload.SplitEvenly(input, 8))
		job := jobFor(apps.WordCount(), Pipelined, 3)
		if withCombiner {
			job.Combiner = reducers.SumMerger
		}
		return e.Run(job, f)
	}
	plain := run(false)
	combined := run(true)
	requireSameOutput(t, "combiner", plain.Output, combined.Output)
	if combined.ShuffleBytes >= plain.ShuffleBytes {
		t.Fatalf("combiner should shrink shuffle: %d vs %d bytes",
			combined.ShuffleBytes, plain.ShuffleBytes)
	}
	// With a Zipf word distribution, map-side combining should cut the
	// shuffle volume substantially.
	if combined.ShuffleBytes > plain.ShuffleBytes*3/4 {
		t.Fatalf("combiner only saved %d of %d bytes", plain.ShuffleBytes-combined.ShuffleBytes, plain.ShuffleBytes)
	}
}

func TestCombinerWorksInBarrierMode(t *testing.T) {
	input := workload.Text(22, 2000, 300, 8)
	e := NewEngine(testConfig())
	f := e.Ingest("in", workload.SplitEvenly(input, 6))
	job := jobFor(apps.WordCount(), Barrier, 3)
	job.Combiner = reducers.SumMerger
	res := e.Run(job, f)

	e2 := NewEngine(testConfig())
	f2 := e2.Ingest("in", workload.SplitEvenly(input, 6))
	ref := e2.Run(jobFor(apps.WordCount(), Barrier, 3), f2)
	requireSameOutput(t, "combiner-barrier", ref.Output, res.Output)
}

func TestMemoizationSkipsRepeatMaps(t *testing.T) {
	input := workload.Text(23, 3000, 400, 8)
	memo := NewMemoCache()
	run := func() *Result {
		cfg := testConfig()
		cfg.Memo = memo
		e := NewEngine(cfg)
		f := e.Ingest("in", workload.SplitEvenly(input, 8))
		return e.Run(jobFor(apps.WordCount(), Pipelined, 3), f)
	}
	cold := run()
	if cold.MemoHits != 0 {
		t.Fatalf("cold run hit the cache %d times", cold.MemoHits)
	}
	if memo.Len() != 8 {
		t.Fatalf("cache holds %d entries, want 8", memo.Len())
	}
	warm := run()
	if warm.MemoHits != 8 {
		t.Fatalf("warm run hits = %d, want 8", warm.MemoHits)
	}
	requireSameOutput(t, "memo", cold.Output, warm.Output)
	if warm.Completion >= cold.Completion {
		t.Fatalf("memoized run (%.2fs) should beat cold run (%.2fs)",
			warm.Completion, cold.Completion)
	}
}

func TestMemoizationInvalidatedByChangedInput(t *testing.T) {
	memo := NewMemoCache()
	run := func(seed uint64) *Result {
		cfg := testConfig()
		cfg.Memo = memo
		e := NewEngine(cfg)
		input := workload.Text(seed, 1000, 200, 8)
		f := e.Ingest("in", workload.SplitEvenly(input, 4))
		return e.Run(jobFor(apps.WordCount(), Pipelined, 2), f)
	}
	run(31)
	changed := run(32) // different corpus: every chunk differs
	if changed.MemoHits != 0 {
		t.Fatalf("changed input must not hit the cache, got %d hits", changed.MemoHits)
	}
}

func TestMemoizationKeyedByReducerCount(t *testing.T) {
	memo := NewMemoCache()
	input := workload.Text(33, 1000, 200, 8)
	run := func(reducers int) *Result {
		cfg := testConfig()
		cfg.Memo = memo
		e := NewEngine(cfg)
		f := e.Ingest("in", workload.SplitEvenly(input, 4))
		return e.Run(jobFor(apps.WordCount(), Pipelined, reducers), f)
	}
	run(2)
	other := run(3) // different partitioning: cached partitions are invalid
	if other.MemoHits != 0 {
		t.Fatalf("different reducer count must not reuse partitions, got %d hits", other.MemoHits)
	}
	if other.Failed {
		t.Fatal(other.FailReason)
	}
}

func TestMemoizationWithCombiner(t *testing.T) {
	input := workload.Text(34, 2000, 300, 8)
	memo := NewMemoCache()
	run := func() *Result {
		cfg := testConfig()
		cfg.Memo = memo
		e := NewEngine(cfg)
		f := e.Ingest("in", workload.SplitEvenly(input, 6))
		job := jobFor(apps.WordCount(), Pipelined, 3)
		job.Combiner = reducers.SumMerger
		return e.Run(job, f)
	}
	cold := run()
	warm := run()
	requireSameOutput(t, "memo+combiner", cold.Output, warm.Output)
	if warm.MemoHits != 6 {
		t.Fatalf("hits = %d", warm.MemoHits)
	}
	if warm.ShuffleBytes != cold.ShuffleBytes {
		t.Fatalf("cached shuffle bytes differ: %d vs %d", warm.ShuffleBytes, cold.ShuffleBytes)
	}
}

func TestSpeculativeExecutionRescuesStraggler(t *testing.T) {
	input := workload.Text(41, 4000, 400, 8)
	run := func(speculative bool) *Result {
		cfg := testConfig()
		cfg.ByteScale = 500 // stretch virtual time so stage durations matter
		cfg.RecordScale = 500
		e := NewEngine(cfg)
		e.C.Nodes[1].Speed = 0.15 // severe straggler
		f := e.Ingest("in", workload.SplitEvenly(input, 8))
		job := jobFor(apps.WordCount(), Pipelined, 3)
		job.Speculative = speculative
		return e.Run(job, f)
	}
	plain := run(false)
	spec := run(true)
	requireSameOutput(t, "speculation", plain.Output, spec.Output)
	if spec.BackupsLaunched == 0 {
		t.Fatal("no backups launched despite a straggler")
	}
	if spec.BackupsWon == 0 {
		t.Fatal("backups should beat a 0.15x straggler")
	}
	// Speculation rescues the map phase (this workload is reduce-bound, so
	// overall completion may be gated elsewhere — the claim under test is
	// the straggler mitigation itself).
	if spec.MapOutputsReady >= plain.MapOutputsReady {
		t.Fatalf("speculation should make map outputs available earlier: %.1fs vs %.1fs",
			spec.MapOutputsReady, plain.MapOutputsReady)
	}
	if spec.Completion > plain.Completion {
		t.Fatalf("speculation must never slow the job: %.1fs vs %.1fs",
			spec.Completion, plain.Completion)
	}
}

func TestSpeculativeExecutionHarmlessWhenHomogeneous(t *testing.T) {
	input := workload.Text(42, 2000, 300, 8)
	e := NewEngine(testConfig())
	f := e.Ingest("in", workload.SplitEvenly(input, 6))
	job := jobFor(apps.WordCount(), Pipelined, 3)
	job.Speculative = true
	res := e.Run(job, f)
	if res.Failed {
		t.Fatal(res.FailReason)
	}
	// Backups may launch for the tail wave, but they must never corrupt
	// output.
	e2 := NewEngine(testConfig())
	f2 := e2.Ingest("in", workload.SplitEvenly(input, 6))
	ref := e2.Run(jobFor(apps.WordCount(), Pipelined, 3), f2)
	requireSameOutput(t, "speculation-homogeneous", ref.Output, res.Output)
}

func TestSpeculativeBarrierMode(t *testing.T) {
	input := workload.Text(43, 2000, 300, 8)
	e := NewEngine(testConfig())
	e.C.Nodes[0].Speed = 0.2
	f := e.Ingest("in", workload.SplitEvenly(input, 8))
	job := jobFor(apps.WordCount(), Barrier, 3)
	job.Speculative = true
	res := e.Run(job, f)
	e2 := NewEngine(testConfig())
	e2.C.Nodes[0].Speed = 0.2
	f2 := e2.Ingest("in", workload.SplitEvenly(input, 8))
	ref := e2.Run(jobFor(apps.WordCount(), Barrier, 3), f2)
	requireSameOutput(t, "speculation-barrier", ref.Output, res.Output)
}

func TestSnapshotsTrackProgress(t *testing.T) {
	input := workload.Text(44, 4000, 600, 8)
	cfg := testConfig()
	cfg.ByteScale = 500
	cfg.RecordScale = 500
	e := NewEngine(cfg)
	f := e.Ingest("in", workload.SplitEvenly(input, 8))
	job := jobFor(apps.WordCount(), Pipelined, 2)
	job.SnapshotPeriod = 2
	res := e.Run(job, f)
	if len(res.Snapshots) < 3 {
		t.Fatalf("only %d snapshots", len(res.Snapshots))
	}
	perReducer := map[int][]Snapshot{}
	for _, s := range res.Snapshots {
		perReducer[s.Reducer] = append(perReducer[s.Reducer], s)
	}
	for r, snaps := range perReducer {
		for i := 1; i < len(snaps); i++ {
			if snaps[i].T <= snaps[i-1].T {
				t.Fatalf("reducer %d snapshot times not increasing", r)
			}
			if snaps[i].Consumed < snaps[i-1].Consumed || snaps[i].Keys < snaps[i-1].Keys {
				t.Fatalf("reducer %d progress went backwards", r)
			}
		}
		last := snaps[len(snaps)-1]
		if last.Consumed == 0 || last.Keys == 0 || last.MemVirt == 0 {
			t.Fatalf("reducer %d final snapshot empty: %+v", r, last)
		}
	}
}

func TestSnapshotsOffByDefault(t *testing.T) {
	input := workload.Text(45, 1000, 200, 8)
	e := NewEngine(testConfig())
	f := e.Ingest("in", workload.SplitEvenly(input, 4))
	res := e.Run(jobFor(apps.WordCount(), Pipelined, 2), f)
	if len(res.Snapshots) != 0 {
		t.Fatalf("snapshots recorded without opting in: %d", len(res.Snapshots))
	}
}
