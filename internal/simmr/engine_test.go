package simmr

import (
	"sort"
	"strconv"
	"testing"

	"blmr/internal/apps"
	"blmr/internal/core"
	"blmr/internal/metrics"
	"blmr/internal/store"
	"blmr/internal/workload"
)

// testConfig is a small fast cluster for unit tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Cluster.Nodes = 4
	cfg.Cluster.MapSlots = 2
	cfg.Cluster.ReduceSlots = 2
	cfg.Cluster.SpeedSpread = 0
	cfg.Cluster.TransferChunkBytes = 64 << 10
	cfg.Replication = 2
	return cfg
}

// jobFor adapts an App to a JobSpec.
func jobFor(app apps.App, mode Mode, reducers int) JobSpec {
	return JobSpec{
		Name:      app.Name,
		Mapper:    app.Mapper,
		NewGroup:  app.NewGroup,
		NewStream: app.NewStream,
		Merger:    app.Merger,
		Reducers:  reducers,
		Mode:      mode,
	}
}

// runBoth executes the same app/input in barrier and pipelined modes on
// fresh engines and returns both results.
func runBoth(t *testing.T, app apps.App, input []core.Record, splits, reducers int, mut func(*JobSpec)) (b, s *Result) {
	t.Helper()
	run := func(mode Mode) *Result {
		e := NewEngine(testConfig())
		f := e.Ingest("in", workload.SplitEvenly(input, splits))
		job := jobFor(app, mode, reducers)
		if mut != nil {
			mut(&job)
		}
		res := e.Run(job, f)
		if res.Failed {
			t.Fatalf("%s/%v failed: %s", app.Name, mode, res.FailReason)
		}
		return res
	}
	return run(Barrier), run(Pipelined)
}

func sortRecs(recs []core.Record) []core.Record {
	out := append([]core.Record(nil), recs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Value < out[j].Value
	})
	return out
}

func requireSameOutput(t *testing.T, name string, a, b []core.Record) {
	t.Helper()
	sa, sb := sortRecs(a), sortRecs(b)
	if len(sa) != len(sb) {
		t.Fatalf("%s: outputs differ in size: %d vs %d", name, len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("%s: output record %d: %v vs %v", name, i, sa[i], sb[i])
		}
	}
}

func TestWordCountModesAgree(t *testing.T) {
	input := workload.Text(1, 3000, 800, 8)
	b, s := runBoth(t, apps.WordCount(), input, 8, 4, nil)
	requireSameOutput(t, "wordcount", b.Output, s.Output)
	if len(b.Output) == 0 {
		t.Fatal("empty output")
	}
	// Every word counted exactly once across reducers.
	total := 0
	for _, r := range b.Output {
		n, _ := strconv.Atoi(r.Value)
		total += n
	}
	if total != 3000*8 {
		t.Fatalf("total = %d, want %d", total, 3000*8)
	}
}

func TestPipelinedFinishesAfterMapsNoEarlierThanBarrierMapDone(t *testing.T) {
	input := workload.Text(2, 4000, 500, 8)
	b, s := runBoth(t, apps.WordCount(), input, 12, 4, nil)
	if s.Completion >= b.Completion {
		t.Fatalf("pipelined (%.1fs) should beat barrier (%.1fs) on wordcount", s.Completion, b.Completion)
	}
	if s.Completion < s.MapDone {
		t.Fatalf("job cannot finish before maps: %.1f < %.1f", s.Completion, s.MapDone)
	}
}

func TestSortModesAgree(t *testing.T) {
	input := workload.UniformKeys(3, 4000, 1_000_000)
	b, s := runBoth(t, apps.Sort(), input, 8, 4, nil)
	requireSameOutput(t, "sort", b.Output, s.Output)
	if len(b.Output) != len(input) {
		t.Fatalf("sort output %d, want %d", len(b.Output), len(input))
	}
}

func TestKNNModesAgree(t *testing.T) {
	d := workload.KNN(4, 1500, 40, 1_000_000)
	app := apps.KNN(10, d.Experimental)
	b, s := runBoth(t, app, workload.KNNRecords(d, 0), 6, 3, nil)
	requireSameOutput(t, "knn", b.Output, s.Output)
	if len(b.Output) != 40*10 {
		t.Fatalf("knn output %d, want 400", len(b.Output))
	}
}

func TestLastFMModesAgree(t *testing.T) {
	input := workload.Listens(5, 6000, 50, 300)
	b, s := runBoth(t, apps.LastFM(), input, 8, 4, nil)
	requireSameOutput(t, "lastfm", b.Output, s.Output)
}

func TestGAOutputCountsMatch(t *testing.T) {
	input := workload.Individuals(6, 400, 64)
	b, s := runBoth(t, apps.GA(40), input, 8, 4, nil)
	if len(b.Output) != len(input) || len(s.Output) != len(input) {
		t.Fatalf("GA offspring: barrier=%d pipelined=%d, want %d", len(b.Output), len(s.Output), len(input))
	}
}

func TestBlackScholesModesAgree(t *testing.T) {
	p := apps.DefaultBSParams()
	p.Iterations = 2000
	p.Samples = 50
	input := workload.OptionSeeds(7, 12)
	b, s := runBoth(t, apps.BlackScholes(p), input, 12, 1, nil)
	requireSameOutput(t, "blackscholes", b.Output, s.Output)
	if len(b.Output) != 3 {
		t.Fatalf("expected count/mean/stddev, got %v", b.Output)
	}
}

func TestGrepIdentityModesAgree(t *testing.T) {
	input := workload.Text(8, 2000, 300, 6)
	b, s := runBoth(t, apps.Grep("word000"), input, 6, 3, nil)
	requireSameOutput(t, "grep", b.Output, s.Output)
}

func TestDeterministicAcrossRuns(t *testing.T) {
	input := workload.Text(9, 1500, 400, 8)
	run := func() *Result {
		e := NewEngine(testConfig())
		f := e.Ingest("in", workload.SplitEvenly(input, 6))
		return e.Run(jobFor(apps.WordCount(), Pipelined, 3), f)
	}
	r1, r2 := run(), run()
	if r1.Completion != r2.Completion {
		t.Fatalf("completion differs: %v vs %v", r1.Completion, r2.Completion)
	}
	requireSameOutput(t, "determinism", r1.Output, r2.Output)
}

func TestTimelineStagesRecorded(t *testing.T) {
	input := workload.Text(10, 2000, 400, 8)
	e := NewEngine(testConfig())
	f := e.Ingest("in", workload.SplitEvenly(input, 6))
	res := e.Run(jobFor(apps.WordCount(), Barrier, 3), f)
	for _, st := range []metrics.Stage{metrics.StageMap, metrics.StageShuffle, metrics.StageSort, metrics.StageReduce, metrics.StageOutput} {
		if _, _, ok := res.Metrics.StageBounds(st); !ok {
			t.Fatalf("stage %s never recorded", st)
		}
	}
	// In barrier mode, the grouped reduce pass cannot start before the
	// last map finishes.
	mapFirst, mapLast, _ := res.Metrics.StageBounds(metrics.StageMap)
	redFirst, _, _ := res.Metrics.StageBounds(metrics.StageReduce)
	if redFirst < mapLast {
		t.Fatalf("barrier violated: reduce at %.1f before last map %.1f", redFirst, mapLast)
	}
	if mapFirst != 0 {
		t.Fatalf("first map should start at 0, got %v", mapFirst)
	}
}

func TestPipelinedReduceOverlapsMaps(t *testing.T) {
	input := workload.Text(11, 4000, 400, 8)
	e := NewEngine(testConfig())
	f := e.Ingest("in", workload.SplitEvenly(input, 16)) // multiple map waves
	res := e.Run(jobFor(apps.WordCount(), Pipelined, 3), f)
	_, mapLast, _ := res.Metrics.StageBounds(metrics.StageMap)
	redFirst, _, _ := res.Metrics.StageBounds(metrics.StageReduce)
	if redFirst >= mapLast {
		t.Fatalf("no pipelining: reduce began %.1f, after last map %.1f", redFirst, mapLast)
	}
}

func TestOOMKillsJob(t *testing.T) {
	input := workload.Text(12, 4000, 3000, 8)
	e := NewEngine(testConfig())
	f := e.Ingest("in", workload.SplitEvenly(input, 8))
	job := jobFor(apps.WordCount(), Pipelined, 2)
	job.Store = store.InMemory
	job.HeapBudget = 64 << 10 // absurdly small: must OOM
	res := e.Run(job, f)
	if !res.Failed {
		t.Fatal("expected OOM failure")
	}
	if res.FailReason == "" || res.Completion <= 0 {
		t.Fatalf("bad failure report: %+v", res)
	}
}

func TestSpillMergeStaysUnderBudgetAndSucceeds(t *testing.T) {
	input := workload.Text(13, 4000, 3000, 8)
	e := NewEngine(testConfig())
	f := e.Ingest("in", workload.SplitEvenly(input, 8))
	job := jobFor(apps.WordCount(), Pipelined, 2)
	job.Store = store.SpillMerge
	job.SpillThreshold = 48 << 10
	job.HeapBudget = 64 << 10
	res := e.Run(job, f)
	if res.Failed {
		t.Fatalf("spill-merge job failed: %s", res.FailReason)
	}
	if res.Spills == 0 {
		t.Fatal("expected spills under this threshold")
	}
	// Output must match an in-memory run with ample budget.
	e2 := NewEngine(testConfig())
	f2 := e2.Ingest("in", workload.SplitEvenly(input, 8))
	ref := e2.Run(jobFor(apps.WordCount(), Pipelined, 2), f2)
	requireSameOutput(t, "spill-vs-mem", ref.Output, res.Output)
}

func TestKVStoreModeWorksAndIsSlower(t *testing.T) {
	input := workload.Text(14, 3000, 1500, 8)
	mkJob := func(kind store.Kind) *Result {
		e := NewEngine(testConfig())
		f := e.Ingest("in", workload.SplitEvenly(input, 8))
		job := jobFor(apps.WordCount(), Pipelined, 2)
		job.Store = kind
		if kind == store.KV {
			job.KVCacheBytes = 32 << 10
		}
		return e.Run(job, f)
	}
	mem := mkJob(store.InMemory)
	kv := mkJob(store.KV)
	if kv.Failed || mem.Failed {
		t.Fatal("unexpected failure")
	}
	requireSameOutput(t, "kv-vs-mem", mem.Output, kv.Output)
	if kv.Completion <= mem.Completion {
		t.Fatalf("KV store (%.1fs) should be slower than in-memory (%.1fs)", kv.Completion, mem.Completion)
	}
}

func TestMapRetryPreservesOutput(t *testing.T) {
	input := workload.Text(15, 2000, 400, 8)
	cfg := testConfig()
	cfg.FailMapTask = 2
	e := NewEngine(cfg)
	f := e.Ingest("in", workload.SplitEvenly(input, 6))
	res := e.Run(jobFor(apps.WordCount(), Pipelined, 3), f)
	if res.MapRetries != 1 {
		t.Fatalf("retries = %d, want 1", res.MapRetries)
	}
	// Reference without failure.
	e2 := NewEngine(testConfig())
	f2 := e2.Ingest("in", workload.SplitEvenly(input, 6))
	ref := e2.Run(jobFor(apps.WordCount(), Pipelined, 3), f2)
	requireSameOutput(t, "retry", ref.Output, res.Output)
	// The retried attempt may reorder slot scheduling slightly, but a
	// dramatically faster failed run would indicate lost work.
	if res.Completion < 0.5*ref.Completion {
		t.Fatalf("failed run (%.2f) impossibly beat clean run (%.2f)", res.Completion, ref.Completion)
	}
}

func TestMemSamplesCollected(t *testing.T) {
	input := workload.Text(16, 3000, 2000, 8)
	e := NewEngine(testConfig())
	f := e.Ingest("in", workload.SplitEvenly(input, 6))
	res := e.Run(jobFor(apps.WordCount(), Pipelined, 2), f)
	if res.PeakMemVirt <= 0 {
		t.Fatal("no peak memory recorded")
	}
	ids := res.Metrics.SortedReducerIDs()
	if len(ids) != 2 {
		t.Fatalf("mem series for %d reducers, want 2", len(ids))
	}
	series := res.Metrics.MemSeries(ids[0])
	if len(series) < 2 {
		t.Fatalf("too few samples: %d", len(series))
	}
	// Memory is non-decreasing for an aggregation until emit.
	for i := 1; i < len(series)-1; i++ {
		if series[i].Bytes < series[i-1].Bytes {
			t.Fatalf("aggregation memory shrank mid-run at sample %d", i)
		}
	}
}

func TestMoreReducersSpreadLoad(t *testing.T) {
	input := workload.Text(17, 4000, 800, 8)
	e1 := NewEngine(testConfig())
	r1 := e1.Run(jobFor(apps.WordCount(), Pipelined, 1), e1.Ingest("in", workload.SplitEvenly(input, 8)))
	e8 := NewEngine(testConfig())
	r8 := e8.Run(jobFor(apps.WordCount(), Pipelined, 8), e8.Ingest("in", workload.SplitEvenly(input, 8)))
	if r8.Completion >= r1.Completion {
		t.Fatalf("8 reducers (%.1fs) should beat 1 reducer (%.1fs)", r8.Completion, r1.Completion)
	}
	requireSameOutput(t, "reducer-count", r1.Output, r8.Output)
}

func TestSingleChunkSingleReducer(t *testing.T) {
	input := workload.Text(18, 100, 50, 5)
	e := NewEngine(testConfig())
	f := e.Ingest("in", workload.SplitEvenly(input, 1))
	res := e.Run(jobFor(apps.WordCount(), Pipelined, 1), f)
	if res.Failed || len(res.Output) == 0 {
		t.Fatalf("tiny job failed: %+v", res.Failed)
	}
}

func TestEmptyInput(t *testing.T) {
	e := NewEngine(testConfig())
	f := e.Ingest("in", workload.SplitEvenly(nil, 3))
	res := e.Run(jobFor(apps.WordCount(), Pipelined, 2), f)
	if res.Failed {
		t.Fatalf("empty job failed: %s", res.FailReason)
	}
	if len(res.Output) != 0 {
		t.Fatalf("empty input produced %d records", len(res.Output))
	}
}
