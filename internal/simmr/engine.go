package simmr

import (
	"fmt"
	"math"

	"blmr/internal/cluster"
	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/dfs"
	"blmr/internal/metrics"
	"blmr/internal/sim"
	"blmr/internal/sortx"
	"blmr/internal/store"
)

// Engine runs one MapReduce job on a freshly built simulated cluster.
// Create one Engine per job execution: the kernel is drained by Run.
type Engine struct {
	K   *sim.Kernel
	C   *cluster.Cluster
	D   *dfs.DFS
	Cfg Config
	Col *metrics.Collector

	// Worker-churn injection (JobSpec.KillWorkerAt): the doomed pool node
	// and its death time. nil/0 when the job configures no kill.
	killNode *cluster.Node
	killAt   float64

	// Coordinator-crash injection (JobSpec.KillCoordinatorAt): the crash
	// time and the event the restarted control plane fires once journal
	// replay and sealed-run re-attach finish. coordUp nil = no kill.
	coordKillAt float64
	coordUp     *sim.Event
}

// NewEngine builds the kernel, cluster and DFS for one run.
func NewEngine(cfg Config) *Engine {
	if cfg.Replication <= 0 {
		cfg.Replication = 3
	}
	if cfg.ByteScale <= 0 {
		cfg.ByteScale = 1
	}
	if cfg.RecordScale <= 0 {
		cfg.RecordScale = cfg.ByteScale
	}
	if cfg.FetchParallelism <= 0 {
		cfg.FetchParallelism = 5
	}
	if cfg.QueueCapBatches <= 0 {
		cfg.QueueCapBatches = 64
	}
	k := sim.NewKernel()
	c := cluster.New(k, cfg.Cluster)
	return &Engine{
		K:   k,
		C:   c,
		D:   dfs.New(c, cfg.Replication),
		Cfg: cfg,
		Col: metrics.NewCollector(),
	}
}

// Ingest loads input splits into the DFS (no simulated time passes).
func (e *Engine) Ingest(name string, splits [][]core.Record) *dfs.File {
	return e.D.Ingest(name, splits, e.Cfg.ByteScale)
}

// virtBytes converts real record bytes to virtual bytes.
func (e *Engine) virtBytes(realBytes int64) int64 {
	return int64(float64(realBytes) * e.Cfg.ByteScale)
}

// virtRecs converts a real record count to a virtual record count.
func (e *Engine) virtRecs(n int) float64 { return float64(n) * e.Cfg.RecordScale }

// mapOutput is the shuffle-service view of one completed map task.
type mapOutput struct {
	node      *cluster.Node
	done      *sim.Event
	parts     [][]core.Record // partition -> records
	partBytes []int64         // partition -> virtual bytes

	// Churn recovery: lost marks a published output that died with its
	// worker; redone fires when the re-executed attempt republishes it on a
	// survivor. Fetchers that find lost set park on redone — the sim
	// counterpart of the PushSource resolver waiting for a superseding
	// 'S' frame.
	lost   bool
	redone *sim.Event

	// startedAt is when the latest original attempt got its slot (-1 while
	// queued); the speculator uses it to spot stragglers.
	startedAt float64
}

// shuffleState tracks map outputs for the reducers and the completion
// fraction that arms speculative backups.
type shuffleState struct {
	maps      []*mapOutput
	doneCount int
	durSum    float64    // summed slot-to-publish durations of done maps
	arm       *sim.Event // fires when the speculation threshold is reached
	armAt     int
	allDone   *sim.Event // fires when every map output is published — the
	// stage barrier a Staged TCP job's fetchers wait behind
}

func newShuffleState(k *sim.Kernel, nMaps, nReduce int) *shuffleState {
	s := &shuffleState{
		maps:    make([]*mapOutput, nMaps),
		arm:     sim.NewEvent(k, "speculation-armed"),
		allDone: sim.NewEvent(k, "maps-all-done"),
	}
	for i := range s.maps {
		s.maps[i] = &mapOutput{
			done:      sim.NewEvent(k, fmt.Sprintf("map-%d-done", i)),
			redone:    sim.NewEvent(k, fmt.Sprintf("map-%d-redone", i)),
			parts:     make([][]core.Record, nReduce),
			partBytes: make([]int64, nReduce),
			startedAt: -1,
		}
	}
	return s
}

// Run executes job over input. It normalizes spec defaults, spawns every
// task, drives the kernel to completion, and returns the result.
func (e *Engine) Run(job JobSpec, input *dfs.File) *Result {
	res := e.prepare(&job, input)
	if res.Failed {
		return res
	}
	if job.KillWorkerAt > 0 {
		pool := e.poolNodes(&job)
		if len(pool) < 2 {
			res.Failed = true
			res.FailReason = fmt.Sprintf("job %q: killing worker %d leaves no survivors in a %d-node pool",
				job.Name, job.KillWorker, len(pool))
			return res
		}
		e.killNode = pool[job.KillWorker%len(pool)]
		e.killAt = job.KillWorkerAt
	}
	if job.KillCoordinatorAt > 0 {
		e.coordKillAt = job.KillCoordinatorAt
		e.coordUp = sim.NewEvent(e.K, "coordinator-restarted")
	}
	e.spawnJob(&job, input, res, nil)
	e.K.Run()
	e.Col.CloseAll(res.Completion)
	if first, last, ok := e.Col.StageBounds(metrics.StageMap); ok {
		_ = first
		res.MapDone = last
	}
	res.PeakMemVirt = e.Col.PeakMem()
	return res
}

// prepare normalizes one job spec against the engine and validates it,
// returning the job's (possibly already-failed) result shell.
func (e *Engine) prepare(job *JobSpec, input *dfs.File) *Result {
	if job.Reducers <= 0 {
		job.Reducers = 1
	}
	if (job.Costs == CostModel{}) {
		job.Costs = DefaultCosts()
	}
	if job.OutputReplication <= 0 {
		job.OutputReplication = e.Cfg.Replication
	}
	res := &Result{Metrics: e.Col, MapTasks: len(input.Chunks)}
	if job.Mode == Pipelined && job.SpillBytes > 0 && job.Store != store.KV && job.Merger == nil {
		// Same contract as mr.Run: a bounded-memory pipelined run needs a
		// merger to reunite spilled partials. The simulator reports it as
		// a failed job (its error channel) rather than silently running
		// unbounded.
		res.Failed = true
		res.FailReason = fmt.Sprintf("job %q needs a merger for a bounded-memory pipelined run", job.Name)
		return res
	}
	if job.Workers > len(e.C.Nodes) {
		job.Workers = len(e.C.Nodes)
	}
	return res
}

// placer overrides task placement: it returns the node task idx of the
// given kind runs on. RunStream routes placement through an exec.Policy
// here; nil keeps the historical default (map i and reduce r on pool node
// index mod pool size, locality-driven when the pool is the whole cluster).
type placer func(isMap bool, idx int) *cluster.Node

// spawnJob spawns one prepared job's tasks onto the shared kernel and
// returns the job's done event. It does not drive the kernel — Run drains
// it for a single job; RunStream spawns several jobs first.
func (e *Engine) spawnJob(job *JobSpec, input *dfs.File, res *Result, place placer) *sim.Event {
	shuffle := newShuffleState(e.K, len(input.Chunks), job.Reducers)
	jobDone := sim.NewEvent(e.K, "job-done")
	reducersLeft := sim.NewWaitGroup(e.K, "reducers", job.Reducers)
	if e.killNode != nil {
		e.K.Spawn("chaos-kill", func(p *sim.Proc) {
			e.chaosKill(p, job, input, shuffle, res, jobDone)
		})
	}
	if e.coordUp != nil {
		e.K.Spawn("coord-kill", func(p *sim.Proc) {
			e.coordKill(p, job, shuffle, res, jobDone)
		})
	}

	for i, ch := range input.Chunks {
		i, ch := i, ch
		// Workers > 0 confines placement to an N-node sub-cluster (the
		// multi-process mode's worker pool), losing chunk locality when the
		// assigned worker holds no replica — ReadChunk then pays the
		// transfer, exactly the cost a small worker pool incurs.
		var node *cluster.Node
		if place != nil {
			node = place(true, i)
		} else if job.Workers > 0 {
			node = e.C.Nodes[i%job.Workers]
		}
		e.K.Spawn(fmt.Sprintf("map-%d", i), func(p *sim.Proc) {
			e.mapTask(p, job, i, ch, node, shuffle, res)
		})
	}
	if job.Speculative && len(input.Chunks) > 1 {
		threshold := job.SpeculativeThreshold
		if threshold <= 0 || threshold >= 1 {
			threshold = 0.75
		}
		shuffle.armAt = int(threshold * float64(len(input.Chunks)))
		if shuffle.armAt < 1 {
			shuffle.armAt = 1
		}
		e.K.Spawn("speculator", func(p *sim.Proc) {
			e.speculator(p, job, input, shuffle, res)
		})
	}
	for r := 0; r < job.Reducers; r++ {
		r := r
		pool := len(e.C.Nodes)
		if job.Workers > 0 {
			pool = job.Workers
		}
		// Map-side churn model: reduce placement ignores KillWorkerAt —
		// the dead worker's reduce tasks are modeled as surviving
		// (DESIGN §11), so a killed run's overhead against an undisturbed
		// baseline measures exactly the map re-execution + re-route cost.
		node := e.C.Nodes[r%pool]
		if place != nil {
			node = place(false, r)
		}
		e.K.Spawn(fmt.Sprintf("reduce-%d", r), func(p *sim.Proc) {
			defer reducersLeft.Done()
			if job.Mode == Barrier {
				e.barrierReduce(p, job, r, node, shuffle, res, jobDone)
			} else {
				e.pipelinedReduce(p, job, r, node, shuffle, res, jobDone)
			}
		})
	}
	e.K.Spawn("job-waiter", func(p *sim.Proc) {
		reducersLeft.Wait(p)
		if !res.Failed {
			res.Completion = p.Now()
		}
		jobDone.Fire()
	})
	return jobDone
}

// mapTask executes one map attempt chain (with one injected retry when
// configured): read the chunk locally, run the real mapper, partition the
// intermediate records, write them to local disk, and publish to the
// shuffle service.
func (e *Engine) mapTask(p *sim.Proc, job *JobSpec, idx int, ch *dfs.Chunk, node *cluster.Node, shuffle *shuffleState, res *Result) {
	if node == nil {
		node = ch.Primary()
	}
	for attempt := 0; ; attempt++ {
		if e.coordDown(p.Now()) {
			// No coordinator to dispatch the task: it stays queued until the
			// restarted control plane finishes replay + re-attach.
			e.coordUp.Wait(p)
		}
		if e.nodeDead(node, p.Now()) {
			// The assigned worker is already gone: the scheduler just
			// re-queues the task on a survivor — no attempt was wasted.
			node = e.survivorNode(idx, job)
		}
		node.MapSlots.Acquire(p, 1)
		shuffle.maps[idx].startedAt = p.Now()
		tok := e.Col.TaskStart(metrics.StageMap, p.Now())

		// Memoized map outputs skip the read and the map computation
		// entirely; only the cached output's local disk read is charged.
		var memoKeyStr string
		if e.Cfg.Memo != nil {
			memoKeyStr = memoKey(job.Name, job.Reducers, compressRatio(job), ch.Records)
			if entry, ok := e.Cfg.Memo.lookup(memoKeyStr); ok {
				node.DiskRead(p, entry.outDisk)
				res.MemoHits++
				e.publishMapOutput(p.Now(), node, shuffle, shuffle.maps[idx], entry, res)
				e.Col.TaskEnd(tok, p.Now())
				node.MapSlots.Release(1)
				return
			}
		}

		fail := attempt == 0 && idx == e.Cfg.FailMapTask
		entry := e.runMapAttempt(p, job, ch, node, fail)
		if entry == nil {
			// Injected failure: the attempt dies before publishing output;
			// the framework re-executes it (paper Section 3.1: fault
			// tolerance is unchanged).
			res.MapRetries++
			e.Col.TaskEnd(tok, p.Now())
			node.MapSlots.Release(1)
			continue
		}

		if e.nodeDead(node, p.Now()) {
			// The worker died under this attempt: its output is gone
			// before publishing, so the attempt re-runs on a survivor —
			// the heartbeat-timeout re-execution path.
			res.MapRetries++
			e.Col.TaskEnd(tok, p.Now())
			node.MapSlots.Release(1)
			node = e.survivorNode(idx, job)
			continue
		}

		if e.coordUp != nil && shuffle.maps[idx].startedAt < e.coordKillAt && p.Now() >= e.coordKillAt {
			// The attempt spanned the crash: the worker's control
			// connection died under it, so the completion was never
			// journaled (its sealed runs survive, but only journaled maps
			// re-attach) — it re-runs once the coordinator returns.
			res.MapRetries++
			e.Col.TaskEnd(tok, p.Now())
			node.MapSlots.Release(1)
			if e.coordDown(p.Now()) {
				e.coordUp.Wait(p)
			}
			continue
		}

		if e.Cfg.Memo != nil {
			e.Cfg.Memo.insert(memoKeyStr, entry)
		}
		res.SpillRuns += entry.spillRuns
		e.publishMapOutput(p.Now(), node, shuffle, shuffle.maps[idx], entry, res)
		e.Col.TaskEnd(tok, p.Now())
		node.MapSlots.Release(1)
		return
	}
}

// runMapAttempt performs the data work of one map attempt on node: chunk
// read, the real mapper, optional combining, and the local write of the
// partitioned output. A nil return simulates a mid-task crash (before any
// output is visible).
func (e *Engine) runMapAttempt(p *sim.Proc, job *JobSpec, ch *dfs.Chunk, node *cluster.Node, injectFailure bool) *memoEntry {
	recs := e.D.ReadChunk(p, node, ch)
	em := core.NewPartitionedEmitter(job.Reducers, len(recs)/job.Reducers+1)
	var inBytes int64
	for _, r := range recs {
		inBytes += r.Size()
		job.Mapper.Map(r.Key, r.Value, em)
	}
	parts := em.Parts
	partBytes := make([]int64, job.Reducers)
	for pi, part := range parts {
		partBytes[pi] = e.virtRecsBytes(part)
	}
	cpu := e.virtRecs(len(recs))*job.Costs.MapCPUPerRecord +
		float64(e.virtBytes(inBytes))*job.Costs.MapCPUPerByte
	node.Compute(p, cpu)

	if job.Combiner != nil {
		var combineRecs int
		for pi := range parts {
			combineRecs += len(parts[pi])
			parts[pi], partBytes[pi] = e.combinePartition(parts[pi], job.Combiner)
		}
		node.Compute(p, e.virtRecs(combineRecs)*job.Costs.StoreCPUPerOp)
	}

	if injectFailure {
		return nil
	}

	var outVirt int64
	for _, b := range partBytes {
		outVirt += b
	}
	// Sealed-run compression (JobSpec.Compression): every materialization
	// of map output — spill runs, the merge pass, the final partitioned
	// file — moves 1/ratio of the raw bytes, at CompressDelay per raw byte
	// of sealing CPU charged once per write.
	ratio := compressRatio(job)
	outDisk := int64(float64(outVirt) / ratio)
	// External shuffle (JobSpec.SpillBytes): output that outgrows the
	// buffer budget is sealed as ceil(out/budget) sorted runs, then merged
	// into the final partitioned file in one extra pass — a full re-read
	// and re-write of the output, per-run fixed latency (seek/open), and
	// the k-way merge's comparisons. This is the throughput price of the
	// memory bound; the final write below is charged either way.
	spillRuns := 0
	if job.SpillBytes > 0 && outVirt > job.SpillBytes {
		spillRuns = int((outVirt + job.SpillBytes - 1) / job.SpillBytes)
		outRecs := 0
		for _, part := range parts {
			outRecs += len(part)
		}
		node.DiskWrite(p, outDisk) // seal the spill runs
		p.Sleep(float64(spillRuns) * job.Costs.SpillRunDelay)
		node.DiskRead(p, outDisk) // merge pass reads every run back
		node.Compute(p, e.virtRecs(outRecs)*math.Log2(float64(spillRuns))*job.Costs.SortCPUPerCompare)
		if ratio > 1 { // seal + decode + re-seal of the merge pass
			node.Compute(p, 2*float64(outVirt)*job.Costs.CompressDelay)
		}
	}
	node.DiskWrite(p, outDisk)
	if ratio > 1 {
		node.Compute(p, float64(outVirt)*job.Costs.CompressDelay)
	}
	return &memoEntry{parts: parts, partBytes: partBytes, outDisk: outDisk, spillRuns: spillRuns}
}

// speculativeOverdue is the straggler threshold: an attempt is cloned only
// once it has held its slot longer than this multiple of the mean completed-
// map duration. Healthy tail-wave maps finish before they become overdue, so
// speculation costs nothing on a homogeneous cluster.
const speculativeOverdue = 1.25

// speculator waits for the arming threshold, then watches every unfinished
// map task: a task still running speculativeOverdue× the mean completed-map
// duration after taking its slot gets one backup clone on a node with a free
// map slot (Hadoop's progress-based speculative execution; clones never
// steal a slot from a pending original).
func (e *Engine) speculator(p *sim.Proc, job *JobSpec, input *dfs.File, shuffle *shuffleState, res *Result) {
	shuffle.arm.Wait(p)
	mean := shuffle.durSum / float64(shuffle.doneCount)
	for i, mo := range shuffle.maps {
		if mo.done.Fired() {
			continue
		}
		i, mo := i, mo
		ch := input.Chunks[i]
		// Avoid the node the original attempt actually runs on: under a
		// Workers sub-cluster that is the assigned pool node, not the
		// chunk's primary.
		avoid := ch.Primary()
		if job.Workers > 0 {
			avoid = e.C.Nodes[i%job.Workers]
		}
		p.Kernel().Spawn(fmt.Sprintf("backup-map-%d", i), func(bp *sim.Proc) {
			// An attempt still queued for a slot is cloned right away (an
			// idle slot elsewhere beats waiting); a running one only once
			// overdue.
			if mo.startedAt >= 0 {
				if d := mo.startedAt + speculativeOverdue*mean - bp.Now(); d > 0 {
					bp.Sleep(d)
				}
			}
			if mo.done.Fired() {
				return // finished within its time budget: no clone
			}
			backupNode := e.pickBackupNode(avoid, job.Workers, bp.Now())
			if backupNode == nil {
				return // no idle slot anywhere: cloning would only add load
			}
			res.BackupsLaunched++
			backupNode.MapSlots.Acquire(bp, 1)
			defer backupNode.MapSlots.Release(1)
			if mo.done.Fired() {
				return // original won while we queued for a slot
			}
			tok := e.Col.TaskStart(metrics.StageMap, bp.Now())
			entry := e.runMapAttempt(bp, job, ch, backupNode, false)
			res.SpillRuns += entry.spillRuns
			if e.nodeDead(backupNode, bp.Now()) {
				// The clone died with its worker; the original attempt
				// (re-queued on a survivor if it was also there) wins.
				e.Col.TaskEnd(tok, bp.Now())
				return
			}
			if e.publishMapOutput(bp.Now(), backupNode, shuffle, mo, entry, res) {
				res.BackupsWon++
			}
			e.Col.TaskEnd(tok, bp.Now())
		})
	}
}

// pickBackupNode returns the node (other than avoid, and other than a
// worker already dead at time now) with the most free map slots, ties
// broken by lowest ID. Clones run only on otherwise-idle slots — the real
// scheduler speculates exactly when an idle worker polls with nothing
// pending — so a nil return (every slot busy or queued) means no backup
// launches at all; speculation never steals a slot from a pending original.
// With a Workers sub-cluster, backups stay inside the worker pool.
func (e *Engine) pickBackupNode(avoid *cluster.Node, workers int, now float64) *cluster.Node {
	nodes := e.C.Nodes
	if workers > 0 {
		nodes = nodes[:workers]
	}
	capacity := int64(e.Cfg.Cluster.MapSlots)
	var best *cluster.Node
	var bestFree int64
	for _, n := range nodes {
		if n == avoid || e.nodeDead(n, now) {
			continue
		}
		free := capacity - n.MapSlots.InUse() - int64(n.MapSlots.Waiting())
		if free > bestFree {
			best, bestFree = n, free
		}
	}
	return best
}

// poolNodes returns the nodes the job's tasks may run on: the Workers
// sub-cluster when confined, the whole cluster otherwise.
func (e *Engine) poolNodes(job *JobSpec) []*cluster.Node {
	if job.Workers > 0 {
		return e.C.Nodes[:job.Workers]
	}
	return e.C.Nodes
}

// survivorNode deterministically places task i on a pool node other than
// the killed one.
func (e *Engine) survivorNode(i int, job *JobSpec) *cluster.Node {
	pool := e.poolNodes(job)
	surv := pool[:0:0]
	for _, n := range pool {
		if n != e.killNode {
			surv = append(surv, n)
		}
	}
	return surv[i%len(surv)]
}

// nodeDead reports whether node is the killed worker and the kill has
// already happened at virtual time now.
func (e *Engine) nodeDead(node *cluster.Node, now float64) bool {
	return e.killNode != nil && node == e.killNode && now >= e.killAt
}

// chaosKill is the injected worker death (JobSpec.KillWorkerAt): at the kill
// time every published map output living on the dead node is marked lost and
// re-executed on a survivor; fetchers parked on those outputs resume when the
// replacement publishes (mapOutput.redone). In-flight attempts on the dead
// node notice their own death in mapTask. This is the simulated counterpart
// of the coordinator's workerLost: invalidate routes, requeue maps, stream
// superseding routes to parked reducers.
func (e *Engine) chaosKill(p *sim.Proc, job *JobSpec, input *dfs.File, shuffle *shuffleState, res *Result, jobDone *sim.Event) {
	p.Sleep(e.killAt)
	if jobDone.Fired() {
		return // the job already finished (or failed): nothing to lose
	}
	for i, mo := range shuffle.maps {
		if !mo.done.Fired() || mo.node != e.killNode {
			continue
		}
		i, mo := i, mo
		mo.lost = true
		res.LostMapOutputs++
		res.MapRetries++
		p.Kernel().Spawn(fmt.Sprintf("reexec-map-%d", i), func(rp *sim.Proc) {
			n := e.survivorNode(i, job)
			n.MapSlots.Acquire(rp, 1)
			defer n.MapSlots.Release(1)
			tok := e.Col.TaskStart(metrics.StageMap, rp.Now())
			entry := e.runMapAttempt(rp, job, input.Chunks[i], n, false)
			res.SpillRuns += entry.spillRuns
			// Republish in place: done already fired and ShuffleBytes
			// counted the logical volume, so only the location changes.
			mo.node = n
			mo.parts = entry.parts
			mo.partBytes = entry.partBytes
			mo.lost = false
			mo.redone.Fire()
			e.Col.TaskEnd(tok, rp.Now())
		})
	}
}

// coordDown reports whether the control plane is dark at virtual time now:
// a coordinator kill is configured, the crash has happened, and the
// restarted coordinator has not yet finished replay + re-attach.
func (e *Engine) coordDown(now float64) bool {
	return e.coordUp != nil && now >= e.coordKillAt && !e.coordUp.Fired()
}

// coordKill is the injected coordinator crash (JobSpec.KillCoordinatorAt):
// at the kill time the control plane goes dark; after the fixed restart
// outage plus a per-map re-attach cost for every output journaled before
// the crash, it returns and fires coordUp. Published outputs survive on
// their workers' sealed runs (the data plane outlives the coordinator) and
// are re-attached rather than re-executed; attempts completing during the
// outage notice in mapTask and re-run. This is the simulated counterpart
// of the service journal + sealed-run re-attach recovery (DESIGN §14).
func (e *Engine) coordKill(p *sim.Proc, job *JobSpec, shuffle *shuffleState, res *Result, jobDone *sim.Event) {
	p.Sleep(e.coordKillAt)
	if jobDone.Fired() {
		e.coordUp.Fire() // job already retired: nothing to recover
		return
	}
	res.CoordRestarts++
	attached := 0
	for _, mo := range shuffle.maps {
		if mo.done.Fired() && !mo.lost {
			attached++
		}
	}
	res.ReattachedMaps = attached
	p.Sleep(job.Costs.CoordRestartDelay + float64(attached)*job.Costs.ReattachPerMap)
	e.coordUp.Fire()
}

// publishMapOutput registers a completed map attempt with the shuffle
// service and fires its done event. With speculative execution two attempts
// may race; only the first publisher wins. Reports whether this attempt won.
func (e *Engine) publishMapOutput(now float64, node *cluster.Node, shuffle *shuffleState, mo *mapOutput, entry *memoEntry, res *Result) bool {
	if mo.done.Fired() {
		return false // a backup (or the original) already published
	}
	if now > res.MapOutputsReady {
		res.MapOutputsReady = now
	}
	mo.node = node
	mo.parts = entry.parts
	mo.partBytes = entry.partBytes
	for _, b := range entry.partBytes {
		res.ShuffleBytes += b
	}
	shuffle.doneCount++
	if mo.startedAt >= 0 {
		shuffle.durSum += now - mo.startedAt
	}
	if shuffle.armAt > 0 && shuffle.doneCount >= shuffle.armAt {
		shuffle.arm.Fire()
	}
	if shuffle.doneCount == len(shuffle.maps) {
		shuffle.allDone.Fire()
	}
	mo.done.Fire()
	return true
}

// combinePartition merges same-key records within one map-local partition,
// deterministically (sorted by key), returning the combined records and
// their virtual size. The partition is freshly built by this attempt, so
// sortx.Combine may sort and fold it in place.
func (e *Engine) combinePartition(recs []core.Record, combine func(a, b string) string) ([]core.Record, int64) {
	out := sortx.Combine(recs, combine)
	return out, e.virtRecsBytes(out)
}

// virtRecsBytes sums per-record virtual sizes (truncating per record, the
// same accounting as emitting records one at a time).
func (e *Engine) virtRecsBytes(recs []core.Record) int64 {
	var b int64
	for _, r := range recs {
		b += e.virtBytes(r.Size())
	}
	return b
}

// compressRatio returns the job's sealed-run compression ratio: 1 with the
// codec off, the workload class's calibrated Costs.CompressRatio (or the
// default) otherwise.
func compressRatio(job *JobSpec) float64 {
	if job.Compression == codec.None {
		return 1
	}
	if job.Costs.CompressRatio > 1 {
		return job.Costs.CompressRatio
	}
	return DefaultCosts().CompressRatio
}

// sortCompareCost returns the virtual comparison count of merge-sorting n
// virtual records.
func sortCompareCost(nVirt float64) float64 {
	if nVirt < 2 {
		return 0
	}
	return nVirt * math.Log2(nVirt)
}

// failJob marks the job failed (first failure wins) and fires jobDone.
func failJob(p *sim.Proc, res *Result, jobDone *sim.Event, reason string) {
	if !res.Failed {
		res.Failed = true
		res.FailReason = reason
		res.Completion = p.Now()
	}
	jobDone.Fire()
}
