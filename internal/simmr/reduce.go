package simmr

import (
	"fmt"

	"blmr/internal/cluster"
	"blmr/internal/core"
	"blmr/internal/kvstore"
	"blmr/internal/metrics"
	"blmr/internal/sim"
	"blmr/internal/sortx"
	"blmr/internal/store"
)

// barrierReduce is stock Hadoop: fetch every map's partition (bounded
// parallel fetchers), hit the barrier, merge-sort, run the grouped reducer,
// write output.
func (e *Engine) barrierReduce(p *sim.Proc, job *JobSpec, r int, node *cluster.Node, shuffle *shuffleState, res *Result, jobDone *sim.Event) {
	node.ReduceSlots.Acquire(p, 1)
	defer node.ReduceSlots.Release(1)

	// --- Shuffle: fetch all partitions, buffering to local disk. ---
	// Sealed-run compression: sections travel — and are buffered — at
	// their compressed size; the decompress CPU is charged where the
	// wall-clock engine pays it, at the consuming merger (the sort phase).
	ratio := compressRatio(job)
	shTok := e.Col.TaskStart(metrics.StageShuffle, p.Now())
	fetchSlots := sim.NewResource(p.Kernel(), fmt.Sprintf("fetch-%d", r), int64(e.Cfg.FetchParallelism))
	fetched := make([][]core.Record, len(shuffle.maps))
	var fetchedVirt, fetchedDisk int64
	peers := make(map[*cluster.Node]bool) // pooled fetch plane: one dial per peer
	wg := sim.NewWaitGroup(p.Kernel(), fmt.Sprintf("fetchers-%d", r), len(shuffle.maps))
	for m := range shuffle.maps {
		m := m
		p.Kernel().Spawn(fmt.Sprintf("fetch-%d-%d", r, m), func(fp *sim.Proc) {
			defer wg.Done()
			mo := shuffle.maps[m]
			e.waitMapOutput(fp, job, shuffle, mo)
			fetchSlots.Acquire(fp, 1)
			defer fetchSlots.Release(1)
			e.guardLost(fp, mo)
			if mo.partBytes[r] > 0 {
				e.chargeRunFetch(fp, job, mo.node, node, peers)
			}
			wire := int64(float64(mo.partBytes[r]) / ratio)
			e.C.Transfer(fp, mo.node, node, wire)
			node.DiskWrite(fp, wire) // buffer run to local disk
			fetched[m] = mo.parts[r]
			fetchedVirt += mo.partBytes[r]
			fetchedDisk += wire
		})
	}
	wg.Wait(p) // <-- the barrier
	e.Col.TaskEnd(shTok, p.Now())

	// --- Sort: merge the buffered runs into key order. ---
	sortTok := e.Col.TaskStart(metrics.StageSort, p.Now())
	total := 0
	for _, part := range fetched {
		total += len(part)
	}
	all := make([]core.Record, 0, total)
	for _, part := range fetched {
		all = append(all, part...)
	}
	node.DiskRead(p, fetchedDisk) // read runs back for the merge
	if ratio > 1 {                // decompress fetched sections block by block
		node.Compute(p, float64(fetchedVirt)*job.Costs.CompressDelay)
	}
	sortx.ByKey(all)
	node.Compute(p, sortCompareCost(e.virtRecs(len(all)))*job.Costs.SortCPUPerCompare)
	// Sort-phase memory: unbounded, the reducer materializes every fetched
	// partition; with a budget, the fetched runs are streamed through an
	// external k-way merge instead, so the sample is capped at the budget
	// — at the price of one open run (seek) per fetched map output. The
	// comparison and read costs above are the same either way.
	memVirt := fetchedVirt
	if job.SpillBytes > 0 && memVirt > job.SpillBytes {
		memVirt = job.SpillBytes
		p.Sleep(float64(len(shuffle.maps)) * job.Costs.SpillRunDelay)
	}
	if job.Transport != InProcShuffle {
		// The run exchange always merges externally: sort-phase memory is
		// the merge's read buffers (64KiB per open run), never the
		// materialized partition — the wall-clock TCP reducer's behaviour.
		if b := e.virtBytes(int64(len(shuffle.maps)+1) * (64 << 10)); memVirt > b {
			memVirt = b
		}
	}
	e.Col.MemSample(r, p.Now(), memVirt)
	e.Col.TaskEnd(sortTok, p.Now())

	// --- Reduce: one grouped invocation per key. ---
	redTok := e.Col.TaskStart(metrics.StageReduce, p.Now())
	out := core.NewRecordSink(0)
	gr := job.NewGroup()
	sortx.Group(all, func(key string, values []string) {
		gr.Reduce(key, values, out)
	})
	if c, ok := gr.(core.Cleanup); ok {
		c.Cleanup(out)
	}
	node.Compute(p, e.virtRecs(len(all))*job.Costs.ReduceCPUPerRecord)
	e.Col.TaskEnd(redTok, p.Now())

	e.writeOutput(p, job, node, out.Recs, res)
}

// fetchBatch is one network chunk's worth of records heading for the
// pipelined reducer.
type fetchBatch struct {
	recs []core.Record
}

// pipelinedReduce is the barrier-less path: one fetch process per mapper
// pulls records as they become available and enqueues them; the reducer
// consumes the FIFO queue record-by-record through a StreamReducer whose
// partial results live in the configured store. Memory is tracked against
// the heap budget; crossing it kills the job (Figure 5(a)).
func (e *Engine) pipelinedReduce(p *sim.Proc, job *JobSpec, r int, node *cluster.Node, shuffle *shuffleState, res *Result, jobDone *sim.Event) {
	node.ReduceSlots.Acquire(p, 1)
	defer node.ReduceSlots.Release(1)

	k := p.Kernel()
	ratio := compressRatio(job)
	shTok := e.Col.TaskStart(metrics.StageShuffle, p.Now())
	queue := sim.NewQueue[fetchBatch](k, fmt.Sprintf("rq-%d", r), e.Cfg.QueueCapBatches)
	wg := sim.NewWaitGroup(k, fmt.Sprintf("pfetchers-%d", r), len(shuffle.maps))
	chunk := e.C.Cfg.TransferChunkBytes
	peers := make(map[*cluster.Node]bool) // pooled fetch plane: one dial per peer
	for m := range shuffle.maps {
		m := m
		k.Spawn(fmt.Sprintf("pfetch-%d-%d", r, m), func(fp *sim.Proc) {
			defer wg.Done()
			mo := shuffle.maps[m]
			e.waitMapOutput(fp, job, shuffle, mo)
			e.guardLost(fp, mo)
			recs := mo.parts[r]
			if len(recs) > 0 {
				e.chargeRunFetch(fp, job, mo.node, node, peers)
			}
			// Stream the partition chunk by chunk, releasing records to
			// the reducer as each chunk lands. Compressed sections travel
			// compressed and decompress on arrival (reducer-node CPU).
			start := 0
			var batchVirt int64
			for i, rec := range recs {
				batchVirt += e.virtBytes(rec.Size())
				if batchVirt >= chunk || i == len(recs)-1 {
					e.C.Transfer(fp, mo.node, node, int64(float64(batchVirt)/ratio))
					if ratio > 1 {
						node.Compute(fp, float64(batchVirt)*job.Costs.CompressDelay)
					}
					queue.Put(fp, fetchBatch{recs: recs[start : i+1]})
					start = i + 1
					batchVirt = 0
				}
			}
		})
	}
	// Close the queue once every fetcher has drained its mapper.
	k.Spawn(fmt.Sprintf("closer-%d", r), func(cp *sim.Proc) {
		wg.Wait(cp)
		queue.Close()
	})

	st := e.newStore(p, job, node)
	sr := job.NewStream(st)
	out := core.NewRecordSink(0)
	redTok := e.Col.TaskStart(metrics.StageReduce, p.Now())
	consumed := 0
	nextSnap := job.SnapshotPeriod
	for {
		batch, ok := queue.Get(p)
		if !ok {
			break
		}
		perRec := job.Costs.ReduceCPUPerRecord + job.Costs.StoreCPUPerOp
		node.Compute(p, e.virtRecs(len(batch.recs))*perRec)
		for _, rec := range batch.recs {
			sr.Consume(rec, out)
		}
		consumed += len(batch.recs)
		// ApproxBytes, not MemBytes: the footprint compared against the
		// heap budget includes the spill store's encode scratch, the same
		// accounting the wall-clock engine reports (store.ApproxRecordBytes
		// per entry), so thresholds and reports agree across engines.
		memVirt := e.virtBytes(st.ApproxBytes())
		e.Col.MemSample(r, p.Now(), memVirt)
		if job.SnapshotPeriod > 0 && p.Now() >= nextSnap {
			res.Snapshots = append(res.Snapshots, Snapshot{
				T: p.Now(), Reducer: r, Consumed: consumed,
				Keys: st.Len(), MemVirt: memVirt,
			})
			for p.Now() >= nextSnap {
				nextSnap += job.SnapshotPeriod
			}
		}
		if job.HeapBudget > 0 && memVirt > job.HeapBudget {
			e.Col.TaskEnd(redTok, p.Now())
			e.Col.TaskEnd(shTok, p.Now())
			failJob(p, res, jobDone, fmt.Sprintf(
				"reducer %d out of memory: partial results %d MB exceed heap budget %d MB (%s store)",
				r, memVirt>>20, job.HeapBudget>>20, job.Store))
			return
		}
	}
	e.Col.TaskEnd(shTok, p.Now())

	// Finalize: emit partial results (spill merges and KV reads charge
	// their own disk time through the hooks).
	sr.Finish(out)
	node.Compute(p, e.virtRecs(len(out.Recs))*job.Costs.FinalizeCPUPerRecord)
	if sp, ok := st.(*store.SpillStore); ok {
		res.Spills += sp.Spills
	}
	e.Col.MemSample(r, p.Now(), e.virtBytes(st.ApproxBytes()))
	e.Col.TaskEnd(redTok, p.Now())

	e.writeOutput(p, job, node, out.Recs, res)
}

// waitMapOutput blocks a fetcher until its map's output is available. The
// overlapped control plane (the default) releases each fetch the moment its
// map publishes — fetches overlap still-running maps, the cross-wave
// overlap mpexec's streamed 'm' metadata buys. JobSpec.Staged over the TCP
// exchange restores the stage barrier: no routing table until the whole
// map wave is done, so every fetch waits for the last map.
func (e *Engine) waitMapOutput(fp *sim.Proc, job *JobSpec, shuffle *shuffleState, mo *mapOutput) {
	if job.Staged && job.Transport == TCPRunExchange {
		shuffle.allDone.Wait(fp)
		return
	}
	mo.done.Wait(fp)
}

// guardLost parks a fetcher whose map output died with its worker
// (JobSpec.KillWorkerAt) until the re-executed attempt republishes on a
// survivor — the simulated counterpart of a parked PushSource resolver
// waiting for the coordinator's superseding route.
func (e *Engine) guardLost(fp *sim.Proc, mo *mapOutput) {
	if mo.lost {
		mo.redone.Wait(fp)
	}
}

// runFetchDelay returns the per-section fetch latency the transport
// charges: sections over the TCP run exchange, only off-node sections
// over the local run exchange, nothing for the in-process shuffle.
func (e *Engine) runFetchDelay(job *JobSpec, from, to *cluster.Node) float64 {
	switch job.Transport {
	case TCPRunExchange:
		return job.Costs.RunFetchDelay
	case RunExchange:
		if from != to {
			return job.Costs.RunFetchDelay
		}
	}
	return 0
}

// chargeRunFetch charges the transport's fetch latency for one section
// moving from -> to. The TCP exchange's pooled fetch plane dials each peer
// run-server once per reduce task and pipelines every later section request
// on that connection, so RunFetchDelay is charged once per (reduce task,
// peer); the local run exchange still pays per off-node section (a file
// open + seek has no connection to reuse).
func (e *Engine) chargeRunFetch(fp *sim.Proc, job *JobSpec, from, to *cluster.Node, peers map[*cluster.Node]bool) {
	d := e.runFetchDelay(job, from, to)
	if d <= 0 {
		return
	}
	if job.Transport == TCPRunExchange {
		if peers[from] {
			return
		}
		peers[from] = true
	}
	fp.Sleep(d)
}

// newStore builds the per-task partial-result store with hooks that charge
// simulated disk and per-op time on the reducer's node.
func (e *Engine) newStore(p *sim.Proc, job *JobSpec, node *cluster.Node) store.Store {
	if job.SpillBytes > 0 && job.Store != store.KV {
		// Bounded-memory parity with mr.Options.SpillBytes: every
		// tree-backed store becomes spill-merge budgeted at the buffer
		// budget (overriding SpillThreshold, exactly as the wall-clock
		// engine does); the KV store keeps its own cache management.
		// Merger presence was validated by Engine.Run.
		thresholdReal := int64(float64(job.SpillBytes) / e.Cfg.ByteScale)
		if thresholdReal <= 0 {
			thresholdReal = 1
		}
		return store.NewSpillStore(thresholdReal, job.Merger, &simSpillHooks{e: e, p: p, node: node})
	}
	switch job.Store {
	case store.SpillMerge:
		thresholdReal := int64(float64(job.SpillThreshold) / e.Cfg.ByteScale)
		if job.SpillThreshold == 0 {
			thresholdReal = 1 << 20
		}
		return store.NewSpillStore(thresholdReal, job.Merger, &simSpillHooks{e: e, p: p, node: node})
	case store.KV:
		cacheReal := int64(float64(job.KVCacheBytes) / e.Cfg.ByteScale)
		if job.KVCacheBytes == 0 {
			cacheReal = 1 << 20
		}
		kv := kvstore.New(kvstore.Config{
			CacheBytes: cacheReal,
			Hooks:      &simKVHooks{e: e, p: p, node: node, opDelay: job.Costs.KVOpDelay},
		})
		return store.NewKVStore(kv)
	default:
		return store.NewMemStore()
	}
}

// writeOutput writes a reducer's final records to the DFS and appends them
// to the job result.
func (e *Engine) writeOutput(p *sim.Proc, job *JobSpec, node *cluster.Node, recs []core.Record, res *Result) {
	outTok := e.Col.TaskStart(metrics.StageOutput, p.Now())
	e.D.Write(p, node, job.Name+".out", recs, e.virtBytes(core.RecordsSize(recs)))
	e.Col.TaskEnd(outTok, p.Now())
	res.Output = append(res.Output, recs...)
}

// simSpillHooks charges spill I/O as local disk traffic (spill bytes are
// already virtual once scaled).
type simSpillHooks struct {
	e    *Engine
	p    *sim.Proc
	node *cluster.Node
}

func (h *simSpillHooks) SpillWrite(n int64) { h.node.DiskWrite(h.p, h.e.virtBytes(n)) }
func (h *simSpillHooks) SpillRead(n int64)  { h.node.DiskRead(h.p, h.e.virtBytes(n)) }

// simKVHooks charges KV-store ops and log I/O. Each user op costs opDelay
// scaled by RecordScale (a real op stands in for RecordScale virtual ops).
type simKVHooks struct {
	e       *Engine
	p       *sim.Proc
	node    *cluster.Node
	opDelay float64
}

// Op throttles the store to its observed per-operation throughput (the
// paper measured ~30,000 inserts/s); every reduce invocation performs a
// get+put cycle, and each real operation stands for RecordScale virtual
// operations.
func (h *simKVHooks) Op(name string) {
	h.p.Sleep(h.opDelay * h.e.Cfg.RecordScale)
}
func (h *simKVHooks) DiskWrite(n int64) { h.node.DiskWrite(h.p, h.e.virtBytes(n)) }
func (h *simKVHooks) DiskRead(n int64)  { h.node.DiskRead(h.p, h.e.virtBytes(n)) }
