// Package simmr executes MapReduce jobs on the simulated cluster, in either
// classic barrier mode (fetch-all, merge-sort, grouped reduce — stock
// Hadoop 0.20) or the paper's pipelined barrier-less mode (per-mapper fetch
// processes feeding a FIFO queue consumed record-at-a-time by a stream
// reducer holding partial results).
//
// Data is real — real records flow through real reducers and real partial-
// result stores — while time and memory are accounted in scaled "virtual"
// units so laptop-sized datasets reproduce the timing shape of the paper's
// multi-GB cluster runs (see Config.ByteScale / RecordScale).
package simmr

import (
	"blmr/internal/cluster"
	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/metrics"
	"blmr/internal/store"
)

// Mode selects barrier or barrier-less execution.
type Mode int

// Execution modes.
const (
	// Barrier: Reduce starts only after every map output is fetched and
	// merge-sorted (Figure 2).
	Barrier Mode = iota
	// Pipelined: Reduce consumes records as the shuffle delivers them
	// (Figure 3).
	Pipelined
)

func (m Mode) String() string {
	if m == Barrier {
		return "barrier"
	}
	return "pipelined"
}

// CostModel holds CPU cost rates in seconds per *virtual* unit. Virtual
// record and byte counts are the real counts scaled by Config.RecordScale /
// Config.ByteScale.
type CostModel struct {
	// MapCPUPerRecord is map-function time per input record.
	MapCPUPerRecord float64
	// MapCPUPerByte is additional map time per input byte (parsing).
	MapCPUPerByte float64
	// ReduceCPUPerRecord is reduce time per intermediate record (both the
	// grouped reduce pass and the streaming Consume path).
	ReduceCPUPerRecord float64
	// StoreCPUPerOp is partial-result store overhead per Get/Put pair in
	// the barrier-less path (tree insertion, paper Section 6.1.1).
	StoreCPUPerOp float64
	// SortCPUPerCompare is merge-sort time per comparison in the barrier
	// path's sort phase.
	SortCPUPerCompare float64
	// FinalizeCPUPerRecord is per-output-record cost of the barrier-less
	// finalize pass (emitting the partial-result structure).
	FinalizeCPUPerRecord float64
	// SpillRunDelay is the per-spill-run fixed latency (seek + file open)
	// charged when JobSpec.SpillBytes forces a task's output into multiple
	// runs — the knob that makes the memory/throughput trade-off visible:
	// smaller budgets mean more runs, more seeks, slower jobs.
	SpillRunDelay float64
	// RunFetchDelay is the fixed fetch latency (RPC + connection + seek) a
	// reducer pays over the run-exchange shuffle (JobSpec.Transport !=
	// InProcShuffle). The TCP exchange models the wall-clock engine's
	// pooled fetch plane: one multiplexed connection per peer run-server,
	// so the delay is charged once per (reduce task, peer) — later
	// sections from that peer ride the pipelined connection for free. The
	// local run exchange charges it per off-node section (each is a file
	// open + seek with no connection to pool).
	RunFetchDelay float64
	// CompressDelay is the CPU cost in seconds per virtual byte of
	// sealed-run (de)compression work, charged on the sealing mapper for
	// its output and on the consuming reducer for what it decodes — the
	// simulated counterpart of the wall-clock block codecs
	// (mr.Options.Compression). Only applies when JobSpec.Compression is
	// enabled.
	CompressDelay float64
	// CompressRatio is the workload class's sealed-run compression ratio
	// (raw/compressed bytes; e.g. sorted text keys front-code far better
	// than uniform numeric ones). <= 1 falls back to the default ratio.
	// Disk writes, re-reads and shuffle transfers of sealed map output are
	// divided by it when JobSpec.Compression is enabled.
	CompressRatio float64
	// KVOpDelay is the per-operation latency of the off-the-shelf KV store
	// (the paper observed ~30,000 inserts/s => ~33µs/op). Applied only
	// when Store == store.KV.
	KVOpDelay float64
	// CoordRestartDelay is the fixed control-plane outage of a coordinator
	// crash-restart (process restart, journal replay, worker
	// re-registration), charged when JobSpec.KillCoordinatorAt fires. No
	// task is dispatched and no completion is journaled during the outage.
	CoordRestartDelay float64
	// ReattachPerMap is the per-journaled-map cost of sealed-run re-attach
	// on coordinator restart (advertisement matching + route re-install),
	// charged during the restart window in place of a re-execution — the
	// reason resuming beats cold re-execution.
	ReattachPerMap float64
}

// DefaultCosts returns rates calibrated so the default cluster reproduces
// the paper's stage proportions (map-heavy jobs of a few hundred seconds).
func DefaultCosts() CostModel {
	return CostModel{
		MapCPUPerRecord:      8e-6,
		MapCPUPerByte:        12e-9,
		ReduceCPUPerRecord:   1.5e-6,
		StoreCPUPerOp:        1.2e-6,
		SortCPUPerCompare:    70e-9,
		FinalizeCPUPerRecord: 1e-6,
		SpillRunDelay:        4e-3,
		// The wall-clock fetch plane serves sections from cached file handles
		// with zero-copy sends (no per-section open+seek), so the fixed fetch
		// latency is connection/RPC cost only.
		RunFetchDelay: 1.0e-3,
		// Effective consumer-side rate: block decode runs on the fetch
		// plane's parallel decode pool, overlapping the merge, so the charged
		// per-byte cost is below the raw ~1.6 GB/s LZ-class codec speed.
		CompressDelay:     0.4e-9,
		CompressRatio:     2.0,
		KVOpDelay:         1.0 / 30000,
		CoordRestartDelay: 0.25,
		ReattachPerMap:    2e-4,
	}
}

// Transport names the shuffle data plane the simulated job models — the
// counterpart of the wall-clock engine's shuffle.Kind.
type Transport int

// Available simulated transports.
const (
	// InProcShuffle moves intermediate data through memory (the default;
	// the behaviour of every pre-split simulation).
	InProcShuffle Transport = iota
	// RunExchange seals map output as spill runs exchanged through local
	// disk; reducers stream an external merge (sort-phase memory is bounded
	// by read buffers) and pay RunFetchDelay for remote sections.
	RunExchange
	// TCPRunExchange is RunExchange with every section fetched through a
	// run-server: RunFetchDelay applies to local sections too.
	TCPRunExchange
)

func (t Transport) String() string {
	switch t {
	case RunExchange:
		return "runx"
	case TCPRunExchange:
		return "tcp"
	}
	return "inproc"
}

// JobSpec describes one MapReduce job.
type JobSpec struct {
	// Name labels the job and its output file.
	Name string
	// Mapper runs once per input record. It must be stateless or safe to
	// share across simulated map tasks.
	Mapper core.Mapper
	// NewGroup builds a barrier-mode reducer per reduce task.
	NewGroup func() core.GroupReducer
	// NewStream builds a barrier-less reducer per reduce task over the
	// task's partial-result store.
	NewStream func(st store.Store) core.StreamReducer
	// Merger combines same-key partials when the spill-merge store is
	// used. Required for store.SpillMerge.
	Merger store.Merger
	// Combiner, when non-nil, merges same-key intermediate records on the
	// map side before they are written and shuffled (Hadoop's combiner;
	// the paper notes the spill merge function "is often functionally the
	// same as the combiner"). It must be commutative and associative.
	Combiner store.Merger
	// Reducers is the number of reduce tasks.
	Reducers int
	// Mode selects barrier or pipelined execution.
	Mode Mode
	// Workers, when > 0, confines every task to the first Workers cluster
	// nodes — the simulated counterpart of `-workers N`: map task i runs on
	// worker i mod Workers (losing data locality when that is not the
	// chunk's home), reduce task r on worker r mod Workers. 0 uses the
	// whole cluster with locality-driven placement.
	Workers int
	// Transport selects the simulated shuffle data plane (default
	// InProcShuffle). The run-exchange transports charge the map output's
	// materialization and RunFetchDelay (per pooled peer over TCP, per
	// off-node section locally), and bound the barrier sort phase's memory
	// at the external merge's read buffers.
	Transport Transport
	// Staged (TCP transport only) restores the multi-process engine's
	// pre-overlap control plane: reducers get no sealed-run routes until
	// the entire map wave completes, so every fetch waits behind the stage
	// barrier — the simulated counterpart of exec.Options.Staged. The
	// default (false) releases each map's sections to the fetchers the
	// moment it publishes, the streamed-metadata overlap.
	Staged bool
	// Compression enables the sealed-run codec model, the simulated
	// counterpart of mr.Options.Compression: map output is materialized,
	// re-read and shuffled at 1/Costs.CompressRatio of its raw volume, and
	// Costs.CompressDelay per raw byte of CPU is charged on the sealing
	// and decoding sides. codec.None models the uncompressed engine.
	Compression codec.Compression
	// Store selects the partial-result strategy for pipelined mode.
	Store store.Kind
	// HeapBudget is the per-reducer virtual heap cap in bytes; exceeding
	// it fails the job like a JVM OutOfMemoryError. 0 = unlimited.
	HeapBudget int64
	// SpillThreshold is the in-memory partial-results budget (virtual
	// bytes) for the spill-merge store (paper: 240 MB).
	SpillThreshold int64
	// SpillBytes, when > 0, bounds every task's buffered intermediate
	// data in virtual bytes — the simulated counterpart of
	// mr.Options.SpillBytes. Map tasks whose output exceeds the budget
	// seal multiple sorted runs and pay an extra merge pass (full output
	// re-read + re-write, per-run SpillRunDelay, merge comparisons);
	// barrier reducers merge fetched runs externally, so their sort-phase
	// memory is sampled at min(fetched, SpillBytes); pipelined reducers
	// with an InMemory store and a Merger are upgraded to a spill-merge
	// store budgeted at SpillBytes. 0 models the all-in-RAM engine.
	SpillBytes int64
	// KVCacheBytes is the KV store's cache budget (virtual bytes).
	KVCacheBytes int64
	// Costs are the CPU rates; zero value uses DefaultCosts.
	Costs CostModel
	// OutputReplication overrides the DFS replication for job output
	// (0 = same as input replication).
	OutputReplication int
	// Speculative enables backup execution of straggling map tasks once
	// SpeculativeThreshold of maps have finished (Hadoop's speculative
	// execution; relevant under heterogeneity, the paper's future work).
	Speculative bool
	// SpeculativeThreshold is the completed-map fraction that arms backup
	// tasks (default 0.75).
	SpeculativeThreshold float64
	// SnapshotPeriod, when > 0, makes pipelined reducers record a progress
	// Snapshot every period virtual seconds — the online-processing
	// monitoring the barrier-less model enables.
	SnapshotPeriod float64
	// KillWorkerAt, when > 0, injects worker churn: at this virtual time the
	// worker-pool node indexed by KillWorker dies. Published map outputs on
	// that node are re-executed on survivors (fetchers park until the
	// replacement publishes — the sim counterpart of the multi-process
	// engine's re-execution + supersede re-route), and in-flight attempts
	// there restart on survivors. The model covers map-side churn only:
	// reduce tasks are placed on survivors up front (DESIGN §11). The pool
	// must have at least two nodes or the job fails.
	KillWorkerAt float64
	// KillWorker is the pool index of the node KillWorkerAt kills.
	KillWorker int
	// KillCoordinatorAt, when > 0, injects a coordinator crash at this
	// virtual time: the control plane goes dark for Costs.CoordRestartDelay
	// (restart, journal replay, worker re-registration) and no task starts
	// meanwhile. Map outputs published before the crash were journaled and
	// survive on their workers' sealed runs — the restarted coordinator
	// re-attaches each at Costs.ReattachPerMap instead of re-executing it.
	// An attempt finishing during the outage has no coordinator to report
	// to: it was never journaled and re-runs once the control plane
	// returns. Like KillWorkerAt this models map-side recovery only
	// (DESIGN §14): reduce progress is not checkpointed mid-task.
	KillCoordinatorAt float64
}

// Result reports one job execution.
type Result struct {
	// Output is every record written by reducers (unordered across
	// reducers; deterministic for a fixed configuration).
	Output []core.Record
	// Completion is the job completion virtual time in seconds.
	Completion float64
	// MapDone is when the last map task attempt finished (losing
	// speculative attempts included).
	MapDone float64
	// MapOutputsReady is when the last map OUTPUT became available to the
	// shuffle — with speculation this is the winning attempt's time.
	MapOutputsReady float64
	// Failed is true when the job was killed (reducer OOM).
	Failed bool
	// FailReason describes the failure.
	FailReason string
	// Metrics holds the task timelines and memory samples.
	Metrics *metrics.Collector
	// Spills counts spill-merge runs written across reducers.
	Spills int
	// SpillRuns counts map-side spill runs sealed under JobSpec.SpillBytes
	// (losing speculative attempts included: they did the disk work).
	SpillRuns int
	// MapTasks and ReduceWaves aid analysis.
	MapTasks    int
	MapRetries  int
	PeakMemVirt int64
	// LostMapOutputs counts published map outputs lost to a worker kill
	// (JobSpec.KillWorkerAt) and re-executed on survivors; each also counts
	// as a MapRetries entry.
	LostMapOutputs int
	// ReattachedMaps counts map outputs journaled before a coordinator
	// crash (JobSpec.KillCoordinatorAt) and re-attached from surviving
	// sealed runs on restart instead of re-executed.
	ReattachedMaps int
	// CoordRestarts counts injected coordinator crash-restarts survived.
	CoordRestarts int
	// ShuffleBytes is the total virtual bytes of intermediate data moved
	// from mappers to reducers (post-combiner).
	ShuffleBytes int64
	// MemoHits counts map tasks served from the memoization cache.
	MemoHits int
	// BackupsLaunched / BackupsWon count speculative map attempts and how
	// many beat the original.
	BackupsLaunched int
	BackupsWon      int
	// Snapshots holds periodic progress observations of pipelined
	// reducers when JobSpec.SnapshotPeriod > 0 (online monitoring).
	Snapshots []Snapshot
}

// Snapshot is one online progress observation of a pipelined reducer.
type Snapshot struct {
	T        float64
	Reducer  int
	Consumed int   // records consumed so far
	Keys     int   // live partial-result keys
	MemVirt  int64 // partial-result footprint, virtual bytes
}

// Config parameterizes the engine (cluster + virtual scaling).
type Config struct {
	// Cluster is the simulated datacenter.
	Cluster cluster.Config
	// Replication is the DFS replication factor (paper: 3).
	Replication int
	// ByteScale converts real record bytes to virtual bytes for all I/O
	// timing and memory accounting (virtual = real * ByteScale).
	ByteScale float64
	// RecordScale converts real record counts to virtual record counts
	// for CPU accounting. Usually set equal to ByteScale.
	RecordScale float64
	// FailMapTask, if >= 0, makes that map task fail once and be retried
	// (fault-tolerance exercise).
	FailMapTask int
	// FetchParallelism bounds concurrent fetches per reducer in barrier
	// mode (Hadoop's parallel copies, default 5).
	FetchParallelism int
	// QueueCapBatches bounds the pipelined reducer's in-flight record
	// batches (backpressure), default 64.
	QueueCapBatches int
	// Memo, when non-nil, caches map outputs across runs (DryadInc-style
	// memoization — the paper's future-work extension).
	Memo *MemoCache
}

// DefaultConfig mirrors the paper's testbed with unit scaling.
func DefaultConfig() Config {
	return Config{
		Cluster:          cluster.Default(),
		Replication:      3,
		ByteScale:        1,
		RecordScale:      1,
		FailMapTask:      -1,
		FetchParallelism: 5,
		QueueCapBatches:  64,
	}
}
