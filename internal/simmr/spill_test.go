package simmr

// Tests of the JobSpec.SpillBytes cost model: the external shuffle must
// preserve output, cost time (the memory/throughput trade-off), and bound
// the barrier sort-phase memory sample.

import (
	"testing"

	"blmr/internal/apps"
	"blmr/internal/store"
	"blmr/internal/workload"
)

// runSpill executes wordcount over a fixed corpus with the given budget.
func runSpill(t *testing.T, mode Mode, spillBytes int64) *Result {
	t.Helper()
	e := NewEngine(testConfig())
	input := workload.Text(7, 4000, 600, 8)
	f := e.Ingest("in", workload.SplitEvenly(input, 8))
	job := jobFor(apps.WordCount(), mode, 4)
	job.SpillBytes = spillBytes
	res := e.Run(job, f)
	if res.Failed {
		t.Fatalf("mode=%v spill=%d failed: %s", mode, spillBytes, res.FailReason)
	}
	return res
}

func TestSpillBytesPreservesOutput(t *testing.T) {
	for _, mode := range []Mode{Barrier, Pipelined} {
		ref := runSpill(t, mode, 0)
		res := runSpill(t, mode, 4<<10)
		a, b := sortRecs(ref.Output), sortRecs(res.Output)
		if len(a) != len(b) {
			t.Fatalf("mode=%v: %d vs %d records", mode, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("mode=%v record %d: %v vs %v", mode, i, b[i], a[i])
			}
		}
		if res.SpillRuns == 0 {
			t.Fatalf("mode=%v: map outputs dwarf 4KiB but no spill runs were modeled", mode)
		}
	}
}

// TestSpillBytesCostsTime: sealing runs and paying the merge pass must slow
// the job down, and more so as the budget shrinks — the throughput side of
// the trade-off.
func TestSpillBytesCostsTime(t *testing.T) {
	free := runSpill(t, Barrier, 0)
	loose := runSpill(t, Barrier, 64<<10)
	tight := runSpill(t, Barrier, 4<<10)
	if !(free.Completion < loose.Completion && loose.Completion < tight.Completion) {
		t.Fatalf("completion should rise as the budget falls: unlimited %.2f, 64KiB %.2f, 4KiB %.2f",
			free.Completion, loose.Completion, tight.Completion)
	}
	if tight.SpillRuns <= loose.SpillRuns {
		t.Fatalf("tighter budget must seal more runs: %d vs %d", tight.SpillRuns, loose.SpillRuns)
	}
}

// TestSpillBytesBoundsBarrierSortMemory: with a budget, the barrier
// reducer's sort phase is an external merge, so its memory sample is capped
// at the budget; unbounded, it reports the full fetched partition volume —
// the comparison that makes the bound's benefit visible.
func TestSpillBytesBoundsBarrierSortMemory(t *testing.T) {
	const budget = 4 << 10
	free := runSpill(t, Barrier, 0)
	bounded := runSpill(t, Barrier, budget)
	if free.PeakMemVirt <= budget {
		t.Fatalf("unbounded barrier sort memory %d should dwarf the %d budget", free.PeakMemVirt, budget)
	}
	if bounded.PeakMemVirt == 0 || bounded.PeakMemVirt > budget {
		t.Fatalf("bounded barrier sort memory sample = %d, want (0, %d]", bounded.PeakMemVirt, budget)
	}
}

// TestSpillBytesOverridesSpillThreshold: parity with mr — SpillBytes
// bounds an explicit SpillMerge store too, overriding a (much larger)
// SpillThreshold, so figure reproductions and the real engine agree.
func TestSpillBytesOverridesSpillThreshold(t *testing.T) {
	e := NewEngine(testConfig())
	input := workload.Text(7, 4000, 600, 8)
	f := e.Ingest("in", workload.SplitEvenly(input, 8))
	job := jobFor(apps.WordCount(), Pipelined, 4)
	job.Store = store.SpillMerge
	job.SpillThreshold = 64 << 20 // would never spill on this input
	job.SpillBytes = 8 << 10
	res := e.Run(job, f)
	if res.Failed {
		t.Fatal(res.FailReason)
	}
	if res.Spills == 0 {
		t.Fatal("SpillBytes must override the larger SpillThreshold")
	}
}

// TestSpillBytesWithoutMergerFails: same contract as mr.Run — a
// bounded-memory pipelined run without a merger is refused (reported as a
// failed job, the simulator's error channel), not silently unbounded.
func TestSpillBytesWithoutMergerFails(t *testing.T) {
	e := NewEngine(testConfig())
	input := workload.Text(7, 100, 60, 4)
	f := e.Ingest("in", workload.SplitEvenly(input, 2))
	job := jobFor(apps.WordCount(), Pipelined, 2)
	job.Merger = nil
	job.SpillBytes = 4 << 10
	res := e.Run(job, f)
	if !res.Failed {
		t.Fatal("merger-less pipelined job with SpillBytes must fail")
	}
}

// TestSpillBytesUpgradesPipelinedStore: an InMemory pipelined job with a
// merger and a budget runs on a spill-merge store, so reducer partials spill
// and peak memory stays near the budget while output is unchanged.
func TestSpillBytesUpgradesPipelinedStore(t *testing.T) {
	const budget = 8 << 10
	res := runSpill(t, Pipelined, budget)
	if res.Spills == 0 {
		t.Fatal("pipelined reducers never spilled under an 8KiB budget")
	}
	// ApproxBytes-based samples include the encode scratch: allow 3x.
	if res.PeakMemVirt > 3*budget {
		t.Fatalf("peak partials %d far above budget %d", res.PeakMemVirt, budget)
	}
}
