package simmr

import (
	"testing"

	"blmr/internal/apps"
	"blmr/internal/workload"
)

func workersTestRun(t *testing.T, workers int, tr Transport, mode Mode) *Result {
	t.Helper()
	eng := NewEngine(DefaultConfig())
	recs := workload.Text(31, 2000, 400, 6)
	f := eng.Ingest("in", workload.SplitEvenly(recs, 12))
	app := apps.WordCount()
	res := eng.Run(JobSpec{
		Name: "wc", Mapper: app.Mapper, NewGroup: app.NewGroup,
		NewStream: app.NewStream, Merger: app.Merger,
		Reducers: 8, Mode: mode, Workers: workers, Transport: tr,
	}, f)
	if res.Failed {
		t.Fatalf("workers=%d transport=%v failed: %s", workers, tr, res.FailReason)
	}
	return res
}

// TestWorkerPoolScaling: shrinking the worker pool must not change output
// and must not speed the job up — fewer nodes means serialized slots and
// lost locality.
func TestWorkerPoolScaling(t *testing.T) {
	for _, mode := range []Mode{Barrier, Pipelined} {
		full := workersTestRun(t, 0, TCPRunExchange, mode)
		var prev *Result
		prevW := len(NewEngine(DefaultConfig()).C.Nodes)
		for _, w := range []int{15, 4, 1} {
			res := workersTestRun(t, w, TCPRunExchange, mode)
			if len(res.Output) != len(full.Output) {
				t.Fatalf("mode=%v workers=%d: %d records, want %d",
					mode, w, len(res.Output), len(full.Output))
			}
			// The pooled fetch plane charges one dial per (reduce task,
			// peer), so a bigger pool pays a fixed per-peer cost that at
			// this toy scale can outweigh its parallelism by a few
			// milliseconds; allow exactly that much. The harness worker
			// sweep asserts strict monotonicity at multi-GB scale.
			slack := DefaultCosts().RunFetchDelay * float64(prevW)
			if prev != nil && res.Completion < prev.Completion-slack-1e-9 {
				t.Fatalf("mode=%v: %d workers finished faster (%.2fs) than more workers (%.2fs)",
					mode, w, res.Completion, prev.Completion)
			}
			prev, prevW = res, w
		}
	}
}

// TestTransportCosts: the run exchanges cost at least as much as the
// in-process shuffle (materialization + fetch latency), with identical
// outputs throughout. The pooled TCP fetch plane charges RunFetchDelay
// once per (reduce task, peer) while the local run exchange pays one file
// open per off-node section, so at high section counts TCP may legitimately
// undercut the local exchange — but never the in-process shuffle.
func TestTransportCosts(t *testing.T) {
	inproc := workersTestRun(t, 4, InProcShuffle, Barrier)
	runx := workersTestRun(t, 4, RunExchange, Barrier)
	tcp := workersTestRun(t, 4, TCPRunExchange, Barrier)
	if len(runx.Output) != len(inproc.Output) || len(tcp.Output) != len(inproc.Output) {
		t.Fatalf("outputs diverge across transports: %d/%d/%d",
			len(inproc.Output), len(runx.Output), len(tcp.Output))
	}
	if runx.Completion < inproc.Completion-1e-9 {
		t.Fatalf("run exchange (%.3fs) cheaper than in-process (%.3fs)",
			runx.Completion, inproc.Completion)
	}
	if tcp.Completion < inproc.Completion-1e-9 {
		t.Fatalf("tcp exchange (%.3fs) cheaper than in-process (%.3fs)",
			tcp.Completion, inproc.Completion)
	}
	// Run-exchange reducers merge externally: sort-phase memory must sit at
	// the read-buffer bound, below the materialized partition.
	if tcp.PeakMemVirt > inproc.PeakMemVirt {
		t.Fatalf("external merge should not use more memory: tcp %d vs inproc %d",
			tcp.PeakMemVirt, inproc.PeakMemVirt)
	}
}
