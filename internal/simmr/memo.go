package simmr

import (
	"fmt"
	"hash/fnv"

	"blmr/internal/core"
)

// MemoCache implements the paper's future-work suggestion of
// DryadInc-style memoization: map outputs are cached across job executions
// keyed by the content of the input chunk and the shape of the job, so
// re-running a job over partially unchanged input skips the corresponding
// map work entirely (only the cached output's local disk read is charged).
//
// In the barrier-less model this is safe because map tasks are pure
// functions of their chunk: the cache stores the partitioned intermediate
// records and their sizes.
type MemoCache struct {
	entries map[string]*memoEntry
	hits    int
	misses  int
}

type memoEntry struct {
	parts     [][]core.Record
	partBytes []int64
	outDisk   int64 // materialized output size on disk (post-compression)
	spillRuns int   // runs sealed while producing this output (not replayed on hits)
}

// NewMemoCache creates an empty cache, shared across Engine runs.
func NewMemoCache() *MemoCache {
	return &MemoCache{entries: make(map[string]*memoEntry)}
}

// Hits returns the cumulative cache hits.
func (m *MemoCache) Hits() int { return m.hits }

// Misses returns the cumulative cache misses.
func (m *MemoCache) Misses() int { return m.misses }

// Len returns the number of cached map outputs.
func (m *MemoCache) Len() int { return len(m.entries) }

// memoKey identifies a map execution by job name, reducer count, the
// effective sealed-run compression ratio (a cached entry's disk size is
// post-compression, so outputs sealed under different codecs or ratios
// must not be confused), and the chunk's content hash — a changed chunk
// or changed partitioning never reuses stale output.
func memoKey(jobName string, reducers int, compressRatio float64, recs []core.Record) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d/%g/", jobName, reducers, compressRatio)
	for _, r := range recs {
		fmt.Fprintf(h, "%d:", len(r.Key))
		h.Write([]byte(r.Key))
		fmt.Fprintf(h, "%d:", len(r.Value))
		h.Write([]byte(r.Value))
	}
	return fmt.Sprintf("%x", h.Sum64())
}

func (m *MemoCache) lookup(key string) (*memoEntry, bool) {
	e, ok := m.entries[key]
	if ok {
		m.hits++
	} else {
		m.misses++
	}
	return e, ok
}

func (m *MemoCache) insert(key string, e *memoEntry) {
	m.entries[key] = e
}
