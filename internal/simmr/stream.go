package simmr

// Multi-job streams on one simulated cluster: the simulated mirror of the
// multi-process engine's job service. RunStream admits a stream of jobs at
// their arrival times onto ONE shared kernel and cluster, places every
// job's tasks through the same exec.Policy interface the real scheduler
// routes with, and reports per-job completions plus the stream makespan —
// so harness.PolicySweep can tune placement policies entirely in
// simulation and a real-engine parity test can pin the predictions.

import (
	"fmt"

	"blmr/internal/cluster"
	"blmr/internal/dfs"
	"blmr/internal/exec"
	"blmr/internal/sim"
)

// StreamJob is one submission in a simulated job stream.
type StreamJob struct {
	// Spec is the job. Workers confines it to the pool prefix exactly as in
	// single-job runs; KillWorkerAt is not supported in streams (churn
	// prediction stays a single-job experiment, DESIGN §11).
	Spec JobSpec
	// Input is the job's ingested DFS file.
	Input *dfs.File
	// Arrival is the submission's virtual arrival time (seconds).
	Arrival float64
}

// StreamResult reports one simulated job stream.
type StreamResult struct {
	// Jobs holds each submission's result, in submission order.
	Jobs []*Result
	// Makespan is the last job's completion time (arrivals measure from 0).
	Makespan float64
}

// RunStream executes a stream of jobs on the shared cluster, placing every
// task through the named policy (see exec.PolicyNames; "" uses the
// historical modulo placement). Each job gets a fresh policy instance —
// mirroring the real service, where a round-robin cursor never leaks
// placement across jobs — over snapshots of a cross-job assignment ledger:
// a job's assignments count against a node until the job completes, so a
// least-loaded policy sees the load earlier arrivals put on each node,
// exactly like the kind-split pool-running counts in the real scheduler's
// worker snapshots. Resident-
// run counts are zero at placement time (assignment precedes the job's own
// map outputs), so the locality policy degrades to least-loaded here, as
// it does for the real engine's initial assignments.
//
// The engine must be fresh (its kernel is drained here, as in Run).
func (e *Engine) RunStream(jobs []StreamJob, policyName string) (*StreamResult, error) {
	if _, err := exec.ParsePolicy(policyName); err != nil {
		return nil, err
	}
	for ji := range jobs {
		if jobs[ji].Spec.KillWorkerAt > 0 {
			return nil, fmt.Errorf("simmr: stream job %d: KillWorkerAt is not supported in streams", ji)
		}
	}
	sr := &StreamResult{Jobs: make([]*Result, len(jobs))}
	// node -> live assigned tasks of each kind, all jobs. Kind-split so a
	// map placement weighs map load only (WorkerSnapshot.KindLoad), exactly
	// as the real SlotPool reports RunningKind.
	mapLed := make([]int, len(e.C.Nodes))
	redLed := make([]int, len(e.C.Nodes))
	for ji := range jobs {
		ji := ji
		sj := jobs[ji]
		pol, _ := exec.ParsePolicy(policyName) // validated above; fresh per job
		e.K.Spawn(fmt.Sprintf("stream-job-%d", ji), func(p *sim.Proc) {
			if sj.Arrival > 0 {
				p.Sleep(sj.Arrival)
			}
			spec := sj.Spec
			res := e.prepare(&spec, sj.Input)
			sr.Jobs[ji] = res
			if res.Failed {
				return
			}
			var place placer
			var ownedMap, ownedRed []int
			if pol != nil {
				pool := e.poolNodes(&spec)
				place = func(isMap bool, idx int) *cluster.Node {
					snaps := make([]exec.WorkerSnapshot, len(pool))
					for i := range pool {
						snaps[i] = exec.WorkerSnapshot{
							ID:                i,
							MapSlots:          e.Cfg.Cluster.MapSlots,
							ReduceSlots:       e.Cfg.Cluster.ReduceSlots,
							PoolMapRunning:    mapLed[i],
							PoolReduceRunning: redLed[i],
						}
					}
					k := pol.Pick(exec.TaskView{Map: isMap, Index: idx}, snaps)
					if k < 0 || k >= len(pool) {
						k = idx % len(pool) // bogus pick: historical fallback
					}
					if isMap {
						mapLed[k]++
						ownedMap = append(ownedMap, k)
					} else {
						redLed[k]++
						ownedRed = append(ownedRed, k)
					}
					return pool[k]
				}
			}
			jobDone := e.spawnJob(&spec, sj.Input, res, place)
			jobDone.Wait(p)
			// The job's assignments leave the ledger together at completion
			// (the sim has no per-task completion hook; for simultaneous
			// arrivals — the sweep's workloads — the two schemes agree).
			for _, n := range ownedMap {
				mapLed[n]--
			}
			for _, n := range ownedRed {
				redLed[n]--
			}
		})
	}
	e.K.Run()
	var maxDone float64
	for _, r := range sr.Jobs {
		if r != nil && r.Completion > maxDone {
			maxDone = r.Completion
		}
	}
	sr.Makespan = maxDone
	e.Col.CloseAll(maxDone)
	return sr, nil
}
