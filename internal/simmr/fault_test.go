package simmr

import (
	"testing"

	"blmr/internal/apps"
	"blmr/internal/workload"
)

// faultRun executes WordCount on a 3-worker TCP pool, optionally killing
// pool worker 0 at killAt virtual seconds.
func faultRun(t *testing.T, mode Mode, workers int, killAt float64, mut func(*JobSpec)) *Result {
	t.Helper()
	eng := NewEngine(DefaultConfig())
	recs := workload.Text(37, 2500, 400, 6)
	f := eng.Ingest("in", workload.SplitEvenly(recs, 12))
	app := apps.WordCount()
	job := JobSpec{
		Name: "wc", Mapper: app.Mapper, NewGroup: app.NewGroup,
		NewStream: app.NewStream, Merger: app.Merger,
		Reducers: 6, Mode: mode, Workers: workers, Transport: TCPRunExchange,
		KillWorkerAt: killAt,
	}
	if mut != nil {
		mut(&job)
	}
	return eng.Run(job, f)
}

// TestWorkerKillRecovers: killing a worker mid-job must re-execute its maps
// on survivors and still produce the baseline output, at a completion time
// no better than the undisturbed run.
func TestWorkerKillRecovers(t *testing.T) {
	for _, mode := range []Mode{Barrier, Pipelined} {
		base := faultRun(t, mode, 3, 0, nil)
		if base.Failed {
			t.Fatalf("mode=%v baseline failed: %s", mode, base.FailReason)
		}
		killed := faultRun(t, mode, 3, base.Completion*0.4, nil)
		if killed.Failed {
			t.Fatalf("mode=%v killed run failed: %s", mode, killed.FailReason)
		}
		requireSameOutput(t, mode.String(), base.Output, killed.Output)
		if killed.MapRetries < 1 {
			t.Fatalf("mode=%v: kill at %.2fs lost nothing (MapRetries=%d, LostMapOutputs=%d)",
				mode, base.Completion*0.4, killed.MapRetries, killed.LostMapOutputs)
		}
		if killed.Completion < base.Completion-1e-9 {
			t.Fatalf("mode=%v: killed run finished faster (%.2fs) than baseline (%.2fs)",
				mode, killed.Completion, base.Completion)
		}
	}
}

// TestWorkerKillStagedBarrier: the staged TCP control plane recovers too —
// fetchers parked behind the stage barrier re-route to re-executed outputs.
func TestWorkerKillStagedBarrier(t *testing.T) {
	staged := func(j *JobSpec) { j.Staged = true }
	base := faultRun(t, Barrier, 3, 0, staged)
	killed := faultRun(t, Barrier, 3, base.Completion*0.5, staged)
	if killed.Failed {
		t.Fatalf("staged killed run failed: %s", killed.FailReason)
	}
	requireSameOutput(t, "staged", base.Output, killed.Output)
	if killed.MapRetries+killed.LostMapOutputs < 1 {
		t.Fatal("staged kill lost nothing; the injection never fired")
	}
}

// TestWorkerKillAfterCompletion: a kill scheduled past the job's end must
// change nothing.
func TestWorkerKillAfterCompletion(t *testing.T) {
	base := faultRun(t, Pipelined, 3, 0, nil)
	late := faultRun(t, Pipelined, 3, base.Completion*10, nil)
	if late.Failed {
		t.Fatalf("late-kill run failed: %s", late.FailReason)
	}
	if late.MapRetries != 0 || late.LostMapOutputs != 0 {
		t.Fatalf("late kill re-executed maps: retries=%d lost=%d",
			late.MapRetries, late.LostMapOutputs)
	}
	if late.Completion != base.Completion {
		t.Fatalf("late kill changed completion: %.4fs vs %.4fs",
			late.Completion, base.Completion)
	}
}

// TestWorkerKillNeedsSurvivors: killing the only worker must fail the job
// up front rather than hang.
func TestWorkerKillNeedsSurvivors(t *testing.T) {
	res := faultRun(t, Barrier, 1, 1.0, nil)
	if !res.Failed {
		t.Fatal("one-worker pool survived its only worker's death")
	}
}

// TestWorkerKillWithSpeculation: backups must never land on the doomed node,
// and the recovered output stays correct.
func TestWorkerKillWithSpeculation(t *testing.T) {
	spec := func(j *JobSpec) { j.Speculative = true }
	base := faultRun(t, Pipelined, 3, 0, nil)
	killed := faultRun(t, Pipelined, 3, base.Completion*0.4, spec)
	if killed.Failed {
		t.Fatalf("speculative killed run failed: %s", killed.FailReason)
	}
	requireSameOutput(t, "speculative", base.Output, killed.Output)
}
