package simmr

import (
	"testing"

	"blmr/internal/apps"
	"blmr/internal/workload"
)

// streamConfig is the policy testbed: a three-node pool with one map slot
// each, so placement decides makespan.
func streamConfig() Config {
	cfg := DefaultConfig()
	cfg.Cluster.Nodes = 3
	cfg.Cluster.MapSlots = 1
	cfg.Cluster.ReduceSlots = 2
	cfg.Cluster.SpeedSpread = 0
	cfg.Replication = 2
	return cfg
}

// skewedStream is the canonical skewed workload: two one-map jobs plus one
// four-map job, all arriving together on the three-node pool. Round-robin
// (each job's cursor from zero) piles every first map on node 0; a loaded-
// aware policy spreads them.
func skewedStream(e *Engine) []StreamJob {
	mk := func(name string, chunks int, seed uint64) StreamJob {
		app := apps.WordCount()
		spec := jobFor(app, Barrier, 2)
		spec.Name = name
		spec.Workers = 3
		// Make map CPU the dominant cost, so the one-slot nodes serialize
		// co-located maps and placement decides the makespan.
		spec.Costs = DefaultCosts()
		spec.Costs.MapCPUPerRecord = 1e-3
		input := e.Ingest(name, workload.SplitEvenly(workload.Text(seed, 600*chunks, 120, 8), chunks))
		return StreamJob{Spec: spec, Input: input}
	}
	return []StreamJob{
		mk("small-a", 1, 51),
		mk("small-b", 1, 52),
		mk("big", 4, 53),
	}
}

func runSkewed(t *testing.T, policy string) *StreamResult {
	t.Helper()
	e := NewEngine(streamConfig())
	sr, err := e.RunStream(skewedStream(e), policy)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range sr.Jobs {
		if r == nil || r.Failed {
			t.Fatalf("%s: stream job %d failed: %+v", policy, i, r)
		}
	}
	return sr
}

// TestStreamJobsComplete: every job in a concurrent stream completes with
// output under every policy, and outputs are policy-independent (placement
// moves work, never changes results).
func TestStreamJobsComplete(t *testing.T) {
	var ref *StreamResult
	for _, policy := range []string{"", "round-robin", "least-loaded", "locality"} {
		sr := runSkewed(t, policy)
		if ref == nil {
			ref = sr
			continue
		}
		for i := range sr.Jobs {
			requireSameOutput(t, policy, sr.Jobs[i].Output, ref.Jobs[i].Output)
		}
	}
}

// TestStreamLeastLoadedBeatsRoundRobin: on the skewed workload the
// load-blind round-robin stripe serializes four maps on node 0 while
// least-loaded spreads them — the makespan gap policy tuning exists to
// find. This prediction is pinned against the real engine in
// internal/mpexec's policy parity test.
func TestStreamLeastLoadedBeatsRoundRobin(t *testing.T) {
	rr := runSkewed(t, "round-robin")
	ll := runSkewed(t, "least-loaded")
	if ll.Makespan >= rr.Makespan {
		t.Fatalf("least-loaded makespan %.3f not under round-robin %.3f on skewed stream",
			ll.Makespan, rr.Makespan)
	}
	t.Logf("makespan: round-robin %.3f, least-loaded %.3f (ratio %.2f)",
		rr.Makespan, ll.Makespan, ll.Makespan/rr.Makespan)
}

// TestStreamUnknownPolicy: a bad policy name fails fast, before any job.
func TestStreamUnknownPolicy(t *testing.T) {
	e := NewEngine(streamConfig())
	if _, err := e.RunStream(skewedStream(e), "bogus"); err == nil {
		t.Fatal("unknown policy must error")
	}
}
