// Package store provides partial-result storage for barrier-less reducers
// (Section 5 of the paper). Three strategies are offered:
//
//   - InMemory: a red-black tree holding every partial result (fast, but
//     O(keys..records) heap — can OOM, Figure 5(a)).
//   - SpillMerge: the paper's customized "disk spill and merge" scheme —
//     when memory crosses a threshold the tree is serialized key-sorted to a
//     spill file; at finalize all spill files plus the live tree are k-way
//     merged, combining same-key partials with a user Merger (Figure 5(b)).
//   - KV: an off-the-shelf-style disk-spilling key/value store with an LRU
//     cache (the BerkeleyDB stand-in).
//
// All three expose the same Store interface so reducers are agnostic to the
// memory-management policy.
package store

import (
	"blmr/internal/core"
	"blmr/internal/rbtree"
)

// ApproxRecordBytes is the framework's single per-buffered-record memory
// accounting rule: payload bytes plus the red-black tree's per-node
// overhead. The engines' mapper-side spill triggers use it for their flat
// record buffers too, so "SpillBytes of buffered data" means the same
// number of records whether the buffer is a tree or a slice — spill
// triggering and memory reports stay consistent (the numbers examples
// print are directly comparable to the thresholds they were run with).
func ApproxRecordBytes(key, val string) int64 {
	return int64(len(key)) + int64(len(val)) + rbtree.NodeOverheadBytes
}

// Merger combines two partial results for the same key into one. It must be
// commutative and associative — the same requirement the paper places on
// the merge function ("often functionally the same as the combiner").
type Merger func(a, b string) string

// Store holds per-key partial results during barrier-less reduction.
// Implementations are single-owner (one reduce task), not concurrency-safe.
type Store interface {
	// Get returns the currently reachable partial result for key. For
	// SpillMerge this is only the in-memory portion; spilled partials for
	// the same key are reunited at Emit time via the Merger.
	Get(key string) (string, bool)
	// Put records the partial result for key.
	Put(key, val string)
	// Merge folds val into the partial result for key with m (the
	// read-modify-write cycle of a running aggregate): absent keys store
	// val directly. Tree-backed stores do this in one descent where a
	// Get+Put pair would take two; the KV store keeps its off-the-shelf
	// get-then-put cost, which is the point of that strategy.
	Merge(key, val string, m Merger)
	// Len returns the number of keys currently reachable without a merge
	// (in-memory keys for SpillMerge, all keys otherwise).
	Len() int
	// MemBytes returns the accounted in-memory footprint of the partial
	// results themselves, charged against the reducer's heap budget.
	MemBytes() int64
	// ApproxBytes returns the store's total approximate heap footprint:
	// MemBytes plus transient machinery (spill encode scratch). Engines
	// compare this — not MemBytes — against memory budgets and report it in
	// examples, so triggering and reporting agree; the per-entry accounting
	// underneath is ApproxRecordBytes for every implementation.
	ApproxBytes() int64
	// SpilledBytes returns bytes written to spill storage so far.
	SpilledBytes() int64
	// Emit merges all partial results and writes one record per key, in
	// key order, to out. The store must not be used afterwards.
	Emit(out core.Output)
}

// Kind names a memory-management strategy, used in configs and reports.
type Kind int

// Available strategies.
const (
	InMemory Kind = iota
	SpillMerge
	KV
)

var kindNames = [...]string{"in-memory", "spill-merge", "kvstore"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return "unknown"
	}
	return kindNames[k]
}

// strSize accounts the bytes of a value string.
func strSize(v string) int64 { return int64(len(v)) }

// MemStore keeps every partial result in a red-black tree (the unmanaged
// baseline that fails on Figure 5(a)).
type MemStore struct {
	t *rbtree.Tree[string]
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{t: rbtree.New[string](strSize)}
}

// Get implements Store.
func (m *MemStore) Get(key string) (string, bool) { return m.t.Get(key) }

// Put implements Store.
func (m *MemStore) Put(key, val string) { m.t.Put(key, val) }

// Merge implements Store in a single tree descent.
func (m *MemStore) Merge(key, val string, mg Merger) {
	m.t.Update(key, func(old string, ok bool) string {
		if !ok {
			return val
		}
		return mg(old, val)
	})
}

// Len implements Store.
func (m *MemStore) Len() int { return m.t.Len() }

// MemBytes implements Store.
func (m *MemStore) MemBytes() int64 { return m.t.Bytes() }

// ApproxBytes implements Store: the tree is the whole footprint.
func (m *MemStore) ApproxBytes() int64 { return m.t.Bytes() }

// SpilledBytes implements Store.
func (m *MemStore) SpilledBytes() int64 { return 0 }

// Emit implements Store.
func (m *MemStore) Emit(out core.Output) {
	m.t.Ascend(func(k, v string) bool {
		out.Write(k, v)
		return true
	})
	m.t.Clear()
}
