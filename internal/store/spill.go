package store

import (
	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/rbtree"
	"blmr/internal/sortx"
)

// SpillHooks observes spill-file I/O so the simulator can charge disk time.
type SpillHooks interface {
	// SpillWrite is called when a spill run of the given size is written.
	SpillWrite(bytes int64)
	// SpillRead is called as spill data is read back during the merge.
	SpillRead(bytes int64)
}

// NopSpillHooks ignores all notifications.
type NopSpillHooks struct{}

// SpillWrite implements SpillHooks.
func (NopSpillHooks) SpillWrite(int64) {}

// SpillRead implements SpillHooks.
func (NopSpillHooks) SpillRead(int64) {}

// SpillStore implements the paper's disk spill and merge scheme. Partial
// results accumulate in a red-black tree; when the tree's footprint crosses
// the threshold, its contents are serialized in key order to a new spill
// run and the tree is cleared. Emit k-way merges the runs and the live tree,
// combining same-key partials with the Merger.
type SpillStore struct {
	t         *rbtree.Tree[string]
	merger    Merger
	threshold int64
	hooks     SpillHooks
	runs      [][]byte // each run is a key-sorted encoded record stream
	spilled   int64
	// Spills counts how many spill runs were written (for tests/metrics).
	Spills int
}

// NewSpillStore creates a spill-and-merge store. threshold is the in-memory
// partial-results budget in bytes (the paper used 240 MB); merger combines
// same-key partials at merge time; hooks may be nil.
func NewSpillStore(threshold int64, merger Merger, hooks SpillHooks) *SpillStore {
	if merger == nil {
		panic("store: SpillStore requires a Merger")
	}
	if hooks == nil {
		hooks = NopSpillHooks{}
	}
	if threshold <= 0 {
		threshold = 1 << 20
	}
	return &SpillStore{
		t:         rbtree.New[string](strSize),
		merger:    merger,
		threshold: threshold,
		hooks:     hooks,
	}
}

// Get implements Store. Only the in-memory partial is visible; spilled
// partials for the key are merged at Emit.
func (s *SpillStore) Get(key string) (string, bool) { return s.t.Get(key) }

// Put implements Store, spilling if the memory threshold is exceeded.
func (s *SpillStore) Put(key, val string) {
	s.t.Put(key, val)
	if s.t.Bytes() >= s.threshold {
		s.spill()
	}
}

// Merge implements Store in a single tree descent. Spilled partials for the
// key stay untouched; they are reunited with the in-memory partial by the
// Merger at Emit, so folding into only the live tree is correct.
func (s *SpillStore) Merge(key, val string, mg Merger) {
	s.t.Update(key, func(old string, ok bool) string {
		if !ok {
			return val
		}
		return mg(old, val)
	})
	if s.t.Bytes() >= s.threshold {
		s.spill()
	}
}

// Len implements Store (in-memory keys only).
func (s *SpillStore) Len() int { return s.t.Len() }

// MemBytes implements Store.
func (s *SpillStore) MemBytes() int64 { return s.t.Bytes() }

// SpilledBytes implements Store.
func (s *SpillStore) SpilledBytes() int64 { return s.spilled }

// spill serializes the tree in key order into a new run and clears it.
func (s *SpillStore) spill() {
	if s.t.Len() == 0 {
		return
	}
	buf := make([]byte, 0, s.t.Bytes())
	s.t.Ascend(func(k, v string) bool {
		buf = codec.AppendRecord(buf, core.Record{Key: k, Value: v})
		return true
	})
	s.runs = append(s.runs, buf)
	s.spilled += int64(len(buf))
	s.Spills++
	s.hooks.SpillWrite(int64(len(buf)))
	s.t.Clear()
}

// Emit implements Store: merge every spill run plus the live tree, combine
// same-key partials, and write final results in key order.
func (s *SpillStore) Emit(out core.Output) {
	if len(s.runs) == 0 {
		// Fast path: nothing ever spilled.
		s.t.Ascend(func(k, v string) bool {
			out.Write(k, v)
			return true
		})
		s.t.Clear()
		return
	}
	runs := make([]sortx.Run, 0, len(s.runs)+1)
	for _, r := range s.runs {
		s.hooks.SpillRead(int64(len(r)))
		runs = append(runs, codec.NewReader(r))
	}
	// The live tree is itself a key-sorted run.
	live := make([]core.Record, 0, s.t.Len())
	s.t.Ascend(func(k, v string) bool {
		live = append(live, core.Record{Key: k, Value: v})
		return true
	})
	runs = append(runs, sortx.NewSliceRun(live))
	m := sortx.NewMerger(runs)
	for {
		key, values, ok := m.NextGroup()
		if !ok {
			break
		}
		acc := values[0]
		for _, v := range values[1:] {
			acc = s.merger(acc, v)
		}
		out.Write(key, acc)
	}
	s.runs = nil
	s.t.Clear()
}
