package store

import (
	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/rbtree"
	"blmr/internal/sortx"
)

// SpillHooks observes spill-file I/O so the simulator can charge disk time.
type SpillHooks interface {
	// SpillWrite is called when a spill run of the given size is written.
	SpillWrite(bytes int64)
	// SpillRead is called as spill data is read back during the merge.
	SpillRead(bytes int64)
}

// NopSpillHooks ignores all notifications.
type NopSpillHooks struct{}

// SpillWrite implements SpillHooks.
func (NopSpillHooks) SpillWrite(int64) {}

// SpillRead implements SpillHooks.
func (NopSpillHooks) SpillRead(int64) {}

// RunStore persists sealed spill runs — immutable key-sorted encoded record
// streams — and streams them back for the final merge. The default is
// in-memory (the simulator charges virtual disk time through SpillHooks
// instead of doing real I/O); the wall-clock engine plugs in a disk-backed
// implementation (dfs.RunSet) so spilled data actually leaves the heap.
// Append and Runs are phase-separated: all appends happen before the single
// Runs call, matching the spill lifecycle. Runs arrive already encoded with
// the store's codec; implementations decode with the same codec on the way
// back out.
type RunStore interface {
	// Append seals buf as one immutable run. rawBytes is the run's standard
	// (pre-compression) encoded size, for compression-ratio accounting. The
	// buffer is owned by the caller and may be reused after Append returns.
	Append(buf []byte, rawBytes int64) error
	// Runs returns one streaming reader per sealed run, in append order.
	// Readers are sortx.Sources — they surface decode failures (truncated or
	// corrupt runs) through Err, so the merge driver must check Merger.Err
	// after draining; nothing in this path panics on bad bytes.
	Runs() ([]sortx.Run, error)
	// Release frees all sealed runs and any readers Runs returned.
	Release() error
}

// memRuns is the in-memory RunStore: runs live on the heap as flat encoded
// (possibly compressed) buffers. Used by the simulator, where spill I/O is
// virtual time, and as the default when no disk backing is configured.
type memRuns struct {
	comp codec.Compression
	runs [][]byte
}

func (m *memRuns) Append(buf []byte, rawBytes int64) error {
	m.runs = append(m.runs, append([]byte(nil), buf...))
	return nil
}

func (m *memRuns) Runs() ([]sortx.Run, error) {
	out := make([]sortx.Run, len(m.runs))
	for i, r := range m.runs {
		// The error-returning decoder, never the panicking codec.Reader:
		// these buffers hold spill-lifecycle data, and a decode failure must
		// fail the job, not crash the worker.
		out[i] = codec.NewRunDecoderBytes(r, m.comp)
	}
	return out, nil
}

func (m *memRuns) Release() error {
	m.runs = nil
	return nil
}

// SpillStore implements the paper's disk spill and merge scheme. Partial
// results accumulate in a red-black tree; when the tree's footprint crosses
// the threshold, its contents are serialized in key order into a sealed run
// in the RunStore and the tree is cleared. Emit k-way merges the runs and
// the live tree, combining same-key partials with the Merger.
type SpillStore struct {
	t         *rbtree.Tree[string]
	merger    Merger
	threshold int64
	hooks     SpillHooks
	runs      RunStore
	enc       *codec.RunEncoder // reusable run encoder (~threshold bytes once warm)
	runLens   []int64           // sealed size of each run, for read accounting
	spilled   int64
	rawBytes  int64
	err       error
	// Spills counts how many spill runs were written (for tests/metrics).
	Spills int
}

// NewSpillStore creates a spill-and-merge store with in-memory run storage
// (the simulator's configuration: spill I/O cost is charged through hooks).
// threshold is the in-memory partial-results budget in bytes (the paper
// used 240 MB); merger combines same-key partials at merge time; hooks may
// be nil.
func NewSpillStore(threshold int64, merger Merger, hooks SpillHooks) *SpillStore {
	return NewSpillStoreOn(threshold, merger, hooks, nil)
}

// NewSpillStoreOn is NewSpillStore with explicit uncompressed run storage.
// A nil runs falls back to in-memory storage; the wall-clock engine passes
// a disk-backed RunStore so spilled partials leave the heap for real.
func NewSpillStoreOn(threshold int64, merger Merger, hooks SpillHooks, runs RunStore) *SpillStore {
	return NewSpillStoreComp(threshold, merger, hooks, runs, codec.None)
}

// NewSpillStoreComp is NewSpillStoreOn with a sealed-run codec: spill runs
// are compressed as they are encoded and decompressed block by block during
// the final merge, so both spill I/O and (for in-memory run storage) the
// spilled heap footprint shrink by the ratio. comp must match the codec the
// RunStore's readers decode with (a dfs.RunSet inherits it from its
// RunDir).
func NewSpillStoreComp(threshold int64, merger Merger, hooks SpillHooks, runs RunStore, comp codec.Compression) *SpillStore {
	if merger == nil {
		panic("store: SpillStore requires a Merger")
	}
	if hooks == nil {
		hooks = NopSpillHooks{}
	}
	if threshold <= 0 {
		threshold = 1 << 20
	}
	if runs == nil {
		runs = &memRuns{comp: comp}
	}
	return &SpillStore{
		t:         rbtree.New[string](strSize),
		merger:    merger,
		threshold: threshold,
		hooks:     hooks,
		runs:      runs,
		enc:       codec.NewRunEncoder(nil, comp),
	}
}

// Get implements Store. Only the in-memory partial is visible; spilled
// partials for the key are merged at Emit.
func (s *SpillStore) Get(key string) (string, bool) { return s.t.Get(key) }

// Put implements Store, spilling if the memory threshold is exceeded.
func (s *SpillStore) Put(key, val string) {
	s.t.Put(key, val)
	if s.t.Bytes() >= s.threshold {
		s.spill()
	}
}

// Merge implements Store in a single tree descent. Spilled partials for the
// key stay untouched; they are reunited with the in-memory partial by the
// Merger at Emit, so folding into only the live tree is correct.
func (s *SpillStore) Merge(key, val string, mg Merger) {
	s.t.Update(key, func(old string, ok bool) string {
		if !ok {
			return val
		}
		return mg(old, val)
	})
	if s.t.Bytes() >= s.threshold {
		s.spill()
	}
}

// Len implements Store (in-memory keys only).
func (s *SpillStore) Len() int { return s.t.Len() }

// MemBytes implements Store.
func (s *SpillStore) MemBytes() int64 { return s.t.Bytes() }

// ApproxBytes implements Store: the live tree plus the retained encode
// scratch (which grows to roughly one threshold's worth of encoded bytes).
func (s *SpillStore) ApproxBytes() int64 { return s.t.Bytes() + s.enc.ScratchBytes() }

// SpilledBytes implements Store (sealed, post-compression bytes).
func (s *SpillStore) SpilledBytes() int64 { return s.spilled }

// RawSpilledBytes returns the standard (pre-compression) encoded size of
// everything spilled — equal to SpilledBytes under the None codec.
func (s *SpillStore) RawSpilledBytes() int64 { return s.rawBytes }

// Err returns the first spill-storage failure (disk-backed stores only).
// A store with a non-nil Err keeps partials in memory instead of spilling,
// so output stays correct but memory is no longer bounded; engines should
// surface the error after Emit.
func (s *SpillStore) Err() error { return s.err }

// spill serializes the tree in key order into a new sealed run (through
// the store's codec) and clears it. On storage failure the tree is kept
// (correctness over memory bounds) and the error is recorded.
func (s *SpillStore) spill() {
	if s.t.Len() == 0 || s.err != nil {
		return
	}
	s.enc.Reset(nil)
	s.t.Ascend(func(k, v string) bool {
		return s.enc.Append(core.Record{Key: k, Value: v}) == nil
	})
	if err := s.enc.Flush(); err != nil {
		s.err = err
		return
	}
	buf := s.enc.Bytes()
	if err := s.runs.Append(buf, s.enc.RawBytes()); err != nil {
		s.err = err
		return
	}
	s.runLens = append(s.runLens, int64(len(buf)))
	s.spilled += int64(len(buf))
	s.rawBytes += s.enc.RawBytes()
	s.Spills++
	s.hooks.SpillWrite(int64(len(buf)))
	// Everything the tree held is now encoded in the sealed run, so its
	// key slabs can be recycled for the next fill cycle (ClearReuse's
	// no-escaped-strings contract holds).
	s.t.ClearReuse()
}

// Emit implements Store: merge every sealed run plus the live tree, combine
// same-key partials, and write final results in key order. Check Err
// afterwards when the run storage can fail.
func (s *SpillStore) Emit(out core.Output) {
	if s.Spills == 0 {
		// Fast path: nothing ever spilled.
		s.t.Ascend(func(k, v string) bool {
			out.Write(k, v)
			return true
		})
		s.t.Clear()
		return
	}
	runs, err := s.runs.Runs()
	if err != nil {
		s.err = err
		_ = s.runs.Release() // best-effort: don't leak sealed runs
		return
	}
	for _, n := range s.runLens {
		s.hooks.SpillRead(n)
	}
	// The live tree is itself a key-sorted run.
	live := make([]core.Record, 0, s.t.Len())
	s.t.Ascend(func(k, v string) bool {
		live = append(live, core.Record{Key: k, Value: v})
		return true
	})
	runs = append(runs, sortx.NewSliceRun(live))
	m := sortx.NewMerger(runs)
	for {
		key, values, ok := m.NextGroup()
		if !ok {
			break
		}
		acc := values[0]
		for _, v := range values[1:] {
			acc = s.merger(acc, v)
		}
		out.Write(key, acc)
	}
	if err := m.Err(); err != nil && s.err == nil {
		s.err = err
	}
	if err := s.runs.Release(); err != nil && s.err == nil {
		s.err = err
	}
	s.runLens = nil
	s.t.Clear()
}
