package store

import (
	"sort"

	"blmr/internal/core"
	"blmr/internal/kvstore"
)

// KVStore adapts the log-structured key/value store (the BerkeleyDB
// stand-in) to the partial-result Store interface. Every Get/Put goes
// through the store's LRU cache and may touch its disk log — exactly the
// read-modify-update cycle the paper describes in Section 5.2.
type KVStore struct {
	kv *kvstore.Store
}

// NewKVStore wraps kv. The caller configures cache size, disk and hooks on
// the underlying store.
func NewKVStore(kv *kvstore.Store) *KVStore { return &KVStore{kv: kv} }

// Underlying exposes the wrapped store for stats inspection.
func (s *KVStore) Underlying() *kvstore.Store { return s.kv }

// Get implements Store.
func (s *KVStore) Get(key string) (string, bool) { return s.kv.Get(key) }

// Put implements Store.
func (s *KVStore) Put(key, val string) { s.kv.Put(key, val) }

// Merge implements Store as an explicit get-then-put: the off-the-shelf
// store has no merge primitive, and paying the full read-modify-write
// cycle per record is exactly the behaviour the paper measured.
func (s *KVStore) Merge(key, val string, m Merger) {
	if prev, ok := s.kv.Get(key); ok {
		val = m(prev, val)
	}
	s.kv.Put(key, val)
}

// Len implements Store.
func (s *KVStore) Len() int { return s.kv.Len() }

// MemBytes implements Store: only the bounded cache occupies heap.
func (s *KVStore) MemBytes() int64 { return s.kv.CacheBytes() }

// ApproxBytes implements Store.
func (s *KVStore) ApproxBytes() int64 { return s.kv.CacheBytes() }

// SpilledBytes implements Store.
func (s *KVStore) SpilledBytes() int64 { return s.kv.Stats().LogBytes }

// Emit implements Store. The KV store has no ordered iteration, so keys are
// collected and sorted first (this final sort is small relative to the
// per-record read-modify-write traffic that dominates the KV strategy).
func (s *KVStore) Emit(out core.Output) {
	keys := s.kv.Keys()
	sort.Strings(keys)
	for _, k := range keys {
		v, ok := s.kv.Get(k)
		if !ok {
			continue
		}
		out.Write(k, v)
	}
}
