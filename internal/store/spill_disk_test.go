package store

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"blmr/internal/dfs"
	"blmr/internal/sortx"
)

// diskSpillStore builds a SpillStore whose runs live in real files under a
// test temp dir, via the dfs.RunSet implementation of RunStore.
func diskSpillStore(t *testing.T, threshold int64) (*SpillStore, *dfs.RunDir) {
	t.Helper()
	rd, err := dfs.NewRunDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rd.Close() })
	return NewSpillStoreOn(threshold, sumMerger, nil, rd.NewRunSet("test")), rd
}

// TestDiskSpillStoreMatchesMemory drives identical aggregation streams
// through a memory-backed and a disk-backed spill store; outputs must be
// identical, and the disk-backed one must have really written files.
func TestDiskSpillStoreMatchesMemory(t *testing.T) {
	mem := NewSpillStore(2048, sumMerger, nil)
	disk, rd := diskSpillStore(t, 2048)

	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("word%03d", (i*13)%151)
		mem.Merge(key, "1", sumMerger)
		disk.Merge(key, "1", sumMerger)
	}
	if disk.Spills == 0 {
		t.Fatal("disk store never spilled; threshold too high for the stream")
	}
	if rd.SpilledBytes() == 0 {
		t.Fatal("no bytes reached the run files")
	}
	memOut, diskOut := &sink{}, &sink{}
	mem.Emit(memOut)
	disk.Emit(diskOut)
	if err := disk.Err(); err != nil {
		t.Fatal(err)
	}
	if len(memOut.recs) != len(diskOut.recs) {
		t.Fatalf("disk emitted %d records, memory %d", len(diskOut.recs), len(memOut.recs))
	}
	for i := range memOut.recs {
		if memOut.recs[i] != diskOut.recs[i] {
			t.Fatalf("record %d: disk %v vs memory %v", i, diskOut.recs[i], memOut.recs[i])
		}
	}
	// Emit released the runs: no files left behind.
	left, _ := filepath.Glob(filepath.Join(rd.Dir(), "*.run"))
	if len(left) != 0 {
		t.Fatalf("%d run files left after Emit", len(left))
	}
}

// failingRuns fails Append after n successes.
type failingRuns struct {
	n   int
	err error
}

func (f *failingRuns) Append([]byte, int64) error {
	if f.n <= 0 {
		return f.err
	}
	f.n--
	return nil
}
func (f *failingRuns) Runs() ([]sortx.Run, error) { return nil, nil }
func (f *failingRuns) Release() error             { return nil }

// TestSpillStoreSurvivesStorageFailure: when run storage starts failing,
// the store must keep partials in memory (no data loss) and report the
// error through Err.
func TestSpillStoreSurvivesStorageFailure(t *testing.T) {
	boom := errors.New("disk full")
	s := NewSpillStoreOn(512, sumMerger, nil, &failingRuns{n: 0, err: boom})
	for i := 0; i < 500; i++ {
		s.Merge(fmt.Sprintf("k%04d", i), "1", sumMerger)
	}
	if !errors.Is(s.Err(), boom) {
		t.Fatalf("Err() = %v, want the storage failure", s.Err())
	}
	// All 500 keys still reachable in memory despite the failed spill.
	if s.Len() != 500 {
		t.Fatalf("live keys = %d, want 500 (partials must not be dropped)", s.Len())
	}
}

func TestApproxBytesConsistent(t *testing.T) {
	// The flat-record rule and the tree's own accounting must agree, so
	// engines can budget slice buffers and tree stores against the same
	// threshold.
	m := NewMemStore()
	var want int64
	for i := 0; i < 100; i++ {
		k, v := fmt.Sprintf("key%04d", i), "12"
		m.Put(k, v)
		want += ApproxRecordBytes(k, v)
	}
	if m.ApproxBytes() != want {
		t.Fatalf("MemStore.ApproxBytes = %d, ApproxRecordBytes sum = %d", m.ApproxBytes(), want)
	}
	// SpillStore: ApproxBytes covers tree + retained scratch.
	s := NewSpillStore(1<<20, sumMerger, nil)
	s.Put("a", "1")
	if s.ApproxBytes() < s.MemBytes() {
		t.Fatal("ApproxBytes must include MemBytes")
	}
}
