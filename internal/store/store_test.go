package store

import (
	"fmt"
	"sort"
	"strconv"
	"testing"
	"testing/quick"

	"blmr/internal/core"
	"blmr/internal/kvstore"
)

func sumMerger(a, b string) string {
	x, _ := strconv.Atoi(a)
	y, _ := strconv.Atoi(b)
	return strconv.Itoa(x + y)
}

type sink struct {
	recs []core.Record
}

func (s *sink) Write(k, v string) { s.recs = append(s.recs, core.Record{Key: k, Value: v}) }

// aggregate drives a store like an aggregation reducer: read previous
// partial, add, store back.
func aggregate(s Store, key string, delta int) {
	prev := 0
	if v, ok := s.Get(key); ok {
		prev, _ = strconv.Atoi(v)
	}
	s.Put(key, strconv.Itoa(prev+delta))
}

func allStores(t *testing.T, spillThreshold int64) map[string]Store {
	t.Helper()
	return map[string]Store{
		"in-memory":   NewMemStore(),
		"spill-merge": NewSpillStore(spillThreshold, sumMerger, nil),
		"kvstore":     NewKVStore(kvstore.New(kvstore.Config{CacheBytes: 512})),
	}
}

func TestAllStoresAgreeOnAggregation(t *testing.T) {
	// Drive each store with the same word-count-like stream; all must
	// produce identical sorted output.
	stream := make([]string, 0, 5000)
	for i := 0; i < 5000; i++ {
		stream = append(stream, fmt.Sprintf("word%03d", (i*7)%97))
	}
	var ref map[string]int
	for name, s := range allStores(t, 2048) {
		for _, w := range stream {
			aggregate(s, w, 1)
		}
		out := &sink{}
		s.Emit(out)
		got := map[string]int{}
		var keys []string
		for _, r := range out.recs {
			got[r.Key], _ = strconv.Atoi(r.Value)
			keys = append(keys, r.Key)
		}
		if !sort.StringsAreSorted(keys) {
			t.Fatalf("%s: Emit not key-sorted", name)
		}
		if ref == nil {
			ref = got
			// Sanity: 97 distinct words, 5000 total.
			if len(ref) != 97 {
				t.Fatalf("ref has %d keys", len(ref))
			}
			total := 0
			for _, c := range ref {
				total += c
			}
			if total != 5000 {
				t.Fatalf("ref total = %d", total)
			}
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d keys, want %d", name, len(got), len(ref))
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("%s: %s = %d, want %d", name, k, got[k], v)
			}
		}
	}
}

func TestMemStoreBytesGrowWithKeys(t *testing.T) {
	s := NewMemStore()
	var last int64
	for i := 0; i < 100; i++ {
		s.Put(fmt.Sprintf("key%04d", i), "value")
		if s.MemBytes() <= last {
			t.Fatalf("MemBytes did not grow at key %d", i)
		}
		last = s.MemBytes()
	}
	if s.SpilledBytes() != 0 {
		t.Fatal("MemStore never spills")
	}
}

func TestSpillStoreRespectsThreshold(t *testing.T) {
	s := NewSpillStore(4096, sumMerger, nil)
	for i := 0; i < 10000; i++ {
		aggregate(s, fmt.Sprintf("key%05d", i), 1)
	}
	if s.Spills == 0 {
		t.Fatal("expected spills")
	}
	if s.MemBytes() >= 4096+256 {
		t.Fatalf("memory above threshold: %d", s.MemBytes())
	}
	if s.SpilledBytes() == 0 {
		t.Fatal("expected spilled bytes")
	}
	out := &sink{}
	s.Emit(out)
	if len(out.recs) != 10000 {
		t.Fatalf("emitted %d records, want 10000", len(out.recs))
	}
}

func TestSpillStoreMergesAcrossRuns(t *testing.T) {
	// The same key spilled into multiple runs must be merged with the
	// Merger at Emit (partial sums add up).
	s := NewSpillStore(600, sumMerger, nil)
	const rounds = 50
	for r := 0; r < rounds; r++ {
		for i := 0; i < 20; i++ {
			aggregate(s, fmt.Sprintf("hot%02d", i), 1)
		}
	}
	if s.Spills < 2 {
		t.Fatalf("want multiple spills, got %d", s.Spills)
	}
	out := &sink{}
	s.Emit(out)
	if len(out.recs) != 20 {
		t.Fatalf("emitted %d keys, want 20", len(out.recs))
	}
	for _, r := range out.recs {
		if r.Value != strconv.Itoa(rounds) {
			t.Fatalf("key %s = %s, want %d", r.Key, r.Value, rounds)
		}
	}
}

func TestSpillStoreNoSpillFastPath(t *testing.T) {
	s := NewSpillStore(1<<20, sumMerger, nil)
	aggregate(s, "b", 2)
	aggregate(s, "a", 1)
	out := &sink{}
	s.Emit(out)
	if len(out.recs) != 2 || out.recs[0].Key != "a" || out.recs[1].Key != "b" {
		t.Fatalf("recs = %v", out.recs)
	}
	if s.Spills != 0 {
		t.Fatal("unexpected spill")
	}
}

func TestSpillHooksCharged(t *testing.T) {
	h := &spillCounter{}
	s := NewSpillStore(512, sumMerger, h)
	for i := 0; i < 2000; i++ {
		aggregate(s, fmt.Sprintf("k%04d", i), 1)
	}
	s.Emit(&sink{})
	if h.wrote == 0 || h.read == 0 {
		t.Fatalf("hooks not charged: wrote=%d read=%d", h.wrote, h.read)
	}
	if h.read != h.wrote {
		t.Fatalf("merge should read back exactly what was spilled: wrote=%d read=%d", h.wrote, h.read)
	}
}

type spillCounter struct{ wrote, read int64 }

func (c *spillCounter) SpillWrite(n int64) { c.wrote += n }
func (c *spillCounter) SpillRead(n int64)  { c.read += n }

func TestKVStoreBoundedMemory(t *testing.T) {
	kv := kvstore.New(kvstore.Config{CacheBytes: 1024})
	s := NewKVStore(kv)
	for i := 0; i < 5000; i++ {
		aggregate(s, fmt.Sprintf("key%05d", i%500), 1)
	}
	if s.MemBytes() > 1024+128 {
		t.Fatalf("cache exceeded budget: %d", s.MemBytes())
	}
	out := &sink{}
	s.Emit(out)
	if len(out.recs) != 500 {
		t.Fatalf("emitted %d, want 500", len(out.recs))
	}
	for _, r := range out.recs {
		if r.Value != "10" {
			t.Fatalf("%s = %s, want 10", r.Key, r.Value)
		}
	}
}

func TestStoresEquivalenceProperty(t *testing.T) {
	// Property: for any stream of (key, delta) increments, all three
	// strategies emit identical aggregates.
	f := func(ops []uint16) bool {
		mem := NewMemStore()
		spill := NewSpillStore(512, sumMerger, nil)
		kv := NewKVStore(kvstore.New(kvstore.Config{CacheBytes: 256}))
		for _, op := range ops {
			key := fmt.Sprintf("k%02d", op%23)
			delta := int(op%5) + 1
			aggregate(mem, key, delta)
			aggregate(spill, key, delta)
			aggregate(kv, key, delta)
		}
		outs := make([][]core.Record, 3)
		for i, s := range []Store{mem, spill, kv} {
			o := &sink{}
			s.Emit(o)
			outs[i] = o.recs
		}
		for i := 1; i < 3; i++ {
			if len(outs[i]) != len(outs[0]) {
				return false
			}
			for j := range outs[0] {
				if outs[i][j] != outs[0][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if InMemory.String() != "in-memory" || SpillMerge.String() != "spill-merge" || KV.String() != "kvstore" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() != "unknown" {
		t.Fatal("out-of-range kind")
	}
}

func BenchmarkMemStoreAggregate(b *testing.B) {
	s := NewMemStore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aggregateB(s, fmt.Sprintf("key%04d", i%1000))
	}
}

func BenchmarkSpillStoreAggregate(b *testing.B) {
	s := NewSpillStore(1<<16, sumMerger, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aggregateB(s, fmt.Sprintf("key%04d", i%1000))
	}
}

func BenchmarkKVStoreAggregate(b *testing.B) {
	s := NewKVStore(kvstore.New(kvstore.Config{CacheBytes: 1 << 14}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aggregateB(s, fmt.Sprintf("key%04d", i%1000))
	}
}

func aggregateB(s Store, key string) {
	prev := 0
	if v, ok := s.Get(key); ok {
		prev, _ = strconv.Atoi(v)
	}
	s.Put(key, strconv.Itoa(prev+1))
}

func TestStoreAccessors(t *testing.T) {
	mem := NewMemStore()
	aggregate(mem, "a", 1)
	aggregate(mem, "b", 1)
	if mem.Len() != 2 {
		t.Fatalf("mem Len = %d", mem.Len())
	}
	sp := NewSpillStore(1<<20, sumMerger, nil)
	aggregate(sp, "a", 1)
	if sp.Len() != 1 {
		t.Fatalf("spill Len = %d", sp.Len())
	}
	kvu := kvstore.New(kvstore.Config{CacheBytes: 1024})
	kv := NewKVStore(kvu)
	aggregate(kv, "x", 1)
	if kv.Len() != 1 {
		t.Fatalf("kv Len = %d", kv.Len())
	}
	if kv.Underlying() != kvu {
		t.Fatal("Underlying mismatch")
	}
	if kv.SpilledBytes() != kvu.Stats().LogBytes {
		t.Fatal("SpilledBytes should mirror log size")
	}
}

func TestSpillStoreRequiresMerger(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without merger")
		}
	}()
	NewSpillStore(1024, nil, nil)
}

func TestSpillStoreDefaultThreshold(t *testing.T) {
	s := NewSpillStore(0, sumMerger, nil)
	aggregate(s, "k", 1)
	out := &sink{}
	s.Emit(out)
	if len(out.recs) != 1 {
		t.Fatal("default-threshold store broken")
	}
}

func TestNopSpillHooks(t *testing.T) {
	// The nil-hooks path must route through NopSpillHooks without panics.
	s := NewSpillStore(64, sumMerger, NopSpillHooks{})
	for i := 0; i < 100; i++ {
		aggregate(s, fmt.Sprintf("key%02d", i), 1)
	}
	s.Emit(&sink{})
}
