package codec

import (
	"strings"
	"testing"
	"testing/quick"

	"blmr/internal/core"
)

func TestRoundTrip(t *testing.T) {
	recs := []core.Record{
		{Key: "a", Value: "1"},
		{Key: "", Value: ""},
		{Key: "long-key-" + strings.Repeat("x", 200), Value: strings.Repeat("v", 1000)},
		{Key: "\x00binary\xff", Value: "\x1f"},
	}
	buf := AppendRecords(nil, recs)
	got := DecodeAll(buf)
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %v, want %v", i, got[i], recs[i])
		}
	}
}

func TestEncodedSizeMatches(t *testing.T) {
	f := func(key, val string) bool {
		r := core.Record{Key: key, Value: val}
		buf := AppendRecord(nil, r)
		return int64(len(buf)) == EncodedSize(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(pairs [][2]string) bool {
		recs := make([]core.Record, len(pairs))
		for i, p := range pairs {
			recs[i] = core.Record{Key: p[0], Value: p[1]}
		}
		got := DecodeAll(AppendRecords(nil, recs))
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyBuffer(t *testing.T) {
	rd := NewReader(nil)
	if _, ok := rd.Next(); ok {
		t.Fatal("empty buffer should yield no records")
	}
	if DecodeAll(nil) != nil {
		t.Fatal("DecodeAll(nil) should be nil")
	}
}

func TestCorruptPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on truncated buffer")
		}
	}()
	buf := AppendRecord(nil, core.Record{Key: "hello", Value: "world"})
	NewReader(buf[:3]).Next()
}

func BenchmarkAppendRecord(b *testing.B) {
	r := core.Record{Key: "some-key-123", Value: "some-value-payload"}
	buf := make([]byte, 0, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(buf) > 1<<19 {
			buf = buf[:0]
		}
		buf = AppendRecord(buf, r)
	}
}

func BenchmarkDecode(b *testing.B) {
	var buf []byte
	for i := 0; i < 1024; i++ {
		buf = AppendRecord(buf, core.Record{Key: "key-123456", Value: "value-payload"})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd := NewReader(buf)
		for {
			if _, ok := rd.Next(); !ok {
				break
			}
		}
	}
}
