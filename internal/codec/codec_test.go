package codec

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"runtime"
	"slices"
	"strings"
	"testing"
	"testing/quick"

	"blmr/internal/core"
)

func TestRoundTrip(t *testing.T) {
	recs := []core.Record{
		{Key: "a", Value: "1"},
		{Key: "", Value: ""},
		{Key: "long-key-" + strings.Repeat("x", 200), Value: strings.Repeat("v", 1000)},
		{Key: "\x00binary\xff", Value: "\x1f"},
	}
	buf := AppendRecords(nil, recs)
	got := DecodeAll(buf)
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %v, want %v", i, got[i], recs[i])
		}
	}
}

func TestEncodedSizeMatches(t *testing.T) {
	f := func(key, val string) bool {
		r := core.Record{Key: key, Value: val}
		buf := AppendRecord(nil, r)
		return int64(len(buf)) == EncodedSize(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(pairs [][2]string) bool {
		recs := make([]core.Record, len(pairs))
		for i, p := range pairs {
			recs[i] = core.Record{Key: p[0], Value: p[1]}
		}
		got := DecodeAll(AppendRecords(nil, recs))
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSpillRunRoundTripProperty models a spill run: records are key-sorted
// before encoding, then decoded back through the streaming reader. Decoding
// must preserve exact bytes and the sorted order, regardless of content
// (binary keys, embedded NULs, empty strings).
func TestSpillRunRoundTripProperty(t *testing.T) {
	f := func(pairs [][2]string) bool {
		recs := make([]core.Record, len(pairs))
		for i, p := range pairs {
			recs[i] = core.Record{Key: p[0], Value: p[1]}
		}
		slices.SortStableFunc(recs, func(a, b core.Record) int {
			return strings.Compare(a.Key, b.Key)
		})
		buf := AppendRecords(nil, recs)
		sr := NewStreamReader(bufio.NewReaderSize(bytes.NewReader(buf), 16))
		var got []core.Record
		for {
			r, ok := sr.Next()
			if !ok {
				break
			}
			got = append(got, r)
		}
		if sr.Err() != nil || len(got) != len(recs) {
			return false
		}
		prev := ""
		for i := range recs {
			if got[i] != recs[i] || got[i].Key < prev {
				return false
			}
			prev = got[i].Key
		}
		// Re-encoding the decoded stream must reproduce the exact bytes.
		return bytes.Equal(buf, AppendRecords(nil, got))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamReaderTruncation: every possible truncation point of a valid
// stream must yield either a clean shorter stream (cut exactly between
// records) or ErrCorrupt — never a panic, never a phantom record.
func TestStreamReaderTruncation(t *testing.T) {
	recs := []core.Record{
		{Key: "alpha", Value: "1"},
		{Key: "beta", Value: strings.Repeat("v", 300)},
		{Key: "\x00bin\xff", Value: ""},
	}
	buf := AppendRecords(nil, recs)
	boundaries := map[int]int{0: 0} // truncation offset -> complete records
	off := 0
	for i, r := range recs {
		off += int(EncodedSize(r))
		boundaries[off] = i + 1
	}
	for cut := 0; cut <= len(buf); cut++ {
		sr := NewStreamReader(bufio.NewReaderSize(bytes.NewReader(buf[:cut]), 16))
		n := 0
		for {
			r, ok := sr.Next()
			if !ok {
				break
			}
			if r != recs[n] {
				t.Fatalf("cut=%d: record %d = %v, want %v", cut, n, r, recs[n])
			}
			n++
		}
		if want, clean := boundaries[cut]; clean {
			if sr.Err() != nil {
				t.Fatalf("cut=%d at record boundary: unexpected error %v", cut, sr.Err())
			}
			if n != want {
				t.Fatalf("cut=%d: decoded %d records, want %d", cut, n, want)
			}
		} else if !errors.Is(sr.Err(), ErrCorrupt) {
			t.Fatalf("cut=%d mid-record: err=%v, want ErrCorrupt", cut, sr.Err())
		}
	}
}

// TestStreamReaderCorruptLengthNoHugeAlloc: a bit-flipped length prefix
// claiming a ~1GB value must fail with ErrCorrupt after reading only the
// bytes actually present — not allocate the claimed length up front.
func TestStreamReaderCorruptLengthNoHugeAlloc(t *testing.T) {
	buf := binary.AppendUvarint(nil, 1<<30) // key "length": 1GiB
	buf = append(buf, []byte("only a few real bytes")...)
	before := heapInUse()
	sr := NewStreamReader(bytes.NewReader(buf))
	if _, ok := sr.Next(); ok {
		t.Fatal("corrupt stream yielded a record")
	}
	if !errors.Is(sr.Err(), ErrCorrupt) {
		t.Fatalf("Err() = %v, want ErrCorrupt", sr.Err())
	}
	if grown := heapInUse() - before; grown > 16<<20 {
		t.Fatalf("decoding a corrupt length allocated %d MB up front", grown>>20)
	}
}

// TestStreamReaderLargeValue: genuinely large values (crossing the chunked
// read path) still round-trip.
func TestStreamReaderLargeValue(t *testing.T) {
	rec := core.Record{Key: "big", Value: strings.Repeat("x", 300<<10)}
	sr := NewStreamReader(bytes.NewReader(AppendRecord(nil, rec)))
	got, ok := sr.Next()
	if !ok || sr.Err() != nil {
		t.Fatalf("ok=%v err=%v", ok, sr.Err())
	}
	if got != rec {
		t.Fatal("large value corrupted by chunked decode")
	}
}

func heapInUse() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapInuse)
}

func TestStreamReaderScratchNotAliased(t *testing.T) {
	var buf []byte
	for i := 0; i < 3; i++ {
		buf = AppendRecord(buf, core.Record{Key: strings.Repeat("k", 50), Value: strings.Repeat(string(rune('a'+i)), 50)})
	}
	sr := NewStreamReader(bytes.NewReader(buf))
	var vals []string
	for {
		r, ok := sr.Next()
		if !ok {
			break
		}
		vals = append(vals, r.Value)
	}
	if vals[0] == vals[1] || vals[1] == vals[2] {
		t.Fatal("decoded strings alias the scratch buffer")
	}
	if vals[0] != strings.Repeat("a", 50) {
		t.Fatalf("vals[0] corrupted: %q", vals[0])
	}
}

func TestEmptyBuffer(t *testing.T) {
	rd := NewReader(nil)
	if _, ok := rd.Next(); ok {
		t.Fatal("empty buffer should yield no records")
	}
	if DecodeAll(nil) != nil {
		t.Fatal("DecodeAll(nil) should be nil")
	}
}

func TestCorruptPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on truncated buffer")
		}
	}()
	buf := AppendRecord(nil, core.Record{Key: "hello", Value: "world"})
	NewReader(buf[:3]).Next()
}

func BenchmarkAppendRecord(b *testing.B) {
	r := core.Record{Key: "some-key-123", Value: "some-value-payload"}
	buf := make([]byte, 0, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(buf) > 1<<19 {
			buf = buf[:0]
		}
		buf = AppendRecord(buf, r)
	}
}

func BenchmarkDecode(b *testing.B) {
	var buf []byte
	for i := 0; i < 1024; i++ {
		buf = AppendRecord(buf, core.Record{Key: "key-123456", Value: "value-payload"})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd := NewReader(buf)
		for {
			if _, ok := rd.Next(); !ok {
				break
			}
		}
	}
}
