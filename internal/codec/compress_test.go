package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"slices"
	"sort"
	"strings"
	"testing"

	"blmr/internal/core"
)

var allCompressions = []Compression{None, Block, DeltaBlock}

// encodeRun seals recs with comp at the given block target (0 = default),
// returning the encoded run and the encoder's reported raw size.
func encodeRun(t *testing.T, recs []core.Record, comp Compression, blockTarget int) ([]byte, int64) {
	t.Helper()
	e := NewRunEncoder(nil, comp)
	if blockTarget > 0 {
		e.blockTarget = blockTarget
	}
	for _, r := range recs {
		if err := e.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return append([]byte(nil), e.Bytes()...), e.RawBytes()
}

// decodeRun drains a decoder, failing the test on any decode error.
func decodeRun(t *testing.T, buf []byte, comp Compression) []core.Record {
	t.Helper()
	rd := NewRunDecoderBytes(buf, comp)
	var out []core.Record
	for {
		r, ok := rd.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	if err := rd.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func requireRecords(t *testing.T, name string, want, got []core.Record) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d records, want %d", name, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: record %d = %+v, want %+v", name, i, got[i], want[i])
		}
	}
}

// randomRecords builds n records with random sizes including zero-byte keys
// and values, key-sorted (the spill invariant DeltaBlock exploits).
func randomRecords(rng *rand.Rand, n int) []core.Record {
	const alphabet = "abcdefgh"
	recs := make([]core.Record, n)
	for i := range recs {
		klen := rng.Intn(24)
		if rng.Intn(10) == 0 {
			klen = 0
		}
		vlen := rng.Intn(40)
		if rng.Intn(10) == 0 {
			vlen = 0
		}
		k := make([]byte, klen)
		for j := range k {
			k[j] = alphabet[rng.Intn(len(alphabet))]
		}
		v := make([]byte, vlen)
		rng.Read(v)
		recs[i] = core.Record{Key: string(k), Value: string(v)}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	return recs
}

func TestCompressedRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		recs := randomRecords(rng, 1+rng.Intn(400))
		raw := AppendRecords(nil, recs)
		for _, comp := range allCompressions {
			buf, rawBytes := encodeRun(t, recs, comp, 0)
			if rawBytes != int64(len(raw)) {
				t.Fatalf("%v: RawBytes=%d, standard encoding is %d", comp, rawBytes, len(raw))
			}
			if comp == None && !bytes.Equal(buf, raw) {
				t.Fatalf("None encoding diverged from AppendRecords")
			}
			requireRecords(t, fmt.Sprintf("trial%d-%v", trial, comp), recs, decodeRun(t, buf, comp))
		}
	}
}

// TestCompressedRoundTripBlockBoundaries forces records to land on every
// block-boundary shape: tiny targets seal a block per record (and mid-run
// boundaries at every position), larger ones exercise partial tail blocks
// and records bigger than a whole block.
func TestCompressedRoundTripBlockBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	recs := randomRecords(rng, 200)
	recs = append(recs, core.Record{Key: strings.Repeat("k", 500), Value: strings.Repeat("v", 700)})
	for _, comp := range []Compression{Block, DeltaBlock} {
		for _, target := range []int{1, 2, 3, 7, 16, 64, 257, 1 << 20} {
			buf, _ := encodeRun(t, recs, comp, target)
			requireRecords(t, fmt.Sprintf("%v-target%d", comp, target), recs, decodeRun(t, buf, comp))
		}
	}
}

// TestCompressedEmptyRun: a flushed empty compressed run is just the
// self-describing header and decodes to zero records.
func TestCompressedEmptyRun(t *testing.T) {
	for _, comp := range []Compression{Block, DeltaBlock} {
		buf, _ := encodeRun(t, nil, comp, 0)
		if len(buf) != 5 {
			t.Fatalf("%v: empty run is %d bytes, want 5 (header)", comp, len(buf))
		}
		if got := decodeRun(t, buf, comp); len(got) != 0 {
			t.Fatalf("%v: empty run decoded %d records", comp, len(got))
		}
	}
}

// TestCompressedStreamingMatchesBuffered: the writer-backed encoder must
// produce byte-identical output to the in-memory encoder, through arbitrary
// incremental writes.
func TestCompressedStreamingMatchesBuffered(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	recs := randomRecords(rng, 3000)
	for _, comp := range allCompressions {
		want, _ := encodeRun(t, recs, comp, 0)
		var sink bytes.Buffer
		e := NewRunEncoder(&sink, comp)
		for _, r := range recs {
			if err := e.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sink.Bytes(), want) {
			t.Fatalf("%v: streamed encoding diverges from buffered", comp)
		}
	}
}

// blockBoundaries returns every offset at which a compressed run may
// legitimately end (after the header and after each whole block), by
// re-walking the framing.
func blockBoundaries(t *testing.T, buf []byte) map[int]bool {
	t.Helper()
	bounds := map[int]bool{}
	off := 5 // header
	bounds[off] = true
	for off < len(buf) {
		rawLen, n := uvarintAt(t, buf, off)
		off += n
		encTag, n := uvarintAt(t, buf, off)
		off += n
		_ = rawLen
		off += 4 // crc32c
		off += int(encTag >> 2)
		bounds[off] = true
	}
	return bounds
}

func uvarintAt(t *testing.T, buf []byte, off int) (uint64, int) {
	t.Helper()
	var v uint64
	var shift uint
	for i := off; i < len(buf); i++ {
		b := buf[i]
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, i - off + 1
		}
		shift += 7
	}
	t.Fatalf("bad varint at %d", off)
	return 0, 0
}

// TestCompressedTruncationEveryOffset cuts a compressed run at every byte
// offset: decoding must never panic, and must surface ErrCorrupt for every
// cut that is not a clean block boundary. Cuts at block boundaries decode
// (without error) to a strict prefix of the records — the same undetectable
// case a raw run truncated at a record boundary has, which the transports
// catch with section-length accounting.
func TestCompressedTruncationEveryOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	recs := randomRecords(rng, 120)
	for _, comp := range []Compression{Block, DeltaBlock} {
		buf, _ := encodeRun(t, recs, comp, 64)
		bounds := blockBoundaries(t, buf)
		for cut := 0; cut < len(buf); cut++ {
			rd := NewRunDecoderBytes(buf[:cut], comp)
			var got []core.Record
			for {
				r, ok := rd.Next()
				if !ok {
					break
				}
				got = append(got, r)
			}
			err := rd.Err()
			if bounds[cut] {
				if err != nil {
					t.Fatalf("%v: cut at block boundary %d errored: %v", comp, cut, err)
				}
				if len(got) > len(recs) || !slices.Equal(got, recs[:len(got)]) {
					t.Fatalf("%v: cut at %d decoded a non-prefix", comp, cut)
				}
				continue
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%v: cut at %d: err=%v, want ErrCorrupt", comp, cut, err)
			}
		}
	}
}

// TestCompressedCorruptHeader: bad magic and bad codec bytes are rejected.
func TestCompressedCorruptHeader(t *testing.T) {
	buf, _ := encodeRun(t, []core.Record{{Key: "k", Value: "v"}}, Block, 0)
	for _, mut := range []struct {
		name string
		at   int
		to   byte
	}{
		{"magic", 0, 'X'},
		{"codec", 4, 99},
	} {
		bad := append([]byte(nil), buf...)
		bad[mut.at] = mut.to
		rd := NewRunDecoderBytes(bad, Block)
		if _, ok := rd.Next(); ok {
			t.Fatalf("%s: decoded a record from a corrupt header", mut.name)
		}
		if !errors.Is(rd.Err(), ErrCorrupt) {
			t.Fatalf("%s: err=%v, want ErrCorrupt", mut.name, rd.Err())
		}
	}
}

// TestDeltaBlockCompresses: sorted text keys (the WordCount spill shape)
// must shrink substantially under DeltaBlock — the ratio the spill and
// fetch paths bank on.
func TestDeltaBlockCompresses(t *testing.T) {
	var recs []core.Record
	for i := 0; i < 4000; i++ {
		recs = append(recs, core.Record{Key: fmt.Sprintf("word%08d", i/3), Value: "1"})
	}
	raw := int64(len(AppendRecords(nil, recs)))
	for _, comp := range []Compression{Block, DeltaBlock} {
		buf, rawBytes := encodeRun(t, recs, comp, 0)
		if rawBytes != raw {
			t.Fatalf("%v: raw accounting %d != %d", comp, rawBytes, raw)
		}
		ratio := float64(raw) / float64(len(buf))
		if ratio < 1.5 {
			t.Fatalf("%v: ratio %.2f < 1.5 (raw=%d sealed=%d)", comp, ratio, raw, len(buf))
		}
		t.Logf("%v: %d -> %d bytes (%.1fx)", comp, raw, len(buf), ratio)
	}
}

// TestIncompressibleStoredBlocks: random payloads take the stored-block
// path and still round-trip (sealed size ≈ raw + framing, never corrupt).
func TestIncompressibleStoredBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	recs := make([]core.Record, 50)
	for i := range recs {
		k := make([]byte, 32)
		v := make([]byte, 200)
		rng.Read(k)
		rng.Read(v)
		recs[i] = core.Record{Key: string(k), Value: string(v)}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	for _, comp := range []Compression{Block, DeltaBlock} {
		buf, rawBytes := encodeRun(t, recs, comp, 0)
		requireRecords(t, comp.String(), recs, decodeRun(t, buf, comp))
		if int64(len(buf)) > rawBytes+rawBytes/8+64 {
			t.Fatalf("%v: incompressible run expanded %d -> %d", comp, rawBytes, len(buf))
		}
	}
}

// TestCorruptCopyDistance: a copy op whose distance uvarint exceeds int64
// must surface ErrCorrupt, not wrap negative and panic on a slice index.
func TestCorruptCopyDistance(t *testing.T) {
	var buf []byte
	buf = append(buf, runMagic[:]...)
	buf = append(buf, byte(Block))
	payload := binary.AppendUvarint(nil, 4<<1|1)               // copy, len 4
	payload = binary.AppendUvarint(payload, uint64(1)<<63)     // distance 2^63
	buf = binary.AppendUvarint(buf, 100)                       // rawLen
	buf = binary.AppendUvarint(buf, uint64(len(payload))<<2|1) // lz-compressed
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	buf = append(buf, payload...)
	rd := NewRunDecoderBytes(buf, Block)
	if _, ok := rd.Next(); ok {
		t.Fatal("decoded a record from a corrupt copy distance")
	}
	if !errors.Is(rd.Err(), ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", rd.Err())
	}
}

func TestParseCompression(t *testing.T) {
	for _, comp := range allCompressions {
		got, err := ParseCompression(comp.String())
		if err != nil || got != comp {
			t.Fatalf("ParseCompression(%q) = %v, %v", comp.String(), got, err)
		}
	}
	if _, err := ParseCompression("zstd"); err == nil {
		t.Fatal("expected an error for an unknown codec")
	}
}
