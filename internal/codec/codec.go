// Package codec serializes record streams to flat byte buffers using
// uvarint-length-prefixed key/value pairs. Spill files, shuffle segments and
// the key/value store log all share this format.
package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"

	"blmr/internal/core"
)

// AppendRecord appends the encoding of r to dst and returns the extended
// buffer.
func AppendRecord(dst []byte, r core.Record) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r.Key)))
	dst = append(dst, r.Key...)
	dst = binary.AppendUvarint(dst, uint64(len(r.Value)))
	dst = append(dst, r.Value...)
	return dst
}

// AppendRecords appends all records to dst.
func AppendRecords(dst []byte, recs []core.Record) []byte {
	for _, r := range recs {
		dst = AppendRecord(dst, r)
	}
	return dst
}

// EncodedSize returns the exact encoded size of r in bytes.
func EncodedSize(r core.Record) int64 {
	return int64(uvarintLen(uint64(len(r.Key))) + len(r.Key) + uvarintLen(uint64(len(r.Value))) + len(r.Value))
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Reader decodes a record stream from a buffer. It satisfies sortx.Run when
// the underlying stream is key-sorted.
type Reader struct {
	buf []byte
	off int
}

// NewReader wraps an encoded buffer.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Next decodes the next record; ok is false at end of buffer. Corrupt input
// panics: the framework only reads buffers it wrote.
func (rd *Reader) Next() (core.Record, bool) {
	if rd.off >= len(rd.buf) {
		return core.Record{}, false
	}
	key := rd.str()
	val := rd.str()
	return core.Record{Key: key, Value: val}, true
}

func (rd *Reader) str() string {
	n, sz := binary.Uvarint(rd.buf[rd.off:])
	if sz <= 0 {
		panic(fmt.Sprintf("codec: corrupt length at offset %d", rd.off))
	}
	rd.off += sz
	if rd.off+int(n) > len(rd.buf) {
		panic(fmt.Sprintf("codec: truncated record at offset %d", rd.off))
	}
	s := string(rd.buf[rd.off : rd.off+int(n)])
	rd.off += int(n)
	return s
}

// ErrCorrupt reports a structurally invalid record stream: a malformed
// length prefix, or a stream that ends mid-record (a partial write that was
// never completed).
var ErrCorrupt = errors.New("codec: corrupt record stream")

// ByteScanner is the reader a StreamReader decodes from. *bufio.Reader and
// *bytes.Reader both satisfy it.
type ByteScanner interface {
	io.Reader
	io.ByteReader
}

// StreamReader decodes records incrementally from an io stream (a spill
// file) without loading the stream into memory. Unlike Reader it returns
// errors instead of panicking: disk-backed runs can be truncated by crashes
// or partial writes, and the merge path must surface that, not die.
type StreamReader struct {
	r     ByteScanner
	buf   []byte // scratch for key/value bytes, reused across records
	arena *Arena // optional: record strings cut from shared chunks
	err   error
}

// NewStreamReader wraps r.
func NewStreamReader(r ByteScanner) *StreamReader { return &StreamReader{r: r} }

// Reset points the reader at a new stream, keeping its scratch buffer (and
// arena) so one reader can decode many runs without reallocating.
func (sr *StreamReader) Reset(r ByteScanner) {
	sr.r = r
	sr.err = nil
}

// SetArena makes the reader allocate record strings from a (nil restores
// per-record allocation). See Arena for the retention trade-off.
func (sr *StreamReader) SetArena(a *Arena) { sr.arena = a }

// NewStreamReaderBytes wraps an in-memory encoded buffer. Unlike Reader it
// returns errors instead of panicking — the right decoder for buffers of
// untrusted provenance (network frames), where truncation is an input
// condition, not a framework bug.
func NewStreamReaderBytes(b []byte) *StreamReader { return NewStreamReader(bytes.NewReader(b)) }

// Next decodes the next record. ok is false at end of stream or on error;
// check Err to distinguish. The returned record's strings do not alias the
// internal scratch buffer.
func (sr *StreamReader) Next() (core.Record, bool) {
	if sr.err != nil {
		return core.Record{}, false
	}
	key, err := sr.str(true)
	if err != nil {
		if err != io.EOF { // EOF before a length prefix is a clean end
			sr.err = err
		}
		return core.Record{}, false
	}
	val, err := sr.str(false)
	if err != nil {
		sr.err = err // any failure mid-record is corruption
		return core.Record{}, false
	}
	return core.Record{Key: key, Value: val}, true
}

// str reads one length-prefixed string. atRecordStart distinguishes a clean
// EOF (between records) from a truncated record.
func (sr *StreamReader) str(atRecordStart bool) (string, error) {
	n, err := binary.ReadUvarint(sr.r)
	if err != nil {
		if err == io.EOF && atRecordStart {
			return "", io.EOF
		}
		return "", fmt.Errorf("%w: bad length prefix: %v", ErrCorrupt, err)
	}
	if n > uint64(1<<31) {
		return "", fmt.Errorf("%w: implausible length %d", ErrCorrupt, n)
	}
	const chunk = 64 << 10
	if n <= chunk {
		if uint64(cap(sr.buf)) < n {
			sr.buf = make([]byte, n)
		}
		b := sr.buf[:n]
		if _, err := io.ReadFull(sr.r, b); err != nil {
			return "", fmt.Errorf("%w: truncated record body: %v", ErrCorrupt, err)
		}
		if sr.arena != nil {
			return sr.arena.String(b), nil
		}
		return string(b), nil
	}
	// Large value: read chunk by chunk so a corrupt (huge) length prefix
	// fails at the first missing byte — allocation tracks the bytes the
	// stream actually contains, never the claimed length.
	var sb strings.Builder
	if cap(sr.buf) < chunk {
		sr.buf = make([]byte, chunk)
	}
	for remaining := n; remaining > 0; {
		c := uint64(chunk)
		if remaining < c {
			c = remaining
		}
		b := sr.buf[:c]
		if _, err := io.ReadFull(sr.r, b); err != nil {
			return "", fmt.Errorf("%w: truncated record body: %v", ErrCorrupt, err)
		}
		sb.Write(b)
		remaining -= c
	}
	return sb.String(), nil
}

// Err returns the first decode error encountered, if any.
func (sr *StreamReader) Err() error { return sr.err }

// DecodeAll decodes every record in buf.
func DecodeAll(buf []byte) []core.Record {
	var out []core.Record
	rd := NewReader(buf)
	for {
		r, ok := rd.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}
