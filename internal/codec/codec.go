// Package codec serializes record streams to flat byte buffers using
// uvarint-length-prefixed key/value pairs. Spill files, shuffle segments and
// the key/value store log all share this format.
package codec

import (
	"encoding/binary"
	"fmt"

	"blmr/internal/core"
)

// AppendRecord appends the encoding of r to dst and returns the extended
// buffer.
func AppendRecord(dst []byte, r core.Record) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r.Key)))
	dst = append(dst, r.Key...)
	dst = binary.AppendUvarint(dst, uint64(len(r.Value)))
	dst = append(dst, r.Value...)
	return dst
}

// AppendRecords appends all records to dst.
func AppendRecords(dst []byte, recs []core.Record) []byte {
	for _, r := range recs {
		dst = AppendRecord(dst, r)
	}
	return dst
}

// EncodedSize returns the exact encoded size of r in bytes.
func EncodedSize(r core.Record) int64 {
	return int64(uvarintLen(uint64(len(r.Key))) + len(r.Key) + uvarintLen(uint64(len(r.Value))) + len(r.Value))
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Reader decodes a record stream from a buffer. It satisfies sortx.Run when
// the underlying stream is key-sorted.
type Reader struct {
	buf []byte
	off int
}

// NewReader wraps an encoded buffer.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Next decodes the next record; ok is false at end of buffer. Corrupt input
// panics: the framework only reads buffers it wrote.
func (rd *Reader) Next() (core.Record, bool) {
	if rd.off >= len(rd.buf) {
		return core.Record{}, false
	}
	key := rd.str()
	val := rd.str()
	return core.Record{Key: key, Value: val}, true
}

func (rd *Reader) str() string {
	n, sz := binary.Uvarint(rd.buf[rd.off:])
	if sz <= 0 {
		panic(fmt.Sprintf("codec: corrupt length at offset %d", rd.off))
	}
	rd.off += sz
	if rd.off+int(n) > len(rd.buf) {
		panic(fmt.Sprintf("codec: truncated record at offset %d", rd.off))
	}
	s := string(rd.buf[rd.off : rd.off+int(n)])
	rd.off += int(n)
	return s
}

// DecodeAll decodes every record in buf.
func DecodeAll(buf []byte) []core.Record {
	var out []core.Record
	rd := NewReader(buf)
	for {
		r, ok := rd.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}
