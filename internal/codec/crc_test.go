package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"

	"blmr/internal/core"
)

func crcTestRecords(n int) []core.Record {
	recs := make([]core.Record, n)
	for i := range recs {
		recs[i] = core.Record{
			Key:   fmt.Sprintf("key-%05d", i),
			Value: strings.Repeat("v", i%17),
		}
	}
	return recs
}

func sealRun(t *testing.T, recs []core.Record, comp Compression) []byte {
	t.Helper()
	e := NewRunEncoder(nil, comp)
	for _, r := range recs {
		if err := e.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), e.Bytes()...)
}

// TestBlockCRCCatchesBitRot: flipping any single payload byte of a sealed
// run must surface ErrCorrupt naming the checksum — the corruption is
// caught at the block that broke, before decompression can smear it into a
// confusing parse error (or, for a stored block, silently altered data).
func TestBlockCRCCatchesBitRot(t *testing.T) {
	for _, comp := range []Compression{Block, DeltaBlock} {
		buf := sealRun(t, crcTestRecords(2000), comp)
		// Flip bytes across the run body (past the 5-byte header, skipping
		// the per-block length varints is unnecessary: a corrupt length is
		// ErrCorrupt too — but for the checksum-specific assertion pick
		// offsets inside the first block's payload).
		for _, off := range []int{16, 64, len(buf) / 2, len(buf) - 3} {
			mut := append([]byte(nil), buf...)
			mut[off] ^= 0x20
			rd := NewRunDecoderBytes(mut, comp)
			for {
				if _, ok := rd.Next(); !ok {
					break
				}
			}
			if err := rd.Err(); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%v: flipped byte %d decoded cleanly (err=%v)", comp, off, err)
			}
		}
		// Specifically: a flip in the middle of a stored/compressed payload
		// is named a checksum mismatch.
		mut := append([]byte(nil), buf...)
		mut[20] ^= 0x01
		rd := NewRunDecoderBytes(mut, comp)
		for {
			if _, ok := rd.Next(); !ok {
				break
			}
		}
		if err := rd.Err(); err == nil ||
			(!strings.Contains(err.Error(), "checksum") && !errors.Is(err, ErrCorrupt)) {
			t.Fatalf("%v: payload flip error = %v", comp, err)
		}
	}
}

// downgradeRun rewrites a v3-sealed run as a "BLC1" or "BLC2" run by
// re-walking the v3 framing: block tags drop the dict bit (ver 1/2 encode
// encLen<<1|lz) and ver 1 additionally strips each block's CRC word. The
// input must contain no dictionary-dependent blocks — older framings
// cannot express them — so callers pick single-block or incompressible
// data.
func downgradeRun(t *testing.T, buf []byte, ver int) []byte {
	t.Helper()
	out := []byte{'B', 'L', 'C', byte('0' + ver), buf[4]}
	src := buf[5:]
	for len(src) > 0 {
		rawLen, n1 := uvarint(t, src)
		encTag, n2 := uvarint(t, src[n1:])
		src = src[n1+n2:]
		encLen := int(encTag >> 2)
		if encTag&2 != 0 {
			t.Fatalf("cannot downgrade a dictionary-dependent block to v%d", ver)
		}
		out = binary.AppendUvarint(out, rawLen)
		out = binary.AppendUvarint(out, uint64(encLen)<<1|encTag&1)
		if ver >= 2 {
			out = append(out, src[:4]...) // keep the CRC word
		}
		out = append(out, src[4:4+encLen]...)
		src = src[4+encLen:]
	}
	return out
}

func decodeAll(t *testing.T, buf []byte, comp Compression) []core.Record {
	t.Helper()
	dec := NewRunDecoderBytes(buf, comp)
	var got []core.Record
	for {
		r, ok := dec.Next()
		if !ok {
			break
		}
		got = append(got, r)
	}
	if err := dec.Err(); err != nil {
		t.Fatalf("%v: decode: %v", comp, err)
	}
	return got
}

// TestOldRunsStillDecode: runs sealed with the PR-5 "BLC2" header (no
// dictionary window) and the PR-4 "BLC1" header (no block CRCs either)
// must keep decoding — wire and disk compatibility for sealed runs that
// predate the current framing. Covered across the compressed single-block
// shape and a multi-block stored (incompressible) shape.
func TestOldRunsStillDecode(t *testing.T) {
	small := crcTestRecords(500) // one compressed block, no dict blocks
	big := make([]core.Record, 1500)
	rng := uint64(0x9e3779b97f4a7c15)
	for i := range big { // incompressible: every block stored, never dict
		k := make([]byte, 40)
		v := make([]byte, 200)
		for j := range k {
			rng = rng*6364136223846793005 + 1442695040888963407
			k[j] = byte(rng >> 33)
		}
		for j := range v {
			rng = rng*6364136223846793005 + 1442695040888963407
			v[j] = byte(rng >> 33)
		}
		big[i] = core.Record{Key: string(k), Value: string(v)}
	}
	for _, tc := range []struct {
		name string
		recs []core.Record
	}{{"small", small}, {"stored", big}} {
		for _, comp := range []Compression{Block, DeltaBlock} {
			buf := sealRun(t, tc.recs, comp)
			for _, ver := range []int{1, 2} {
				old := downgradeRun(t, buf, ver)
				got := decodeAll(t, old, comp)
				if len(got) != len(tc.recs) {
					t.Fatalf("%s/%v: v%d run decoded %d records, want %d", tc.name, comp, ver, len(got), len(tc.recs))
				}
				for i := range got {
					if got[i] != tc.recs[i] {
						t.Fatalf("%s/%v: v%d record %d: %v vs %v", tc.name, comp, ver, i, got[i], tc.recs[i])
					}
				}
			}
		}
	}
}

// TestDictWindowRoundTrip: a multi-block repetitive run must produce at
// least one dictionary-dependent block (the cross-block window is doing
// work) and still round-trip exactly; and corruption inside the block a
// dict block depends on surfaces ErrCorrupt for both.
func TestDictWindowRoundTrip(t *testing.T) {
	recs := crcTestRecords(8000) // several blocks of highly repetitive keys
	for _, comp := range []Compression{Block, DeltaBlock} {
		buf := sealRun(t, recs, comp)
		var dictBlocks, blocks int
		src := buf[5:]
		for len(src) > 0 {
			_, n1 := uvarint(t, src)
			encTag, n2 := uvarint(t, src[n1:])
			src = src[n1+n2+4+int(encTag>>2):]
			blocks++
			if encTag&2 != 0 {
				dictBlocks++
			}
		}
		if blocks < 2 {
			t.Fatalf("%v: test data sealed into %d block(s); need several", comp, blocks)
		}
		if dictBlocks == 0 {
			t.Fatalf("%v: no dictionary-dependent blocks in %d blocks", comp, blocks)
		}
		t.Logf("%v: %d of %d blocks dict-dependent, %d bytes sealed", comp, dictBlocks, blocks, len(buf))
		got := decodeAll(t, buf, comp)
		if len(got) != len(recs) {
			t.Fatalf("%v: decoded %d records, want %d", comp, len(got), len(recs))
		}
		for i := range got {
			if got[i] != recs[i] {
				t.Fatalf("%v: record %d: %v vs %v", comp, i, got[i], recs[i])
			}
		}
	}
}

// TestDictBlockWithoutPredecessor: a first block claiming dictionary
// dependence is structurally impossible and must be ErrCorrupt, not a
// panic or garbage output.
func TestDictBlockWithoutPredecessor(t *testing.T) {
	recs := crcTestRecords(8000)
	buf := sealRun(t, recs, Block)
	// Splice the run down to header + the first dict-flagged block.
	src := buf[5:]
	off := 5
	for len(src) > 0 {
		_, n1 := uvarint(t, src)
		encTag, n2 := uvarint(t, src[n1:])
		blockLen := n1 + n2 + 4 + int(encTag>>2)
		if encTag&2 != 0 {
			bad := append([]byte(nil), buf[:5]...)
			bad = append(bad, buf[off:off+blockLen]...)
			rd := NewRunDecoderBytes(bad, Block)
			for {
				if _, ok := rd.Next(); !ok {
					break
				}
			}
			if err := rd.Err(); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("orphaned dict block: err=%v, want ErrCorrupt", err)
			}
			return
		}
		src = src[blockLen:]
		off += blockLen
	}
	t.Fatal("test data produced no dict blocks")
}

func uvarint(t *testing.T, b []byte) (uint64, int) {
	t.Helper()
	var v uint64
	var shift uint
	for i, c := range b {
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, i + 1
		}
		shift += 7
	}
	t.Fatal("bad varint")
	return 0, 0
}

// TestSectionDecoderArena: decoding through a SectionDecoder with an arena
// yields records equal to the plain decode, across codecs and across
// Resets (the shuffle pool's per-connection reuse pattern).
func TestSectionDecoderArena(t *testing.T) {
	recs := crcTestRecords(1200)
	var dec SectionDecoder
	var arena Arena
	for _, comp := range []Compression{None, Block, DeltaBlock} {
		buf := sealRun(t, recs, comp)
		for pass := 0; pass < 2; pass++ { // reuse across Resets
			rr := dec.Reset(bytes.NewReader(buf), comp, &arena)
			var got []core.Record
			for {
				r, ok := rr.Next()
				if !ok {
					break
				}
				got = append(got, r)
			}
			if err := rr.Err(); err != nil {
				t.Fatalf("%v pass %d: %v", comp, pass, err)
			}
			if len(got) != len(recs) {
				t.Fatalf("%v pass %d: %d records, want %d", comp, pass, len(got), len(recs))
			}
			for i := range got {
				if got[i] != recs[i] {
					t.Fatalf("%v pass %d record %d: %v vs %v", comp, pass, i, got[i], recs[i])
				}
			}
		}
	}
}
