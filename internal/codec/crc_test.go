package codec

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"blmr/internal/core"
)

func crcTestRecords(n int) []core.Record {
	recs := make([]core.Record, n)
	for i := range recs {
		recs[i] = core.Record{
			Key:   fmt.Sprintf("key-%05d", i),
			Value: strings.Repeat("v", i%17),
		}
	}
	return recs
}

func sealRun(t *testing.T, recs []core.Record, comp Compression) []byte {
	t.Helper()
	e := NewRunEncoder(nil, comp)
	for _, r := range recs {
		if err := e.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), e.Bytes()...)
}

// TestBlockCRCCatchesBitRot: flipping any single payload byte of a sealed
// run must surface ErrCorrupt naming the checksum — the corruption is
// caught at the block that broke, before decompression can smear it into a
// confusing parse error (or, for a stored block, silently altered data).
func TestBlockCRCCatchesBitRot(t *testing.T) {
	for _, comp := range []Compression{Block, DeltaBlock} {
		buf := sealRun(t, crcTestRecords(2000), comp)
		// Flip bytes across the run body (past the 5-byte header, skipping
		// the per-block length varints is unnecessary: a corrupt length is
		// ErrCorrupt too — but for the checksum-specific assertion pick
		// offsets inside the first block's payload).
		for _, off := range []int{16, 64, len(buf) / 2, len(buf) - 3} {
			mut := append([]byte(nil), buf...)
			mut[off] ^= 0x20
			rd := NewRunDecoderBytes(mut, comp)
			for {
				if _, ok := rd.Next(); !ok {
					break
				}
			}
			if err := rd.Err(); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%v: flipped byte %d decoded cleanly (err=%v)", comp, off, err)
			}
		}
		// Specifically: a flip in the middle of a stored/compressed payload
		// is named a checksum mismatch.
		mut := append([]byte(nil), buf...)
		mut[20] ^= 0x01
		rd := NewRunDecoderBytes(mut, comp)
		for {
			if _, ok := rd.Next(); !ok {
				break
			}
		}
		if err := rd.Err(); err == nil ||
			(!strings.Contains(err.Error(), "checksum") && !errors.Is(err, ErrCorrupt)) {
			t.Fatalf("%v: payload flip error = %v", comp, err)
		}
	}
}

// TestV1RunsStillDecode: runs sealed with the PR-4 "BLC1" header (no block
// CRCs) must keep decoding — wire and disk compatibility for sealed runs
// that predate the checksum.
func TestV1RunsStillDecode(t *testing.T) {
	recs := crcTestRecords(500)
	for _, comp := range []Compression{Block, DeltaBlock} {
		buf := sealRun(t, recs, comp)
		// Rewrite the run as v1: magic BLC1, blocks without the CRC field,
		// by re-walking the v2 framing and stripping each block's CRC.
		v1 := []byte{'B', 'L', 'C', '1', buf[4]}
		src := buf[5:]
		for len(src) > 0 {
			rawLen, n1 := uvarint(t, src)
			encTag, n2 := uvarint(t, src[n1:])
			hdrLen := n1 + n2
			encLen := int(encTag >> 1)
			v1 = append(v1, src[:hdrLen]...)
			v1 = append(v1, src[hdrLen+4:hdrLen+4+encLen]...)
			src = src[hdrLen+4+encLen:]
			_ = rawLen
		}
		dec := NewRunDecoderBytes(v1, comp)
		var got []core.Record
		for {
			r, ok := dec.Next()
			if !ok {
				break
			}
			got = append(got, r)
		}
		if err := dec.Err(); err != nil {
			t.Fatalf("%v: v1 run failed to decode: %v", comp, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("%v: v1 run decoded %d records, want %d", comp, len(got), len(recs))
		}
		for i := range got {
			if got[i] != recs[i] {
				t.Fatalf("%v: v1 record %d: %v vs %v", comp, i, got[i], recs[i])
			}
		}
	}
}

func uvarint(t *testing.T, b []byte) (uint64, int) {
	t.Helper()
	var v uint64
	var shift uint
	for i, c := range b {
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, i + 1
		}
		shift += 7
	}
	t.Fatal("bad varint")
	return 0, 0
}

// TestSectionDecoderArena: decoding through a SectionDecoder with an arena
// yields records equal to the plain decode, across codecs and across
// Resets (the shuffle pool's per-connection reuse pattern).
func TestSectionDecoderArena(t *testing.T) {
	recs := crcTestRecords(1200)
	var dec SectionDecoder
	var arena Arena
	for _, comp := range []Compression{None, Block, DeltaBlock} {
		buf := sealRun(t, recs, comp)
		for pass := 0; pass < 2; pass++ { // reuse across Resets
			rr := dec.Reset(bytes.NewReader(buf), comp, &arena)
			var got []core.Record
			for {
				r, ok := rr.Next()
				if !ok {
					break
				}
				got = append(got, r)
			}
			if err := rr.Err(); err != nil {
				t.Fatalf("%v pass %d: %v", comp, pass, err)
			}
			if len(got) != len(recs) {
				t.Fatalf("%v pass %d: %d records, want %d", comp, pass, len(got), len(recs))
			}
			for i := range got {
				if got[i] != recs[i] {
					t.Fatalf("%v pass %d record %d: %v vs %v", comp, pass, i, got[i], recs[i])
				}
			}
		}
	}
}
