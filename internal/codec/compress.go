package codec

// Block-compressed spill runs. A sealed run is normally a flat stream of
// uvarint-framed records (the None codec: exactly the historical format).
// The compressed codecs wrap that stream in a self-describing run header
// followed by independently decodable fixed-size blocks, so section reads
// (dfs.OpenRunAt, the run-server wire path) stream block by block and only
// ever decompress the blocks they touch:
//
//	run    := "BLC2" | kind byte | block*
//	block  := uvarint(rawLen) | uvarint(encLen<<1 | lz) | crc32c(4 bytes LE) | encLen bytes
//
// rawLen is the block payload's size before byte compression; lz=1 means
// the payload is LZ-compressed (lz=0: stored verbatim, used when
// compression would not shrink the block). crc32c is the Castagnoli CRC of
// the encLen payload bytes as they sit on disk/wire, verified before the
// block is decompressed, so bit rot is caught at the block that broke
// rather than surfacing as a confusing parse error records later (or, for
// a corrupted stored block, not at all). Blocks always hold whole records
// — a record never straddles a block boundary. Decoders also accept the
// PR-4 "BLC1" header, whose blocks carry no CRC: old sealed runs stay
// readable, new runs are checksummed.
//
// The LZ layer is snappy-shaped but dependency-free: a greedy byte-window
// compressor emitting varint literal/copy tags, window reset per block:
//
//	op     := uvarint(n<<1)   | n literal bytes          (literal run)
//	        | uvarint(n<<1|1) | uvarint(distance)        (copy, n >= 4)
//
// Block payloads use the standard record framing. DeltaBlock additionally
// front-codes keys before compression, exploiting that spill runs are
// always key-sorted: each record stores the length of the prefix it shares
// with the previous key in the block plus the suffix, which collapses the
// long shared prefixes sorted text keys have. Front-coding state resets at
// every block boundary so blocks stay independently decodable:
//
//	deltaRec := uvarint(shared) | uvarint(len(suffix)) | suffix |
//	            uvarint(len(value)) | value
//
// Decoders never panic on malformed input: every structural violation —
// bad magic, impossible lengths, truncated payloads, copies reaching
// before the window — surfaces as ErrCorrupt, the same contract
// StreamReader gives raw runs.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"blmr/internal/core"
)

// Compression selects the sealed-run codec.
type Compression uint8

// Available codecs.
const (
	// None seals runs as flat uvarint-framed record streams (the historical
	// format; zero overhead, no header).
	None Compression = iota
	// Block seals runs as LZ-compressed fixed-size blocks.
	Block
	// DeltaBlock is Block with sorted-key front-coding inside each block.
	DeltaBlock
)

var compressionNames = [...]string{"none", "block", "delta"}

func (c Compression) String() string {
	if int(c) >= len(compressionNames) {
		return "unknown"
	}
	return compressionNames[c]
}

// ParseCompression converts a flag string (none|block|delta) to a
// Compression.
func ParseCompression(s string) (Compression, error) {
	for i, n := range compressionNames {
		if s == n {
			return Compression(i), nil
		}
	}
	return 0, fmt.Errorf("codec: unknown compression %q (want none|block|delta)", s)
}

// runMagic opens every compressed run sealed by this version (per-block
// CRCs); runMagicV1 is the PR-4 header (no CRCs), still accepted on decode.
var (
	runMagic   = [4]byte{'B', 'L', 'C', '2'}
	runMagicV1 = [4]byte{'B', 'L', 'C', '1'}
)

// crcTable is the Castagnoli polynomial, the same choice snappy and iSCSI
// made (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	// blockTargetBytes is the raw payload size at which a block is sealed.
	// Small enough that partial section reads decompress little beyond what
	// they consume, large enough for the byte-window to find repetition.
	blockTargetBytes = 32 << 10
	// maxBlockRawBytes rejects implausible block headers before allocating.
	// A single oversized record can legitimately exceed the target (blocks
	// hold whole records), so the cap mirrors StreamReader's string cap.
	maxBlockRawBytes = 1 << 30
	// minMatch is the shortest copy the LZ layer emits.
	minMatch = 4
	// lzTableBits sizes the match hash table.
	lzTableBits = 13
)

// lzCoder is the reusable byte-window compressor state.
type lzCoder struct {
	table [1 << lzTableBits]int32 // position+1 of the last occurrence of a hash
}

func hash4(b []byte) uint32 {
	v := binary.LittleEndian.Uint32(b)
	return (v * 2654435761) >> (32 - lzTableBits)
}

// appendLiterals emits one literal run (no-op for an empty run).
func appendLiterals(dst, lit []byte) []byte {
	if len(lit) == 0 {
		return dst
	}
	dst = binary.AppendUvarint(dst, uint64(len(lit))<<1)
	return append(dst, lit...)
}

// compress appends the LZ encoding of src to dst. The window is src itself
// (reset per block).
func (z *lzCoder) compress(dst, src []byte) []byte {
	for i := range z.table {
		z.table[i] = 0
	}
	litStart := 0
	i := 0
	for i+minMatch <= len(src) {
		h := hash4(src[i:])
		cand := int(z.table[h]) - 1
		z.table[h] = int32(i) + 1
		if cand < 0 || src[cand] != src[i] || src[cand+1] != src[i+1] ||
			src[cand+2] != src[i+2] || src[cand+3] != src[i+3] {
			i++
			continue
		}
		length := minMatch
		for i+length < len(src) && src[cand+length] == src[i+length] {
			length++
		}
		dst = appendLiterals(dst, src[litStart:i])
		dst = binary.AppendUvarint(dst, uint64(length)<<1|1)
		dst = binary.AppendUvarint(dst, uint64(i-cand))
		// Seed the table inside the match so adjacent repetitions still
		// find each other, without paying a full per-byte insertion.
		for j := i + 1; j < i+length && j+minMatch <= len(src); j += 7 {
			z.table[hash4(src[j:])] = int32(j) + 1
		}
		i += length
		litStart = i
	}
	return appendLiterals(dst, src[litStart:])
}

// lzDecompress appends the decompression of src to dst; the result must be
// exactly rawLen bytes or the block is corrupt.
func lzDecompress(dst, src []byte, rawLen int) ([]byte, error) {
	base := len(dst)
	for off := 0; off < len(src); {
		tag, n := binary.Uvarint(src[off:])
		if n <= 0 {
			return dst, fmt.Errorf("%w: bad LZ tag", ErrCorrupt)
		}
		off += n
		ln := int(tag >> 1)
		if tag&1 == 0 {
			if ln <= 0 || off+ln > len(src) || len(dst)-base+ln > rawLen {
				return dst, fmt.Errorf("%w: bad literal run", ErrCorrupt)
			}
			dst = append(dst, src[off:off+ln]...)
			off += ln
			continue
		}
		d, n := binary.Uvarint(src[off:])
		if n <= 0 {
			return dst, fmt.Errorf("%w: bad copy distance", ErrCorrupt)
		}
		off += n
		// Compare the distance as uint64: converting first would let a
		// huge corrupt value wrap negative and slip past the bound.
		if ln < minMatch || d == 0 || d > uint64(len(dst)-base) || len(dst)-base+ln > rawLen {
			return dst, fmt.Errorf("%w: bad copy", ErrCorrupt)
		}
		// Byte-at-a-time: copies may overlap their own output (run-length
		// shapes encode as distance < length).
		start := len(dst) - int(d)
		for k := 0; k < ln; k++ {
			dst = append(dst, dst[start+k])
		}
	}
	if len(dst)-base != rawLen {
		return dst, fmt.Errorf("%w: block decompressed to %d bytes, want %d", ErrCorrupt, len(dst)-base, rawLen)
	}
	return dst, nil
}

// commonPrefixLen returns the length of the longest common prefix.
func commonPrefixLen(a []byte, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// RunEncoder seals one key-sorted record stream as a (possibly compressed)
// run. With a writer, completed blocks stream out incrementally so large
// runs never need run-sized memory; with a nil writer the encoded run
// accumulates internally and Bytes returns it after Flush. Reset reuses
// every internal buffer for the next run. Not safe for concurrent use.
type RunEncoder struct {
	w           io.Writer
	comp        Compression
	blockTarget int
	raw         []byte // current block payload (pre-LZ framing)
	lastKey     []byte // front-coding reference, reset per block
	out         []byte // pending encoded run bytes
	lz          *lzCoder
	scratch     []byte // LZ output scratch
	rawBytes    int64
	headerDone  bool
	err         error
}

// NewRunEncoder creates an encoder for one run. w may be nil (in-memory
// runs: read the result with Bytes after Flush).
func NewRunEncoder(w io.Writer, comp Compression) *RunEncoder {
	e := &RunEncoder{blockTarget: blockTargetBytes}
	e.comp = comp
	if comp != None {
		e.lz = &lzCoder{}
	}
	e.Reset(w)
	return e
}

// Reset prepares the encoder for a new run written to w, keeping the codec
// and the internal buffers.
func (e *RunEncoder) Reset(w io.Writer) {
	e.w = w
	e.raw = e.raw[:0]
	e.lastKey = e.lastKey[:0]
	e.out = e.out[:0]
	e.rawBytes = 0
	e.headerDone = false
	e.err = nil
}

// RawBytes returns the standard (uncompressed) encoded size of every record
// appended since Reset — the number to compare against the sealed size for
// the compression ratio.
func (e *RunEncoder) RawBytes() int64 { return e.rawBytes }

// ScratchBytes approximates the encoder's retained buffer footprint, for
// memory accounting.
func (e *RunEncoder) ScratchBytes() int64 {
	return int64(cap(e.raw) + cap(e.out) + cap(e.scratch))
}

// Append adds one record to the run. Records must arrive in key order for
// DeltaBlock (the spill invariant); None and Block accept any order.
func (e *RunEncoder) Append(r core.Record) error {
	if e.err != nil {
		return e.err
	}
	e.rawBytes += EncodedSize(r)
	switch e.comp {
	case None:
		e.out = AppendRecord(e.out, r)
		return e.maybeWrite()
	case DeltaBlock:
		shared := commonPrefixLen(e.lastKey, r.Key)
		e.raw = binary.AppendUvarint(e.raw, uint64(shared))
		e.raw = binary.AppendUvarint(e.raw, uint64(len(r.Key)-shared))
		e.raw = append(e.raw, r.Key[shared:]...)
		e.raw = binary.AppendUvarint(e.raw, uint64(len(r.Value)))
		e.raw = append(e.raw, r.Value...)
		e.lastKey = append(e.lastKey[:0], r.Key...)
	default: // Block
		e.raw = AppendRecord(e.raw, r)
	}
	if len(e.raw) >= e.blockTarget {
		e.sealBlock()
	}
	return e.err
}

// sealBlock compresses and frames the pending payload as one block.
func (e *RunEncoder) sealBlock() {
	if !e.headerDone {
		e.out = append(e.out, runMagic[:]...)
		e.out = append(e.out, byte(e.comp))
		e.headerDone = true
	}
	if len(e.raw) == 0 {
		return
	}
	e.scratch = e.lz.compress(e.scratch[:0], e.raw)
	payload := e.raw
	tag := uint64(len(e.raw)) << 1
	if len(e.scratch) < len(e.raw) {
		payload = e.scratch
		tag = uint64(len(e.scratch))<<1 | 1
	}
	e.out = binary.AppendUvarint(e.out, uint64(len(e.raw)))
	e.out = binary.AppendUvarint(e.out, tag)
	e.out = binary.LittleEndian.AppendUint32(e.out, crc32.Checksum(payload, crcTable))
	e.out = append(e.out, payload...)
	e.raw = e.raw[:0]
	e.lastKey = e.lastKey[:0] // front-coding restarts per block
	_ = e.maybeWrite()
}

// maybeWrite streams pending output once it is a write's worth.
func (e *RunEncoder) maybeWrite() error {
	if e.w == nil || len(e.out) < 64<<10 {
		return e.err
	}
	return e.writeOut()
}

func (e *RunEncoder) writeOut() error {
	if e.err != nil {
		return e.err
	}
	if _, err := e.w.Write(e.out); err != nil {
		e.err = err
		return err
	}
	e.out = e.out[:0]
	return nil
}

// Flush seals the partial tail block (and the header, so even an empty
// compressed run is self-describing) and writes everything pending. The run
// is complete once Flush returns.
func (e *RunEncoder) Flush() error {
	if e.err != nil {
		return e.err
	}
	if e.comp != None {
		e.sealBlock() // writes the header even when no payload is pending
	}
	if e.w != nil {
		return e.writeOut()
	}
	return e.err
}

// Bytes returns the complete encoded run (nil-writer mode, after Flush).
// The slice is owned by the encoder and valid until the next Reset.
func (e *RunEncoder) Bytes() []byte { return e.out }

// RecordReader is the streaming decode interface shared by the raw
// StreamReader and the compressed block reader: Next is false at end of
// stream or on error, Err distinguishes the two.
type RecordReader interface {
	Next() (core.Record, bool)
	Err() error
}

// NewRunDecoder decodes a sealed run of the given codec from r. For None it
// is the raw StreamReader; for the compressed codecs the run header is
// validated and its kind governs decoding (the header self-describes, so a
// Block reader given a DeltaBlock run still decodes correctly).
func NewRunDecoder(r ByteScanner, comp Compression) RecordReader {
	if comp == None {
		return NewStreamReader(r)
	}
	return &blockReader{r: r}
}

// NewRunDecoderBytes decodes a sealed in-memory run. Like
// NewStreamReaderBytes it returns errors instead of panicking — the only
// sanctioned decoder for buffers of on-disk or wire provenance.
func NewRunDecoderBytes(b []byte, comp Compression) RecordReader {
	return NewRunDecoder(bytes.NewReader(b), comp)
}

// blockReader streams records out of a compressed run, decompressing one
// block at a time.
type blockReader struct {
	r          ByteScanner
	delta      bool
	hasCRC     bool // false for v1 ("BLC1") runs, which carry no block CRCs
	headerDone bool
	block      []byte // decompressed current block payload
	off        int    // cursor within block
	prevKey    []byte // front-coding state within block
	payload    []byte // compressed payload scratch
	arena      *Arena // optional: record strings cut from shared chunks
	err        error
}

// Reset points the reader at a new run, keeping its block and payload
// buffers (and arena).
func (b *blockReader) Reset(r ByteScanner) {
	b.r = r
	b.headerDone = false
	b.block = b.block[:0]
	b.off = 0
	b.prevKey = b.prevKey[:0]
	b.err = nil
}

// Next implements RecordReader.
func (b *blockReader) Next() (core.Record, bool) {
	if b.err != nil {
		return core.Record{}, false
	}
	for b.off >= len(b.block) {
		if !b.nextBlock() {
			return core.Record{}, false
		}
	}
	if b.delta {
		return b.nextDelta()
	}
	key, ok := b.str()
	if !ok {
		return core.Record{}, false
	}
	val, ok := b.str()
	if !ok {
		return core.Record{}, false
	}
	return core.Record{Key: key, Value: val}, true
}

// Err implements RecordReader.
func (b *blockReader) Err() error { return b.err }

// corrupt latches a corruption error.
func (b *blockReader) corrupt(format string, args ...any) bool {
	b.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	return false
}

// nextBlock reads, validates and decompresses the next block. false at
// clean end of run or on error.
func (b *blockReader) nextBlock() bool {
	if !b.headerDone {
		var hdr [5]byte
		if _, err := io.ReadFull(b.r, hdr[:]); err != nil {
			return b.corrupt("truncated run header: %v", err)
		}
		switch [4]byte(hdr[:4]) {
		case runMagic:
			b.hasCRC = true
		case runMagicV1:
			b.hasCRC = false
		default:
			return b.corrupt("bad run magic %q", hdr[:4])
		}
		kind := Compression(hdr[4])
		if kind != Block && kind != DeltaBlock {
			return b.corrupt("bad run codec %d", hdr[4])
		}
		b.delta = kind == DeltaBlock
		b.headerDone = true
	}
	rawLen, err := binary.ReadUvarint(b.r)
	if err != nil {
		if err == io.EOF {
			return false // clean end: the run stops at a block boundary
		}
		return b.corrupt("bad block length: %v", err)
	}
	encTag, err := binary.ReadUvarint(b.r)
	if err != nil {
		return b.corrupt("truncated block header: %v", err)
	}
	encLen, lz := encTag>>1, encTag&1 == 1
	if rawLen == 0 || rawLen > maxBlockRawBytes || encLen == 0 || encLen > rawLen {
		return b.corrupt("implausible block sizes raw=%d enc=%d", rawLen, encLen)
	}
	var wantCRC uint32
	if b.hasCRC {
		var cb [4]byte
		if _, err := io.ReadFull(b.r, cb[:]); err != nil {
			return b.corrupt("truncated block checksum: %v", err)
		}
		wantCRC = binary.LittleEndian.Uint32(cb[:])
	}
	if !b.readPayload(encLen) {
		return false
	}
	if b.hasCRC {
		if got := crc32.Checksum(b.payload, crcTable); got != wantCRC {
			return b.corrupt("block checksum mismatch: got %08x, want %08x", got, wantCRC)
		}
	}
	if lz {
		b.block, err = lzDecompress(b.block[:0], b.payload, int(rawLen))
		if err != nil {
			b.err = err
			return false
		}
	} else {
		if encLen != rawLen {
			return b.corrupt("stored block %d bytes, header says %d", encLen, rawLen)
		}
		b.block = append(b.block[:0], b.payload...)
	}
	b.off = 0
	b.prevKey = b.prevKey[:0]
	return true
}

// readPayload fills b.payload with n compressed bytes, chunked so a corrupt
// (huge) length fails at the first missing byte rather than allocating the
// claimed size up front.
func (b *blockReader) readPayload(n uint64) bool {
	const chunk = 64 << 10
	b.payload = b.payload[:0]
	for remaining := n; remaining > 0; {
		c := uint64(chunk)
		if remaining < c {
			c = remaining
		}
		start := len(b.payload)
		b.payload = append(b.payload, make([]byte, c)...)
		if _, err := io.ReadFull(b.r, b.payload[start:]); err != nil {
			return b.corrupt("truncated block payload: %v", err)
		}
		remaining -= c
	}
	return true
}

// uvarint decodes one varint from the current block.
func (b *blockReader) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(b.block[b.off:])
	if n <= 0 {
		return 0, b.corrupt("bad varint in block at offset %d", b.off)
	}
	b.off += n
	return v, true
}

// bytesN slices n payload bytes from the current block.
func (b *blockReader) bytesN(n uint64) ([]byte, bool) {
	if uint64(len(b.block)-b.off) < n {
		return nil, b.corrupt("truncated record in block at offset %d", b.off)
	}
	s := b.block[b.off : b.off+int(n)]
	b.off += int(n)
	return s, true
}

// str decodes one length-prefixed string from the current block.
func (b *blockReader) str() (string, bool) {
	n, ok := b.uvarint()
	if !ok {
		return "", false
	}
	s, ok := b.bytesN(n)
	if !ok {
		return "", false
	}
	if b.arena != nil {
		return b.arena.String(s), true
	}
	return string(s), true
}

// nextDelta decodes one front-coded record.
func (b *blockReader) nextDelta() (core.Record, bool) {
	shared, ok := b.uvarint()
	if !ok {
		return core.Record{}, false
	}
	if shared > uint64(len(b.prevKey)) {
		return core.Record{}, b.corrupt("shared prefix %d exceeds previous key length %d", shared, len(b.prevKey))
	}
	sufLen, ok := b.uvarint()
	if !ok {
		return core.Record{}, false
	}
	suffix, ok := b.bytesN(sufLen)
	if !ok {
		return core.Record{}, false
	}
	b.prevKey = append(b.prevKey[:int(shared)], suffix...)
	val, ok := b.str()
	if !ok {
		return core.Record{}, false
	}
	key := string(b.prevKey)
	if b.arena != nil {
		key = b.arena.String(b.prevKey)
	}
	return core.Record{Key: key, Value: val}, true
}

// SectionDecoder is a reusable run decoder for section streams of varying
// codecs — the shuffle fetch path resets one per pooled connection instead
// of allocating a fresh decoder (plus block and scratch buffers) for every
// fetched section. Not safe for concurrent use; one section at a time.
type SectionDecoder struct {
	sr StreamReader
	br blockReader
}

// Reset prepares the decoder for one section of the given codec read from
// r, and returns the RecordReader to drain it with (valid until the next
// Reset). A non-nil arena makes record strings share chunk backing — see
// Arena for the retention trade-off.
func (d *SectionDecoder) Reset(r ByteScanner, comp Compression, arena *Arena) RecordReader {
	if comp == None {
		d.sr.Reset(r)
		d.sr.arena = arena
		return &d.sr
	}
	d.br.Reset(r)
	d.br.arena = arena
	return &d.br
}
