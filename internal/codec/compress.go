package codec

// Block-compressed spill runs. A sealed run is normally a flat stream of
// uvarint-framed records (the None codec: exactly the historical format).
// The compressed codecs wrap that stream in a self-describing run header
// followed by fixed-size blocks, so section reads (dfs.OpenRunAt, the
// run-server wire path) stream block by block and only ever decompress the
// blocks they touch:
//
//	run    := "BLC3" | kind byte | block*
//	block  := uvarint(rawLen) | uvarint(encLen<<2 | dict<<1 | lz) |
//	          crc32c(4 bytes LE) | encLen bytes
//
// rawLen is the block payload's size before byte compression; lz=1 means
// the payload is LZ-compressed (lz=0: stored verbatim, used when
// compression would not shrink the block). dict=1 means the LZ stream
// contains at least one copy reaching back into the dictionary window —
// the tail (up to 32KiB) of the previous block's raw payload — which the
// small-run workloads need: a 40KB run used to restart its byte-window
// from scratch every 32KiB block. The bit is only set when a copy actually
// lands in the window, so dict=0 blocks stay independently decodable (and
// eligible for out-of-order parallel decode; see DecodePool). crc32c is
// the Castagnoli CRC of the encLen payload bytes as they sit on disk/wire,
// verified before the block is decompressed, so bit rot is caught at the
// block that broke rather than surfacing as a confusing parse error
// records later (or, for a corrupted stored block, not at all). Blocks
// always hold whole records — a record never straddles a block boundary.
// Decoders also accept the PR-5 "BLC2" header (same framing, tag is
// encLen<<1|lz, never dict-dependent) and the PR-4 "BLC1" header (BLC2
// framing without the CRC word): old sealed runs stay readable.
//
// The LZ layer is snappy-shaped but dependency-free: a greedy byte-window
// compressor emitting varint literal/copy tags, window reset per run (not
// per block — the dictionary carry above):
//
//	op     := uvarint(n<<1)   | n literal bytes          (literal run)
//	        | uvarint(n<<1|1) | uvarint(distance)        (copy, n >= 4)
//
// A copy distance may exceed the bytes decoded so far in the block by up
// to the dictionary window length (dict blocks only).
//
// Block payloads use the standard record framing. DeltaBlock additionally
// front-codes keys before compression, exploiting that spill runs are
// always key-sorted: each record stores the length of the prefix it shares
// with the previous key in the block plus the suffix, which collapses the
// long shared prefixes sorted text keys have. Front-coding state resets at
// every block boundary so blocks stay independently parseable:
//
//	deltaRec := uvarint(shared) | uvarint(len(suffix)) | suffix |
//	            uvarint(len(value)) | value
//
// Decoders never panic on malformed input: every structural violation —
// bad magic, impossible lengths, truncated payloads, copies reaching
// before the window — surfaces as ErrCorrupt, the same contract
// StreamReader gives raw runs.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"blmr/internal/core"
)

// Compression selects the sealed-run codec.
type Compression uint8

// Available codecs.
const (
	// None seals runs as flat uvarint-framed record streams (the historical
	// format; zero overhead, no header).
	None Compression = iota
	// Block seals runs as LZ-compressed fixed-size blocks.
	Block
	// DeltaBlock is Block with sorted-key front-coding inside each block.
	DeltaBlock
)

var compressionNames = [...]string{"none", "block", "delta"}

func (c Compression) String() string {
	if int(c) >= len(compressionNames) {
		return "unknown"
	}
	return compressionNames[c]
}

// ParseCompression converts a flag string (none|block|delta) to a
// Compression.
func ParseCompression(s string) (Compression, error) {
	for i, n := range compressionNames {
		if s == n {
			return Compression(i), nil
		}
	}
	return 0, fmt.Errorf("codec: unknown compression %q (want none|block|delta)", s)
}

// runMagic opens every compressed run sealed by this version (cross-block
// dictionary window); runMagicV2 (per-block CRCs, no dictionary) and
// runMagicV1 (no CRCs) are older headers, still accepted on decode.
var (
	runMagic   = [4]byte{'B', 'L', 'C', '3'}
	runMagicV2 = [4]byte{'B', 'L', 'C', '2'}
	runMagicV1 = [4]byte{'B', 'L', 'C', '1'}
)

// crcTable is the Castagnoli polynomial, the same choice snappy and iSCSI
// made (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	// blockTargetBytes is the raw payload size at which a block is sealed.
	// Small enough that partial section reads decompress little beyond what
	// they consume, large enough for the byte-window to find repetition.
	blockTargetBytes = 32 << 10
	// dictWindowBytes caps the cross-block dictionary: the tail of the
	// previous block's raw payload a copy may reach back into. One block
	// target keeps the encoder's combined window at most two blocks.
	dictWindowBytes = blockTargetBytes
	// maxBlockRawBytes rejects implausible block headers before allocating.
	// A single oversized record can legitimately exceed the target (blocks
	// hold whole records), so the cap mirrors StreamReader's string cap.
	maxBlockRawBytes = 1 << 30
	// minMatch is the shortest copy the LZ layer emits.
	minMatch = 4
	// lzTableBits sizes the match hash table.
	lzTableBits = 13
	// dictSeedStride samples the dictionary window into the match table:
	// a repetition only needs one anchor inside it to be found, so seeding
	// every other position halves the per-block seeding cost.
	dictSeedStride = 2
)

// lzCoder is the reusable byte-window compressor state.
type lzCoder struct {
	table [1 << lzTableBits]int32 // position+1 of the last occurrence of a hash
}

func hash4(b []byte) uint32 {
	v := binary.LittleEndian.Uint32(b)
	return (v * 2654435761) >> (32 - lzTableBits)
}

// appendLiterals emits one literal run (no-op for an empty run).
func appendLiterals(dst, lit []byte) []byte {
	if len(lit) == 0 {
		return dst
	}
	dst = binary.AppendUvarint(dst, uint64(len(lit))<<1)
	return append(dst, lit...)
}

// compress appends the LZ encoding of comb[start:] to dst. comb is the
// dictionary window (comb[:start], the previous block's tail) followed by
// the block payload; copies may reach back into the window, and usedDict
// reports whether any did — when false the encoding decodes with no
// window at all, and the block is marked independently decodable.
func (z *lzCoder) compress(dst, comb []byte, start int) (out []byte, usedDict bool) {
	for i := range z.table {
		z.table[i] = 0
	}
	// Seed the window (sampled): matches against the previous block's tail
	// only need one anchor per repetition to be found.
	for j := 0; j+minMatch <= start; j += dictSeedStride {
		z.table[hash4(comb[j:])] = int32(j) + 1
	}
	litStart := start
	i := start
	for i+minMatch <= len(comb) {
		h := hash4(comb[i:])
		cand := int(z.table[h]) - 1
		z.table[h] = int32(i) + 1
		if cand < 0 || comb[cand] != comb[i] || comb[cand+1] != comb[i+1] ||
			comb[cand+2] != comb[i+2] || comb[cand+3] != comb[i+3] {
			i++
			continue
		}
		length := minMatch
		for i+length < len(comb) && comb[cand+length] == comb[i+length] {
			length++
		}
		if cand < start {
			usedDict = true
		}
		dst = appendLiterals(dst, comb[litStart:i])
		dst = binary.AppendUvarint(dst, uint64(length)<<1|1)
		dst = binary.AppendUvarint(dst, uint64(i-cand))
		// Seed the table inside the match so adjacent repetitions still
		// find each other, without paying a full per-byte insertion.
		for j := i + 1; j < i+length && j+minMatch <= len(comb); j += 7 {
			z.table[hash4(comb[j:])] = int32(j) + 1
		}
		i += length
		litStart = i
	}
	return appendLiterals(dst, comb[litStart:]), usedDict
}

// lzDecompress appends the decompression of src to dst; copies may reach
// back into hist (the dictionary window — nil for independent blocks). The
// result must be exactly rawLen bytes or the block is corrupt.
func lzDecompress(dst, src, hist []byte, rawLen int) ([]byte, error) {
	base := len(dst)
	for off := 0; off < len(src); {
		tag, n := binary.Uvarint(src[off:])
		if n <= 0 {
			return dst, fmt.Errorf("%w: bad LZ tag", ErrCorrupt)
		}
		off += n
		ln := int(tag >> 1)
		if tag&1 == 0 {
			if ln <= 0 || off+ln > len(src) || len(dst)-base+ln > rawLen {
				return dst, fmt.Errorf("%w: bad literal run", ErrCorrupt)
			}
			dst = append(dst, src[off:off+ln]...)
			off += ln
			continue
		}
		d, n := binary.Uvarint(src[off:])
		if n <= 0 {
			return dst, fmt.Errorf("%w: bad copy distance", ErrCorrupt)
		}
		off += n
		produced := len(dst) - base
		// Compare the distance as uint64: converting first would let a
		// huge corrupt value wrap negative and slip past the bound.
		if ln < minMatch || d == 0 || d > uint64(produced+len(hist)) || produced+ln > rawLen {
			return dst, fmt.Errorf("%w: bad copy", ErrCorrupt)
		}
		if int(d) <= produced {
			// Byte-at-a-time: copies may overlap their own output
			// (run-length shapes encode as distance < length).
			start := len(dst) - int(d)
			for k := 0; k < ln; k++ {
				dst = append(dst, dst[start+k])
			}
			continue
		}
		// The copy starts inside the dictionary window; it may run off the
		// window's end into this block's own output.
		hs := len(hist) - (int(d) - produced)
		for k := 0; k < ln; k++ {
			if hs+k < len(hist) {
				dst = append(dst, hist[hs+k])
			} else {
				dst = append(dst, dst[base+hs+k-len(hist)])
			}
		}
	}
	if len(dst)-base != rawLen {
		return dst, fmt.Errorf("%w: block decompressed to %d bytes, want %d", ErrCorrupt, len(dst)-base, rawLen)
	}
	return dst, nil
}

// dictTail returns the dictionary window a block following `raw` may copy
// from: the window-capped tail of the raw payload.
func dictTail(raw []byte) []byte {
	if len(raw) > dictWindowBytes {
		return raw[len(raw)-dictWindowBytes:]
	}
	return raw
}

// commonPrefixLen returns the length of the longest common prefix.
func commonPrefixLen(a []byte, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// RunEncoder seals one key-sorted record stream as a (possibly compressed)
// run. With a writer, completed blocks stream out incrementally so large
// runs never need run-sized memory; with a nil writer the encoded run
// accumulates internally and Bytes returns it after Flush. Reset reuses
// every internal buffer for the next run. Not safe for concurrent use.
type RunEncoder struct {
	w           io.Writer
	comp        Compression
	blockTarget int
	raw         []byte // current block payload (pre-LZ framing)
	hist        []byte // previous block's dictionary tail
	comb        []byte // hist ++ raw, the LZ window for one sealBlock
	lastKey     []byte // front-coding reference, reset per block
	out         []byte // pending encoded run bytes
	lz          *lzCoder
	scratch     []byte // LZ output scratch
	rawBytes    int64
	headerDone  bool
	err         error
}

// NewRunEncoder creates an encoder for one run. w may be nil (in-memory
// runs: read the result with Bytes after Flush).
func NewRunEncoder(w io.Writer, comp Compression) *RunEncoder {
	e := &RunEncoder{blockTarget: blockTargetBytes}
	e.comp = comp
	if comp != None {
		e.lz = &lzCoder{}
	}
	e.Reset(w)
	return e
}

// Reset prepares the encoder for a new run written to w, keeping the codec
// and the internal buffers.
func (e *RunEncoder) Reset(w io.Writer) {
	e.w = w
	e.raw = e.raw[:0]
	e.hist = e.hist[:0]
	e.lastKey = e.lastKey[:0]
	e.out = e.out[:0]
	e.rawBytes = 0
	e.headerDone = false
	e.err = nil
}

// RawBytes returns the standard (uncompressed) encoded size of every record
// appended since Reset — the number to compare against the sealed size for
// the compression ratio.
func (e *RunEncoder) RawBytes() int64 { return e.rawBytes }

// ScratchBytes approximates the encoder's retained buffer footprint, for
// memory accounting.
func (e *RunEncoder) ScratchBytes() int64 {
	return int64(cap(e.raw) + cap(e.out) + cap(e.scratch) + cap(e.hist) + cap(e.comb))
}

// Append adds one record to the run. Records must arrive in key order for
// DeltaBlock (the spill invariant); None and Block accept any order.
func (e *RunEncoder) Append(r core.Record) error {
	if e.err != nil {
		return e.err
	}
	e.rawBytes += EncodedSize(r)
	switch e.comp {
	case None:
		e.out = AppendRecord(e.out, r)
		return e.maybeWrite()
	case DeltaBlock:
		shared := commonPrefixLen(e.lastKey, r.Key)
		e.raw = binary.AppendUvarint(e.raw, uint64(shared))
		e.raw = binary.AppendUvarint(e.raw, uint64(len(r.Key)-shared))
		e.raw = append(e.raw, r.Key[shared:]...)
		e.raw = binary.AppendUvarint(e.raw, uint64(len(r.Value)))
		e.raw = append(e.raw, r.Value...)
		e.lastKey = append(e.lastKey[:0], r.Key...)
	default: // Block
		e.raw = AppendRecord(e.raw, r)
	}
	if len(e.raw) >= e.blockTarget {
		e.sealBlock()
	}
	return e.err
}

// sealBlock compresses and frames the pending payload as one block.
func (e *RunEncoder) sealBlock() {
	if !e.headerDone {
		e.out = append(e.out, runMagic[:]...)
		e.out = append(e.out, byte(e.comp))
		e.headerDone = true
	}
	if len(e.raw) == 0 {
		return
	}
	// The LZ window is the previous block's dictionary tail followed by
	// this block's payload — copies may reach across the block boundary.
	e.comb = append(append(e.comb[:0], e.hist...), e.raw...)
	var usedDict bool
	e.scratch, usedDict = e.lz.compress(e.scratch[:0], e.comb, len(e.hist))
	payload := e.raw
	tag := uint64(len(e.raw)) << 2
	if len(e.scratch) < len(e.raw) {
		payload = e.scratch
		tag = uint64(len(e.scratch))<<2 | 1
		if usedDict {
			tag |= 2
		}
	}
	e.out = binary.AppendUvarint(e.out, uint64(len(e.raw)))
	e.out = binary.AppendUvarint(e.out, tag)
	e.out = binary.LittleEndian.AppendUint32(e.out, crc32.Checksum(payload, crcTable))
	e.out = append(e.out, payload...)
	e.hist = append(e.hist[:0], dictTail(e.raw)...)
	e.raw = e.raw[:0]
	e.lastKey = e.lastKey[:0] // front-coding restarts per block
	_ = e.maybeWrite()
}

// maybeWrite streams pending output once it is a write's worth.
func (e *RunEncoder) maybeWrite() error {
	if e.w == nil || len(e.out) < 64<<10 {
		return e.err
	}
	return e.writeOut()
}

func (e *RunEncoder) writeOut() error {
	if e.err != nil {
		return e.err
	}
	if _, err := e.w.Write(e.out); err != nil {
		e.err = err
		return err
	}
	e.out = e.out[:0]
	return nil
}

// Flush seals the partial tail block (and the header, so even an empty
// compressed run is self-describing) and writes everything pending. The run
// is complete once Flush returns.
func (e *RunEncoder) Flush() error {
	if e.err != nil {
		return e.err
	}
	if e.comp != None {
		e.sealBlock() // writes the header even when no payload is pending
	}
	if e.w != nil {
		return e.writeOut()
	}
	return e.err
}

// Bytes returns the complete encoded run (nil-writer mode, after Flush).
// The slice is owned by the encoder and valid until the next Reset.
func (e *RunEncoder) Bytes() []byte { return e.out }

// RecordReader is the streaming decode interface shared by the raw
// StreamReader and the compressed block reader: Next is false at end of
// stream or on error, Err distinguishes the two.
type RecordReader interface {
	Next() (core.Record, bool)
	Err() error
}

// NewRunDecoder decodes a sealed run of the given codec from r. For None it
// is the raw StreamReader; for the compressed codecs the run header is
// validated and its kind governs decoding (the header self-describes, so a
// Block reader given a DeltaBlock run still decodes correctly).
func NewRunDecoder(r ByteScanner, comp Compression) RecordReader {
	if comp == None {
		return NewStreamReader(r)
	}
	return &blockReader{r: r}
}

// NewRunDecoderBytes decodes a sealed in-memory run. Like
// NewStreamReaderBytes it returns errors instead of panicking — the only
// sanctioned decoder for buffers of on-disk or wire provenance.
func NewRunDecoderBytes(b []byte, comp Compression) RecordReader {
	return NewRunDecoder(bytes.NewReader(b), comp)
}

// runHeader is the decoded 5-byte run preamble.
type runHeader struct {
	ver   uint8 // 1 = BLC1 (no CRC), 2 = BLC2, 3 = BLC3 (dict window)
	delta bool
}

// readRunHeader reads and validates the run preamble.
func readRunHeader(r ByteScanner) (runHeader, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return runHeader{}, fmt.Errorf("%w: truncated run header: %v", ErrCorrupt, err)
	}
	var h runHeader
	switch [4]byte(hdr[:4]) {
	case runMagic:
		h.ver = 3
	case runMagicV2:
		h.ver = 2
	case runMagicV1:
		h.ver = 1
	default:
		return runHeader{}, fmt.Errorf("%w: bad run magic %q", ErrCorrupt, hdr[:4])
	}
	kind := Compression(hdr[4])
	if kind != Block && kind != DeltaBlock {
		return runHeader{}, fmt.Errorf("%w: bad run codec %d", ErrCorrupt, hdr[4])
	}
	h.delta = kind == DeltaBlock
	return h, nil
}

// blockFrame is one block as framed on disk/wire: the undecoded payload
// plus everything needed to verify and decode it.
type blockFrame struct {
	rawLen  int
	lz      bool
	dict    bool // payload copies reach into the previous block's tail
	hasCRC  bool
	crc     uint32
	payload []byte // on-wire payload bytes (reused across frames)
}

// readBlockFrame reads the next block frame from r into f, reusing
// f.payload. It returns false at the clean end of the run; every other
// shortfall is an error.
func readBlockFrame(r ByteScanner, ver uint8, f *blockFrame) (bool, error) {
	rawLen, err := binary.ReadUvarint(r)
	if err != nil {
		if err == io.EOF {
			return false, nil // clean end: the run stops at a block boundary
		}
		return false, fmt.Errorf("%w: bad block length: %v", ErrCorrupt, err)
	}
	encTag, err := binary.ReadUvarint(r)
	if err != nil {
		return false, fmt.Errorf("%w: truncated block header: %v", ErrCorrupt, err)
	}
	var encLen uint64
	if ver >= 3 {
		encLen = encTag >> 2
		f.lz = encTag&1 == 1
		f.dict = encTag&2 == 2
	} else {
		encLen = encTag >> 1
		f.lz = encTag&1 == 1
		f.dict = false
	}
	if rawLen == 0 || rawLen > maxBlockRawBytes || encLen == 0 || encLen > rawLen {
		return false, fmt.Errorf("%w: implausible block sizes raw=%d enc=%d", ErrCorrupt, rawLen, encLen)
	}
	if f.dict && !f.lz {
		return false, fmt.Errorf("%w: stored block flagged dictionary-dependent", ErrCorrupt)
	}
	f.rawLen = int(rawLen)
	f.hasCRC = ver >= 2
	if f.hasCRC {
		var cb [4]byte
		if _, err := io.ReadFull(r, cb[:]); err != nil {
			return false, fmt.Errorf("%w: truncated block checksum: %v", ErrCorrupt, err)
		}
		f.crc = binary.LittleEndian.Uint32(cb[:])
	}
	// Fill the payload chunked, so a corrupt (huge) length fails at the
	// first missing byte rather than allocating the claimed size up front.
	const chunk = 64 << 10
	f.payload = f.payload[:0]
	for remaining := encLen; remaining > 0; {
		c := uint64(chunk)
		if remaining < c {
			c = remaining
		}
		start := len(f.payload)
		f.payload = append(f.payload, make([]byte, c)...)
		if _, err := io.ReadFull(r, f.payload[start:]); err != nil {
			return false, fmt.Errorf("%w: truncated block payload: %v", ErrCorrupt, err)
		}
		remaining -= c
	}
	return true, nil
}

// decodeBlockPayload CRC-verifies and decompresses one framed block,
// appending the raw payload to dst. hist is the previous block's dictionary
// tail (ignored unless the frame is dictionary-dependent). This is the
// CPU-heavy half of block decode, safe to run off the consuming goroutine
// (it touches only the frame, hist, and dst).
func decodeBlockPayload(dst []byte, f *blockFrame, hist []byte) ([]byte, error) {
	if f.hasCRC {
		if got := crc32.Checksum(f.payload, crcTable); got != f.crc {
			return dst, fmt.Errorf("%w: block checksum mismatch: got %08x, want %08x", ErrCorrupt, got, f.crc)
		}
	}
	if !f.lz {
		if len(f.payload) != f.rawLen {
			return dst, fmt.Errorf("%w: stored block %d bytes, header says %d", ErrCorrupt, len(f.payload), f.rawLen)
		}
		return append(dst, f.payload...), nil
	}
	if !f.dict {
		hist = nil
	} else if len(hist) == 0 {
		return dst, fmt.Errorf("%w: dictionary-dependent block with no preceding block", ErrCorrupt)
	}
	return lzDecompress(dst, f.payload, hist, f.rawLen)
}

// blockParser cuts records out of one decoded block payload. It is the
// stateful, arena-touching half of block decode and must stay on the
// consuming goroutine; setBlock hands it the next decoded payload.
type blockParser struct {
	delta   bool
	block   []byte // decoded current block payload
	off     int    // cursor within block
	prevKey []byte // front-coding state within block
	arena   *Arena // optional: record strings cut from shared chunks
	err     error
}

// setBlock points the parser at the next decoded block payload.
func (p *blockParser) setBlock(b []byte) {
	p.block = b
	p.off = 0
	p.prevKey = p.prevKey[:0] // front-coding restarts per block
}

// exhausted reports whether the current block is fully parsed.
func (p *blockParser) exhausted() bool { return p.off >= len(p.block) }

// next parses one record; false when the block is exhausted or corrupt.
func (p *blockParser) next() (core.Record, bool) {
	if p.err != nil || p.exhausted() {
		return core.Record{}, false
	}
	if p.delta {
		return p.nextDelta()
	}
	key, ok := p.str()
	if !ok {
		return core.Record{}, false
	}
	val, ok := p.str()
	if !ok {
		return core.Record{}, false
	}
	return core.Record{Key: key, Value: val}, true
}

// corrupt latches a corruption error.
func (p *blockParser) corrupt(format string, args ...any) bool {
	p.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	return false
}

// uvarint decodes one varint from the current block.
func (p *blockParser) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(p.block[p.off:])
	if n <= 0 {
		return 0, p.corrupt("bad varint in block at offset %d", p.off)
	}
	p.off += n
	return v, true
}

// bytesN slices n payload bytes from the current block.
func (p *blockParser) bytesN(n uint64) ([]byte, bool) {
	if uint64(len(p.block)-p.off) < n {
		return nil, p.corrupt("truncated record in block at offset %d", p.off)
	}
	s := p.block[p.off : p.off+int(n)]
	p.off += int(n)
	return s, true
}

// str decodes one length-prefixed string from the current block.
func (p *blockParser) str() (string, bool) {
	n, ok := p.uvarint()
	if !ok {
		return "", false
	}
	s, ok := p.bytesN(n)
	if !ok {
		return "", false
	}
	if p.arena != nil {
		return p.arena.String(s), true
	}
	return string(s), true
}

// nextDelta decodes one front-coded record.
func (p *blockParser) nextDelta() (core.Record, bool) {
	shared, ok := p.uvarint()
	if !ok {
		return core.Record{}, false
	}
	if shared > uint64(len(p.prevKey)) {
		return core.Record{}, p.corrupt("shared prefix %d exceeds previous key length %d", shared, len(p.prevKey))
	}
	sufLen, ok := p.uvarint()
	if !ok {
		return core.Record{}, false
	}
	suffix, ok := p.bytesN(sufLen)
	if !ok {
		return core.Record{}, false
	}
	p.prevKey = append(p.prevKey[:int(shared)], suffix...)
	val, ok := p.str()
	if !ok {
		return core.Record{}, false
	}
	key := string(p.prevKey)
	if p.arena != nil {
		key = p.arena.String(p.prevKey)
	}
	return core.Record{Key: key, Value: val}, true
}

// blockReader streams records out of a compressed run serially,
// decompressing one block at a time on the calling goroutine. Two block
// buffers alternate so the previous block's tail stays live as the next
// block's dictionary window without a copy.
type blockReader struct {
	r          ByteScanner
	hdr        runHeader
	headerDone bool
	frame      blockFrame
	p          blockParser
	spare      []byte // the other half of the double buffer
	arena      *Arena
	err        error
}

// Reset points the reader at a new run, keeping its block and payload
// buffers (and arena).
func (b *blockReader) Reset(r ByteScanner) {
	b.r = r
	b.headerDone = false
	b.p.setBlock(b.p.block[:0])
	b.p.err = nil
	b.err = nil
}

// Next implements RecordReader.
func (b *blockReader) Next() (core.Record, bool) {
	if b.err != nil {
		return core.Record{}, false
	}
	for b.p.exhausted() {
		if !b.nextBlock() {
			return core.Record{}, false
		}
	}
	rec, ok := b.p.next()
	if !ok {
		b.err = b.p.err
	}
	return rec, ok
}

// Err implements RecordReader.
func (b *blockReader) Err() error { return b.err }

// nextBlock reads, validates and decompresses the next block. false at
// clean end of run or on error.
func (b *blockReader) nextBlock() bool {
	if !b.headerDone {
		hdr, err := readRunHeader(b.r)
		if err != nil {
			b.err = err
			return false
		}
		b.hdr = hdr
		b.p.delta = hdr.delta
		b.p.arena = b.arena
		b.headerDone = true
	}
	ok, err := readBlockFrame(b.r, b.hdr.ver, &b.frame)
	if err != nil {
		b.err = err
		return false
	}
	if !ok {
		return false
	}
	// Swap buffers: the block just drained becomes spare scratch, and its
	// bytes stay valid as the dictionary window for this decode.
	prev := b.p.block
	next, err := decodeBlockPayload(b.spare[:0], &b.frame, dictTail(prev))
	b.spare = prev
	if err != nil {
		b.err = err
		return false
	}
	b.p.setBlock(next)
	return true
}

// SectionDecoder is a reusable run decoder for section streams of varying
// codecs — the shuffle fetch path resets one per pooled connection instead
// of allocating a fresh decoder (plus block and scratch buffers) for every
// fetched section. Not safe for concurrent use; one section at a time.
type SectionDecoder struct {
	sr StreamReader
	br blockReader
}

// Reset prepares the decoder for one section of the given codec read from
// r, and returns the RecordReader to drain it with (valid until the next
// Reset). A non-nil arena makes record strings share chunk backing — see
// Arena for the retention trade-off.
func (d *SectionDecoder) Reset(r ByteScanner, comp Compression, arena *Arena) RecordReader {
	if comp == None {
		d.sr.Reset(r)
		d.sr.arena = arena
		return &d.sr
	}
	d.br.Reset(r)
	d.br.arena = arena
	return &d.br
}
