package codec

import (
	"bytes"
	"errors"
	"runtime"
	"testing"
	"time"

	"blmr/internal/core"
)

// drainParallel decodes buf through a ParallelReader on a fresh pool.
func drainParallel(t *testing.T, buf []byte, workers int, arena *Arena) ([]core.Record, error) {
	t.Helper()
	pool := NewDecodePool(workers)
	defer pool.Close()
	pr := NewParallelReader(pool, bytes.NewReader(buf), arena)
	var got []core.Record
	for {
		r, ok := pr.Next()
		if !ok {
			break
		}
		got = append(got, r)
	}
	return got, pr.Err()
}

// TestParallelDecodeMatchesSerial: the pipeline must yield the exact
// record sequence of the serial blockReader at every worker count, across
// codecs, arenas, and run versions (the determinism contract the shuffle
// merger depends on).
func TestParallelDecodeMatchesSerial(t *testing.T) {
	recs := crcTestRecords(8000) // several blocks, dict-dependent chains
	for _, comp := range []Compression{Block, DeltaBlock} {
		sealed := sealRun(t, recs, comp)
		small := sealRun(t, crcTestRecords(500), comp)
		runs := [][]byte{sealed, downgradeRun(t, small, 1), downgradeRun(t, small, 2)}
		for ri, buf := range runs {
			want := decodeAll(t, buf, comp)
			for _, workers := range []int{1, 4, 16} {
				for _, useArena := range []bool{false, true} {
					var arena *Arena
					if useArena {
						arena = &Arena{}
					}
					got, err := drainParallel(t, buf, workers, arena)
					if err != nil {
						t.Fatalf("%v run %d workers %d: %v", comp, ri, workers, err)
					}
					if len(got) != len(want) {
						t.Fatalf("%v run %d workers %d: %d records, want %d", comp, ri, workers, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%v run %d workers %d record %d: %v vs %v", comp, ri, workers, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestParallelDecodeCorruptBlock: a bit flip mid-run must surface
// ErrCorrupt from the pipeline without hanging and without leaking the
// reader goroutine or the workers.
func TestParallelDecodeCorruptBlock(t *testing.T) {
	recs := crcTestRecords(8000)
	buf := sealRun(t, recs, Block)
	before := runtime.NumGoroutine()
	for _, off := range []int{16, len(buf) / 2, len(buf) - 3} {
		mut := append([]byte(nil), buf...)
		mut[off] ^= 0x20
		_, err := drainParallel(t, mut, 4, nil)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: err=%v, want ErrCorrupt", off, err)
		}
	}
	// Truncations mid-block must also error, not hang the reader stage.
	for _, cut := range []int{7, len(buf) / 3, len(buf) - 1} {
		_, err := drainParallel(t, buf[:cut], 4, nil)
		if err == nil {
			t.Fatalf("cut at %d decoded cleanly", cut)
		}
	}
	// All pools above were closed; give exited goroutines a beat to die.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestParallelReaderStopMidSection: abandoning a half-consumed run must
// quiesce the pipeline (Stop returns only when the reader goroutine has
// exited) and stay idempotent.
func TestParallelReaderStopMidSection(t *testing.T) {
	buf := sealRun(t, crcTestRecords(8000), DeltaBlock)
	pool := NewDecodePool(4)
	defer pool.Close()
	for i := 0; i < 50; i++ {
		pr := NewParallelReader(pool, bytes.NewReader(buf), nil)
		for j := 0; j < i*7; j++ {
			if _, ok := pr.Next(); !ok {
				break
			}
		}
		pr.Stop()
		pr.Stop() // idempotent
	}
}

// TestParallelDecodeAfterPoolClose: sections opened against a closed pool
// fall back to inline decode and still finish correctly.
func TestParallelDecodeAfterPoolClose(t *testing.T) {
	recs := crcTestRecords(8000)
	buf := sealRun(t, recs, Block)
	pool := NewDecodePool(4)
	pool.Close()
	pr := NewParallelReader(pool, bytes.NewReader(buf), nil)
	n := 0
	for {
		if _, ok := pr.Next(); !ok {
			break
		}
		n++
	}
	if err := pr.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(recs) {
		t.Fatalf("decoded %d records, want %d", n, len(recs))
	}
}
