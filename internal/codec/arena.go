package codec

import "unsafe"

// arenaChunkBytes is the allocation granularity of an Arena. Large enough
// to amortize away per-record allocations, small enough that a stray
// retained string pins little.
const arenaChunkBytes = 64 << 10

// Arena allocates record strings out of append-only chunks, so a decode
// path that would otherwise pay two heap allocations per record (key and
// value) pays one per 64KiB of decoded data. Strings returned by String
// are immutable views into a chunk and stay valid forever — the chunk is
// garbage-collected only once every string cut from it is dead.
//
// The trade: strings from one chunk share backing memory, so RETAINING one
// record's key or value keeps its whole chunk (≤64KiB plus neighbouring
// records) alive. Arena decoding therefore suits streaming consumers that
// fold or copy what they keep (the external merge's group reduce, stores
// that clone keys); long-lived indexes over raw decoded strings should
// strings.Clone what they retain or decode without an arena.
//
// Not safe for concurrent use.
type Arena struct {
	buf []byte
}

// String copies b into the arena and returns it as a string.
func (a *Arena) String(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(a.buf)+len(b) > cap(a.buf) {
		n := arenaChunkBytes
		if len(b) > n {
			n = len(b)
		}
		// The old chunk is abandoned, not freed: strings already cut from
		// it keep it alive exactly as long as they need it.
		a.buf = make([]byte, 0, n)
	}
	off := len(a.buf)
	a.buf = append(a.buf, b...)
	// The bytes at [off, off+len(b)) are written exactly once, before the
	// unsafe.String view exists, and never mutated after — the same
	// discipline rbtree's key slabs use.
	return unsafe.String(&a.buf[off], len(b))
}
