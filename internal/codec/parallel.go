package codec

// The parallel block-decode pipeline. The serial blockReader CRC-verifies
// and decompresses every block inline in the consuming goroutine — on the
// shuffle fetch path that is the merger's goroutine, so decompression and
// merging serialize. DecodePool splits block decode into its two halves:
// a reader stage (ParallelReader's goroutine) that frames blocks off the
// section stream and submits them to a bounded worker pool, and the
// consuming goroutine, which receives decoded blocks strictly in stream
// order over a bounded futures channel and parses records out of them
// (the arena-touching half, which must stay single-threaded). CRC checks
// and LZ decompression overlap the merge and each other; record order is
// byte-identical to the serial path because blocks are handed to the
// parser in submission order and parsed serially.
//
// Dictionary-dependent blocks (the BLC3 dict bit) chain on their
// predecessor's decoded payload: such a job waits on the previous job's
// completion before decoding. This cannot deadlock — workers take jobs in
// FIFO submission order and run each to completion, so the earliest
// in-flight job's predecessor has always already been taken (and, by
// induction, completes).
//
// Corruption keeps the serial path's contract: the consumer surfaces
// ErrCorrupt at the offending block, after which the pipeline is drained
// synchronously — when Next reports the failure the reader goroutine has
// already exited and the underlying stream is quiescent, so connection
// recovery can sever or reuse it without racing the pipeline.

import (
	"fmt"
	"sync"

	"blmr/internal/core"
)

// DecodePool is a shared pool of block-decode workers, sized once per
// fetch plane (FetchPool wires one across every pooled connection).
type DecodePool struct {
	jobs    chan *decodeJob
	wg      sync.WaitGroup
	workers int

	mu     sync.RWMutex
	closed bool
}

// NewDecodePool starts workers goroutines decoding submitted blocks.
func NewDecodePool(workers int) *DecodePool {
	if workers < 1 {
		workers = 1
	}
	p := &DecodePool{jobs: make(chan *decodeJob, workers*2), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers reports the pool's concurrency.
func (p *DecodePool) Workers() int { return p.workers }

func (p *DecodePool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		j.run()
	}
}

// submit hands one job to the workers; false once the pool is closed (the
// caller decodes inline). The read lock pins the jobs channel open across
// the send, so a concurrent Close never closes a channel mid-send.
func (p *DecodePool) submit(j *decodeJob) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	p.jobs <- j
	return true
}

// Close drains queued jobs and stops the workers. In-flight readers fall
// back to inline decode, so sections being consumed still complete.
func (p *DecodePool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.jobs)
	p.wg.Wait()
}

// decodeJob is one block moving through the pipeline: framed by the
// reader, decoded by a worker (or inline), consumed in order.
type decodeJob struct {
	frame blockFrame
	prev  *decodeJob // set for dict blocks: predecessor's payload is the window
	block []byte     // decoded payload
	err   error
	done  chan struct{}
}

// run decodes the job and signals completion. Dict blocks first wait for
// their predecessor (see the deadlock-freedom argument in the package
// comment).
func (j *decodeJob) run() {
	var hist []byte
	if j.prev != nil {
		<-j.prev.done
		if j.prev.err != nil {
			j.err = fmt.Errorf("%w: block follows a corrupt block", ErrCorrupt)
			close(j.done)
			return
		}
		hist = dictTail(j.prev.block)
	}
	j.block, j.err = decodeBlockPayload(j.block[:0], &j.frame, hist)
	close(j.done)
}

// jobPool recycles decode jobs (their payload and block buffers) across
// blocks and sections.
var jobPool = sync.Pool{New: func() any { return &decodeJob{} }}

// recycleJob returns a job whose buffers are certainly unreferenced: the
// consumer calls it for job i-1 only after observing job i's completion,
// since job i's worker may read i-1's decoded payload as its dictionary.
func recycleJob(j *decodeJob) {
	j.prev = nil
	j.err = nil
	j.done = nil
	jobPool.Put(j)
}

// ParallelReader is a RecordReader decoding one compressed run with a
// DecodePool. Create per section with NewParallelReader; call Stop to
// abandon a partially consumed section (idempotent; implied by a clean end
// or a decode error). Not safe for concurrent use by multiple consumers.
type ParallelReader struct {
	pool    *DecodePool
	parser  blockParser
	futures chan *decodeJob
	stopc   chan struct{}
	cur     *decodeJob
	delta   bool  // written by the reader goroutine before the first send
	readErr error // written by the reader goroutine before closing futures
	err     error
	started bool
	stopped bool
}

// NewParallelReader starts decoding the compressed run from r (any block
// codec; the header self-describes). A non-nil arena backs record strings
// as in SectionDecoder. The reader goroutine owns r until the run ends,
// Stop returns, or Next reports an error — only then may the caller touch
// the underlying stream again.
func NewParallelReader(pool *DecodePool, r ByteScanner, arena *Arena) *ParallelReader {
	pr := &ParallelReader{
		pool: pool,
		// The futures depth bounds read-ahead: at most cap in-flight
		// decoded-or-decoding blocks per section beyond the one consumed.
		futures: make(chan *decodeJob, pool.workers+2),
		stopc:   make(chan struct{}),
	}
	pr.parser.arena = arena
	pr.started = true
	go pr.readLoop(r)
	return pr
}

// readLoop frames blocks off the stream and feeds the pool, in order.
func (pr *ParallelReader) readLoop(r ByteScanner) {
	defer close(pr.futures)
	hdr, err := readRunHeader(r)
	if err != nil {
		pr.readErr = err
		return
	}
	pr.delta = hdr.delta
	var prev *decodeJob
	for {
		j := jobPool.Get().(*decodeJob)
		j.done = make(chan struct{})
		ok, err := readBlockFrame(r, hdr.ver, &j.frame)
		if err != nil || !ok {
			recycleJob(j)
			pr.readErr = err
			return
		}
		if j.frame.dict {
			j.prev = prev
		}
		// Submit before exposing to the consumer, so a received job always
		// completes; a closed pool decodes inline.
		if !pr.pool.submit(j) {
			j.run()
		}
		prev = j
		select {
		case pr.futures <- j:
		case <-pr.stopc:
			return
		}
	}
}

// advance installs the next decoded block into the parser. false at end of
// run or on error (pr.err distinguishes).
func (pr *ParallelReader) advance() bool {
	j, ok := <-pr.futures
	if !ok {
		pr.stopped = true // reader exited on its own
		pr.err = pr.readErr
		return false
	}
	<-j.done
	j.prev = nil // settled: never read after done, don't pin the chain
	if j.err != nil {
		pr.err = j.err
		pr.Stop()
		return false
	}
	// The departing block can only have been a dictionary source for j,
	// which is complete — its buffers are free now, not before.
	if pr.cur != nil {
		recycleJob(pr.cur)
	}
	pr.cur = j
	pr.parser.delta = pr.delta
	pr.parser.setBlock(j.block)
	return true
}

// Next implements RecordReader.
func (pr *ParallelReader) Next() (core.Record, bool) {
	if pr.err != nil {
		return core.Record{}, false
	}
	for pr.parser.exhausted() {
		if !pr.advance() {
			return core.Record{}, false
		}
	}
	rec, ok := pr.parser.next()
	if !ok {
		pr.err = pr.parser.err
		pr.Stop()
	}
	return rec, ok
}

// Err implements RecordReader.
func (pr *ParallelReader) Err() error { return pr.err }

// Stop abandons the pipeline: it halts the reader goroutine and waits for
// every in-flight block, so when it returns nothing references the
// underlying stream or the pool. Idempotent.
func (pr *ParallelReader) Stop() {
	if pr.stopped {
		return
	}
	pr.stopped = true
	close(pr.stopc)
	// Draining to the close marks the reader goroutine's exit. Waiting on
	// each job keeps buffer recycling honest (a drained job's successor may
	// still be reading it), so none of these are recycled here.
	for j := range pr.futures {
		<-j.done
	}
}
