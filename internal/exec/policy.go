package exec

// Pluggable task placement. A Policy sees a snapshot of every live worker
// (slots, queue depth, cross-job pool load, resident sealed runs) and picks
// the worker a task should run on — the "policy callback over instance
// snapshots" shape the inference-sim ClusterSimulator mock study uses for
// request routing, applied to MapReduce task placement. The scheduler calls
// the policy whenever a task enters (or re-enters) the pending state:
// initially, on a worker-lost requeue, on a resubmission, and when the
// worker a task was parked on dies.
//
// Placement is a *preference queue*, not a work-conserving grab: a task
// routed to a busy worker waits for that worker even while another sits
// idle. That is what makes the policies distinguishable (a round-robin
// stripe can overload worker 0 while worker 2 idles — the pathology
// least-loaded exists to fix) and it mirrors how the simulator models
// per-node task queues. A nil Policy keeps the engine's historical
// behavior: any free slot pulls any pending task.

import (
	"fmt"
	"sync"
)

// WorkerSnapshot is one live worker's state as the policy sees it.
type WorkerSnapshot struct {
	// ID is the worker's stable index in the scheduler's worker list (and,
	// when a SlotPool is attached, in the pool).
	ID int
	// Name is the worker's display name.
	Name string
	// MapSlots / ReduceSlots are this job's per-kind slot budget on the
	// worker.
	MapSlots    int
	ReduceSlots int
	// MapRunning / ReduceRunning count this job's in-flight tasks on the
	// worker.
	MapRunning    int
	ReduceRunning int
	// MapQueued / ReduceQueued count this job's pending tasks already
	// routed to the worker.
	MapQueued    int
	ReduceQueued int
	// PoolMapRunning / PoolReduceRunning count running tasks of each kind
	// on the worker across every job sharing the SlotPool (this job
	// included). Without a pool they equal MapRunning / ReduceRunning.
	PoolMapRunning    int
	PoolReduceRunning int
	// ResidentRuns counts sealed map outputs resident on the worker that
	// the task would consume (reduce tasks only; 0 when the engine has no
	// locality information).
	ResidentRuns int
}

// Load is the snapshot's total queue depth: everything routed to or
// running on the worker, cross-job work included.
func (s WorkerSnapshot) Load() int {
	return s.MapQueued + s.ReduceQueued + s.PoolMapRunning + s.PoolReduceRunning
}

// KindLoad is the queue depth one task kind competes with: same-kind
// routed tasks plus same-kind pool-wide running tasks. The split matters:
// overlapped reduce tasks spend most of their life parked on routes, so
// counting them against map placement lets a node's parked reduces mask
// the maps serializing on a sibling — on a skewed job stream that
// collapses least-loaded into round-robin's exact layout.
func (s WorkerSnapshot) KindLoad(mapKind bool) int {
	if mapKind {
		return s.MapQueued + s.PoolMapRunning
	}
	return s.ReduceQueued + s.PoolReduceRunning
}

// TaskView is the task being placed.
type TaskView struct {
	// Map distinguishes map from reduce tasks.
	Map bool
	// Index is the map task index or the reduce partition.
	Index int
}

// Policy routes one task to a worker. Pick returns an index into snaps
// (which holds every live worker, in stable ID order), or -1 for no
// preference — the task then runs on whichever worker frees a slot first.
// Pick is called with the scheduler's run lock held; it must not block.
type Policy interface {
	// Name identifies the policy ("round-robin", "least-loaded", ...).
	Name() string
	Pick(t TaskView, snaps []WorkerSnapshot) int
}

// PolicyNames lists the built-in policies ParsePolicy accepts.
func PolicyNames() []string {
	return []string{"round-robin", "least-loaded", "locality"}
}

// ParsePolicy builds a fresh instance of a named built-in policy. The empty
// name parses to nil (no routing: free slots pull any pending task).
// Instances are stateful (round-robin keeps a cursor), so every job should
// parse its own.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "":
		return nil, nil
	case "round-robin":
		return &roundRobin{}, nil
	case "least-loaded":
		return leastLoaded{}, nil
	case "locality", "locality-aware":
		return locality{}, nil
	}
	return nil, fmt.Errorf("exec: unknown policy %q (have %v)", name, PolicyNames())
}

// roundRobin stripes tasks across the live workers in arrival order,
// ignoring load — the baseline policy, and deliberately naive: several
// jobs each striping from their own cursor pile onto the same low-index
// workers while later ones idle.
type roundRobin struct {
	mu   sync.Mutex
	next int
}

func (p *roundRobin) Name() string { return "round-robin" }

func (p *roundRobin) Pick(t TaskView, snaps []WorkerSnapshot) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := p.next % len(snaps)
	p.next++
	return k
}

// leastLoaded routes each task to the worker with the smallest same-kind
// queue depth (queued + running of the task's kind, cross-job pool load
// included), breaking ties by total load and then the lowest ID.
type leastLoaded struct{}

func (leastLoaded) Name() string { return "least-loaded" }

// lighter reports whether a is a strictly better least-loaded pick than b
// for the task: smaller same-kind load, total load breaking ties.
func lighter(a, b WorkerSnapshot, t TaskView) bool {
	ka, kb := a.KindLoad(t.Map), b.KindLoad(t.Map)
	return ka < kb || (ka == kb && a.Load() < b.Load())
}

func (leastLoaded) Pick(t TaskView, snaps []WorkerSnapshot) int {
	best := 0
	for i := 1; i < len(snaps); i++ {
		if lighter(snaps[i], snaps[best], t) {
			best = i
		}
	}
	return best
}

// locality routes reduce tasks to the worker already holding the most
// sealed map output for the partition (fetches become local file reads),
// falling back to least-loaded among the tied — and for map tasks, whose
// splits ship from the coordinator, straight to least-loaded.
type locality struct{}

func (locality) Name() string { return "locality" }

func (locality) Pick(t TaskView, snaps []WorkerSnapshot) int {
	if t.Map {
		return leastLoaded{}.Pick(t, snaps)
	}
	best := 0
	for i := 1; i < len(snaps); i++ {
		if snaps[i].ResidentRuns > snaps[best].ResidentRuns ||
			(snaps[i].ResidentRuns == snaps[best].ResidentRuns && lighter(snaps[i], snaps[best], t)) {
			best = i
		}
	}
	return best
}
