package exec

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"blmr/internal/core"
)

func snaps(loads ...int) []WorkerSnapshot {
	out := make([]WorkerSnapshot, len(loads))
	for i, l := range loads {
		out[i] = WorkerSnapshot{ID: i, PoolMapRunning: l}
	}
	return out
}

func TestParsePolicy(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := ParsePolicy(name)
		if err != nil || p == nil {
			t.Fatalf("ParsePolicy(%q) = %v, %v", name, p, err)
		}
	}
	if p, err := ParsePolicy(""); err != nil || p != nil {
		t.Fatalf("empty policy should parse to nil, got %v, %v", p, err)
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("unknown policy must error")
	}
}

func TestRoundRobinStripes(t *testing.T) {
	p, _ := ParsePolicy("round-robin")
	got := []int{}
	for i := 0; i < 5; i++ {
		got = append(got, p.Pick(TaskView{Map: true, Index: i}, snaps(0, 9, 9)))
	}
	want := []int{0, 1, 2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-robin picks %v, want %v (load-blind stripe)", got, want)
		}
	}
}

func TestLeastLoadedPicksMinimum(t *testing.T) {
	p, _ := ParsePolicy("least-loaded")
	if k := p.Pick(TaskView{Map: true}, snaps(3, 1, 2)); k != 1 {
		t.Fatalf("least-loaded picked %d, want 1", k)
	}
	// Queued tasks count as load too.
	s := snaps(1, 1)
	s[0].MapQueued = 2
	if k := p.Pick(TaskView{Map: true}, s); k != 1 {
		t.Fatalf("least-loaded ignored queue depth, picked %d", k)
	}
	if k := p.Pick(TaskView{Map: true}, snaps(2, 2, 2)); k != 0 {
		t.Fatalf("tie must break to lowest ID, picked %d", k)
	}
	// Cross-kind isolation: parked reduce tasks on worker 1 must not mask
	// the map serializing on worker 0 — map placement weighs map load.
	s = snaps(1, 0)
	s[1].PoolReduceRunning = 2
	if k := p.Pick(TaskView{Map: true}, s); k != 1 {
		t.Fatalf("reduce load polluted map placement, picked %d", k)
	}
}

func TestLocalityPrefersResidentRuns(t *testing.T) {
	p, _ := ParsePolicy("locality")
	s := snaps(0, 5)
	s[1].ResidentRuns = 4
	if k := p.Pick(TaskView{Map: false, Index: 1}, s); k != 1 {
		t.Fatalf("locality ignored resident runs, picked %d", k)
	}
	// Map splits ship from the coordinator: fall back to least-loaded.
	if k := p.Pick(TaskView{Map: true, Index: 0}, s); k != 0 {
		t.Fatalf("locality map placement picked %d, want least-loaded 0", k)
	}
}

// TestSchedulerPolicyRoutes: a routed task waits for its worker — the
// round-robin stripe lands exactly half the maps on each of two workers,
// deterministically (no work-conserving races).
func TestSchedulerPolicyRoutes(t *testing.T) {
	w0 := &stubWorker{name: "w0", failMap: -1}
	w1 := &stubWorker{name: "w1", failMap: -1}
	p, _ := ParsePolicy("round-robin")
	s := Scheduler{
		Workers: []Assignment{
			{W: w0, MapSlots: 1, ReduceSlots: 1},
			{W: w1, MapSlots: 1, ReduceSlots: 1},
		},
		Policy: p,
	}
	if _, err := s.Run(SplitMaps(make([]core.Record, 80), 8), ReduceTasks(2)); err != nil {
		t.Fatal(err)
	}
	if w0.mapsRun.Load() != 4 || w1.mapsRun.Load() != 4 {
		t.Fatalf("round-robin split %d/%d maps, want 4/4", w0.mapsRun.Load(), w1.mapsRun.Load())
	}
}

// TestSchedulerPolicyReroutesOnDeath: tasks routed to a worker that dies
// must re-route to survivors instead of waiting forever.
func TestSchedulerPolicyReroutesOnDeath(t *testing.T) {
	var w0Lost atomic.Bool
	w0 := &fnWorker{name: "w0"}
	w0.runMap = func(MapTask) (MapStats, error) {
		w0Lost.Store(true)
		return MapStats{}, &WorkerLostError{Worker: "w0", Err: errors.New("conn reset")}
	}
	var w1Maps atomic.Int64
	w1 := &fnWorker{name: "w1", runMap: func(MapTask) (MapStats, error) {
		w1Maps.Add(1)
		return MapStats{ShuffleRecords: 1}, nil
	}}
	p, _ := ParsePolicy("round-robin")
	s := Scheduler{
		Workers: []Assignment{
			{W: w0, MapSlots: 1, ReduceSlots: 1},
			{W: w1, MapSlots: 1, ReduceSlots: 1},
		},
		Policy: p,
	}
	sum, err := s.Run(SplitMaps(make([]core.Record, 60), 6), ReduceTasks(2))
	if err != nil {
		t.Fatalf("worker death failed the routed job: %v", err)
	}
	if !w0Lost.Load() || w1Maps.Load() != 6 {
		t.Fatalf("survivor ran %d maps, want all 6 after re-routing", w1Maps.Load())
	}
	if sum.ShuffleRecords != 6 {
		t.Fatalf("shuffle records %d, want 6", sum.ShuffleRecords)
	}
}

// gateWorker blocks every map task on a gate while counting per-worker
// concurrency, for the fair-share tests below.
type gateWorker struct {
	name    string
	gate    chan struct{}
	running atomic.Int64 // this job's in-flight maps on this worker
}

func (w *gateWorker) String() string { return w.name }
func (w *gateWorker) RunMap(t MapTask) (MapStats, error) {
	w.running.Add(1)
	defer w.running.Add(-1)
	<-w.gate
	return MapStats{ShuffleRecords: 1}, nil
}
func (w *gateWorker) RunReduce(t ReduceTask) (ReduceResult, error) {
	return ReduceResult{}, nil
}

// TestSlotPoolFairShares: two concurrent jobs on one shared two-worker pool,
// each with a one-slot-per-worker share and the pool capped at the sum of
// shares — while both jobs have work, each reaches its full share on every
// worker (within one slot, i.e. exactly its share here): admission of job B
// cannot starve job A and vice versa.
func TestSlotPoolFairShares(t *testing.T) {
	const workers = 2
	pool := NewSlotPool(workers, 2, 0) // cap 2 = the two jobs' shares
	gate := make(chan struct{})
	mkJob := func(tag string) (*Scheduler, []*gateWorker) {
		ws := make([]*gateWorker, workers)
		as := make([]Assignment, workers)
		for i := range ws {
			ws[i] = &gateWorker{name: tag, gate: gate}
			as[i] = Assignment{W: ws[i], MapSlots: 1, ReduceSlots: 1}
		}
		return &Scheduler{Workers: as, Pool: pool}, ws
	}
	sa, wa := mkJob("a")
	sb, wb := mkJob("b")
	var wg sync.WaitGroup
	run := func(s *Scheduler) {
		defer wg.Done()
		if _, err := s.Run(SplitMaps(make([]core.Record, 80), 8), ReduceTasks(1)); err != nil {
			t.Error(err)
		}
	}
	wg.Add(2)
	go run(sa)
	go run(sb)
	// Both jobs must reach their full share (1 map per worker) while every
	// task is parked on the gate — neither can be squeezed below it.
	waitFor(t, func() bool {
		for i := 0; i < workers; i++ {
			if wa[i].running.Load() != 1 || wb[i].running.Load() != 1 {
				return false
			}
		}
		return true
	})
	for i := 0; i < workers; i++ {
		if got := pool.Running(i); got != 2 {
			t.Fatalf("pool sees %d running on worker %d, want 2 (both shares)", got, i)
		}
	}
	close(gate)
	wg.Wait()
}

// TestSlotPoolCapsCrossJobConcurrency: with a one-slot-per-worker pool cap,
// two jobs' tasks on the same worker serialize — total running per worker
// never exceeds the cap.
func TestSlotPoolCapsCrossJobConcurrency(t *testing.T) {
	const workers = 2
	pool := NewSlotPool(workers, 1, 0)
	perWorker := make([]atomic.Int64, workers)
	var overCap atomic.Bool
	mkJob := func() *Scheduler {
		as := make([]Assignment, workers)
		for i := range as {
			i := i
			as[i] = Assignment{W: &fnWorker{name: "w", runMap: func(MapTask) (MapStats, error) {
				if perWorker[i].Add(1) > 1 {
					overCap.Store(true)
				}
				defer perWorker[i].Add(-1)
				return MapStats{}, nil
			}}, MapSlots: 1, ReduceSlots: 1}
		}
		return &Scheduler{Workers: as, Pool: pool}
	}
	var wg sync.WaitGroup
	for j := 0; j < 2; j++ {
		s := mkJob()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Run(SplitMaps(make([]core.Record, 160), 16), ReduceTasks(1)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if overCap.Load() {
		t.Fatal("cross-job running maps exceeded the pool's per-worker cap")
	}
}
