package exec

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"blmr/internal/core"
)

// stubWorker scripts per-task outcomes for scheduler tests.
type stubWorker struct {
	name      string
	failMap   int // index of the map task to fail, -1 = none
	block     chan struct{}
	mapsRun   atomic.Int64
	reduceRun atomic.Int64
}

func (w *stubWorker) String() string { return w.name }

func (w *stubWorker) RunMap(t MapTask) (MapStats, error) {
	w.mapsRun.Add(1)
	if t.Index == w.failMap {
		return MapStats{}, errors.New("injected map failure")
	}
	return MapStats{ShuffleRecords: int64(len(t.Split))}, nil
}

func (w *stubWorker) RunReduce(t ReduceTask) (ReduceResult, error) {
	w.reduceRun.Add(1)
	if w.block != nil {
		// Simulates a reduce task blocked in the transport until OnFail.
		<-w.block
		return ReduceResult{}, errors.New("transport aborted")
	}
	return ReduceResult{Output: []core.Record{{Key: fmt.Sprintf("r%d", t.Partition)}}}, nil
}

func TestSchedulerRunsEverything(t *testing.T) {
	w := &stubWorker{name: "w0", failMap: -1}
	s := Scheduler{Workers: []Assignment{{W: w, MapSlots: 2, ReduceSlots: 2}}}
	maps := SplitMaps(make([]core.Record, 100), 7)
	sum, err := s.Run(maps, ReduceTasks(3))
	if err != nil {
		t.Fatal(err)
	}
	if sum.ShuffleRecords != 100 {
		t.Fatalf("shuffle records %d, want 100", sum.ShuffleRecords)
	}
	if len(sum.Reduces) != 3 || len(sum.Reduces[2].Output) != 1 {
		t.Fatalf("reduce results incomplete: %+v", sum.Reduces)
	}
	if sum.MapWall <= 0 {
		t.Fatal("map wall not recorded")
	}
}

// TestSchedulerMapFailureAborts: a failing map task must propagate its
// error, unblock reduce tasks through OnFail, and leave no goroutine
// waiting — the in-process half of the worker-fault contract.
func TestSchedulerMapFailureAborts(t *testing.T) {
	block := make(chan struct{})
	w := &stubWorker{name: "w0", failMap: 3, block: block}
	var failed atomic.Int64
	s := Scheduler{
		Workers: []Assignment{{W: w, MapSlots: 2, ReduceSlots: 2}},
		OnFail: func(err error) {
			failed.Add(1)
			close(block) // the transport's Fail: wake blocked consumers
		},
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.Run(SplitMaps(make([]core.Record, 80), 8), ReduceTasks(2))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected the injected map failure")
		}
		if failed.Load() != 1 {
			t.Fatalf("OnFail ran %d times, want 1", failed.Load())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("scheduler hung after worker failure")
	}
}

// TestSchedulerSpreadsAcrossWorkers: every worker with slots participates.
func TestSchedulerSpreadsAcrossWorkers(t *testing.T) {
	w0 := &stubWorker{name: "w0", failMap: -1}
	w1 := &stubWorker{name: "w1", failMap: -1}
	s := Scheduler{Workers: []Assignment{
		{W: w0, MapSlots: 1, ReduceSlots: 1},
		{W: w1, MapSlots: 1, ReduceSlots: 1},
	}}
	// Enough tasks that a single slot cannot plausibly win every race.
	maps := SplitMaps(make([]core.Record, 512), 64)
	if _, err := s.Run(maps, ReduceTasks(16)); err != nil {
		t.Fatal(err)
	}
	if w0.mapsRun.Load()+w1.mapsRun.Load() != 64 {
		t.Fatalf("ran %d+%d map tasks, want 64", w0.mapsRun.Load(), w1.mapsRun.Load())
	}
	if w0.reduceRun.Load()+w1.reduceRun.Load() != 16 {
		t.Fatalf("ran %d+%d reduce tasks, want 16", w0.reduceRun.Load(), w1.reduceRun.Load())
	}
}

func TestSplitMaps(t *testing.T) {
	maps := SplitMaps(make([]core.Record, 10), 4)
	if len(maps) != 4 {
		t.Fatalf("got %d tasks", len(maps))
	}
	total := 0
	for i, m := range maps {
		if m.Index != i {
			t.Fatalf("task %d has index %d", i, m.Index)
		}
		total += len(m.Split)
	}
	if total != 10 {
		t.Fatalf("split %d records, want 10", total)
	}
	if got := SplitMaps(nil, 4); len(got) != 0 {
		t.Fatalf("empty input produced %d tasks", len(got))
	}
}
