package exec

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"blmr/internal/core"
)

// stubWorker scripts per-task outcomes for scheduler tests.
type stubWorker struct {
	name      string
	failMap   int // index of the map task to fail, -1 = none
	block     chan struct{}
	mapsRun   atomic.Int64
	reduceRun atomic.Int64
}

func (w *stubWorker) String() string { return w.name }

func (w *stubWorker) RunMap(t MapTask) (MapStats, error) {
	w.mapsRun.Add(1)
	if t.Index == w.failMap {
		return MapStats{}, errors.New("injected map failure")
	}
	return MapStats{ShuffleRecords: int64(len(t.Split))}, nil
}

func (w *stubWorker) RunReduce(t ReduceTask) (ReduceResult, error) {
	w.reduceRun.Add(1)
	if w.block != nil {
		// Simulates a reduce task blocked in the transport until OnFail.
		<-w.block
		return ReduceResult{}, errors.New("transport aborted")
	}
	return ReduceResult{Output: []core.Record{{Key: fmt.Sprintf("r%d", t.Partition)}}}, nil
}

func TestSchedulerRunsEverything(t *testing.T) {
	w := &stubWorker{name: "w0", failMap: -1}
	s := Scheduler{Workers: []Assignment{{W: w, MapSlots: 2, ReduceSlots: 2}}}
	maps := SplitMaps(make([]core.Record, 100), 7)
	sum, err := s.Run(maps, ReduceTasks(3))
	if err != nil {
		t.Fatal(err)
	}
	if sum.ShuffleRecords != 100 {
		t.Fatalf("shuffle records %d, want 100", sum.ShuffleRecords)
	}
	if len(sum.Reduces) != 3 || len(sum.Reduces[2].Output) != 1 {
		t.Fatalf("reduce results incomplete: %+v", sum.Reduces)
	}
	if sum.MapWall <= 0 {
		t.Fatal("map wall not recorded")
	}
}

// TestSchedulerMapFailureAborts: a failing map task must propagate its
// error, unblock reduce tasks through OnFail, and leave no goroutine
// waiting — the in-process half of the worker-fault contract.
func TestSchedulerMapFailureAborts(t *testing.T) {
	block := make(chan struct{})
	w := &stubWorker{name: "w0", failMap: 3, block: block}
	var failed atomic.Int64
	s := Scheduler{
		Workers: []Assignment{{W: w, MapSlots: 2, ReduceSlots: 2}},
		OnFail: func(err error) {
			failed.Add(1)
			close(block) // the transport's Fail: wake blocked consumers
		},
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.Run(SplitMaps(make([]core.Record, 80), 8), ReduceTasks(2))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected the injected map failure")
		}
		if failed.Load() != 1 {
			t.Fatalf("OnFail ran %d times, want 1", failed.Load())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("scheduler hung after worker failure")
	}
}

// TestSchedulerSpreadsAcrossWorkers: every worker with slots participates.
func TestSchedulerSpreadsAcrossWorkers(t *testing.T) {
	w0 := &stubWorker{name: "w0", failMap: -1}
	w1 := &stubWorker{name: "w1", failMap: -1}
	s := Scheduler{Workers: []Assignment{
		{W: w0, MapSlots: 1, ReduceSlots: 1},
		{W: w1, MapSlots: 1, ReduceSlots: 1},
	}}
	// Enough tasks that a single slot cannot plausibly win every race.
	maps := SplitMaps(make([]core.Record, 512), 64)
	if _, err := s.Run(maps, ReduceTasks(16)); err != nil {
		t.Fatal(err)
	}
	if w0.mapsRun.Load()+w1.mapsRun.Load() != 64 {
		t.Fatalf("ran %d+%d map tasks, want 64", w0.mapsRun.Load(), w1.mapsRun.Load())
	}
	if w0.reduceRun.Load()+w1.reduceRun.Load() != 16 {
		t.Fatalf("ran %d+%d reduce tasks, want 16", w0.reduceRun.Load(), w1.reduceRun.Load())
	}
}

// fnWorker scripts arbitrary per-task behavior for churn tests.
type fnWorker struct {
	name      string
	runMap    func(MapTask) (MapStats, error)
	runReduce func(ReduceTask) (ReduceResult, error)
}

func (w *fnWorker) String() string { return w.name }
func (w *fnWorker) RunMap(t MapTask) (MapStats, error) {
	if w.runMap != nil {
		return w.runMap(t)
	}
	return MapStats{}, nil
}
func (w *fnWorker) RunReduce(t ReduceTask) (ReduceResult, error) {
	if w.runReduce != nil {
		return w.runReduce(t)
	}
	return ReduceResult{}, nil
}

// TestSchedulerWorkerLostRequeues: a WorkerLostError must retire the worker
// and requeue the task on a survivor instead of failing the job.
func TestSchedulerWorkerLostRequeues(t *testing.T) {
	var lost atomic.Bool
	w0 := &fnWorker{name: "w0"}
	w0.runMap = func(mt MapTask) (MapStats, error) {
		if lost.CompareAndSwap(false, true) {
			return MapStats{}, &WorkerLostError{Worker: "w0", Err: errors.New("conn reset")}
		}
		return MapStats{ShuffleRecords: 1}, nil
	}
	w1 := &fnWorker{name: "w1", runMap: func(MapTask) (MapStats, error) {
		for !lost.Load() {
			time.Sleep(time.Millisecond) // hold w1's slot until w0's loss lands
		}
		return MapStats{ShuffleRecords: 1}, nil
	}}
	s := Scheduler{Workers: []Assignment{
		{W: w0, MapSlots: 1, ReduceSlots: 1},
		{W: w1, MapSlots: 1, ReduceSlots: 1},
	}}
	sum, err := s.Run(SplitMaps(make([]core.Record, 40), 4), ReduceTasks(2))
	if err != nil {
		t.Fatalf("worker loss failed the job: %v", err)
	}
	if sum.MapRetries != 1 {
		t.Fatalf("MapRetries = %d, want 1", sum.MapRetries)
	}
	if sum.ShuffleRecords != 4 {
		t.Fatalf("shuffle records %d, want 4 (winner-only stats)", sum.ShuffleRecords)
	}
}

// TestSchedulerResubmitCompletedMap: WorkerLost with resubmit indices must
// re-run already-completed maps on survivors while reduces are in flight.
func TestSchedulerResubmitCompletedMap(t *testing.T) {
	gate := make(chan struct{})
	var mapRuns, w1Runs atomic.Int64
	mkMap := func(counter *atomic.Int64) func(MapTask) (MapStats, error) {
		return func(MapTask) (MapStats, error) {
			mapRuns.Add(1)
			if counter != nil {
				counter.Add(1)
			}
			return MapStats{}, nil
		}
	}
	w0 := &fnWorker{name: "w0", runMap: mkMap(nil)}
	w1 := &fnWorker{name: "w1", runMap: mkMap(&w1Runs)}
	blockReduce := func(ReduceTask) (ReduceResult, error) {
		<-gate
		return ReduceResult{}, nil
	}
	w0.runReduce = blockReduce
	w1.runReduce = blockReduce
	s := Scheduler{Workers: []Assignment{
		{W: w0, MapSlots: 1, ReduceSlots: 1},
		{W: w1, MapSlots: 1, ReduceSlots: 1},
	}}
	done := make(chan *Summary, 1)
	go func() {
		sum, err := s.Run(SplitMaps(make([]core.Record, 40), 4), ReduceTasks(2))
		if err != nil {
			t.Error(err)
		}
		done <- sum
	}()
	waitFor(t, func() bool { return mapRuns.Load() == 4 })
	base := w1Runs.Load()
	s.WorkerLost(w0, []int{0, 1}) // w0's sealed outputs are gone
	waitFor(t, func() bool { return w1Runs.Load() == base+2 })
	close(gate)
	sum := <-done
	if sum == nil {
		t.Fatal("run failed")
	}
	if sum.MapRetries != 2 {
		t.Fatalf("MapRetries = %d, want 2", sum.MapRetries)
	}
}

// TestSchedulerSpeculates: with most of the wave done, an idle worker clones
// the straggler and the first completion wins.
func TestSchedulerSpeculates(t *testing.T) {
	cloneDone := make(chan struct{})
	var attempts3 atomic.Int64
	runMap := func(mt MapTask) (MapStats, error) {
		if mt.Index == 3 {
			if attempts3.Add(1) == 1 {
				<-cloneDone // original attempt: straggle until the clone lands
			} else {
				close(cloneDone) // clone: finish instantly and release the original
			}
		}
		return MapStats{ShuffleRecords: 1}, nil
	}
	w0 := &fnWorker{name: "w0", runMap: runMap}
	w1 := &fnWorker{name: "w1", runMap: runMap}
	s := Scheduler{
		Workers: []Assignment{
			{W: w0, MapSlots: 1, ReduceSlots: 1},
			{W: w1, MapSlots: 1, ReduceSlots: 1},
		},
		Speculate: true, SpeculateAfter: 0.75,
	}
	sum, err := s.Run(SplitMaps(make([]core.Record, 40), 4), ReduceTasks(2))
	if err != nil {
		t.Fatal(err)
	}
	if sum.BackupsLaunched != 1 || sum.BackupsWon != 1 {
		t.Fatalf("backups launched=%d won=%d, want 1/1", sum.BackupsLaunched, sum.BackupsWon)
	}
	if sum.ShuffleRecords != 4 {
		t.Fatalf("shuffle records %d, want 4 (loser attempt must not double-count)", sum.ShuffleRecords)
	}
}

// TestSchedulerAllWorkersLost: when every worker dies the job must fail
// rather than hang.
func TestSchedulerAllWorkersLost(t *testing.T) {
	w := &fnWorker{name: "w0", runMap: func(MapTask) (MapStats, error) {
		return MapStats{}, &WorkerLostError{Worker: "w0", Err: errors.New("gone")}
	}}
	s := Scheduler{Workers: []Assignment{{W: w, MapSlots: 1, ReduceSlots: 1}}}
	done := make(chan error, 1)
	go func() {
		_, err := s.Run(SplitMaps(make([]core.Record, 10), 2), ReduceTasks(1))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected failure with no live workers")
		}
		if !IsWorkerLost(err) {
			t.Fatalf("error lost its WorkerLostError classification: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("scheduler hung with every worker dead")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSplitMaps(t *testing.T) {
	maps := SplitMaps(make([]core.Record, 10), 4)
	if len(maps) != 4 {
		t.Fatalf("got %d tasks", len(maps))
	}
	total := 0
	for i, m := range maps {
		if m.Index != i {
			t.Fatalf("task %d has index %d", i, m.Index)
		}
		total += len(m.Split)
	}
	if total != 10 {
		t.Fatalf("split %d records, want 10", total)
	}
	if got := SplitMaps(nil, 4); len(got) != 0 {
		t.Fatalf("empty input produced %d tasks", len(got))
	}
}
