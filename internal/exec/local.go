package exec

import (
	"blmr/internal/dfs"
	"blmr/internal/shuffle"
)

// LocalWorker runs tasks in-process against a shuffle transport — the
// single-process engine's worker. One LocalWorker serves every slot; the
// task bodies carry no per-worker state.
type LocalWorker struct {
	Job       Job
	Opts      Options
	Transport shuffle.Transport
	// Scratch backs intermediate merge passes and disk-backed partial
	// stores (nil when the execution never touches disk).
	Scratch *dfs.RunDir
}

// String implements Worker.
func (w *LocalWorker) String() string { return "local" }

// RunMap implements Worker.
func (w *LocalWorker) RunMap(t MapTask) (MapStats, error) {
	return RunMapTask(w.Job, w.Opts, t, w.Transport.MapSink(t.Index))
}

// RunReduce implements Worker.
func (w *LocalWorker) RunReduce(t ReduceTask) (ReduceResult, error) {
	src := w.Transport.ReduceSource(t.Partition)
	defer src.Close()
	return RunReduceTask(w.Job, w.Opts, t, src, w.Scratch)
}
