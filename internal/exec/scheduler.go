package exec

// The scheduler: assigns map and reduce tasks to workers with per-worker
// slot limits, tracks per-task lifecycle, and propagates the first task
// error — the control plane the monolithic engine's hand-rolled WaitGroups
// grew into. Map and reduce tasks are dispatched concurrently: pipelined
// reduce tasks overlap the map wave (blocking inside the transport until
// records arrive), barrier reduce tasks block on the transport's map
// barrier. On the in-proc stream transport every partition must be able to
// run concurrently (reduce slots >= reduce tasks), or backpressure from an
// unscheduled partition's full queue could wedge the map wave; run-exchange
// transports have no such constraint, because sealed runs park on disk.

import (
	"fmt"
	"sync"
	"time"
)

// Worker executes tasks, one per slot at a time. Implementations: the
// in-process LocalWorker below and internal/mpexec's remote worker proxy.
type Worker interface {
	// String names the worker in error messages.
	String() string
	// RunMap executes one map task to completion.
	RunMap(t MapTask) (MapStats, error)
	// RunReduce executes one reduce task to completion.
	RunReduce(t ReduceTask) (ReduceResult, error)
}

// Assignment is one worker plus its task-slot budget (Hadoop's map/reduce
// slots; the simulator's cluster.Node has the same shape).
type Assignment struct {
	W Worker
	// MapSlots / ReduceSlots bound the worker's concurrent tasks per kind
	// (minimum 1 each).
	MapSlots    int
	ReduceSlots int
}

// Summary aggregates one scheduled execution.
type Summary struct {
	// MapWall is the wall-clock duration from scheduling start until the
	// last map task returned.
	MapWall time.Duration
	// ShuffleRecords sums the map tasks' post-combine shuffle volume.
	ShuffleRecords int64
	// MapSpills sums the map tasks' sealed spill waves.
	MapSpills int
	// Reduces holds each reduce task's result, indexed by partition.
	Reduces []ReduceResult
}

// Scheduler drives one job execution over a set of workers.
type Scheduler struct {
	Workers []Assignment
	// OnFail is invoked once, with the first task error, before the
	// scheduler waits out in-flight tasks — wire it to the transport's Fail
	// so tasks blocked in the shuffle wake up and drain.
	OnFail func(error)
}

// Run dispatches every task and blocks until all have settled, returning
// the aggregate summary or the first task error. After an error, unstarted
// tasks are skipped and in-flight tasks are waited for (they unblock via
// OnFail), so no goroutines outlive the call.
func (s *Scheduler) Run(maps []MapTask, reduces []ReduceTask) (*Summary, error) {
	if len(s.Workers) == 0 {
		return nil, fmt.Errorf("exec: no workers")
	}
	mapCh := make(chan MapTask, len(maps))
	for _, t := range maps {
		mapCh <- t
	}
	close(mapCh)
	reduceCh := make(chan ReduceTask, len(reduces))
	for _, t := range reduces {
		reduceCh <- t
	}
	close(reduceCh)

	sum := &Summary{Reduces: make([]ReduceResult, len(reduces))}
	start := time.Now()
	var (
		mu       sync.Mutex
		firstErr error
		mapsLeft = len(maps)
		aborted  = make(chan struct{})
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			close(aborted)
			if s.OnFail != nil {
				// Called under mu: OnFail must not call back into the
				// scheduler (transports' Fail does not).
				s.OnFail(err)
			}
		}
		mu.Unlock()
	}
	stop := func() bool {
		select {
		case <-aborted:
			return true
		default:
			return false
		}
	}

	var wg sync.WaitGroup
	for _, a := range s.Workers {
		a := a
		for i := 0; i < max(1, a.MapSlots); i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range mapCh {
					if stop() {
						continue
					}
					stats, err := a.W.RunMap(t)
					if err != nil {
						fail(fmt.Errorf("map task %d on %s: %w", t.Index, a.W, err))
						continue
					}
					mu.Lock()
					sum.ShuffleRecords += stats.ShuffleRecords
					sum.MapSpills += stats.Spills
					mapsLeft--
					if mapsLeft == 0 {
						sum.MapWall = time.Since(start)
					}
					mu.Unlock()
				}
			}()
		}
		for i := 0; i < max(1, a.ReduceSlots); i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range reduceCh {
					if stop() {
						continue
					}
					res, err := a.W.RunReduce(t)
					if err != nil {
						fail(fmt.Errorf("reduce task %d on %s: %w", t.Partition, a.W, err))
						continue
					}
					mu.Lock()
					sum.Reduces[t.Partition] = res
					mu.Unlock()
				}
			}()
		}
	}
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	return sum, nil
}
