package exec

// The scheduler: assigns map and reduce tasks to workers with per-worker
// slot limits, tracks per-task lifecycle, and propagates the first task
// error — the control plane the monolithic engine's hand-rolled WaitGroups
// grew into. Map and reduce tasks are dispatched concurrently: pipelined
// reduce tasks overlap the map wave (blocking inside the transport until
// records arrive), barrier reduce tasks block on the transport's map
// barrier. On the in-proc stream transport every partition must be able to
// run concurrently (reduce slots >= reduce tasks), or backpressure from an
// unscheduled partition's full queue could wedge the map wave; run-exchange
// transports have no such constraint, because sealed runs park on disk.
//
// Task failures split into two classes. A genuine task error (user code,
// corrupt data) fails the job: the first error aborts, unstarted tasks are
// skipped, and in-flight tasks are waited out (they unblock via OnFail). A
// WorkerLostError marks the worker dead and requeues the task on the
// surviving workers instead — the MapReduce recovery discipline. Completed
// map tasks whose outputs died with their worker re-enter the queue through
// Resubmit, and once most of the map wave is done the scheduler may launch
// speculative clones of stragglers on idle slots, keeping the first
// completion (duplicate completions are dropped here and deduplicated by
// attempt ID downstream).

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Worker executes tasks, one per slot at a time. Implementations: the
// in-process LocalWorker below and internal/mpexec's remote worker proxy.
type Worker interface {
	// String names the worker in error messages.
	String() string
	// RunMap executes one map task to completion.
	RunMap(t MapTask) (MapStats, error)
	// RunReduce executes one reduce task to completion.
	RunReduce(t ReduceTask) (ReduceResult, error)
}

// WorkerLostError classifies a task failure caused by losing the worker
// (process death, closed control connection, missed heartbeats) rather than
// by the task itself. The scheduler reacts by marking the worker dead and
// requeueing the task on survivors instead of failing the job.
type WorkerLostError struct {
	// Worker names the lost worker.
	Worker string
	// Err is the underlying transport error.
	Err error
}

func (e *WorkerLostError) Error() string {
	return fmt.Sprintf("worker %s lost: %v", e.Worker, e.Err)
}

func (e *WorkerLostError) Unwrap() error { return e.Err }

// IsWorkerLost reports whether err classifies as a lost worker.
func IsWorkerLost(err error) bool {
	var w *WorkerLostError
	return errors.As(err, &w)
}

// Assignment is one worker plus its task-slot budget (Hadoop's map/reduce
// slots; the simulator's cluster.Node has the same shape).
type Assignment struct {
	W Worker
	// MapSlots / ReduceSlots bound the worker's concurrent tasks per kind
	// (minimum 1 each).
	MapSlots    int
	ReduceSlots int
}

// Summary aggregates one scheduled execution.
type Summary struct {
	// MapWall is the wall-clock duration from scheduling start until the
	// last map task returned.
	MapWall time.Duration
	// ShuffleRecords sums the map tasks' post-combine shuffle volume
	// (winning attempts only, so the count matches a churn-free run).
	ShuffleRecords int64
	// MapSpills sums the map tasks' sealed spill waves (winning attempts).
	MapSpills int
	// MapRetries counts map re-executions: worker-lost requeues plus
	// Resubmit calls for outputs lost with their worker.
	MapRetries int
	// ReduceRetries counts reduce tasks requeued after losing their worker.
	ReduceRetries int
	// BackupsLaunched / BackupsWon count speculative map clones dispatched
	// and clones whose attempt won (completed first).
	BackupsLaunched int
	BackupsWon      int
	// ReattachedMaps counts map tasks that never ran because a prior
	// incarnation's completed output was re-attached (Scheduler.PreDoneMaps)
	// — the coordinator-restart recovery path's key metric.
	ReattachedMaps int
	// Reduces holds each reduce task's result, indexed by partition.
	Reduces []ReduceResult
}

// Scheduler drives one job execution over a set of workers.
type Scheduler struct {
	Workers []Assignment
	// OnFail is invoked once, with the first task error, before the
	// scheduler waits out in-flight tasks — wire it to the transport's Fail
	// so tasks blocked in the shuffle wake up and drain.
	OnFail func(error)
	// Staged gates reduce dispatch behind completion of every map task
	// (the multi-process engine's staged mode). Resubmitted maps re-raise
	// the gate until they complete again.
	Staged bool
	// MaxAttempts caps how many times one task may be dispatched across
	// worker-lost requeues, resubmissions and clones before the job fails
	// (default max(4, 2*len(Workers)+2)).
	MaxAttempts int
	// Speculate enables backup attempts of straggler map tasks: once
	// SpeculateAfter of the map wave is done and no pending maps remain, an
	// idle slot may run a duplicate attempt of a still-running map on a
	// different worker; the first completion wins.
	Speculate bool
	// SpeculateAfter is the completed fraction of the map wave required
	// before clones launch (default 0.75).
	SpeculateAfter float64
	// Policy, when non-nil, routes every pending task to a specific worker
	// (see policy.go): a routed task waits for its worker even while other
	// slots idle, which is what makes placement policies distinguishable.
	// nil keeps the historical work-conserving behavior (any free slot
	// pulls any pending task).
	Policy Policy
	// Pool, when non-nil, is the cross-job slot ledger shared by every
	// concurrent job on this worker pool: a task dispatch additionally
	// claims a pool slot for its worker (parking until one frees when the
	// worker is at its cross-job cap), and policies see kind-split
	// pool-wide load in the worker snapshots. Workers must appear in the
	// same order in every sharing scheduler's Workers list.
	Pool *SlotPool
	// Resident, when non-nil, reports how many sealed map outputs worker w
	// already holds for task t (the locality policy's signal). Called with
	// the run lock held; must not block or call back into the scheduler.
	Resident func(w int, t TaskView) int
	// PreDoneMaps lists map task indexes that are already complete before
	// Run starts — a restarted coordinator re-attached their journaled
	// outputs from a returning worker's disk. They are marked done (and
	// counted in Summary.ReattachedMaps) without dispatching, but stay in
	// the task list so WorkerLost can resubmit them if their outputs die
	// later. Their per-task stats (shuffle records, spills) were produced by
	// the previous incarnation and are not re-counted here.
	PreDoneMaps []int
	// PreDoneReduces maps partition -> the completed result a previous
	// incarnation journaled; those reduce tasks are not dispatched and the
	// journaled results land in Summary.Reduces verbatim.
	PreDoneReduces map[int]ReduceResult
	// FirstAttempt seeds the job-unique attempt counter (default 0). A
	// resumed job sets it past every journaled attempt so re-executions
	// outrank re-attached routes in the reducers' highest-attempt-wins
	// routing tables.
	FirstAttempt int

	mu  sync.Mutex
	run *schedRun
}

type taskLife int

const (
	tsPending taskLife = iota
	tsRunning
	tsDone
)

type taskState struct {
	life     taskLife
	attempts int
	inflight int // concurrently running attempts (clones)
	cloned   bool
	runners  map[*schedWorker]bool
	// assigned is the worker the placement policy routed this pending task
	// to (nil: any free slot may pull it). Cleared at dispatch.
	assigned *schedWorker
}

type schedWorker struct {
	a    Assignment
	idx  int // position in Scheduler.Workers (and the SlotPool)
	dead bool
	// Policy-visible load accounting: this job's running tasks and routed
	// pending tasks per kind (all under the run lock).
	mapRun, redRun int
	mapQ, redQ     int
}

type schedRun struct {
	s           *Scheduler
	mu          sync.Mutex
	cond        *sync.Cond
	maps        []MapTask
	reduces     []ReduceTask
	byIndex     map[int]int // MapTask.Index -> position in maps
	m           []taskState
	r           []taskState
	mapsLeft    int
	redsLeft    int
	nextAttempt int
	live        int
	maxAttempts int
	specAfter   float64
	firstErr    error
	aborted     bool
	sum         *Summary
	start       time.Time
	workers     []*schedWorker
}

// Run dispatches every task and blocks until all have settled, returning
// the aggregate summary or the first task error. After an error, unstarted
// tasks are skipped and in-flight tasks are waited for (they unblock via
// OnFail), so no goroutines outlive the call.
func (s *Scheduler) Run(maps []MapTask, reduces []ReduceTask) (*Summary, error) {
	if len(s.Workers) == 0 {
		return nil, fmt.Errorf("exec: no workers")
	}
	rn := &schedRun{
		s:           s,
		maps:        maps,
		reduces:     reduces,
		byIndex:     make(map[int]int, len(maps)),
		m:           make([]taskState, len(maps)),
		r:           make([]taskState, len(reduces)),
		mapsLeft:    len(maps),
		redsLeft:    len(reduces),
		live:        len(s.Workers),
		maxAttempts: s.MaxAttempts,
		specAfter:   s.SpeculateAfter,
		sum:         &Summary{Reduces: make([]ReduceResult, len(reduces))},
		start:       time.Now(),
	}
	rn.cond = sync.NewCond(&rn.mu)
	if rn.maxAttempts <= 0 {
		rn.maxAttempts = max(4, 2*len(s.Workers)+2)
	}
	if rn.specAfter <= 0 || rn.specAfter > 1 {
		rn.specAfter = 0.75
	}
	for i := range maps {
		rn.byIndex[maps[i].Index] = i
		rn.m[i].runners = make(map[*schedWorker]bool)
	}
	for i := range reduces {
		rn.r[i].runners = make(map[*schedWorker]bool)
	}
	for i, a := range s.Workers {
		rn.workers = append(rn.workers, &schedWorker{a: a, idx: i})
	}
	rn.nextAttempt = max(0, s.FirstAttempt)
	// Imported pre-done state (coordinator restart): re-attached maps and
	// journaled reduce results settle before any dispatch.
	for _, idx := range s.PreDoneMaps {
		pos, ok := rn.byIndex[idx]
		if !ok || rn.m[pos].life == tsDone {
			continue
		}
		rn.m[pos].life = tsDone
		rn.mapsLeft--
		rn.sum.ReattachedMaps++
	}
	for i := range reduces {
		res, ok := s.PreDoneReduces[reduces[i].Partition]
		if !ok || rn.r[i].life == tsDone {
			continue
		}
		rn.r[i].life = tsDone
		rn.redsLeft--
		rn.sum.Reduces[reduces[i].Partition] = res
	}
	rn.mu.Lock()
	for i := range rn.m {
		if rn.m[i].life == tsPending {
			rn.assignLocked(&rn.m[i], true, maps[i].Index)
		}
	}
	for i := range rn.r {
		if rn.r[i].life == tsPending {
			rn.assignLocked(&rn.r[i], false, reduces[i].Partition)
		}
	}
	rn.mu.Unlock()
	if s.Pool != nil {
		// Wake parked dispatches when any sharing job frees a pool slot.
		unsub := s.Pool.subscribe(func() {
			rn.mu.Lock()
			rn.cond.Broadcast()
			rn.mu.Unlock()
		})
		defer unsub()
	}

	s.mu.Lock()
	s.run = rn
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.run = nil
		s.mu.Unlock()
	}()

	var wg sync.WaitGroup
	for _, w := range rn.workers {
		w := w
		for i := 0; i < max(1, w.a.MapSlots); i++ {
			wg.Add(1)
			go func() { defer wg.Done(); rn.mapLoop(w) }()
		}
		for i := 0; i < max(1, w.a.ReduceSlots); i++ {
			wg.Add(1)
			go func() { defer wg.Done(); rn.reduceLoop(w) }()
		}
	}
	wg.Wait()
	rn.mu.Lock()
	err := rn.firstErr
	rn.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return rn.sum, nil
}

// WorkerLost reports (from outside a task return path — e.g. a coordinator
// noticing a closed control connection) that w is dead, and resubmits the
// completed map tasks whose outputs died with it. Safe to call at any time;
// a no-op when no run is active or the run is already settling.
func (s *Scheduler) WorkerLost(w Worker, resubmitMaps []int) {
	s.mu.Lock()
	rn := s.run
	s.mu.Unlock()
	if rn == nil {
		return
	}
	rn.mu.Lock()
	defer rn.mu.Unlock()
	for _, sw := range rn.workers {
		if sw.a.W == w {
			rn.workerDeadLocked(sw)
			break
		}
	}
	if rn.aborted || rn.redsLeft == 0 {
		return // settling: survivors already fetched everything they need
	}
	for _, idx := range resubmitMaps {
		pos, ok := rn.byIndex[idx]
		if !ok {
			continue
		}
		st := &rn.m[pos]
		if st.life != tsDone {
			continue // pending or in flight already; that attempt re-routes
		}
		if st.inflight > 0 {
			st.life = tsRunning // a racing clone is still out; let it win
		} else {
			st.life = tsPending
			rn.assignLocked(st, true, idx)
		}
		rn.mapsLeft++
		rn.sum.MapRetries++
	}
	rn.cond.Broadcast()
}

// assignLocked routes one pending task through the placement policy,
// replacing any previous routing. With no policy the task stays unrouted
// (any free slot pulls it).
func (rn *schedRun) assignLocked(st *taskState, isMap bool, index int) {
	rn.unassignLocked(st, isMap)
	if rn.s.Policy == nil {
		return
	}
	t := TaskView{Map: isMap, Index: index}
	snaps, cand := rn.snapshotsLocked(t)
	if len(cand) == 0 {
		return
	}
	k := rn.s.Policy.Pick(t, snaps)
	if k < 0 || k >= len(cand) {
		return // no preference or a bogus pick: fall back to any-slot
	}
	st.assigned = cand[k]
	if isMap {
		cand[k].mapQ++
	} else {
		cand[k].redQ++
	}
}

func (rn *schedRun) unassignLocked(st *taskState, isMap bool) {
	if st.assigned == nil {
		return
	}
	if isMap {
		st.assigned.mapQ--
	} else {
		st.assigned.redQ--
	}
	st.assigned = nil
}

// snapshotsLocked builds the policy's view of every live worker, in stable
// ID order, alongside the matching schedWorkers.
func (rn *schedRun) snapshotsLocked(t TaskView) ([]WorkerSnapshot, []*schedWorker) {
	var snaps []WorkerSnapshot
	var cand []*schedWorker
	for i, sw := range rn.workers {
		if sw.dead {
			continue
		}
		s := WorkerSnapshot{
			ID: i, Name: sw.a.W.String(),
			MapSlots: max(1, sw.a.MapSlots), ReduceSlots: max(1, sw.a.ReduceSlots),
			MapRunning: sw.mapRun, ReduceRunning: sw.redRun,
			MapQueued: sw.mapQ, ReduceQueued: sw.redQ,
			PoolMapRunning: sw.mapRun, PoolReduceRunning: sw.redRun,
		}
		if rn.s.Pool != nil {
			s.PoolMapRunning = rn.s.Pool.RunningKind(i, true)
			s.PoolReduceRunning = rn.s.Pool.RunningKind(i, false)
		}
		if rn.s.Resident != nil {
			s.ResidentRuns = rn.s.Resident(i, t)
		}
		snaps = append(snaps, s)
		cand = append(cand, sw)
	}
	return snaps, cand
}

// acquirePoolLocked claims a cross-job pool slot for a dispatch on w (a
// no-op without a pool). On false the caller parks; a Release broadcast
// wakes it.
func (rn *schedRun) acquirePoolLocked(w *schedWorker, isMap bool) bool {
	if rn.s.Pool == nil {
		return true
	}
	return rn.s.Pool.TryAcquire(w.idx, isMap)
}

func (rn *schedRun) releasePool(w *schedWorker, isMap bool) {
	if rn.s.Pool != nil {
		rn.s.Pool.Release(w.idx, isMap)
	}
}

// done reports (locked) whether slots should exit.
func (rn *schedRun) done() bool {
	return rn.aborted || (rn.mapsLeft == 0 && rn.redsLeft == 0)
}

func (rn *schedRun) failLocked(err error) {
	if rn.firstErr != nil {
		return
	}
	rn.firstErr = err
	rn.aborted = true
	if rn.s.OnFail != nil {
		// Called under the run lock: OnFail must not call back into the
		// scheduler (transports' Fail does not).
		rn.s.OnFail(err)
	}
	rn.cond.Broadcast()
}

func (rn *schedRun) workerDeadLocked(w *schedWorker) {
	if w.dead {
		return
	}
	w.dead = true
	rn.live--
	// Re-route the pending tasks parked on the dead worker: through the
	// policy when one is set, otherwise back to the any-slot pool.
	for i := range rn.m {
		if st := &rn.m[i]; st.assigned == w && st.life == tsPending {
			rn.assignLocked(st, true, rn.maps[i].Index)
		}
	}
	for i := range rn.r {
		if st := &rn.r[i]; st.assigned == w && st.life == tsPending {
			rn.assignLocked(st, false, rn.reduces[i].Partition)
		}
	}
	rn.cond.Broadcast()
}

// pickMap returns a map position to dispatch on w, with clone=true for a
// speculative backup attempt, or -1 when nothing is runnable.
func (rn *schedRun) pickMap(w *schedWorker) (pos int, clone bool) {
	if rn.mapsLeft == 0 {
		return -1, false
	}
	for i := range rn.m {
		st := &rn.m[i]
		if st.life == tsPending && (st.assigned == nil || st.assigned == w) {
			return i, false
		}
	}
	if !rn.s.Speculate || rn.live < 2 {
		return -1, false
	}
	done := len(rn.maps) - rn.mapsLeft
	if float64(done) < rn.specAfter*float64(len(rn.maps)) {
		return -1, false
	}
	for i := range rn.m {
		st := &rn.m[i]
		if st.life == tsRunning && st.inflight > 0 && !st.cloned &&
			!st.runners[w] && st.attempts < rn.maxAttempts {
			return i, true
		}
	}
	return -1, false
}

func (rn *schedRun) mapLoop(w *schedWorker) {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	for {
		if rn.done() || w.dead {
			return
		}
		pos, clone := rn.pickMap(w)
		if pos < 0 {
			rn.cond.Wait()
			continue
		}
		if !rn.acquirePoolLocked(w, true) {
			rn.cond.Wait() // worker at its cross-job cap; Release wakes us
			continue
		}
		st := &rn.m[pos]
		rn.unassignLocked(st, true)
		st.life = tsRunning
		st.attempts++
		st.inflight++
		st.runners[w] = true
		w.mapRun++
		if clone {
			st.cloned = true
			rn.sum.BackupsLaunched++
		}
		t := rn.maps[pos]
		t.Attempt = rn.nextAttempt
		rn.nextAttempt++
		rn.mu.Unlock()
		stats, err := w.a.W.RunMap(t)
		rn.releasePool(w, true)
		rn.mu.Lock()
		st = &rn.m[pos]
		st.inflight--
		w.mapRun--
		delete(st.runners, w)
		if err != nil {
			rn.taskError(w, st, err, func() error {
				return fmt.Errorf("map task %d on %s: %w", t.Index, w.a.W, err)
			}, true, t.Index)
			continue
		}
		if st.life != tsDone {
			st.life = tsDone
			rn.mapsLeft--
			rn.sum.ShuffleRecords += stats.ShuffleRecords
			rn.sum.MapSpills += stats.Spills
			if clone {
				rn.sum.BackupsWon++
			}
			if rn.mapsLeft == 0 {
				rn.sum.MapWall = time.Since(rn.start)
			}
			rn.cond.Broadcast()
		}
		// A losing duplicate attempt (speculation, or a requeue that raced
		// a still-running clone) is dropped: stats count the winner only.
	}
}

func (rn *schedRun) reduceLoop(w *schedWorker) {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	for {
		if rn.done() || w.dead {
			return
		}
		pos := -1
		if !(rn.s.Staged && rn.mapsLeft > 0) {
			for i := range rn.r {
				st := &rn.r[i]
				if st.life == tsPending && (st.assigned == nil || st.assigned == w) {
					pos = i
					break
				}
			}
		}
		if pos < 0 {
			rn.cond.Wait()
			continue
		}
		if !rn.acquirePoolLocked(w, false) {
			rn.cond.Wait()
			continue
		}
		st := &rn.r[pos]
		rn.unassignLocked(st, false)
		st.life = tsRunning
		st.attempts++
		st.inflight++
		st.runners[w] = true
		w.redRun++
		t := rn.reduces[pos]
		rn.mu.Unlock()
		res, err := w.a.W.RunReduce(t)
		rn.releasePool(w, false)
		rn.mu.Lock()
		st = &rn.r[pos]
		st.inflight--
		w.redRun--
		delete(st.runners, w)
		if err != nil {
			rn.taskError(w, st, err, func() error {
				return fmt.Errorf("reduce task %d on %s: %w", t.Partition, w.a.W, err)
			}, false, t.Partition)
			continue
		}
		if st.life != tsDone {
			st.life = tsDone
			rn.redsLeft--
			rn.sum.Reduces[t.Partition] = res
			rn.cond.Broadcast()
		}
	}
}

// taskError settles one failed attempt (locked): a genuine task error fails
// the job; a lost worker is retired and the task requeued on survivors.
func (rn *schedRun) taskError(w *schedWorker, st *taskState, err error, wrap func() error, isMap bool, index int) {
	if !IsWorkerLost(err) {
		rn.failLocked(wrap())
		return
	}
	rn.workerDeadLocked(w)
	if st.life == tsDone || rn.aborted {
		return
	}
	if st.attempts >= rn.maxAttempts {
		rn.failLocked(fmt.Errorf("%d attempts exhausted: %w", st.attempts, wrap()))
		return
	}
	if rn.live == 0 {
		rn.failLocked(fmt.Errorf("no live workers left: %w", wrap()))
		return
	}
	if st.inflight == 0 {
		st.life = tsPending
		rn.assignLocked(st, isMap, index)
		if isMap {
			rn.sum.MapRetries++
		} else {
			rn.sum.ReduceRetries++
		}
	}
	rn.cond.Broadcast()
}
