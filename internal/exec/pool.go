package exec

// SlotPool is the shared slot ledger for concurrent jobs on one worker
// pool: each job's Scheduler bounds its own per-worker concurrency with its
// Assignment slots (the job's share), and the pool bounds the *total*
// running tasks per worker across every admitted job. Schedulers acquire a
// pool slot before dispatching a task and release it when the task
// returns; a full worker parks the dispatch until any job's task on that
// worker finishes. The pool also feeds the kind-split
// WorkerSnapshot.PoolMapRunning/PoolReduceRunning, so a least-loaded
// policy in one job sees the load every other job put on a worker.

import "sync"

// SlotPool tracks cross-job running tasks per worker. The zero value is
// unusable; build one with NewSlotPool. Workers are identified by the same
// index everywhere: every job sharing the pool must list the same workers
// in the same order in its Scheduler.Workers.
type SlotPool struct {
	mu      sync.Mutex
	mapCap  int // per-worker cap on running map tasks (0 = unlimited)
	redCap  int // per-worker cap on running reduce tasks (0 = unlimited)
	mapRun  []int
	redRun  []int
	subs    map[int]func()
	nextSub int
}

// NewSlotPool builds a pool for `workers` workers with per-worker caps on
// concurrently running map and reduce tasks across all jobs. A zero cap is
// unlimited for that kind (the usual choice for reduce slots, where
// overlapped tasks spend most of their life parked on routes, not working).
func NewSlotPool(workers, mapCap, redCap int) *SlotPool {
	return &SlotPool{
		mapCap: mapCap, redCap: redCap,
		mapRun: make([]int, workers),
		redRun: make([]int, workers),
		subs:   make(map[int]func()),
	}
}

// Running returns worker w's running task count across all jobs.
func (p *SlotPool) Running(w int) int {
	return p.RunningKind(w, true) + p.RunningKind(w, false)
}

// RunningKind returns worker w's running task count of one kind across all
// jobs — the kind-split view WorkerSnapshot.KindLoad-aware policies read.
func (p *SlotPool) RunningKind(w int, mapKind bool) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if w < 0 || w >= len(p.mapRun) {
		return 0
	}
	if mapKind {
		return p.mapRun[w]
	}
	return p.redRun[w]
}

// TryAcquire claims one running-task slot of the given kind on worker w,
// reporting false when the worker is at its cross-job cap. Never blocks.
func (p *SlotPool) TryAcquire(w int, mapKind bool) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if w < 0 || w >= len(p.mapRun) {
		return true // unknown worker: don't gate
	}
	if mapKind {
		if p.mapCap > 0 && p.mapRun[w] >= p.mapCap {
			return false
		}
		p.mapRun[w]++
		return true
	}
	if p.redCap > 0 && p.redRun[w] >= p.redCap {
		return false
	}
	p.redRun[w]++
	return true
}

// Release returns a slot claimed by TryAcquire and wakes every subscribed
// scheduler so parked dispatches re-check the worker. Subscribers are
// invoked after the pool lock is dropped (they take their own run locks).
func (p *SlotPool) Release(w int, mapKind bool) {
	p.mu.Lock()
	if w >= 0 && w < len(p.mapRun) {
		if mapKind && p.mapRun[w] > 0 {
			p.mapRun[w]--
		} else if !mapKind && p.redRun[w] > 0 {
			p.redRun[w]--
		}
	}
	subs := make([]func(), 0, len(p.subs))
	for _, f := range p.subs {
		subs = append(subs, f)
	}
	p.mu.Unlock()
	for _, f := range subs {
		f()
	}
}

// subscribe registers a wakeup callback for slot releases and returns its
// cancel. Scheduler.Run wires its cond broadcast here for the duration of
// the run.
func (p *SlotPool) subscribe(f func()) (cancel func()) {
	p.mu.Lock()
	id := p.nextSub
	p.nextSub++
	p.subs[id] = f
	p.mu.Unlock()
	return func() {
		p.mu.Lock()
		delete(p.subs, id)
		p.mu.Unlock()
	}
}
