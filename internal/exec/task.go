package exec

// The canonical task bodies. RunMapTask and RunReduceTask contain the whole
// per-task data path of the real engine — mapping, map-side combining,
// spill accounting, wave sealing, external merging, stream reduction — so
// the in-process engine (internal/mr) and the multi-process workers
// (internal/mpexec) execute byte-identical task logic and differ only in
// how tasks are dispatched and runs are exchanged.

import (
	"fmt"
	"io"
	"strings"

	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/dfs"
	"blmr/internal/kvstore"
	"blmr/internal/shuffle"
	"blmr/internal/sortx"
	"blmr/internal/store"
)

// MapTask is one schedulable map unit: a contiguous slice of job input.
type MapTask struct {
	Index int
	Split []core.Record
	// Attempt distinguishes re-executions and speculative clones of the
	// same map index: the scheduler stamps every dispatch with a fresh,
	// job-unique attempt ID, and downstream consumers (run tags, routing
	// pushes) use it to deduplicate and supersede. Map output bytes must
	// not depend on it: deterministic re-execution is what keeps barrier
	// output byte-identical through churn.
	Attempt int
}

// MapStats reports one completed map task.
type MapStats struct {
	// ShuffleRecords is the task's post-combine intermediate record count.
	ShuffleRecords int64
	// Spills counts sealed spill waves (SpillBytes crossings).
	Spills int
}

// ReduceTask is one schedulable reduce unit: a partition.
type ReduceTask struct {
	Partition int
}

// ReduceResult reports one completed reduce task.
type ReduceResult struct {
	// Output is the task's final records.
	Output []core.Record
	// Spills counts partial-result store spill runs (pipelined mode).
	Spills int
	// PeakPartialBytes is the largest partial-result store footprint
	// observed (pipelined mode).
	PeakPartialBytes int64
	// MergePasses counts intermediate merge passes forced by
	// Options.MergeFanIn (barrier mode).
	MergePasses int
	// FetchBytes counts wire bytes fetched from run-servers for this task
	// (compressed sections count their on-the-wire size; 0 off the TCP
	// exchange).
	FetchBytes int64
}

// RunMapTask executes one map task against the sink, picking the stream or
// run discipline from opts, and closes the sink on success.
func RunMapTask(job Job, opts Options, t MapTask, sink shuffle.MapSink) (MapStats, error) {
	if opts.StreamDiscipline() {
		return runMapStream(job, opts, t, sink)
	}
	return runMapRuns(job, opts, t, sink)
}

// runMapRuns is the run-discipline map body: partition, sort (or combine),
// and publish waves — sealing a wave early whenever buffered records cross
// Options.SpillBytes (accounted with store.ApproxRecordBytes, Hadoop's
// io.sort spill), and publishing the under-budget tail as the final wave.
// Waves are key-sorted only where a consumer needs the order: barrier
// reducers k-way-merge runs, and a combiner folds through a sort either
// way. Pipelined reducers consume sections through a stream store that
// imposes no input order, so pipelined maps seal unsorted waves — the
// map-side sort is exactly the stage-barrier work the paper's barrier-less
// mode deletes, and skipping it is where pipelined execution beats barrier
// execution over the run-exchange transports.
func runMapRuns(job Job, opts Options, t MapTask, sink shuffle.MapSink) (MapStats, error) {
	hint := 0
	if opts.SpillBytes <= 0 {
		// Presize each run for an identity-shaped mapper; expanding
		// mappers (WordCount) grow from there.
		hint = len(t.Split)/opts.Reducers + 1
	}
	em := core.NewPartitionedEmitter(opts.Reducers, hint)
	var stats MapStats
	// sortPart sorts/combines partition p's buffer in place (stably, so
	// equal keys keep emission order). Pipelined waves skip the sort (see
	// the function comment); combining implies one regardless of mode.
	sortPart := func(p int) {
		if job.Combiner != nil {
			em.Parts[p] = sortx.Combine(em.Parts[p], job.Combiner)
		} else if opts.Mode == Barrier {
			sortx.ByKey(em.Parts[p])
		}
	}
	publish := func(sealed bool) error {
		for p := range em.Parts {
			sortPart(p)
			stats.ShuffleRecords += int64(len(em.Parts[p]))
		}
		if err := sink.PublishWave(em.Parts, sealed); err != nil {
			return err
		}
		if sealed {
			for p := range em.Parts {
				em.Parts[p] = em.Parts[p][:0]
			}
			stats.Spills++
		}
		return nil
	}

	var firstErr error
	if opts.SpillBytes > 0 {
		var buffered int64
		acct := core.EmitterFunc(func(k, v string) {
			if firstErr != nil {
				return
			}
			em.Emit(k, v)
			buffered += store.ApproxRecordBytes(k, v)
			if buffered >= opts.SpillBytes {
				if err := publish(true); err != nil {
					firstErr = err // checked between input records
					return
				}
				buffered = 0
			}
		})
		for _, r := range t.Split {
			if firstErr != nil {
				return stats, firstErr
			}
			job.Mapper.Map(r.Key, r.Value, acct)
		}
		if firstErr != nil {
			return stats, firstErr
		}
	} else {
		for _, r := range t.Split {
			job.Mapper.Map(r.Key, r.Value, em)
		}
	}
	if err := publish(false); err != nil {
		return stats, err
	}
	return stats, sink.Close()
}

// streamSpiller is the optional MapSink capability behind mapper-side spill
// waves on the stream discipline: a non-blocking Send plus sealing the
// mapper's buffered batches to disk as one wave. The in-proc transport
// implements it; when SpillBytes is set and the sink supports it, a mapper
// outrunning its reducers spills instead of buffering without bound or
// wedging on backpressure.
type streamSpiller interface {
	TrySend(p int, batch []core.Record) (bool, error)
	SpillBatches(parts [][]core.Record) error
}

// runMapStream is the stream-discipline map body (the in-process pipelined
// fast path): emitted records accumulate in per-partition batches — or, with
// a combiner, in per-partition hash accumulators bounded by CombineKeys
// distinct keys — and go to the transport one batch per Send. With
// SpillBytes set (and no combiner, whose accumulators are already bounded by
// CombineKeys), full batches that cannot be delivered without blocking stay
// buffered under a byte budget and seal to disk as a spill wave when it
// trips; reducers drain sealed waves after the live stream ends.
func runMapStream(job Job, opts Options, t MapTask, sink shuffle.MapSink) (MapStats, error) {
	var stats MapStats
	var firstErr error
	send := func(p int, b []core.Record) {
		if firstErr != nil {
			return
		}
		stats.ShuffleRecords += int64(len(b))
		if err := sink.Send(p, b); err != nil {
			firstErr = err
		}
	}
	var spiller streamSpiller
	if opts.SpillBytes > 0 && job.Combiner == nil {
		spiller, _ = sink.(streamSpiller)
	}
	var em core.Emitter
	var flushAll func()
	if job.Combiner == nil && spiller != nil {
		bufs := make([][]core.Record, opts.Reducers)
		bufBytes := make([]int64, opts.Reducers)
		var buffered int64
		spillAll := func() {
			var n int64
			for p := range bufs {
				n += int64(len(bufs[p]))
			}
			if n == 0 {
				return
			}
			if err := spiller.SpillBatches(bufs); err != nil {
				firstErr = err
				return
			}
			stats.ShuffleRecords += n
			stats.Spills++
			for p := range bufs {
				if bufs[p] != nil {
					bufs[p] = bufs[p][:0]
				}
				bufBytes[p] = 0
			}
			buffered = 0
		}
		em = core.EmitterFunc(func(k, v string) {
			if firstErr != nil {
				return
			}
			p := core.Partition(k, opts.Reducers)
			b := bufs[p]
			if b == nil {
				b = sink.Batch()
			}
			b = append(b, core.Record{Key: k, Value: v})
			bufs[p] = b
			rb := store.ApproxRecordBytes(k, v)
			bufBytes[p] += rb
			buffered += rb
			if len(b) < opts.BatchSize {
				return
			}
			sent, err := spiller.TrySend(p, b)
			if err != nil {
				firstErr = err
				return
			}
			if sent {
				stats.ShuffleRecords += int64(len(b))
				buffered -= bufBytes[p]
				bufs[p], bufBytes[p] = nil, 0
			} else if buffered >= opts.SpillBytes {
				spillAll()
			}
		})
		flushAll = func() {
			// Mapper exit: the under-budget tail goes out on the blocking
			// path — the stream is ending, so backpressure here is finite.
			for p := range bufs {
				if len(bufs[p]) == 0 {
					continue
				}
				send(p, bufs[p])
				bufs[p] = nil
			}
		}
	} else if job.Combiner == nil {
		bufs := make([][]core.Record, opts.Reducers)
		flush := func(p int) {
			if len(bufs[p]) == 0 {
				return
			}
			send(p, bufs[p])
			bufs[p] = nil
		}
		em = core.EmitterFunc(func(k, v string) {
			p := core.Partition(k, opts.Reducers)
			b := bufs[p]
			if b == nil {
				b = sink.Batch()
			}
			b = append(b, core.Record{Key: k, Value: v})
			bufs[p] = b
			if len(b) >= opts.BatchSize {
				flush(p)
			}
		})
		flushAll = func() {
			for p := range bufs {
				flush(p)
			}
		}
	} else {
		// Combiner path: per-reducer hash accumulators fold same-key
		// records map-side; a buffer drains only when it reaches
		// CombineKeys *distinct* keys (or mapper exit), so skewed streams
		// combine across far more than one batch's worth of records.
		// Draining re-batches to BatchSize. Presize modestly and let maps
		// grow: a CombineKeys-sized map per (mapper, reducer) pair would
		// cost quadratic memory in core count before any record arrives.
		hint := opts.BatchSize
		if opts.CombineKeys < hint {
			hint = opts.CombineKeys
		}
		combufs := make([]map[string]string, opts.Reducers)
		for p := range combufs {
			combufs[p] = make(map[string]string, hint)
		}
		flush := func(p int) {
			m := combufs[p]
			if len(m) == 0 {
				return
			}
			b := sink.Batch()
			for k, v := range m {
				b = append(b, core.Record{Key: k, Value: v})
				if len(b) >= opts.BatchSize {
					send(p, b)
					b = sink.Batch()
				}
			}
			clear(m)
			if len(b) > 0 {
				send(p, b)
			}
		}
		em = core.EmitterFunc(func(k, v string) {
			p := core.Partition(k, opts.Reducers)
			m := combufs[p]
			if old, ok := m[k]; ok {
				m[k] = job.Combiner(old, v)
				return
			}
			m[k] = v
			if len(m) >= opts.CombineKeys {
				flush(p)
			}
		})
		flushAll = func() {
			for p := range combufs {
				flush(p)
			}
		}
	}
	for _, r := range t.Split {
		if firstErr != nil {
			return stats, firstErr
		}
		job.Mapper.Map(r.Key, r.Value, em)
	}
	flushAll() // mapper-exit flush of partial batches
	if firstErr != nil {
		return stats, firstErr
	}
	return stats, sink.Close()
}

// RunReduceTask executes one reduce task over the source. scratch (may be
// nil) backs intermediate merge passes and disk-backed partial stores.
func RunReduceTask(job Job, opts Options, t ReduceTask, src shuffle.ReduceSource, scratch *dfs.RunDir) (ReduceResult, error) {
	var res ReduceResult
	var err error
	if opts.Mode == Barrier {
		res, err = runReduceBarrier(job, opts, t, src, scratch)
	} else {
		res, err = runReducePipelined(job, opts, t, src, scratch)
	}
	if fb, ok := src.(interface{ FetchBytes() int64 }); ok {
		res.FetchBytes = fb.FetchBytes()
	}
	return res, err
}

// closeRuns closes every run that owns a resource.
func closeRuns(runs []sortx.Run) {
	for _, r := range runs {
		if c, ok := r.(io.Closer); ok {
			_ = c.Close()
		}
	}
}

// runReduceBarrier waits for the map barrier, folds the partition's runs to
// at most MergeFanIn with intermediate passes, then streams the final
// k-way merge group by group into the grouped reducer. Runs are ordered
// (map task, publish order) with merge ties broken by run index, which
// reproduces the in-memory engine's stable sort exactly; intermediate
// passes merge contiguous prefixes, preserving that order.
func runReduceBarrier(job Job, opts Options, t ReduceTask, src shuffle.ReduceSource, scratch *dfs.RunDir) (ReduceResult, error) {
	var res ReduceResult
	runs, err := src.Runs()
	if err != nil {
		return res, err
	}
	defer func() { closeRuns(runs) }()
	runs, res.MergePasses, err = mergeToFanIn(runs, opts.MergeFanIn, scratch, t.Partition)
	if err != nil {
		return res, err
	}
	merger := sortx.NewMerger(runs)
	sink := core.NewRecordSink(0)
	gr := job.NewGroup()
	for {
		key, values, ok := merger.NextGroup()
		if !ok {
			break
		}
		// One small copy per group so a reducer that retains its key (most
		// do, into the output) never pins what the key aliases — a whole
		// input line on the in-proc transport, a 64KiB decode-arena chunk
		// on the pooled TCP fetch path.
		gr.Reduce(strings.Clone(key), values, sink)
	}
	if err := merger.Err(); err != nil {
		return res, err
	}
	if c, ok := gr.(core.Cleanup); ok {
		c.Cleanup(sink)
	}
	res.Output = sink.Recs
	return res, nil
}

// mergeToFanIn folds runs down to at most fanIn with intermediate merge
// passes. Each pass merges the first fanIn runs — a contiguous prefix, so
// stable tie-breaking by run index is preserved — into one merged run:
// sealed to scratch when available (bounded memory), in memory otherwise.
// One run encoder is reused across every pass, matching the other sealing
// sites' reuse discipline. Consumed runs are closed eagerly; the returned
// slice replaces runs.
func mergeToFanIn(runs []sortx.Run, fanIn int, scratch *dfs.RunDir, part int) ([]sortx.Run, int, error) {
	passes := 0
	var enc *codec.RunEncoder
	if scratch != nil && len(runs) > fanIn {
		enc = codec.NewRunEncoder(nil, scratch.Compression())
	}
	for len(runs) > fanIn {
		group := runs[:fanIn]
		merged, err := mergeOnce(group, scratch, part, enc)
		closeRuns(group)
		if err != nil {
			return runs, passes, err
		}
		rest := runs[fanIn:]
		runs = append([]sortx.Run{merged}, rest...)
		passes++
	}
	return runs, passes, nil
}

// mergeOnce merges a group of runs into a single run, sealed through enc
// with the scratch directory's codec when disk-backed (enc is non-nil iff
// scratch is).
func mergeOnce(group []sortx.Run, scratch *dfs.RunDir, part int, enc *codec.RunEncoder) (sortx.Run, error) {
	m := sortx.NewMerger(group)
	if scratch == nil {
		recs := m.Drain()
		if err := m.Err(); err != nil {
			return nil, err
		}
		return sortx.NewSliceRun(recs), nil
	}
	w, err := scratch.Create(fmt.Sprintf("merge-r%d", part))
	if err != nil {
		return nil, err
	}
	enc.Reset(w)
	for {
		rec, ok := m.Next()
		if !ok {
			break
		}
		if err := enc.Append(rec); err != nil {
			w.Abort()
			return nil, err
		}
	}
	if err := m.Err(); err != nil {
		w.Abort()
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		w.Abort()
		return nil, err
	}
	if err := w.Close(); err != nil {
		w.Abort()
		return nil, err
	}
	scratch.AddRawBytes(enc.RawBytes())
	return shuffle.NewLazyRun(shuffle.Segment{
		Path: w.Path(), Off: 0, N: w.Bytes(), Comp: scratch.Compression(),
	}), nil
}

// runReducePipelined consumes arriving batches through the stream reducer,
// holding partial results in the configured store.
func runReducePipelined(job Job, opts Options, t ReduceTask, src shuffle.ReduceSource, scratch *dfs.RunDir) (ReduceResult, error) {
	var res ReduceResult
	st := NewTaskStore(job, opts, scratch, t.Partition)
	sr := job.NewStream(st)
	sink := core.NewRecordSink(0)
	for {
		batch, ok, err := src.NextBatch()
		if err != nil {
			return res, err
		}
		if !ok {
			break
		}
		for _, rec := range batch {
			sr.Consume(rec, sink)
		}
		if b := st.ApproxBytes(); b > res.PeakPartialBytes {
			res.PeakPartialBytes = b
		}
		src.Recycle(batch)
	}
	sr.Finish(sink)
	if sp, ok := st.(*store.SpillStore); ok {
		res.Spills = sp.Spills
		if err := sp.Err(); err != nil {
			return res, err
		}
	}
	res.Output = sink.Recs
	return res, nil
}

// NewTaskStore builds reduce task r's partial-result store. With SpillBytes
// set, tree-backed stores become disk-backed spill-merge stores budgeted at
// SpillBytes, so pipelined partial results leave the heap for real; the KV
// store already bounds its own memory through its cache.
func NewTaskStore(job Job, opts Options, spillDir *dfs.RunDir, r int) store.Store {
	if opts.SpillBytes > 0 && opts.Store != store.KV {
		return store.NewSpillStoreComp(opts.SpillBytes, job.Merger, nil,
			spillDir.NewRunSet(fmt.Sprintf("red%d", r)), spillDir.Compression())
	}
	switch opts.Store {
	case store.SpillMerge:
		return store.NewSpillStoreComp(opts.SpillThresholdBytes, job.Merger, nil, nil, opts.Compression)
	case store.KV:
		return store.NewKVStore(kvstore.New(kvstore.Config{CacheBytes: opts.KVCacheBytes}))
	default:
		return store.NewMemStore()
	}
}
