// Package exec is the engine-agnostic execution plane of the real-
// concurrency engine: task descriptors (MapTask/ReduceTask), the canonical
// task bodies (RunMapTask/RunReduceTask) that run user Map/Reduce code
// against a pluggable shuffle transport, and a Scheduler that assigns tasks
// to Workers with per-worker slot limits and first-error propagation.
//
// internal/mr composes these pieces with a shuffle.Transport and a
// LocalWorker into the in-process engine; internal/mpexec composes the same
// task bodies and Scheduler with remote worker proxies into the
// multi-process engine. Job and Options live here so every engine shares
// one vocabulary (internal/mr aliases them for its public API).
package exec

import (
	"runtime"
	"time"

	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/shuffle"
	"blmr/internal/store"
)

// Mode selects barrier or pipelined execution.
type Mode int

// Execution modes.
const (
	Barrier Mode = iota
	Pipelined
)

func (m Mode) String() string {
	if m == Barrier {
		return "barrier"
	}
	return "pipelined"
}

// Job bundles the user code for one MapReduce job (the same shape as
// apps.App, decoupled so the engines stay reusable as standalone libraries).
type Job struct {
	Name      string
	Mapper    core.Mapper
	NewGroup  func() core.GroupReducer
	NewStream func(st store.Store) core.StreamReducer
	Merger    store.Merger
	// Combiner, when non-nil, folds same-key intermediate records on the
	// map side before they are shuffled (Hadoop's combiner; parity with
	// simmr.JobSpec.Combiner). In run-discipline map tasks each published
	// wave is combined before sealing; in stream-discipline (in-process
	// pipelined) tasks a hash accumulator bounded by Options.CombineKeys
	// folds records before batching. It must be commutative and
	// associative, and the reduce function must tolerate pre-combined
	// values (true for aggregation-class jobs whose reduce is the same
	// fold).
	Combiner store.Merger
}

// Options tunes an execution.
type Options struct {
	// Mappers is the number of map tasks / concurrent map workers
	// (default NumCPU).
	Mappers int
	// Reducers is the number of reduce tasks (default NumCPU).
	Reducers int
	// Mode selects barrier or pipelined shuffle (default Barrier).
	Mode Mode
	// Transport selects the shuffle data plane (default shuffle.InProc).
	// The run-exchange transports (shuffle.SpillExchange, shuffle.TCP) seal
	// every map output wave to disk and exchange runs instead of batches.
	Transport shuffle.Kind
	// Store picks the partial-result strategy for pipelined mode.
	Store store.Kind
	// SpillThresholdBytes bounds in-memory partials for SpillMerge.
	SpillThresholdBytes int64
	// KVCacheBytes bounds the KV store cache.
	KVCacheBytes int64
	// QueueCap is the per-reducer channel buffer in batches (default 64,
	// mirroring simmr.Config.QueueCapBatches). Total per-reducer
	// buffering is QueueCap*BatchSize records.
	QueueCap int
	// BatchSize is the number of records a mapper accumulates per reducer
	// before sending one batch over the channel (default 256). 1
	// reproduces the original record-at-a-time shuffle.
	BatchSize int
	// CombineKeys bounds the distinct keys a mapper's per-reducer combine
	// buffer holds before it flushes (default max(BatchSize, 4096)). Only
	// used when Job.Combiner is set; larger buffers fold more duplicates
	// map-side at the cost of mapper memory (Hadoop's io.sort.mb role).
	CombineKeys int
	// SpillBytes, when > 0, bounds each task's buffered intermediate data
	// (accounted with store.ApproxRecordBytes) and turns the shuffle into
	// an external one: run-discipline map tasks sort, encode and seal runs
	// to disk whenever their buffers cross the budget, and reducers stream
	// an external k-way merge over all sealed runs straight into the group
	// reducer — intermediate data never has to fit in RAM. Pipelined
	// reducers hold partial results in a disk-backed spill-merge store
	// with the same budget (Job.Merger required). 0 keeps everything in
	// memory (on the in-proc transport; the run-exchange transports always
	// materialize map output).
	SpillBytes int64
	// SpillDir is the directory for spill-run files. Empty means a fresh
	// temporary directory, removed when the run returns.
	SpillDir string
	// MergeFanIn caps how many runs the external merge opens at once
	// (default 64, Hadoop's io.sort.factor). When a partition has more
	// runs, intermediate merge passes fold the excess into merged runs
	// first, bounding merge memory (runs x 64KiB read buffers) and — over
	// the TCP exchange — concurrently open fetch connections.
	MergeFanIn int
	// Staged (multi-process engine only) restores the pre-overlap control
	// plane: the reduce wave is dispatched only after the entire map wave
	// completes. The default (false) dispatches reduce tasks at job start
	// and streams sealed-run routes to them as map tasks finish, so
	// reducers fetch and consume while later maps are still running —
	// breaking the stage barrier across processes exactly as the pipelined
	// in-process engine does. Barrier-mode output is byte-identical either
	// way (reducers still seal the full routing table before merging).
	// Ignored by the in-process engine, which always overlaps.
	Staged bool
	// Speculative (multi-process engine) enables backup attempts of
	// straggler map tasks: once SpeculativeThreshold of the map wave is
	// done, idle slots may run duplicate attempts of still-running maps on
	// other workers, and the first completion wins (attempt IDs keep
	// duplicate routing pushes idempotent). Mirrors
	// simmr.JobSpec.Speculative. Ignored by the in-process engine.
	Speculative bool
	// SpeculativeThreshold is the completed fraction of the map wave
	// required before clones launch (default 0.75, matching
	// simmr.JobSpec.SpeculativeThreshold).
	SpeculativeThreshold float64
	// HeartbeatInterval (multi-process engine) is the period of worker
	// liveness heartbeats on the control connection (default 1s); a worker
	// silent for 4 intervals is declared dead and its tasks re-executed.
	HeartbeatInterval time.Duration
	// Compression selects the sealed-run codec (default codec.None).
	// Every run the execution seals — spill waves, run-exchange segments,
	// intermediate merge runs, pipelined store spills — is block-compressed
	// with it, and compressed sections travel compressed over the TCP
	// exchange, shrinking both spill I/O and fetch bytes.
	// codec.DeltaBlock additionally front-codes the sorted keys inside each
	// block, the big win for text-heavy keys (WordCount-class workloads).
	// Decompressed merge order is unchanged, so outputs stay byte-identical
	// across codecs.
	Compression codec.Compression
	// DecodeWorkers sizes the TCP fetch plane's parallel block-decode pool:
	// compressed fetched sections CRC-verify and decompress on that many
	// shared workers while the merger consumes decoded blocks in order, so
	// codec work overlaps the merge (and other sections) instead of
	// serializing on the consuming goroutine. Decoded record order — and
	// job output — is byte-identical at any setting. 1 decodes inline; 0
	// defaults to min(GOMAXPROCS, 8). Ignored off the TCP exchange and
	// under codec.None.
	DecodeWorkers int
}

// Normalize fills defaulted fields in place.
func (o *Options) Normalize() {
	if o.Mappers <= 0 {
		o.Mappers = runtime.NumCPU()
	}
	if o.Reducers <= 0 {
		o.Reducers = runtime.NumCPU()
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.CombineKeys <= 0 {
		o.CombineKeys = 4096
		if o.BatchSize > o.CombineKeys {
			o.CombineKeys = o.BatchSize
		}
	}
	if o.SpillThresholdBytes <= 0 {
		o.SpillThresholdBytes = 64 << 20
	}
	if o.KVCacheBytes <= 0 {
		o.KVCacheBytes = 16 << 20
	}
	if o.MergeFanIn <= 1 {
		o.MergeFanIn = 64
	}
	if o.SpeculativeThreshold <= 0 || o.SpeculativeThreshold > 1 {
		o.SpeculativeThreshold = 0.75
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.DecodeWorkers <= 0 {
		o.DecodeWorkers = runtime.GOMAXPROCS(0)
		if o.DecodeWorkers > 8 {
			o.DecodeWorkers = 8
		}
	}
}

// StreamDiscipline reports whether map tasks stream batches (the in-process
// pipelined fast path) instead of publishing sorted waves.
func (o *Options) StreamDiscipline() bool {
	return o.Mode == Pipelined && o.Transport == shuffle.InProc
}

// SplitMaps carves input into one contiguous map task per concurrency slot
// (at most n tasks; fewer when input is small).
func SplitMaps(input []core.Record, n int) []MapTask {
	per := (len(input) + n - 1) / n
	if per == 0 {
		per = 1
	}
	var out []MapTask
	for lo := 0; lo < len(input); lo += per {
		hi := lo + per
		if hi > len(input) {
			hi = len(input)
		}
		out = append(out, MapTask{Index: len(out), Split: input[lo:hi]})
	}
	return out
}

// ReduceTasks returns one reduce task per partition.
func ReduceTasks(n int) []ReduceTask {
	out := make([]ReduceTask, n)
	for r := range out {
		out[r] = ReduceTask{Partition: r}
	}
	return out
}
