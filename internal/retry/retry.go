// Package retry is a minimal capped-exponential-backoff helper shared by the
// engine's dial paths: worker→coordinator connects and the shuffle fetch
// pool. It exists so transient connection failures (a peer restarting, a
// listener not yet up, a kernel backlog overflow) are absorbed close to the
// socket instead of surfacing to task bodies, while persistent failures still
// fail within a bounded, predictable budget.
package retry

import (
	"net"
	"time"
)

// Policy is a capped exponential backoff schedule: attempt k (0-based)
// sleeps min(Base<<k, Max) before running, except attempt 0 which runs
// immediately. Attempts bounds the total tries; the zero value of any field
// falls back to a conservative default via Normalize.
type Policy struct {
	// Base is the first backoff step (before attempt 1).
	Base time.Duration
	// Max caps the per-attempt backoff.
	Max time.Duration
	// Attempts is the total number of tries (>= 1).
	Attempts int
}

// Normalize fills zero fields with defaults: 25ms base, 1s cap, 5 attempts.
func (p Policy) Normalize() Policy {
	if p.Base <= 0 {
		p.Base = 25 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = time.Second
	}
	if p.Attempts <= 0 {
		p.Attempts = 5
	}
	return p
}

// Backoff returns the sleep before 0-based attempt k: 0 for the first
// attempt, then Base doubling up to Max.
func (p Policy) Backoff(k int) time.Duration {
	if k <= 0 {
		return 0
	}
	d := p.Base
	for i := 1; i < k; i++ {
		d *= 2
		if d >= p.Max {
			return p.Max
		}
	}
	return min(d, p.Max)
}

// Do runs f up to p.Attempts times with the policy's backoff between tries,
// returning nil on the first success or the last error.
func (p Policy) Do(f func() error) error {
	p = p.Normalize()
	var err error
	for k := 0; k < p.Attempts; k++ {
		if d := p.Backoff(k); d > 0 {
			time.Sleep(d)
		}
		if err = f(); err == nil {
			return nil
		}
	}
	return err
}

// Dial is net.Dial under the policy: each failed connect backs off and
// retries until the attempt budget is spent.
func (p Policy) Dial(network, addr string) (net.Conn, error) {
	var conn net.Conn
	err := p.Do(func() error {
		c, err := net.Dial(network, addr)
		if err != nil {
			return err
		}
		conn = c
		return nil
	})
	return conn, err
}
