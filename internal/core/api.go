package core

// Emitter receives intermediate records from a Mapper.
type Emitter interface {
	Emit(key, value string)
}

// Output receives final records from a Reducer.
type Output interface {
	Write(key, value string)
}

// Mapper transforms one input record into zero or more intermediate records.
// Implementations must be safe for concurrent use by multiple map tasks or
// provide a Factory (see MapperFactory) so each task gets its own instance.
type Mapper interface {
	Map(key, value string, emit Emitter)
}

// GroupReducer is the classic barrier-mode contract: called once per key
// with every value for that key, in key-sorted order.
type GroupReducer interface {
	Reduce(key string, values []string, out Output)
}

// StreamReducer is the barrier-less contract: records arrive one at a time,
// in arrival (not key) order, possibly interleaved across keys. The reducer
// maintains partial results itself and emits them from Finish.
//
// This mirrors the paper's modified run() function: the framework calls
// Consume for every record as the pipelined shuffle delivers it, then Finish
// exactly once after the last record.
type StreamReducer interface {
	Consume(rec Record, out Output)
	Finish(out Output)
}

// Cleanup is optionally implemented by GroupReducers that keep state across
// keys (cross-key windows, single-reducer aggregations). The barrier engine
// calls Cleanup once per reduce task after the last key, mirroring Hadoop's
// Reducer.cleanup().
type Cleanup interface {
	Cleanup(out Output)
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(key, value string, emit Emitter)

// Map implements Mapper.
func (f MapperFunc) Map(key, value string, emit Emitter) { f(key, value, emit) }

// GroupReducerFunc adapts a function to the GroupReducer interface.
type GroupReducerFunc func(key string, values []string, out Output)

// Reduce implements GroupReducer.
func (f GroupReducerFunc) Reduce(key string, values []string, out Output) { f(key, values, out) }

// EmitterFunc adapts a function to the Emitter interface.
type EmitterFunc func(key, value string)

// Emit implements Emitter.
func (f EmitterFunc) Emit(key, value string) { f(key, value) }

// OutputFunc adapts a function to the Output interface.
type OutputFunc func(key, value string)

// Write implements Output.
func (f OutputFunc) Write(key, value string) { f(key, value) }

// Partition assigns a key to one of n reduce partitions using the same
// stable hash everywhere in the framework (FNV-1a).
func Partition(key string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// Class is the paper's classification of Reduce operations (Table 1).
type Class int

// The seven Reduce-operation classes from Section 4 of the paper.
const (
	ClassIdentity Class = iota
	ClassSorting
	ClassAggregation
	ClassSelection
	ClassPostReduction
	ClassCrossKey
	ClassSingleReducer
)

var classNames = [...]string{
	"Identity",
	"Sorting",
	"Aggregation",
	"Selection",
	"Post-reduction processing",
	"Cross-key operations",
	"Single Reducer Aggregation",
}

func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return "Unknown"
	}
	return classNames[c]
}

// SortRequired reports whether the class needs key-sorted output
// (Table 1's "Key sort required" column).
func (c Class) SortRequired() bool { return c == ClassSorting }

// PartialResultSize describes the asymptotic partial-result memory per
// reducer in the barrier-less mode (Table 1's last column).
func (c Class) PartialResultSize() string {
	switch c {
	case ClassIdentity, ClassSingleReducer:
		return "O(1)"
	case ClassSorting, ClassPostReduction:
		return "O(records)"
	case ClassAggregation:
		return "O(keys)"
	case ClassSelection:
		return "O(k * keys)"
	case ClassCrossKey:
		return "O(window_size)"
	}
	return "?"
}
