// Package core defines the data model and programming interfaces of the
// barrier-less MapReduce framework: records, Map/Reduce contracts for both
// the classic (barrier) and pipelined (barrier-less) execution modes, and
// the Reduce-operation classification from the paper.
package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Record is a key/value pair flowing between stages. Keys compare
// byte-lexicographically everywhere in the framework; numeric keys use the
// order-preserving encodings below so lexicographic order equals numeric
// order.
type Record struct {
	Key   string
	Value string
}

// RecordOverheadBytes approximates per-record bookkeeping overhead
// (headers, pointers) when accounting memory and I/O volume.
const RecordOverheadBytes = 16

// Size returns the accounted in-memory/on-wire size of the record in bytes.
func (r Record) Size() int64 {
	return int64(len(r.Key)) + int64(len(r.Value)) + RecordOverheadBytes
}

func (r Record) String() string { return fmt.Sprintf("%s\t%s", r.Key, r.Value) }

// RecordsSize sums the accounted sizes of a batch of records.
func RecordsSize(recs []Record) int64 {
	var n int64
	for _, r := range recs {
		n += r.Size()
	}
	return n
}

// --- Order-preserving codecs ---------------------------------------------

// EncodeUint64 encodes v so lexicographic string order equals numeric order.
func EncodeUint64(v uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return string(b[:])
}

// DecodeUint64 reverses EncodeUint64.
func DecodeUint64(s string) uint64 {
	if len(s) != 8 {
		panic(fmt.Sprintf("core: DecodeUint64 on %d-byte string", len(s)))
	}
	return binary.BigEndian.Uint64([]byte(s))
}

// EncodeInt64 encodes signed integers order-preservingly by flipping the
// sign bit.
func EncodeInt64(v int64) string {
	return EncodeUint64(uint64(v) ^ (1 << 63))
}

// DecodeInt64 reverses EncodeInt64.
func DecodeInt64(s string) int64 {
	return int64(DecodeUint64(s) ^ (1 << 63))
}

// EncodeFloat64 encodes floats order-preservingly (IEEE 754 trick: flip all
// bits for negatives, flip the sign bit for non-negatives). NaNs sort above
// +Inf and are not otherwise distinguished.
func EncodeFloat64(v float64) string {
	bits := math.Float64bits(v)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	return EncodeUint64(bits)
}

// DecodeFloat64 reverses EncodeFloat64.
func DecodeFloat64(s string) float64 {
	bits := DecodeUint64(s)
	if bits&(1<<63) != 0 {
		bits &^= 1 << 63
	} else {
		bits = ^bits
	}
	return math.Float64frombits(bits)
}

// JoinValues/SplitValues and JoinList/SplitList serialize small tuples and
// lists into a single value string using length-prefixed (uvarint) parts, so
// elements may contain arbitrary bytes — including the binary
// order-preserving encodings above. JoinValues is for fixed-arity tuples
// (e.g. (distance, payload)); JoinList is for variable-length lists (e.g. a
// top-k list). Both use the same binary-safe wire format.
//
// Note that packed strings are NOT order-preserving across elements of
// different lengths; store comparisons must happen on the unpacked parts or
// on fixed-width encoded prefixes.

func packStrings(parts []string) string {
	var n int
	for _, p := range parts {
		n += len(p) + 2
	}
	buf := make([]byte, 0, n)
	for _, p := range parts {
		buf = binary.AppendUvarint(buf, uint64(len(p)))
		buf = append(buf, p...)
	}
	return string(buf)
}

func unpackStrings(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	b := []byte(s)
	for len(b) > 0 {
		n, sz := binary.Uvarint(b)
		if sz <= 0 || int(n) > len(b)-sz {
			panic("core: corrupt packed string")
		}
		out = append(out, string(b[sz:sz+int(n)]))
		b = b[sz+int(n):]
	}
	return out
}

// JoinValues packs a fixed-arity tuple of parts into one value string.
func JoinValues(parts ...string) string { return packStrings(parts) }

// SplitValues unpacks a value produced by JoinValues.
func SplitValues(s string) []string { return unpackStrings(s) }

// JoinList packs a variable-length list of elements into one value string.
func JoinList(elems ...string) string { return packStrings(elems) }

// SplitList unpacks a list produced by JoinList.
func SplitList(s string) []string { return unpackStrings(s) }
