package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRecordSize(t *testing.T) {
	r := Record{Key: "ab", Value: "cde"}
	if got := r.Size(); got != 2+3+RecordOverheadBytes {
		t.Fatalf("Size = %d", got)
	}
	if s := RecordsSize([]Record{r, r}); s != 2*r.Size() {
		t.Fatalf("RecordsSize = %d", s)
	}
}

func TestEncodeUint64OrderProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		ea, eb := EncodeUint64(a), EncodeUint64(b)
		return (a < b) == (ea < eb) && DecodeUint64(ea) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeInt64OrderProperty(t *testing.T) {
	f := func(a, b int64) bool {
		ea, eb := EncodeInt64(a), EncodeInt64(b)
		return (a < b) == (ea < eb) && DecodeInt64(ea) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeFloat64OrderProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ea, eb := EncodeFloat64(a), EncodeFloat64(b)
		if DecodeFloat64(ea) != a && !(a == 0 && DecodeFloat64(ea) == 0) {
			return false
		}
		return (a < b) == (ea < eb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeFloat64Specials(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -1, -1e-300, math.Copysign(0, -1), 0, 1e-300, 1, 1e300, math.Inf(1)}
	enc := make([]string, len(vals))
	for i, v := range vals {
		enc[i] = EncodeFloat64(v)
	}
	if !sort.StringsAreSorted(enc) {
		t.Fatalf("encoded specials not sorted: %q", enc)
	}
}

func TestJoinSplitValues(t *testing.T) {
	parts := []string{"a", "", "c d", "1.5"}
	s := JoinValues(parts...)
	got := SplitValues(s)
	if len(got) != len(parts) {
		t.Fatalf("got %v", got)
	}
	for i := range parts {
		if got[i] != parts[i] {
			t.Fatalf("part %d = %q, want %q", i, got[i], parts[i])
		}
	}
	if SplitValues("") != nil {
		t.Fatal("SplitValues(\"\") should be nil")
	}
}

func TestPartitionStableAndInRange(t *testing.T) {
	keys := []string{"", "a", "b", "hello", "world", "\x00\xff"}
	for _, k := range keys {
		p1 := Partition(k, 7)
		p2 := Partition(k, 7)
		if p1 != p2 {
			t.Fatalf("Partition not stable for %q", k)
		}
		if p1 < 0 || p1 >= 7 {
			t.Fatalf("Partition(%q,7) = %d out of range", k, p1)
		}
	}
	if Partition("anything", 1) != 0 {
		t.Fatal("single partition must map to 0")
	}
	if Partition("anything", 0) != 0 {
		t.Fatal("degenerate n<=1 must map to 0")
	}
}

func TestPartitionSpreadsKeys(t *testing.T) {
	counts := make([]int, 8)
	for i := 0; i < 4096; i++ {
		counts[Partition(EncodeUint64(uint64(i*2654435761)), 8)]++
	}
	for p, c := range counts {
		if c < 256 {
			t.Fatalf("partition %d underloaded: %d of 4096", p, c)
		}
	}
}

func TestClassTable(t *testing.T) {
	cases := []struct {
		c    Class
		sort bool
		size string
	}{
		{ClassIdentity, false, "O(1)"},
		{ClassSorting, true, "O(records)"},
		{ClassAggregation, false, "O(keys)"},
		{ClassSelection, false, "O(k * keys)"},
		{ClassPostReduction, false, "O(records)"},
		{ClassCrossKey, false, "O(window_size)"},
		{ClassSingleReducer, false, "O(1)"},
	}
	for _, tc := range cases {
		if tc.c.SortRequired() != tc.sort {
			t.Errorf("%v SortRequired = %v", tc.c, tc.c.SortRequired())
		}
		if tc.c.PartialResultSize() != tc.size {
			t.Errorf("%v PartialResultSize = %q, want %q", tc.c, tc.c.PartialResultSize(), tc.size)
		}
		if tc.c.String() == "Unknown" {
			t.Errorf("class %d has no name", tc.c)
		}
	}
	if Class(99).String() != "Unknown" {
		t.Error("out-of-range class should be Unknown")
	}
}

func TestFuncAdapters(t *testing.T) {
	var emitted, reduced, written []string
	m := MapperFunc(func(k, v string, e Emitter) { e.Emit(k, v) })
	m.Map("k", "v", EmitterFunc(func(k, v string) { emitted = append(emitted, k+v) }))
	r := GroupReducerFunc(func(k string, vs []string, o Output) { reduced = append(reduced, k); o.Write(k, "out") })
	r.Reduce("x", []string{"1"}, OutputFunc(func(k, v string) { written = append(written, k+v) }))
	if len(emitted) != 1 || emitted[0] != "kv" {
		t.Fatalf("emitted %v", emitted)
	}
	if len(reduced) != 1 || len(written) != 1 || written[0] != "xout" {
		t.Fatalf("reduced %v written %v", reduced, written)
	}
}
