package core

// RecordSink is an Output that accumulates records in memory. Both engines
// use it to collect reducer output; tests use it to capture emissions.
type RecordSink struct {
	Recs []Record
}

// NewRecordSink returns a sink preallocated for capHint records.
func NewRecordSink(capHint int) *RecordSink {
	if capHint < 0 {
		capHint = 0
	}
	return &RecordSink{Recs: make([]Record, 0, capHint)}
}

// Write implements Output.
func (s *RecordSink) Write(k, v string) { s.Recs = append(s.Recs, Record{Key: k, Value: v}) }

// PartitionedEmitter is an Emitter that routes each emitted record into one
// of n per-reducer buffers using Partition. It is the map-side partitioning
// helper shared by the real-concurrency and simulated engines: one
// allocation-lean emitter per map task instead of a fresh closure (and a
// fresh Record boxing path) per record.
//
// capHint presizes each partition buffer; pass the expected records per
// partition (e.g. len(split)/n for identity-shaped mappers) or 0.
type PartitionedEmitter struct {
	Parts [][]Record
}

// NewPartitionedEmitter builds an emitter over n partition buffers.
func NewPartitionedEmitter(n, capHint int) *PartitionedEmitter {
	if n < 1 {
		n = 1
	}
	parts := make([][]Record, n)
	if capHint > 0 {
		for i := range parts {
			parts[i] = make([]Record, 0, capHint)
		}
	}
	return &PartitionedEmitter{Parts: parts}
}

// Emit implements Emitter.
func (e *PartitionedEmitter) Emit(k, v string) {
	p := Partition(k, len(e.Parts))
	e.Parts[p] = append(e.Parts[p], Record{Key: k, Value: v})
}

// Len returns the total number of buffered records across partitions.
func (e *PartitionedEmitter) Len() int {
	n := 0
	for _, p := range e.Parts {
		n += len(p)
	}
	return n
}
