package dfs

// Compressed spill-run tests: a RunDir created with a codec seals and
// reopens compressed runs transparently — including multi-section segment
// files, where each section is its own self-contained compressed run —
// and surfaces codec.ErrCorrupt for truncated compressed files.

import (
	"errors"
	"os"
	"testing"

	"blmr/internal/codec"
	"blmr/internal/core"
)

// sealComp encodes recs with the dir's codec through a RunWriter, returning
// the sealed path and byte count.
func sealComp(t *testing.T, d *RunDir, recs []core.Record) (string, int64) {
	t.Helper()
	w, err := d.Create("c")
	if err != nil {
		t.Fatal(err)
	}
	enc := codec.NewRunEncoder(w, d.Compression())
	for _, r := range recs {
		if err := enc.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	d.AddRawBytes(enc.RawBytes())
	return w.Path(), w.Bytes()
}

func TestCompressedRunRoundTrip(t *testing.T) {
	for _, comp := range []codec.Compression{codec.Block, codec.DeltaBlock} {
		d, err := NewRunDirComp(t.TempDir(), comp)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		recs := mkRecs(500, "cr-")
		path, _ := sealComp(t, d, recs)
		r, err := OpenRunComp(path, comp)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		got := drain(t, r)
		if err := r.Err(); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(recs) {
			t.Fatalf("%v: %d records, want %d", comp, len(got), len(recs))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("%v: record %d = %+v, want %+v", comp, i, got[i], recs[i])
			}
		}
		if d.RawSpilledBytes() <= d.SpilledBytes() {
			t.Fatalf("%v: no compression win on redundant keys: raw=%d sealed=%d",
				comp, d.RawSpilledBytes(), d.SpilledBytes())
		}
	}
}

// TestCompressedSectionReads seals two compressed runs back to back in one
// file (the multi-partition segment layout) and reopens each section
// independently — sections must be self-contained compressed runs.
func TestCompressedSectionReads(t *testing.T) {
	d, err := NewRunDirComp(t.TempDir(), codec.DeltaBlock)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	w, err := d.Create("seg")
	if err != nil {
		t.Fatal(err)
	}
	parts := [][]core.Record{mkRecs(300, "p0-"), mkRecs(200, "p1-")}
	var spans [][2]int64
	enc := codec.NewRunEncoder(nil, d.Compression())
	for _, part := range parts {
		off := w.Bytes()
		enc.Reset(w)
		for _, r := range part {
			if err := enc.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		spans = append(spans, [2]int64{off, w.Bytes() - off})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for p, part := range parts {
		r, err := OpenRunAtComp(w.Path(), spans[p][0], spans[p][1], codec.DeltaBlock)
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, r)
		_ = r.Close()
		if err := r.Err(); err != nil {
			t.Fatalf("section %d: %v", p, err)
		}
		if len(got) != len(part) {
			t.Fatalf("section %d: %d records, want %d", p, len(got), len(part))
		}
		for i := range part {
			if got[i] != part[i] {
				t.Fatalf("section %d record %d: %+v, want %+v", p, i, got[i], part[i])
			}
		}
	}
}

// TestCompressedTruncatedRun: cutting a sealed compressed file mid-block
// must surface codec.ErrCorrupt from the reader, never a panic or a silent
// clean end.
func TestCompressedTruncatedRun(t *testing.T) {
	d, err := NewRunDirComp(t.TempDir(), codec.DeltaBlock)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	path, n := sealComp(t, d, mkRecs(400, "tr-"))
	if err := os.Truncate(path, n-7); err != nil {
		t.Fatal(err)
	}
	r, err := OpenRunComp(path, codec.DeltaBlock)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	drain(t, r)
	if !errors.Is(r.Err(), codec.ErrCorrupt) {
		t.Fatalf("Err() = %v, want codec.ErrCorrupt", r.Err())
	}
}

// TestCompressedRunSet: a RunSet on a compressed dir decodes appended
// (pre-compressed) runs with the dir's codec.
func TestCompressedRunSet(t *testing.T) {
	d, err := NewRunDirComp(t.TempDir(), codec.Block)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := d.NewRunSet("rs")
	recs := mkRecs(250, "set-")
	enc := codec.NewRunEncoder(nil, codec.Block)
	for _, r := range recs {
		if err := enc.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(enc.Bytes(), enc.RawBytes()); err != nil {
		t.Fatal(err)
	}
	runs, err := s.Runs()
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for {
		rec, ok := runs[0].Next()
		if !ok {
			break
		}
		if rec != recs[n] {
			t.Fatalf("record %d: %+v, want %+v", n, rec, recs[n])
		}
		n++
	}
	if n != len(recs) {
		t.Fatalf("decoded %d records, want %d", n, len(recs))
	}
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
}
