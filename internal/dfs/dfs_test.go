package dfs

import (
	"fmt"
	"math"
	"testing"

	"blmr/internal/cluster"
	"blmr/internal/core"
	"blmr/internal/sim"
	"blmr/internal/workload"
)

func mkCluster(k *sim.Kernel, nodes int) *cluster.Cluster {
	cfg := cluster.Default()
	cfg.Nodes = nodes
	cfg.SpeedSpread = 0
	cfg.DiskMBps = 100
	cfg.NICMBps = 100
	cfg.Oversubscription = 1
	return cluster.New(k, cfg)
}

func mkSplits(n, per int) [][]core.Record {
	var splits [][]core.Record
	id := 0
	for i := 0; i < n; i++ {
		var recs []core.Record
		for j := 0; j < per; j++ {
			recs = append(recs, core.Record{Key: fmt.Sprintf("k%06d", id), Value: "v"})
			id++
		}
		splits = append(splits, recs)
	}
	return splits
}

func TestIngestPlacement(t *testing.T) {
	k := sim.NewKernel()
	c := mkCluster(k, 5)
	d := New(c, 3)
	f := d.Ingest("in", mkSplits(10, 4), 1)
	if len(f.Chunks) != 10 {
		t.Fatalf("chunks = %d", len(f.Chunks))
	}
	counts := map[int]int{}
	for _, ch := range f.Chunks {
		if len(ch.Replicas) != 3 {
			t.Fatalf("chunk %d has %d replicas", ch.Index, len(ch.Replicas))
		}
		seen := map[int]bool{}
		for _, r := range ch.Replicas {
			if seen[r.ID] {
				t.Fatalf("chunk %d has duplicate replica on node %d", ch.Index, r.ID)
			}
			seen[r.ID] = true
		}
		counts[ch.Primary().ID]++
	}
	// Round-robin primaries over 5 nodes, 10 chunks: 2 each.
	for id, c := range counts {
		if c != 2 {
			t.Fatalf("node %d is primary for %d chunks, want 2", id, c)
		}
	}
	if got, ok := d.Lookup("in"); !ok || got != f {
		t.Fatal("Lookup failed")
	}
}

func TestIngestVirtualBytesScaled(t *testing.T) {
	k := sim.NewKernel()
	d := New(mkCluster(k, 3), 1)
	splits := mkSplits(1, 10)
	real := core.RecordsSize(splits[0])
	f := d.Ingest("in", splits, 1000)
	if f.Chunks[0].Bytes != real*1000 {
		t.Fatalf("virtual bytes = %d, want %d", f.Chunks[0].Bytes, real*1000)
	}
	if f.TotalBytes() != real*1000 {
		t.Fatal("TotalBytes mismatch")
	}
}

func TestLocalReadSkipsNetwork(t *testing.T) {
	k := sim.NewKernel()
	c := mkCluster(k, 3)
	d := New(c, 2)
	f := d.Ingest("in", mkSplits(1, 100), 1e6) // big virtual chunk
	ch := f.Chunks[0]
	var localT, remoteT sim.Time
	k.Spawn("local", func(p *sim.Proc) {
		recs := d.ReadChunk(p, ch.Primary(), ch)
		if len(recs) != 100 {
			t.Errorf("records = %d", len(recs))
		}
		localT = p.Now()
	})
	k.Run()
	// Remote read from a node holding no replica.
	k2 := sim.NewKernel()
	c2 := mkCluster(k2, 3)
	d2 := New(c2, 1)
	f2 := d2.Ingest("in", mkSplits(1, 100), 1e6)
	ch2 := f2.Chunks[0]
	var other *cluster.Node
	for _, n := range c2.Nodes {
		if n != ch2.Primary() {
			other = n
			break
		}
	}
	k2.Spawn("remote", func(p *sim.Proc) {
		d2.ReadChunk(p, other, ch2)
		remoteT = p.Now()
	})
	k2.Run()
	if remoteT <= localT {
		t.Fatalf("remote read (%v) should cost more than local (%v)", remoteT, localT)
	}
}

func TestWriteReplicationPipeline(t *testing.T) {
	k := sim.NewKernel()
	c := mkCluster(k, 4)
	d := New(c, 3)
	recs := mkSplits(1, 10)[0]
	var done sim.Time
	k.Spawn("writer", func(p *sim.Proc) {
		ch := d.Write(p, c.Nodes[0], "out", recs, 100e6)
		if len(ch.Replicas) != 3 {
			t.Errorf("replicas = %d", len(ch.Replicas))
		}
		if ch.Primary() != c.Nodes[0] {
			t.Error("writer should be primary replica")
		}
		done = p.Now()
	})
	k.Run()
	// 3 disk writes (1s each at 100MB/s) + 2 transfers (1s each) = ~5s.
	if math.Abs(done-5.0) > 0.1 {
		t.Fatalf("replicated write took %v, want ~5.0", done)
	}
	f, ok := d.Lookup("out")
	if !ok || len(f.Chunks) != 1 {
		t.Fatal("output file not registered")
	}
}

func TestWriteAppendsChunks(t *testing.T) {
	k := sim.NewKernel()
	c := mkCluster(k, 4)
	d := New(c, 1)
	k.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			d.Write(p, c.Nodes[i%4], "out", nil, 1000)
		}
	})
	k.Run()
	f, _ := d.Lookup("out")
	if len(f.Chunks) != 5 {
		t.Fatalf("chunks = %d", len(f.Chunks))
	}
	for i, ch := range f.Chunks {
		if ch.Index != i {
			t.Fatalf("chunk %d has index %d", i, ch.Index)
		}
	}
}

func TestReplicationClampedToClusterSize(t *testing.T) {
	k := sim.NewKernel()
	c := mkCluster(k, 2)
	d := New(c, 5)
	f := d.Ingest("in", mkSplits(1, 1), 1)
	if len(f.Chunks[0].Replicas) != 2 {
		t.Fatalf("replicas = %d, want clamped 2", len(f.Chunks[0].Replicas))
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	d := New(mkCluster(k, 3), 2)
	data := workload.Text(5, 50, 20, 5)
	f := d.Ingest("in", workload.SplitEvenly(data, 4), 1)
	got := f.Records()
	if len(got) != len(data) {
		t.Fatalf("records = %d, want %d", len(got), len(data))
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatal("record order not preserved across chunks")
		}
	}
}
