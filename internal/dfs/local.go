package dfs

// Local spill storage for the wall-clock engine. The simulated DFS above
// models replicated chunk placement with virtual timing; RunDir is its
// real-disk sibling for the one kind of file the real-concurrency engine
// needs: spill runs — immutable, key-sorted, codec-encoded record streams
// written once by a mapper or reducer under memory pressure and streamed
// back during the external merge (the role Hadoop's task-local spill files
// play; no replication, because spill runs are recomputable).
//
// Write path: a RunWriter accumulates arbitrary partial writes through a
// buffered writer and seals the file on Close. Read path: OpenRun reopens a
// sealed file as a RunReader, a sortx.Source that decodes records with a
// bounded read buffer, so merging N runs costs O(N * readBufBytes) memory
// no matter how large the runs are. A truncated or corrupt file surfaces
// codec.ErrCorrupt from Err instead of panicking: partially written runs
// are expected debris after crashes.

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/sortx"
)

// readBufBytes is the per-open-run read buffer. The external merge holds
// one per run, so this bounds merge memory at runs*readBufBytes.
const readBufBytes = 64 << 10

// dirSeq distinguishes RunDir instances within this process, so two
// concurrent jobs pointed at the same caller-provided directory never
// collide on O_EXCL file creation (cross-process uniqueness comes from the
// pid in the filename).
var dirSeq atomic.Int64

// RunDir is a directory of spill-run files shared by every task of one job
// execution. Create/OpenRun are safe for concurrent use by multiple tasks;
// individual writers and readers are single-owner. The directory carries
// the job's sealed-run codec: every run sealed into it uses the same
// codec.Compression, and comp-aware readers (RunSet.Runs) decode with it.
type RunDir struct {
	dir     string
	uniq    string // per-instance filename component: pid + instance seq
	own     bool   // created by us => Close removes the whole directory
	comp    codec.Compression
	seq     atomic.Int64
	spilled atomic.Int64
	raw     atomic.Int64

	mu      sync.Mutex
	closed  bool
	created []string // every run file created, for non-owned-dir cleanup
}

// NewRunDir opens an uncompressed spill directory. An empty dir creates a
// fresh temporary directory that Close will remove; a caller-provided dir
// is used as-is and only the run files created through this RunDir are
// cleaned up.
func NewRunDir(dir string) (*RunDir, error) { return NewRunDirComp(dir, codec.None) }

// NewRunDirComp is NewRunDir with an explicit sealed-run codec.
func NewRunDirComp(dir string, comp codec.Compression) (*RunDir, error) {
	uniq := fmt.Sprintf("%d-%d", os.Getpid(), dirSeq.Add(1))
	if dir == "" {
		d, err := os.MkdirTemp("", "blmr-spill-")
		if err != nil {
			return nil, fmt.Errorf("dfs: create spill dir: %w", err)
		}
		return &RunDir{dir: d, uniq: uniq, own: true, comp: comp}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dfs: open spill dir: %w", err)
	}
	return &RunDir{dir: dir, uniq: uniq, comp: comp}, nil
}

// Dir returns the directory path.
func (d *RunDir) Dir() string { return d.dir }

// Compression returns the sealed-run codec every run in this directory
// uses.
func (d *RunDir) Compression() codec.Compression { return d.comp }

// SpilledBytes returns the total bytes sealed into run files so far (the
// on-disk, post-compression volume).
func (d *RunDir) SpilledBytes() int64 { return d.spilled.Load() }

// AddRawBytes accounts n raw (pre-compression) encoded bytes toward the
// directory's totals. Sealers call it once per sealed run so the
// compression ratio is observable job-wide.
func (d *RunDir) AddRawBytes(n int64) { d.raw.Add(n) }

// RawSpilledBytes returns the total raw (pre-compression) encoded bytes
// behind the sealed runs — equal to SpilledBytes when the codec is None.
func (d *RunDir) RawSpilledBytes() int64 { return d.raw.Load() }

// Create opens a new run file for writing. tag labels the file for
// debugging (e.g. "m3-p7"); uniqueness comes from an internal sequence.
func (d *RunDir) Create(tag string) (*RunWriter, error) {
	path := filepath.Join(d.dir, fmt.Sprintf("%s-%06d-%s.run", d.uniq, d.seq.Add(1), tag))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dfs: create spill run: %w", err)
	}
	d.mu.Lock()
	d.created = append(d.created, path)
	d.mu.Unlock()
	return &RunWriter{d: d, f: f, w: bufio.NewWriterSize(f, readBufBytes), path: path}, nil
}

// Close removes every run file created through this RunDir — the whole
// directory when owned, the individual files (best-effort; most are
// already gone via Release/Abort) when the caller provided the directory —
// so error paths that skip Release never leak sealed runs. Run files
// created through this RunDir become invalid.
func (d *RunDir) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if d.own {
		return os.RemoveAll(d.dir)
	}
	for _, p := range d.created {
		_ = os.Remove(p)
	}
	d.created = nil
	return nil
}

// RunWriter streams one spill run to disk. Writes may be arbitrarily
// partial (the encoder hands over whatever it has buffered); Close flushes
// and seals the file. Not safe for concurrent use.
type RunWriter struct {
	d     *RunDir
	f     *os.File
	w     *bufio.Writer
	path  string
	bytes int64
	err   error
}

// Write implements io.Writer.
func (w *RunWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := w.w.Write(p)
	w.bytes += int64(n)
	if err != nil {
		w.err = fmt.Errorf("dfs: write spill run %s: %w", w.path, err)
	}
	return n, w.err
}

// Path returns the file path of the run (valid after Close for OpenRun).
func (w *RunWriter) Path() string { return w.path }

// Bytes returns the bytes written so far.
func (w *RunWriter) Bytes() int64 { return w.bytes }

// Close flushes buffered data and seals the run.
func (w *RunWriter) Close() error {
	flushErr := w.w.Flush()
	closeErr := w.f.Close()
	if w.err == nil && flushErr != nil {
		w.err = fmt.Errorf("dfs: flush spill run %s: %w", w.path, flushErr)
	}
	if w.err == nil && closeErr != nil {
		w.err = fmt.Errorf("dfs: seal spill run %s: %w", w.path, closeErr)
	}
	if w.err == nil {
		w.d.spilled.Add(w.bytes)
	}
	return w.err
}

// Abort discards the run: the file is closed and removed, and its bytes are
// not accounted. Safe to call after a failed Write.
func (w *RunWriter) Abort() {
	w.w = nil
	_ = w.f.Close()
	_ = os.Remove(w.path)
}

// RunReader streams records back from a sealed run file. It implements
// sortx.Source: Next returns ok=false both at end-of-run and on error, and
// Err distinguishes the two. Not safe for concurrent use.
type RunReader struct {
	f   *os.File
	sr  codec.RecordReader
	err error
}

// OpenRun reopens a sealed uncompressed run file for streaming reads.
func OpenRun(path string) (*RunReader, error) { return OpenRunComp(path, codec.None) }

// OpenRunComp reopens a sealed run file written with the given codec.
func OpenRunComp(path string, comp codec.Compression) (*RunReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dfs: open spill run: %w", err)
	}
	return &RunReader{f: f, sr: codec.NewRunDecoder(bufio.NewReaderSize(f, readBufBytes), comp)}, nil
}

// OpenRunAt reopens the byte range [off, off+n) of a sealed spill file as
// one streaming run — the read side of multi-partition segment files,
// where each budget crossing seals a single file holding every partition's
// sorted run back to back (Hadoop's io.sort spill layout) and the writer
// remembers per-partition offsets.
func OpenRunAt(path string, off, n int64) (*RunReader, error) {
	return OpenRunAtComp(path, off, n, codec.None)
}

// OpenRunAtComp is OpenRunAt for a section sealed with the given codec.
// Each section is a complete self-contained run (header and whole blocks),
// so only the blocks the read actually touches are decompressed.
func OpenRunAtComp(path string, off, n int64, comp codec.Compression) (*RunReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dfs: open spill segment: %w", err)
	}
	sec := io.NewSectionReader(f, off, n)
	return &RunReader{f: f, sr: codec.NewRunDecoder(bufio.NewReaderSize(sec, readBufBytes), comp)}, nil
}

// Next implements sortx.Run.
func (r *RunReader) Next() (core.Record, bool) {
	if r.err != nil {
		return core.Record{}, false
	}
	rec, ok := r.sr.Next()
	if !ok && r.sr.Err() != nil {
		r.err = fmt.Errorf("dfs: read spill run %s: %w", r.f.Name(), r.sr.Err())
	}
	return rec, ok
}

// Err implements sortx.Source.
func (r *RunReader) Err() error { return r.err }

// Close releases the underlying file.
func (r *RunReader) Close() error { return r.f.Close() }

// RunSet is an append-only sequence of runs owned by one task (one mapper's
// spills for one partition, or one reducer's store spills). Append seals
// each encoded run as a file; Open streams them all back in append order.
// Append and Open are phase-separated (write everything, then read), never
// concurrent — matching the spill lifecycle.
type RunSet struct {
	d     *RunDir
	tag   string
	paths []string
	open  []*RunReader
	bytes int64
}

// NewRunSet creates an empty run set writing into d.
func (d *RunDir) NewRunSet(tag string) *RunSet { return &RunSet{d: d, tag: tag} }

// Append seals buf (one complete, key-sorted run, already encoded with the
// directory's codec) as a new run file. rawBytes is the run's standard
// (pre-compression) encoded size, for ratio accounting; pass len(buf) for
// uncompressed runs. The write goes through the buffered partial-write path
// so large runs never need a single syscall-sized buffer.
func (s *RunSet) Append(buf []byte, rawBytes int64) error {
	w, err := s.d.Create(s.tag)
	if err != nil {
		return err
	}
	// Feed the writer in bounded slices: exercises the same partial-write
	// path a streaming encoder would use.
	for off := 0; off < len(buf); off += readBufBytes {
		end := off + readBufBytes
		if end > len(buf) {
			end = len(buf)
		}
		if _, err := w.Write(buf[off:end]); err != nil {
			w.Abort()
			return err
		}
	}
	if err := w.Close(); err != nil {
		w.Abort()
		return err
	}
	s.d.AddRawBytes(rawBytes)
	s.paths = append(s.paths, w.Path())
	s.bytes += int64(len(buf))
	return nil
}

// Len returns the number of sealed runs.
func (s *RunSet) Len() int { return len(s.paths) }

// Bytes returns the total sealed bytes across runs.
func (s *RunSet) Bytes() int64 { return s.bytes }

// Runs reopens every sealed run as a streaming reader, in append order,
// typed for direct use in a sortx merge (each returned Run is a
// sortx.Source whose Err reports read failures). The readers stay owned by
// the set; Release closes them. The signature deliberately matches
// store.RunStore so a RunSet can back a spill store without an adapter.
func (s *RunSet) Runs() ([]sortx.Run, error) {
	runs := make([]sortx.Run, 0, len(s.paths))
	for _, p := range s.paths {
		r, err := OpenRunComp(p, s.d.comp)
		if err != nil {
			_ = s.Release()
			return nil, err
		}
		s.open = append(s.open, r)
		runs = append(runs, r)
	}
	return runs, nil
}

// Release closes any open readers and deletes the run files.
func (s *RunSet) Release() error {
	var first error
	for _, r := range s.open {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.open = nil
	for _, p := range s.paths {
		if err := os.Remove(p); err != nil && first == nil {
			first = err
		}
	}
	s.paths = nil
	return first
}

// CRCFile recomputes the CRC-32C of the whole file at path — the survival
// scan a returning worker runs over its sealed runs before advertising them
// for re-attach. A file that was deleted, truncated or bit-rotted since it
// was sealed simply fails the caller's comparison; it is not an error here.
func CRCFile(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	h := crc32.New(crcTable)
	if _, err := io.Copy(h, f); err != nil {
		return 0, err
	}
	return h.Sum32(), nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)
