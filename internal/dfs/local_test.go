package dfs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/sortx"
)

func encodeRun(recs []core.Record) []byte { return codec.AppendRecords(nil, recs) }

func mkRecs(n int, prefix string) []core.Record {
	recs := make([]core.Record, n)
	for i := range recs {
		recs[i] = core.Record{Key: fmt.Sprintf("%s%06d", prefix, i), Value: fmt.Sprintf("v%d", i)}
	}
	return recs
}

func drain(t *testing.T, r *RunReader) []core.Record {
	t.Helper()
	var out []core.Record
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		out = append(out, rec)
	}
	return out
}

// TestRunWriterPartialWriteReopen writes one run as many tiny partial
// writes (far smaller than the bufio buffer, and crossing its boundary),
// seals it, reopens it, and checks the stream decodes byte-for-byte.
func TestRunWriterPartialWriteReopen(t *testing.T) {
	d, err := NewRunDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	recs := mkRecs(20_000, "k") // ~300KB encoded, crosses the 64KB buffer
	buf := encodeRun(recs)
	w, err := d.Create("partial")
	if err != nil {
		t.Fatal(err)
	}
	// Dribble the encoding in 7-byte partial writes (worst case: every
	// record straddles multiple Write calls).
	for off := 0; off < len(buf); off += 7 {
		end := off + 7
		if end > len(buf) {
			end = len(buf)
		}
		if _, err := w.Write(buf[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if w.Bytes() != int64(len(buf)) {
		t.Fatalf("writer accounted %d bytes, want %d", w.Bytes(), len(buf))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if d.SpilledBytes() != int64(len(buf)) {
		t.Fatalf("dir accounted %d spilled bytes, want %d", d.SpilledBytes(), len(buf))
	}

	r, err := OpenRun(w.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := drain(t, r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(got) != len(recs) {
		t.Fatalf("reopened run decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %v, want %v", i, got[i], recs[i])
		}
	}
}

// TestRunReaderTruncatedFile: a run whose file was cut mid-record (a crash
// between partial writes) must surface codec.ErrCorrupt, not panic, and
// must still yield every record before the cut.
func TestRunReaderTruncatedFile(t *testing.T) {
	d, err := NewRunDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	recs := mkRecs(100, "t")
	buf := encodeRun(recs)
	w, err := d.Create("trunc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(buf); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: truncate to the middle of record 51.
	cut := int64(0)
	for _, r := range recs[:51] {
		cut += codec.EncodedSize(r)
	}
	if err := os.Truncate(w.Path(), cut+2); err != nil {
		t.Fatal(err)
	}

	r, err := OpenRun(w.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := drain(t, r)
	if len(got) != 51 {
		t.Fatalf("decoded %d records before truncation point, want 51", len(got))
	}
	if !errors.Is(r.Err(), codec.ErrCorrupt) {
		t.Fatalf("Err() = %v, want codec.ErrCorrupt", r.Err())
	}
	// The reader is a sortx.Source; the merger must report the failure.
	r2, err := OpenRun(w.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	m := sortx.NewMerger([]sortx.Run{r2})
	m.Drain()
	if !errors.Is(m.Err(), codec.ErrCorrupt) {
		t.Fatalf("Merger.Err() = %v, want codec.ErrCorrupt", m.Err())
	}
}

// TestRunSetLifecycle appends several runs, reopens them in order, merges
// them, and verifies Release removes the files.
func TestRunSetLifecycle(t *testing.T) {
	d, err := NewRunDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	s := d.NewRunSet("r0")
	want := 0
	for run := 0; run < 3; run++ {
		recs := mkRecs(50, fmt.Sprintf("run%d-", run))
		if err := s.Append(encodeRun(recs), int64(len(encodeRun(recs)))); err != nil {
			t.Fatal(err)
		}
		want += len(recs)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	runs, err := s.Runs()
	if err != nil {
		t.Fatal(err)
	}
	m := sortx.NewMerger(runs)
	merged := m.Drain()
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	if len(merged) != want {
		t.Fatalf("merged %d records, want %d", len(merged), want)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Key < merged[i-1].Key {
			t.Fatalf("merge out of order at %d: %q < %q", i, merged[i].Key, merged[i-1].Key)
		}
	}
	if err := s.Release(); err != nil {
		t.Fatal(err)
	}
	left, err := filepath.Glob(filepath.Join(d.Dir(), "*.run"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("Release left %d run files behind", len(left))
	}
}

// TestRunDirOwnedCleanup: a RunDir over a generated temp dir removes it on
// Close; one over a caller's dir leaves the dir itself alone.
func TestRunDirOwnedCleanup(t *testing.T) {
	d, err := NewRunDir("")
	if err != nil {
		t.Fatal(err)
	}
	w, err := d.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(encodeRun(mkRecs(1, "a"))); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(d.Dir()); !os.IsNotExist(err) {
		t.Fatalf("owned temp dir still exists after Close (stat err: %v)", err)
	}

	// Caller-provided dir: Close keeps the directory but removes the run
	// files created through the RunDir — an error path that skipped
	// Release (e.g. a failed job) must not leak sealed runs.
	keep := t.TempDir()
	d2, err := NewRunDir(keep)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := d2.Create("leaked")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Write(encodeRun(mkRecs(1, "b"))); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("caller-provided dir removed by Close: %v", err)
	}
	if _, err := os.Stat(w2.Path()); !os.IsNotExist(err) {
		t.Fatalf("sealed run leaked in caller-provided dir after Close (stat err: %v)", err)
	}
}

// TestRunWriterAbort discards a half-written run without accounting it.
func TestRunWriterAbort(t *testing.T) {
	d, err := NewRunDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	w, err := d.Create("abort")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("half a rec")); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if _, err := os.Stat(w.Path()); !os.IsNotExist(err) {
		t.Fatal("aborted run file still exists")
	}
	if d.SpilledBytes() != 0 {
		t.Fatalf("aborted bytes were accounted: %d", d.SpilledBytes())
	}
}
