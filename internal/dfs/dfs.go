// Package dfs is a chunked, replicated distributed file system over the
// simulated cluster — the HDFS stand-in. Files are split into chunks, each
// chunk placed on `replication` nodes; reads prefer a local replica
// (map-task data locality), writes stream through a replication pipeline
// exactly like HDFS: local disk write plus chained transfers to the remote
// replicas.
//
// Chunk payloads are real records held once in memory; replica placement is
// metadata. Only the virtual byte size participates in timing.
package dfs

import (
	"fmt"

	"blmr/internal/cluster"
	"blmr/internal/core"
	"blmr/internal/sim"
	"blmr/internal/workload"
)

// Chunk is one replicated unit of a file.
type Chunk struct {
	Index    int
	Bytes    int64 // virtual bytes used for timing and capacity accounting
	Replicas []*cluster.Node
	Records  []core.Record
}

// Primary returns the first replica — the data-local execution target.
func (c *Chunk) Primary() *cluster.Node { return c.Replicas[0] }

// File is a named sequence of chunks.
type File struct {
	Name   string
	Chunks []*Chunk
}

// Records flattens all chunk payloads (for verification in tests).
func (f *File) Records() []core.Record {
	var out []core.Record
	for _, c := range f.Chunks {
		out = append(out, c.Records...)
	}
	return out
}

// TotalBytes sums virtual chunk sizes.
func (f *File) TotalBytes() int64 {
	var n int64
	for _, c := range f.Chunks {
		n += c.Bytes
	}
	return n
}

// DFS is the namespace plus placement policy.
type DFS struct {
	c           *cluster.Cluster
	replication int
	files       map[string]*File
	rng         *workload.RNG
	next        int // rotating placement cursor
}

// New creates a DFS with the given replication factor (the paper used 3).
func New(c *cluster.Cluster, replication int) *DFS {
	if replication < 1 {
		replication = 1
	}
	if replication > len(c.Nodes) {
		replication = len(c.Nodes)
	}
	return &DFS{
		c:           c,
		replication: replication,
		files:       make(map[string]*File),
		rng:         workload.NewRNG(0xD15C),
	}
}

// Lookup returns a file by name.
func (d *DFS) Lookup(name string) (*File, bool) {
	f, ok := d.files[name]
	return f, ok
}

// Ingest registers input data as a file without charging simulation time
// (the dataset exists before the job starts, as in the paper's experiments).
// splits become chunks; virtual sizes are the record sizes scaled by
// byteScale. Replicas are placed round-robin from a rotating start so load
// is balanced and deterministic.
func (d *DFS) Ingest(name string, splits [][]core.Record, byteScale float64) *File {
	f := &File{Name: name}
	for i, recs := range splits {
		ch := &Chunk{
			Index:   i,
			Bytes:   int64(float64(core.RecordsSize(recs)) * byteScale),
			Records: recs,
		}
		for r := 0; r < d.replication; r++ {
			ch.Replicas = append(ch.Replicas, d.c.Nodes[(d.next+r)%len(d.c.Nodes)])
		}
		d.next = (d.next + 1) % len(d.c.Nodes)
		f.Chunks = append(f.Chunks, ch)
	}
	d.files[name] = f
	return f
}

// ReadChunk reads a chunk from the perspective of a task on node at: a local
// replica costs one disk read; otherwise the nearest replica's disk read
// plus a network transfer.
func (d *DFS) ReadChunk(p *sim.Proc, at *cluster.Node, ch *Chunk) []core.Record {
	var src *cluster.Node
	for _, r := range ch.Replicas {
		if r == at {
			src = r
			break
		}
	}
	if src == nil {
		src = ch.Replicas[0]
	}
	src.DiskRead(p, ch.Bytes)
	d.c.Transfer(p, src, at, ch.Bytes) // no-op when src == at
	return ch.Records
}

// Write appends one chunk to file name through a replication pipeline
// rooted at node from: local disk write, then chained transfer+write to each
// additional replica. Returns the created chunk.
func (d *DFS) Write(p *sim.Proc, from *cluster.Node, name string, recs []core.Record, virtBytes int64) *Chunk {
	f := d.files[name]
	if f == nil {
		f = &File{Name: name}
		d.files[name] = f
	}
	replicas := []*cluster.Node{from}
	cursor := d.next
	for len(replicas) < d.replication {
		cand := d.c.Nodes[cursor%len(d.c.Nodes)]
		cursor++
		if cand != from {
			replicas = append(replicas, cand)
		}
	}
	d.next = (d.next + 1) % len(d.c.Nodes)
	// Replication pipeline: each hop transfers then writes. Pipelining is
	// approximated hop-sequentially at chunk granularity (the cluster's
	// transfer chunking interleaves concurrent writers).
	prev := from
	for i, rep := range replicas {
		if i > 0 {
			d.c.Transfer(p, prev, rep, virtBytes)
		}
		rep.DiskWrite(p, virtBytes)
		prev = rep
	}
	ch := &Chunk{Index: len(f.Chunks), Bytes: virtBytes, Replicas: replicas, Records: recs}
	f.Chunks = append(f.Chunks, ch)
	return ch
}

// String summarizes placement for debugging.
func (d *DFS) String() string {
	return fmt.Sprintf("dfs{files: %d, replication: %d}", len(d.files), d.replication)
}
