package harness

import "testing"

// TestCompressionTradeoffSweep: with the calibrated ratios and an LZ-class
// CompressDelay, sealed-run compression must speed an I/O-bound
// run-exchange WordCount up monotonically — none >= block >= delta — in
// both modes (the higher-ratio codec always wins while the CPU price stays
// below the I/O savings). Small slack for discrete-event reordering.
func TestCompressionTradeoffSweep(t *testing.T) {
	const slack = 1.005
	sw := CompressionTradeoff()
	if len(sw.Series) != 2 {
		t.Fatalf("want 2 series, got %d", len(sw.Series))
	}
	for _, ser := range sw.Series {
		if len(ser.Y) != 3 {
			t.Fatalf("%s: want 3 codecs, got %d", ser.Label, len(ser.Y))
		}
		if ser.Y[1] > ser.Y[0]*slack || ser.Y[2] > ser.Y[1]*slack {
			t.Fatalf("%s: compression did not pay: none=%.1f block=%.1f delta=%.1f",
				ser.Label, ser.Y[0], ser.Y[1], ser.Y[2])
		}
	}
	t.Log("\n" + sw.Render())
}
