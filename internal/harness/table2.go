package harness

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"runtime"
	"strings"
)

// Table2Row is one application's programmer-effort comparison: lines of
// code of the original (barrier) reducer vs its barrier-less counterpart —
// the reproduction of the paper's Table 2. We count the actual source lines
// of this repository's implementations.
type Table2Row struct {
	App              string
	OriginalLoC      int
	BarrierlessLoC   int
	IncreasePercent  int
	OriginalDecls    []string
	BarrierlessDecls []string
}

// table2Spec maps each application to the declarations implementing its two
// forms in internal/reducers (and internal/apps for shared window ops).
var table2Spec = []struct {
	app      string
	file     string
	orig     []string
	noBarier []string
}{
	{
		app:      "Sort",
		file:     "reducers.go",
		orig:     []string{"SortingGroup", "SortingGroup.Reduce"},
		noBarier: []string{"SortingStream", "NewSortingStream", "SortingStream.Consume", "SortingStream.Finish", "SumMerger"},
	},
	{
		app:      "WordCount",
		file:     "reducers.go",
		orig:     []string{"AggregationGroup", "AggregationGroup.Reduce"},
		noBarier: []string{"AggregationStream", "NewAggregationStream", "AggregationStream.Consume", "AggregationStream.Finish"},
	},
	{
		app:      "k-Nearest Neighbors",
		file:     "selection.go",
		orig:     []string{"SelectionGroup", "SelectionGroup.Reduce"},
		noBarier: []string{"SelectionStream", "NewSelectionStream", "SelectionStream.Consume", "SelectionStream.Finish", "insertTopK", "SelectionMerger"},
	},
	{
		app:      "Post Processing",
		file:     "postreduce.go",
		orig:     []string{"PostReductionGroup", "PostReductionGroup.Reduce"},
		noBarier: []string{"PostReductionStream", "NewPostReductionStream", "PostReductionStream.Consume", "PostReductionStream.Finish", "SetUnionMerger"},
	},
	{
		app:      "Genetic Algorithm",
		file:     "crosskey.go",
		orig:     []string{"CrossKeyWindow", "NewCrossKeyWindow", "CrossKeyWindow.Reduce", "CrossKeyWindow.Cleanup", "CrossKeyWindow.Consume", "CrossKeyWindow.Finish"},
		noBarier: []string{"CrossKeyWindow", "NewCrossKeyWindow", "CrossKeyWindow.Reduce", "CrossKeyWindow.Cleanup", "CrossKeyWindow.Consume", "CrossKeyWindow.Finish"},
	},
	{
		app:      "Black-Scholes",
		file:     "moments.go",
		orig:     []string{"Moments", "NewMoments", "Moments.Reduce", "Moments.Cleanup", "Moments.Finish"},
		noBarier: []string{"Moments", "NewMoments", "Moments.Consume", "Moments.Finish"},
	},
}

// Table2 counts the source lines of this repository's barrier and
// barrier-less reducer implementations per application.
func Table2() ([]Table2Row, error) {
	dir, err := reducersDir()
	if err != nil {
		return nil, err
	}
	var rows []Table2Row
	for _, spec := range table2Spec {
		sizes, err := declLines(filepath.Join(dir, spec.file))
		if err != nil {
			return nil, err
		}
		o := sumDecls(sizes, spec.orig)
		n := sumDecls(sizes, spec.noBarier)
		inc := 0
		if o > 0 {
			inc = (n - o) * 100 / o
		}
		if inc < 0 {
			inc = 0
		}
		rows = append(rows, Table2Row{
			App:              spec.app,
			OriginalLoC:      o,
			BarrierlessLoC:   n,
			IncreasePercent:  inc,
			OriginalDecls:    spec.orig,
			BarrierlessDecls: spec.noBarier,
		})
	}
	return rows, nil
}

// reducersDir locates internal/reducers relative to this source file.
func reducersDir() (string, error) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("harness: cannot locate source directory")
	}
	return filepath.Join(filepath.Dir(self), "..", "reducers"), nil
}

// declLines parses a file and returns source-line counts per top-level
// declaration, keyed "Name" for types/functions and "Recv.Name" for methods.
func declLines(path string) (map[string]int, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("harness: parse %s: %w", path, err)
	}
	out := map[string]int{}
	lines := func(n ast.Node) int {
		return fset.Position(n.End()).Line - fset.Position(n.Pos()).Line + 1
	}
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			name := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) > 0 {
				name = recvName(d.Recv.List[0].Type) + "." + name
			}
			out[name] = lines(d)
		case *ast.GenDecl:
			for _, s := range d.Specs {
				if ts, ok := s.(*ast.TypeSpec); ok {
					out[ts.Name.Name] = lines(ts)
				}
			}
		}
	}
	return out, nil
}

func recvName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return recvName(t.X)
	case *ast.Ident:
		return t.Name
	}
	return "?"
}

func sumDecls(sizes map[string]int, names []string) int {
	total := 0
	for _, n := range names {
		total += sizes[n]
	}
	return total
}

// RenderTable2 formats the effort table like the paper's Table 2.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("table2: programmer effort (lines of code) to convert to barrier-less\n")
	fmt.Fprintf(&b, "%-22s %10s %13s %10s\n", "application", "original", "barrier-less", "% increase")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %10d %13d %9d%%\n", r.App, r.OriginalLoC, r.BarrierlessLoC, r.IncreasePercent)
	}
	return b.String()
}
