package harness

import (
	"fmt"

	"blmr/internal/apps"
	"blmr/internal/simmr"
)

// RestartTolerance is the stated agreement band between simulated and real
// coordinator crash-restart overhead: the relative overheads
// (resumed/baseline - 1) must agree within this many absolute points. As
// with FaultTolerance the band is wide on purpose — the simulator predicts
// a calibrated multi-GB cluster while the real parity run is a laptop-scale
// 3-worker job whose restart window is dominated by process and socket
// latency — but it still rejects sign errors and runaway recovery (e.g. a
// resume re-executing the whole map wave the journal says to re-attach).
const RestartTolerance = 0.75

// RestartEstimate is one simulated coordinator-crash experiment: the
// undisturbed completion, the crash-restarted run's completion, and the
// relative recovery overhead (Resumed/Base - 1).
type RestartEstimate struct {
	Base     float64
	Resumed  float64
	Overhead float64
	// ReattachedMaps is how many journaled map outputs the restarted
	// coordinator re-attached from surviving sealed runs instead of
	// re-executing.
	ReattachedMaps int
	// Retried is how many map attempts the crash cost (spanned or finished
	// into the dead control plane, so never journaled).
	Retried int
}

// restartSpec is the sweep's canonical job: WordCount on a small TCP worker
// pool, the configuration the real crash-restart tests exercise. The
// control-plane cost knobs fall back to defaults when the workload
// calibration leaves them zero.
func restartSpec(sizeGB float64, workers int, mode simmr.Mode) RunSpec {
	costs := CalibWordCount
	def := simmr.DefaultCosts()
	if costs.RunFetchDelay == 0 {
		costs.RunFetchDelay = def.RunFetchDelay
	}
	if costs.CoordRestartDelay == 0 {
		costs.CoordRestartDelay = def.CoordRestartDelay
	}
	if costs.ReattachPerMap == 0 {
		costs.ReattachPerMap = def.ReattachPerMap
	}
	return RunSpec{
		App: apps.WordCount(), Data: WordCountData(sizeGB), Mode: mode,
		Reducers: 8, Costs: costs, Workers: workers,
		Transport: simmr.TCPRunExchange,
	}
}

// RestartPrediction simulates a coordinator crash at killFrac of the
// undisturbed completion time and returns the predicted recovery overhead —
// the number the real-engine parity test compares its measured overhead
// against (within RestartTolerance).
func RestartPrediction(sizeGB float64, workers int, killFrac float64, mode simmr.Mode) RestartEstimate {
	spec := restartSpec(sizeGB, workers, mode)
	base := Run(spec)
	spec.KillCoordinatorAt = base.Completion * killFrac
	resumed := Run(spec)
	return RestartEstimate{
		Base:           base.Completion,
		Resumed:        resumed.Completion,
		Overhead:       resumed.Completion/base.Completion - 1,
		ReattachedMaps: resumed.ReattachedMaps,
		Retried:        resumed.MapRetries,
	}
}

// RestartSweep sweeps the coordinator crash time over the job (killFracs
// are fractions of the undisturbed completion) on a `workers`-node pool and
// reports completion for both modes. Each point's note records how many
// journaled maps re-attached — the later the crash, the more of the map
// wave survives as sealed runs and the closer the resumed completion stays
// to base + CoordRestartDelay; crashes past the map wave re-attach it all.
func RestartSweep(sizeGB float64, workers int, killFracs []float64) Sweep {
	sw := Sweep{
		ID:     "RestartSweep",
		Title:  fmt.Sprintf("WordCount %.3ggb, %d workers over TCP: completion vs when the coordinator dies", sizeGB, workers),
		XLabel: "crash time (frac of base)",
	}
	for _, mode := range []simmr.Mode{simmr.Barrier, simmr.Pipelined} {
		spec := restartSpec(sizeGB, workers, mode)
		base := Run(spec)
		ser := Series{Label: mode.String()}
		for _, frac := range killFracs {
			res := base
			if frac > 0 {
				killSpec := spec
				killSpec.KillCoordinatorAt = base.Completion * frac
				res = Run(killSpec)
			}
			ser.X = append(ser.X, frac)
			ser.Y = append(ser.Y, res.Completion)
			note := ""
			if res.Failed {
				note = "FAILED"
			} else if res.CoordRestarts > 0 {
				note = fmt.Sprintf("reattach=%d", res.ReattachedMaps)
			}
			ser.Note = append(ser.Note, note)
		}
		sw.Series = append(sw.Series, ser)
	}
	return sw
}
