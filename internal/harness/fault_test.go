package harness

import (
	"testing"

	"blmr/internal/simmr"
)

// TestFaultSweep: worker churn must cost time, never correctness, and
// speculation must never make the sweep slower — its clones only occupy
// otherwise idle slots.
func TestFaultSweep(t *testing.T) {
	fracs := []float64{0, 0.3, 0.6}
	sw := FaultSweep(1, 3, fracs)
	if len(sw.Series) != 4 {
		t.Fatalf("got %d series, want 4", len(sw.Series))
	}
	for _, ser := range sw.Series {
		base := ser.Y[0]
		// Speculative runs get 1% slack: a kill can flip which attempt wins
		// the publish race, relocating that map's output and shifting
		// transfer contention slightly in either direction.
		slack := 1e-9
		if ser.Label == "barrier+spec" || ser.Label == "pipelined+spec" {
			slack = base * 0.01
		}
		for i, y := range ser.Y {
			if ser.Note[i] == "FAILED" {
				t.Fatalf("%s: point %g failed", ser.Label, ser.X[i])
			}
			if y < base-slack {
				t.Fatalf("%s: kill at frac %g finished faster (%.2f) than undisturbed (%.2f)",
					ser.Label, ser.X[i], y, base)
			}
		}
	}
	// Mid-job kills must actually lose published outputs in at least one
	// configuration — otherwise the sweep exercises nothing.
	lost := false
	for _, ser := range sw.Series {
		for i, n := range ser.Note {
			if ser.X[i] > 0 && n != "" {
				lost = true
			}
		}
	}
	if !lost {
		t.Fatal("no sweep point lost a map output; the kill injection never fired")
	}
	// Speculation never increases wall-clock: compare each +spec series
	// pointwise against its plain counterpart.
	for i := 0; i+1 < len(sw.Series); i += 2 {
		plain, spec := sw.Series[i], sw.Series[i+1]
		for j := range plain.Y {
			if spec.Y[j] > plain.Y[j]+1e-9 {
				t.Fatalf("%s is slower than %s at frac %g: %.2f vs %.2f",
					spec.Label, plain.Label, plain.X[j], spec.Y[j], plain.Y[j])
			}
		}
	}
}

// TestFaultPrediction: the parity estimate the real engine is compared
// against must be internally consistent.
func TestFaultPrediction(t *testing.T) {
	est := FaultPrediction(1, 3, 0.4, simmr.Barrier)
	if est.Base <= 0 || est.Killed < est.Base-1e-9 {
		t.Fatalf("incoherent estimate: %+v", est)
	}
	if est.Overhead < 0 {
		t.Fatalf("negative predicted overhead: %+v", est)
	}
}
