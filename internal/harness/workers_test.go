package harness

import "testing"

// TestWorkerScalingSweep: the worker-count sweep runs clean and scaling the
// pool up never slows the job down.
func TestWorkerScalingSweep(t *testing.T) {
	sw := WorkerScaling([]int{2, 8, 15})
	if len(sw.Series) != 2 {
		t.Fatalf("want 2 series, got %d", len(sw.Series))
	}
	for _, ser := range sw.Series {
		for i := range ser.Y {
			if ser.Note[i] != "" {
				t.Fatalf("%s at %d workers: %s", ser.Label, int(ser.X[i]), ser.Note[i])
			}
			if i > 0 && ser.Y[i] > ser.Y[i-1]+1e-9 {
				t.Fatalf("%s: %d workers slower (%.1fs) than %d workers (%.1fs)",
					ser.Label, int(ser.X[i]), ser.Y[i], int(ser.X[i-1]), ser.Y[i-1])
			}
		}
	}
	t.Log("\n" + sw.Render())
}

// TestTransportOverheadSweep: run exchanges never meaningfully beat the
// in-process shuffle in the simulator's cost model. Tiny inversions are
// allowed: per-fetch delays reorder discrete events enough to move
// completion by a fraction of a percent either way.
func TestTransportOverheadSweep(t *testing.T) {
	const slack = 1.005
	sw := TransportOverhead(8)
	for _, ser := range sw.Series {
		if len(ser.Y) != 3 {
			t.Fatalf("%s: want 3 transports, got %d", ser.Label, len(ser.Y))
		}
		if ser.Y[1]*slack < ser.Y[0] || ser.Y[2]*slack < ser.Y[1] {
			t.Fatalf("%s: transport costs not monotone: %.1f / %.1f / %.1f",
				ser.Label, ser.Y[0], ser.Y[1], ser.Y[2])
		}
	}
}
