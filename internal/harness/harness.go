// Package harness reproduces every table and figure of the paper's
// evaluation (Section 6). Each Fig*/Table* function builds the workload,
// runs the simulated cluster in the relevant configurations, and returns
// both structured data and a rendered text report.
//
// Calibration: the simulator is not the authors' testbed, so absolute
// seconds differ; cost rates below are tuned so the *shape* of each result
// (who wins, by what factor, where crossovers fall) matches the paper. The
// per-application calibrations are package-level so ablation benchmarks can
// perturb them.
package harness

import (
	"fmt"
	"strings"

	"blmr/internal/apps"
	"blmr/internal/cluster"
	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/simmr"
	"blmr/internal/store"
	"blmr/internal/workload"
)

// GB is one virtual gigabyte.
const GB = float64(1 << 30)

// PaperCluster mirrors the testbed: 15 workers, 4 map + 4 reduce slots
// each, GigE, moderately oversubscribed core, mild heterogeneity.
func PaperCluster() cluster.Config {
	cfg := cluster.Default()
	return cfg
}

// Dataset is input data plus its virtual scaling.
type Dataset struct {
	Splits      [][]core.Record
	ByteScale   float64 // virtual bytes per real byte
	RecordScale float64 // virtual records per real record
}

// chunkMB is the DFS chunk size (paper: 64 MB).
const chunkMB = 64.0

// makeDataset splits records into 64MB virtual chunks totaling sizeGB and
// computes the scale factors. virtRecords is the virtual record count the
// real records stand for.
func makeDataset(recs []core.Record, sizeGB float64, virtRecords float64) Dataset {
	realBytes := float64(core.RecordsSize(recs))
	if realBytes == 0 {
		realBytes = 1
	}
	byteScale := sizeGB * GB / realBytes
	recScale := 1.0
	if len(recs) > 0 {
		recScale = virtRecords / float64(len(recs))
	}
	chunks := int(sizeGB*1024/chunkMB + 0.5)
	if chunks < 1 {
		chunks = 1
	}
	return Dataset{
		Splits:      workload.SplitEvenly(recs, chunks),
		ByteScale:   byteScale,
		RecordScale: recScale,
	}
}

// RunSpec is one job execution request.
type RunSpec struct {
	App      apps.App
	Data     Dataset
	Mode     simmr.Mode
	Reducers int
	Store    store.Kind
	Costs    simmr.CostModel
	// HeapBudgetMB / SpillThresholdMB / KVCacheMB are virtual megabytes.
	HeapBudgetMB     int
	SpillThresholdMB int
	KVCacheMB        int
	// SpillBytes bounds each task's buffered intermediate data (virtual
	// bytes): map outputs spill to sorted runs and barrier reducers merge
	// externally (simmr.JobSpec.SpillBytes). 0 = all in RAM.
	SpillBytes int64
	// Workers confines tasks to an N-node sub-cluster (simmr.JobSpec
	// .Workers; 0 = whole cluster, locality-driven placement).
	Workers int
	// Transport selects the simulated shuffle data plane
	// (simmr.JobSpec.Transport; default in-process).
	Transport simmr.Transport
	// Staged restores the multi-process stage barrier on the TCP transport:
	// no fetch starts until the whole map wave is done
	// (simmr.JobSpec.Staged; default false = cross-wave overlap).
	Staged bool
	// Compression enables the sealed-run codec model
	// (simmr.JobSpec.Compression; default none).
	Compression codec.Compression
	Cluster     cluster.Config
	// Replication overrides the DFS replication factor (default 3).
	Replication int
	// FetchParallelism overrides the barrier-mode parallel copies (default 5).
	FetchParallelism int
	// Speculative enables backup execution of straggling map tasks.
	Speculative bool
	// KillWorkerAt, when > 0, kills pool worker KillWorker at that virtual
	// time (simmr.JobSpec.KillWorkerAt): its published map outputs are
	// re-executed on survivors and parked fetchers re-route.
	KillWorkerAt float64
	KillWorker   int
	// KillCoordinatorAt, when > 0, crashes the coordinator at that virtual
	// time (simmr.JobSpec.KillCoordinatorAt): the control plane goes dark
	// for the restart window, journaled map outputs re-attach from
	// surviving sealed runs, unjournaled attempts re-run.
	KillCoordinatorAt float64
	// Combine enables the map-side combiner, using the app's spill Merger
	// as the combine function (the paper notes they are often the same).
	// Only aggregation-class apps combine safely — their reduce is the
	// same fold — so Run ignores the flag for every other class (e.g.
	// sort counts record arrivals; folding duplicates map-side would
	// silently drop them).
	Combine bool
	// SnapshotPeriod enables pipelined progress snapshots (virtual seconds).
	SnapshotPeriod float64
}

// Run executes a RunSpec on a fresh engine.
func Run(spec RunSpec) *simmr.Result {
	ccfg := spec.Cluster
	if ccfg.Nodes == 0 {
		ccfg = PaperCluster()
	}
	repl := spec.Replication
	if repl <= 0 {
		repl = 3
	}
	eng := simmr.NewEngine(simmr.Config{
		Cluster:          ccfg,
		Replication:      repl,
		ByteScale:        spec.Data.ByteScale,
		RecordScale:      spec.Data.RecordScale,
		FailMapTask:      -1,
		FetchParallelism: spec.FetchParallelism,
	})
	f := eng.Ingest(spec.App.Name+".in", spec.Data.Splits)
	job := simmr.JobSpec{
		Name:           spec.App.Name,
		Mapper:         spec.App.Mapper,
		NewGroup:       spec.App.NewGroup,
		NewStream:      spec.App.NewStream,
		Merger:         spec.App.Merger,
		Reducers:       spec.Reducers,
		Mode:           spec.Mode,
		Workers:        spec.Workers,
		Transport:      spec.Transport,
		Staged:         spec.Staged,
		Compression:    spec.Compression,
		Store:          spec.Store,
		HeapBudget:     int64(spec.HeapBudgetMB) << 20,
		SpillThreshold: int64(spec.SpillThresholdMB) << 20,
		SpillBytes:     spec.SpillBytes,
		KVCacheBytes:   int64(spec.KVCacheMB) << 20,
		Costs:          spec.Costs,
		Speculative:    spec.Speculative,
		SnapshotPeriod: spec.SnapshotPeriod,
		KillWorkerAt:   spec.KillWorkerAt,
		KillWorker:     spec.KillWorker,

		KillCoordinatorAt: spec.KillCoordinatorAt,
	}
	if spec.Combine && spec.App.Class == core.ClassAggregation {
		job.Combiner = spec.App.Merger
	}
	return eng.Run(job, f)
}

// Series is one curve of a sweep: Y seconds at each X.
type Series struct {
	Label string
	X     []float64
	Y     []float64
	// Note[i] annotates point i ("OOM" for killed jobs, where Y is the
	// time of death).
	Note []string
}

// Sweep is a rendered experiment: several curves over a shared x-axis.
type Sweep struct {
	ID     string
	Title  string
	XLabel string
	Series []Series
}

// Render formats the sweep as the textual equivalent of the paper's plot.
func (s Sweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", s.ID, s.Title)
	fmt.Fprintf(&b, "%-18s", s.XLabel)
	for _, ser := range s.Series {
		fmt.Fprintf(&b, " %18s", ser.Label)
	}
	b.WriteByte('\n')
	if len(s.Series) == 0 {
		return b.String()
	}
	for i := range s.Series[0].X {
		fmt.Fprintf(&b, "%-18.4g", s.Series[0].X[i])
		for _, ser := range s.Series {
			cell := fmt.Sprintf("%.1f", ser.Y[i])
			if len(ser.Note) > i && ser.Note[i] != "" {
				cell += " (" + ser.Note[i] + ")"
			}
			fmt.Fprintf(&b, " %18s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MeanImprovement averages 100*(base-with)/base across the sweep points of
// two series (skipping failed points).
func MeanImprovement(base, with Series) float64 {
	var sum float64
	n := 0
	for i := range base.Y {
		if len(base.Note) > i && base.Note[i] != "" {
			continue
		}
		if len(with.Note) > i && with.Note[i] != "" {
			continue
		}
		sum += 100 * (base.Y[i] - with.Y[i]) / base.Y[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Improvements returns the per-point improvement percentages.
func Improvements(base, with Series) []float64 {
	var out []float64
	for i := range base.Y {
		out = append(out, 100*(base.Y[i]-with.Y[i])/base.Y[i])
	}
	return out
}
