package harness

import "testing"

// TestPolicySweep: the load-aware policies must never lose to the
// round-robin stripe, and must strictly win once the stream is skewed
// enough that worker 0 serializes a pile of maps.
func TestPolicySweep(t *testing.T) {
	skews := []int{1, 2, 4}
	sw := PolicySweep(3, skews)
	if len(sw.Series) != 3 {
		t.Fatalf("got %d series, want 3", len(sw.Series))
	}
	rr := sw.Series[0]
	for _, ser := range sw.Series {
		for i, n := range ser.Note {
			if n != "" {
				t.Fatalf("%s: skew %g failed", ser.Label, ser.X[i])
			}
		}
	}
	for _, ser := range sw.Series[1:] {
		for i := range rr.Y {
			if ser.Y[i] > rr.Y[i]+1e-9 {
				t.Fatalf("%s loses to round-robin at skew %g: %.3f vs %.3f",
					ser.Label, rr.X[i], ser.Y[i], rr.Y[i])
			}
		}
		last := len(rr.Y) - 1
		if ser.Y[last] >= rr.Y[last] {
			t.Fatalf("%s does not beat round-robin at the deepest skew: %.3f vs %.3f",
				ser.Label, ser.Y[last], rr.Y[last])
		}
	}
	t.Logf("\n%s", sw.Render())
}

// TestPolicyPrediction: the parity estimate the real engine is compared
// against must be internally consistent and predict a real gap on the
// canonical skewed stream.
func TestPolicyPrediction(t *testing.T) {
	est, err := PolicyPrediction([]int{1, 1, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if est.RoundRobin <= 0 || est.LeastLoaded <= 0 {
		t.Fatalf("incoherent estimate: %+v", est)
	}
	if est.Ratio >= 1 {
		t.Fatalf("least-loaded predicted no win on the skewed stream: %+v", est)
	}
	if _, err := PolicyStreamMakespan([]int{1}, 3, "bogus"); err == nil {
		t.Fatal("unknown policy must error")
	}
}
