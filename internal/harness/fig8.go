package harness

import (
	"blmr/internal/apps"
	"blmr/internal/simmr"
	"blmr/internal/store"
)

// fig8Mappers fixes the GA workload size while the reducer count varies.
const fig8Mappers = 150

// Fig8 reproduces Figure 8: genetic algorithm completion time vs number of
// reducers (30..70 on a 60-reduce-slot cluster — the 70 case forces a
// second reducer wave, which re-inflates mapper slack and with it the
// barrier-less advantage).
func Fig8(reducers []float64) Sweep {
	ds := GAData(fig8Mappers)
	barrier := Series{Label: "with barrier"}
	pipelined := Series{Label: "without barrier"}
	for _, r := range reducers {
		for _, mode := range []simmr.Mode{simmr.Barrier, simmr.Pipelined} {
			res := Run(RunSpec{
				App: apps.GA(gaWindow), Data: ds, Mode: mode,
				Reducers: int(r), Store: store.InMemory, Costs: CalibGA,
			})
			ser := &barrier
			if mode == simmr.Pipelined {
				ser = &pipelined
			}
			ser.X = append(ser.X, r)
			ser.Y = append(ser.Y, res.Completion)
			ser.Note = append(ser.Note, "")
		}
	}
	return Sweep{
		ID:     "fig8",
		Title:  "Genetic Algorithm with varying reducers (150 mappers)",
		XLabel: "number of reducers",
		Series: []Series{barrier, pipelined},
	}
}

// PaperFig8Reducers are the x values of Figure 8.
func PaperFig8Reducers() []float64 { return []float64{30, 40, 50, 60, 70} }
