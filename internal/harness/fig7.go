package harness

import (
	"fmt"

	"blmr/internal/stats"
)

// Fig7Result reproduces Figure 7: a box plot of the relative percentage
// improvements of the barrier-less version per application, computed from
// the Figure 6 sweeps (each sweep point is one sample).
type Fig7Result struct {
	Labels []string
	Boxes  []stats.Box
}

// Fig7 derives the improvement distributions from fresh Figure 6 runs.
func Fig7() Fig7Result {
	sweeps := []Sweep{
		Fig6Sort(PaperSizesGB()),
		Fig6WordCount(PaperSizesGB()),
		Fig6KNN(PaperSizesGB()),
		Fig6LastFM(PaperSizesGB()),
		Fig6GA(PaperGAMappers()),
		Fig6BlackScholes(PaperBSMappers()),
	}
	labels := []string{"Sort", "WC", "KNN", "PP", "GA", "BS"}
	out := Fig7Result{Labels: labels}
	for _, sw := range sweeps {
		out.Boxes = append(out.Boxes, stats.Summarize(Improvements(sw.Series[0], sw.Series[1])))
	}
	return out
}

// Render formats the box plot.
func (f Fig7Result) Render() string {
	return "fig7: %% improvement of barrier-less over barrier, per application\n" +
		stats.RenderBoxes(f.Labels, f.Boxes, 64) +
		fmt.Sprintf("\noverall mean improvement: %.1f%%\n", f.overallMean())
}

func (f Fig7Result) overallMean() float64 {
	var sum float64
	for _, b := range f.Boxes {
		sum += b.Median
	}
	return sum / float64(len(f.Boxes))
}
