package harness

import (
	"fmt"

	"blmr/internal/apps"
	"blmr/internal/simmr"
)

// WorkerScaling sweeps the worker-pool size over a WordCount job on the
// TCP run-exchange transport — the simulated counterpart of
// `blmr -workers N -transport tcp` — and reports completion time in both
// modes. Small pools serialize tasks on few nodes and lose chunk locality;
// the curve shows how much cluster the barrier-less win survives on, and
// where run-fetch RPC latency starts to matter.
func WorkerScaling(workerCounts []int) Sweep {
	ds := WordCountData(4)
	modes := []struct {
		label string
		mode  simmr.Mode
	}{
		{"barrier", simmr.Barrier},
		{"pipelined", simmr.Pipelined},
	}
	sw := Sweep{
		ID:     "WorkerScaling",
		Title:  "WordCount 4GB over the TCP run exchange: completion vs worker count",
		XLabel: "workers",
	}
	costs := CalibWordCount
	if costs.RunFetchDelay == 0 {
		costs.RunFetchDelay = simmr.DefaultCosts().RunFetchDelay
	}
	for _, m := range modes {
		ser := Series{Label: m.label}
		for _, w := range workerCounts {
			res := Run(RunSpec{
				App: apps.WordCount(), Data: ds, Mode: m.mode,
				Reducers: 60, Costs: costs,
				Workers: w, Transport: simmr.TCPRunExchange,
			})
			ser.X = append(ser.X, float64(w))
			ser.Y = append(ser.Y, res.Completion)
			note := ""
			if res.Failed {
				note = "FAILED"
			}
			ser.Note = append(ser.Note, note)
		}
		sw.Series = append(sw.Series, ser)
	}
	return sw
}

// TransportOverhead compares the three simulated transports at a fixed
// worker pool, quantifying what materializing and fetching sealed runs
// costs next to the in-process shuffle.
func TransportOverhead(workers int) Sweep {
	ds := WordCountData(4)
	costs := CalibWordCount
	if costs.RunFetchDelay == 0 {
		costs.RunFetchDelay = simmr.DefaultCosts().RunFetchDelay
	}
	sw := Sweep{
		ID:     "TransportOverhead",
		Title:  fmt.Sprintf("WordCount 4GB, %d workers: completion by transport", workers),
		XLabel: "transport(0=inproc,1=runx,2=tcp)",
	}
	for _, m := range []struct {
		label string
		mode  simmr.Mode
	}{{"barrier", simmr.Barrier}, {"pipelined", simmr.Pipelined}} {
		ser := Series{Label: m.label}
		for _, tr := range []simmr.Transport{simmr.InProcShuffle, simmr.RunExchange, simmr.TCPRunExchange} {
			res := Run(RunSpec{
				App: apps.WordCount(), Data: ds, Mode: m.mode,
				Reducers: 60, Costs: costs,
				Workers: workers, Transport: tr,
			})
			ser.X = append(ser.X, float64(tr))
			ser.Y = append(ser.Y, res.Completion)
			ser.Note = append(ser.Note, "")
		}
		sw.Series = append(sw.Series, ser)
	}
	return sw
}
