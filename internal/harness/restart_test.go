package harness

import (
	"strconv"
	"strings"
	"testing"

	"blmr/internal/simmr"
)

// TestRestartSweep: a coordinator crash must cost time, never correctness,
// and the later the crash, the more of the map wave must re-attach from
// surviving sealed runs.
func TestRestartSweep(t *testing.T) {
	fracs := []float64{0, 0.3, 0.6, 0.9}
	sw := RestartSweep(1, 3, fracs)
	if len(sw.Series) != 2 {
		t.Fatalf("got %d series, want 2", len(sw.Series))
	}
	for _, ser := range sw.Series {
		base := ser.Y[0]
		for i, y := range ser.Y {
			if ser.Note[i] == "FAILED" {
				t.Fatalf("%s: point %g failed", ser.Label, ser.X[i])
			}
			if y < base-1e-9 {
				t.Fatalf("%s: crash at frac %g finished faster (%.2f) than undisturbed (%.2f)",
					ser.Label, ser.X[i], y, base)
			}
		}
		// Re-attach counts must be non-decreasing in the crash time: a
		// later crash has journaled at least as much of the map wave.
		prev := -1
		for i, n := range ser.Note {
			if ser.X[i] == 0 {
				continue
			}
			if !strings.HasPrefix(n, "reattach=") {
				t.Fatalf("%s: crash point %g has no reattach note (%q): the injection never fired",
					ser.Label, ser.X[i], n)
			}
			count, err := strconv.Atoi(strings.TrimPrefix(n, "reattach="))
			if err != nil {
				t.Fatalf("%s: bad note %q: %v", ser.Label, n, err)
			}
			if count < prev {
				t.Fatalf("%s: re-attach count fell from %d to %d as the crash moved later",
					ser.Label, prev, count)
			}
			prev = count
		}
		if prev < 1 {
			t.Fatalf("%s: no sweep point re-attached a map; the journal model never engaged", ser.Label)
		}
	}
}

// TestRestartPrediction: the parity estimate the real engine is compared
// against must be internally consistent, and a mid-map crash must both
// re-attach journaled maps and re-run unjournaled attempts.
func TestRestartPrediction(t *testing.T) {
	est := RestartPrediction(1, 3, 0.4, simmr.Barrier)
	if est.Base <= 0 || est.Resumed < est.Base-1e-9 {
		t.Fatalf("incoherent estimate: %+v", est)
	}
	if est.Overhead < 0 {
		t.Fatalf("negative predicted overhead: %+v", est)
	}
	if est.ReattachedMaps < 1 {
		t.Fatalf("mid-map crash re-attached nothing: %+v", est)
	}
}
