package harness

import (
	"fmt"

	"blmr/internal/apps"
	"blmr/internal/simmr"
)

// FaultTolerance is the stated agreement band between simulated and real
// recovery overhead: the relative overheads (killed/baseline - 1) must agree
// within this many absolute points. The band is wide on purpose — the
// simulator predicts a calibrated multi-GB cluster while the real parity run
// is a laptop-scale 3-worker job whose wall clock is noisy — but it still
// rejects sign errors and runaway recovery (e.g. a kill doubling the job when
// the model predicts a few percent).
const FaultTolerance = 0.75

// FaultEstimate is one simulated worker-kill experiment: the undisturbed
// completion, the killed run's completion, and the relative recovery
// overhead (Killed/Base - 1).
type FaultEstimate struct {
	Base     float64
	Killed   float64
	Overhead float64
	// LostMaps is how many published map outputs the kill cost (each was
	// re-executed on a survivor).
	LostMaps int
}

// faultSpec is the sweep's canonical job: WordCount on a small TCP worker
// pool, the configuration the real chaos tests exercise.
func faultSpec(sizeGB float64, workers int, mode simmr.Mode, speculative bool) RunSpec {
	costs := CalibWordCount
	if costs.RunFetchDelay == 0 {
		costs.RunFetchDelay = simmr.DefaultCosts().RunFetchDelay
	}
	return RunSpec{
		App: apps.WordCount(), Data: WordCountData(sizeGB), Mode: mode,
		Reducers: 8, Costs: costs, Workers: workers,
		Transport: simmr.TCPRunExchange, Speculative: speculative,
	}
}

// FaultPrediction simulates killing pool worker 0 at killFrac of the
// undisturbed completion time and returns the predicted recovery overhead —
// the number the real-engine parity test compares its measured overhead
// against (within FaultTolerance).
func FaultPrediction(sizeGB float64, workers int, killFrac float64, mode simmr.Mode) FaultEstimate {
	spec := faultSpec(sizeGB, workers, mode, false)
	base := Run(spec)
	spec.KillWorkerAt = base.Completion * killFrac
	killed := Run(spec)
	return FaultEstimate{
		Base:     base.Completion,
		Killed:   killed.Completion,
		Overhead: killed.Completion/base.Completion - 1,
		LostMaps: killed.LostMapOutputs,
	}
}

// FaultSweep sweeps the kill time over the job (killFracs are fractions of
// the undisturbed completion) on a `workers`-node pool and reports completion
// for both modes, each with and without speculative backups. Recovery
// overhead is each point against the frac=0 baseline; the speculative series
// must never sit above its plain counterpart (speculation only clones
// stragglers onto otherwise idle slots).
func FaultSweep(sizeGB float64, workers int, killFracs []float64) Sweep {
	sw := Sweep{
		ID:     "FaultSweep",
		Title:  fmt.Sprintf("WordCount %.3ggb, %d workers over TCP: completion vs when worker 0 dies", sizeGB, workers),
		XLabel: "kill time (frac of base)",
	}
	for _, mode := range []simmr.Mode{simmr.Barrier, simmr.Pipelined} {
		for _, speculative := range []bool{false, true} {
			spec := faultSpec(sizeGB, workers, mode, speculative)
			base := Run(spec)
			label := mode.String()
			if speculative {
				label += "+spec"
			}
			ser := Series{Label: label}
			for _, frac := range killFracs {
				res := base
				if frac > 0 {
					killSpec := spec
					killSpec.KillWorkerAt = base.Completion * frac
					res = Run(killSpec)
				}
				ser.X = append(ser.X, frac)
				ser.Y = append(ser.Y, res.Completion)
				note := ""
				if res.Failed {
					note = "FAILED"
				} else if res.LostMapOutputs > 0 {
					note = fmt.Sprintf("lost=%d", res.LostMapOutputs)
				}
				ser.Note = append(ser.Note, note)
			}
			sw.Series = append(sw.Series, ser)
		}
	}
	return sw
}
