package harness

import (
	"fmt"
	"strings"

	"blmr/internal/apps"
	"blmr/internal/metrics"
	"blmr/internal/simmr"
	"blmr/internal/store"
)

// Fig4Result reproduces Figure 4: system-wide progress of WordCount on a
// 3GB dataset, with and without the barrier.
type Fig4Result struct {
	Barrier, Pipelined             *simmr.Result
	BarrierRender, PipelinedRender string
	// MapperSlack is the gap between first mapper completion and shuffle
	// completion in barrier mode (the paper's "mapper slack").
	MapperSlack float64
	// Improvement is the percent reduction in completion time.
	Improvement float64
}

// Fig4 runs the 3GB WordCount progress experiment.
func Fig4() Fig4Result {
	ds := WordCountData(3)
	run := func(mode simmr.Mode) *simmr.Result {
		return Run(RunSpec{
			App: apps.WordCount(), Data: ds, Mode: mode,
			Reducers: fig6Reducers, Store: store.InMemory, Costs: CalibWordCount,
		})
	}
	b := run(simmr.Barrier)
	p := run(simmr.Pipelined)

	step := b.Completion / 40
	if step <= 0 {
		step = 1
	}
	out := Fig4Result{Barrier: b, Pipelined: p}
	out.BarrierRender = "(a) With barrier\n" + metrics.RenderTimeline(
		b.Metrics, []metrics.Stage{metrics.StageMap, metrics.StageShuffle, metrics.StageSort, metrics.StageReduce}, step)
	out.PipelinedRender = "(b) Without barrier (Shuffle+Reduce combined)\n" + metrics.RenderTimeline(
		p.Metrics, []metrics.Stage{metrics.StageMap, metrics.StageReduce, metrics.StageOutput}, step)

	// Mapper slack: first map completion to end of shuffle, barrier mode.
	var firstMapEnd float64 = -1
	for _, s := range b.Metrics.Spans() {
		if s.Stage == metrics.StageMap && (firstMapEnd < 0 || s.End < firstMapEnd) {
			firstMapEnd = s.End
		}
	}
	_, shuffleEnd, _ := b.Metrics.StageBounds(metrics.StageShuffle)
	out.MapperSlack = shuffleEnd - firstMapEnd
	out.Improvement = 100 * (b.Completion - p.Completion) / b.Completion
	return out
}

// Render formats the full Figure 4 report.
func (f Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fig4: WordCount progress, 3GB dataset\n")
	fmt.Fprintf(&b, "barrier completion:    %.1fs (last map %.1fs)\n", f.Barrier.Completion, f.Barrier.MapDone)
	fmt.Fprintf(&b, "pipelined completion:  %.1fs (last map %.1fs)\n", f.Pipelined.Completion, f.Pipelined.MapDone)
	fmt.Fprintf(&b, "mapper slack:          %.1fs\n", f.MapperSlack)
	fmt.Fprintf(&b, "improvement:           %.1f%%\n\n", f.Improvement)
	b.WriteString(f.BarrierRender)
	b.WriteByte('\n')
	b.WriteString(f.PipelinedRender)
	return b.String()
}
