package harness

import (
	"fmt"

	"blmr/internal/apps"
	"blmr/internal/simmr"
)

// SpillTradeoff sweeps the external-shuffle buffer budget (JobSpec
// .SpillBytes) over an 8GB WordCount and reports the memory/throughput
// trade-off the spill architecture buys: completion time rises as the
// budget falls (more runs, more seeks, an extra merge pass) while the
// sort-phase memory bound falls with it. budgetsMB of 0 means unlimited
// (the all-in-RAM engine). The sweep is the harness-level reproduction
// hook for the disk-spill design — the simulated sibling of the wall-clock
// spill benchmarks in internal/mr.
func SpillTradeoff(budgetsMB []float64) Sweep {
	ds := WordCountData(8)
	modes := []struct {
		label string
		mode  simmr.Mode
	}{
		{"barrier", simmr.Barrier},
		{"pipelined", simmr.Pipelined},
	}
	sw := Sweep{
		ID:     "SpillTradeoff",
		Title:  "WordCount 8GB: completion vs spill buffer budget",
		XLabel: "budget (MB)",
	}
	costs := CalibWordCount
	if costs.SpillRunDelay == 0 {
		costs.SpillRunDelay = simmr.DefaultCosts().SpillRunDelay
	}
	for _, m := range modes {
		ser := Series{Label: m.label}
		for _, mb := range budgetsMB {
			res := Run(RunSpec{
				App: apps.WordCount(), Data: ds, Mode: m.mode,
				Reducers: 60, Costs: costs,
				SpillBytes: int64(mb * (1 << 20)),
			})
			ser.X = append(ser.X, mb)
			ser.Y = append(ser.Y, res.Completion)
			note := ""
			if res.SpillRuns > 0 {
				note = fmt.Sprintf("%d runs", res.SpillRuns)
			}
			ser.Note = append(ser.Note, note)
		}
		sw.Series = append(sw.Series, ser)
	}
	return sw
}
