package harness

import (
	"testing"

	"blmr/internal/apps"
)

// TestOverlapSweepMonotone: breaking the stage barrier is never slower in
// the simulator — for every (app, mode, worker count), the overlapped
// control plane completes no later than the staged one. This is the
// simulated counterpart of the mpexec acceptance criterion (pipelined-TCP
// beating barrier-TCP once reduce dispatch overlaps the map wave).
func TestOverlapSweepMonotone(t *testing.T) {
	const slack = 1.0 + 1e-9
	for _, app := range []struct {
		a      func() apps.App
		sizeGB float64
	}{
		{apps.WordCount, 4},
		{apps.Sort, 2},
	} {
		sw := OverlapSweep(app.a(), app.sizeGB, []int{4, 10})
		if len(sw.Series) != 4 {
			t.Fatalf("want 4 series, got %d", len(sw.Series))
		}
		// Series come in (staged, overlap) pairs per mode.
		for pair := 0; pair < 2; pair++ {
			staged, overlap := sw.Series[2*pair], sw.Series[2*pair+1]
			for i := range staged.Y {
				if staged.Note[i] != "" || overlap.Note[i] != "" {
					t.Fatalf("%s/%s at %d workers failed: %q %q", staged.Label,
						overlap.Label, int(staged.X[i]), staged.Note[i], overlap.Note[i])
				}
				if overlap.Y[i] > staged.Y[i]*slack {
					t.Fatalf("%s: overlap slower than staged at %d workers: %.2fs vs %.2fs",
						app.a().Name, int(staged.X[i]), overlap.Y[i], staged.Y[i])
				}
			}
		}
		t.Log("\n" + sw.Render())
	}
}
