package harness

import (
	"fmt"
	"strings"

	"blmr/internal/apps"
	"blmr/internal/core"
	"blmr/internal/store"
	"blmr/internal/workload"
)

// Table1Row is one application's measured memory behaviour.
type Table1Row struct {
	App           string
	Class         core.Class
	SortRequired  bool
	ExpectedSize  string
	EntriesSmall  int   // peak partial-result entries at the small input
	EntriesLarge  int   // ... at the doubled input
	BytesLarge    int64 // peak partial-result bytes at the large input
	MeasuredClass string
}

// Table1 reproduces Table 1 empirically: each application's stream reducer
// is driven over a small and a doubled workload, the peak number of live
// partial-result entries is measured, and the growth is classified:
// entries that track record count are O(records); entries that track the
// key count are O(keys); flat entry counts are O(1) or O(window).
func Table1() []Table1Row {
	type probe struct {
		app   apps.App
		mk    func(n int) []core.Record // n = scale knob
		small int
	}
	d := workload.KNN(301, 4000, 25, 1_000_000)
	probes := []probe{
		{app: apps.Grep("word0000"), mk: func(n int) []core.Record {
			return workload.Text(302, n, 200, 8)
		}, small: 2000},
		{app: apps.Sort(), mk: func(n int) []core.Record {
			return workload.UniformKeys(303, n, 1<<40)
		}, small: 2000},
		// Fixed vocabulary: distinct words saturate, demonstrating O(keys).
		{app: apps.WordCount(), mk: func(n int) []core.Record {
			return workload.Text(304, n, 300, 8)
		}, small: 2000},
		{app: apps.KNN(10, d.Experimental), mk: func(n int) []core.Record {
			return workload.KNNRecords(d, 0)[:n]
		}, small: 2000},
		// Sparse (track,user) space: per-key sets keep growing — O(records).
		{app: apps.LastFM(), mk: func(n int) []core.Record {
			return workload.Listens(305, n, 50, 5000)
		}, small: 1000},
		{app: apps.GA(100), mk: func(n int) []core.Record {
			return workload.Individuals(306, n, 64)
		}, small: 2000},
		{app: apps.BlackScholes(apps.BSParams{
			Spot: 100, Strike: 100, Rate: 0.05, Volatility: 0.2, Maturity: 1,
			Iterations: 1000, Samples: 50,
		}), mk: func(n int) []core.Record {
			return workload.OptionSeeds(307, n/100)
		}, small: 2000},
	}

	var rows []Table1Row
	for _, p := range probes {
		eSmall, _ := peakEntries(p.app, p.mk(p.small))
		eLarge, bLarge := peakEntries(p.app, p.mk(p.small*2))
		rows = append(rows, Table1Row{
			App:           p.app.Name,
			Class:         p.app.Class,
			SortRequired:  p.app.Class.SortRequired(),
			ExpectedSize:  p.app.Class.PartialResultSize(),
			EntriesSmall:  eSmall,
			EntriesLarge:  eLarge,
			BytesLarge:    bLarge,
			MeasuredClass: classify(eSmall, eLarge),
		})
	}
	return rows
}

// peakEntries drives the app's stream reducer over input and returns the
// peak live entry count and byte footprint of its partial results.
func peakEntries(app apps.App, input []core.Record) (int, int64) {
	st := store.NewMemStore()
	sr := app.NewStream(st)
	sink := core.OutputFunc(func(string, string) {})
	var mapped []core.Record
	em := core.EmitterFunc(func(k, v string) { mapped = append(mapped, core.Record{Key: k, Value: v}) })
	for _, r := range input {
		app.Mapper.Map(r.Key, r.Value, em)
	}
	peakN, peakB := 0, int64(0)
	for _, r := range mapped {
		sr.Consume(r, sink)
		if st.Len() > peakN {
			peakN = st.Len()
		}
		if st.MemBytes() > peakB {
			peakB = st.MemBytes()
		}
	}
	// Window/O(1) reducers keep state outside the store; approximate via
	// the MemBytes reported by reducers that expose it.
	type memReporter interface{ MemBytes() int64 }
	if mr, ok := sr.(memReporter); ok && peakB == 0 {
		peakB = mr.MemBytes()
	}
	sr.Finish(sink)
	return peakN, peakB
}

// classify names the observed growth when the input doubles.
func classify(small, large int) string {
	switch {
	case large <= 1 && small <= 1:
		return "O(1)"
	case small == 0:
		return "O(1)"
	case float64(large) > 1.7*float64(small):
		return "grows with records"
	case float64(large) > 1.15*float64(small):
		return "grows with keys (sublinear)"
	default:
		return "bounded (keys/window fixed)"
	}
}

// RenderTable1 formats the measured table next to the paper's claims.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("table1: Sort and memory requirements of MapReduce jobs (measured)\n")
	fmt.Fprintf(&b, "%-14s %-28s %-9s %-14s %10s %10s %12s  %s\n",
		"application", "class", "key sort", "paper size", "entries@1x", "entries@2x", "peak bytes", "measured growth")
	for _, r := range rows {
		sortS := "No"
		if r.SortRequired {
			sortS = "Yes"
		}
		fmt.Fprintf(&b, "%-14s %-28s %-9s %-14s %10d %10d %12d  %s\n",
			r.App, r.Class, sortS, r.ExpectedSize, r.EntriesSmall, r.EntriesLarge, r.BytesLarge, r.MeasuredClass)
	}
	return b.String()
}
