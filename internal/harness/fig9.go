package harness

import (
	"blmr/internal/apps"
	"blmr/internal/simmr"
	"blmr/internal/store"
)

// Figures 9 and 10 compare the memory-management techniques on WordCount:
// the classic barrier, and the barrier-less framework with the in-memory
// store (OOMs when partial results exceed the heap), the disk
// spill-and-merge store, and the off-the-shelf-style key/value store.

// memTechniqueSweep runs the four configurations at each x.
func memTechniqueSweep(id, title, xlabel string, xs []float64, mk func(x float64) Dataset, reducers func(x float64) int) Sweep {
	series := []Series{
		{Label: "with barrier"},
		{Label: "in-memory"},
		{Label: "spill merge"},
		{Label: "berkeleydb-style kv"},
	}
	for _, x := range xs {
		ds := mk(x)
		runs := []RunSpec{
			{App: apps.WordCount(), Data: ds, Mode: simmr.Barrier, Store: store.InMemory},
			{App: apps.WordCount(), Data: ds, Mode: simmr.Pipelined, Store: store.InMemory, HeapBudgetMB: fig5HeapMB},
			{App: apps.WordCount(), Data: ds, Mode: simmr.Pipelined, Store: store.SpillMerge, SpillThresholdMB: fig5SpillMB, HeapBudgetMB: fig5HeapMB},
			{App: apps.WordCount(), Data: ds, Mode: simmr.Pipelined, Store: store.KV, KVCacheMB: 512, HeapBudgetMB: fig5HeapMB},
		}
		for i, spec := range runs {
			spec.Reducers = reducers(x)
			spec.Costs = CalibWordCount
			res := Run(spec)
			series[i].X = append(series[i].X, x)
			series[i].Y = append(series[i].Y, res.Completion)
			note := ""
			if res.Failed {
				note = "OOM"
			}
			series[i].Note = append(series[i].Note, note)
		}
	}
	return Sweep{ID: id, Title: title, XLabel: xlabel, Series: series}
}

// Fig9 reproduces Figure 9: WordCount (16GB) memory-management techniques
// vs number of reducers. The in-memory store OOMs at low reducer counts
// where per-reducer partial results exceed the heap.
func Fig9(reducers []float64) Sweep {
	ds := WordCountData(fig5SizeGB)
	return memTechniqueSweep("fig9",
		"WordCount 16GB: memory management vs number of reducers",
		"number of reducers", reducers,
		func(float64) Dataset { return ds },
		func(x float64) int { return int(x) })
}

// PaperFig9Reducers are the x values of Figure 9.
func PaperFig9Reducers() []float64 { return []float64{10, 20, 30, 40, 50, 60, 70} }

// Fig10 reproduces Figure 10: the same four techniques vs dataset size at a
// fixed reducer count (30).
func Fig10(sizesGB []float64) Sweep {
	return memTechniqueSweep("fig10",
		"WordCount: memory management vs dataset size (30 reducers)",
		"input size (GB)", sizesGB,
		func(gb float64) Dataset { return WordCountData(gb) },
		func(float64) int { return 30 })
}

// PaperFig10Sizes are the x values of Figure 10.
func PaperFig10Sizes() []float64 { return []float64{4, 8, 12, 16, 20, 24} }
