package harness

import (
	"strings"
	"testing"
)

// The harness tests assert the paper's qualitative claims — who wins, by
// roughly what factor, and where the crossovers fall — on reduced sweeps to
// keep test time reasonable. Full paper-sized sweeps run via
// cmd/experiments and the root benchmarks.

func TestFig6WordCountPipelinedWins(t *testing.T) {
	sw := Fig6WordCount([]float64{2, 8})
	for i := range sw.Series[0].Y {
		if sw.Series[1].Y[i] >= sw.Series[0].Y[i] {
			t.Fatalf("pipelined (%.1f) should beat barrier (%.1f) at x=%v",
				sw.Series[1].Y[i], sw.Series[0].Y[i], sw.Series[0].X[i])
		}
	}
	imp := MeanImprovement(sw.Series[0], sw.Series[1])
	if imp < 5 || imp > 35 {
		t.Fatalf("wordcount improvement %.1f%% outside the paper's band (~15%%)", imp)
	}
}

func TestFig6SortBarrierWins(t *testing.T) {
	sw := Fig6Sort([]float64{2, 16})
	for i := range sw.Series[0].Y {
		if sw.Series[0].Y[i] >= sw.Series[1].Y[i] {
			t.Fatalf("barrier should win sort at x=%v: %.1f vs %.1f",
				sw.Series[0].X[i], sw.Series[0].Y[i], sw.Series[1].Y[i])
		}
	}
	// The gap narrows as the dataset grows (paper: 9%% at 8GB -> 2%% at 16GB).
	gap := func(i int) float64 {
		return (sw.Series[1].Y[i] - sw.Series[0].Y[i]) / sw.Series[0].Y[i]
	}
	if gap(1) >= gap(0) {
		t.Fatalf("sort slowdown should narrow with size: %.3f -> %.3f", gap(0), gap(1))
	}
}

func TestFig6KNNImprovementGrows(t *testing.T) {
	sw := Fig6KNN([]float64{2, 16})
	imps := Improvements(sw.Series[0], sw.Series[1])
	if imps[0] <= 0 || imps[1] <= 0 {
		t.Fatalf("knn should improve at all sizes: %v", imps)
	}
	if imps[1] <= imps[0] {
		t.Fatalf("knn improvement should grow with size: %v", imps)
	}
}

func TestFig6LastFMConsistentWin(t *testing.T) {
	sw := Fig6LastFM([]float64{4, 16})
	imp := MeanImprovement(sw.Series[0], sw.Series[1])
	if imp < 8 || imp > 35 {
		t.Fatalf("lastfm improvement %.1f%% outside band (~20%%)", imp)
	}
}

func TestFig6GAModestConstantWin(t *testing.T) {
	sw := Fig6GA([]float64{50, 200})
	imps := Improvements(sw.Series[0], sw.Series[1])
	for _, i := range imps {
		if i < 3 || i > 30 {
			t.Fatalf("GA improvements %v outside the ~15%% band", imps)
		}
	}
}

func TestFig6BlackScholesBestCase(t *testing.T) {
	sw := Fig6BlackScholes([]float64{25, 200})
	imps := Improvements(sw.Series[0], sw.Series[1])
	if imps[1] <= imps[0] {
		t.Fatalf("BS improvement should grow with mappers: %v", imps)
	}
	if imps[1] < 70 || imps[1] > 95 {
		t.Fatalf("BS best-case improvement %.1f%% should approach the paper's 87%%", imps[1])
	}
}

func TestFig4MapperSlackAndOverlap(t *testing.T) {
	f := Fig4()
	if f.MapperSlack <= 0 {
		t.Fatalf("mapper slack = %.1f, want > 0", f.MapperSlack)
	}
	if f.Improvement <= 0 {
		t.Fatalf("fig4 improvement = %.1f%%", f.Improvement)
	}
	// The pipelined run must complete soon after its last map, well inside
	// the barrier's post-map tail (the paper observed 10s vs ~45s).
	pipeTail := f.Pipelined.Completion - f.Pipelined.MapDone
	barTail := f.Barrier.Completion - f.Barrier.MapDone
	if pipeTail >= barTail {
		t.Fatalf("pipelined tail %.1fs should be shorter than barrier tail %.1fs", pipeTail, barTail)
	}
	if !strings.Contains(f.Render(), "mapper slack") {
		t.Fatal("render missing mapper slack")
	}
}

func TestFig5OOMAndSpill(t *testing.T) {
	f := Fig5()
	if !f.InMemory.Failed {
		t.Fatal("in-memory 16GB/10-reducer run must OOM (Figure 5a)")
	}
	if f.Spill.Failed {
		t.Fatalf("spill run failed: %s", f.Spill.FailReason)
	}
	if f.Spill.Spills == 0 {
		t.Fatal("spill run never spilled")
	}
	// Spill keeps the heap near the threshold; in-memory grows to the cap.
	if p := peakMB(f.SpillSeries); p > 2*fig5SpillMB {
		t.Fatalf("spill heap peak %d MB far above threshold %d MB", p, fig5SpillMB)
	}
	if p := peakMB(f.InMemorySeries); p < fig5HeapMB-200 {
		t.Fatalf("in-memory heap peak %d MB never approached the cap", p)
	}
}

func TestFig8WaveEffect(t *testing.T) {
	sw := Fig8([]float64{60, 70})
	barrier := sw.Series[0]
	if barrier.Y[1] <= barrier.Y[0] {
		t.Fatalf("70 reducers on 60 slots must cost a second wave: %.1f vs %.1f",
			barrier.Y[1], barrier.Y[0])
	}
	pip := sw.Series[1]
	for i := range pip.Y {
		if pip.Y[i] >= barrier.Y[i] {
			t.Fatalf("pipelined should win GA at %v reducers", barrier.X[i])
		}
	}
}

func TestFig9MemoryTechniques(t *testing.T) {
	sw := Fig9([]float64{10, 60})
	byLabel := map[string]Series{}
	for _, s := range sw.Series {
		byLabel[s.Label] = s
	}
	if byLabel["in-memory"].Note[0] != "OOM" {
		t.Fatal("in-memory must OOM at 10 reducers (paper: below 25)")
	}
	if byLabel["in-memory"].Note[1] == "OOM" {
		t.Fatal("in-memory must survive at 60 reducers")
	}
	if byLabel["spill merge"].Note[0] == "OOM" || byLabel["spill merge"].Note[1] == "OOM" {
		t.Fatal("spill merge must never OOM")
	}
	// Spill-merge beats the barrier; the KV store is far slower than both.
	if byLabel["spill merge"].Y[1] >= byLabel["with barrier"].Y[1] {
		t.Fatal("spill merge should beat the barrier at 60 reducers")
	}
	if byLabel["berkeleydb-style kv"].Y[1] < 1.5*byLabel["with barrier"].Y[1] {
		t.Fatal("KV store should be dramatically slower (paper: cannot keep up)")
	}
}

func TestFig10SizeSweep(t *testing.T) {
	sw := Fig10([]float64{4, 24})
	byLabel := map[string]Series{}
	for _, s := range sw.Series {
		byLabel[s.Label] = s
	}
	if byLabel["in-memory"].Note[1] != "OOM" {
		t.Fatal("in-memory should OOM at 24GB with 30 reducers")
	}
	if byLabel["spill merge"].Y[1] >= byLabel["with barrier"].Y[1] {
		t.Fatal("spill merge should beat barrier as data grows")
	}
	if byLabel["berkeleydb-style kv"].Y[0] <= byLabel["with barrier"].Y[0] {
		t.Fatal("KV store should trail at every size")
	}
}

func TestTable1MatchesPaperClassification(t *testing.T) {
	rows := Table1()
	if len(rows) != 7 {
		t.Fatalf("table1 rows = %d, want 7", len(rows))
	}
	want := map[string]string{
		"grep":         "O(1)",
		"sort":         "grows with records",
		"wordcount":    "bounded (keys/window fixed)",
		"knn":          "bounded (keys/window fixed)",
		"lastfm":       "grows with records",
		"ga":           "O(1)",
		"blackscholes": "O(1)",
	}
	for _, r := range rows {
		if want[r.App] != r.MeasuredClass {
			t.Errorf("%s measured %q, want %q", r.App, r.MeasuredClass, want[r.App])
		}
	}
	// Only sorting requires key order (paper Table 1).
	for _, r := range rows {
		if r.SortRequired != (r.App == "sort") {
			t.Errorf("%s sort-required = %v", r.App, r.SortRequired)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byApp := map[string]Table2Row{}
	for _, r := range rows {
		if r.OriginalLoC <= 0 || r.BarrierlessLoC <= 0 {
			t.Fatalf("%s has zero LoC: %+v", r.App, r)
		}
		byApp[r.App] = r
	}
	// The paper's qualitative claims: Sort needs the largest conversion;
	// GA and Black-Scholes need none.
	if byApp["Genetic Algorithm"].IncreasePercent != 0 {
		t.Error("GA conversion should be free")
	}
	if byApp["Black-Scholes"].IncreasePercent != 0 {
		t.Error("Black-Scholes conversion should be free")
	}
	if byApp["Sort"].IncreasePercent <= byApp["WordCount"].IncreasePercent {
		t.Error("Sort should need the largest relative conversion")
	}
	if !strings.Contains(RenderTable2(rows), "% increase") {
		t.Error("render broken")
	}
}

func TestSweepRender(t *testing.T) {
	sw := Sweep{
		ID: "x", Title: "T", XLabel: "size",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}, Note: []string{"", "OOM"}},
			{Label: "b", X: []float64{1, 2}, Y: []float64{11, 21}, Note: []string{"", ""}},
		},
	}
	out := sw.Render()
	if !strings.Contains(out, "OOM") || !strings.Contains(out, "size") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestMeanImprovementSkipsFailures(t *testing.T) {
	base := Series{Y: []float64{100, 100}, Note: []string{"", ""}}
	with := Series{Y: []float64{50, 999}, Note: []string{"", "OOM"}}
	if got := MeanImprovement(base, with); got != 50 {
		t.Fatalf("improvement = %v, want 50 (failed point skipped)", got)
	}
}

func TestHeterogeneityExperiment(t *testing.T) {
	sw := ExpHeterogeneity([]float64{0, 0.45})
	// The barrier-less framework keeps winning at every spread, and its
	// absolute savings hold up (the relative improvement dilutes because
	// the stretched map phase affects both modes — see EXPERIMENTS.md).
	saved0 := sw.Series[0].Y[0] - sw.Series[1].Y[0]
	saved45 := sw.Series[0].Y[1] - sw.Series[1].Y[1]
	if saved0 <= 0 || saved45 <= 0 {
		t.Fatalf("pipelined must win at all spreads: saved %v / %v", saved0, saved45)
	}
	if saved45 < 0.5*saved0 {
		t.Fatalf("absolute savings collapsed under heterogeneity: %.1fs -> %.1fs", saved0, saved45)
	}
	if !strings.Contains(RenderHetero(sw), "improvement per spread") {
		t.Fatal("render broken")
	}
}

func TestSpillTradeoffSweep(t *testing.T) {
	sw := SpillTradeoff([]float64{0, 64, 8})
	if len(sw.Series) != 2 {
		t.Fatalf("series = %d, want barrier + pipelined", len(sw.Series))
	}
	for _, ser := range sw.Series {
		// Unlimited must be fastest; an 8MB budget must cost more than 64MB
		// (more runs, more seeks) and must actually have sealed runs.
		if !(ser.Y[0] < ser.Y[1] && ser.Y[1] < ser.Y[2]) {
			t.Fatalf("%s: completion not monotone in budget pressure: %v", ser.Label, ser.Y)
		}
		if ser.Note[2] == "" {
			t.Fatalf("%s: tightest budget sealed no spill runs", ser.Label)
		}
	}
	if !strings.Contains(sw.Render(), "SpillTradeoff") {
		t.Fatal("render broken")
	}
}
