package harness

import (
	"fmt"
	"strings"

	"blmr/internal/apps"
	"blmr/internal/metrics"
	"blmr/internal/simmr"
	"blmr/internal/store"
)

// Figure 5 parameters: 16GB WordCount, 10 reducers, a 1400MB reducer heap,
// and a 240MB spill threshold for the managed run — the paper's setup.
const (
	fig5SizeGB   = 16
	fig5Reducers = 10
	fig5HeapMB   = 1400
	fig5SpillMB  = 240
)

// Fig5Result reproduces Figure 5: reducer heap usage over time for the
// unmanaged in-memory store (OOM kill) vs disk spill-and-merge (completes).
type Fig5Result struct {
	InMemory, Spill *simmr.Result
	// HottestSeries are the heap samples of the reducer with the highest
	// peak in each run.
	InMemorySeries, SpillSeries []metrics.MemSample
}

// Fig5 runs both memory-management configurations.
func Fig5() Fig5Result {
	ds := WordCountData(fig5SizeGB)
	base := RunSpec{
		App: apps.WordCount(), Data: ds, Mode: simmr.Pipelined,
		Reducers: fig5Reducers, Costs: CalibWordCount, HeapBudgetMB: fig5HeapMB,
	}
	mem := base
	mem.Store = store.InMemory
	spill := base
	spill.Store = store.SpillMerge
	spill.SpillThresholdMB = fig5SpillMB

	r1 := Run(mem)
	r2 := Run(spill)
	return Fig5Result{
		InMemory:       r1,
		Spill:          r2,
		InMemorySeries: hottestSeries(r1),
		SpillSeries:    hottestSeries(r2),
	}
}

func hottestSeries(r *simmr.Result) []metrics.MemSample {
	var best []metrics.MemSample
	var peak int64 = -1
	for _, id := range r.Metrics.SortedReducerIDs() {
		s := r.Metrics.MemSeries(id)
		for _, m := range s {
			if m.Bytes > peak {
				peak = m.Bytes
				best = s
			}
		}
	}
	return best
}

// Render formats the Figure 5 report: heap-over-time for both runs.
func (f Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fig5: WordCount %dGB, %d reducers, heap cap %d MB\n", fig5SizeGB, fig5Reducers, fig5HeapMB)
	fmt.Fprintf(&b, "(a) in-memory: failed=%v (%s) at %.1fs, peak heap %d MB\n",
		f.InMemory.Failed, f.InMemory.FailReason, f.InMemory.Completion, peakMB(f.InMemorySeries))
	fmt.Fprintf(&b, "(b) spill-and-merge @%dMB: failed=%v, completed %.1fs, peak heap %d MB, spills %d\n\n",
		fig5SpillMB, f.Spill.Failed, f.Spill.Completion, peakMB(f.SpillSeries), f.Spill.Spills)
	b.WriteString(renderMemSeries("(a) in-memory heap (hottest reducer)", f.InMemorySeries))
	b.WriteByte('\n')
	b.WriteString(renderMemSeries("(b) spill-and-merge heap (hottest reducer)", f.SpillSeries))
	return b.String()
}

func peakMB(s []metrics.MemSample) int64 {
	var peak int64
	for _, m := range s {
		if m.Bytes > peak {
			peak = m.Bytes
		}
	}
	return peak >> 20
}

// renderMemSeries prints a compact time/MB table with a bar sparkline.
func renderMemSeries(title string, s []metrics.MemSample) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	if len(s) == 0 {
		b.WriteString("  (no samples)\n")
		return b.String()
	}
	peak := int64(1)
	for _, m := range s {
		if m.Bytes > peak {
			peak = m.Bytes
		}
	}
	// Downsample to at most 24 rows.
	stride := len(s)/24 + 1
	for i := 0; i < len(s); i += stride {
		m := s[i]
		bar := strings.Repeat("#", int(40*m.Bytes/peak))
		fmt.Fprintf(&b, "  %8.1fs %6d MB %s\n", m.T, m.Bytes>>20, bar)
	}
	last := s[len(s)-1]
	fmt.Fprintf(&b, "  %8.1fs %6d MB (final)\n", last.T, last.Bytes>>20)
	return b.String()
}
