package harness

// Placement-policy tuning for the multi-tenant job service. The skewed
// stream — several one-map jobs arriving alongside one many-map job on a
// pool with one map slot per node — is the service's canonical pathology:
// every job's round-robin cursor starts at worker 0, so the load-blind
// stripe serializes the pile-up there while other nodes idle, and a
// load-aware policy spreads it. PolicySweep measures that gap in the
// simulator across skew levels, and PolicyPrediction produces the
// makespan ratio the real engine's parity test pins its wall-clock
// measurement against.

import (
	"fmt"

	"blmr/internal/apps"
	"blmr/internal/simmr"
	"blmr/internal/workload"
)

// PolicyTolerance is the stated agreement band between the simulated and
// real least-loaded/round-robin makespan ratios on the skewed stream. The
// band is wide on purpose — the simulator's stream is virtual-time clean
// while the real run carries per-job setup and shuffle wall-clock noise —
// but it still rejects a real engine whose policies do not separate (ratio
// near 1) when the model predicts a near-halving.
const PolicyTolerance = 0.35

// PolicyEstimate is one simulated skewed-stream experiment: the stream
// makespan under the load-blind round-robin baseline, under least-loaded,
// and their ratio (LeastLoaded/RoundRobin — below 1 means the load-aware
// policy wins).
type PolicyEstimate struct {
	RoundRobin  float64
	LeastLoaded float64
	Ratio       float64
}

// policyCluster is the sweep's testbed: `workers` identical nodes with a
// single map slot each, so map placement alone decides the makespan.
func policyCluster(workers int) simmr.Config {
	cfg := simmr.DefaultConfig()
	cfg.Cluster.Nodes = workers
	cfg.Cluster.MapSlots = 1
	cfg.Cluster.ReduceSlots = 2
	cfg.Cluster.SpeedSpread = 0
	cfg.Replication = 2
	return cfg
}

// policyStream builds one barrier WordCount job per entry of mapCounts
// (the entry is the job's map-task count), all arriving together. Map CPU
// is made the dominant cost so co-located maps serialize on the one-slot
// nodes.
func policyStream(e *simmr.Engine, mapCounts []int, workers int) []simmr.StreamJob {
	jobs := make([]simmr.StreamJob, 0, len(mapCounts))
	for i, chunks := range mapCounts {
		app := apps.WordCount()
		costs := simmr.DefaultCosts()
		costs.MapCPUPerRecord = 1e-3
		name := fmt.Sprintf("policy-job-%d", i)
		spec := simmr.JobSpec{
			Name: name, Mapper: app.Mapper, NewGroup: app.NewGroup,
			NewStream: app.NewStream, Merger: app.Merger,
			Reducers: 2, Mode: simmr.Barrier, Workers: workers, Costs: costs,
		}
		input := e.Ingest(name,
			workload.SplitEvenly(workload.Text(uint64(60+i), 600*chunks, 120, 8), chunks))
		jobs = append(jobs, simmr.StreamJob{Spec: spec, Input: input})
	}
	return jobs
}

// PolicyStreamMakespan simulates the mapCounts stream on a fresh
// `workers`-node engine under the named policy and returns the stream
// makespan. A failed job or an unknown policy returns an error.
func PolicyStreamMakespan(mapCounts []int, workers int, policy string) (float64, error) {
	e := simmr.NewEngine(policyCluster(workers))
	sr, err := e.RunStream(policyStream(e, mapCounts, workers), policy)
	if err != nil {
		return 0, err
	}
	for i, r := range sr.Jobs {
		if r == nil || r.Failed {
			return 0, fmt.Errorf("harness: policy stream job %d failed under %q", i, policy)
		}
	}
	return sr.Makespan, nil
}

// PolicyPrediction simulates the canonical skewed stream (len(mapCounts)
// jobs arriving together) under round-robin and least-loaded and returns
// both makespans — the ratio the real-engine parity test compares its
// measured wall-clock ratio against (within PolicyTolerance).
func PolicyPrediction(mapCounts []int, workers int) (PolicyEstimate, error) {
	rr, err := PolicyStreamMakespan(mapCounts, workers, "round-robin")
	if err != nil {
		return PolicyEstimate{}, err
	}
	ll, err := PolicyStreamMakespan(mapCounts, workers, "least-loaded")
	if err != nil {
		return PolicyEstimate{}, err
	}
	return PolicyEstimate{RoundRobin: rr, LeastLoaded: ll, Ratio: ll / rr}, nil
}

// PolicySweep sweeps the stream's skew — two one-map jobs plus one job of
// `skew` maps, all arriving together on a `workers`-node pool — and
// reports the makespan under every placement policy. As skew grows the
// round-robin series should pull away from the load-aware ones (locality
// degrades to least-loaded here: initial placements see no resident
// outputs).
func PolicySweep(workers int, skews []int) Sweep {
	sw := Sweep{
		ID:     "PolicySweep",
		Title:  fmt.Sprintf("two 1-map jobs + one skew-map job on %d one-slot workers: makespan vs skew", workers),
		XLabel: "big job maps",
	}
	for _, policy := range []string{"round-robin", "least-loaded", "locality"} {
		ser := Series{Label: policy}
		for _, skew := range skews {
			ms, err := PolicyStreamMakespan([]int{1, 1, skew}, workers, policy)
			note := ""
			if err != nil {
				note = "FAILED"
			}
			ser.X = append(ser.X, float64(skew))
			ser.Y = append(ser.Y, ms)
			ser.Note = append(ser.Note, note)
		}
		sw.Series = append(sw.Series, ser)
	}
	return sw
}
