package harness

import (
	"blmr/internal/apps"
	"blmr/internal/core"
	"blmr/internal/simmr"
	"blmr/internal/workload"
)

// Per-application dataset builders and cost calibrations. Real record
// counts are laptop-sized; ByteScale/RecordScale blow them up to the
// paper's data volumes for timing and memory purposes. The Calib*
// variables are package-level so ablation benchmarks can perturb them.

// makeDatasetN builds a dataset with an explicit chunk count and scales.
func makeDatasetN(recs []core.Record, chunks int, sizeGB float64, virtRecords float64) Dataset {
	realBytes := float64(core.RecordsSize(recs))
	if realBytes == 0 {
		realBytes = 1
	}
	recScale := 1.0
	if len(recs) > 0 {
		recScale = virtRecords / float64(len(recs))
	}
	return Dataset{
		Splits:      workload.SplitEvenly(recs, chunks),
		ByteScale:   sizeGB * GB / realBytes,
		RecordScale: recScale,
	}
}

// --- WordCount --------------------------------------------------------------

// WordCount dataset: Zipf core vocabulary plus a Heaps-law unique tail so
// distinct words (and thus reducer partial results) grow with corpus size.
const (
	wcLinesPerGB     = 2500
	wcWordsPerLine   = 9
	wcCoreVocab      = 20000
	wcZipfS          = 0.75
	wcUniqueFrac     = 0.30
	wcVirtWordsPerGB = 15e6
)

// WordCountData builds a sizeGB word-count corpus.
func WordCountData(sizeGB float64) Dataset {
	lines := int(float64(wcLinesPerGB) * sizeGB)
	recs := workload.TextHeaps(101, lines, wcCoreVocab, wcWordsPerLine, wcUniqueFrac, wcZipfS)
	// RecordScale is defined on the intermediate stream: each real word
	// stands for virtWords/realWords virtual words.
	return makeDataset(recs, sizeGB, sizeGB*wcVirtWordsPerGB/wcWordsPerLine)
}

// CalibWordCount is tuned for Figure 6(b): maps dominate, barrier pays a
// sort+reduce tail, pipelined reclaims most of it (~15% mean win).
var CalibWordCount = simmr.CostModel{
	MapCPUPerByte:        0.55e-6,
	MapCPUPerRecord:      0,
	ReduceCPUPerRecord:   350e-9,
	StoreCPUPerOp:        400e-9,
	SortCPUPerCompare:    60e-9,
	FinalizeCPUPerRecord: 200e-9,
	KVOpDelay:            1.0 / 30000,
	// Sorted Zipf text keys front-code extremely well (the wall-clock
	// delta codec measures far higher on the bench corpus; 2.8 is a
	// conservative per-class figure for mixed real text).
	CompressRatio: 2.8,
	CompressDelay: 0.4e-9, // parallel-decode effective rate (see simmr.DefaultCosts)
}

// --- Sort -------------------------------------------------------------------

const (
	sortRecsPerGB     = 8000
	sortVirtRecsPerGB = 2e6
)

// SortData builds a sizeGB sort input of uniform encoded keys.
func SortData(sizeGB float64) Dataset {
	n := int(float64(sortRecsPerGB) * sizeGB)
	recs := workload.UniformKeys(102, n, 1<<40)
	return makeDataset(recs, sizeGB, sizeGB*sortVirtRecsPerGB)
}

// CalibSort is tuned for Figure 6(a): identity maps leave little mapper
// slack, and red-black-tree insertion is costlier than the framework merge
// sort, so the barrier version wins slightly (paper: 2–9%).
var CalibSort = simmr.CostModel{
	MapCPUPerByte:        0.1e-6,
	ReduceCPUPerRecord:   2e-6,
	StoreCPUPerOp:        250e-6, // RB-tree insert per record beats merge-sort's amortized cost
	SortCPUPerCompare:    5e-6,
	FinalizeCPUPerRecord: 2e-6,
	KVOpDelay:            1.0 / 30000,
	// Uniform encoded keys barely LZ-compress; the win is key delta
	// structure only (the wall-clock codecs measure ~1.5x).
	CompressRatio: 1.5,
	CompressDelay: 0.4e-9, // parallel-decode effective rate (see simmr.DefaultCosts)
}

// --- k-Nearest Neighbors ------------------------------------------------------

const (
	knnTrainPerGB     = 1500
	knnExperimental   = 12
	knnK              = 10
	knnPadBytes       = 800
	knnVirtTrainPerGB = 150e3
)

// KNNData builds a sizeGB training set plus the fixed experimental set.
func KNNData(sizeGB float64) (Dataset, []uint64) {
	n := int(float64(knnTrainPerGB) * sizeGB)
	d := workload.KNN(103, n, knnExperimental, 1_000_000)
	// Keys are padded so input records approximate on-disk text lines;
	// RecordScale is defined on training records (each emitted pair
	// inherits it, so virtual pairs = virtual train x experimental).
	recs := workload.KNNRecords(d, knnPadBytes)
	ds := makeDataset(recs, sizeGB, sizeGB*knnVirtTrainPerGB)
	return ds, d.Experimental
}

// CalibKNN is tuned for Figure 6(c): distance computation makes maps heavy;
// the barrier pays a large sort of the (experimental x training) records
// (~18% pipelined win).
var CalibKNN = simmr.CostModel{
	MapCPUPerRecord:      4.8e-3, // distances against the experimental set per training record
	MapCPUPerByte:        0,
	ReduceCPUPerRecord:   2e-6,
	StoreCPUPerOp:        2e-6,
	SortCPUPerCompare:    0.15e-6,
	FinalizeCPUPerRecord: 1e-6,
	KVOpDelay:            1.0 / 30000,
}

// --- Last.fm ----------------------------------------------------------------

const (
	lfListensPerGB     = 20000
	lfUsers            = 50
	lfTracks           = 5000
	lfVirtListensPerGB = 2e6
)

// LastFMData builds sizeGB of track-listen events (50 users x 5000 tracks,
// as in the paper).
func LastFMData(sizeGB float64) Dataset {
	n := int(float64(lfListensPerGB) * sizeGB)
	recs := workload.Listens(104, n, lfUsers, lfTracks)
	return makeDataset(recs, sizeGB, sizeGB*lfVirtListensPerGB)
}

// CalibLastFM is tuned for Figure 6(d): ~20% pipelined win from absorbing
// the sort plus the set-building reduce into the map window.
var CalibLastFM = simmr.CostModel{
	MapCPUPerByte:        0.6e-6,
	ReduceCPUPerRecord:   8e-6,
	StoreCPUPerOp:        20e-6,
	SortCPUPerCompare:    3.5e-6,
	FinalizeCPUPerRecord: 2e-6,
	KVOpDelay:            1.0 / 30000,
}

// --- Genetic Algorithm --------------------------------------------------------

const (
	gaIndividualsPerMapper     = 1500
	gaGenomeBits               = 64
	gaWindow                   = 200
	gaVirtIndividualsPerMapper = 1e6
	gaGBPerMapper              = 0.064 // one 64MB chunk of individuals per mapper
)

// GAData builds a population sharded one chunk per mapper (the paper scales
// the dataset by adding mappers, 50M individuals each).
func GAData(mappers int) Dataset {
	recs := workload.Individuals(105, gaIndividualsPerMapper*mappers, gaGenomeBits)
	return makeDatasetN(recs, mappers, gaGBPerMapper*float64(mappers),
		gaVirtIndividualsPerMapper*float64(mappers))
}

// CalibGA is tuned for Figure 6(e): fitness evaluation dominates the map
// side; intermediate and output writes bound the rest (~15% win).
var CalibGA = simmr.CostModel{
	MapCPUPerRecord:      45e-6, // fitness evaluation per (virtual) individual
	ReduceCPUPerRecord:   2e-6,
	StoreCPUPerOp:        0, // window reducer keeps no keyed partials
	SortCPUPerCompare:    0.25e-6,
	FinalizeCPUPerRecord: 1e-6,
	KVOpDelay:            1.0 / 30000,
}

// --- Black-Scholes -------------------------------------------------------------

const (
	bsRealSamplesPerMapper = 200
	bsVirtIterPerMapper    = 1e6
	bsByteScale            = 600 // ~16MB virtual of samples per mapper
)

// BSData builds per-mapper Monte-Carlo seeds (one tiny chunk per mapper;
// the map work is compute, not I/O).
func BSData(mappers int) Dataset {
	recs := workload.OptionSeeds(106, mappers)
	// ByteScale is fixed so each mapper's emitted samples occupy ~16MB
	// virtual (1M values x 16B), independent of the tiny seed input;
	// RecordScale makes each real sample stand for its share of the 1M
	// virtual Monte-Carlo values.
	return Dataset{
		Splits:      workload.SplitEvenly(recs, mappers),
		ByteScale:   bsByteScale,
		RecordScale: bsVirtIterPerMapper / bsRealSamplesPerMapper,
	}
}

// BSPaperParams are the Monte-Carlo parameters used by the experiments.
func BSPaperParams() apps.BSParams {
	p := apps.DefaultBSParams()
	p.Iterations = 20000 // real paths per mapper (stands for 1M virtual)
	p.Samples = bsRealSamplesPerMapper
	return p
}

// CalibBS is tuned for Figure 6(f): fast compute-only maps, a single
// reducer, and a huge barrier-side sort of every sampled value — the
// paper's best case (56% average, 87% max win).
var CalibBS = simmr.CostModel{
	MapCPUPerRecord:      0.5e-3, // Monte-Carlo paths per (virtual) seed record
	ReduceCPUPerRecord:   50e-9,
	StoreCPUPerOp:        0, // O(1) running sums
	SortCPUPerCompare:    12e-9,
	FinalizeCPUPerRecord: 1e-6,
	KVOpDelay:            1.0 / 30000,
}
