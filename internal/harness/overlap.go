package harness

import (
	"fmt"

	"blmr/internal/apps"
	"blmr/internal/simmr"
)

// OverlapSweep compares the multi-process engine's staged control plane
// (reduce wave dispatched after the whole map wave — PR 3's stage barrier)
// against the overlapped one (reduce tasks dispatched at job start,
// sealed-run routes streamed as maps finish) over the TCP run exchange, in
// both execution modes — the simulated counterpart of mpexec's
// exec.Options.Staged and the paper's Figure 4/6 claim at cluster scale.
// Overlap releases each map's sections to the fetchers the moment it
// publishes, so shuffle (and, pipelined, reduce work) hides under the map
// runway instead of queueing behind it.
func OverlapSweep(app apps.App, sizeGB float64, workerCounts []int) Sweep {
	ds := WordCountData(sizeGB)
	costs := CalibWordCount
	if app.Name == "sort" {
		ds = SortData(sizeGB)
		costs = CalibSort
	}
	if costs.RunFetchDelay == 0 {
		costs.RunFetchDelay = simmr.DefaultCosts().RunFetchDelay
	}
	sw := Sweep{
		ID:     "OverlapSweep",
		Title:  fmt.Sprintf("%s %.0fGB over the TCP run exchange: staged vs overlapped dispatch", app.Name, sizeGB),
		XLabel: "workers",
	}
	for _, variant := range []struct {
		label  string
		mode   simmr.Mode
		staged bool
	}{
		{"barrier/staged", simmr.Barrier, true},
		{"barrier/overlap", simmr.Barrier, false},
		{"pipelined/staged", simmr.Pipelined, true},
		{"pipelined/overlap", simmr.Pipelined, false},
	} {
		ser := Series{Label: variant.label}
		for _, w := range workerCounts {
			res := Run(RunSpec{
				App: app, Data: ds, Mode: variant.mode,
				Reducers: 60, Costs: costs,
				Workers: w, Transport: simmr.TCPRunExchange,
				Staged: variant.staged,
			})
			ser.X = append(ser.X, float64(w))
			ser.Y = append(ser.Y, res.Completion)
			note := ""
			if res.Failed {
				note = "FAILED"
			}
			ser.Note = append(ser.Note, note)
		}
		sw.Series = append(sw.Series, ser)
	}
	return sw
}
