package harness

import (
	"blmr/internal/apps"
	"blmr/internal/simmr"
	"blmr/internal/store"
)

// Figure 6: job completion times, with and without barrier, for the six
// case-study applications. Default reducer count is the cluster's full
// reduce capacity (60), as in the paper's setup of 4 reducers per node.

// fig6Reducers is the reduce-task count used across Figure 6.
const fig6Reducers = 60

// sweepModes runs app at each x in both modes and assembles the sweep.
func sweepModes(id, title, xlabel string, xs []float64, mk func(x float64) (apps.App, Dataset), costs simmr.CostModel, reducers int) Sweep {
	barrier := Series{Label: "with barrier"}
	pipelined := Series{Label: "without barrier"}
	for _, x := range xs {
		app, ds := mk(x)
		for _, mode := range []simmr.Mode{simmr.Barrier, simmr.Pipelined} {
			res := Run(RunSpec{
				App: app, Data: ds, Mode: mode, Reducers: reducers,
				Store: store.InMemory, Costs: costs,
			})
			ser := &barrier
			if mode == simmr.Pipelined {
				ser = &pipelined
			}
			ser.X = append(ser.X, x)
			ser.Y = append(ser.Y, res.Completion)
			note := ""
			if res.Failed {
				note = "OOM"
			}
			ser.Note = append(ser.Note, note)
		}
	}
	return Sweep{ID: id, Title: title, XLabel: xlabel, Series: []Series{barrier, pipelined}}
}

// Fig6Sort reproduces Figure 6(a): sort completion vs input size.
func Fig6Sort(sizesGB []float64) Sweep {
	return sweepModes("fig6a", "Sort", "input size (GB)", sizesGB,
		func(gb float64) (apps.App, Dataset) { return apps.Sort(), SortData(gb) },
		CalibSort, fig6Reducers)
}

// Fig6WordCount reproduces Figure 6(b): word count vs input size.
func Fig6WordCount(sizesGB []float64) Sweep {
	return sweepModes("fig6b", "WordCount", "input size (GB)", sizesGB,
		func(gb float64) (apps.App, Dataset) { return apps.WordCount(), WordCountData(gb) },
		CalibWordCount, fig6Reducers)
}

// Fig6KNN reproduces Figure 6(c): k-nearest neighbors vs input size.
func Fig6KNN(sizesGB []float64) Sweep {
	return sweepModes("fig6c", "k-Nearest Neighbors", "input size (GB)", sizesGB,
		func(gb float64) (apps.App, Dataset) {
			ds, exp := KNNData(gb)
			return apps.KNN(knnK, exp), ds
		},
		CalibKNN, fig6Reducers)
}

// Fig6LastFM reproduces Figure 6(d): Last.fm unique listens vs input size.
func Fig6LastFM(sizesGB []float64) Sweep {
	return sweepModes("fig6d", "Last.fm Post Processing", "input size (GB)", sizesGB,
		func(gb float64) (apps.App, Dataset) { return apps.LastFM(), LastFMData(gb) },
		CalibLastFM, fig6Reducers)
}

// Fig6GA reproduces Figure 6(e): genetic algorithm vs number of mappers
// (40 reducers, as in the paper).
func Fig6GA(mappers []float64) Sweep {
	return sweepModes("fig6e", "Genetic Algorithms", "number of mappers", mappers,
		func(m float64) (apps.App, Dataset) { return apps.GA(gaWindow), GAData(int(m)) },
		CalibGA, 40)
}

// Fig6BlackScholes reproduces Figure 6(f): Black-Scholes vs number of
// mappers (single reducer).
func Fig6BlackScholes(mappers []float64) Sweep {
	return sweepModes("fig6f", "Black-Scholes", "number of mappers", mappers,
		func(m float64) (apps.App, Dataset) {
			return apps.BlackScholes(BSPaperParams()), BSData(int(m))
		},
		CalibBS, 1)
}

// PaperSizesGB are the input sizes of Figures 6(a)-(d).
func PaperSizesGB() []float64 { return []float64{2, 4, 8, 16} }

// PaperGAMappers are the x values of Figure 6(e).
func PaperGAMappers() []float64 { return []float64{50, 100, 150, 200, 250} }

// PaperBSMappers are the x values of Figure 6(f).
func PaperBSMappers() []float64 { return []float64{25, 50, 100, 150, 200} }
