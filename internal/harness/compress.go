package harness

import (
	"fmt"

	"blmr/internal/apps"
	"blmr/internal/codec"
	"blmr/internal/simmr"
)

// compressionPoint is one sealed-run codec with its workload-class
// compression ratio. The ratios mirror what the wall-clock block codecs
// measure on a Zipf text corpus (see the spill-compression benchmarks in
// internal/mr): plain LZ blocks shrink WordCount spill runs a bit under
// 2x, and front-coding the sorted keys pushes past it.
type compressionPoint struct {
	comp  codec.Compression
	ratio float64
}

// CompressionTradeoff sweeps the sealed-run codec {none, block, delta}
// over an 8GB WordCount on the run-exchange transport with a spill budget
// — the configuration whose completion time is dominated by materializing,
// re-reading and fetching sealed runs, exactly where compression pays.
// Each point divides disk writes, merge re-reads and shuffle transfers by
// the codec's ratio and charges Costs.CompressDelay per raw byte of
// (de)compression CPU, so the sweep shows where the CPU price overtakes
// the I/O win (crank CompressDelay up to see compression lose). The
// simulated sibling of the wall-clock `-compress` benchmarks in
// scripts/bench.sh.
func CompressionTradeoff() Sweep {
	ds := WordCountData(8)
	points := []compressionPoint{
		{codec.None, 1.0},
		{codec.Block, 1.8},
		{codec.DeltaBlock, 2.8},
	}
	modes := []struct {
		label string
		mode  simmr.Mode
	}{
		{"barrier", simmr.Barrier},
		{"pipelined", simmr.Pipelined},
	}
	sw := Sweep{
		ID:     "CompressionTradeoff",
		Title:  "WordCount 8GB, run exchange + 64MB spill budget: completion by sealed-run codec",
		XLabel: "codec(0=none,1=block,2=delta)",
	}
	costs := CalibWordCount
	if costs.SpillRunDelay == 0 {
		costs.SpillRunDelay = simmr.DefaultCosts().SpillRunDelay
	}
	if costs.RunFetchDelay == 0 {
		costs.RunFetchDelay = simmr.DefaultCosts().RunFetchDelay
	}
	if costs.CompressDelay == 0 {
		costs.CompressDelay = simmr.DefaultCosts().CompressDelay
	}
	for _, m := range modes {
		ser := Series{Label: m.label}
		for _, pt := range points {
			c := costs
			c.CompressRatio = pt.ratio
			res := Run(RunSpec{
				App: apps.WordCount(), Data: ds, Mode: m.mode,
				Reducers: 60, Costs: c,
				Transport:   simmr.RunExchange,
				SpillBytes:  64 << 20,
				Compression: pt.comp,
			})
			ser.X = append(ser.X, float64(pt.comp))
			ser.Y = append(ser.Y, res.Completion)
			note := ""
			if pt.comp != codec.None {
				note = fmt.Sprintf("%.1fx", pt.ratio)
			}
			ser.Note = append(ser.Note, note)
		}
		sw.Series = append(sw.Series, ser)
	}
	return sw
}
