package harness

import (
	"fmt"

	"blmr/internal/apps"
	"blmr/internal/simmr"
	"blmr/internal/store"
)

// ExpHeterogeneity explores the paper's closing conjecture ("exploring
// heterogeneity in systems and how much improvement our barrier-less
// framework grants in the face of that heterogeneity"): the WordCount job
// is run on clusters of increasing CPU-speed spread. Straggling mappers
// stretch the shuffle window, and the barrier-less framework converts that
// extra mapper slack into useful reduce work, so its advantage should grow
// with heterogeneity.
func ExpHeterogeneity(spreads []float64) Sweep {
	ds := WordCountData(8)
	barrier := Series{Label: "with barrier"}
	pipelined := Series{Label: "without barrier"}
	for _, s := range spreads {
		cl := PaperCluster()
		cl.SpeedSpread = s
		for _, mode := range []simmr.Mode{simmr.Barrier, simmr.Pipelined} {
			res := Run(RunSpec{
				App: apps.WordCount(), Data: ds, Mode: mode, Reducers: fig6Reducers,
				Store: store.InMemory, Costs: CalibWordCount, Cluster: cl,
			})
			ser := &barrier
			if mode == simmr.Pipelined {
				ser = &pipelined
			}
			ser.X = append(ser.X, s)
			ser.Y = append(ser.Y, res.Completion)
			ser.Note = append(ser.Note, "")
		}
	}
	return Sweep{
		ID:     "hetero",
		Title:  "WordCount 8GB under CPU heterogeneity (future-work experiment)",
		XLabel: "speed spread (+/-)",
		Series: []Series{barrier, pipelined},
	}
}

// HeteroSpreads are the default sweep points.
func HeteroSpreads() []float64 { return []float64{0, 0.15, 0.3, 0.45} }

// RenderHetero adds the per-point improvement column to the sweep.
func RenderHetero(sw Sweep) string {
	out := sw.Render()
	imps := Improvements(sw.Series[0], sw.Series[1])
	out += "improvement per spread:"
	for i, imp := range imps {
		out += fmt.Sprintf("  %.2f:%.1f%%", sw.Series[0].X[i], imp)
	}
	return out + "\n"
}
