package shuffle

// Segments: the unit of the run-exchange read path. A map task's sealed
// wave is one multi-partition segment file; a Segment addresses one
// partition's byte section of one wave, either on the local filesystem
// (SpillExchange) or behind a run-server (TCP, multi-process workers).

import (
	"io"
	"sync/atomic"

	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/dfs"
	"blmr/internal/sortx"
)

// Span is one partition's byte section within a sealed wave file.
// N == 0 means the partition was empty in that wave.
type Span struct{ Off, N int64 }

// Wave is one sealed multi-partition segment file: every non-empty
// partition's key-sorted run back to back (Hadoop's io.sort spill layout),
// with per-partition spans kept as metadata instead of an on-disk index.
type Wave struct {
	// Path locates the file for local opens (empty for remote waves).
	Path string
	// FileID identifies the file on Addr's run-server (TCP exchange).
	FileID uint64
	// Addr is the serving run-server ("" = open Path locally).
	Addr string
	// Comp is the codec every span of the wave was sealed with.
	Comp codec.Compression
	// Spans are the per-partition sections.
	Spans []Span
}

// Segment addresses one partition's section of one sealed wave.
type Segment struct {
	Path   string // local file ("" = remote)
	Addr   string // run-server address (remote)
	FileID uint64
	Off, N int64
	// Comp is the section's sealed-run codec. Compressed sections travel
	// compressed over the wire (the server ships file bytes verbatim) and
	// are decompressed by the reader on the fetching side.
	Comp codec.Compression
}

// SegmentOf returns partition r's segment of the wave, ok=false when empty.
func (w Wave) SegmentOf(r int) (Segment, bool) {
	sp := w.Spans[r]
	if sp.N == 0 {
		return Segment{}, false
	}
	return Segment{Path: w.Path, Addr: w.Addr, FileID: w.FileID, Off: sp.Off, N: sp.N, Comp: w.Comp}, true
}

// RunCloser is a mergeable run that owns an underlying resource (file or
// connection). dfs.RunReader and RemoteRun both satisfy it.
type RunCloser interface {
	sortx.Source
	io.Closer
}

// Open opens the segment for streaming reads, locally or over the wire.
func (s Segment) Open() (RunCloser, error) { return s.open(nil) }

// open is Open with optional wire-byte accounting: fetched (remote) section
// lengths are added to fetchBytes when non-nil. Compressed sections count
// their compressed size — the bytes that actually cross the wire.
func (s Segment) open(fetchBytes *atomic.Int64) (RunCloser, error) {
	if s.Addr == "" {
		return dfs.OpenRunAtComp(s.Path, s.Off, s.N, s.Comp)
	}
	if fetchBytes != nil {
		fetchBytes.Add(s.N)
	}
	return FetchSegment(s.Addr, s.FileID, s.Off, s.N, s.Comp)
}

// LazyRun is a Segment that opens on first Next. A fan-in-capped merge over
// lazy runs therefore holds at most fan-in read buffers (and, for remote
// segments, TCP connections) open at once, no matter how many runs the
// partition has.
type LazyRun struct {
	seg    Segment
	fetch  *atomic.Int64 // optional wire-byte counter
	r      RunCloser
	err    error
	opened bool
}

// NewLazyRun wraps a segment.
func NewLazyRun(seg Segment) *LazyRun { return &LazyRun{seg: seg} }

// Next implements sortx.Run.
func (l *LazyRun) Next() (core.Record, bool) {
	if l.err != nil {
		return core.Record{}, false
	}
	if !l.opened {
		l.opened = true
		l.r, l.err = l.seg.open(l.fetch)
		if l.err != nil {
			return core.Record{}, false
		}
	}
	rec, ok := l.r.Next()
	if !ok {
		l.err = l.r.Err()
	}
	return rec, ok
}

// Err implements sortx.Source.
func (l *LazyRun) Err() error { return l.err }

// Close releases the underlying reader, if one was ever opened.
func (l *LazyRun) Close() error {
	if l.r == nil {
		return nil
	}
	r := l.r
	l.r = nil
	return r.Close()
}

// SegmentSource is the run-exchange ReduceSource for one partition: Runs
// waits for the map barrier and returns every segment as a lazy run;
// NextBatch streams each map task's segments as that task completes,
// re-batched to batchSize records (pipelined consumption at map-task
// granularity — the overlap a cross-process shuffle can actually offer).
type SegmentSource struct {
	nMaps     int
	segsOf    func(m int) []Segment // valid once map m has completed
	mapsDone  <-chan struct{}       // closed when every map task has closed
	completed <-chan int            // map indexes in completion order
	fail      *failState
	batchSize int
	fetch     atomic.Int64 // wire bytes fetched from run-servers

	// streaming state
	seen  int
	queue []Segment
	cur   RunCloser
}

// FetchBytes reports how many bytes this partition fetched from remote
// run-servers (compressed sections count their on-the-wire size; locally
// opened sections count nothing).
func (s *SegmentSource) FetchBytes() int64 { return s.fetch.Load() }

// NewStaticSegmentSource builds a source over a fixed, fully-available
// segment list in merge order (the multi-process reduce path: by the time a
// reduce task is dispatched, every map task has completed).
func NewStaticSegmentSource(segs []Segment, batchSize int) *SegmentSource {
	done := make(chan struct{})
	close(done)
	completed := make(chan int, 1)
	completed <- 0
	if batchSize <= 0 {
		batchSize = 256
	}
	return &SegmentSource{
		nMaps:     1,
		segsOf:    func(int) []Segment { return segs },
		mapsDone:  done,
		completed: completed,
		fail:      newFailState(),
		batchSize: batchSize,
	}
}

// Runs implements ReduceSource: block on the map barrier, then return every
// segment as a lazy run in (map task, publish order) order.
func (s *SegmentSource) Runs() ([]sortx.Run, error) {
	select {
	case <-s.mapsDone:
	case <-s.fail.done:
		return nil, s.fail.failed()
	}
	var runs []sortx.Run
	for m := 0; m < s.nMaps; m++ {
		for _, seg := range s.segsOf(m) {
			lr := NewLazyRun(seg)
			lr.fetch = &s.fetch
			runs = append(runs, lr)
		}
	}
	return runs, nil
}

// NextBatch implements ReduceSource: stream records of completed map tasks.
func (s *SegmentSource) NextBatch() ([]core.Record, bool, error) {
	var batch []core.Record
	for {
		if s.cur != nil {
			if batch == nil {
				batch = make([]core.Record, 0, s.batchSize)
			}
			for len(batch) < s.batchSize {
				rec, ok := s.cur.Next()
				if !ok {
					break
				}
				batch = append(batch, rec)
			}
			if len(batch) == s.batchSize {
				return batch, true, nil
			}
			err := s.cur.Err()
			_ = s.cur.Close()
			s.cur = nil
			if err != nil {
				return nil, false, err
			}
		}
		if len(s.queue) > 0 {
			r, err := s.queue[0].open(&s.fetch)
			s.queue = s.queue[1:]
			if err != nil {
				return nil, false, err
			}
			s.cur = r
			continue
		}
		if s.seen == s.nMaps {
			return batch, len(batch) > 0, nil
		}
		// About to block for the next completed map: flush what we have so
		// the reducer overlaps with still-running maps.
		if len(batch) > 0 {
			return batch, true, nil
		}
		select {
		case m := <-s.completed:
			s.seen++
			s.queue = s.segsOf(m)
		case <-s.fail.done:
			return nil, false, s.fail.failed()
		}
	}
}

// Recycle implements ReduceSource (run-exchange batches are not pooled).
func (s *SegmentSource) Recycle([]core.Record) {}

// Close implements ReduceSource.
func (s *SegmentSource) Close() error {
	if s.cur != nil {
		err := s.cur.Close()
		s.cur = nil
		return err
	}
	return nil
}

// sealWave encodes one key-sorted run per partition into a single new
// segment file in dir — each partition's section a self-contained run in
// the directory's codec — returning the wave (registered with srv when
// non-nil). enc is the caller's reusable encoder (nil on first use; the
// returned encoder replaces it). Waves with no records produce no file
// (ok=false).
func sealWave(dir *dfs.RunDir, srv *Server, tag string, parts [][]core.Record, enc *codec.RunEncoder) (w Wave, encOut *codec.RunEncoder, ok bool, err error) {
	any := false
	for _, part := range parts {
		if len(part) > 0 {
			any = true
			break
		}
	}
	if !any {
		return Wave{}, enc, false, nil
	}
	if enc == nil {
		enc = codec.NewRunEncoder(nil, dir.Compression())
	}
	wr, err := dir.Create(tag)
	if err != nil {
		return Wave{}, enc, false, err
	}
	w = Wave{Comp: dir.Compression(), Spans: make([]Span, len(parts))}
	var raw int64
	for p, part := range parts {
		if len(part) == 0 {
			continue
		}
		off := wr.Bytes()
		enc.Reset(wr)
		for _, r := range part {
			if err := enc.Append(r); err != nil {
				wr.Abort()
				return Wave{}, enc, false, err
			}
		}
		if err := enc.Flush(); err != nil {
			wr.Abort()
			return Wave{}, enc, false, err
		}
		raw += enc.RawBytes()
		w.Spans[p] = Span{Off: off, N: wr.Bytes() - off}
	}
	if err := wr.Close(); err != nil {
		wr.Abort()
		return Wave{}, enc, false, err
	}
	dir.AddRawBytes(raw)
	w.Path = wr.Path()
	if srv != nil {
		w.FileID = srv.Register(wr.Path())
		w.Addr = srv.Addr()
		w.Path = "" // reads go through the server, like a remote peer's would
	}
	return w, enc, true, nil
}
