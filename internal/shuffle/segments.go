package shuffle

// Segments: the unit of the run-exchange read path. A map task's sealed
// wave is one multi-partition segment file; a Segment addresses one
// partition's byte section of one wave, either on the local filesystem
// (SpillExchange) or behind a run-server (TCP, multi-process workers).
// Remote sections go through a FetchPool when one is wired in — one
// multiplexed connection per peer with pipelined prefetch — and fall back
// to the one-dial-per-section "BLR1" fetch otherwise.
//
// Fetch recovery: sources fed by a live control plane (PushSource) carry a
// route resolver. When a section fetch fails — dial error, dead server,
// short section — the reader burns the connection, backs off, re-resolves
// the segment's current route (blocking until the control plane has routed
// a re-executed attempt) and reopens, skipping the records it already
// delivered. That leans on deterministic re-execution: a re-executed map
// attempt seals byte-identical runs, so the skipped prefix is the same
// data. Sources without a resolver keep the fail-fast behaviour.

import (
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/dfs"
	"blmr/internal/retry"
	"blmr/internal/sortx"
)

// Span is one partition's byte section within a sealed wave file.
// N == 0 means the partition was empty in that wave.
type Span struct{ Off, N int64 }

// Wave is one sealed multi-partition segment file: every non-empty
// partition's key-sorted run back to back (Hadoop's io.sort spill layout),
// with per-partition spans kept as metadata instead of an on-disk index.
type Wave struct {
	// Path locates the file for local opens (empty for remote waves).
	Path string
	// FileID identifies the file on Addr's run-server (TCP exchange).
	FileID uint64
	// Addr is the serving run-server ("" = open Path locally).
	Addr string
	// Comp is the codec every span of the wave was sealed with.
	Comp codec.Compression
	// CRC is the CRC-32C of the whole sealed file, computed while sealing.
	// The crash-restart re-attach handshake compares it against a returning
	// worker's on-disk scan to prove a journaled wave survived intact.
	CRC uint32
	// Spans are the per-partition sections.
	Spans []Span
}

// Segment addresses one partition's section of one sealed wave.
type Segment struct {
	Path   string // local file ("" = remote)
	Addr   string // run-server address (remote)
	FileID uint64
	Off, N int64
	// Comp is the section's sealed-run codec. Compressed sections travel
	// compressed over the wire (the server ships file bytes verbatim) and
	// are decompressed by the reader on the fetching side.
	Comp codec.Compression
}

// SegmentOf returns partition r's segment of the wave, ok=false when empty.
func (w Wave) SegmentOf(r int) (Segment, bool) {
	sp := w.Spans[r]
	if sp.N == 0 {
		return Segment{}, false
	}
	return Segment{Path: w.Path, Addr: w.Addr, FileID: w.FileID, Off: sp.Off, N: sp.N, Comp: w.Comp}, true
}

// RunCloser is a mergeable run that owns an underlying resource (file or
// connection). dfs.RunReader and RemoteRun both satisfy it.
type RunCloser interface {
	sortx.Source
	io.Closer
}

// Open opens the segment for streaming reads, locally or over the wire.
func (s Segment) Open() (RunCloser, error) { return s.open(nil) }

// open is Open with optional wire-byte accounting: fetched (remote) section
// lengths are added to fetchBytes when non-nil. Compressed sections count
// their compressed size — the bytes that actually cross the wire.
func (s Segment) open(fetchBytes *atomic.Int64) (RunCloser, error) {
	if s.Addr == "" {
		return dfs.OpenRunAtComp(s.Path, s.Off, s.N, s.Comp)
	}
	if fetchBytes != nil {
		fetchBytes.Add(s.N)
	}
	return FetchSegment(s.Addr, s.FileID, s.Off, s.N, s.Comp)
}

// Resolver re-resolves one map segment's current route after a fetch
// failure. wait=true blocks until a valid route exists (a re-executed
// attempt was pushed) or the source is failed; wait=false returns ok=false
// when the route is currently invalidated.
type Resolver func(m, segIdx int, wait bool) (Segment, bool, error)

// LazyRun is a Segment that opens on first Next. A fan-in-capped merge over
// lazy runs therefore holds at most fan-in read buffers (and, for remote
// segments, checked-out pool connections) open at once, no matter how many
// runs the partition has.
type LazyRun struct {
	seg      Segment
	fetch    *atomic.Int64 // optional wire-byte counter
	pool     *FetchPool    // optional pooled fetch plane for remote segments
	useArena bool          // pooled fetches cut strings from the conn's arena
	// resolve, when set, re-routes the run after a fetch failure (blocking
	// until the control plane routes a live attempt), under rpol's backoff.
	resolve   func() (Segment, error)
	rpol      retry.Policy
	src       sortx.Source
	release   func() error // returns the conn to the pool / closes the file
	err       error
	opened    bool
	delivered int64 // records already handed to the merge (skip on re-route)
}

// NewLazyRun wraps a segment.
func NewLazyRun(seg Segment) *LazyRun { return &LazyRun{seg: seg} }

func (l *LazyRun) open() {
	l.opened = true
	l.err = nil
	if l.seg.Addr == "" || l.pool == nil {
		r, err := l.seg.open(l.fetch)
		if err != nil {
			l.err = err
			return
		}
		l.src, l.release = r, r.Close
		return
	}
	pc, err := l.pool.get(l.seg.Addr)
	if err != nil {
		l.err = err
		return
	}
	if l.fetch != nil {
		l.fetch.Add(l.seg.N)
	}
	var pr *pooledRun
	err = pc.request(l.seg.FileID, l.seg.Off, l.seg.N)
	if err == nil {
		pr, err = pc.openSection(l.seg.Comp, l.useArena)
	}
	if err != nil {
		l.pool.put(pc) // closed there if the conn is broken/desynced
		l.err = err
		return
	}
	l.src = pr
	l.release = func() error { l.pool.put(pc); return nil } // burns if mid-section
}

// Next implements sortx.Run.
func (l *LazyRun) Next() (core.Record, bool) {
	if l.err != nil {
		return core.Record{}, false
	}
	if !l.opened {
		l.open()
		if l.err != nil && !l.recover() {
			return core.Record{}, false
		}
	}
	for {
		rec, ok := l.src.Next()
		if ok {
			l.delivered++
			return rec, true
		}
		l.err = l.src.Err()
		if l.err == nil {
			return core.Record{}, false // clean end of the run
		}
		if !l.recover() {
			return core.Record{}, false
		}
	}
}

// recover re-routes after a fetch failure: burn the broken resource, back
// off, re-resolve the segment (blocking until a live attempt is routed),
// reopen and skip the prefix already delivered to the merge. Returns true
// with l.src repositioned, or false with l.err set.
func (l *LazyRun) recover() bool {
	if l.resolve == nil {
		return false
	}
	pol := l.rpol.Normalize()
	lastErr := l.err
	for k := 1; k < pol.Attempts; k++ {
		_ = l.Close()
		time.Sleep(pol.Backoff(k))
		seg, err := l.resolve()
		if err != nil {
			l.err = err // source failed/aborted: surface that, not the fetch error
			return false
		}
		l.seg = seg
		l.open()
		if l.err != nil {
			lastErr = l.err
			continue
		}
		var skipped int64
		reread := true
		for skipped < l.delivered {
			if _, ok := l.src.Next(); !ok {
				lastErr = l.src.Err()
				if lastErr == nil {
					lastErr = fmt.Errorf("shuffle: re-routed section ended %d records short of the consumed prefix (nondeterministic map output?)", l.delivered-skipped)
				}
				reread = false
				break
			}
			skipped++
		}
		if reread {
			l.err = nil
			return true
		}
	}
	l.err = fmt.Errorf("shuffle: fetch re-route gave up after %d attempts: %w", pol.Attempts, lastErr)
	return false
}

// Err implements sortx.Source.
func (l *LazyRun) Err() error { return l.err }

// Close releases the underlying resource — closing the file reader, or
// handing the pooled connection back — if one was ever opened.
func (l *LazyRun) Close() error {
	if l.release == nil {
		return nil
	}
	rel := l.release
	l.src, l.release = nil, nil
	return rel()
}

// queuedSeg is one pending streaming segment, possibly with a prefetch
// request already pipelined on a pooled connection.
type queuedSeg struct {
	seg  Segment
	m, i int       // map index and segment index within the map (re-routing key)
	pc   *poolConn // non-nil once the section request is pipelined
}

// SegmentSource is the run-exchange ReduceSource for one partition: Runs
// waits for the map barrier and returns every segment as a lazy run;
// NextBatch streams each map task's segments as that task completes,
// re-batched to batchSize records (pipelined consumption at map-task
// granularity — the overlap a cross-process shuffle can actually offer).
// With a FetchPool wired in, NextBatch keeps up to the merge fan-in of
// section requests pipelined ahead of consumption on per-peer connections.
type SegmentSource struct {
	nMaps     int
	segsOf    func(m int) []Segment // valid once map m has completed
	mapsDone  <-chan struct{}       // closed when every map task has closed
	completed <-chan int            // map indexes in completion order
	fail      *failState
	batchSize int
	pool      *FetchPool
	prefetch  int          // max pipelined section requests (merge fan-in)
	fetch     atomic.Int64 // wire bytes fetched from run-servers
	resolve   Resolver     // optional re-route recovery (PushSource)
	rpol      retry.Policy

	// streaming state
	seen     int
	queue    []queuedSeg
	inflight int                  // queued sections already requested
	conns    map[string]*poolConn // conns held for pipelined streaming
	cur      sortx.Source
	curDone  func() error // releases cur's resource
	curPC    *poolConn    // cur's pooled conn (nil for direct opens)
	curM     int          // cur's re-routing key
	curI     int
	curCount int64 // records delivered from cur (skip on re-route)
}

// SetPool wires the pooled fetch plane in: remote segments are fetched
// over per-peer multiplexed connections, with up to fanIn section requests
// pipelined ahead of streaming consumption.
func (s *SegmentSource) SetPool(p *FetchPool, fanIn int) {
	s.pool = p
	if fanIn < 1 {
		fanIn = 1
	}
	s.prefetch = fanIn
}

// SetResolver wires fetch re-route recovery: failed section fetches
// re-resolve their route through f under pol's capped backoff instead of
// failing the task.
func (s *SegmentSource) SetResolver(f Resolver, pol retry.Policy) {
	s.resolve = f
	s.rpol = pol
}

// FetchBytes reports how many bytes this partition fetched from remote
// run-servers (compressed sections count their on-the-wire size; locally
// opened sections count nothing).
func (s *SegmentSource) FetchBytes() int64 { return s.fetch.Load() }

// Runs implements ReduceSource: block on the map barrier, then return every
// segment as a lazy run in (map task, publish order) order. Remote runs go
// through the pooled fetch plane when one is wired in, decoding through
// each connection's reusable buffers and string arena (the merge's grouped
// consumers fold or clone what they retain, so arena chunks stay
// short-lived).
func (s *SegmentSource) Runs() ([]sortx.Run, error) {
	select {
	case <-s.mapsDone:
	case <-s.fail.done:
		return nil, s.fail.failed()
	}
	var runs []sortx.Run
	for m := 0; m < s.nMaps; m++ {
		segs := s.segsOf(m)
		for i := range segs {
			lr := NewLazyRun(segs[i])
			lr.fetch = &s.fetch
			lr.pool = s.pool
			lr.useArena = true
			if s.resolve != nil {
				m, i := m, i
				lr.resolve = func() (Segment, error) {
					seg, _, err := s.resolve(m, i, true)
					return seg, err
				}
				lr.rpol = s.rpol
			}
			runs = append(runs, lr)
		}
	}
	return runs, nil
}

// connFor returns the held streaming connection for addr, checking one out
// on first use.
func (s *SegmentSource) connFor(addr string) (*poolConn, error) {
	if pc, ok := s.conns[addr]; ok {
		return pc, nil
	}
	pc, err := s.pool.get(addr)
	if err != nil {
		return nil, err
	}
	if s.conns == nil {
		s.conns = make(map[string]*poolConn)
	}
	s.conns[addr] = pc
	return pc, nil
}

// dropConn removes a broken streaming connection: pipelined requests on it
// are forgotten (their queue entries re-request elsewhere) and the conn is
// closed via the pool.
func (s *SegmentSource) dropConn(pc *poolConn) {
	for i := range s.queue {
		if s.queue[i].pc == pc {
			s.queue[i].pc = nil
			s.inflight--
		}
	}
	delete(s.conns, pc.addr)
	pc.broken = true
	s.pool.put(pc) // broken: closed there
}

// pump pipelines section requests for queued remote segments, bounded by
// the prefetch budget. Requests go out in queue order per peer, matching
// the order the responses will be consumed in. With a resolver wired in,
// unreachable peers are skipped (their segments open — and re-route — at
// the queue head instead) and stale routes are refreshed first.
func (s *SegmentSource) pump() error {
	if s.pool == nil {
		return nil
	}
	for i := range s.queue {
		if s.inflight >= s.prefetch {
			return nil
		}
		q := &s.queue[i]
		if q.pc != nil || q.seg.Addr == "" {
			continue
		}
		if s.resolve != nil {
			seg, ok, err := s.resolve(q.m, q.i, false)
			if err != nil {
				return err
			}
			if !ok {
				continue // invalidated, not yet re-routed: wait at the head
			}
			q.seg = seg
		}
		pc, err := s.connFor(q.seg.Addr)
		if err != nil {
			if s.resolve != nil {
				continue // dead peer: the head open re-routes it
			}
			return err
		}
		if err := pc.request(q.seg.FileID, q.seg.Off, q.seg.N); err != nil {
			s.dropConn(pc)
			if s.resolve != nil {
				continue
			}
			return err
		}
		s.fetch.Add(q.seg.N)
		q.pc = pc
		s.inflight++
	}
	return nil
}

// openHead opens the queue's head segment for streaming.
func (s *SegmentSource) openHead() error {
	q := s.queue[0]
	s.queue = s.queue[1:]
	s.curM, s.curI, s.curCount = q.m, q.i, 0
	if q.pc != nil {
		s.inflight--
		// Arena decode is safe for streaming consumers too: the pipelined
		// stores clone keys at node creation and fold values (aggregation)
		// or retain them as live output payload (identity), so a chunk
		// outlives its decode window only by what the task genuinely keeps.
		pr, err := q.pc.openSection(q.seg.Comp, true)
		if err != nil {
			s.dropConn(q.pc)
			return err
		}
		s.cur = pr
		s.curDone = func() error { return nil } // conn returns at Close
		s.curPC = q.pc
		return nil
	}
	r, err := q.seg.open(&s.fetch)
	if err != nil {
		return err
	}
	s.cur = r
	s.curDone = r.Close
	s.curPC = nil
	return nil
}

// recoverStream re-routes the current streaming section after cause: burn
// the broken resource, back off, re-resolve (blocking until the control
// plane routes a live attempt), reopen directly and skip the records
// already delivered. Returns nil with s.cur repositioned, or the error to
// surface.
func (s *SegmentSource) recoverStream(cause error) error {
	if s.resolve == nil {
		return cause
	}
	if s.curPC != nil {
		if _, held := s.conns[s.curPC.addr]; held {
			s.dropConn(s.curPC)
		}
	} else if s.curDone != nil {
		_ = s.curDone()
	}
	s.cur, s.curDone, s.curPC = nil, nil, nil
	pol := s.rpol.Normalize()
	lastErr := cause
	for k := 1; k < pol.Attempts; k++ {
		time.Sleep(pol.Backoff(k))
		seg, _, err := s.resolve(s.curM, s.curI, true)
		if err != nil {
			return err // source failed/aborted
		}
		r, err := seg.open(&s.fetch)
		if err != nil {
			lastErr = err
			continue
		}
		var skipped int64
		reread := true
		for skipped < s.curCount {
			if _, ok := r.Next(); !ok {
				lastErr = r.Err()
				if lastErr == nil {
					lastErr = fmt.Errorf("shuffle: re-routed section ended %d records short of the consumed prefix (nondeterministic map output?)", s.curCount-skipped)
				}
				_ = r.Close()
				reread = false
				break
			}
			skipped++
		}
		if !reread {
			continue
		}
		s.cur, s.curDone, s.curPC = r, r.Close, nil
		return nil
	}
	return fmt.Errorf("shuffle: fetch re-route gave up after %d attempts: %w", pol.Attempts, lastErr)
}

// NextBatch implements ReduceSource: stream records of completed map tasks.
func (s *SegmentSource) NextBatch() ([]core.Record, bool, error) {
	var batch []core.Record
	for {
		if s.cur != nil {
			if batch == nil {
				batch = make([]core.Record, 0, s.batchSize)
			}
			for len(batch) < s.batchSize {
				rec, ok := s.cur.Next()
				if !ok {
					break
				}
				s.curCount++
				batch = append(batch, rec)
			}
			if len(batch) == s.batchSize {
				return batch, true, nil
			}
			if err := s.cur.Err(); err != nil {
				if err = s.recoverStream(err); err != nil {
					return nil, false, err
				}
				continue
			}
			cerr := s.curDone()
			s.cur, s.curDone, s.curPC = nil, nil, nil
			if cerr != nil {
				return nil, false, cerr
			}
		}
		if err := s.pump(); err != nil {
			return nil, false, err
		}
		if len(s.queue) > 0 {
			if err := s.openHead(); err != nil {
				if err = s.recoverStream(err); err != nil {
					return nil, false, err
				}
			}
			continue
		}
		if s.seen == s.nMaps {
			return batch, len(batch) > 0, nil
		}
		// About to block for the next completed map: flush what we have so
		// the reducer overlaps with still-running maps.
		if len(batch) > 0 {
			return batch, true, nil
		}
		select {
		case m := <-s.completed:
			s.seen++
			segs := s.segsOf(m)
			for i := range segs {
				s.queue = append(s.queue, queuedSeg{seg: segs[i], m: m, i: i})
			}
		case <-s.fail.done:
			return nil, false, s.fail.failed()
		}
	}
}

// Recycle implements ReduceSource (run-exchange batches are not pooled).
func (s *SegmentSource) Recycle([]core.Record) {}

// Close implements ReduceSource: release the current reader and hand every
// held streaming connection back to the pool (connections abandoned
// mid-section or with requests still pipelined are closed there instead).
func (s *SegmentSource) Close() error {
	var err error
	if s.cur != nil {
		err = s.curDone()
		s.cur, s.curDone, s.curPC = nil, nil, nil
	}
	for _, pc := range s.conns {
		s.pool.put(pc)
	}
	s.conns = nil
	return err
}

// PushSource is a SegmentSource fed by an external control plane: the
// multi-process workers' reduce tasks receive sealed-run routes as push
// messages while map tasks are still running elsewhere on the cluster —
// the cross-wave overlap the coordinator's streamed 'm' metadata enables.
// Offer, Invalidate and Fail are safe to call concurrently with the
// consuming task.
//
// Routes are attempt-aware: the first offer of a map counts it toward the
// barrier, a duplicate offer of the same attempt is an idempotent no-op
// (speculative clones make the coordinator's pushes at-least-once), and an
// offer of a newer attempt supersedes the routing wholesale (re-execution
// after the serving worker died). Invalidate marks a map's routing dead
// without replacing it; fetch recovery then blocks in the resolver until a
// superseding attempt is offered.
type PushSource struct {
	SegmentSource
	mu      sync.Mutex
	byMap   [][]Segment
	attempt []int  // routed attempt ID (valid when got[m])
	dead    []bool // routing invalidated, awaiting a superseding attempt
	got     []bool
	offered int
	ch      chan int
	done    chan struct{}
	routeCh chan struct{} // closed and replaced on every route change
}

// NewPushSource builds a source expecting one Offer per map task.
func NewPushSource(nMaps, batchSize int) *PushSource {
	if batchSize <= 0 {
		batchSize = 256
	}
	p := &PushSource{
		byMap:   make([][]Segment, nMaps),
		attempt: make([]int, nMaps),
		dead:    make([]bool, nMaps),
		got:     make([]bool, nMaps),
		ch:      make(chan int, nMaps),
		done:    make(chan struct{}),
		routeCh: make(chan struct{}),
	}
	if nMaps == 0 {
		close(p.done)
	}
	p.SegmentSource = SegmentSource{
		nMaps: nMaps,
		segsOf: func(m int) []Segment {
			p.mu.Lock()
			defer p.mu.Unlock()
			return p.byMap[m]
		},
		mapsDone:  p.done,
		completed: p.ch,
		fail:      newFailState(),
		batchSize: batchSize,
	}
	p.SegmentSource.SetResolver(p.resolveSeg, retry.Policy{
		Base: 50 * time.Millisecond, Max: 2 * time.Second, Attempts: 8,
	})
	return p
}

// Offer records map task m's segments for this partition (empty for a map
// that published nothing here) under the given attempt ID. The first offer
// of a map counts it toward the source's barrier and releases it to the
// consumer; a repeat of the same attempt is ignored; a newer attempt
// replaces the routing (and revives an invalidated one). Older attempts
// never displace newer ones.
func (p *PushSource) Offer(m, attempt int, segs []Segment) error {
	p.mu.Lock()
	if m < 0 || m >= len(p.byMap) {
		p.mu.Unlock()
		return fmt.Errorf("shuffle: segment push for map %d of %d", m, len(p.byMap))
	}
	if !p.got[m] {
		p.got[m] = true
		p.attempt[m] = attempt
		p.byMap[m] = segs
		p.offered++
		last := p.offered == len(p.byMap)
		p.mu.Unlock()
		p.ch <- m // buffered to nMaps: never blocks
		if last {
			close(p.done)
		}
		return nil
	}
	if attempt < p.attempt[m] || (attempt == p.attempt[m] && !p.dead[m]) {
		p.mu.Unlock()
		return nil // duplicate or stale push: idempotent
	}
	p.attempt[m] = attempt
	p.byMap[m] = segs
	p.dead[m] = false
	close(p.routeCh) // wake fetch recovery blocked on this map
	p.routeCh = make(chan struct{})
	p.mu.Unlock()
	return nil
}

// Invalidate marks map m's routing dead (its serving worker was lost):
// fetches of its segments park in the resolver until a superseding attempt
// is offered. A map never routed is left untouched.
func (p *PushSource) Invalidate(m int) {
	p.mu.Lock()
	if m >= 0 && m < len(p.byMap) && p.got[m] {
		p.dead[m] = true
	}
	p.mu.Unlock()
}

// resolveSeg is the source's Resolver: the current route of map m's i-th
// segment, blocking (wait=true) while the routing is invalidated.
func (p *PushSource) resolveSeg(m, i int, wait bool) (Segment, bool, error) {
	for {
		p.mu.Lock()
		if m < 0 || m >= len(p.byMap) {
			p.mu.Unlock()
			return Segment{}, false, fmt.Errorf("shuffle: resolve segment of map %d of %d", m, len(p.byMap))
		}
		if p.got[m] && !p.dead[m] {
			segs := p.byMap[m]
			if i >= len(segs) {
				p.mu.Unlock()
				return Segment{}, false, fmt.Errorf("shuffle: re-routed map %d has %d segments, want index %d (nondeterministic map output?)", m, len(segs), i)
			}
			seg := segs[i]
			p.mu.Unlock()
			return seg, true, nil
		}
		ch := p.routeCh
		p.mu.Unlock()
		if !wait {
			return Segment{}, false, nil
		}
		select {
		case <-ch:
		case <-p.fail.done:
			return Segment{}, false, p.fail.failed()
		}
	}
}

// Fail aborts the source: the consuming task wakes with err.
func (p *PushSource) Fail(err error) { p.fail.fail(err) }

// sealWave encodes one key-sorted run per partition into a single new
// segment file in dir — each partition's section a self-contained run in
// the directory's codec — returning the wave (registered with srv when
// non-nil). enc is the caller's reusable encoder (nil on first use; the
// returned encoder replaces it). Waves with no records produce no file
// (ok=false).
func sealWave(dir *dfs.RunDir, srv *Server, tag string, parts [][]core.Record, enc *codec.RunEncoder) (w Wave, encOut *codec.RunEncoder, ok bool, err error) {
	any := false
	for _, part := range parts {
		if len(part) > 0 {
			any = true
			break
		}
	}
	if !any {
		return Wave{}, enc, false, nil
	}
	if enc == nil {
		enc = codec.NewRunEncoder(nil, dir.Compression())
	}
	wr, err := dir.Create(tag)
	if err != nil {
		return Wave{}, enc, false, err
	}
	w = Wave{Comp: dir.Compression(), Spans: make([]Span, len(parts))}
	// Every file byte flows through the encoder, so a checksumming shim
	// between encoder and writer sees the sealed file exactly as it lands
	// on disk — the CRC the re-attach survival scan will recompute.
	cw := &crcWriter{w: wr}
	var raw int64
	for p, part := range parts {
		if len(part) == 0 {
			continue
		}
		off := wr.Bytes()
		enc.Reset(cw)
		for _, r := range part {
			if err := enc.Append(r); err != nil {
				wr.Abort()
				return Wave{}, enc, false, err
			}
		}
		if err := enc.Flush(); err != nil {
			wr.Abort()
			return Wave{}, enc, false, err
		}
		raw += enc.RawBytes()
		w.Spans[p] = Span{Off: off, N: wr.Bytes() - off}
	}
	if err := wr.Close(); err != nil {
		wr.Abort()
		return Wave{}, enc, false, err
	}
	dir.AddRawBytes(raw)
	w.Path = wr.Path()
	w.CRC = cw.sum
	if srv != nil {
		w.FileID = srv.Register(wr.Path())
		w.Addr = srv.Addr()
		w.Path = "" // reads go through the server, like a remote peer's would
	}
	return w, enc, true, nil
}

// crcWriter tracks the CRC-32C of everything written through it.
type crcWriter struct {
	w   io.Writer
	sum uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.sum = crc32.Update(c.sum, crcTable, p[:n])
	return n, err
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)
