//go:build !linux

package shuffle

import (
	"io"
	"net"
	"os"
)

// sendfileSection on non-linux platforms: a plain positional copy straight
// to the socket. Still bypasses the per-connection bufio layer and never
// touches the shared handle's file position; io.Copy may internally pick
// the platform's own zero-copy path where one exists.
func sendfileSection(tc *net.TCPConn, f *os.File, off, n int64) (int64, error) {
	return io.Copy(tc, io.NewSectionReader(f, off, n))
}
