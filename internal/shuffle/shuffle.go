// Package shuffle is the pluggable shuffle data plane of the real-concurrency
// engine: it moves partitioned intermediate records from map tasks to reduce
// tasks. Three transports implement the same Transport contract:
//
//   - InProc: shared-memory runs plus batched per-reducer channels — the
//     original single-process engine's data plane (zero-copy, free-list
//     batch recycling).
//   - SpillExchange: map tasks seal every wave of output as codec-encoded,
//     key-sorted multi-partition segment files (the spill-run format of
//     dfs.RunDir), and reduce tasks re-open partition sections from the
//     local filesystem — the run-exchange discipline Hadoop's io.sort
//     layout enables.
//   - TCP: the same sealed-run exchange, but reduce tasks fetch partition
//     sections from a loopback TCP run-server (Server) — the wire path the
//     multi-process mode (internal/mpexec) uses between worker processes.
//
// Two consumption disciplines are offered, mirroring the engine's two
// execution modes. Stream discipline (pipelined): map tasks Send record
// batches and reduce tasks drain them with NextBatch as they arrive. Run
// discipline (barrier, and pipelined over the run-exchange transports): map
// tasks publish key-sorted runs per partition with PublishWave, and reduce
// tasks either merge every run after the map barrier (Runs) or stream each
// map task's runs as it completes (NextBatch).
package shuffle

import (
	"fmt"
	"sync"

	"blmr/internal/core"
	"blmr/internal/dfs"
	"blmr/internal/sortx"
)

// Kind names a shuffle transport, used in configs and flags.
type Kind int

// Available transports.
const (
	// InProc exchanges intermediate data through process memory: batched
	// channels (stream discipline) and shared record slices (run
	// discipline). Sealed spill waves still go to disk through Config.Dir.
	InProc Kind = iota
	// SpillExchange seals every map output wave as a spill-run segment file
	// and re-opens partition sections from the local filesystem.
	SpillExchange
	// TCP is SpillExchange with the read path served by a loopback TCP
	// run-server: reduce tasks fetch partition sections over the wire.
	TCP
)

var kindNames = [...]string{"inproc", "spill", "tcp"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return "unknown"
	}
	return kindNames[k]
}

// ParseKind converts a flag string (inproc|spill|tcp) to a Kind.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if s == n {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("shuffle: unknown transport %q (want inproc|spill|tcp)", s)
}

// Config parameterizes a transport for one job execution.
type Config struct {
	// Maps and Parts are the map-task and partition (reduce-task) counts.
	Maps, Parts int
	// QueueCap is the per-partition channel buffer in batches (stream
	// discipline).
	QueueCap int
	// BatchSize is the records-per-batch granularity: channel sends for the
	// stream discipline, decode batching for run-discipline NextBatch.
	BatchSize int
	// Dir stores sealed run files. Required for SpillExchange and TCP, and
	// for InProc when map tasks seal spill waves (Options.SpillBytes).
	Dir *dfs.RunDir
	// MergeFanIn is the external merge's fan-in cap (Options.MergeFanIn):
	// the TCP transport uses it to bound pipelined section prefetch per
	// reduce source (default 64).
	MergeFanIn int
	// DecodeWorkers sizes the TCP transport's parallel block-decode pool
	// (FetchPool.DecodeWorkers): compressed fetched sections CRC-verify
	// and decompress on that many workers, overlapping the merge. <= 1
	// decodes inline.
	DecodeWorkers int
}

// Transport is one job execution's shuffle data plane. MapSink and
// ReduceSource are safe to call from concurrent tasks; each returned sink
// or source is single-owner.
type Transport interface {
	// MapSink returns map task m's output sink.
	MapSink(m int) MapSink
	// ReduceSource returns partition r's consumer side.
	ReduceSource(r int) ReduceSource
	// Fail aborts the exchange: every blocked producer and consumer wakes
	// with err. The first call wins; later calls are no-ops.
	Fail(err error)
	// Close releases transport-wide resources (servers, channels). Sealed
	// run files are owned by Config.Dir, not the transport.
	Close() error
}

// MapSink receives one map task's partitioned output. A task uses exactly
// one discipline: Send (stream) or PublishWave (runs). Close marks the
// task's output complete either way.
type MapSink interface {
	// Batch returns an empty batch buffer to fill (stream discipline);
	// transports with a free list hand back recycled buffers.
	Batch() []core.Record
	// Send publishes one filled batch for partition p; buffer ownership
	// transfers to the transport. It blocks on backpressure and fails only
	// after the transport has been failed.
	Send(p int, batch []core.Record) error
	// PublishWave publishes one wave: a key-sorted run per partition (empty
	// partitions are skipped). sealed=true marks a spill crossing — the
	// wave must leave the task's memory before PublishWave returns, and the
	// caller may then reuse the part slices. sealed=false publishes the
	// task's final wave; ownership of the slices transfers.
	PublishWave(parts [][]core.Record, sealed bool) error
	// Close marks this map task's output complete.
	Close() error
}

// ReduceSource delivers one partition's intermediate data to a reduce task.
type ReduceSource interface {
	// NextBatch blocks for the next batch of records (pipelined
	// consumption); ok=false once every map task's output is drained.
	NextBatch() (batch []core.Record, ok bool, err error)
	// Recycle returns a drained batch buffer to the transport.
	Recycle(batch []core.Record)
	// Runs blocks until every map task has closed its sink (the shuffle
	// barrier) and returns all of the partition's runs in (map task,
	// publish order) order — the ordering whose stable merge reproduces the
	// single-process engine's sort byte-for-byte. Disk- and network-backed
	// runs open lazily and implement io.Closer; the caller closes them.
	Runs() ([]sortx.Run, error)
	// Close releases any readers the source itself still holds.
	Close() error
}

// New builds the transport of the given kind.
func New(kind Kind, cfg Config) (Transport, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.MergeFanIn <= 0 {
		cfg.MergeFanIn = 64
	}
	switch kind {
	case InProc:
		return newInProc(cfg), nil
	case SpillExchange:
		if cfg.Dir == nil {
			return nil, fmt.Errorf("shuffle: %v transport needs a run directory", kind)
		}
		return newRunExchange(cfg, nil), nil
	case TCP:
		if cfg.Dir == nil {
			return nil, fmt.Errorf("shuffle: %v transport needs a run directory", kind)
		}
		srv, err := NewServer()
		if err != nil {
			return nil, err
		}
		return newRunExchange(cfg, srv), nil
	default:
		return nil, fmt.Errorf("shuffle: unknown transport kind %d", kind)
	}
}

// failState is the shared abort latch embedded by every transport.
type failState struct {
	mu   sync.Mutex
	done chan struct{}
	err  error
}

func newFailState() *failState { return &failState{done: make(chan struct{})} }

// fail latches err and wakes every waiter. Only the first call stores err;
// callers must hold no transport locks.
func (f *failState) fail(err error) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	select {
	case <-f.done:
		return false
	default:
	}
	f.err = err
	close(f.done)
	return true
}

// failed returns the latched error, or nil.
func (f *failState) failed() error {
	select {
	case <-f.done:
		if f.err != nil {
			return f.err
		}
		return fmt.Errorf("shuffle: transport aborted")
	default:
		return nil
	}
}
