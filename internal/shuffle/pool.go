package shuffle

// The pooled fetch plane. PR 3's TCP exchange paid one net.Dial per fetched
// section (one "BLR1" request per connection); at real fan-ins that is
// thousands of dials per job and a fresh read buffer + decoder allocation
// per section. FetchPool keeps one multiplexed "BLR2" connection per peer
// run-server (more only under concurrent checkout, e.g. a fan-in-capped
// merge streaming many runs at once), pipelines request-id-framed section
// requests on it, and reuses the connection's read buffer, decoder state
// and string arena across every section it carries — the fetch path stops
// allocating per section.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/retry"
)

// FetchPool is a per-peer pool of multiplexed run-server connections,
// shared by every reduce task of one worker process (or of one in-process
// TCP-transport execution). Get/put are internal; fetch sections through
// Fetch or a SegmentSource wired to the pool. Safe for concurrent use;
// each checked-out connection is single-owner.
type FetchPool struct {
	// DialRetry is the capped-exponential-backoff policy for run-server
	// dials (zero value: 3 attempts, 25ms base, 250ms cap), absorbing
	// transient connect failures; genuinely dead peers still fail within
	// the attempt budget and are handled by the callers' re-route recovery.
	DialRetry retry.Policy

	// DecodeWorkers sizes the shared block-decode pool: compressed
	// sections fetched through this pool CRC-verify and decompress their
	// blocks on that many workers while the merger consumes decoded blocks
	// in order (codec.DecodePool). 0 or 1 keeps decode inline on the
	// consuming goroutine. Set before the first fetch.
	DecodeWorkers int

	mu     sync.Mutex
	idle   map[string][]*poolConn
	closed bool
	dials  atomic.Int64

	decMu sync.Mutex
	dec   *codec.DecodePool
}

// NewFetchPool builds an empty pool.
func NewFetchPool() *FetchPool {
	return &FetchPool{idle: make(map[string][]*poolConn)}
}

// Dials reports how many run-server connections the pool has ever dialed —
// the number a dial-per-section fetch path would inflate with every fetched
// section, and the pooled plane bounds near (peers × concurrent fetches).
func (p *FetchPool) Dials() int64 { return p.dials.Load() }

// Close closes every idle pooled connection and marks the pool closed:
// connections returned later are closed instead of pooled, so the peers'
// run-servers reap their handler goroutines. Checked-out connections are
// owned (and closed) by their fetchers; sections they are still decoding
// fall back to inline decode once the decode pool stops.
func (p *FetchPool) Close() error {
	p.mu.Lock()
	idle := p.idle
	p.idle = make(map[string][]*poolConn)
	p.closed = true
	p.mu.Unlock()
	for _, conns := range idle {
		for _, c := range conns {
			_ = c.conn.Close()
		}
	}
	p.decMu.Lock()
	dec := p.dec
	p.dec = nil
	p.decMu.Unlock()
	if dec != nil {
		dec.Close()
	}
	return nil
}

// decodePool lazily starts the shared block-decode workers; nil when
// parallel decode is off (or the pool is closed).
func (p *FetchPool) decodePool() *codec.DecodePool {
	if p.DecodeWorkers <= 1 {
		return nil
	}
	p.decMu.Lock()
	defer p.decMu.Unlock()
	if p.dec == nil {
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return nil
		}
		p.dec = codec.NewDecodePool(p.DecodeWorkers)
	}
	return p.dec
}

// get checks out a connection to addr, dialing when none is idle.
func (p *FetchPool) get(addr string) (*poolConn, error) {
	p.mu.Lock()
	if cs := p.idle[addr]; len(cs) > 0 {
		c := cs[len(cs)-1]
		p.idle[addr] = cs[:len(cs)-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	pol := p.DialRetry
	if pol.Attempts == 0 && pol.Base == 0 && pol.Max == 0 {
		pol = retry.Policy{Base: 25 * time.Millisecond, Max: 250 * time.Millisecond, Attempts: 3}
	}
	conn, err := pol.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("shuffle: dial run-server %s: %w", addr, err)
	}
	p.dials.Add(1)
	c := &poolConn{
		pool: p,
		addr: addr,
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 4<<10),
	}
	// The magic travels with the first request's flush.
	_, _ = c.bw.Write(serverMagicMux[:])
	return c, nil
}

// put returns a checked-out connection. A connection with unconsumed
// response bytes (an abandoned section) or a protocol error is out of sync
// and is closed instead.
func (p *FetchPool) put(c *poolConn) {
	// An abandoned section may still have a parallel-decode reader on the
	// connection; quiesce it before the conn is pooled or closed so
	// nothing races the socket.
	if c.par != nil {
		c.par.Stop()
		c.par = nil
	}
	if c.broken || len(c.pending) > 0 {
		_ = c.conn.Close()
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = c.conn.Close()
		return
	}
	p.idle[c.addr] = append(p.idle[c.addr], c)
	p.mu.Unlock()
}

// pendingSec is one request written on a connection whose response has not
// been fully consumed yet.
type pendingSec struct {
	id uint64
	n  int64
}

// poolConn is one multiplexed run-server connection. Single-owner while
// checked out; responses arrive in request order.
type poolConn struct {
	pool    *FetchPool
	addr    string
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	reqSeq  uint64
	pending []pendingSec // FIFO of in-flight requests
	scratch []byte
	broken  bool

	// Reused across every section the connection carries.
	dec   codec.SectionDecoder
	arena codec.Arena
	sr    sectionReader
	run   pooledRun
	par   *codec.ParallelReader // active parallel section, if any
}

// sectionReader is a codec.ByteScanner over the next n payload bytes of the
// connection's (already buffered) read side. It reports io.EOF exactly at
// the section boundary; an early EOF from the connection itself (dead
// server) passes through with bytes still remaining, which the pooledRun
// turns into a short-section error.
type sectionReader struct {
	br        *bufio.Reader
	remaining int64
}

func (s *sectionReader) Read(p []byte) (int, error) {
	if s.remaining <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > s.remaining {
		p = p[:s.remaining]
	}
	n, err := s.br.Read(p)
	s.remaining -= int64(n)
	return n, err
}

func (s *sectionReader) ReadByte() (byte, error) {
	if s.remaining <= 0 {
		return 0, io.EOF
	}
	b, err := s.br.ReadByte()
	if err == nil {
		s.remaining--
	}
	return b, err
}

// request writes (buffered) one section request; the response must be
// consumed in order via beginSection.
func (c *poolConn) request(fileID uint64, off, n int64) error {
	c.reqSeq++
	b := binary.AppendUvarint(c.scratch[:0], c.reqSeq)
	b = binary.AppendUvarint(b, fileID)
	b = binary.AppendUvarint(b, uint64(off))
	b = binary.AppendUvarint(b, uint64(n))
	c.scratch = b
	if _, err := c.bw.Write(b); err != nil {
		c.broken = true
		return fmt.Errorf("shuffle: request run section from %s: %w", c.addr, err)
	}
	c.pending = append(c.pending, pendingSec{id: c.reqSeq, n: n})
	return nil
}

// beginSection flushes pending requests and reads the response header of
// the oldest in-flight request, leaving its n payload bytes next on the
// stream. An error response is returned as err with the connection intact;
// a framing violation marks it broken.
func (c *poolConn) beginSection() (n int64, err error) {
	if len(c.pending) == 0 {
		c.broken = true
		return 0, fmt.Errorf("shuffle: no section requested on conn to %s", c.addr)
	}
	if err := c.bw.Flush(); err != nil {
		c.broken = true
		return 0, fmt.Errorf("shuffle: flush section requests to %s: %w", c.addr, err)
	}
	want := c.pending[0]
	id, err := binary.ReadUvarint(c.br)
	if err != nil {
		c.broken = true
		return 0, fmt.Errorf("shuffle: fetch run section from %s: %w", c.addr, err)
	}
	if id != want.id {
		c.broken = true
		return 0, fmt.Errorf("shuffle: run-server %s answered request %d, want %d", c.addr, id, want.id)
	}
	status, err := c.br.ReadByte()
	if err != nil {
		c.broken = true
		return 0, fmt.Errorf("shuffle: fetch run section from %s: %w", c.addr, err)
	}
	if status != 0 {
		c.pending = c.pending[:copy(c.pending, c.pending[1:])]
		msg := "unknown fetch error"
		if l, err := binary.ReadUvarint(c.br); err == nil {
			b := make([]byte, l)
			if _, err := io.ReadFull(c.br, b); err == nil {
				msg = string(b)
			} else {
				c.broken = true
			}
		} else {
			c.broken = true
		}
		return 0, fmt.Errorf("shuffle: fetch run section from %s: %s", c.addr, msg)
	}
	return want.n, nil
}

// sectionDone pops the oldest in-flight request after its payload was
// consumed in full.
func (c *poolConn) sectionDone() {
	c.pending = c.pending[:copy(c.pending, c.pending[1:])]
}

// openSection begins the oldest requested section and returns a streaming
// record reader over it. The returned run is owned by the connection
// (reused per section): exactly one section may be open at a time, and it
// must be drained or the connection abandoned. useArena cuts the decoded
// record strings from the connection's shared arena (see codec.Arena).
func (c *poolConn) openSection(comp codec.Compression, useArena bool) (*pooledRun, error) {
	n, err := c.beginSection()
	if err != nil {
		return nil, err
	}
	c.sr = sectionReader{br: c.br, remaining: n}
	var arena *codec.Arena
	if useArena {
		arena = &c.arena
	}
	var rr codec.RecordReader
	c.par = nil
	if comp != codec.None && c.pool != nil {
		if dp := c.pool.decodePool(); dp != nil {
			// Compressed sections decode on the shared worker pool: block
			// CRC + LZ work overlaps the merge (and other sections), while
			// record parsing — and the arena — stays on this goroutine.
			c.par = codec.NewParallelReader(dp, &c.sr, arena)
			rr = c.par
		}
	}
	if rr == nil {
		rr = c.dec.Reset(&c.sr, comp, arena)
	}
	c.run = pooledRun{
		pc: c,
		n:  n,
		rr: rr,
	}
	return &c.run, nil
}

// pooledRun streams one fetched section off a pooled connection. It
// implements sortx.Source plus a completion check; unlike RemoteRun it does
// not own the connection — the checkout holder returns it to the pool.
type pooledRun struct {
	pc   *poolConn
	n    int64
	rr   codec.RecordReader
	err  error
	done bool
}

// Next implements sortx.Run.
func (r *pooledRun) Next() (core.Record, bool) {
	if r.err != nil || r.done {
		return core.Record{}, false
	}
	rec, ok := r.rr.Next()
	if !ok {
		// With a parallel decoder, a false Next means its reader goroutine
		// has exited (clean end or drained error) — the section stream is
		// quiescent, so the remaining-bytes check below is race-free.
		r.pc.par = nil
		if err := r.rr.Err(); err != nil {
			r.err = fmt.Errorf("shuffle: fetched run: %w", err)
			r.pc.broken = true
		} else if got := r.n - r.pc.sr.remaining; got < r.n {
			// The decoder saw a clean end short of the section length: the
			// serving side died mid-transfer (or the stream desynced).
			r.err = fmt.Errorf("shuffle: fetched run: %w: short section (%d of %d bytes)",
				codec.ErrCorrupt, got, r.n)
			r.pc.broken = true
		} else {
			r.done = true
			r.pc.sectionDone()
		}
	}
	return rec, ok
}

// Err implements sortx.Source.
func (r *pooledRun) Err() error { return r.err }
