package shuffle

import (
	"errors"
	"strings"
	"testing"

	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/dfs"
)

func sortedRecs(prefix string, n int) []core.Record {
	recs := make([]core.Record, n)
	for i := range recs {
		recs[i] = core.Record{Key: prefix + string(rune('a'+i%26)), Value: "v"}
	}
	// keys cycle; sort for run discipline
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].Key < recs[j-1].Key; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
	return recs
}

// TestServerRoundTrip: a sealed wave fetched over the wire decodes to the
// bytes that were sealed, and bad requests fail loudly.
func TestServerRoundTrip(t *testing.T) {
	dir, err := dfs.NewRunDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	srv, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	parts := [][]core.Record{sortedRecs("x", 100), nil, sortedRecs("y", 7)}
	w, _, ok, err := sealWave(dir, srv, "t", parts, nil)
	if err != nil || !ok {
		t.Fatalf("sealWave: ok=%v err=%v", ok, err)
	}
	if w.Path != "" || w.Addr == "" {
		t.Fatalf("server-registered wave should be remote-only: %+v", w)
	}
	for p, want := range parts {
		seg, ok := w.SegmentOf(p)
		if !ok {
			if len(want) != 0 {
				t.Fatalf("partition %d lost", p)
			}
			continue
		}
		run, err := seg.Open()
		if err != nil {
			t.Fatal(err)
		}
		var got []core.Record
		for {
			rec, ok := run.Next()
			if !ok {
				break
			}
			got = append(got, rec)
		}
		if err := run.Err(); err != nil {
			t.Fatal(err)
		}
		_ = run.Close()
		if len(got) != len(want) {
			t.Fatalf("partition %d: %d records, want %d", p, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("partition %d record %d: %v vs %v", p, i, got[i], want[i])
			}
		}
	}

	if _, err := FetchSegment(srv.Addr(), 999, 0, 10, codec.None); err == nil || !strings.Contains(err.Error(), "unknown run file") {
		t.Fatalf("bad fileID: %v", err)
	}
}

// TestFetchShortSection: a section request that asks past the served bytes
// must surface corruption, not a silent clean end.
func TestFetchShortSection(t *testing.T) {
	dir, err := dfs.NewRunDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	srv, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	w, _, _, err := sealWave(dir, srv, "t", [][]core.Record{sortedRecs("k", 50)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sp := w.Spans[0]
	// Ask for more bytes than the file holds: the server sends what exists,
	// the fetcher must notice the shortfall.
	run, err := FetchSegment(w.Addr, w.FileID, sp.Off, sp.N+100, codec.None)
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	for {
		if _, ok := run.Next(); !ok {
			break
		}
	}
	if err := run.Err(); !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("short section error = %v, want ErrCorrupt", err)
	}
}

// TestSegmentSourceStreaming: NextBatch over completed maps yields every
// record, re-batched, across local and static sources.
func TestSegmentSourceStreaming(t *testing.T) {
	dir, err := dfs.NewRunDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	tr := newRunExchange(Config{Maps: 3, Parts: 2, BatchSize: 16, Dir: dir}, nil)
	want := 0
	for m := 0; m < 3; m++ {
		sink := tr.MapSink(m)
		parts := [][]core.Record{sortedRecs("a", 10+m), sortedRecs("b", 5*m)}
		for _, p := range parts {
			want += len(p)
		}
		if err := sink.PublishWave(parts, false); err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	for r := 0; r < 2; r++ {
		src := tr.ReduceSource(r)
		for {
			batch, ok, err := src.NextBatch()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if len(batch) > 16 {
				t.Fatalf("batch of %d exceeds BatchSize", len(batch))
			}
			got += len(batch)
			src.Recycle(batch)
		}
		_ = src.Close()
	}
	if got != want {
		t.Fatalf("streamed %d records, want %d", got, want)
	}
}

// TestTransportFailUnblocks: Fail must wake consumers blocked on the
// barrier and on batch delivery.
func TestTransportFailUnblocks(t *testing.T) {
	for _, kind := range []Kind{InProc, SpillExchange} {
		dir, err := dfs.NewRunDir(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		tr, err := New(kind, Config{Maps: 2, Parts: 1, Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		errs := make(chan error, 2)
		go func() {
			_, err := tr.ReduceSource(0).Runs()
			errs <- err
		}()
		go func() {
			_, _, err := tr.ReduceSource(0).NextBatch()
			errs <- err
		}()
		boom := errors.New("boom")
		tr.Fail(boom)
		for i := 0; i < 2; i++ {
			if err := <-errs; !errors.Is(err, boom) {
				t.Fatalf("%v waiter %d: err=%v, want boom", kind, i, err)
			}
		}
		_ = tr.Close()
		_ = dir.Close()
	}
}
