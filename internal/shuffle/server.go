package shuffle

// The run-server: sealed spill-run segment files served over loopback TCP.
// This is the wire half of the TCP transport and of the multi-process mode
// (internal/mpexec) — a worker seals runs into its local dfs.RunDir,
// registers each file with its Server, and any reduce task (same process or
// another worker) fetches a partition's byte section by (file ID, offset,
// length).
//
// Wire format (all integers are unsigned varints). A connection opens with
// a 4-byte magic selecting the protocol:
//
//	"BLR1" — one request per connection (the PR-3 protocol, kept for
//	compatibility; FetchSegment still speaks it):
//
//	  request:  fileID | off | n
//	  response: status byte (0 = ok, 1 = error)
//	            ok:    exactly n bytes of the sealed run file at [off, off+n)
//	            error: msgLen | msg bytes
//
//	"BLR2" — the pooled fetch plane: the connection stays open and carries
//	any number of request-id-framed section requests back to back, so a
//	fetching peer dials each run-server once and pipelines its section
//	requests (FetchPool):
//
//	  request:  reqID | fileID | off | n
//	  response: reqID | status byte
//	            ok:    exactly n bytes of the section
//	            error: msgLen | msg bytes
//
// Responses are served in request order per connection (an error response
// leaves the connection usable; a framing violation severs it). The
// section payload is the same codec record stream dfs.OpenRunAt reads
// locally, so a truncated transfer (killed worker, reset connection)
// surfaces codec.ErrCorrupt or a short-section error from the fetching
// side's Err — never silent data loss.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"

	"blmr/internal/codec"
	"blmr/internal/core"
)

// serverMagic guards against stray connections to the run port (the
// one-request-per-connection protocol); serverMagicMux opens a pooled,
// multiplexed session.
var (
	serverMagic    = [4]byte{'B', 'L', 'R', '1'}
	serverMagicMux = [4]byte{'B', 'L', 'R', '2'}
)

// zeroCopyMinBytes is the sendfile cutover: sections at least this large
// flush the response header and ship their payload with sendfileSection
// (no user-space copy); smaller ones ride the buffered path, where one
// flush carries header and payload together. A package variable so the
// microbenchmarks can force either path.
var zeroCopyMinBytes int64 = 64 << 10

// Server serves registered sealed run files over loopback TCP.
type Server struct {
	ln    net.Listener
	wg    sync.WaitGroup
	cache *fileCache
	zc    atomic.Int64 // sections shipped through the zero-copy path

	mu     sync.Mutex
	files  map[uint64]string
	nextID uint64
	conns  map[net.Conn]struct{}
	closed bool
}

// NewServer listens on an ephemeral loopback port and starts serving.
func NewServer() (*Server, error) { return NewServerOn("") }

// NewServerOn listens on bind (an address usable by net.Listen, e.g.
// ":0" to serve every interface for non-loopback clusters; "" defaults to
// an ephemeral loopback port) and starts serving. When the bound address
// has a wildcard host, pair it with an advertised host the peers can dial
// (internal/mpexec derives one from the control connection).
func NewServerOn(bind string) (*Server, error) {
	if bind == "" {
		bind = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("shuffle: start run-server: %w", err)
	}
	s := &Server{ln: ln, cache: newFileCache(fileCacheCap), files: make(map[uint64]string), conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.accept()
	return s, nil
}

// Addr returns the server's dialable address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Register makes the sealed file at path fetchable and returns its ID.
// Registered files must be immutable.
func (s *Server) Register(path string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	s.files[s.nextID] = path
	return s.nextID
}

// PathOf reports the on-disk path a file ID was registered under, ok=false
// for an unknown or withdrawn ID. The re-attach survival scan uses it to
// re-checksum sealed files a returning worker still serves.
func (s *Server) PathOf(fileID uint64) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	path, ok := s.files[fileID]
	return path, ok
}

// Unregister withdraws a registered file: later requests for the ID get
// an error response, and any cached handle is invalidated (closed once
// in-flight sections drain). Job teardown calls this so a long-lived
// worker's server neither accumulates dead routes nor holds deleted spill
// files open.
func (s *Server) Unregister(fileID uint64) {
	s.mu.Lock()
	delete(s.files, fileID)
	s.mu.Unlock()
	s.cache.invalidate(fileID)
}

// Opens reports how many times the serving path actually hit os.Open —
// with the handle cache this stays near the distinct-file count, far
// below the section-request count the old open-per-request path paid.
func (s *Server) Opens() int64 { return s.cache.Opens() }

// ZeroCopySections reports how many sections were shipped with the
// zero-copy send (header flushed, payload via sendfile — no user-space
// copy).
func (s *Server) ZeroCopySections() int64 { return s.zc.Load() }

// Close stops the listener, severs in-flight transfers, and waits for
// handlers to finish. In-flight fetchers observe a reset/short section.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	s.cache.closeAll()
	return err
}

func (s *Server) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	br := bufio.NewReader(conn)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return
	}
	switch magic {
	case serverMagic:
		s.serveOnce(conn, br)
	case serverMagicMux:
		s.serveMux(conn, br)
	}
}

// openRegistered resolves fileID to a (usually cached) open handle; the
// returned release must be called once the section send is done.
func (s *Server) openRegistered(fileID uint64) (*os.File, func(), error) {
	s.mu.Lock()
	path, ok := s.files[fileID]
	s.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("unknown run file %d", fileID)
	}
	return s.cache.acquire(fileID, path)
}

// sendSectionBody ships file[off, off+n) after the already-buffered
// response header: large sections on TCP connections flush the header and
// go zero-copy (sendfileSection), everything else streams through the
// connection's write buffer. Returns the payload bytes actually sent.
func (s *Server) sendSectionBody(conn net.Conn, bw *bufio.Writer, f *os.File, off, n int64) (int64, error) {
	if n >= zeroCopyMinBytes {
		if tc, ok := conn.(*net.TCPConn); ok {
			if err := bw.Flush(); err != nil {
				return 0, err
			}
			s.zc.Add(1)
			return sendfileSection(tc, f, off, n)
		}
	}
	// bufio.Writer.ReadFrom fills the write buffer directly: no copy
	// buffer, no per-section allocation.
	return io.Copy(bw, io.NewSectionReader(f, off, n))
}

// serveOnce handles one "BLR1" request and hangs up. It shares the handle
// cache and the zero-copy send with the pooled path.
func (s *Server) serveOnce(conn net.Conn, br *bufio.Reader) {
	fileID, err1 := binary.ReadUvarint(br)
	off, err2 := binary.ReadUvarint(br)
	n, err3 := binary.ReadUvarint(br)
	if err1 != nil || err2 != nil || err3 != nil {
		return
	}
	f, rel, err := s.openRegistered(fileID)
	if err != nil {
		writeFetchError(conn, err.Error())
		return
	}
	defer rel()
	bw := bufio.NewWriterSize(conn, 64<<10)
	_ = bw.WriteByte(0)
	if _, err := s.sendSectionBody(conn, bw, f, int64(off), int64(n)); err != nil {
		return // fetcher sees a short section
	}
	_ = bw.Flush()
}

// serveMux serves "BLR2" section requests until the peer hangs up (or the
// server closes the connection). The write buffer and copy buffer are
// per-connection, so a pooled peer's whole fetch stream allocates once.
func (s *Server) serveMux(conn net.Conn, br *bufio.Reader) {
	bw := bufio.NewWriterSize(conn, 64<<10)
	var hdr []byte
	for {
		reqID, err := binary.ReadUvarint(br)
		if err != nil {
			return // peer done (pool reaped the conn) or server closing
		}
		fileID, err1 := binary.ReadUvarint(br)
		off, err2 := binary.ReadUvarint(br)
		n, err3 := binary.ReadUvarint(br)
		if err1 != nil || err2 != nil || err3 != nil {
			return
		}
		hdr = binary.AppendUvarint(hdr[:0], reqID)
		f, rel, err := s.openRegistered(fileID)
		if err != nil {
			if !writeMuxError(bw, hdr, err.Error()) {
				return
			}
			continue
		}
		hdr = append(hdr, 0)
		_, _ = bw.Write(hdr)
		copied, err := s.sendSectionBody(conn, bw, f, int64(off), int64(n))
		rel()
		if err != nil || copied < int64(n) {
			// Short copy (request past the file, truncated file, write
			// error): the stream is desynced — sever so the fetcher sees a
			// short section instead of hanging on bytes that never come.
			_ = bw.Flush()
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// writeMuxError sends one request-id-framed error response; false when the
// connection is no longer writable.
func writeMuxError(bw *bufio.Writer, hdr []byte, msg string) bool {
	buf := append(hdr, 1)
	buf = binary.AppendUvarint(buf, uint64(len(msg)))
	buf = append(buf, msg...)
	if _, err := bw.Write(buf); err != nil {
		return false
	}
	return bw.Flush() == nil
}

func writeFetchError(w io.Writer, msg string) {
	buf := []byte{1}
	buf = binary.AppendUvarint(buf, uint64(len(msg)))
	buf = append(buf, msg...)
	_, _ = w.Write(buf)
}

// RemoteRun streams one fetched run section. It implements sortx.Source
// (Next/Err) plus Close, like dfs.RunReader — a short or reset transfer
// surfaces through Err, indistinguishable from a locally truncated run.
// Compressed sections travel compressed (the server ships the sealed file
// bytes verbatim) and are decompressed block by block here, on the
// fetching side — the merger's side — so wire volume shrinks with the
// sealed-run codec.
type RemoteRun struct {
	conn net.Conn
	cr   *countingReader
	sr   codec.RecordReader
	n    int64
	err  error
}

// countingReader tracks how many payload bytes actually arrived, so a
// transfer cut at a record boundary cannot masquerade as a clean end.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// FetchSegment dials addr and requests the section [off, off+n) of the
// registered file fileID, decoding it with the given sealed-run codec. The
// returned run streams records as the bytes arrive; it holds the
// connection until Close.
func FetchSegment(addr string, fileID uint64, off, n int64, comp codec.Compression) (*RemoteRun, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("shuffle: dial run-server %s: %w", addr, err)
	}
	req := append([]byte(nil), serverMagic[:]...)
	req = binary.AppendUvarint(req, fileID)
	req = binary.AppendUvarint(req, uint64(off))
	req = binary.AppendUvarint(req, uint64(n))
	if _, err := conn.Write(req); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("shuffle: request run section: %w", err)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	status, err := br.ReadByte()
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("shuffle: fetch run section from %s: %w", addr, err)
	}
	if status != 0 {
		msg := "unknown fetch error"
		if l, err := binary.ReadUvarint(br); err == nil {
			b := make([]byte, l)
			if _, err := io.ReadFull(br, b); err == nil {
				msg = string(b)
			}
		}
		_ = conn.Close()
		return nil, fmt.Errorf("shuffle: fetch run section from %s: %s", addr, msg)
	}
	cr := &countingReader{r: io.LimitReader(br, n)}
	return &RemoteRun{
		conn: conn,
		cr:   cr,
		sr:   codec.NewRunDecoder(bufio.NewReader(cr), comp),
		n:    n,
	}, nil
}

// Next implements sortx.Run.
func (r *RemoteRun) Next() (core.Record, bool) {
	if r.err != nil {
		return core.Record{}, false
	}
	rec, ok := r.sr.Next()
	if !ok {
		if err := r.sr.Err(); err != nil {
			r.err = fmt.Errorf("shuffle: fetched run: %w", err)
		} else if r.cr.n < r.n {
			// The decoder saw a clean end but fewer bytes arrived than the
			// section holds: the serving side died mid-transfer.
			r.err = fmt.Errorf("shuffle: fetched run: %w: short section (%d of %d bytes)",
				codec.ErrCorrupt, r.cr.n, r.n)
		}
	}
	return rec, ok
}

// Err implements sortx.Source.
func (r *RemoteRun) Err() error { return r.err }

// Close releases the connection.
func (r *RemoteRun) Close() error { return r.conn.Close() }
