package shuffle

// The run-server's open-file cache. Sealed run files are immutable and
// each one is fetched many times (every reduce partition cuts a section
// out of it), but serveMux used to os.Open/Close per request — at real
// fan-ins that is thousands of opens per job for a handful of distinct
// files. fileCache keeps the hottest handles open: a refcounted LRU keyed
// by fileID, capacity-bounded, with eviction deferred past in-flight
// sections (a busy handle is never closed under a sender) and immediate
// invalidation when a file is unregistered (worker reap, job teardown).
// Cached handles are shared across connections concurrently — every read
// on them is positional (pread via io.NewSectionReader or offset
// sendfile), so no seat at the file offset is ever taken.

import (
	"container/list"
	"os"
	"sync"
)

// fileCacheCap bounds how many sealed-run handles stay open. A worker
// serves one file per (map task, wave), so this covers realistic jobs
// without brushing against fd rlimits; over-cap entries appear only while
// more than this many sections are mid-transfer.
var fileCacheCap = 128

// cachedFile is one open handle plus its sharing state.
type cachedFile struct {
	id   uint64
	f    *os.File
	refs int  // in-flight sections reading through the handle
	gone bool // evicted or invalidated: close once refs drain
	elem *list.Element
}

// fileCache is the refcounted LRU. All methods are safe for concurrent
// use.
type fileCache struct {
	mu    sync.Mutex
	cap   int
	files map[uint64]*cachedFile
	lru   *list.List // front = most recently used; holds *cachedFile
	opens int64      // lifetime os.Open count (cache misses)
}

func newFileCache(capacity int) *fileCache {
	return &fileCache{cap: capacity, files: make(map[uint64]*cachedFile), lru: list.New()}
}

// acquire returns an open handle for fileID (opening path on miss) with a
// release closure the caller must invoke once its section send is done.
func (c *fileCache) acquire(fileID uint64, path string) (*os.File, func(), error) {
	c.mu.Lock()
	if e, ok := c.files[fileID]; ok {
		e.refs++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		return e.f, func() { c.release(e) }, nil
	}
	c.mu.Unlock()
	// Open outside the lock: a slow open must not stall unrelated sections.
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	if e, ok := c.files[fileID]; ok {
		// Raced with another miss for the same file; keep the incumbent.
		e.refs++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		_ = f.Close()
		return e.f, func() { c.release(e) }, nil
	}
	c.opens++
	e := &cachedFile{id: fileID, f: f, refs: 1}
	e.elem = c.lru.PushFront(e)
	c.files[fileID] = e
	c.evictLocked()
	c.mu.Unlock()
	return f, func() { c.release(e) }, nil
}

// evictLocked closes least-recently-used idle entries until within cap.
// Busy entries are skipped — the cache runs over cap while every handle
// has a section in flight, and shrinks back as they release.
func (c *fileCache) evictLocked() {
	for elem := c.lru.Back(); elem != nil && c.lru.Len() > c.cap; {
		prev := elem.Prev()
		e := elem.Value.(*cachedFile)
		if e.refs == 0 {
			e.gone = true
			_ = e.f.Close()
			c.lru.Remove(elem)
			delete(c.files, e.id)
		}
		elem = prev
	}
}

// release drops one section's hold; a handle evicted or invalidated while
// busy closes on its last release, and a cache pushed over cap by busy
// handles shrinks back as soon as holds drain.
func (c *fileCache) release(e *cachedFile) {
	c.mu.Lock()
	e.refs--
	closeNow := e.gone && e.refs == 0
	if c.lru.Len() > c.cap {
		c.evictLocked()
	}
	c.mu.Unlock()
	if closeNow {
		_ = e.f.Close()
	}
}

// invalidate drops fileID from the cache (no-op when absent). An idle
// handle closes immediately; a busy one closes when its sections finish.
func (c *fileCache) invalidate(fileID uint64) {
	c.mu.Lock()
	e, ok := c.files[fileID]
	if ok {
		delete(c.files, fileID)
		c.lru.Remove(e.elem)
		e.gone = true
	}
	closeNow := ok && e.refs == 0
	c.mu.Unlock()
	if closeNow {
		_ = e.f.Close()
	}
}

// closeAll invalidates everything (server shutdown).
func (c *fileCache) closeAll() {
	c.mu.Lock()
	var closing []*os.File
	for id, e := range c.files {
		delete(c.files, id)
		c.lru.Remove(e.elem)
		e.gone = true
		if e.refs == 0 {
			closing = append(closing, e.f)
		}
	}
	c.mu.Unlock()
	for _, f := range closing {
		_ = f.Close()
	}
}

// Opens reports the lifetime cache-miss count — the number of os.Open
// calls the serving path actually paid.
func (c *fileCache) Opens() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opens
}

// Len reports the resident entry count (tests).
func (c *fileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
