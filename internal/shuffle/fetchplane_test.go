package shuffle

// Fetch-plane raw-speed suite: the run-server's refcounted handle cache
// (filecache.go), the zero-copy section send (sendSectionBody), and the
// pooled consumer's parallel block-decode path. The benchmarks pin the
// sendfile cutover via zeroCopyMinBytes so both serve paths are measured
// on identical sections.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"

	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/dfs"
)

// TestServerHandleCache: serving many sections of few sealed files must pay
// one os.Open per distinct file, not one per section — and the BLR1
// one-shot path shares the same cache.
func TestServerHandleCache(t *testing.T) {
	dir, err := dfs.NewRunDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	srv, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const files, parts = 3, 4
	var waves []Wave
	for i := 0; i < files; i++ {
		p := make([][]core.Record, parts)
		for r := range p {
			p[r] = sortedRecs(fmt.Sprintf("f%d-p%d", i, r), 40)
		}
		w, _, ok, err := sealWave(dir, srv, "t", p, nil)
		if err != nil || !ok {
			t.Fatalf("sealWave: ok=%v err=%v", ok, err)
		}
		waves = append(waves, w)
	}

	pool := NewFetchPool()
	defer pool.Close()
	sections := 0
	for round := 0; round < 4; round++ {
		for _, w := range waves {
			for r := 0; r < parts; r++ {
				seg, ok := w.SegmentOf(r)
				if !ok {
					t.Fatalf("wave has no partition %d", r)
				}
				lr := NewLazyRun(seg)
				lr.pool = pool
				if got := drainRun(t, lr); len(got) != 40 {
					t.Fatalf("section %d: %d records, want 40", sections, len(got))
				}
				_ = lr.Close()
				sections++
			}
		}
	}
	if got := srv.Opens(); got != files {
		t.Fatalf("%d sections cost %d opens, want %d (one per distinct file)", sections, got, files)
	}

	// The one-request-per-connection path rides the same cache: no new opens.
	seg, _ := waves[0].SegmentOf(0)
	rr, err := FetchSegment(waves[0].Addr, seg.FileID, seg.Off, seg.N, codec.None)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainRun(t, rr); len(got) != 40 {
		t.Fatalf("BLR1 fetch: %d records, want 40", len(got))
	}
	_ = rr.Close()
	if got := srv.Opens(); got != files {
		t.Fatalf("BLR1 path bypassed the handle cache: %d opens, want %d", got, files)
	}
}

// TestFileCacheEviction: over-cap idle handles are closed LRU-first, and a
// re-acquired evicted file costs a fresh open.
func TestFileCacheEviction(t *testing.T) {
	td := t.TempDir()
	path := func(i int) string {
		p := filepath.Join(td, fmt.Sprintf("run%d", i))
		if err := os.WriteFile(p, []byte("sealed"), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	c := newFileCache(2)
	for i := 0; i < 3; i++ {
		_, rel, err := c.acquire(uint64(i+1), path(i))
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("cache holds %d entries over cap 2", n)
	}
	if got := c.Opens(); got != 3 {
		t.Fatalf("%d opens, want 3", got)
	}
	// File 1 was the LRU victim: re-acquiring it is a miss; file 3 is a hit.
	if _, rel, err := c.acquire(1, filepath.Join(td, "run0")); err != nil {
		t.Fatal(err)
	} else {
		rel()
	}
	if got := c.Opens(); got != 4 {
		t.Fatalf("evicted file re-acquire: %d opens, want 4", got)
	}
	if _, rel, err := c.acquire(3, filepath.Join(td, "run2")); err != nil {
		t.Fatal(err)
	} else {
		rel()
	}
	if got := c.Opens(); got != 4 {
		t.Fatalf("resident file re-acquire missed: %d opens", got)
	}
}

// TestFileCacheBusyHandles: a handle with sections in flight survives both
// eviction pressure and invalidation — it keeps serving until the last
// release, then closes.
func TestFileCacheBusyHandles(t *testing.T) {
	td := t.TempDir()
	write := func(name, data string) string {
		p := filepath.Join(td, name)
		if err := os.WriteFile(p, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	c := newFileCache(1)
	f1, rel1, err := c.acquire(1, write("a", "first-file-bytes"))
	if err != nil {
		t.Fatal(err)
	}
	// Over-cap insert while file 1 is busy: eviction must skip it.
	_, rel2, err := c.acquire(2, write("b", "second"))
	if err != nil {
		t.Fatal(err)
	}
	rel2()
	if n := c.Len(); n != 1 {
		t.Fatalf("cache holds %d entries, want 1 (busy handle kept, idle evicted)", n)
	}
	// Invalidate the busy handle (unregister-while-served): in-flight
	// positional reads keep working; the close lands on the last release.
	c.invalidate(1)
	buf := make([]byte, 5)
	if _, err := f1.ReadAt(buf, 0); err != nil || string(buf) != "first" {
		t.Fatalf("read through invalidated busy handle: %q, %v", buf, err)
	}
	rel1()
	if _, err := f1.ReadAt(buf, 0); err == nil {
		t.Fatal("handle still open after last release of an invalidated entry")
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("%d entries resident after invalidate", n)
	}
}

// TestServerUnregister: a withdrawn file errors on the next request without
// burning the pooled connection, and the in-flight server-side state stays
// consistent.
func TestServerUnregister(t *testing.T) {
	dir, err := dfs.NewRunDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	srv, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	w, _, _, err := sealWave(dir, srv, "t", [][]core.Record{sortedRecs("k", 50)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seg, _ := w.SegmentOf(0)

	pool := NewFetchPool()
	defer pool.Close()
	lr := NewLazyRun(seg)
	lr.pool = pool
	if got := drainRun(t, lr); len(got) != 50 {
		t.Fatalf("%d records, want 50", len(got))
	}
	_ = lr.Close()

	srv.Unregister(seg.FileID)
	gone := NewLazyRun(seg)
	gone.pool = pool
	if _, ok := gone.Next(); ok {
		t.Fatal("fetched a record from an unregistered file")
	}
	if err := gone.Err(); err == nil {
		t.Fatal("unregistered fetch reported no error")
	}
	_ = gone.Close()
	if d := pool.Dials(); d != 1 {
		t.Fatalf("error response burned the conn: %d dials", d)
	}
}

// TestPooledFetchDecodeWorkers: compressed sections fetched through the
// parallel block-decode pipeline are byte-identical to the sealed records at
// every worker count (run under -race in CI: concurrent CRC+decompress
// against the consuming merge).
func TestPooledFetchDecodeWorkers(t *testing.T) {
	dir, err := dfs.NewRunDirComp(t.TempDir(), codec.DeltaBlock)
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	srv, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const waves = 6
	var segs []Segment
	var want []core.Record
	for i := 0; i < waves; i++ {
		// Large enough that every run spans several 32KiB codec blocks.
		part := sortedRecs(fmt.Sprintf("w%02d", i), 8000)
		w, _, ok, err := sealWave(dir, srv, "t", [][]core.Record{part}, nil)
		if err != nil || !ok {
			t.Fatalf("sealWave: ok=%v err=%v", ok, err)
		}
		seg, _ := w.SegmentOf(0)
		segs = append(segs, seg)
		want = append(want, part...)
	}

	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			pool := NewFetchPool()
			pool.DecodeWorkers = workers
			defer pool.Close()
			var got []core.Record
			for _, seg := range segs {
				lr := NewLazyRun(seg)
				lr.pool = pool
				lr.useArena = true
				got = append(got, drainRun(t, lr)...)
				_ = lr.Close()
			}
			if len(got) != len(want) {
				t.Fatalf("%d records, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("record %d: %v vs %v", i, got[i], want[i])
				}
			}
		})
	}
}

// benchSection seals one big uncompressed run and returns its segment: the
// serve benchmarks request the same section repeatedly over one BLR2
// connection, so the numbers isolate the server's send path.
func benchSection(b *testing.B, dir *dfs.RunDir, srv *Server) Segment {
	b.Helper()
	recs := sortedRecs("bench", 60_000) // ~1.5 MB encoded
	w, _, ok, err := sealWave(dir, srv, "b", [][]core.Record{recs}, nil)
	if err != nil || !ok {
		b.Fatalf("sealWave: ok=%v err=%v", ok, err)
	}
	seg, _ := w.SegmentOf(0)
	return seg
}

func benchServe(b *testing.B, cutover int64) {
	defer func(v int64) { zeroCopyMinBytes = v }(zeroCopyMinBytes)
	zeroCopyMinBytes = cutover

	td, err := os.MkdirTemp("", "blmr-bench")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(td)
	dir, err := dfs.NewRunDir(td)
	if err != nil {
		b.Fatal(err)
	}
	defer dir.Close()
	srv, err := NewServer()
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	seg := benchSection(b, dir, srv)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(serverMagicMux[:]); err != nil {
		b.Fatal(err)
	}
	br := bufio.NewReaderSize(conn, 256<<10)
	req := make([]byte, 0, 32)

	b.SetBytes(seg.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req = binary.AppendUvarint(req[:0], uint64(i))
		req = binary.AppendUvarint(req, seg.FileID)
		req = binary.AppendUvarint(req, uint64(seg.Off))
		req = binary.AppendUvarint(req, uint64(seg.N))
		if _, err := conn.Write(req); err != nil {
			b.Fatal(err)
		}
		if id, err := binary.ReadUvarint(br); err != nil || id != uint64(i) {
			b.Fatalf("reqID %d err %v, want %d", id, err, i)
		}
		status, err := br.ReadByte()
		if err != nil || status != 0 {
			b.Fatalf("status %d err %v", status, err)
		}
		if _, err := io.CopyN(io.Discard, br, seg.N); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if cutover == 1 && srv.ZeroCopySections() == 0 {
		b.Fatal("zero-copy path never taken despite forced cutover")
	}
}

// BenchmarkSectionServeBuffered forces every section through the buffered
// io.Copy path (the pre-sendfile server).
func BenchmarkSectionServeBuffered(b *testing.B) { benchServe(b, 1<<62) }

// BenchmarkSectionServeZeroCopy forces every section through the sendfile
// path.
func BenchmarkSectionServeZeroCopy(b *testing.B) { benchServe(b, 1) }
