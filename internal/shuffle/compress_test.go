package shuffle

// Compressed wave tests: sealed waves carry their codec in the wave/segment
// metadata, compressed sections ship verbatim through the run-server and
// decompress at the fetcher, and a transfer cut mid-block surfaces
// codec.ErrCorrupt.

import (
	"errors"
	"fmt"
	"testing"

	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/dfs"
)

// sortedWave builds two key-sorted partitions with redundant text keys.
func sortedWave() [][]core.Record {
	parts := make([][]core.Record, 2)
	for p := range parts {
		for i := 0; i < 400; i++ {
			parts[p] = append(parts[p], core.Record{
				Key:   fmt.Sprintf("part%d-word%05d", p, i/4),
				Value: "1",
			})
		}
	}
	return parts
}

func TestCompressedWaveFetch(t *testing.T) {
	dir, err := dfs.NewRunDirComp(t.TempDir(), codec.DeltaBlock)
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	srv, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	parts := sortedWave()
	w, _, ok, err := sealWave(dir, srv, "t", parts, nil)
	if err != nil || !ok {
		t.Fatalf("sealWave: ok=%v err=%v", ok, err)
	}
	if w.Comp != codec.DeltaBlock {
		t.Fatalf("wave codec = %v, want DeltaBlock", w.Comp)
	}
	if dir.RawSpilledBytes() <= dir.SpilledBytes() {
		t.Fatalf("redundant keys did not compress: raw=%d sealed=%d",
			dir.RawSpilledBytes(), dir.SpilledBytes())
	}
	for p, part := range parts {
		seg, ok := w.SegmentOf(p)
		if !ok {
			t.Fatalf("partition %d empty", p)
		}
		if seg.Comp != codec.DeltaBlock {
			t.Fatalf("segment codec = %v", seg.Comp)
		}
		run, err := seg.Open() // remote: w.Addr is the run-server
		if err != nil {
			t.Fatal(err)
		}
		var got []core.Record
		for {
			rec, ok := run.Next()
			if !ok {
				break
			}
			got = append(got, rec)
		}
		if err := run.Err(); err != nil {
			t.Fatalf("partition %d: %v", p, err)
		}
		_ = run.Close()
		if len(got) != len(part) {
			t.Fatalf("partition %d: %d records, want %d", p, len(got), len(part))
		}
		for i := range part {
			if got[i] != part[i] {
				t.Fatalf("partition %d record %d: %+v, want %+v", p, i, got[i], part[i])
			}
		}
	}
}

// TestCompressedFetchShortSection: a compressed section cut short on the
// wire must surface corruption through Err — a cut mid-block breaks the
// block framing, a cut at a block boundary is caught by the
// section-length accounting.
func TestCompressedFetchShortSection(t *testing.T) {
	dir, err := dfs.NewRunDirComp(t.TempDir(), codec.Block)
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	srv, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	w, _, ok, err := sealWave(dir, srv, "t", sortedWave(), nil)
	if err != nil || !ok {
		t.Fatalf("sealWave: ok=%v err=%v", ok, err)
	}
	sp := w.Spans[0]
	for _, cut := range []int64{1, 7, sp.N / 2} {
		run, err := FetchSegment(w.Addr, w.FileID, sp.Off, sp.N-cut, codec.Block)
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, ok := run.Next(); !ok {
				break
			}
		}
		if !errors.Is(run.Err(), codec.ErrCorrupt) {
			t.Fatalf("cut %d: Err() = %v, want codec.ErrCorrupt", cut, run.Err())
		}
		_ = run.Close()
	}
}
