//go:build linux

package shuffle

import (
	"net"
	"os"
	"syscall"
)

// sendfileSection transmits file[off, off+n) to tc with sendfile(2) — the
// kernel moves page-cache bytes straight to the socket, no user-space
// copy, no read buffer. The offset variant is used throughout so the
// shared cached handle's file position is never touched (handles are
// served concurrently across connections). Returns the bytes actually
// sent; a short count without an error means the file ended early (the
// caller severs, as for any short section).
func sendfileSection(tc *net.TCPConn, f *os.File, off, n int64) (int64, error) {
	rc, err := tc.SyscallConn()
	if err != nil {
		return 0, err
	}
	frc, err := f.SyscallConn()
	if err != nil {
		return 0, err
	}
	var sent int64
	var opErr error
	// rc.Write re-invokes the callback when the socket becomes writable
	// again after a false return, parking on the runtime poller instead of
	// spinning on EAGAIN.
	werr := rc.Write(func(fd uintptr) bool {
		for sent < n {
			chunk := n - sent
			// Cap a single call so one huge section cannot pin the file's
			// raw-control callback for its whole transfer.
			if chunk > 4<<20 {
				chunk = 4 << 20
			}
			var m int
			var serr error
			cerr := frc.Control(func(sfd uintptr) {
				o := off + sent
				m, serr = syscall.Sendfile(int(fd), int(sfd), &o, int(chunk))
			})
			if cerr != nil {
				opErr = cerr
				return true
			}
			if m > 0 {
				sent += int64(m)
			}
			switch serr {
			case nil:
				if m == 0 {
					return true // source EOF: section past the sealed file
				}
			case syscall.EINTR:
				// retry
			case syscall.EAGAIN:
				return false // wait for writability
			default:
				opErr = serr
				return true
			}
		}
		return true
	})
	if opErr == nil {
		opErr = werr
	}
	return sent, opErr
}
