package shuffle

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/dfs"
	"blmr/internal/retry"
	"blmr/internal/sortx"
)

// drainRun pulls every record out of a source.
func drainRun(t *testing.T, r sortx.Source) []core.Record {
	t.Helper()
	var got []core.Record
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		got = append(got, rec)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestPooledFetchRoundTrip: many sections fetched through one FetchPool
// decode byte-identically to what was sealed, over one dial — the "BLR2"
// multiplexed session — instead of one dial per section.
func TestPooledFetchRoundTrip(t *testing.T) {
	for _, comp := range []codec.Compression{codec.None, codec.DeltaBlock} {
		t.Run(comp.String(), func(t *testing.T) {
			dir, err := dfs.NewRunDirComp(t.TempDir(), comp)
			if err != nil {
				t.Fatal(err)
			}
			defer dir.Close()
			srv, err := NewServer()
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			const waves = 20
			var segs []Segment
			var want []core.Record
			for i := 0; i < waves; i++ {
				part := sortedRecs(fmt.Sprintf("w%02d", i), 60)
				w, _, ok, err := sealWave(dir, srv, "t", [][]core.Record{part}, nil)
				if err != nil || !ok {
					t.Fatalf("sealWave: ok=%v err=%v", ok, err)
				}
				seg, _ := w.SegmentOf(0)
				segs = append(segs, seg)
				want = append(want, part...)
			}

			pool := NewFetchPool()
			defer pool.Close()
			var got []core.Record
			for _, seg := range segs {
				lr := NewLazyRun(seg)
				lr.pool = pool
				lr.useArena = true
				got = append(got, drainRun(t, lr)...)
				if err := lr.Close(); err != nil {
					t.Fatal(err)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%d records, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("record %d: %v vs %v", i, got[i], want[i])
				}
			}
			if d := pool.Dials(); d != 1 {
				t.Fatalf("%d sections cost %d dials, want 1 (pooled reuse)", waves, d)
			}
		})
	}
}

// TestPooledFetchErrors: an unknown file is an error response that leaves
// the pooled connection usable; a section cut short by the server dying is
// ErrCorrupt and burns the connection.
func TestPooledFetchErrors(t *testing.T) {
	dir, err := dfs.NewRunDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	srv, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	w, _, _, err := sealWave(dir, srv, "t", [][]core.Record{sortedRecs("k", 50)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seg, _ := w.SegmentOf(0)

	pool := NewFetchPool()
	defer pool.Close()

	// Unknown file: error response, connection stays pooled and usable.
	bad := NewLazyRun(Segment{Addr: w.Addr, FileID: 999, Off: 0, N: 10})
	bad.pool = pool
	if _, ok := bad.Next(); ok {
		t.Fatal("fetched a record from an unknown file")
	}
	if err := bad.Err(); err == nil || !strings.Contains(err.Error(), "unknown run file") {
		t.Fatalf("unknown file error = %v", err)
	}
	_ = bad.Close()
	good := NewLazyRun(seg)
	good.pool = pool
	if got := drainRun(t, good); len(got) != 50 {
		t.Fatalf("after error response: %d records, want 50", len(got))
	}
	_ = good.Close()
	if d := pool.Dials(); d != 1 {
		t.Fatalf("error response should not burn the conn: %d dials", d)
	}

	// Short section: asking past the file's bytes must surface ErrCorrupt.
	short := NewLazyRun(Segment{Addr: w.Addr, FileID: w.FileID, Off: seg.Off, N: seg.N + 100})
	short.pool = pool
	for {
		if _, ok := short.Next(); !ok {
			break
		}
	}
	if err := short.Err(); !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("short section error = %v, want ErrCorrupt", err)
	}
	_ = short.Close()
}

// TestServerReapsPooledConns is the run-server leak regression: idle
// multiplexed connections parked in a FetchPool are reaped by Server.Close
// — the per-connection handler goroutines must all exit, not linger
// blocked on reads from pooled peers.
func TestServerReapsPooledConns(t *testing.T) {
	dir, err := dfs.NewRunDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	before := runtime.NumGoroutine()
	srv, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	w, _, _, err := sealWave(dir, srv, "t", [][]core.Record{sortedRecs("k", 40)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seg, _ := w.SegmentOf(0)

	// Park several idle mux connections in the pool (distinct checkouts
	// held concurrently force distinct dials).
	pool := NewFetchPool()
	var runs []*LazyRun
	for i := 0; i < 4; i++ {
		lr := NewLazyRun(seg)
		lr.pool = pool
		drainRun(t, lr)
		runs = append(runs, lr) // hold: next iteration dials a fresh conn
	}
	for _, lr := range runs {
		_ = lr.Close()
	}
	if d := pool.Dials(); d != 1 {
		// Sequential opens reuse; this loop closed each run before the
		// next — adjust the expectation to documented behavior.
		t.Logf("dials: %d", d)
	}

	// Server.Close must sever the parked conns and join every handler.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	_ = pool.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("run-server leaked handler goroutines: %d before, %d after", before, g)
	}
}

// TestPushSourceOverlap: a PushSource fed map by map streams batches before
// the last map is offered (NextBatch) and lifts its barrier (Runs) only
// once every map has been offered exactly once.
func TestPushSourceOverlap(t *testing.T) {
	dir, err := dfs.NewRunDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	srv, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pool := NewFetchPool()
	defer pool.Close()

	seal := func(prefix string) Segment {
		w, _, ok, err := sealWave(dir, srv, "t", [][]core.Record{sortedRecs(prefix, 30)}, nil)
		if err != nil || !ok {
			t.Fatalf("sealWave: %v", err)
		}
		seg, _ := w.SegmentOf(0)
		return seg
	}

	src := NewPushSource(3, 8)
	src.SetPool(pool, 4)
	if err := src.Offer(0, 0, []Segment{seal("m0")}); err != nil {
		t.Fatal(err)
	}
	// One map offered, two outstanding: batches must flow already.
	batch, ok, err := src.NextBatch()
	if err != nil || !ok || len(batch) == 0 {
		t.Fatalf("no overlap: batch=%d ok=%v err=%v", len(batch), ok, err)
	}
	if err := src.Offer(1, 1, nil); err != nil { // empty map: still counts
		t.Fatal(err)
	}
	// A duplicate push of the same attempt (a speculative clone's route) is
	// an idempotent no-op: not an error, not a second barrier count.
	if err := src.Offer(1, 1, nil); err != nil {
		t.Fatalf("duplicate same-attempt push errored: %v", err)
	}
	if err := src.Offer(2, 2, []Segment{seal("m2")}); err != nil {
		t.Fatal(err)
	}
	n := len(batch)
	for {
		batch, ok, err := src.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n += len(batch)
	}
	if n != 60 {
		t.Fatalf("streamed %d records, want 60", n)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}

	// Fail wakes a source blocked on outstanding pushes.
	blocked := NewPushSource(2, 8)
	blocked.SetPool(pool, 4)
	if err := blocked.Offer(0, 0, nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := blocked.Runs()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	blocked.Fail(errors.New("peer died"))
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "peer died") {
			t.Fatalf("Runs returned %v, want the abort error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Runs did not wake on Fail")
	}
}

// rerouteFixture seals the same partition content on two independent
// run-servers — the deterministic re-execution premise: a re-run map
// produces byte-identical output on the survivor.
func rerouteFixture(t *testing.T, recs []core.Record) (srv1, srv2 *Server, seg1, seg2 Segment) {
	t.Helper()
	dir, err := dfs.NewRunDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dir.Close() })
	srv1, err = NewServer()
	if err != nil {
		t.Fatal(err)
	}
	srv2, err = NewServer()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv1.Close(); srv2.Close() })
	w1, _, ok, err := sealWave(dir, srv1, "a0", [][]core.Record{recs}, nil)
	if err != nil || !ok {
		t.Fatalf("sealWave srv1: ok=%v err=%v", ok, err)
	}
	w2, _, ok, err := sealWave(dir, srv2, "a1", [][]core.Record{recs}, nil)
	if err != nil || !ok {
		t.Fatalf("sealWave srv2: ok=%v err=%v", ok, err)
	}
	seg1, _ = w1.SegmentOf(0)
	seg2, _ = w2.SegmentOf(0)
	return srv1, srv2, seg1, seg2
}

// fastReroute shrinks the source's recovery backoff so tests don't sit in
// the production 50ms-based schedule.
func fastReroute(src *PushSource) {
	src.SetResolver(src.resolveSeg, retry.Policy{
		Base: 2 * time.Millisecond, Max: 10 * time.Millisecond, Attempts: 8,
	})
}

// TestPushSourceReRouteParked: a fetch whose route was invalidated (serving
// worker died before the reducer opened the section) parks in the resolver
// and completes from the superseding attempt's replica.
func TestPushSourceReRouteParked(t *testing.T) {
	want := sortedRecs("m0", 80)
	srv1, _, seg1, seg2 := rerouteFixture(t, want)

	src := NewPushSource(1, 16)
	fastReroute(src)
	if err := src.Offer(0, 0, []Segment{seg1}); err != nil {
		t.Fatal(err)
	}
	// The serving worker dies before the reducer touches the section.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	src.Invalidate(0)

	// Re-execution lands elsewhere a beat later; the parked fetch must wake.
	go func() {
		time.Sleep(30 * time.Millisecond)
		_ = src.Offer(0, 1, []Segment{seg2})
	}()

	var got []core.Record
	for {
		batch, ok, err := src.NextBatch()
		if err != nil {
			t.Fatalf("re-routed drain failed: %v", err)
		}
		if !ok {
			break
		}
		got = append(got, batch...)
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: %v vs %v", i, got[i], want[i])
		}
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPushSourceReRouteMidStream: killing the serving run-server while a
// section is streaming re-routes to the superseding replica with the
// already-delivered prefix skipped — every record exactly once, in order.
func TestPushSourceReRouteMidStream(t *testing.T) {
	// Big enough that the section cannot hide in socket buffers: severing
	// the server must be observable as a mid-stream read error.
	want := make([]core.Record, 20_000)
	pad := strings.Repeat("x", 200)
	for i := range want {
		want[i] = core.Record{Key: fmt.Sprintf("k%06d", i), Value: pad}
	}
	srv1, _, seg1, seg2 := rerouteFixture(t, want)

	src := NewPushSource(1, 64)
	fastReroute(src)
	if err := src.Offer(0, 0, []Segment{seg1}); err != nil {
		t.Fatal(err)
	}

	var got []core.Record
	for len(got) < 5*64 { // consume a prefix from the doomed server
		batch, ok, err := src.NextBatch()
		if err != nil || !ok {
			t.Fatalf("prefix read: ok=%v err=%v", ok, err)
		}
		got = append(got, batch...)
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	src.Invalidate(0)
	go func() {
		time.Sleep(20 * time.Millisecond)
		_ = src.Offer(0, 1, []Segment{seg2})
	}()

	for {
		batch, ok, err := src.NextBatch()
		if err != nil {
			t.Fatalf("mid-stream re-route failed after %d records: %v", len(got), err)
		}
		if !ok {
			break
		}
		got = append(got, batch...)
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d records, want %d (exactly-once across the re-route)", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs after re-route: %v vs %v", i, got[i], want[i])
		}
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
}
