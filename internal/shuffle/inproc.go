package shuffle

// inproc is the single-process transport: the batched channel shuffle (the
// engine's original pipelined data plane, with its free-list of recycled
// batch buffers) plus shared-memory runs for barrier consumption. Sealed
// spill waves (Options.SpillBytes crossings) still go to disk through
// Config.Dir; final waves stay in memory as record slices.

import (
	"fmt"
	"strconv"
	"sync"

	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/sortx"
)

type inproc struct {
	cfg  Config
	fail *failState

	// Stream discipline: per-partition batch channels plus a shared free
	// list recycling drained batch buffers back to mappers, bounding
	// steady-state allocation to roughly the in-flight batch count.
	chans []chan []core.Record
	free  chan []core.Record

	// Published waves per map task. The run discipline consumes them
	// through Runs() after the map barrier; the stream discipline seals
	// waves here only through SpillBatches (mapper-side spilling under
	// SpillBytes), and NextBatch drains those once the channels close.
	mu       sync.Mutex
	waves    [][]inWave
	closed   int
	mapsDone chan struct{}
}

// inWave is one published wave: in-memory record slices (final waves) or a
// sealed segment file (spill crossings).
type inWave struct {
	mem  [][]core.Record
	disk Wave
}

func newInProc(cfg Config) *inproc {
	freeCap := cfg.Parts * cfg.QueueCap
	if freeCap > 1<<14 {
		freeCap = 1 << 14
	}
	t := &inproc{
		cfg:      cfg,
		fail:     newFailState(),
		chans:    make([]chan []core.Record, cfg.Parts),
		free:     make(chan []core.Record, freeCap),
		waves:    make([][]inWave, cfg.Maps),
		mapsDone: make(chan struct{}),
	}
	for r := range t.chans {
		t.chans[r] = make(chan []core.Record, cfg.QueueCap)
	}
	if cfg.Maps == 0 {
		t.finish()
	}
	return t
}

// finish closes the barrier and the stream channels once every map task is
// done (or there were none).
func (t *inproc) finish() {
	close(t.mapsDone)
	for _, ch := range t.chans {
		close(ch)
	}
}

// MapSink implements Transport.
func (t *inproc) MapSink(m int) MapSink { return &inprocSink{t: t, m: m} }

// ReduceSource implements Transport.
func (t *inproc) ReduceSource(r int) ReduceSource { return &inprocSource{t: t, r: r} }

// Fail implements Transport.
func (t *inproc) Fail(err error) { t.fail.fail(err) }

// Close implements Transport.
func (t *inproc) Close() error { return nil }

type inprocSink struct {
	t     *inproc
	m     int
	waves []inWave
	enc   *codec.RunEncoder
}

// Batch implements MapSink: hand back a recycled buffer when one is free.
func (s *inprocSink) Batch() []core.Record {
	select {
	case b := <-s.t.free:
		return b
	default:
		return make([]core.Record, 0, s.t.cfg.BatchSize)
	}
}

// Send implements MapSink: one channel operation per batch, blocking on
// backpressure until the transport is failed.
func (s *inprocSink) Send(p int, batch []core.Record) error {
	select {
	case s.t.chans[p] <- batch:
		return nil
	case <-s.t.fail.done:
		return s.t.fail.failed()
	}
}

// TrySend is the non-blocking half of mapper-side stream spilling: deliver
// the batch only if the partition queue has room right now.
func (s *inprocSink) TrySend(p int, batch []core.Record) (bool, error) {
	select {
	case s.t.chans[p] <- batch:
		return true, nil
	case <-s.t.fail.done:
		return false, s.t.fail.failed()
	default:
		return false, nil
	}
}

// SpillBatches seals the mapper's buffered stream batches as one disk wave
// — the stream discipline's SpillBytes crossing. Reducers drain the sealed
// waves once the live stream ends (see inprocSource.NextBatch).
func (s *inprocSink) SpillBatches(parts [][]core.Record) error {
	return s.PublishWave(parts, true)
}

// PublishWave implements MapSink: sealed waves go to disk (the map task
// needs its buffers back); final waves stay in memory by reference.
func (s *inprocSink) PublishWave(parts [][]core.Record, sealed bool) error {
	if err := s.t.fail.failed(); err != nil {
		return err
	}
	if !sealed {
		s.waves = append(s.waves, inWave{mem: parts})
		return nil
	}
	if s.t.cfg.Dir == nil {
		return fmt.Errorf("shuffle: in-proc transport has no run directory for sealed waves")
	}
	w, enc, ok, err := sealWave(s.t.cfg.Dir, nil, "m"+strconv.Itoa(s.m), parts, s.enc)
	s.enc = enc
	if err != nil {
		return err
	}
	if ok {
		s.waves = append(s.waves, inWave{disk: w})
	}
	return nil
}

// Close implements MapSink.
func (s *inprocSink) Close() error {
	t := s.t
	t.mu.Lock()
	t.waves[s.m] = s.waves
	t.closed++
	allDone := t.closed == t.cfg.Maps
	t.mu.Unlock()
	if allDone {
		t.finish()
	}
	return nil
}

type inprocSource struct {
	t *inproc
	r int

	// Sealed-wave drain state (mapper-side stream spilling): initialized
	// lazily when the partition channel closes.
	spillInit bool
	spill     []sortx.Run
	cur       sortx.Run
}

// NextBatch implements ReduceSource over the partition's channel; once the
// live stream ends it drains the mapper-side spill waves sealed to disk.
func (s *inprocSource) NextBatch() ([]core.Record, bool, error) {
	select {
	case b, ok := <-s.t.chans[s.r]:
		if ok {
			return b, true, nil
		}
		return s.nextSpilled()
	case <-s.t.fail.done:
		return nil, false, s.t.fail.failed()
	}
}

// nextSpilled streams the partition's sealed mapper waves. The channels
// close only after every map sink Closed, so the wave lists are final.
func (s *inprocSource) nextSpilled() ([]core.Record, bool, error) {
	if !s.spillInit {
		s.spillInit = true
		s.t.mu.Lock()
		for m := range s.t.waves {
			for _, w := range s.t.waves[m] {
				if w.mem != nil {
					continue // run-discipline memory waves: barrier-only
				}
				if seg, ok := w.disk.SegmentOf(s.r); ok {
					s.spill = append(s.spill, NewLazyRun(seg))
				}
			}
		}
		s.t.mu.Unlock()
	}
	for {
		if s.cur == nil {
			if len(s.spill) == 0 {
				return nil, false, nil
			}
			s.cur = s.spill[0]
			s.spill = s.spill[1:]
		}
		batch := make([]core.Record, 0, s.t.cfg.BatchSize)
		for len(batch) < s.t.cfg.BatchSize {
			rec, ok := s.cur.Next()
			if !ok {
				break
			}
			batch = append(batch, rec)
		}
		if len(batch) < s.t.cfg.BatchSize {
			if src, ok := s.cur.(sortx.Source); ok {
				if err := src.Err(); err != nil {
					return nil, false, err
				}
			}
			if c, ok := s.cur.(interface{ Close() error }); ok {
				_ = c.Close()
			}
			s.cur = nil
		}
		if len(batch) > 0 {
			return batch, true, nil
		}
	}
}

// Recycle implements ReduceSource: drop the string references, then return
// the buffer to the free list (or let the GC take it when the list is full).
func (s *inprocSource) Recycle(batch []core.Record) {
	clear(batch)
	select {
	case s.t.free <- batch[:0]:
	default:
	}
}

// Runs implements ReduceSource: after the map barrier, the partition's runs
// in (map task, publish order) order — sealed waves as lazy file sections,
// final waves as shared slices.
func (s *inprocSource) Runs() ([]sortx.Run, error) {
	select {
	case <-s.t.mapsDone:
	case <-s.t.fail.done:
		return nil, s.t.fail.failed()
	}
	var runs []sortx.Run
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	for m := range s.t.waves {
		for _, w := range s.t.waves[m] {
			if w.mem != nil {
				if len(w.mem[s.r]) > 0 {
					runs = append(runs, sortx.NewSliceRun(w.mem[s.r]))
				}
				continue
			}
			if seg, ok := w.disk.SegmentOf(s.r); ok {
				runs = append(runs, NewLazyRun(seg))
			}
		}
	}
	return runs, nil
}

// Close implements ReduceSource.
func (s *inprocSource) Close() error { return nil }
