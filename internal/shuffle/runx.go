package shuffle

// runExchange is the sealed-run transport behind the SpillExchange and TCP
// kinds: every wave a map task publishes — spill crossings and the final
// wave alike — is sealed as a multi-partition segment file in Config.Dir,
// and reduce tasks read partition sections back, either straight from the
// filesystem (SpillExchange) or fetched from the loopback run-server (TCP).
// Intermediate data therefore always leaves the mappers' heaps, the
// Hadoop-style materialization discipline that makes the exchange work
// across process boundaries.

import (
	"fmt"
	"sync"

	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/dfs"
)

type runExchange struct {
	cfg  Config
	srv  *Server    // non-nil for the TCP kind
	pool *FetchPool // non-nil for the TCP kind: pooled multiplexed fetches
	fail *failState

	mu       sync.Mutex
	waves    [][]Wave // per map task, in publish order
	closed   int
	mapsDone chan struct{}
	// completedByPart streams map indexes to each partition's source in
	// completion order; buffered to Maps so Close never blocks.
	completedByPart []chan int
}

func newRunExchange(cfg Config, srv *Server) *runExchange {
	t := &runExchange{
		cfg:             cfg,
		srv:             srv,
		fail:            newFailState(),
		waves:           make([][]Wave, cfg.Maps),
		mapsDone:        make(chan struct{}),
		completedByPart: make([]chan int, cfg.Parts),
	}
	if srv != nil {
		t.pool = NewFetchPool()
		t.pool.DecodeWorkers = cfg.DecodeWorkers
	}
	for r := range t.completedByPart {
		t.completedByPart[r] = make(chan int, cfg.Maps)
	}
	if cfg.Maps == 0 {
		close(t.mapsDone)
	}
	return t
}

// MapSink implements Transport.
func (t *runExchange) MapSink(m int) MapSink {
	s := NewRunSink(t.cfg.Dir, t.srv, fmt.Sprintf("m%d", m))
	s.failed = t.fail.failed
	s.onClose = func(waves []Wave) error {
		t.mu.Lock()
		t.waves[m] = waves
		t.closed++
		allDone := t.closed == t.cfg.Maps
		t.mu.Unlock()
		for _, ch := range t.completedByPart {
			ch <- m // buffered to Maps: never blocks
		}
		if allDone {
			close(t.mapsDone)
		}
		return nil
	}
	return s
}

// ReduceSource implements Transport.
func (t *runExchange) ReduceSource(r int) ReduceSource {
	s := &SegmentSource{
		nMaps: t.cfg.Maps,
		segsOf: func(m int) []Segment {
			t.mu.Lock()
			waves := t.waves[m]
			t.mu.Unlock()
			segs := make([]Segment, 0, len(waves))
			for _, w := range waves {
				if seg, ok := w.SegmentOf(r); ok {
					segs = append(segs, seg)
				}
			}
			return segs
		},
		mapsDone:  t.mapsDone,
		completed: t.completedByPart[r],
		fail:      t.fail,
		batchSize: t.cfg.BatchSize,
	}
	if t.pool != nil {
		s.SetPool(t.pool, t.cfg.MergeFanIn)
	}
	return s
}

// Fail implements Transport.
func (t *runExchange) Fail(err error) { t.fail.fail(err) }

// FetchDials reports how many run-server connections the transport's fetch
// pool dialed (0 off the TCP kind) — surfaced as mr.Result.FetchDials.
func (t *runExchange) FetchDials() int64 {
	if t.pool == nil {
		return 0
	}
	return t.pool.Dials()
}

// ServerOpens reports how many os.Open calls the transport's run-server
// actually paid serving sections (0 off the TCP kind) — with the handle
// cache this stays near the distinct sealed-file count, far below the
// served-section count. Surfaced as mr.Result.ServerOpens.
func (t *runExchange) ServerOpens() int64 {
	if t.srv == nil {
		return 0
	}
	return t.srv.Opens()
}

// Close implements Transport.
func (t *runExchange) Close() error {
	if t.pool != nil {
		_ = t.pool.Close()
	}
	if t.srv != nil {
		return t.srv.Close()
	}
	return nil
}

// RunSink is the run-discipline MapSink shared by the run-exchange
// transports and the multi-process workers: every wave — sealed or final —
// is persisted as a segment file in dir, registered with the run-server
// when one is attached. Standalone users (internal/mpexec) read the sealed
// metadata back with Waves after Close.
type RunSink struct {
	dir     *dfs.RunDir
	srv     *Server
	tag     string
	enc     *codec.RunEncoder
	waves   []Wave
	failed  func() error       // optional transport abort check
	onClose func([]Wave) error // optional transport completion hook
}

// NewRunSink builds a standalone sink sealing waves into dir (registering
// each file with srv when non-nil).
func NewRunSink(dir *dfs.RunDir, srv *Server, tag string) *RunSink {
	return &RunSink{dir: dir, srv: srv, tag: tag}
}

// Batch implements MapSink.
func (s *RunSink) Batch() []core.Record { return make([]core.Record, 0, 256) }

// Send implements MapSink: the run exchange has no stream discipline —
// pipelined map tasks publish sorted waves instead.
func (s *RunSink) Send(int, []core.Record) error {
	return fmt.Errorf("shuffle: run exchange does not stream batches; publish waves")
}

// PublishWave implements MapSink. Both sealed and final waves persist: the
// exchange's whole point is that reducers read runs, not task memory.
func (s *RunSink) PublishWave(parts [][]core.Record, sealed bool) error {
	if s.failed != nil {
		if err := s.failed(); err != nil {
			return err
		}
	}
	w, enc, ok, err := sealWave(s.dir, s.srv, s.tag, parts, s.enc)
	s.enc = enc
	if err != nil {
		return err
	}
	if ok {
		s.waves = append(s.waves, w)
	}
	return nil
}

// Waves returns the sealed wave metadata (valid after Close).
func (s *RunSink) Waves() []Wave { return s.waves }

// Close implements MapSink: publish the task's wave metadata and signal
// completion to the barrier and to every partition's stream.
func (s *RunSink) Close() error {
	if s.onClose != nil {
		return s.onClose(s.waves)
	}
	return nil
}
