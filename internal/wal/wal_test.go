package wal

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// testRecords builds n deterministic records of varied sizes (including
// empty) so framing edges get exercised.
func testRecords(n int) [][]byte {
	rng := rand.New(rand.NewSource(42))
	recs := make([][]byte, n)
	for i := range recs {
		size := rng.Intn(200)
		if i%7 == 0 {
			size = 0
		}
		rec := make([]byte, size)
		rng.Read(rec)
		recs[i] = rec
	}
	return recs
}

func writeJournal(t *testing.T, recs [][]byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.wal")
	l, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(got))
	}
	for _, rec := range recs {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func requireEqual(t *testing.T, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d differs", i)
		}
	}
}

// requirePrefix asserts got is a strict or full prefix of want.
func requirePrefix(t *testing.T, got, want [][]byte) {
	t.Helper()
	if len(got) > len(want) {
		t.Fatalf("replayed %d records from a journal of %d", len(got), len(want))
	}
	requireEqual(t, got, want[:len(got)])
}

func TestAppendReplayRoundTrip(t *testing.T) {
	recs := testRecords(50)
	path := writeJournal(t, recs)

	got, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	requireEqual(t, got, recs)

	l, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	requireEqual(t, got, recs)

	// And the reopened log keeps appending where it left off.
	extra := []byte("after-reopen")
	if err := l.Append(extra); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got, err = Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	requireEqual(t, got, append(append([][]byte{}, recs...), extra))
}

// TestCrashAtEveryOffset truncates the journal at every byte offset —
// every possible crash point mid-append — and requires Open to replay the
// longest clean prefix with no error, then accept new appends.
func TestCrashAtEveryOffset(t *testing.T) {
	recs := testRecords(12)
	path := writeJournal(t, recs)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries: boundaries[i] = offset just past record i.
	boundaries := make([]int, 0, len(recs))
	off := 0
	for _, rec := range recs {
		off += headerSize + len(rec)
		boundaries = append(boundaries, off)
	}

	dir := t.TempDir()
	for cut := 0; cut <= len(full); cut++ {
		torn := filepath.Join(dir, "torn.wal")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantN := 0
		for _, b := range boundaries {
			if b <= cut {
				wantN++
			}
		}
		l, got, err := Open(torn)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		requireEqual(t, got, recs[:wantN])
		// The tail was truncated; an append lands on the clean prefix.
		if err := l.Append([]byte("recovered")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		l.Close()
		got, err = Replay(torn)
		if err != nil {
			t.Fatalf("cut=%d: replay after recovery: %v", cut, err)
		}
		requireEqual(t, got, append(append([][]byte{}, recs[:wantN]...), []byte("recovered")))
	}
}

// TestBitFlipIsCorrupt flips every bit of the journal, one at a time. A
// flip must never yield the full original record set: interior damage is
// ErrCorrupt; a flip in the final frame's length field may masquerade as a
// torn tail, which legally replays a strict prefix.
func TestBitFlipIsCorrupt(t *testing.T) {
	recs := testRecords(8)
	path := writeJournal(t, recs)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	flipped := filepath.Join(dir, "flipped.wal")
	for pos := 0; pos < len(full); pos++ {
		for bit := 0; bit < 8; bit++ {
			buf := append([]byte(nil), full...)
			buf[pos] ^= 1 << bit
			if err := os.WriteFile(flipped, buf, 0o644); err != nil {
				t.Fatal(err)
			}
			got, err := Replay(flipped)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("pos=%d bit=%d: unexpected error class: %v", pos, bit, err)
				}
				continue
			}
			if len(got) == len(recs) {
				t.Fatalf("pos=%d bit=%d: flip replayed the full record set", pos, bit)
			}
			requirePrefix(t, got, recs)
		}
	}
}

// TestCompactEquivalence: compacting to a subset replays exactly that
// subset, survives reopen, and keeps accepting appends through the
// renamed file.
func TestCompactEquivalence(t *testing.T) {
	recs := testRecords(30)
	path := filepath.Join(t.TempDir(), "journal.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Size()

	// Keep every third record — the "still-live" snapshot.
	var live [][]byte
	for i, rec := range recs {
		if i%3 == 0 {
			live = append(live, rec)
		}
	}
	if err := l.Compact(live); err != nil {
		t.Fatal(err)
	}
	if l.Size() >= before {
		t.Fatalf("compaction did not shrink the journal: %d -> %d", before, l.Size())
	}
	post := []byte("post-compact")
	if err := l.Append(post); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	got, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	requireEqual(t, got, append(append([][]byte{}, live...), post))

	// No temp droppings left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("compaction left %d files in the state dir", len(entries))
	}
}

// TestReplayMissingFile: a journal that was never created replays empty.
func TestReplayMissingFile(t *testing.T) {
	got, err := Replay(filepath.Join(t.TempDir(), "nope.wal"))
	if err != nil || len(got) != 0 {
		t.Fatalf("missing journal: got %d records, err %v", len(got), err)
	}
}
