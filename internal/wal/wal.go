// Package wal is a minimal write-ahead journal: an append-only file of
// length+CRC-framed records. It backs the coordinator's job journal — every
// control-plane state transition is appended before it is acted on, so a
// SIGKILLed coordinator can replay the file and pick up where it died.
//
// Frame format (all little-endian):
//
//	[4B payload length][4B CRC-32C of payload][payload]
//
// Replay semantics are deliberately asymmetric about where damage sits:
// a *torn tail* — the file ends mid-header or mid-payload, exactly what a
// crash between write() and completion produces — is tolerated and truncated
// away, while any damage to a complete record (a CRC or framing mismatch
// with the full frame present) is reported as ErrCorrupt, because that is
// bit rot or a bug, not a crash, and silently dropping interior records
// would resurrect jobs in inconsistent states.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// ErrCorrupt reports journal damage that is not a torn tail: a complete
// record whose CRC does not match, or framing that cannot be a crash
// artifact (an absurd length field mid-file).
var ErrCorrupt = errors.New("wal: corrupt record")

// maxRecord bounds a single record; a length field beyond it is corruption,
// not a large record.
const maxRecord = 1 << 28

const headerSize = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is an open journal positioned for appends.
type Log struct {
	path string
	f    *os.File
	off  int64
}

// scan walks buf and returns the framed payloads plus the offset just past
// the last complete record. A torn tail (fewer bytes than the header or the
// declared payload demands, at end of input) stops the scan cleanly; a CRC
// mismatch on a complete record returns ErrCorrupt.
func scan(buf []byte) (recs [][]byte, clean int64, err error) {
	off := 0
	for off < len(buf) {
		if len(buf)-off < headerSize {
			break // torn header
		}
		n := binary.LittleEndian.Uint32(buf[off:])
		sum := binary.LittleEndian.Uint32(buf[off+4:])
		if n > maxRecord {
			return nil, 0, fmt.Errorf("%w: record length %d at offset %d", ErrCorrupt, n, off)
		}
		if len(buf)-off-headerSize < int(n) {
			break // torn payload
		}
		payload := buf[off+headerSize : off+headerSize+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return nil, 0, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		rec := make([]byte, n)
		copy(rec, payload)
		recs = append(recs, rec)
		off += headerSize + int(n)
	}
	return recs, int64(off), nil
}

// Replay reads the journal at path without opening it for writes and
// returns its records. A torn tail is ignored (not truncated — the file is
// untouched), so Replay is safe to run against a journal another process is
// actively appending to. A missing file replays as empty.
func Replay(path string) ([][]byte, error) {
	buf, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	recs, _, err := scan(buf)
	return recs, err
}

// Open opens (creating if absent) the journal at path, replays its records,
// truncates any torn tail in place, and returns the log positioned for
// appends along with the replayed records.
func Open(path string) (*Log, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	recs, clean, err := scan(buf)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if clean < int64(len(buf)) {
		if err := f.Truncate(clean); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(clean, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Log{path: path, f: f, off: clean}, recs, nil
}

// frame encodes one record ready for a single write.
func frame(payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
	copy(buf[headerSize:], payload)
	return buf
}

// Append journals one record. The frame goes down in a single write, so a
// crash mid-append leaves at worst a torn tail for the next Open to trim.
func (l *Log) Append(payload []byte) error {
	if len(payload) > maxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	buf := frame(payload)
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	l.off += int64(len(buf))
	return nil
}

// Size reports the journal's current byte length — the compaction trigger's
// input.
func (l *Log) Size() int64 { return l.off }

// Sync flushes the journal to stable storage. Appends survive a process
// SIGKILL without it (the OS holds the bytes); Sync is for machine-crash
// durability at the caller's chosen points.
func (l *Log) Sync() error { return l.f.Sync() }

// Compact atomically replaces the journal's contents with records — the
// caller's compacted snapshot of still-live state. The snapshot is written
// to a temp file, synced, and renamed over the journal, so a crash at any
// point leaves either the old journal or the complete new one.
func (l *Log) Compact(records [][]byte) error {
	dir, base := filepath.Split(l.path)
	tmp, err := os.CreateTemp(dir, base+".compact-*")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	var off int64
	for _, rec := range records {
		buf := frame(rec)
		if _, err := tmp.Write(buf); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
		off += int64(len(buf))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	// The temp file's descriptor now names the journal's inode; keep
	// appending through it.
	old := l.f
	l.f, l.off = tmp, off
	old.Close()
	return nil
}

// Close closes the journal file.
func (l *Log) Close() error { return l.f.Close() }
