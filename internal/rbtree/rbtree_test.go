package rbtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// checkInvariants verifies the left-leaning red-black invariants:
// BST order, no red right links, no two consecutive red left links, and
// equal black height on every root-to-nil path.
func checkInvariants[V any](t *testing.T, tr *Tree[V]) {
	t.Helper()
	if tr.root == nil {
		return
	}
	if isRed(tr.root) {
		t.Fatal("root is red")
	}
	var prev *string
	tr.Ascend(func(k string, _ V) bool {
		if prev != nil && *prev >= k {
			t.Fatalf("keys out of order: %q then %q", *prev, k)
		}
		kk := k
		prev = &kk
		return true
	})
	var blackHeight func(x *node[V]) int
	blackHeight = func(x *node[V]) int {
		if x == nil {
			return 1
		}
		if isRed(x.right) {
			t.Fatal("red right link (not left-leaning)")
		}
		if isRed(x) && isRed(x.left) {
			t.Fatal("two consecutive red links")
		}
		l, r := blackHeight(x.left), blackHeight(x.right)
		if l != r {
			t.Fatalf("unbalanced black height: %d vs %d", l, r)
		}
		if !isRed(x) {
			l++
		}
		return l
	}
	blackHeight(tr.root)
}

func TestPutGet(t *testing.T) {
	tr := New[int](nil)
	for i := 0; i < 100; i++ {
		tr.Put(fmt.Sprintf("k%03d", i), i)
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := tr.Get(fmt.Sprintf("k%03d", i))
		if !ok || v != i {
			t.Fatalf("Get(k%03d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := tr.Get("missing"); ok {
		t.Fatal("found missing key")
	}
	checkInvariants(t, tr)
}

func TestPutReplaces(t *testing.T) {
	tr := New[string](func(v string) int64 { return int64(len(v)) })
	tr.Put("a", "one")
	before := tr.Bytes()
	tr.Put("a", "twotwo")
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if v, _ := tr.Get("a"); v != "twotwo" {
		t.Fatalf("Get = %q", v)
	}
	if tr.Bytes() != before+3 {
		t.Fatalf("Bytes = %d, want %d", tr.Bytes(), before+3)
	}
}

func TestAscendOrderAndEarlyStop(t *testing.T) {
	tr := New[int](nil)
	keys := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for i, k := range keys {
		tr.Put(k, i)
	}
	var got []string
	tr.Ascend(func(k string, _ int) bool {
		got = append(got, k)
		return true
	})
	want := append([]string(nil), keys...)
	sort.Strings(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
	count := 0
	tr.Ascend(func(string, int) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestMinMax(t *testing.T) {
	tr := New[int](nil)
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty")
	}
	for _, k := range []string{"m", "a", "z", "q"} {
		tr.Put(k, 0)
	}
	if k, _ := tr.Min(); k != "a" {
		t.Fatalf("Min = %q", k)
	}
	if k, _ := tr.Max(); k != "z" {
		t.Fatalf("Max = %q", k)
	}
}

func TestDelete(t *testing.T) {
	tr := New[int](nil)
	const n = 200
	for i := 0; i < n; i++ {
		tr.Put(fmt.Sprintf("k%04d", i), i)
	}
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(n)
	for i, idx := range perm {
		tr.Delete(fmt.Sprintf("k%04d", idx))
		if tr.Len() != n-i-1 {
			t.Fatalf("Len = %d after %d deletes", tr.Len(), i+1)
		}
		if i%17 == 0 {
			checkInvariants(t, tr)
		}
	}
	if tr.Len() != 0 || tr.Bytes() != 0 {
		t.Fatalf("Len=%d Bytes=%d after deleting all", tr.Len(), tr.Bytes())
	}
	tr.Delete("absent") // no-op on empty tree
}

func TestBytesAccounting(t *testing.T) {
	tr := New[string](func(v string) int64 { return int64(len(v)) })
	tr.Put("key1", "value1")
	want := int64(4+6) + NodeOverheadBytes
	if tr.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", tr.Bytes(), want)
	}
	tr.Put("key2", "v")
	want += int64(4+1) + NodeOverheadBytes
	if tr.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", tr.Bytes(), want)
	}
	tr.Delete("key1")
	want -= int64(4+6) + NodeOverheadBytes
	if tr.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", tr.Bytes(), want)
	}
	tr.Clear()
	if tr.Bytes() != 0 || tr.Len() != 0 {
		t.Fatal("Clear did not reset")
	}
}

func TestInvariantsProperty(t *testing.T) {
	// Property: after any sequence of inserts, invariants hold and
	// iteration matches a sorted reference map.
	f := func(keys []string) bool {
		tr := New[int](nil)
		ref := map[string]int{}
		for i, k := range keys {
			tr.Put(k, i)
			ref[k] = i
		}
		if tr.Len() != len(ref) {
			return false
		}
		want := make([]string, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		sort.Strings(want)
		got := tr.Keys()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
			if v, ok := tr.Get(got[i]); !ok || v != ref[got[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteProperty(t *testing.T) {
	// Property: inserting keys then deleting a subset leaves exactly the
	// complement, in order.
	f := func(keys []string, delMask uint64) bool {
		tr := New[int](nil)
		ref := map[string]bool{}
		for i, k := range keys {
			tr.Put(k, i)
			ref[k] = true
		}
		uniq := make([]string, 0, len(ref))
		for k := range ref {
			uniq = append(uniq, k)
		}
		sort.Strings(uniq)
		for i, k := range uniq {
			if delMask&(1<<(uint(i)%64)) != 0 {
				tr.Delete(k)
				delete(ref, k)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for _, k := range tr.Keys() {
			if !ref[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeRandomMixedWorkload(t *testing.T) {
	tr := New[int](nil)
	ref := map[string]int{}
	rng := rand.New(rand.NewSource(7))
	for op := 0; op < 20000; op++ {
		k := fmt.Sprintf("k%d", rng.Intn(3000))
		switch rng.Intn(3) {
		case 0, 1:
			tr.Put(k, op)
			ref[k] = op
		case 2:
			tr.Delete(k)
			delete(ref, k)
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
	}
	checkInvariants(t, tr)
	for k, v := range ref {
		if got, ok := tr.Get(k); !ok || got != v {
			t.Fatalf("Get(%q) = %d,%v want %d", k, got, ok, v)
		}
	}
}

func BenchmarkPut(b *testing.B) {
	keys := make([]string, 1<<16)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%08d", (i*2654435761)%(1<<24))
	}
	b.ResetTimer()
	tr := New[int](nil)
	for i := 0; i < b.N; i++ {
		tr.Put(keys[i&(len(keys)-1)], i)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New[int](nil)
	keys := make([]string, 1<<16)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%08d", i)
		tr.Put(keys[i], i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keys[i&(len(keys)-1)])
	}
}
