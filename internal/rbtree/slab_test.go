package rbtree

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestSlabKeysSurviveGrowthAndDeletes: slab-cloned keys must stay intact
// through arbitrary interleaved inserts, updates and deletes (rotations
// copy keys between nodes; slabs must never be overwritten while live).
func TestSlabKeysSurviveGrowthAndDeletes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := New[string](func(v string) int64 { return int64(len(v)) })
	live := map[string]string{}
	for i := 0; i < 20_000; i++ {
		k := fmt.Sprintf("key-%06d", rng.Intn(8000))
		switch rng.Intn(4) {
		case 0:
			tr.Delete(k)
			delete(live, k)
		default:
			v := fmt.Sprintf("v%d", i)
			tr.Put(k, v)
			live[k] = v
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
	}
	tr.Ascend(func(k, v string) bool {
		if want, ok := live[k]; !ok || want != v {
			t.Fatalf("corrupt entry %q=%q (want %q, present %v)", k, v, want, ok)
		}
		delete(live, k)
		return true
	})
	if len(live) != 0 {
		t.Fatalf("%d entries missing from Ascend", len(live))
	}
}

// TestSlabOversizedKeys: keys above the slab limit take the private-clone
// path and still behave.
func TestSlabOversizedKeys(t *testing.T) {
	tr := New[string](nil)
	big := strings.Repeat("x", maxSlabKeyBytes+100)
	tr.Put(big, "v")
	tr.Put("small", "w")
	if v, ok := tr.Get(big); !ok || v != "v" {
		t.Fatalf("oversized key lookup = %q, %v", v, ok)
	}
}

// TestClearReuseRecycles: after ClearReuse, refilling the tree reuses the
// retired slabs (no unbounded growth) and the new contents are correct —
// the old keys' bytes are legitimately overwritten.
func TestClearReuseRecycles(t *testing.T) {
	tr := New[string](nil)
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 3000; i++ {
			tr.Put(fmt.Sprintf("c%d-key-%06d", cycle, i), "v")
		}
		if tr.Len() != 3000 {
			t.Fatalf("cycle %d: Len = %d", cycle, tr.Len())
		}
		prev := ""
		n := 0
		tr.Ascend(func(k, _ string) bool {
			if k <= prev {
				t.Fatalf("cycle %d: out of order: %q after %q", cycle, k, prev)
			}
			if !strings.HasPrefix(k, fmt.Sprintf("c%d-", cycle)) {
				t.Fatalf("cycle %d: stale key %q leaked across ClearReuse", cycle, k)
			}
			prev = k
			n++
			return true
		})
		if n != 3000 {
			t.Fatalf("cycle %d: visited %d", cycle, n)
		}
		tr.ClearReuse()
		if tr.Len() != 0 || tr.Bytes() != 0 {
			t.Fatalf("cycle %d: ClearReuse left %d keys / %d bytes", cycle, tr.Len(), tr.Bytes())
		}
	}
	// After the cycles the spare lists should bound total slab count to
	// roughly one fill's worth, not five.
	if got := len(tr.spareSlabs) + len(tr.usedSlabs); got > 10 {
		t.Fatalf("slab count grew across cycles: %d spare+used", got)
	}
}

// TestSlabAllocsPerInsert: the arena must amortize the two historical
// per-insert allocations (node + key clone) down to well under one.
func TestSlabAllocsPerInsert(t *testing.T) {
	const n = 10_000
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("alloc-key-%06d", i)
	}
	var tr *Tree[string]
	allocs := testing.AllocsPerRun(5, func() {
		tr = New[string](nil)
		for _, k := range keys {
			tr.Put(k, "v")
		}
	})
	perInsert := allocs / n
	if perInsert > 0.25 {
		t.Fatalf("%.3f allocs per insert, want the slab arena's < 0.25 (total %.0f for %d inserts)",
			perInsert, allocs, n)
	}
	t.Logf("%.0f allocs for %d fresh-key inserts (%.4f/insert)", allocs, n, perInsert)
}
