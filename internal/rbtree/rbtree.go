// Package rbtree implements a left-leaning red-black tree keyed by string —
// the framework's equivalent of Java's TreeMap, which the paper uses to hold
// per-key partial results in key order.
//
// The tree tracks an approximate byte footprint of its contents so the
// engine can account reducer heap usage and trigger spills.
//
// Allocation is slab-backed: nodes come from fixed-size chunks and key
// clones from append-only byte slabs, so inserting a million fresh keys
// costs thousands of allocations instead of millions (two per key — the
// node and the defensive key copy — dominated the pipelined Sort
// benchmark's ~2M allocs/op before slabs). ClearReuse recycles the slabs
// across spill cycles, the free-list discipline the spill store's
// fill/seal/clear loop wants.
package rbtree

import (
	"strings"
	"unsafe"
)

const (
	red   = true
	black = false

	// keySlabBytes is the size of one key-bytes slab.
	keySlabBytes = 64 << 10
	// maxSlabKeyBytes is the largest key cloned into a slab; bigger keys
	// get their own allocation so one giant key cannot waste a slab.
	maxSlabKeyBytes = 4 << 10
	// nodeChunkLen is the number of nodes per allocation chunk.
	nodeChunkLen = 256
)

// NodeOverheadBytes approximates the per-node allocation overhead (pointers,
// color, string headers) used for memory accounting. It is exported so
// every layer that budgets "one buffered record" — the tree itself, the
// engines' mapper-side spill triggers, the examples' reports — charges the
// same per-entry overhead (see store.ApproxRecordBytes).
const NodeOverheadBytes = 64

type node[V any] struct {
	key         string
	val         V
	left, right *node[V]
	color       bool
	n           int // subtree size
}

// Tree is an ordered string-keyed map. The zero value is NOT usable; create
// trees with New. Not safe for concurrent use.
type Tree[V any] struct {
	root   *node[V]
	sizeOf func(V) int64
	bytes  int64

	// Slab state. keySlab/nodeChunk are the partially filled current
	// slabs; used* hold filled slabs whose contents the live tree may
	// still reference; spare* hold recycled slabs (ClearReuse) that are
	// provably unreferenced and safe to overwrite.
	keySlab     []byte
	usedSlabs   [][]byte
	spareSlabs  [][]byte
	nodeChunk   []node[V] // unallocated remainder of curChunk
	curChunk    []node[V] // the full current chunk, for recycling
	usedChunks  [][]node[V]
	spareChunks [][]node[V]
}

// newNode allocates a node from the chunk arena, cloning the key into the
// key slab so a long-lived tree never pins the (possibly much larger)
// string a caller's key was sliced from — mapper output keys are
// substrings of whole input lines.
func (t *Tree[V]) newNode(key string, val V) *node[V] {
	if len(t.nodeChunk) == 0 {
		if t.curChunk != nil {
			t.usedChunks = append(t.usedChunks, t.curChunk)
		}
		if n := len(t.spareChunks); n > 0 {
			t.curChunk = t.spareChunks[n-1]
			t.spareChunks = t.spareChunks[:n-1]
		} else {
			t.curChunk = make([]node[V], nodeChunkLen)
		}
		t.nodeChunk = t.curChunk
	}
	h := &t.nodeChunk[0]
	t.nodeChunk = t.nodeChunk[1:]
	h.key = t.cloneKey(key)
	h.val = val
	h.left, h.right = nil, nil
	h.color = red
	h.n = 1
	return h
}

// cloneKey copies key into the current key slab and returns a string view
// of the copy. The slabs are append-only while referenced — bytes are
// written exactly once, before the unsafe.String view is created, and
// slabs are only recycled by ClearReuse, whose contract is that no tree
// string escapes — so the no-mutation requirement of unsafe.String holds.
func (t *Tree[V]) cloneKey(key string) string {
	if len(key) == 0 {
		return ""
	}
	if len(key) > maxSlabKeyBytes {
		return strings.Clone(key)
	}
	if cap(t.keySlab)-len(t.keySlab) < len(key) {
		if t.keySlab != nil {
			t.usedSlabs = append(t.usedSlabs, t.keySlab)
		}
		if n := len(t.spareSlabs); n > 0 {
			t.keySlab = t.spareSlabs[n-1][:0]
			t.spareSlabs = t.spareSlabs[:n-1]
		} else {
			t.keySlab = make([]byte, 0, keySlabBytes)
		}
	}
	off := len(t.keySlab)
	t.keySlab = append(t.keySlab, key...)
	return unsafe.String(&t.keySlab[off], len(key))
}

// New creates a tree. sizeOf reports the accounted byte size of a value; a
// nil sizeOf counts values as zero bytes (keys and node overhead are always
// counted).
func New[V any](sizeOf func(V) int64) *Tree[V] {
	if sizeOf == nil {
		sizeOf = func(V) int64 { return 0 }
	}
	return &Tree[V]{sizeOf: sizeOf}
}

// Len returns the number of keys.
func (t *Tree[V]) Len() int {
	if t.root == nil {
		return 0
	}
	return t.root.n
}

// Bytes returns the accounted byte footprint of the tree.
func (t *Tree[V]) Bytes() int64 { return t.bytes }

// Get returns the value stored at key.
func (t *Tree[V]) Get(key string) (V, bool) {
	x := t.root
	for x != nil {
		switch {
		case key < x.key:
			x = x.left
		case key > x.key:
			x = x.right
		default:
			return x.val, true
		}
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (t *Tree[V]) Contains(key string) bool {
	_, ok := t.Get(key)
	return ok
}

// Put inserts or replaces the value at key.
func (t *Tree[V]) Put(key string, val V) {
	t.root = t.put(t.root, key, val)
	t.root.color = black
}

func (t *Tree[V]) put(h *node[V], key string, val V) *node[V] {
	if h == nil {
		t.bytes += int64(len(key)) + t.sizeOf(val) + NodeOverheadBytes
		return t.newNode(key, val)
	}
	switch {
	case key < h.key:
		h.left = t.put(h.left, key, val)
	case key > h.key:
		h.right = t.put(h.right, key, val)
	default:
		t.bytes += t.sizeOf(val) - t.sizeOf(h.val)
		h.val = val
	}
	return t.fixUp(h)
}

// Update inserts or modifies the value at key in a single descent — the
// read-modify-write primitive for running aggregates (one tree walk where a
// Get followed by a Put would take two). fn receives the current value and
// whether the key was present, and returns the value to store.
func (t *Tree[V]) Update(key string, fn func(old V, ok bool) V) {
	t.root = t.update(t.root, key, fn)
	t.root.color = black
}

func (t *Tree[V]) update(h *node[V], key string, fn func(V, bool) V) *node[V] {
	if h == nil {
		var zero V
		val := fn(zero, false)
		t.bytes += int64(len(key)) + t.sizeOf(val) + NodeOverheadBytes
		return t.newNode(key, val)
	}
	switch {
	case key < h.key:
		h.left = t.update(h.left, key, fn)
	case key > h.key:
		h.right = t.update(h.right, key, fn)
	default:
		val := fn(h.val, true)
		t.bytes += t.sizeOf(val) - t.sizeOf(h.val)
		h.val = val
	}
	return t.fixUp(h)
}

// fixUp restores the left-leaning red-black invariants and subtree size on
// the way back up an insertion path.
func (t *Tree[V]) fixUp(h *node[V]) *node[V] {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	h.n = 1 + size(h.left) + size(h.right)
	return h
}

// Delete removes key if present.
func (t *Tree[V]) Delete(key string) {
	if !t.Contains(key) {
		return
	}
	if !isRed(t.root.left) && !isRed(t.root.right) {
		t.root.color = red
	}
	t.root = t.delete(t.root, key)
	if t.root != nil {
		t.root.color = black
	}
}

func (t *Tree[V]) delete(h *node[V], key string) *node[V] {
	if key < h.key {
		if !isRed(h.left) && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = t.delete(h.left, key)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if key == h.key && h.right == nil {
			t.bytes -= int64(len(h.key)) + t.sizeOf(h.val) + NodeOverheadBytes
			return nil
		}
		if !isRed(h.right) && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if key == h.key {
			t.bytes -= int64(len(h.key)) + t.sizeOf(h.val) + NodeOverheadBytes
			m := min(h.right)
			h.key, h.val = m.key, m.val
			h.right = deleteMin(h.right)
		} else {
			h.right = t.delete(h.right, key)
		}
	}
	return balance(h)
}

// Min returns the smallest key.
func (t *Tree[V]) Min() (string, bool) {
	if t.root == nil {
		return "", false
	}
	return min(t.root).key, true
}

// Max returns the largest key.
func (t *Tree[V]) Max() (string, bool) {
	if t.root == nil {
		return "", false
	}
	x := t.root
	for x.right != nil {
		x = x.right
	}
	return x.key, true
}

// Ascend visits entries in increasing key order until fn returns false.
func (t *Tree[V]) Ascend(fn func(key string, val V) bool) {
	ascend(t.root, fn)
}

func ascend[V any](x *node[V], fn func(string, V) bool) bool {
	if x == nil {
		return true
	}
	if !ascend(x.left, fn) {
		return false
	}
	if !fn(x.key, x.val) {
		return false
	}
	return ascend(x.right, fn)
}

// Clear drops all entries and releases the slab arenas to the garbage
// collector. Safe when strings obtained from the tree (keys, values) are
// still referenced elsewhere: slabs are dropped, never overwritten.
func (t *Tree[V]) Clear() {
	t.root = nil
	t.bytes = 0
	t.keySlab = nil
	t.usedSlabs = nil
	t.spareSlabs = nil
	t.nodeChunk = nil
	t.curChunk = nil
	t.usedChunks = nil
	t.spareChunks = nil
}

// ClearReuse drops all entries but keeps the slab arenas on an internal
// free list for the next fill — the right clear for fill/seal/clear spill
// cycles, where the tree is refilled to the same footprint over and over.
//
// Contract: the caller must guarantee that NO string obtained from the
// tree (a key passed to an Ascend callback, a stored value) is referenced
// after the call — recycled key slabs are overwritten by future inserts.
// The spill store qualifies: everything is encoded into the sealed run
// buffer before the clear.
func (t *Tree[V]) ClearReuse() {
	t.root = nil
	t.bytes = 0
	if t.keySlab != nil {
		t.spareSlabs = append(t.spareSlabs, t.keySlab[:0])
		t.keySlab = nil
	}
	for _, s := range t.usedSlabs {
		t.spareSlabs = append(t.spareSlabs, s[:0])
	}
	t.usedSlabs = nil
	if t.curChunk != nil {
		clear(t.curChunk) // drop stale key/value references
		t.spareChunks = append(t.spareChunks, t.curChunk)
		t.curChunk = nil
		t.nodeChunk = nil
	}
	for _, c := range t.usedChunks {
		clear(c)
		t.spareChunks = append(t.spareChunks, c)
	}
	t.usedChunks = nil
}

// Keys returns all keys in order (for tests and small trees).
func (t *Tree[V]) Keys() []string {
	out := make([]string, 0, t.Len())
	t.Ascend(func(k string, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// --- LLRB helpers ---------------------------------------------------------

func isRed[V any](x *node[V]) bool { return x != nil && x.color == red }

func size[V any](x *node[V]) int {
	if x == nil {
		return 0
	}
	return x.n
}

func rotateLeft[V any](h *node[V]) *node[V] {
	x := h.right
	h.right = x.left
	x.left = h
	x.color = h.color
	h.color = red
	x.n = h.n
	h.n = 1 + size(h.left) + size(h.right)
	return x
}

func rotateRight[V any](h *node[V]) *node[V] {
	x := h.left
	h.left = x.right
	x.right = h
	x.color = h.color
	h.color = red
	x.n = h.n
	h.n = 1 + size(h.left) + size(h.right)
	return x
}

func flipColors[V any](h *node[V]) {
	h.color = !h.color
	h.left.color = !h.left.color
	h.right.color = !h.right.color
}

func moveRedLeft[V any](h *node[V]) *node[V] {
	flipColors(h)
	if isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight[V any](h *node[V]) *node[V] {
	flipColors(h)
	if isRed(h.left.left) {
		h = rotateRight(h)
		flipColors(h)
	}
	return h
}

func balance[V any](h *node[V]) *node[V] {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	h.n = 1 + size(h.left) + size(h.right)
	return h
}

func min[V any](x *node[V]) *node[V] {
	for x.left != nil {
		x = x.left
	}
	return x
}

func deleteMin[V any](h *node[V]) *node[V] {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = deleteMin(h.left)
	return balance(h)
}
