// Package rbtree implements a left-leaning red-black tree keyed by string —
// the framework's equivalent of Java's TreeMap, which the paper uses to hold
// per-key partial results in key order.
//
// The tree tracks an approximate byte footprint of its contents so the
// engine can account reducer heap usage and trigger spills.
package rbtree

import "strings"

const (
	red   = true
	black = false
)

// NodeOverheadBytes approximates the per-node allocation overhead (pointers,
// color, string headers) used for memory accounting. It is exported so
// every layer that budgets "one buffered record" — the tree itself, the
// engines' mapper-side spill triggers, the examples' reports — charges the
// same per-entry overhead (see store.ApproxRecordBytes).
const NodeOverheadBytes = 64

type node[V any] struct {
	key         string
	val         V
	left, right *node[V]
	color       bool
	n           int // subtree size
}

// Tree is an ordered string-keyed map. The zero value is NOT usable; create
// trees with New. Not safe for concurrent use.
type Tree[V any] struct {
	root   *node[V]
	sizeOf func(V) int64
	bytes  int64
}

// newNode clones the key so a long-lived tree never pins the (possibly much
// larger) string a caller's key was sliced from — mapper output keys are
// substrings of whole input lines.
func newNode[V any](key string, val V) *node[V] {
	return &node[V]{key: strings.Clone(key), val: val, color: red, n: 1}
}

// New creates a tree. sizeOf reports the accounted byte size of a value; a
// nil sizeOf counts values as zero bytes (keys and node overhead are always
// counted).
func New[V any](sizeOf func(V) int64) *Tree[V] {
	if sizeOf == nil {
		sizeOf = func(V) int64 { return 0 }
	}
	return &Tree[V]{sizeOf: sizeOf}
}

// Len returns the number of keys.
func (t *Tree[V]) Len() int {
	if t.root == nil {
		return 0
	}
	return t.root.n
}

// Bytes returns the accounted byte footprint of the tree.
func (t *Tree[V]) Bytes() int64 { return t.bytes }

// Get returns the value stored at key.
func (t *Tree[V]) Get(key string) (V, bool) {
	x := t.root
	for x != nil {
		switch {
		case key < x.key:
			x = x.left
		case key > x.key:
			x = x.right
		default:
			return x.val, true
		}
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (t *Tree[V]) Contains(key string) bool {
	_, ok := t.Get(key)
	return ok
}

// Put inserts or replaces the value at key.
func (t *Tree[V]) Put(key string, val V) {
	t.root = t.put(t.root, key, val)
	t.root.color = black
}

func (t *Tree[V]) put(h *node[V], key string, val V) *node[V] {
	if h == nil {
		t.bytes += int64(len(key)) + t.sizeOf(val) + NodeOverheadBytes
		return newNode[V](key, val)
	}
	switch {
	case key < h.key:
		h.left = t.put(h.left, key, val)
	case key > h.key:
		h.right = t.put(h.right, key, val)
	default:
		t.bytes += t.sizeOf(val) - t.sizeOf(h.val)
		h.val = val
	}
	return t.fixUp(h)
}

// Update inserts or modifies the value at key in a single descent — the
// read-modify-write primitive for running aggregates (one tree walk where a
// Get followed by a Put would take two). fn receives the current value and
// whether the key was present, and returns the value to store.
func (t *Tree[V]) Update(key string, fn func(old V, ok bool) V) {
	t.root = t.update(t.root, key, fn)
	t.root.color = black
}

func (t *Tree[V]) update(h *node[V], key string, fn func(V, bool) V) *node[V] {
	if h == nil {
		var zero V
		val := fn(zero, false)
		t.bytes += int64(len(key)) + t.sizeOf(val) + NodeOverheadBytes
		return newNode[V](key, val)
	}
	switch {
	case key < h.key:
		h.left = t.update(h.left, key, fn)
	case key > h.key:
		h.right = t.update(h.right, key, fn)
	default:
		val := fn(h.val, true)
		t.bytes += t.sizeOf(val) - t.sizeOf(h.val)
		h.val = val
	}
	return t.fixUp(h)
}

// fixUp restores the left-leaning red-black invariants and subtree size on
// the way back up an insertion path.
func (t *Tree[V]) fixUp(h *node[V]) *node[V] {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	h.n = 1 + size(h.left) + size(h.right)
	return h
}

// Delete removes key if present.
func (t *Tree[V]) Delete(key string) {
	if !t.Contains(key) {
		return
	}
	if !isRed(t.root.left) && !isRed(t.root.right) {
		t.root.color = red
	}
	t.root = t.delete(t.root, key)
	if t.root != nil {
		t.root.color = black
	}
}

func (t *Tree[V]) delete(h *node[V], key string) *node[V] {
	if key < h.key {
		if !isRed(h.left) && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = t.delete(h.left, key)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if key == h.key && h.right == nil {
			t.bytes -= int64(len(h.key)) + t.sizeOf(h.val) + NodeOverheadBytes
			return nil
		}
		if !isRed(h.right) && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if key == h.key {
			t.bytes -= int64(len(h.key)) + t.sizeOf(h.val) + NodeOverheadBytes
			m := min(h.right)
			h.key, h.val = m.key, m.val
			h.right = deleteMin(h.right)
		} else {
			h.right = t.delete(h.right, key)
		}
	}
	return balance(h)
}

// Min returns the smallest key.
func (t *Tree[V]) Min() (string, bool) {
	if t.root == nil {
		return "", false
	}
	return min(t.root).key, true
}

// Max returns the largest key.
func (t *Tree[V]) Max() (string, bool) {
	if t.root == nil {
		return "", false
	}
	x := t.root
	for x.right != nil {
		x = x.right
	}
	return x.key, true
}

// Ascend visits entries in increasing key order until fn returns false.
func (t *Tree[V]) Ascend(fn func(key string, val V) bool) {
	ascend(t.root, fn)
}

func ascend[V any](x *node[V], fn func(string, V) bool) bool {
	if x == nil {
		return true
	}
	if !ascend(x.left, fn) {
		return false
	}
	if !fn(x.key, x.val) {
		return false
	}
	return ascend(x.right, fn)
}

// Clear drops all entries.
func (t *Tree[V]) Clear() {
	t.root = nil
	t.bytes = 0
}

// Keys returns all keys in order (for tests and small trees).
func (t *Tree[V]) Keys() []string {
	out := make([]string, 0, t.Len())
	t.Ascend(func(k string, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// --- LLRB helpers ---------------------------------------------------------

func isRed[V any](x *node[V]) bool { return x != nil && x.color == red }

func size[V any](x *node[V]) int {
	if x == nil {
		return 0
	}
	return x.n
}

func rotateLeft[V any](h *node[V]) *node[V] {
	x := h.right
	h.right = x.left
	x.left = h
	x.color = h.color
	h.color = red
	x.n = h.n
	h.n = 1 + size(h.left) + size(h.right)
	return x
}

func rotateRight[V any](h *node[V]) *node[V] {
	x := h.left
	h.left = x.right
	x.right = h
	x.color = h.color
	h.color = red
	x.n = h.n
	h.n = 1 + size(h.left) + size(h.right)
	return x
}

func flipColors[V any](h *node[V]) {
	h.color = !h.color
	h.left.color = !h.left.color
	h.right.color = !h.right.color
}

func moveRedLeft[V any](h *node[V]) *node[V] {
	flipColors(h)
	if isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight[V any](h *node[V]) *node[V] {
	flipColors(h)
	if isRed(h.left.left) {
		h = rotateRight(h)
		flipColors(h)
	}
	return h
}

func balance[V any](h *node[V]) *node[V] {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	h.n = 1 + size(h.left) + size(h.right)
	return h
}

func min[V any](x *node[V]) *node[V] {
	for x.left != nil {
		x = x.left
	}
	return x
}

func deleteMin[V any](h *node[V]) *node[V] {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = deleteMin(h.left)
	return balance(h)
}
