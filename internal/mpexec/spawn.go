package mpexec

import (
	"fmt"
	"os"
	"os/exec"
	"time"
)

// SpawnLocal starts a coordinator and re-executes the current binary n
// times as worker processes, appending "-worker-coord <addr>" to args (the
// caller's worker-mode flags). It blocks until every worker registers and
// returns the coordinator plus a teardown function that kills the workers
// and closes the coordinator — the local-cluster bootstrap shared by
// cmd/blmr and examples/cluster.
func SpawnLocal(args []string, n int, timeout time.Duration) (*Coordinator, func(), error) {
	coord, err := Listen()
	if err != nil {
		return nil, nil, err
	}
	self, err := os.Executable()
	if err != nil {
		self = os.Args[0]
	}
	var cmds []*exec.Cmd
	teardown := func() {
		for _, c := range cmds {
			_ = c.Process.Kill()
			_, _ = c.Process.Wait()
		}
		_ = coord.Close()
	}
	for i := 0; i < n; i++ {
		cmd := exec.Command(self, append(append([]string(nil), args...), "-worker-coord", coord.Addr())...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			teardown()
			return nil, nil, fmt.Errorf("mpexec: spawn worker %d: %w", i, err)
		}
		cmds = append(cmds, cmd)
	}
	if err := coord.WaitWorkers(n, timeout); err != nil {
		teardown()
		return nil, nil, err
	}
	return coord, teardown, nil
}
