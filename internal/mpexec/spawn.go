package mpexec

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
	"time"
)

// LocalCluster is a coordinator plus the worker subprocesses SpawnLocal
// started — the local-cluster bootstrap shared by cmd/blmr, examples/cluster
// and the chaos tests. Kill supports fault injection: a SIGKILLed worker
// exercises the full recovery path (re-execution, re-routing, speculative
// backfill) exactly as a production crash would.
type LocalCluster struct {
	Coord *Coordinator

	mu   sync.Mutex
	cmds []*exec.Cmd
}

// Teardown kills every worker still running and closes the coordinator.
func (lc *LocalCluster) Teardown() {
	lc.mu.Lock()
	cmds := lc.cmds
	lc.cmds = nil
	lc.mu.Unlock()
	for _, c := range cmds {
		if c == nil {
			continue
		}
		_ = c.Process.Kill()
		_, _ = c.Process.Wait()
	}
	_ = lc.Coord.Close()
}

// Kill SIGKILLs worker i (0-based spawn order) and reaps it. Idempotent per
// worker; an out-of-range index is an error.
func (lc *LocalCluster) Kill(i int) error {
	lc.mu.Lock()
	if i < 0 || i >= len(lc.cmds) || lc.cmds[i] == nil {
		lc.mu.Unlock()
		return fmt.Errorf("mpexec: no worker %d to kill", i)
	}
	c := lc.cmds[i]
	lc.cmds[i] = nil
	lc.mu.Unlock()
	if err := c.Process.Kill(); err != nil {
		return err
	}
	_, _ = c.Process.Wait()
	return nil
}

// SpawnLocal starts a coordinator and re-executes the current binary n
// times as worker processes, appending "-worker-coord <addr>" to args (the
// caller's worker-mode flags). It blocks until every worker registers and
// returns the running cluster; call Teardown when done.
func SpawnLocal(args []string, n int, timeout time.Duration) (*LocalCluster, error) {
	coord, err := Listen()
	if err != nil {
		return nil, err
	}
	self, err := os.Executable()
	if err != nil {
		self = os.Args[0]
	}
	lc := &LocalCluster{Coord: coord}
	for i := 0; i < n; i++ {
		cmd := exec.Command(self, append(append([]string(nil), args...), "-worker-coord", coord.Addr())...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			lc.Teardown()
			return nil, fmt.Errorf("mpexec: spawn worker %d: %w", i, err)
		}
		lc.cmds = append(lc.cmds, cmd)
	}
	if err := coord.WaitWorkers(n, timeout); err != nil {
		lc.Teardown()
		return nil, err
	}
	return lc, nil
}
