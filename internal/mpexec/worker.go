package mpexec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"blmr/internal/dfs"
	"blmr/internal/exec"
	"blmr/internal/retry"
	"blmr/internal/shuffle"
)

// JobResolver maps a job's registry name (exec.Job.Name, shipped in the 'J'
// frame) to the user code a worker should run for it. Both sides of the
// multi-process mode are launched from the same binary, so the resolver is
// how a multi-tenant worker pool serves heterogeneous jobs: the coordinator
// ships the name and the option subset, the worker supplies the functions.
type JobResolver func(name string) (exec.Job, bool)

// Serve is a worker process's main loop for a single-app pool: every job
// the coordinator opens resolves to the given user code, whatever its name.
// See ServeJobs for the general form.
func Serve(coordAddr string, job exec.Job, opts exec.Options) error {
	return ServeJobs(coordAddr, func(string) (exec.Job, bool) { return job, true }, opts)
}

// ServeJobs is a worker process's main loop: dial the coordinator, start a
// run-server, register, and execute tasks until the coordinator says bye or
// the connection ends. base carries worker-local knobs (heartbeat interval,
// spill directory); the task-body options that must match the coordinator
// (mode, partition count, spill budget, codec, ...) arrive per job in the
// 'J' frame, so one pool serves concurrent heterogeneous jobs.
//
// Every admitted job gets its own state: a fresh spill directory (sealed
// with the job's codec, removed when the job closes), its own reduce
// sources and buffered pushes, and its own latched abort — concurrent jobs
// on one worker cannot cross-talk. Tasks of all jobs run concurrently: the
// read loop dispatches each map and reduce task to its own goroutine (the
// coordinator bounds concurrency with per-job slot shares and the cross-job
// slot pool) and keeps routing 'S' segment pushes to in-flight reduce
// sources. Section fetches from peer run-servers go through one shared
// FetchPool: one multiplexed connection per peer, reused across sections,
// tasks and jobs.
func ServeJobs(coordAddr string, resolve JobResolver, base exec.Options) error {
	base.Transport = shuffle.TCP // workers always exchange sealed runs
	base.Normalize()
	// Transient connect failures (the coordinator's listener racing worker
	// spawn, a briefly saturated backlog) are absorbed by a capped
	// exponential backoff instead of failing the worker outright.
	conn, err := retry.Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second, Attempts: 8}.
		Dial("tcp", coordAddr)
	if err != nil {
		return fmt.Errorf("mpexec: dial coordinator %s: %w", coordAddr, err)
	}
	defer conn.Close()
	srv, advertise, err := runServerFor(coordAddr, conn)
	if err != nil {
		return err
	}
	defer srv.Close()
	pool := shuffle.NewFetchPool()
	pool.DecodeWorkers = base.DecodeWorkers
	defer pool.Close()
	hello := putStr(nil, advertise)
	hello = putStr(hello, fmt.Sprintf("w-%d", os.Getpid()))
	if err := writeMsg(conn, msgHello, hello); err != nil {
		return fmt.Errorf("mpexec: register: %w", err)
	}

	w := &workerState{conn: conn, resolve: resolve, base: base, srv: srv, pool: pool,
		jobs: make(map[int]*wjob)}
	// Heartbeats prove liveness through long silent stretches (a big map
	// split, a reduce parked on routes); the coordinator declares a worker
	// dead after four missed intervals.
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(base.HeartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				w.reply(msgHeartbeat, nil)
			}
		}
	}()
	err = w.loop(bufio.NewReader(conn))
	close(hbStop)
	hbWG.Wait()
	// The control plane is gone (bye, coordinator exit, or a protocol
	// error): fail every job's still-running reduce sources so their tasks
	// unwind, then wait for every task goroutine before tearing down the
	// directories, server and pool they use.
	w.mu.Lock()
	jobs := make([]*wjob, 0, len(w.jobs))
	for _, jb := range w.jobs {
		jobs = append(jobs, jb)
	}
	w.jobs = make(map[int]*wjob)
	w.mu.Unlock()
	for _, jb := range jobs {
		w.failJob(jb, fmt.Errorf("mpexec: coordinator connection closed"))
	}
	w.wg.Wait()
	for _, jb := range jobs {
		if jb.dir != nil {
			_ = jb.dir.Close()
		}
	}
	return err
}

// runServerFor starts the worker's run-server and derives the address peers
// should dial. On a loopback control plane (the local-cluster default) the
// server binds loopback and advertises its literal address. When the
// coordinator is remote, the server binds every interface and advertises
// the host the control connection uses — the one address peers provably
// can route to this machine.
func runServerFor(coordAddr string, conn net.Conn) (*shuffle.Server, string, error) {
	host, _, err := net.SplitHostPort(coordAddr)
	ip := net.ParseIP(host)
	loopback := err == nil && (host == "localhost" || (ip != nil && ip.IsLoopback()))
	if loopback {
		srv, err := shuffle.NewServer()
		if err != nil {
			return nil, "", err
		}
		return srv, srv.Addr(), nil
	}
	srv, err := shuffle.NewServerOn(":0")
	if err != nil {
		return nil, "", err
	}
	localHost, _, err := net.SplitHostPort(conn.LocalAddr().String())
	if err != nil {
		_ = srv.Close()
		return nil, "", fmt.Errorf("mpexec: derive advertised host: %w", err)
	}
	_, port, err := net.SplitHostPort(srv.Addr())
	if err != nil {
		_ = srv.Close()
		return nil, "", fmt.Errorf("mpexec: derive run-server port: %w", err)
	}
	return srv, net.JoinHostPort(localHost, port), nil
}

// workerState is one ServeJobs invocation's shared state.
type workerState struct {
	conn    net.Conn
	resolve JobResolver
	base    exec.Options
	srv     *shuffle.Server
	pool    *shuffle.FetchPool

	wmu sync.Mutex // serializes reply/error frame writes
	wg  sync.WaitGroup

	mu   sync.Mutex
	jobs map[int]*wjob // job id -> its state (w.mu guards wjob maps too)
}

// wjob is one admitted job's worker-side state.
type wjob struct {
	id   int
	job  exec.Job
	opts exec.Options
	dir  *dfs.RunDir

	reds    map[int]*shuffle.PushSource // partition -> in-flight reduce source
	early   map[int][]mapSegs           // pushes that raced ahead of their 'R'
	aborted error                       // set by 'F' (or a failed open): fail tasks fast
	tasks   sync.WaitGroup              // in-flight tasks of this job
	fileIDs []uint64                    // run files this job registered with the run-server
}

// loop dispatches control frames until the connection ends. A nil return
// is a clean exit (bye or coordinator gone).
func (w *workerState) loop(br *bufio.Reader) error {
	for {
		typ, payload, err := readMsg(br)
		if err != nil {
			return nil // coordinator gone: a worker's exit signal
		}
		switch typ {
		case msgBye:
			return nil
		case msgJobStart:
			w.openJob(payload)
		case msgJobEnd:
			d := &dec{buf: payload}
			w.closeJob(int(d.uvarint()))
		case msgMapTask:
			w.wg.Add(1)
			go w.runMap(payload)
		case msgReduceTask:
			// Decoded (and its source registered) synchronously, so pushes
			// read off this same loop afterwards always find the source.
			w.startReduce(payload)
		case msgSegPush:
			w.offer(payload)
		case msgAbort:
			d := &dec{buf: payload}
			id := int(d.uvarint())
			reason := d.str()
			if jb := w.job(id); jb != nil {
				w.failJob(jb, fmt.Errorf("mpexec: job aborted: %s", reason))
			}
		default:
			return fmt.Errorf("mpexec: unexpected message %q from coordinator", typ)
		}
	}
}

// reply sends one frame back, serialized across task goroutines.
func (w *workerState) reply(typ byte, payload []byte) {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	_ = writeMsg(w.conn, typ, payload)
}

// openJob admits one job: resolve its user code and give it a fresh spill
// directory sealed with the job's codec. A failed open latches the job
// aborted, so its tasks error back instead of wedging.
func (w *workerState) openJob(payload []byte) {
	id, name, opts, err := decodeJobStart(payload, w.base)
	if err != nil {
		return // corrupt 'J': the job's tasks will error as unknown
	}
	jb := &wjob{id: id, opts: opts,
		reds: make(map[int]*shuffle.PushSource), early: make(map[int][]mapSegs)}
	if job, ok := w.resolve(name); ok {
		jb.job = job
	} else {
		jb.aborted = fmt.Errorf("mpexec: no job %q in this worker's registry", name)
	}
	if jb.aborted == nil {
		dir, err := dfs.NewRunDirComp("", opts.Compression)
		if err != nil {
			jb.aborted = err
		} else {
			jb.dir = dir
		}
	}
	w.mu.Lock()
	old := w.jobs[id]
	w.jobs[id] = jb
	w.mu.Unlock()
	if old != nil {
		w.reapJob(old, fmt.Errorf("mpexec: job %d superseded", id))
	}
}

// closeJob retires one job: no new tasks can claim it, and once in-flight
// tasks drain its sealed runs are removed from disk.
func (w *workerState) closeJob(id int) {
	w.mu.Lock()
	jb := w.jobs[id]
	delete(w.jobs, id)
	w.mu.Unlock()
	if jb == nil {
		return
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		w.reapJob(jb, fmt.Errorf("mpexec: job %d closed", id))
	}()
}

// reapJob fails a retired job's straggler sources, waits out its tasks,
// drops the job's run files from the run-server (releasing any handles the
// serving cache still holds, so deleting the files below frees the disk
// space too) and removes its spill directory.
func (w *workerState) reapJob(jb *wjob, reason error) {
	w.failJob(jb, reason)
	jb.tasks.Wait()
	w.mu.Lock()
	ids := jb.fileIDs
	jb.fileIDs = nil
	w.mu.Unlock()
	for _, id := range ids {
		w.srv.Unregister(id)
	}
	if jb.dir != nil {
		_ = jb.dir.Close()
	}
}

// job looks up one admitted job (nil when unknown or already closed).
func (w *workerState) job(id int) *wjob {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.jobs[id]
}

// taskJob claims a task slot on one admitted job: the job cannot be reaped
// until the caller's tasks.Done. nil when the job is unknown/closed.
func (w *workerState) taskJob(id int) *wjob {
	w.mu.Lock()
	defer w.mu.Unlock()
	jb := w.jobs[id]
	if jb != nil {
		jb.tasks.Add(1)
	}
	return jb
}

// failJob aborts one job's in-flight reduce sources and fails its future
// reduce tasks fast (map tasks are local work and run to completion
// harmlessly). Other jobs on this worker are untouched.
func (w *workerState) failJob(jb *wjob, err error) {
	w.mu.Lock()
	if jb.aborted == nil {
		jb.aborted = err
	}
	srcs := make([]*shuffle.PushSource, 0, len(jb.reds))
	for _, s := range jb.reds {
		srcs = append(srcs, s)
	}
	w.mu.Unlock()
	for _, s := range srcs {
		s.Fail(err)
	}
}

// offer routes one segment push to its job and partition's in-flight
// source, buffering pushes whose 'R' frame is still in flight (a completed
// map may be routed to a partition in the instant between the coordinator
// registering the reduce task and its 'R' frame hitting the wire).
func (w *workerState) offer(payload []byte) {
	jobID, partition, mapIndex, attempt, segs, err := decodeSegPush(payload)
	if err != nil {
		// A corrupt push's job is unknowable; fail every job rather than
		// park a reduce task forever on an Offer that will not come.
		w.mu.Lock()
		jobs := make([]*wjob, 0, len(w.jobs))
		for _, jb := range w.jobs {
			jobs = append(jobs, jb)
		}
		w.mu.Unlock()
		for _, jb := range jobs {
			w.failJob(jb, fmt.Errorf("mpexec: corrupt segment push: %w", err))
		}
		return
	}
	jb := w.job(jobID)
	if jb == nil {
		return // job already closed: the push is moot
	}
	w.mu.Lock()
	src, ok := jb.reds[partition]
	if !ok {
		jb.early[partition] = append(jb.early[partition], mapSegs{mapIndex: mapIndex, attempt: attempt, segs: segs})
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()
	if err := applyPush(src, mapSegs{mapIndex: mapIndex, attempt: attempt, segs: segs}); err != nil {
		src.Fail(err)
	}
}

// applyPush feeds one routing push into a reduce source: an invalidation
// (attempt -1, the map's owner died) parks fetches of that map until a
// replacement route arrives; anything else offers the attempt's segments
// (the source keeps the highest attempt and ignores stale or duplicate
// routes).
func applyPush(src *shuffle.PushSource, ms mapSegs) error {
	if ms.attempt < 0 {
		src.Invalidate(ms.mapIndex)
		return nil
	}
	return src.Offer(ms.mapIndex, ms.attempt, ms.segs)
}

// runMap executes one shipped map task through the canonical task body. The
// sink tag carries the job and attempt so concurrent jobs — and
// re-executions or clones of a map this worker already ran — cannot collide
// in the job's sealed files.
func (w *workerState) runMap(payload []byte) {
	defer w.wg.Done()
	d := &dec{buf: payload}
	jobID := int(d.uvarint())
	index := int(d.uvarint())
	attempt := int(d.uvarint())
	split := d.records()
	if d.err != nil {
		w.reply(msgError, encodeTaskError(jobID, msgMapDone, index, d.err.Error()))
		return
	}
	jb := w.taskJob(jobID)
	if jb == nil {
		w.reply(msgError, encodeTaskError(jobID, msgMapDone, index, fmt.Sprintf("unknown job %d", jobID)))
		return
	}
	defer jb.tasks.Done()
	w.mu.Lock()
	aborted := jb.aborted
	w.mu.Unlock()
	if aborted != nil {
		w.reply(msgError, encodeTaskError(jobID, msgMapDone, index, aborted.Error()))
		return
	}
	before := jb.dir.SpilledBytes()
	beforeRaw := jb.dir.RawSpilledBytes()
	sink := shuffle.NewRunSink(jb.dir, w.srv, fmt.Sprintf("j%d-m%d-a%d", jobID, index, attempt))
	stats, err := exec.RunMapTask(jb.job, jb.opts, exec.MapTask{Index: index, Attempt: attempt, Split: split}, sink)
	if err != nil {
		w.reply(msgError, encodeTaskError(jobID, msgMapDone, index, err.Error()))
		return
	}
	w.mu.Lock()
	for _, wave := range sink.Waves() {
		jb.fileIDs = append(jb.fileIDs, wave.FileID)
	}
	w.mu.Unlock()
	w.reply(msgMapDone, encodeMapDone(jobID, index, attempt, stats.ShuffleRecords, stats.Spills,
		jb.dir.SpilledBytes()-before, jb.dir.RawSpilledBytes()-beforeRaw, w.srv.Opens(), sink.Waves()))
}

// startReduce decodes one routed reduce task, registers its push source
// (replaying any pushes that arrived early), and runs the canonical task
// body in its own goroutine so the control loop keeps routing pushes.
func (w *workerState) startReduce(payload []byte) {
	jobID, partition, nMaps, routed, err := decodeReduceTask(payload)
	if err != nil {
		w.reply(msgError, encodeTaskError(jobID, msgReduceDone, partition, err.Error()))
		return
	}
	jb := w.taskJob(jobID)
	if jb == nil {
		w.reply(msgError, encodeTaskError(jobID, msgReduceDone, partition, fmt.Sprintf("unknown job %d", jobID)))
		return
	}
	src := shuffle.NewPushSource(nMaps, jb.opts.BatchSize)
	src.SetPool(w.pool, jb.opts.MergeFanIn)
	w.mu.Lock()
	aborted := jb.aborted
	buffered := jb.early[partition]
	delete(jb.early, partition)
	jb.reds[partition] = src
	w.mu.Unlock()
	if aborted != nil {
		// The job already failed; don't park a task on pushes that will
		// never come.
		w.unregister(jb, partition, src)
		jb.tasks.Done()
		w.reply(msgError, encodeTaskError(jobID, msgReduceDone, partition, aborted.Error()))
		return
	}
	for _, ms := range append(routed, buffered...) {
		if err := applyPush(src, ms); err != nil {
			src.Fail(err)
			break
		}
	}
	w.wg.Add(1)
	go w.runReduce(jb, partition, src)
}

// unregister drops a finished reduce task's source — only if it still owns
// the slot, so a straggler cannot deregister a later task for the same
// partition.
func (w *workerState) unregister(jb *wjob, partition int, src *shuffle.PushSource) {
	w.mu.Lock()
	if jb.reds[partition] == src {
		delete(jb.reds, partition)
	}
	w.mu.Unlock()
}

// runReduce executes one reduce task through the canonical task body,
// fetching segments from the owning workers' run-servers as their routes
// arrive. Callers have already claimed the job's task slot.
func (w *workerState) runReduce(jb *wjob, partition int, src *shuffle.PushSource) {
	defer w.wg.Done()
	defer jb.tasks.Done()
	defer w.unregister(jb, partition, src)
	before := jb.dir.SpilledBytes()
	beforeRaw := jb.dir.RawSpilledBytes()
	res, err := exec.RunReduceTask(jb.job, jb.opts, exec.ReduceTask{Partition: partition}, src, jb.dir)
	_ = src.Close()
	if err != nil {
		w.reply(msgError, encodeTaskError(jb.id, msgReduceDone, partition, err.Error()))
		return
	}
	b := binary.AppendUvarint(nil, uint64(jb.id))
	b = binary.AppendUvarint(b, uint64(partition))
	b = binary.AppendUvarint(b, uint64(res.Spills))
	b = binary.AppendUvarint(b, uint64(res.PeakPartialBytes))
	b = binary.AppendUvarint(b, uint64(res.MergePasses))
	b = binary.AppendUvarint(b, uint64(jb.dir.SpilledBytes()-before))
	b = binary.AppendUvarint(b, uint64(jb.dir.RawSpilledBytes()-beforeRaw))
	b = binary.AppendUvarint(b, uint64(res.FetchBytes))
	b = binary.AppendUvarint(b, uint64(w.pool.Dials()))
	b = binary.AppendUvarint(b, uint64(w.srv.Opens()))
	b = putRecords(b, res.Output)
	w.reply(msgReduceDone, b)
}
