package mpexec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"

	"blmr/internal/dfs"
	"blmr/internal/exec"
	"blmr/internal/shuffle"
)

// Serve is a worker process's main loop: dial the coordinator, start a
// run-server over a fresh local spill directory, register, and execute
// tasks until the coordinator says bye or the connection ends. job must be
// the same user code the driver was configured with (both sides of the
// multi-process mode are launched from the same binary and flags); opts
// carry the task-body knobs (mode, reducers, spill budget, merge fan-in).
//
// Map tasks seal every output wave into the local run directory and
// register it with the run-server; reduce tasks fetch their partition's
// segments from whichever workers' servers hold them. All spill files are
// removed when Serve returns.
func Serve(coordAddr string, job exec.Job, opts exec.Options) error {
	opts.Transport = shuffle.TCP // workers always exchange sealed runs
	opts.Normalize()
	conn, err := net.Dial("tcp", coordAddr)
	if err != nil {
		return fmt.Errorf("mpexec: dial coordinator %s: %w", coordAddr, err)
	}
	defer conn.Close()
	dir, err := dfs.NewRunDirComp("", opts.Compression)
	if err != nil {
		return err
	}
	defer dir.Close()
	srv, err := shuffle.NewServer()
	if err != nil {
		return err
	}
	defer srv.Close()
	if err := writeMsg(conn, msgHello, putStr(nil, srv.Addr())); err != nil {
		return fmt.Errorf("mpexec: register: %w", err)
	}

	br := bufio.NewReader(conn)
	for {
		typ, payload, err := readMsg(br)
		if err != nil {
			return nil // coordinator gone: a worker's exit signal
		}
		switch typ {
		case msgBye:
			return nil
		case msgMapTask:
			reply, err := runMap(payload, job, opts, dir, srv)
			if err != nil {
				if werr := writeMsg(conn, msgError, putStr(nil, err.Error())); werr != nil {
					return werr
				}
				continue
			}
			if err := writeMsg(conn, msgMapDone, reply); err != nil {
				return err
			}
		case msgReduceTask:
			reply, err := runReduce(payload, job, opts, dir)
			if err != nil {
				if werr := writeMsg(conn, msgError, putStr(nil, err.Error())); werr != nil {
					return werr
				}
				continue
			}
			if err := writeMsg(conn, msgReduceDone, reply); err != nil {
				return err
			}
		default:
			return fmt.Errorf("mpexec: unexpected message %q from coordinator", typ)
		}
	}
}

// runMap executes one shipped map task through the canonical task body.
func runMap(payload []byte, job exec.Job, opts exec.Options, dir *dfs.RunDir, srv *shuffle.Server) ([]byte, error) {
	d := &dec{buf: payload}
	index := int(d.uvarint())
	split := d.records()
	if d.err != nil {
		return nil, d.err
	}
	before := dir.SpilledBytes()
	beforeRaw := dir.RawSpilledBytes()
	sink := shuffle.NewRunSink(dir, srv, fmt.Sprintf("m%d", index))
	stats, err := exec.RunMapTask(job, opts, exec.MapTask{Index: index, Split: split}, sink)
	if err != nil {
		return nil, err
	}
	return encodeMapDone(index, stats.ShuffleRecords, stats.Spills,
		dir.SpilledBytes()-before, dir.RawSpilledBytes()-beforeRaw, sink.Waves()), nil
}

// runReduce executes one routed reduce task through the canonical task
// body, fetching segments from the owning workers' run-servers.
func runReduce(payload []byte, job exec.Job, opts exec.Options, dir *dfs.RunDir) ([]byte, error) {
	partition, segs, err := decodeReduceTask(payload)
	if err != nil {
		return nil, err
	}
	before := dir.SpilledBytes()
	beforeRaw := dir.RawSpilledBytes()
	src := shuffle.NewStaticSegmentSource(segs, opts.BatchSize)
	defer src.Close()
	res, err := exec.RunReduceTask(job, opts, exec.ReduceTask{Partition: partition}, src, dir)
	if err != nil {
		return nil, err
	}
	b := binary.AppendUvarint(nil, uint64(partition))
	b = binary.AppendUvarint(b, uint64(res.Spills))
	b = binary.AppendUvarint(b, uint64(res.PeakPartialBytes))
	b = binary.AppendUvarint(b, uint64(res.MergePasses))
	b = binary.AppendUvarint(b, uint64(dir.SpilledBytes()-before))
	b = binary.AppendUvarint(b, uint64(dir.RawSpilledBytes()-beforeRaw))
	b = binary.AppendUvarint(b, uint64(res.FetchBytes))
	b = putRecords(b, res.Output)
	return b, nil
}
