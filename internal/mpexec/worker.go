package mpexec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"blmr/internal/dfs"
	"blmr/internal/exec"
	"blmr/internal/retry"
	"blmr/internal/shuffle"
)

// Serve is a worker process's main loop: dial the coordinator, start a
// run-server over a fresh local spill directory, register, and execute
// tasks until the coordinator says bye or the connection ends. job must be
// the same user code the driver was configured with (both sides of the
// multi-process mode are launched from the same binary and flags); opts
// carry the task-body knobs (mode, reducers, spill budget, merge fan-in).
//
// Tasks run concurrently: the read loop dispatches each map and reduce
// task to its own goroutine (the coordinator bounds concurrency with its
// slot counts) and keeps routing 'S' segment pushes to in-flight reduce
// sources, so a reduce task fetches and consumes sealed runs while this
// worker — and every other — is still mapping. Section fetches from peer
// run-servers go through one shared FetchPool: one multiplexed connection
// per peer, reused across sections and tasks.
//
// Map tasks seal every output wave into the local run directory and
// register it with the run-server; reduce tasks fetch their partition's
// segments from whichever workers' servers hold them. All spill files are
// removed when Serve returns.
func Serve(coordAddr string, job exec.Job, opts exec.Options) error {
	opts.Transport = shuffle.TCP // workers always exchange sealed runs
	opts.Normalize()
	// Transient connect failures (the coordinator's listener racing worker
	// spawn, a briefly saturated backlog) are absorbed by a capped
	// exponential backoff instead of failing the worker outright.
	conn, err := retry.Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second, Attempts: 8}.
		Dial("tcp", coordAddr)
	if err != nil {
		return fmt.Errorf("mpexec: dial coordinator %s: %w", coordAddr, err)
	}
	defer conn.Close()
	dir, err := dfs.NewRunDirComp("", opts.Compression)
	if err != nil {
		return err
	}
	defer dir.Close()
	srv, advertise, err := runServerFor(coordAddr, conn)
	if err != nil {
		return err
	}
	defer srv.Close()
	pool := shuffle.NewFetchPool()
	defer pool.Close()
	hello := putStr(nil, advertise)
	hello = putStr(hello, fmt.Sprintf("w-%d", os.Getpid()))
	if err := writeMsg(conn, msgHello, hello); err != nil {
		return fmt.Errorf("mpexec: register: %w", err)
	}

	w := &workerState{conn: conn, job: job, opts: opts, dir: dir, srv: srv, pool: pool,
		reds: make(map[int]*shuffle.PushSource), early: make(map[int][]mapSegs)}
	// Heartbeats prove liveness through long silent stretches (a big map
	// split, a reduce parked on routes); the coordinator declares a worker
	// dead after four missed intervals.
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(opts.HeartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				w.reply(msgHeartbeat, nil)
			}
		}
	}()
	err = w.loop(bufio.NewReader(conn))
	close(hbStop)
	hbWG.Wait()
	// The control plane is gone (bye, coordinator exit, or a protocol
	// error): fail any still-running reduce sources so their tasks unwind,
	// then wait for every task goroutine before the deferred teardown
	// closes the directory, server and pool they use.
	w.failAll(fmt.Errorf("mpexec: coordinator connection closed"))
	w.wg.Wait()
	return err
}

// runServerFor starts the worker's run-server and derives the address peers
// should dial. On a loopback control plane (the local-cluster default) the
// server binds loopback and advertises its literal address. When the
// coordinator is remote, the server binds every interface and advertises
// the host the control connection uses — the one address peers provably
// can route to this machine.
func runServerFor(coordAddr string, conn net.Conn) (*shuffle.Server, string, error) {
	host, _, err := net.SplitHostPort(coordAddr)
	ip := net.ParseIP(host)
	loopback := err == nil && (host == "localhost" || (ip != nil && ip.IsLoopback()))
	if loopback {
		srv, err := shuffle.NewServer()
		if err != nil {
			return nil, "", err
		}
		return srv, srv.Addr(), nil
	}
	srv, err := shuffle.NewServerOn(":0")
	if err != nil {
		return nil, "", err
	}
	localHost, _, err := net.SplitHostPort(conn.LocalAddr().String())
	if err != nil {
		_ = srv.Close()
		return nil, "", fmt.Errorf("mpexec: derive advertised host: %w", err)
	}
	_, port, err := net.SplitHostPort(srv.Addr())
	if err != nil {
		_ = srv.Close()
		return nil, "", fmt.Errorf("mpexec: derive run-server port: %w", err)
	}
	return srv, net.JoinHostPort(localHost, port), nil
}

// workerState is one Serve invocation's shared state.
type workerState struct {
	conn net.Conn
	job  exec.Job
	opts exec.Options
	dir  *dfs.RunDir
	srv  *shuffle.Server
	pool *shuffle.FetchPool

	wmu sync.Mutex // serializes reply/error frame writes
	wg  sync.WaitGroup

	mu      sync.Mutex
	reds    map[int]*shuffle.PushSource // partition -> in-flight reduce source
	early   map[int][]mapSegs           // pushes that raced ahead of their 'R'
	aborted error                       // set by 'F': fail new reduce tasks fast
}

// loop dispatches control frames until the connection ends. A nil return
// is a clean exit (bye or coordinator gone).
func (w *workerState) loop(br *bufio.Reader) error {
	for {
		typ, payload, err := readMsg(br)
		if err != nil {
			return nil // coordinator gone: a worker's exit signal
		}
		switch typ {
		case msgBye:
			return nil
		case msgJobStart:
			w.resetJob()
		case msgMapTask:
			w.wg.Add(1)
			go w.runMap(payload)
		case msgReduceTask:
			// Decoded (and its source registered) synchronously, so pushes
			// read off this same loop afterwards always find the source.
			w.startReduce(payload)
		case msgSegPush:
			w.offer(payload)
		case msgAbort:
			d := &dec{buf: payload}
			w.failAll(fmt.Errorf("mpexec: job aborted: %s", d.str()))
		default:
			return fmt.Errorf("mpexec: unexpected message %q from coordinator", typ)
		}
	}
}

// reply sends one frame back, serialized across task goroutines.
func (w *workerState) reply(typ byte, payload []byte) {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	_ = writeMsg(w.conn, typ, payload)
}

// resetJob clears the per-job state a previous job on this worker pool may
// have left: a latched abort and pushes buffered for reduce tasks that
// never materialized. Any straggler reduce source is failed first (none
// should exist — the coordinator's scheduler settles every task before Run
// returns), so one pool serves sequential jobs without cross-talk.
func (w *workerState) resetJob() {
	w.failAll(fmt.Errorf("mpexec: superseded by a new job"))
	w.mu.Lock()
	w.aborted = nil
	w.early = make(map[int][]mapSegs)
	w.mu.Unlock()
}

// failAll aborts every in-flight reduce source and fails future reduce
// tasks fast (map tasks are local work and run to completion harmlessly).
func (w *workerState) failAll(err error) {
	w.mu.Lock()
	if w.aborted == nil {
		w.aborted = err
	}
	srcs := make([]*shuffle.PushSource, 0, len(w.reds))
	for _, s := range w.reds {
		srcs = append(srcs, s)
	}
	w.mu.Unlock()
	for _, s := range srcs {
		s.Fail(err)
	}
}

// offer routes one segment push to its partition's in-flight source,
// buffering pushes whose 'R' frame is still in flight (a completed map may
// be routed to a partition in the instant between the coordinator
// registering the reduce task and its 'R' frame hitting the wire).
func (w *workerState) offer(payload []byte) {
	partition, mapIndex, attempt, segs, err := decodeSegPush(payload)
	if err != nil {
		// A corrupt push means the partition's routing table can never be
		// sealed; fail every in-flight reduce source so the job errors
		// instead of parking forever on an Offer that will not come.
		w.failAll(fmt.Errorf("mpexec: corrupt segment push: %w", err))
		return
	}
	w.mu.Lock()
	src, ok := w.reds[partition]
	if !ok {
		w.early[partition] = append(w.early[partition], mapSegs{mapIndex: mapIndex, attempt: attempt, segs: segs})
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()
	if err := applyPush(src, mapSegs{mapIndex: mapIndex, attempt: attempt, segs: segs}); err != nil {
		src.Fail(err)
	}
}

// applyPush feeds one routing push into a reduce source: an invalidation
// (attempt -1, the map's owner died) parks fetches of that map until a
// replacement route arrives; anything else offers the attempt's segments
// (the source keeps the highest attempt and ignores stale or duplicate
// routes).
func applyPush(src *shuffle.PushSource, ms mapSegs) error {
	if ms.attempt < 0 {
		src.Invalidate(ms.mapIndex)
		return nil
	}
	return src.Offer(ms.mapIndex, ms.attempt, ms.segs)
}

// runMap executes one shipped map task through the canonical task body. The
// sink tag carries the attempt so a re-execution or clone of a map this
// worker already ran cannot collide with the earlier attempt's sealed
// files.
func (w *workerState) runMap(payload []byte) {
	defer w.wg.Done()
	d := &dec{buf: payload}
	index := int(d.uvarint())
	attempt := int(d.uvarint())
	split := d.records()
	if d.err != nil {
		w.reply(msgError, encodeTaskError(msgMapDone, index, d.err.Error()))
		return
	}
	before := w.dir.SpilledBytes()
	beforeRaw := w.dir.RawSpilledBytes()
	sink := shuffle.NewRunSink(w.dir, w.srv, fmt.Sprintf("m%d-a%d", index, attempt))
	stats, err := exec.RunMapTask(w.job, w.opts, exec.MapTask{Index: index, Attempt: attempt, Split: split}, sink)
	if err != nil {
		w.reply(msgError, encodeTaskError(msgMapDone, index, err.Error()))
		return
	}
	w.reply(msgMapDone, encodeMapDone(index, attempt, stats.ShuffleRecords, stats.Spills,
		w.dir.SpilledBytes()-before, w.dir.RawSpilledBytes()-beforeRaw, sink.Waves()))
}

// startReduce decodes one routed reduce task, registers its push source
// (replaying any pushes that arrived early), and runs the canonical task
// body in its own goroutine so the control loop keeps routing pushes.
func (w *workerState) startReduce(payload []byte) {
	partition, nMaps, routed, err := decodeReduceTask(payload)
	if err != nil {
		w.reply(msgError, encodeTaskError(msgReduceDone, partition, err.Error()))
		return
	}
	src := shuffle.NewPushSource(nMaps, w.opts.BatchSize)
	src.SetPool(w.pool, w.opts.MergeFanIn)
	w.mu.Lock()
	aborted := w.aborted
	buffered := w.early[partition]
	delete(w.early, partition)
	w.reds[partition] = src
	w.mu.Unlock()
	if aborted != nil {
		// The job already failed; don't park a task on pushes that will
		// never come.
		w.unregister(partition, src)
		w.reply(msgError, encodeTaskError(msgReduceDone, partition, aborted.Error()))
		return
	}
	for _, ms := range append(routed, buffered...) {
		if err := applyPush(src, ms); err != nil {
			src.Fail(err)
			break
		}
	}
	w.wg.Add(1)
	go w.runReduce(partition, src)
}

// unregister drops a finished reduce task's source — only if it still owns
// the slot, so a straggler from an aborted job cannot deregister a later
// job's task for the same partition.
func (w *workerState) unregister(partition int, src *shuffle.PushSource) {
	w.mu.Lock()
	if w.reds[partition] == src {
		delete(w.reds, partition)
	}
	w.mu.Unlock()
}

// runReduce executes one reduce task through the canonical task body,
// fetching segments from the owning workers' run-servers as their routes
// arrive.
func (w *workerState) runReduce(partition int, src *shuffle.PushSource) {
	defer w.wg.Done()
	defer w.unregister(partition, src)
	before := w.dir.SpilledBytes()
	beforeRaw := w.dir.RawSpilledBytes()
	res, err := exec.RunReduceTask(w.job, w.opts, exec.ReduceTask{Partition: partition}, src, w.dir)
	_ = src.Close()
	if err != nil {
		w.reply(msgError, encodeTaskError(msgReduceDone, partition, err.Error()))
		return
	}
	b := binary.AppendUvarint(nil, uint64(partition))
	b = binary.AppendUvarint(b, uint64(res.Spills))
	b = binary.AppendUvarint(b, uint64(res.PeakPartialBytes))
	b = binary.AppendUvarint(b, uint64(res.MergePasses))
	b = binary.AppendUvarint(b, uint64(w.dir.SpilledBytes()-before))
	b = binary.AppendUvarint(b, uint64(w.dir.RawSpilledBytes()-beforeRaw))
	b = binary.AppendUvarint(b, uint64(res.FetchBytes))
	b = binary.AppendUvarint(b, uint64(w.pool.Dials()))
	b = putRecords(b, res.Output)
	w.reply(msgReduceDone, b)
}
