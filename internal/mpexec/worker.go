package mpexec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"blmr/internal/dfs"
	"blmr/internal/exec"
	"blmr/internal/retry"
	"blmr/internal/shuffle"
)

// JobResolver maps a job's registry name (exec.Job.Name, shipped in the 'J'
// frame) to the user code a worker should run for it. Both sides of the
// multi-process mode are launched from the same binary, so the resolver is
// how a multi-tenant worker pool serves heterogeneous jobs: the coordinator
// ships the name and the option subset, the worker supplies the functions.
type JobResolver func(name string) (exec.Job, bool)

// errCoordLost marks task failures caused by losing the control connection
// (coordinator crash or restart) rather than by the task itself. Tasks
// failed with it produce no 'E' frame: the coordinator that dispatched them
// is gone, and its successor will re-dispatch.
var errCoordLost = errors.New("mpexec: coordinator connection lost")

// reconnectPolicy paces re-dials after a dropped control connection. The
// budget is generous (~a minute at the cap) because the common cause is a
// coordinator restart: the worker's sealed runs are exactly what the
// restarted coordinator wants to re-attach, so patience is cheap and
// re-execution is not.
var reconnectPolicy = retry.Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second, Attempts: 36}

// Serve is a worker process's main loop for a single-app pool: every job
// the coordinator opens resolves to the given user code, whatever its name.
// See ServeJobs for the general form.
func Serve(coordAddr string, job exec.Job, opts exec.Options) error {
	return ServeJobs(coordAddr, func(string) (exec.Job, bool) { return job, true }, opts)
}

// ServeJobs is a worker process's main loop: dial the coordinator, start a
// run-server, register, and execute tasks until the coordinator says bye.
// base carries worker-local knobs (heartbeat interval, spill directory); the
// task-body options that must match the coordinator (mode, partition count,
// spill budget, codec, ...) arrive per job in the 'J' frame, so one pool
// serves concurrent heterogeneous jobs.
//
// Every admitted job gets its own state: a fresh spill directory (sealed
// with the job's codec, removed when the job closes), its own reduce
// sources and buffered pushes, and its own latched abort — concurrent jobs
// on one worker cannot cross-talk. Tasks of all jobs run concurrently: the
// read loop dispatches each map and reduce task to its own goroutine (the
// coordinator bounds concurrency with per-job slot shares and the cross-job
// slot pool) and keeps routing 'S' segment pushes to in-flight reduce
// sources. Section fetches from peer run-servers go through one shared
// FetchPool: one multiplexed connection per peer, reused across sections,
// tasks and jobs.
//
// A dropped control connection does not kill the worker: the run-server,
// spill directories and sealed runs stay alive while the worker re-dials
// under a capped backoff, and each (re-)registration advertises the sealed
// files still verifiably on disk (the 'A' frame) so a restarted coordinator
// can re-attach completed maps instead of re-executing them. Only a 'B'
// bye — or exhausting the reconnect budget — ends the loop.
func ServeJobs(coordAddr string, resolve JobResolver, base exec.Options) error {
	base.Transport = shuffle.TCP // workers always exchange sealed runs
	base.Normalize()
	w := &workerState{resolve: resolve, base: base,
		name: fmt.Sprintf("w-%d", os.Getpid()), jobs: make(map[int]*wjob)}
	defer w.teardown()
	// Transient connect failures (the coordinator's listener racing worker
	// spawn, a briefly saturated backlog) are absorbed by a capped
	// exponential backoff instead of failing the worker outright.
	pol := retry.Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second, Attempts: 8}
	for {
		conn, err := pol.Dial("tcp", coordAddr)
		if err != nil {
			return fmt.Errorf("mpexec: dial coordinator %s: %w", coordAddr, err)
		}
		bye, err := w.serveConn(coordAddr, conn)
		if err != nil || bye {
			return err
		}
		// The connection dropped without a bye — a coordinator crash,
		// restart, or network fault. Keep every job's sealed state and
		// re-dial; a restarted coordinator re-attaches what survived.
		pol = reconnectPolicy
	}
}

// serveConn runs one control-connection session: register (hello plus the
// sealed-run advertisement), serve frames, and on connection loss reset the
// per-connection state while keeping job state alive for re-attach.
// bye=true is a clean coordinator-initiated exit; a non-nil error is fatal
// to the worker (protocol violation or failed bootstrap).
func (w *workerState) serveConn(coordAddr string, conn net.Conn) (bye bool, err error) {
	defer conn.Close()
	if w.srv == nil { // first connection: bootstrap the data plane once
		srv, advertise, err := runServerFor(coordAddr, conn)
		if err != nil {
			return false, err
		}
		w.srv, w.advertise = srv, advertise
		w.pool = shuffle.NewFetchPool()
		w.pool.DecodeWorkers = w.base.DecodeWorkers
	}
	hello := putStr(nil, w.advertise)
	hello = putStr(hello, w.name)
	if err := writeMsg(conn, msgHello, hello); err != nil {
		return false, nil // connection already dead: re-dial
	}
	if err := writeMsg(conn, msgReattach, encodeReattach(w.survivingRuns())); err != nil {
		return false, nil
	}
	epoch := w.install(conn)
	// Heartbeats prove liveness through long silent stretches (a big map
	// split, a reduce parked on routes); the coordinator declares a worker
	// dead after four missed intervals.
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(w.base.HeartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				w.reply(epoch, msgHeartbeat, nil)
			}
		}
	}()
	bye, err = w.loop(bufio.NewReader(conn), epoch)
	close(hbStop)
	hbWG.Wait()
	w.dropConn()
	return bye, err
}

// runServerFor starts the worker's run-server and derives the address peers
// should dial. On a loopback control plane (the local-cluster default) the
// server binds loopback and advertises its literal address. When the
// coordinator is remote, the server binds every interface and advertises
// the host the control connection uses — the one address peers provably
// can route to this machine.
func runServerFor(coordAddr string, conn net.Conn) (*shuffle.Server, string, error) {
	host, _, err := net.SplitHostPort(coordAddr)
	ip := net.ParseIP(host)
	loopback := err == nil && (host == "localhost" || (ip != nil && ip.IsLoopback()))
	if loopback {
		srv, err := shuffle.NewServer()
		if err != nil {
			return nil, "", err
		}
		return srv, srv.Addr(), nil
	}
	srv, err := shuffle.NewServerOn(":0")
	if err != nil {
		return nil, "", err
	}
	localHost, _, err := net.SplitHostPort(conn.LocalAddr().String())
	if err != nil {
		_ = srv.Close()
		return nil, "", fmt.Errorf("mpexec: derive advertised host: %w", err)
	}
	_, port, err := net.SplitHostPort(srv.Addr())
	if err != nil {
		_ = srv.Close()
		return nil, "", fmt.Errorf("mpexec: derive run-server port: %w", err)
	}
	return srv, net.JoinHostPort(localHost, port), nil
}

// workerState is one ServeJobs invocation's shared state. The run-server,
// fetch pool and admitted jobs outlive any single control connection; conn
// and epoch are per-connection, and replies stamped with a stale epoch are
// dropped (a task dispatched by a dead coordinator must not leak its reply
// into the successor's session, where task identities restart).
type workerState struct {
	resolve   JobResolver
	base      exec.Options
	name      string
	advertise string
	srv       *shuffle.Server
	pool      *shuffle.FetchPool

	wmu   sync.Mutex // serializes reply writes; guards conn + epoch
	conn  net.Conn
	epoch int

	wg sync.WaitGroup

	mu   sync.Mutex
	jobs map[int]*wjob // job id -> its state (w.mu guards wjob maps too)
}

// wjob is one admitted job's worker-side state.
type wjob struct {
	id   int
	job  exec.Job
	opts exec.Options
	dir  *dfs.RunDir

	reds    map[int]*shuffle.PushSource // partition -> in-flight reduce source
	early   map[int][]mapSegs           // pushes that raced ahead of their 'R'
	aborted error                       // set by 'F' (or a failed open): fail tasks fast
	tasks   sync.WaitGroup              // in-flight tasks of this job
	sealed  []sealedFile                // run files registered with the run-server (+ seal CRCs)
}

// install binds a new control connection and returns its epoch.
func (w *workerState) install(conn net.Conn) int {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	w.conn = conn
	return w.epoch
}

// dropConn retires the current connection: the epoch advances so straggler
// task replies are dropped, and in-flight reduce sources fail with
// errCoordLost so their tasks unwind (the dispatching coordinator is gone;
// its successor re-dispatches). Job state — spill dirs, sealed runs,
// resolved user code — survives for re-attach.
func (w *workerState) dropConn() {
	w.wmu.Lock()
	w.conn = nil
	w.epoch++
	w.wmu.Unlock()
	w.mu.Lock()
	var srcs []*shuffle.PushSource
	for _, jb := range w.jobs {
		for _, s := range jb.reds {
			srcs = append(srcs, s)
		}
		jb.reds = make(map[int]*shuffle.PushSource)
		jb.early = make(map[int][]mapSegs)
	}
	w.mu.Unlock()
	for _, s := range srcs {
		s.Fail(errCoordLost)
	}
}

// survivingRuns scans every job's sealed runs on disk, re-checksumming each
// file, and returns the verified survivors — the 'A' advertisement. A file
// that disappeared or no longer matches its seal-time CRC is silently
// omitted (its map will simply re-execute).
func (w *workerState) survivingRuns() map[int][]sealedFile {
	w.mu.Lock()
	type jobFiles struct {
		id    int
		files []sealedFile
	}
	var snap []jobFiles
	for id, jb := range w.jobs {
		snap = append(snap, jobFiles{id: id, files: append([]sealedFile(nil), jb.sealed...)})
	}
	w.mu.Unlock()
	out := make(map[int][]sealedFile)
	for _, jf := range snap {
		for _, f := range jf.files {
			path, ok := w.srv.PathOf(f.fileID)
			if !ok {
				continue
			}
			crc, err := dfs.CRCFile(path)
			if err != nil || crc != f.crc {
				continue
			}
			out[jf.id] = append(out[jf.id], f)
		}
	}
	return out
}

// teardown is the worker's final cleanup, after the serve loop has ended
// for good: fail whatever is still in flight, wait out every task
// goroutine, then release files, directories, server and pool.
func (w *workerState) teardown() {
	w.mu.Lock()
	jobs := make([]*wjob, 0, len(w.jobs))
	for _, jb := range w.jobs {
		jobs = append(jobs, jb)
	}
	w.jobs = make(map[int]*wjob)
	w.mu.Unlock()
	for _, jb := range jobs {
		w.failJob(jb, errCoordLost)
	}
	w.wg.Wait()
	for _, jb := range jobs {
		if w.srv != nil {
			for _, f := range jb.sealed {
				w.srv.Unregister(f.fileID)
			}
		}
		if jb.dir != nil {
			_ = jb.dir.Close()
		}
	}
	if w.pool != nil {
		w.pool.Close()
	}
	if w.srv != nil {
		_ = w.srv.Close()
	}
}

// loop dispatches control frames until the connection ends: bye=true for a
// coordinator-initiated 'B', bye=false with a nil error when the connection
// dropped (the caller re-dials), and a non-nil error on protocol violation.
func (w *workerState) loop(br *bufio.Reader, epoch int) (bye bool, err error) {
	for {
		typ, payload, err := readMsg(br)
		if err != nil {
			return false, nil // connection gone: re-dial
		}
		switch typ {
		case msgBye:
			return true, nil
		case msgJobStart:
			w.openJob(payload)
		case msgJobEnd:
			d := &dec{buf: payload}
			w.closeJob(int(d.uvarint()))
		case msgMapTask:
			w.wg.Add(1)
			go w.runMap(epoch, payload)
		case msgReduceTask:
			// Decoded (and its source registered) synchronously, so pushes
			// read off this same loop afterwards always find the source.
			w.startReduce(epoch, payload)
		case msgSegPush:
			w.offer(payload)
		case msgAbort:
			d := &dec{buf: payload}
			id := int(d.uvarint())
			reason := d.str()
			if jb := w.job(id); jb != nil {
				w.failJob(jb, fmt.Errorf("mpexec: job aborted: %s", reason))
			}
		default:
			return false, fmt.Errorf("mpexec: unexpected message %q from coordinator", typ)
		}
	}
}

// reply sends one frame back, serialized across task goroutines. A reply
// stamped with a stale epoch — its task was dispatched over a connection
// that has since died — is dropped: the restarted coordinator reuses task
// identities, and a stray frame could be mistaken for one of its own.
func (w *workerState) reply(epoch int, typ byte, payload []byte) {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	if epoch != w.epoch || w.conn == nil {
		return
	}
	_ = writeMsg(w.conn, typ, payload)
}

// openJob admits one job: resolve its user code and give it a fresh spill
// directory sealed with the job's codec. A failed open latches the job
// aborted, so its tasks error back instead of wedging. A 'J' for a job this
// worker already holds is a re-open after a coordinator restart: the sealed
// outputs are kept (they are what re-attach recovers) and only the
// per-session control state resets.
func (w *workerState) openJob(payload []byte) {
	id, name, opts, err := decodeJobStart(payload, w.base)
	if err != nil {
		return // corrupt 'J': the job's tasks will error as unknown
	}
	w.mu.Lock()
	if jb := w.jobs[id]; jb != nil {
		srcs := make([]*shuffle.PushSource, 0, len(jb.reds))
		for _, s := range jb.reds {
			srcs = append(srcs, s)
		}
		jb.reds = make(map[int]*shuffle.PushSource)
		jb.early = make(map[int][]mapSegs)
		jb.aborted = nil
		jb.opts = opts
		w.mu.Unlock()
		for _, s := range srcs {
			s.Fail(errCoordLost)
		}
		return
	}
	w.mu.Unlock()
	jb := &wjob{id: id, opts: opts,
		reds: make(map[int]*shuffle.PushSource), early: make(map[int][]mapSegs)}
	if job, ok := w.resolve(name); ok {
		jb.job = job
	} else {
		jb.aborted = fmt.Errorf("mpexec: no job %q in this worker's registry", name)
	}
	if jb.aborted == nil {
		dir, err := dfs.NewRunDirComp("", opts.Compression)
		if err != nil {
			jb.aborted = err
		} else {
			jb.dir = dir
		}
	}
	w.mu.Lock()
	w.jobs[id] = jb
	w.mu.Unlock()
}

// closeJob retires one job: no new tasks can claim it, and once in-flight
// tasks drain its sealed runs are removed from disk.
func (w *workerState) closeJob(id int) {
	w.mu.Lock()
	jb := w.jobs[id]
	delete(w.jobs, id)
	w.mu.Unlock()
	if jb == nil {
		return
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		w.reapJob(jb, fmt.Errorf("mpexec: job %d closed", id))
	}()
}

// reapJob fails a retired job's straggler sources, waits out its tasks,
// drops the job's run files from the run-server (releasing any handles the
// serving cache still holds, so deleting the files below frees the disk
// space too) and removes its spill directory.
func (w *workerState) reapJob(jb *wjob, reason error) {
	w.failJob(jb, reason)
	jb.tasks.Wait()
	w.mu.Lock()
	sealed := jb.sealed
	jb.sealed = nil
	w.mu.Unlock()
	for _, f := range sealed {
		w.srv.Unregister(f.fileID)
	}
	if jb.dir != nil {
		_ = jb.dir.Close()
	}
}

// job looks up one admitted job (nil when unknown or already closed).
func (w *workerState) job(id int) *wjob {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.jobs[id]
}

// taskJob claims a task slot on one admitted job: the job cannot be reaped
// until the caller's tasks.Done. nil when the job is unknown/closed.
func (w *workerState) taskJob(id int) *wjob {
	w.mu.Lock()
	defer w.mu.Unlock()
	jb := w.jobs[id]
	if jb != nil {
		jb.tasks.Add(1)
	}
	return jb
}

// failJob aborts one job's in-flight reduce sources and fails its future
// reduce tasks fast (map tasks are local work and run to completion
// harmlessly). Other jobs on this worker are untouched.
func (w *workerState) failJob(jb *wjob, err error) {
	w.mu.Lock()
	if jb.aborted == nil {
		jb.aborted = err
	}
	srcs := make([]*shuffle.PushSource, 0, len(jb.reds))
	for _, s := range jb.reds {
		srcs = append(srcs, s)
	}
	w.mu.Unlock()
	for _, s := range srcs {
		s.Fail(err)
	}
}

// offer routes one segment push to its job and partition's in-flight
// source, buffering pushes whose 'R' frame is still in flight (a completed
// map may be routed to a partition in the instant between the coordinator
// registering the reduce task and its 'R' frame hitting the wire).
func (w *workerState) offer(payload []byte) {
	jobID, partition, mapIndex, attempt, segs, err := decodeSegPush(payload)
	if err != nil {
		// A corrupt push's job is unknowable; fail every job rather than
		// park a reduce task forever on an Offer that will not come.
		w.mu.Lock()
		jobs := make([]*wjob, 0, len(w.jobs))
		for _, jb := range w.jobs {
			jobs = append(jobs, jb)
		}
		w.mu.Unlock()
		for _, jb := range jobs {
			w.failJob(jb, fmt.Errorf("mpexec: corrupt segment push: %w", err))
		}
		return
	}
	jb := w.job(jobID)
	if jb == nil {
		return // job already closed: the push is moot
	}
	w.mu.Lock()
	src, ok := jb.reds[partition]
	if !ok {
		jb.early[partition] = append(jb.early[partition], mapSegs{mapIndex: mapIndex, attempt: attempt, segs: segs})
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()
	if err := applyPush(src, mapSegs{mapIndex: mapIndex, attempt: attempt, segs: segs}); err != nil {
		src.Fail(err)
	}
}

// applyPush feeds one routing push into a reduce source: an invalidation
// (attempt -1, the map's owner died) parks fetches of that map until a
// replacement route arrives; anything else offers the attempt's segments
// (the source keeps the highest attempt and ignores stale or duplicate
// routes).
func applyPush(src *shuffle.PushSource, ms mapSegs) error {
	if ms.attempt < 0 {
		src.Invalidate(ms.mapIndex)
		return nil
	}
	return src.Offer(ms.mapIndex, ms.attempt, ms.segs)
}

// runMap executes one shipped map task through the canonical task body. The
// sink tag carries the job and attempt so concurrent jobs — and
// re-executions or clones of a map this worker already ran — cannot collide
// in the job's sealed files.
func (w *workerState) runMap(epoch int, payload []byte) {
	defer w.wg.Done()
	d := &dec{buf: payload}
	jobID := int(d.uvarint())
	index := int(d.uvarint())
	attempt := int(d.uvarint())
	split := d.records()
	if d.err != nil {
		w.reply(epoch, msgError, encodeTaskError(jobID, msgMapDone, index, d.err.Error()))
		return
	}
	jb := w.taskJob(jobID)
	if jb == nil {
		w.reply(epoch, msgError, encodeTaskError(jobID, msgMapDone, index, fmt.Sprintf("unknown job %d", jobID)))
		return
	}
	defer jb.tasks.Done()
	w.mu.Lock()
	aborted := jb.aborted
	w.mu.Unlock()
	if aborted != nil {
		w.reply(epoch, msgError, encodeTaskError(jobID, msgMapDone, index, aborted.Error()))
		return
	}
	before := jb.dir.SpilledBytes()
	beforeRaw := jb.dir.RawSpilledBytes()
	sink := shuffle.NewRunSink(jb.dir, w.srv, fmt.Sprintf("j%d-m%d-a%d", jobID, index, attempt))
	stats, err := exec.RunMapTask(jb.job, jb.opts, exec.MapTask{Index: index, Attempt: attempt, Split: split}, sink)
	if err != nil {
		w.reply(epoch, msgError, encodeTaskError(jobID, msgMapDone, index, err.Error()))
		return
	}
	w.mu.Lock()
	for _, wave := range sink.Waves() {
		jb.sealed = append(jb.sealed, sealedFile{fileID: wave.FileID, crc: wave.CRC})
	}
	w.mu.Unlock()
	w.reply(epoch, msgMapDone, encodeMapDone(jobID, index, attempt, stats.ShuffleRecords, stats.Spills,
		jb.dir.SpilledBytes()-before, jb.dir.RawSpilledBytes()-beforeRaw, w.srv.Opens(), sink.Waves()))
}

// startReduce decodes one routed reduce task, registers its push source
// (replaying any pushes that arrived early), and runs the canonical task
// body in its own goroutine so the control loop keeps routing pushes.
func (w *workerState) startReduce(epoch int, payload []byte) {
	jobID, partition, nMaps, routed, err := decodeReduceTask(payload)
	if err != nil {
		w.reply(epoch, msgError, encodeTaskError(jobID, msgReduceDone, partition, err.Error()))
		return
	}
	jb := w.taskJob(jobID)
	if jb == nil {
		w.reply(epoch, msgError, encodeTaskError(jobID, msgReduceDone, partition, fmt.Sprintf("unknown job %d", jobID)))
		return
	}
	src := shuffle.NewPushSource(nMaps, jb.opts.BatchSize)
	src.SetPool(w.pool, jb.opts.MergeFanIn)
	w.mu.Lock()
	aborted := jb.aborted
	buffered := jb.early[partition]
	delete(jb.early, partition)
	jb.reds[partition] = src
	w.mu.Unlock()
	if aborted != nil {
		// The job already failed; don't park a task on pushes that will
		// never come.
		w.unregister(jb, partition, src)
		jb.tasks.Done()
		w.reply(epoch, msgError, encodeTaskError(jobID, msgReduceDone, partition, aborted.Error()))
		return
	}
	for _, ms := range append(routed, buffered...) {
		if err := applyPush(src, ms); err != nil {
			src.Fail(err)
			break
		}
	}
	w.wg.Add(1)
	go w.runReduce(epoch, jb, partition, src)
}

// unregister drops a finished reduce task's source — only if it still owns
// the slot, so a straggler cannot deregister a later task for the same
// partition.
func (w *workerState) unregister(jb *wjob, partition int, src *shuffle.PushSource) {
	w.mu.Lock()
	if jb.reds[partition] == src {
		delete(jb.reds, partition)
	}
	w.mu.Unlock()
}

// runReduce executes one reduce task through the canonical task body,
// fetching segments from the owning workers' run-servers as their routes
// arrive. Callers have already claimed the job's task slot.
func (w *workerState) runReduce(epoch int, jb *wjob, partition int, src *shuffle.PushSource) {
	defer w.wg.Done()
	defer jb.tasks.Done()
	defer w.unregister(jb, partition, src)
	before := jb.dir.SpilledBytes()
	beforeRaw := jb.dir.RawSpilledBytes()
	res, err := exec.RunReduceTask(jb.job, jb.opts, exec.ReduceTask{Partition: partition}, src, jb.dir)
	_ = src.Close()
	if err != nil {
		if !errors.Is(err, errCoordLost) {
			w.reply(epoch, msgError, encodeTaskError(jb.id, msgReduceDone, partition, err.Error()))
		}
		return
	}
	b := binary.AppendUvarint(nil, uint64(jb.id))
	b = binary.AppendUvarint(b, uint64(partition))
	b = binary.AppendUvarint(b, uint64(res.Spills))
	b = binary.AppendUvarint(b, uint64(res.PeakPartialBytes))
	b = binary.AppendUvarint(b, uint64(res.MergePasses))
	b = binary.AppendUvarint(b, uint64(jb.dir.SpilledBytes()-before))
	b = binary.AppendUvarint(b, uint64(jb.dir.RawSpilledBytes()-beforeRaw))
	b = binary.AppendUvarint(b, uint64(res.FetchBytes))
	b = binary.AppendUvarint(b, uint64(w.pool.Dials()))
	b = binary.AppendUvarint(b, uint64(w.srv.Opens()))
	b = putRecords(b, res.Output)
	w.reply(epoch, msgReduceDone, b)
}
