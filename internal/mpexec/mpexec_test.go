package mpexec_test

// Multi-process execution tests. Worker processes are this test binary
// re-executed with MPEXEC_WORKER set (the standard helper-process pattern),
// so the suite exercises real subprocesses, real TCP control and run-fetch
// traffic, and real worker death — not in-process simulations.

import (
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"testing"
	"time"

	"blmr/internal/apps"
	"blmr/internal/codec"
	"blmr/internal/core"
	blexec "blmr/internal/exec"
	"blmr/internal/mpexec"
	"blmr/internal/mr"
	"blmr/internal/workload"
)

// testJob builds the worker-side job from the environment, mirroring how
// cmd/blmr workers rebuild the job from flags.
func testJob() blexec.Job {
	app := apps.WordCount()
	if os.Getenv("MPEXEC_APP") == "sort" {
		app = apps.Sort()
	}
	job := blexec.Job{Name: app.Name, Mapper: app.Mapper, NewGroup: app.NewGroup,
		NewStream: app.NewStream, Merger: app.Merger}
	if os.Getenv("MPEXEC_SLOW") != "" {
		inner := job.Mapper
		job.Mapper = core.MapperFunc(func(k, v string, emit core.Emitter) {
			time.Sleep(2 * time.Millisecond)
			inner.Map(k, v, emit)
		})
	}
	if os.Getenv("MPEXEC_SLOWRED") != "" && job.NewGroup != nil {
		inner := job.NewGroup
		job.NewGroup = func() core.GroupReducer {
			g := inner()
			return core.GroupReducerFunc(func(key string, values []string, out core.Output) {
				time.Sleep(10 * time.Millisecond)
				g.Reduce(key, values, out)
			})
		}
	}
	return job
}

func testOpts() blexec.Options {
	opts := blexec.Options{Mappers: 4, Reducers: 3}
	if os.Getenv("MPEXEC_MODE") == "pipelined" {
		opts.Mode = blexec.Pipelined
	}
	if os.Getenv("MPEXEC_SPILL") != "" {
		opts.SpillBytes = 8 << 10
	}
	if c := os.Getenv("MPEXEC_COMPRESS"); c != "" {
		comp, err := codec.ParseCompression(c)
		if err != nil {
			panic(err)
		}
		opts.Compression = comp
	}
	if f := os.Getenv("MPEXEC_FANIN"); f != "" {
		n, err := strconv.Atoi(f)
		if err != nil {
			panic(err)
		}
		opts.MergeFanIn = n
	}
	return opts
}

// testResolver is the multi-tenant worker's job registry: every app the
// service tests submit, resolved by name, with the same env-driven
// slowdowns testJob applies.
func testResolver() mpexec.JobResolver {
	reg := map[string]blexec.Job{}
	for _, app := range []apps.App{apps.WordCount(), apps.Sort(), apps.Grep("the")} {
		job := jobFor(app)
		if os.Getenv("MPEXEC_SLOW") != "" {
			inner := job.Mapper
			job.Mapper = core.MapperFunc(func(k, v string, emit core.Emitter) {
				time.Sleep(2 * time.Millisecond)
				inner.Map(k, v, emit)
			})
		}
		reg[app.Name] = job
	}
	return func(name string) (blexec.Job, bool) {
		j, ok := reg[name]
		return j, ok
	}
}

func TestMain(m *testing.M) {
	if bind := os.Getenv("MPEXEC_COORD_BIND"); bind != "" {
		// Durable-coordinator subprocess for the crash-restart tests: the
		// test process owns the workers and SIGKILLs this process mid-job.
		if err := runCoordProcess(bind); err != nil {
			fmt.Fprintln(os.Stderr, "coordinator:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	if addr := os.Getenv("MPEXEC_WORKER"); addr != "" {
		var err error
		if os.Getenv("MPEXEC_REGISTRY") != "" {
			err = mpexec.ServeJobs(addr, testResolver(), testOpts())
		} else {
			err = mpexec.Serve(addr, testJob(), testOpts())
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// spawnWorkers re-executes the test binary as n worker processes.
func spawnWorkers(t testing.TB, addr string, n int, extraEnv ...string) []*exec.Cmd {
	t.Helper()
	var cmds []*exec.Cmd
	for i := 0; i < n; i++ {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), "MPEXEC_WORKER="+addr)
		cmd.Env = append(cmd.Env, extraEnv...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawn worker %d: %v", i, err)
		}
		cmds = append(cmds, cmd)
	}
	t.Cleanup(func() {
		for _, c := range cmds {
			_ = c.Process.Kill()
			_, _ = c.Process.Wait()
		}
	})
	return cmds
}

func runCluster(t testing.TB, job blexec.Job, input []core.Record, opts blexec.Options, workers int, env ...string) (*mr.Result, error) {
	t.Helper()
	c, err := mpexec.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	spawnWorkers(t, c.Addr(), workers, env...)
	if err := c.WaitWorkers(workers, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	return c.Run(job, input, opts)
}

func jobFor(app apps.App) blexec.Job {
	return blexec.Job{Name: app.Name, Mapper: app.Mapper, NewGroup: app.NewGroup,
		NewStream: app.NewStream, Merger: app.Merger}
}

// TestClusterEquivalence: a 2-worker TCP-exchange job matches the
// single-process in-memory engine — byte-identically in barrier mode.
func TestClusterEquivalence(t *testing.T) {
	input := workload.Text(21, 2000, 400, 8)
	for _, tc := range []struct {
		mode  blexec.Mode
		env   []string
		exact bool
	}{
		{mode: blexec.Barrier, env: nil, exact: true},
		{mode: blexec.Pipelined, env: []string{"MPEXEC_MODE=pipelined"}, exact: false},
	} {
		ref, err := mr.Run(jobFor(apps.WordCount()), input,
			blexec.Options{Mappers: 4, Reducers: 3, Mode: tc.mode})
		if err != nil {
			t.Fatal(err)
		}
		opts := blexec.Options{Mappers: 4, Reducers: 3, Mode: tc.mode}
		res, err := runCluster(t, jobFor(apps.WordCount()), input, opts, 2, tc.env...)
		if err != nil {
			t.Fatalf("mode %v: %v", tc.mode, err)
		}
		if tc.exact {
			if len(res.Output) != len(ref.Output) {
				t.Fatalf("%d records vs %d", len(res.Output), len(ref.Output))
			}
			for i := range res.Output {
				if res.Output[i] != ref.Output[i] {
					t.Fatalf("record %d: %v vs %v", i, res.Output[i], ref.Output[i])
				}
			}
		} else {
			requireSameSorted(t, ref.Output, res.Output)
		}
		if res.ShuffleRecords != ref.ShuffleRecords {
			t.Fatalf("shuffled %d records, want %d", res.ShuffleRecords, ref.ShuffleRecords)
		}
		if res.SpilledBytes == 0 {
			t.Fatal("workers sealed no runs — the exchange did not go through disk")
		}
	}
}

// TestClusterSpill: the external-shuffle budget composes with the
// multi-process exchange (multiple waves per map task, fetched and merged
// remotely, byte-identical output).
func TestClusterSpill(t *testing.T) {
	input := workload.Text(22, 1500, 300, 8)
	ref, err := mr.Run(jobFor(apps.WordCount()), input,
		blexec.Options{Mappers: 4, Reducers: 3, Mode: blexec.Barrier})
	if err != nil {
		t.Fatal(err)
	}
	opts := blexec.Options{Mappers: 4, Reducers: 3, Mode: blexec.Barrier, SpillBytes: 8 << 10}
	res, err := runCluster(t, jobFor(apps.WordCount()), input, opts, 2, "MPEXEC_SPILL=1")
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Output {
		if res.Output[i] != ref.Output[i] {
			t.Fatalf("record %d: %v vs %v", i, res.Output[i], ref.Output[i])
		}
	}
	if res.Spills == 0 {
		t.Fatal("expected sealed spill waves at an 8KiB budget")
	}
}

// TestClusterCompressed: sealed-run compression composes with the
// multi-process exchange — waves seal compressed on the mapping worker,
// travel compressed between run-servers, and decompress at the consuming
// merger, byte-identical to the uncompressed single-process engine. The
// coordinator's assembled Result must carry the ratio and wire-byte
// accounting shipped back over the control protocol.
func TestClusterCompressed(t *testing.T) {
	input := workload.Text(24, 1500, 300, 8)
	ref, err := mr.Run(jobFor(apps.WordCount()), input,
		blexec.Options{Mappers: 4, Reducers: 3, Mode: blexec.Barrier})
	if err != nil {
		t.Fatal(err)
	}
	opts := blexec.Options{
		Mappers: 4, Reducers: 3, Mode: blexec.Barrier,
		SpillBytes: 8 << 10, Compression: codec.DeltaBlock,
	}
	res, err := runCluster(t, jobFor(apps.WordCount()), input, opts, 2,
		"MPEXEC_SPILL=1", "MPEXEC_COMPRESS=delta")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != len(ref.Output) {
		t.Fatalf("%d records vs %d", len(res.Output), len(ref.Output))
	}
	for i := range res.Output {
		if res.Output[i] != ref.Output[i] {
			t.Fatalf("record %d: %v vs %v", i, res.Output[i], ref.Output[i])
		}
	}
	if res.RawSpillBytes <= res.CompressedSpillBytes {
		t.Fatalf("no compression win reported: raw=%d sealed=%d",
			res.RawSpillBytes, res.CompressedSpillBytes)
	}
	if res.FetchBytes == 0 || res.FetchBytes > res.CompressedSpillBytes {
		t.Fatalf("fetch accounting off: fetched=%d sealed=%d",
			res.FetchBytes, res.CompressedSpillBytes)
	}
	t.Logf("cluster compression: raw=%dKB sealed=%dKB fetched=%dKB",
		res.RawSpillBytes>>10, res.CompressedSpillBytes>>10, res.FetchBytes>>10)
}

// churnRun spawns workers, SIGKILLs worker 0 after killAfter, runs the job,
// and asserts it completes with output byte-identical to the single-process
// engine and without leaking driver goroutines — the robustness acceptance
// criteria: a single worker death is a non-event.
func churnRun(t *testing.T, opts blexec.Options, workers int, killAfter time.Duration, env ...string) *mr.Result {
	t.Helper()
	before := runtime.NumGoroutine()
	input := workload.Text(23, 3000, 400, 8)
	ref, err := mr.Run(jobFor(apps.WordCount()), input,
		blexec.Options{Mappers: opts.Mappers, Reducers: opts.Reducers, Mode: opts.Mode})
	if err != nil {
		t.Fatal(err)
	}
	c, err := mpexec.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cmds := spawnWorkers(t, c.Addr(), workers, env...)
	if err := c.WaitWorkers(workers, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(killAfter)
		_ = cmds[0].Process.Kill()
	}()
	type outcome struct {
		res *mr.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := c.Run(jobFor(apps.WordCount()), input, opts)
		done <- outcome{res, err}
	}()
	var res *mr.Result
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("job failed despite surviving workers: %v", o.err)
		}
		res = o.res
	case <-time.After(120 * time.Second):
		t.Fatal("job hung after worker death")
	}
	if len(res.Output) != len(ref.Output) {
		t.Fatalf("%d records vs %d after recovery", len(res.Output), len(ref.Output))
	}
	for i := range res.Output {
		if res.Output[i] != ref.Output[i] {
			t.Fatalf("record %d differs after recovery: %v vs %v", i, res.Output[i], ref.Output[i])
		}
	}
	// The scheduler must have drained every task goroutine.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutine leak: %d before, %d after", before, g)
	}
	return res
}

// TestClusterSurvivesKillMidMap: SIGKILL a worker while every worker is
// mid-map in overlap mode. The dead worker's in-flight map re-executes on a
// survivor; parked reduce tasks re-route via invalidation + supersede
// pushes; barrier output stays byte-identical.
func TestClusterSurvivesKillMidMap(t *testing.T) {
	opts := blexec.Options{Mappers: 4, Reducers: 3, Mode: blexec.Barrier}
	res := churnRun(t, opts, 3, 300*time.Millisecond, "MPEXEC_SLOW=1")
	if res.MapRetries < 1 {
		t.Fatalf("MapRetries = %d, want >= 1 (the dead worker was mid-map)", res.MapRetries)
	}
	t.Logf("recovery: %d map retries, %d reduce retries", res.MapRetries, res.ReduceRetries)
}

// TestClusterSurvivesKillMidMapStaged: the same kill under the staged
// (back-to-back waves) control protocol — recovery must not depend on the
// overlap's push stream.
func TestClusterSurvivesKillMidMapStaged(t *testing.T) {
	opts := blexec.Options{Mappers: 4, Reducers: 3, Mode: blexec.Barrier, Staged: true}
	res := churnRun(t, opts, 3, 300*time.Millisecond, "MPEXEC_SLOW=1")
	if res.MapRetries < 1 {
		t.Fatalf("MapRetries = %d, want >= 1 (the dead worker was mid-map)", res.MapRetries)
	}
}

// TestClusterSurvivesKillMidReduce: fast maps, slow reducers, kill after the
// map wave — the dead worker's reduce task requeues on a survivor, and that
// survivor re-fetches the dead worker's sealed map outputs from their
// re-executed attempts.
func TestClusterSurvivesKillMidReduce(t *testing.T) {
	opts := blexec.Options{Mappers: 4, Reducers: 3, Mode: blexec.Barrier, Staged: true}
	res := churnRun(t, opts, 3, 600*time.Millisecond, "MPEXEC_SLOWRED=1")
	if res.ReduceRetries < 1 {
		t.Fatalf("ReduceRetries = %d, want >= 1 (the dead worker was mid-reduce)", res.ReduceRetries)
	}
	t.Logf("recovery: %d map re-executions for lost outputs, %d reduce retries",
		res.MapRetries, res.ReduceRetries)
}

// TestClusterSpeculation: one deliberately slow worker straggles the map
// wave; with Speculative set, the fast worker clones the straggler's map
// once the rest of the wave is done, the clone wins, and attempt IDs keep
// the duplicate completion's routing idempotent — byte-identical output.
func TestClusterSpeculation(t *testing.T) {
	input := workload.Text(26, 3000, 400, 8)
	ref, err := mr.Run(jobFor(apps.WordCount()), input,
		blexec.Options{Mappers: 4, Reducers: 3, Mode: blexec.Barrier})
	if err != nil {
		t.Fatal(err)
	}
	c, err := mpexec.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	spawnWorkers(t, c.Addr(), 1, "MPEXEC_SLOW=1") // the straggler
	spawnWorkers(t, c.Addr(), 1)                  // the fast worker that clones
	if err := c.WaitWorkers(2, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(jobFor(apps.WordCount()), input, blexec.Options{
		Mappers: 4, Reducers: 3, Mode: blexec.Barrier, Speculative: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != len(ref.Output) {
		t.Fatalf("%d records vs %d", len(res.Output), len(ref.Output))
	}
	for i := range res.Output {
		if res.Output[i] != ref.Output[i] {
			t.Fatalf("record %d differs under speculation: %v vs %v", i, res.Output[i], ref.Output[i])
		}
	}
	if res.BackupsLaunched < 1 {
		t.Fatalf("BackupsLaunched = %d, want >= 1 (a straggler was cloneable)", res.BackupsLaunched)
	}
	t.Logf("speculation: %d clones launched, %d won", res.BackupsLaunched, res.BackupsWon)
}

func requireSameSorted(t *testing.T, a, b []core.Record) {
	t.Helper()
	sa := append([]core.Record(nil), a...)
	sb := append([]core.Record(nil), b...)
	mr.SortOutput(sa)
	mr.SortOutput(sb)
	if len(sa) != len(sb) {
		t.Fatalf("%d vs %d records", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("record %d: %v vs %v", i, sa[i], sb[i])
		}
	}
}
