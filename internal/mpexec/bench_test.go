package mpexec_test

// Overlap benchmarks: the multi-process engine's staged control plane
// (reduce wave after the whole map wave — the PR-3 baseline, kept behind
// exec.Options.Staged) against the overlapped one (reduce tasks dispatched
// at job start, sealed-run routes streamed as maps finish). Worker
// processes are this binary re-executed (see TestMain); with one map slot
// per worker the map wave is a real runway, so overlap hides fetch and
// reduce work under it exactly as the paper's Figure 4/6 claims —
// pipelined-TCP finally beats barrier-TCP across processes. Snapshotted by
// scripts/bench.sh into BENCH_<n>.json.

import (
	"sync"
	"testing"
	"time"

	"blmr/internal/apps"
	"blmr/internal/core"
	blexec "blmr/internal/exec"
	"blmr/internal/mpexec"
	"blmr/internal/workload"
)

var clusterBenchInput struct {
	once sync.Once
	recs []core.Record
}

func benchClusterInput() []core.Record {
	clusterBenchInput.once.Do(func() {
		clusterBenchInput.recs = workload.Text(3, 250_000, 20_000, 4)
	})
	return clusterBenchInput.recs
}

// benchCluster runs b.N jobs over a freshly spawned 2-worker cluster.
func benchCluster(b *testing.B, appName string, mode blexec.Mode, staged bool) {
	input := benchClusterInput()
	app := apps.WordCount()
	var env []string
	if appName == "sort" {
		app = apps.Sort()
		env = append(env, "MPEXEC_APP=sort")
	}
	if mode == blexec.Pipelined {
		env = append(env, "MPEXEC_MODE=pipelined")
	}
	c, err := mpexec.Listen()
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	spawnWorkers(b, c.Addr(), 2, env...)
	if err := c.WaitWorkers(2, 30*time.Second); err != nil {
		b.Fatal(err)
	}
	opts := blexec.Options{Mappers: 8, Reducers: 3, Mode: mode, Staged: staged}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Run(jobFor(app), input, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(input))/res.Wall.Seconds(), "recs/s")
	}
}

func BenchmarkClusterWordCount250K_BarrierStaged(b *testing.B) {
	benchCluster(b, "wordcount", blexec.Barrier, true)
}

func BenchmarkClusterWordCount250K_BarrierOverlap(b *testing.B) {
	benchCluster(b, "wordcount", blexec.Barrier, false)
}

func BenchmarkClusterWordCount250K_PipelinedStaged(b *testing.B) {
	benchCluster(b, "wordcount", blexec.Pipelined, true)
}

func BenchmarkClusterWordCount250K_PipelinedOverlap(b *testing.B) {
	benchCluster(b, "wordcount", blexec.Pipelined, false)
}

func BenchmarkClusterSort250K_PipelinedStaged(b *testing.B) {
	benchCluster(b, "sort", blexec.Pipelined, true)
}

func BenchmarkClusterSort250K_PipelinedOverlap(b *testing.B) {
	benchCluster(b, "sort", blexec.Pipelined, false)
}

// benchClusterRecovery measures worker-churn recovery overhead: each
// iteration spawns a fresh 3-worker cluster and runs one barrier WordCount;
// the Kill1 variant SIGKILLs worker 0 mid-map, so the delta against the
// baseline is the cost of re-executing the lost maps and re-routing parked
// fetches. Snapshotted by scripts/bench.sh (recovery-overhead section).
func benchClusterRecovery(b *testing.B, killAfter time.Duration) {
	input := workload.Text(29, 20_000, 2_000, 6)
	opts := blexec.Options{Mappers: 6, Reducers: 4, Mode: blexec.Barrier}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := mpexec.Listen()
		if err != nil {
			b.Fatal(err)
		}
		cmds := spawnWorkers(b, c.Addr(), 3)
		if err := c.WaitWorkers(3, 30*time.Second); err != nil {
			b.Fatal(err)
		}
		if killAfter > 0 {
			timer := time.AfterFunc(killAfter, func() { _ = cmds[0].Process.Kill() })
			defer timer.Stop()
		}
		res, err := c.Run(jobFor(apps.WordCount()), input, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(input))/res.Wall.Seconds(), "recs/s")
		if killAfter > 0 {
			b.ReportMetric(float64(res.MapRetries+res.ReduceRetries), "retries/job")
		}
		c.Close()
	}
}

func BenchmarkClusterRecovery_Baseline(b *testing.B) {
	benchClusterRecovery(b, 0)
}

func BenchmarkClusterRecovery_Kill1(b *testing.B) {
	benchClusterRecovery(b, 40*time.Millisecond)
}

// benchServiceStream measures the makespan of the heterogeneous three-job
// stream on a 3-worker service: sequential admission (MaxConcurrent 1 —
// every job has the pool to itself, back to back) against concurrent
// admission under each placement policy. The concurrent makespans beat
// sequential by overlapping one job's reduce/shuffle tail under the next
// job's map wave — the multi-tenancy win the service exists for.
// Snapshotted by scripts/bench.sh (multi-job section).
func benchServiceStream(b *testing.B, maxConcurrent int, policy string) {
	s, _ := serviceCluster(b, 3, mpexec.ServiceConfig{
		MaxConcurrent: maxConcurrent, Policy: policy,
	})
	subs := threeJobs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		tickets := make([]*mpexec.Ticket, len(subs))
		for j, sub := range subs {
			tk, err := s.Submit(jobFor(sub.app), sub.input, sub.opts)
			if err != nil {
				b.Fatal(err)
			}
			tickets[j] = tk
			if maxConcurrent == 1 {
				if _, err := tk.Wait(); err != nil {
					b.Fatal(err)
				}
			}
		}
		for _, tk := range tickets {
			if _, err := tk.Wait(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(time.Since(start).Seconds()*1e3, "ms/stream")
	}
}

func BenchmarkServiceStream3Jobs_Sequential(b *testing.B) {
	benchServiceStream(b, 1, "")
}

func BenchmarkServiceStream3Jobs_ConcurrentRoundRobin(b *testing.B) {
	benchServiceStream(b, 3, "round-robin")
}

func BenchmarkServiceStream3Jobs_ConcurrentLeastLoaded(b *testing.B) {
	benchServiceStream(b, 3, "least-loaded")
}

func BenchmarkServiceStream3Jobs_ConcurrentLocality(b *testing.B) {
	benchServiceStream(b, 3, "locality")
}
