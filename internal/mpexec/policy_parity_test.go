package mpexec_test

// Sim-vs-real parity for placement policies: harness.PolicyPrediction
// models the canonical skewed stream — two one-map jobs plus one four-map
// job arriving together on three one-map-slot workers — where every job's
// round-robin cursor piles onto worker 0 while least-loaded spreads the
// maps. This test runs the same stream on the real multi-tenant service
// under both policies and requires the measured makespan ratio to agree
// with the simulated one within harness.PolicyTolerance. The band is wide
// (the sim stream is virtual-time clean, this is wall clock with per-job
// setup), but it pins the direction and rough size of the policy gap to
// the model.

import (
	"math"
	"testing"
	"time"

	"blmr/internal/apps"
	blexec "blmr/internal/exec"
	"blmr/internal/harness"
	"blmr/internal/mpexec"
	"blmr/internal/workload"
)

// skewedSubmissions mirrors the sim's [1, 1, 4]-map stream: per-map work is
// fixed at 150 records (MPEXEC_SLOW sleeps 2ms per record, so each map task
// runs ~300ms and placement decides the makespan).
func skewedSubmissions() []submission {
	var subs []submission
	for i, maps := range []int{1, 1, 4} {
		subs = append(subs, submission{
			app:   apps.WordCount(),
			input: workload.Text(uint64(61+i), 150*maps, 120, 8),
			opts:  blexec.Options{Mappers: maps, Reducers: 2, Mode: blexec.Barrier},
		})
	}
	return subs
}

func TestClusterPolicyParity(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock parity run")
	}
	run := func(policy string) float64 {
		s, _ := serviceCluster(t, 3, mpexec.ServiceConfig{
			MaxConcurrent: 3, MapShare: 1, PoolMapSlots: 1, Policy: policy,
		}, "MPEXEC_SLOW=1")
		subs := skewedSubmissions()
		start := time.Now()
		tickets := make([]*mpexec.Ticket, len(subs))
		for i, sub := range subs {
			if i > 0 {
				// Stagger arrivals so earlier jobs' dispatches are on the
				// shared slot ledger when later jobs place (the sim's
				// sequential-arrival ledger sees the same ordering; the
				// load-blind round-robin stripe is unaffected).
				time.Sleep(50 * time.Millisecond)
			}
			tk, err := s.Submit(jobFor(sub.app), sub.input, sub.opts)
			if err != nil {
				t.Fatalf("%s: submit %d: %v", policy, i, err)
			}
			tickets[i] = tk
		}
		for i, tk := range tickets {
			res, err := tk.Wait()
			if err != nil {
				t.Fatalf("%s: job %d failed: %v", policy, i, err)
			}
			checkAgainstReference(t, policy, subs[i], res)
		}
		wall := time.Since(start).Seconds()
		s.Close()
		return wall
	}

	rrWall := run("round-robin")
	llWall := run("least-loaded")
	measured := llWall / rrWall
	est, err := harness.PolicyPrediction([]int{1, 1, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("skewed-stream makespan: round-robin %.2fs, least-loaded %.2fs (ratio %.2f), predicted ratio %.2f",
		rrWall, llWall, measured, est.Ratio)
	if measured >= 1 {
		t.Fatalf("least-loaded did not beat round-robin on the skewed stream: %.2fs vs %.2fs", llWall, rrWall)
	}
	if diff := math.Abs(measured - est.Ratio); diff > harness.PolicyTolerance {
		t.Fatalf("sim and real policy gap disagree beyond the stated tolerance: |%.2f - %.2f| = %.2f > %.2f",
			measured, est.Ratio, diff, harness.PolicyTolerance)
	}
}
