package mpexec

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/exec"
	"blmr/internal/shuffle"
	"blmr/internal/store"
	"blmr/internal/wal"
)

// Journal record schema. The Service appends one record per durable state
// transition to its write-ahead log (internal/wal frames them; this file
// only defines payloads). Every record leads with a kind byte and the
// service ticket ID, so replay can fold an interleaved multi-job stream
// into per-job state:
//
//	'a' admit:   ticket | name | journalOpts | input records
//	's' start:   ticket | coordinator job ID
//	'm' mapDone: ticket | mapIndex | attempt | workerName | shuffleRecords |
//	             spills | waveCount | { fileID | comp | crc | spanCount |
//	             { off | n } }
//	'r' redDone: ticket | partition | spills | peakPartialBytes |
//	             mergePasses | fetchBytes | output records
//	'd' done:    ticket
//	'x' aborted: ticket | message
//
// journalOpts is the full execution-affecting exec.Options subset — unlike
// the 'J' wire frame it includes Mappers (resume must re-split the input
// identically), the scheduler knobs (Staged, Speculative, threshold) and
// the heartbeat interval, because a resumed job must run under exactly the
// options it was admitted with to reproduce its output byte for byte.
//
// Replay keeps the latest record per key: the highest attempt per map
// index, the last result per partition. 'd'/'x' retire the ticket — only
// tickets admitted but not retired are live and re-entered on resume.
// Records for unknown tickets are skipped, not errors: compaction rewrites
// the journal as live tickets only, so a pre-compaction tail replayed
// against a compacted head may reference retired tickets.

// Journal record kinds.
const (
	jAdmit      = 'a'
	jStart      = 's'
	jMapDone    = 'm'
	jReduceDone = 'r'
	jDone       = 'd'
	jAborted    = 'x'
)

// journalMap is one journaled completed map attempt.
type journalMap struct {
	attempt        int
	worker         string // registration name of the worker that sealed it
	shuffleRecords int64
	spills         int
	waves          []waveMeta // addr empty until re-attach patches it
}

// journalJob is one admitted job's replayed journal state.
type journalJob struct {
	ticket  uint64
	name    string
	opts    exec.Options
	input   []core.Record
	jobID   int // coordinator job ID from 's'; 0 = never started
	maxAtt  int // highest attempt seen across every 'm', done or superseded
	maps    map[int]*journalMap
	reduces map[int]exec.ReduceResult
}

// ReattachState carries a resumed job's replayed journal state into
// RunJob: which maps completed before the crash (keyed by map index, with
// the sealed waves to match against returning workers' advertisements),
// which reduce partitions already produced output, and the first attempt
// number that outranks every journaled one.
type ReattachState struct {
	// FirstAttempt seeds the scheduler's attempt counter past every
	// journaled attempt, so re-executions supersede re-attached routes.
	FirstAttempt int

	maps    map[int]*journalMap
	reduces map[int]exec.ReduceResult
}

func putJournalOpts(b []byte, o exec.Options) []byte {
	b = binary.AppendUvarint(b, uint64(o.Mappers))
	b = binary.AppendUvarint(b, uint64(o.Reducers))
	b = binary.AppendUvarint(b, uint64(o.Mode))
	b = binary.AppendUvarint(b, uint64(o.SpillBytes))
	b = binary.AppendUvarint(b, uint64(o.SpillThresholdBytes))
	b = binary.AppendUvarint(b, uint64(o.KVCacheBytes))
	b = binary.AppendUvarint(b, uint64(o.MergeFanIn))
	b = binary.AppendUvarint(b, uint64(o.BatchSize))
	b = binary.AppendUvarint(b, uint64(o.CombineKeys))
	b = binary.AppendUvarint(b, uint64(o.QueueCap))
	b = binary.AppendUvarint(b, uint64(o.Store))
	b = binary.AppendUvarint(b, uint64(o.Compression))
	b = binary.AppendUvarint(b, uint64(o.DecodeWorkers))
	b = binary.AppendUvarint(b, boolBit(o.Staged))
	b = binary.AppendUvarint(b, boolBit(o.Speculative))
	b = binary.AppendUvarint(b, uint64(math.Float64bits(o.SpeculativeThreshold)))
	b = binary.AppendUvarint(b, uint64(o.HeartbeatInterval))
	return b
}

func (d *dec) journalOpts() exec.Options {
	var o exec.Options
	o.Mappers = int(d.uvarint())
	o.Reducers = int(d.uvarint())
	o.Mode = exec.Mode(d.uvarint())
	o.SpillBytes = int64(d.uvarint())
	o.SpillThresholdBytes = int64(d.uvarint())
	o.KVCacheBytes = int64(d.uvarint())
	o.MergeFanIn = int(d.uvarint())
	o.BatchSize = int(d.uvarint())
	o.CombineKeys = int(d.uvarint())
	o.QueueCap = int(d.uvarint())
	o.Store = store.Kind(d.uvarint())
	o.Compression = codec.Compression(d.uvarint())
	o.DecodeWorkers = int(d.uvarint())
	o.Staged = d.uvarint() != 0
	o.Speculative = d.uvarint() != 0
	o.SpeculativeThreshold = math.Float64frombits(d.uvarint())
	o.HeartbeatInterval = time.Duration(d.uvarint())
	o.Transport = shuffle.TCP // the only cross-process transport
	return o
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func encodeJournalAdmit(ticket uint64, name string, opts exec.Options, input []core.Record) []byte {
	b := []byte{jAdmit}
	b = binary.AppendUvarint(b, ticket)
	b = putStr(b, name)
	b = putJournalOpts(b, opts)
	return putRecords(b, input)
}

func encodeJournalStart(ticket uint64, jobID int) []byte {
	b := []byte{jStart}
	b = binary.AppendUvarint(b, ticket)
	return binary.AppendUvarint(b, uint64(jobID))
}

func encodeJournalMapDone(ticket uint64, mapIndex, attempt int, worker string, md mapDone) []byte {
	b := []byte{jMapDone}
	b = binary.AppendUvarint(b, ticket)
	b = binary.AppendUvarint(b, uint64(mapIndex))
	b = binary.AppendUvarint(b, uint64(attempt))
	b = putStr(b, worker)
	b = binary.AppendUvarint(b, uint64(md.shuffleRecords))
	b = binary.AppendUvarint(b, uint64(md.spills))
	b = binary.AppendUvarint(b, uint64(len(md.waves)))
	for _, w := range md.waves {
		b = binary.AppendUvarint(b, w.fileID)
		b = binary.AppendUvarint(b, uint64(w.comp))
		b = binary.AppendUvarint(b, uint64(w.crc))
		b = binary.AppendUvarint(b, uint64(len(w.spans)))
		for _, sp := range w.spans {
			b = binary.AppendUvarint(b, uint64(sp.Off))
			b = binary.AppendUvarint(b, uint64(sp.N))
		}
	}
	return b
}

func encodeJournalReduceDone(ticket uint64, partition int, res exec.ReduceResult) []byte {
	b := []byte{jReduceDone}
	b = binary.AppendUvarint(b, ticket)
	b = binary.AppendUvarint(b, uint64(partition))
	b = binary.AppendUvarint(b, uint64(res.Spills))
	b = binary.AppendUvarint(b, uint64(res.PeakPartialBytes))
	b = binary.AppendUvarint(b, uint64(res.MergePasses))
	b = binary.AppendUvarint(b, uint64(res.FetchBytes))
	return putRecords(b, res.Output)
}

func encodeJournalDone(ticket uint64) []byte {
	b := []byte{jDone}
	return binary.AppendUvarint(b, ticket)
}

func encodeJournalAborted(ticket uint64, msg string) []byte {
	b := []byte{jAborted}
	b = binary.AppendUvarint(b, ticket)
	return putStr(b, msg)
}

// journalKey peeks a record's kind and ticket (every kind leads with both).
func journalKey(rec []byte) (kind byte, ticket uint64, err error) {
	if len(rec) == 0 {
		return 0, 0, fmt.Errorf("mpexec: empty journal record")
	}
	d := &dec{buf: rec, off: 1}
	ticket = d.uvarint()
	return rec[0], ticket, d.err
}

// replayJournal folds a journal's records into per-ticket job state.
// Returned jobs are the live (admitted, never retired) tickets in admission
// order; maxTicket and maxJobID cover every record seen, retired included,
// so the resuming service can place its counters past the whole history.
func replayJournal(records [][]byte) (live []*journalJob, maxTicket uint64, maxJobID int, err error) {
	jobs := make(map[uint64]*journalJob)
	var order []uint64
	seenAny := false
	for i, rec := range records {
		kind, ticket, err := journalKey(rec)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("mpexec: journal record %d: %w", i, err)
		}
		if !seenAny || ticket > maxTicket {
			maxTicket, seenAny = ticket, true
		}
		d := &dec{buf: rec, off: 1}
		d.uvarint() // ticket, already decoded
		jj := jobs[ticket]
		switch kind {
		case jAdmit:
			jj = &journalJob{
				ticket: ticket, name: d.str(),
				maps:    make(map[int]*journalMap),
				reduces: make(map[int]exec.ReduceResult),
			}
			jj.opts = d.journalOpts()
			jj.input = d.records()
			if d.err != nil {
				return nil, 0, 0, fmt.Errorf("mpexec: journal admit %d: %w", i, d.err)
			}
			jobs[ticket] = jj
			order = append(order, ticket)
		case jStart:
			id := int(d.uvarint())
			if d.err != nil {
				return nil, 0, 0, fmt.Errorf("mpexec: journal start %d: %w", i, d.err)
			}
			if id > maxJobID {
				maxJobID = id
			}
			if jj != nil {
				jj.jobID = id
			}
		case jMapDone:
			jm := &journalMap{}
			idx := int(d.uvarint())
			jm.attempt = int(d.uvarint())
			jm.worker = d.str()
			jm.shuffleRecords = int64(d.uvarint())
			jm.spills = int(d.uvarint())
			n := d.uvarint()
			for w := uint64(0); w < n && d.err == nil; w++ {
				wv := waveMeta{fileID: d.uvarint(), comp: codec.Compression(d.uvarint()), crc: uint32(d.uvarint())}
				spanN := d.uvarint()
				for s := uint64(0); s < spanN && d.err == nil; s++ {
					off := int64(d.uvarint())
					ln := int64(d.uvarint())
					wv.spans = append(wv.spans, shuffle.Span{Off: off, N: ln})
				}
				jm.waves = append(jm.waves, wv)
			}
			if d.err != nil {
				return nil, 0, 0, fmt.Errorf("mpexec: journal mapdone %d: %w", i, d.err)
			}
			if jj == nil {
				continue // retired ticket's tail after compaction
			}
			if jm.attempt > jj.maxAtt {
				jj.maxAtt = jm.attempt
			}
			if prev, ok := jj.maps[idx]; !ok || jm.attempt >= prev.attempt {
				jj.maps[idx] = jm
			}
		case jReduceDone:
			part := int(d.uvarint())
			res := exec.ReduceResult{
				Spills:           int(d.uvarint()),
				PeakPartialBytes: int64(d.uvarint()),
				MergePasses:      int(d.uvarint()),
				FetchBytes:       int64(d.uvarint()),
			}
			res.Output = d.records()
			if d.err != nil {
				return nil, 0, 0, fmt.Errorf("mpexec: journal reducedone %d: %w", i, d.err)
			}
			if jj != nil {
				jj.reduces[part] = res
			}
		case jDone, jAborted:
			delete(jobs, ticket)
		default:
			return nil, 0, 0, fmt.Errorf("mpexec: journal record %d: unknown kind %q", i, kind)
		}
	}
	for _, t := range order {
		if jj, ok := jobs[t]; ok {
			live = append(live, jj)
		}
	}
	return live, maxTicket, maxJobID, nil
}

// reattachState projects a replayed job into the RunJob config form.
func (jj *journalJob) reattachState() *ReattachState {
	if len(jj.maps) == 0 && len(jj.reduces) == 0 {
		return nil
	}
	return &ReattachState{FirstAttempt: jj.maxAtt + 1, maps: jj.maps, reduces: jj.reduces}
}

// JournalStats summarises a job journal for operators and CI: per-kind
// record counts plus the live-ticket count a resume would re-enter.
// cmd/blmr -journal-stat prints these so an external harness can poll for
// "at least one map completion journaled" before killing the coordinator.
type JournalStats struct {
	Records    int // framed records replayed (torn tail excluded)
	Admitted   int
	Started    int
	MapDone    int
	ReduceDone int
	Done       int
	Aborted    int
	Live       int // tickets admitted but neither done nor aborted
	// LiveMapDone counts map completions belonging to live tickets — the
	// work a resume would re-attach rather than re-execute. Polling until
	// this is positive times a coordinator kill so that recovery provably
	// has something to recover.
	LiveMapDone int
}

// ReadJournalStats replays the journal at path read-only (safe against a
// concurrently appending service; a torn tail is ignored) and tallies it.
func ReadJournalStats(path string) (JournalStats, error) {
	recs, err := wal.Replay(path)
	if err != nil {
		return JournalStats{}, err
	}
	var st JournalStats
	st.Records = len(recs)
	live := make(map[uint64]bool)
	maps := make(map[uint64]int)
	for i, rec := range recs {
		kind, ticket, err := journalKey(rec)
		if err != nil {
			return st, fmt.Errorf("mpexec: journal record %d: %w", i, err)
		}
		switch kind {
		case jAdmit:
			st.Admitted++
			live[ticket] = true
		case jStart:
			st.Started++
		case jMapDone:
			st.MapDone++
			maps[ticket]++
		case jReduceDone:
			st.ReduceDone++
		case jDone:
			st.Done++
			delete(live, ticket)
		case jAborted:
			st.Aborted++
			delete(live, ticket)
		}
	}
	st.Live = len(live)
	for t := range live {
		st.LiveMapDone += maps[t]
	}
	return st, nil
}
