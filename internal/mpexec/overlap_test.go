package mpexec_test

// Cross-wave overlap tests: the overlapped control plane (the default since
// the streamed-'m' protocol) must preserve every output guarantee of the
// staged one, and the pooled fetch plane must bound run-server dials near
// peers × fan-in instead of one per fetched section.

import (
	"testing"

	"blmr/internal/apps"
	blexec "blmr/internal/exec"
	"blmr/internal/mr"
	"blmr/internal/workload"
)

// TestClusterStagedEquivalence: the pre-overlap control plane (Staged) is
// still available as the benchmark baseline and stays byte-identical to
// the single-process engine in barrier mode.
func TestClusterStagedEquivalence(t *testing.T) {
	input := workload.Text(25, 2000, 400, 8)
	ref, err := mr.Run(jobFor(apps.WordCount()), input,
		blexec.Options{Mappers: 4, Reducers: 3, Mode: blexec.Barrier})
	if err != nil {
		t.Fatal(err)
	}
	opts := blexec.Options{Mappers: 4, Reducers: 3, Mode: blexec.Barrier, Staged: true}
	res, err := runCluster(t, jobFor(apps.WordCount()), input, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != len(ref.Output) {
		t.Fatalf("%d records vs %d", len(res.Output), len(ref.Output))
	}
	for i := range res.Output {
		if res.Output[i] != ref.Output[i] {
			t.Fatalf("record %d: %v vs %v", i, res.Output[i], ref.Output[i])
		}
	}
}

// TestClusterConnPoolReuse: a spill-heavy job fetches far more sections
// than the pooled fetch plane dials connections. Each worker keeps one
// multiplexed connection per peer (more only under the merge's concurrent
// fan-in), so job-wide dials stay within workers × peers × MergeFanIn —
// per fetching worker, ≤ workers × MergeFanIn — while the section count,
// with a tiny spill budget forcing a sealed wave per few KiB, is far
// higher. Before pooling this job would dial once per section.
func TestClusterConnPoolReuse(t *testing.T) {
	const (
		workers = 2
		fanIn   = 2
	)
	// One reduce task per worker, so the per-worker concurrent-checkout
	// bound is exactly peers × fanIn.
	input := workload.Text(26, 4000, 500, 8)
	opts := blexec.Options{
		Mappers: 4, Reducers: 2, Mode: blexec.Barrier,
		SpillBytes: 8 << 10, MergeFanIn: fanIn,
	}
	res, err := runCluster(t, jobFor(apps.WordCount()), input, opts, workers,
		"MPEXEC_SPILL=1", "MPEXEC_FANIN=2")
	if err != nil {
		t.Fatal(err)
	}
	// Sections fetched ≥ sealed waves (every wave has ≥1 non-empty
	// partition); prove the workload would have exploded a dial-per-section
	// plane.
	dialBound := int64(workers * workers * fanIn)
	if int64(res.Spills) <= dialBound {
		t.Fatalf("workload too small to prove reuse: %d spill waves vs dial bound %d",
			res.Spills, dialBound)
	}
	if res.FetchDials == 0 {
		t.Fatal("no dials reported — fetch-plane accounting broken")
	}
	if res.FetchDials > dialBound {
		t.Fatalf("pooled fetch plane dialed %d times, want ≤ workers×peers×fanIn = %d (spill waves: %d)",
			res.FetchDials, dialBound, res.Spills)
	}
	if res.FetchBytes == 0 {
		t.Fatal("no fetch bytes reported")
	}
	t.Logf("conn pool: %d dials for ≥%d sections (bound %d)", res.FetchDials, res.Spills, dialBound)
}
