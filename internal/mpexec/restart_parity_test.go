package mpexec_test

// Sim-vs-real parity for coordinator crash-restart: the simulator's
// harness.RestartPrediction models the control plane dying mid-map and
// resuming from its journal with sealed-run re-attach; this test abandons a
// real durable service at the same relative point, resumes it over the same
// state dir and workers, and requires the measured relative overhead to
// agree within harness.RestartTolerance. As with the worker-churn parity
// band, the width absorbs wall-clock noise while pinning the sign and the
// order of magnitude of recovery cost to the model.

import (
	"math"
	"testing"
	"time"

	"blmr/internal/apps"
	blexec "blmr/internal/exec"
	"blmr/internal/harness"
	"blmr/internal/mpexec"
	"blmr/internal/simmr"
	"blmr/internal/workload"
)

const restartParityFrac = 0.4

func TestCoordRestartParity(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock parity run")
	}
	input := workload.Text(27, 3000, 400, 8)
	// 12 small map tasks rather than 6: completions journal every fraction
	// of a second, so a crash anywhere past the first wave finds sealed
	// runs to re-attach regardless of wall-clock jitter.
	opts := blexec.Options{Mappers: 12, Reducers: 3, Mode: blexec.Barrier}

	// One full run through the durable service; killAfter <= 0 runs
	// undisturbed, otherwise the service is abandoned (the crash) that long
	// after submission and a successor resumes over the same state dir.
	run := func(killAfter time.Duration) (reattached int, wall float64) {
		c, err := mpexec.Listen()
		if err != nil {
			t.Fatal(err)
		}
		addr := c.Addr()
		stateDir := t.TempDir()
		spawnWorkers(t, addr, 3, "MPEXEC_REGISTRY=1", "MPEXEC_SLOW=1")
		if err := c.WaitWorkers(3, 30*time.Second); err != nil {
			t.Fatal(err)
		}
		svc, err := mpexec.NewService(c, 3, mpexec.ServiceConfig{
			StateDir: stateDir, Resolver: testResolver(),
		})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		tk, err := svc.Submit(jobFor(apps.WordCount()), input, opts)
		if err != nil {
			t.Fatal(err)
		}
		if killAfter <= 0 {
			res, err := tk.Wait()
			if err != nil {
				t.Fatal(err)
			}
			wall = time.Since(start).Seconds()
			svc.Close()
			c.Close()
			return res.ReattachedMaps, wall
		}
		timer := time.AfterFunc(killAfter, svc.Abandon)
		defer timer.Stop()
		_, _ = tk.Wait() // dies with the abandoned service
		var c2 *mpexec.Coordinator
		rebind := time.Now().Add(10 * time.Second)
		for {
			if c2, err = mpexec.ListenOn(addr); err == nil {
				break
			}
			if time.Now().After(rebind) {
				t.Fatalf("rebind %s: %v", addr, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		defer c2.Close()
		if err := c2.WaitWorkers(3, 60*time.Second); err != nil {
			t.Fatal(err)
		}
		svc2, err := mpexec.NewService(c2, 3, mpexec.ServiceConfig{
			StateDir: stateDir, Resolver: testResolver(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer svc2.Close()
		resumed := svc2.Resumed()
		if len(resumed) != 1 {
			t.Fatalf("resumed %d jobs, want 1", len(resumed))
		}
		res, err := resumed[0].Wait()
		if err != nil {
			t.Fatal(err)
		}
		return res.ReattachedMaps, time.Since(start).Seconds()
	}

	_, baseWall := run(0)
	reattached, resumedWall := run(time.Duration(restartParityFrac * baseWall * float64(time.Second)))
	measured := resumedWall/baseWall - 1
	pred := harness.RestartPrediction(1, 3, restartParityFrac, simmr.Barrier)
	t.Logf("restart overhead: measured %.2f (%.2fs -> %.2fs, %d maps re-attached), predicted %.2f (reattach=%d retried=%d)",
		measured, baseWall, resumedWall, reattached, pred.Overhead, pred.ReattachedMaps, pred.Retried)
	if reattached < 1 {
		t.Fatalf("the crash at %.0f%% of the base run re-attached no sealed runs", restartParityFrac*100)
	}
	if measured < -0.25 {
		t.Fatalf("resumed run substantially faster than baseline (%.2f): measurement is broken", measured)
	}
	if diff := math.Abs(measured - pred.Overhead); diff > harness.RestartTolerance {
		t.Fatalf("sim and real restart overhead disagree beyond the stated tolerance: |%.2f - %.2f| = %.2f > %.2f",
			measured, pred.Overhead, diff, harness.RestartTolerance)
	}
}
