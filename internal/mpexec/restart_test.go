package mpexec_test

// Coordinator crash-restart tests: the coordinator (service included) runs
// as a real subprocess over a durable state dir, the workers are spawned by
// the test process so they survive it, and the test SIGKILLs the
// coordinator at a journal-observed phase — mid-map, mid-reduce, or with
// jobs still queued — then resumes in-process over the same state dir and
// the same (re-registering) workers, asserting byte-identical output and,
// where sealed runs survived, ReattachedMaps > 0.

import (
	"net"
	"os"
	osexec "os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"blmr/internal/apps"
	blexec "blmr/internal/exec"
	"blmr/internal/mpexec"
	"blmr/internal/wal"
	"blmr/internal/workload"
)

// restartSubs are the job streams the coordinator subprocess submits, keyed
// by preset. Deterministic (seeded inputs), barrier-mode (byte-identical
// verification), sized so the phase the test kills at lasts long enough to
// hit under the worker-side slowdown env.
func restartSubs(preset string) []submission {
	switch preset {
	case "midqueue":
		return []submission{
			{apps.WordCount(), workload.Text(41, 900, 250, 8),
				blexec.Options{Mappers: 6, Reducers: 3, Mode: blexec.Barrier}},
			{apps.Sort(), workload.Text(42, 800, 200, 8),
				blexec.Options{Mappers: 4, Reducers: 2, Mode: blexec.Barrier, SpillBytes: 8 << 10}},
			{apps.WordCount(), workload.Text(43, 900, 250, 8),
				blexec.Options{Mappers: 4, Reducers: 3, Mode: blexec.Barrier}},
		}
	default: // midmap, midreduce
		return []submission{
			{apps.WordCount(), workload.Text(41, 1500, 300, 8),
				blexec.Options{Mappers: 6, Reducers: 3, Mode: blexec.Barrier}},
		}
	}
}

// runCoordProcess is the subprocess body TestMain dispatches to under
// MPEXEC_COORD_BIND: a durable service that submits the preset's jobs and
// runs until done — or until the test SIGKILLs it mid-flight.
func runCoordProcess(bind string) error {
	stateDir := os.Getenv("MPEXEC_COORD_STATE")
	nw, _ := strconv.Atoi(os.Getenv("MPEXEC_COORD_WORKERS"))
	maxConc, _ := strconv.Atoi(os.Getenv("MPEXEC_COORD_MAXCONC"))
	c, err := mpexec.ListenOn(bind)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.WaitWorkers(nw, 30*time.Second); err != nil {
		return err
	}
	svc, err := mpexec.NewService(c, nw, mpexec.ServiceConfig{
		StateDir: stateDir, Resolver: testResolver(), MaxConcurrent: maxConc,
	})
	if err != nil {
		return err
	}
	var tks []*mpexec.Ticket
	for _, sub := range restartSubs(os.Getenv("MPEXEC_COORD_JOBS")) {
		tk, err := svc.Submit(jobFor(sub.app), sub.input, sub.opts)
		if err != nil {
			return err
		}
		tks = append(tks, tk)
	}
	for _, tk := range tks {
		if _, err := tk.Wait(); err != nil {
			return err
		}
	}
	svc.Close()
	return nil
}

// restartCluster is one subprocess-coordinator run: its bind address and
// state dir (shared with the resuming service) and the coordinator process.
type restartCluster struct {
	addr     string
	stateDir string
	workers  int
	coord    *osexec.Cmd
}

// startRestartCluster picks a port, starts the coordinator subprocess bound
// to it, and spawns test-owned workers (with workerEnv) that dial it — and
// that survive it.
func startRestartCluster(t *testing.T, preset string, maxConc, workers int, workerEnv ...string) *restartCluster {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	rc := &restartCluster{addr: addr, stateDir: t.TempDir(), workers: workers}

	cmd := osexec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"MPEXEC_COORD_BIND="+addr,
		"MPEXEC_COORD_STATE="+rc.stateDir,
		"MPEXEC_COORD_WORKERS="+strconv.Itoa(workers),
		"MPEXEC_COORD_MAXCONC="+strconv.Itoa(maxConc),
		"MPEXEC_COORD_JOBS="+preset,
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn coordinator: %v", err)
	}
	rc.coord = cmd
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	spawnWorkers(t, addr, workers, append([]string{"MPEXEC_REGISTRY=1"}, workerEnv...)...)
	return rc
}

// journalKinds replays a (possibly mid-write) journal read-only and tallies
// records by kind byte.
func journalKinds(tb testing.TB, path string) map[byte]int {
	tb.Helper()
	recs, err := wal.Replay(path)
	if err != nil {
		tb.Fatalf("replay journal: %v", err)
	}
	counts := make(map[byte]int)
	for _, rec := range recs {
		if len(rec) > 0 {
			counts[rec[0]]++
		}
	}
	return counts
}

func (rc *restartCluster) journalCounts(t *testing.T) map[byte]int {
	return journalKinds(t, filepath.Join(rc.stateDir, "journal.wal"))
}

// waitJournal polls the journal until cond holds, failing if every
// submitted job completes first (the kill point was missed).
func (rc *restartCluster) waitJournal(t *testing.T, jobs int, cond func(map[byte]int) bool, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		counts := rc.journalCounts(t)
		if cond(counts) {
			return
		}
		if counts['d']+counts['x'] >= jobs {
			t.Fatalf("all %d jobs finished before the kill point (journal: %v)", jobs, counts)
		}
		if time.Now().After(deadline) {
			t.Fatalf("kill point not reached in %s (journal: %v)", timeout, counts)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// kill SIGKILLs the coordinator subprocess and reaps it.
func (rc *restartCluster) kill(t *testing.T) {
	t.Helper()
	if err := rc.coord.Process.Kill(); err != nil {
		t.Fatalf("kill coordinator: %v", err)
	}
	_, _ = rc.coord.Process.Wait()
}

// resume rebinds the coordinator address in-process (retrying while the
// kernel releases it), waits for the surviving workers to re-register, and
// restarts the service over the same state dir.
func (rc *restartCluster) resume(t *testing.T) *mpexec.Service {
	t.Helper()
	var c *mpexec.Coordinator
	deadline := time.Now().Add(10 * time.Second)
	for {
		var err error
		c, err = mpexec.ListenOn(rc.addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", rc.addr, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.WaitWorkers(rc.workers, 60*time.Second); err != nil {
		t.Fatalf("workers did not re-register: %v", err)
	}
	s, err := mpexec.NewService(c, rc.workers, mpexec.ServiceConfig{
		StateDir: rc.stateDir, Resolver: testResolver(),
	})
	if err != nil {
		t.Fatalf("resume service: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestClusterRestartMidMap: SIGKILL the coordinator with part of the map
// wave journaled, resume, and require byte-identical output with at least
// one map recovered by re-attach instead of re-execution.
func TestClusterRestartMidMap(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash-restart test")
	}
	rc := startRestartCluster(t, "midmap", 0, 3, "MPEXEC_SLOW=1")
	rc.waitJournal(t, 1, func(c map[byte]int) bool { return c['m'] >= 2 }, 60*time.Second)
	rc.kill(t)
	s := rc.resume(t)
	resumed := s.Resumed()
	if len(resumed) != 1 {
		t.Fatalf("resumed %d jobs, want 1", len(resumed))
	}
	res, err := resumed[0].Wait()
	if err != nil {
		t.Fatalf("resumed job failed: %v", err)
	}
	if res.ReattachedMaps == 0 {
		t.Fatalf("no maps re-attached (journal had completed maps on live workers)")
	}
	checkAgainstReference(t, "midmap-resume", restartSubs("midmap")[0], res)
}

// TestClusterRestartMidReduce: SIGKILL the coordinator after the map wave
// and at least one reduce completion are journaled — resume re-attaches the
// whole map wave, splices the journaled reduce output, re-runs the rest.
func TestClusterRestartMidReduce(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash-restart test")
	}
	rc := startRestartCluster(t, "midreduce", 0, 3, "MPEXEC_SLOWRED=1")
	rc.waitJournal(t, 1, func(c map[byte]int) bool { return c['r'] >= 1 }, 60*time.Second)
	rc.kill(t)
	s := rc.resume(t)
	resumed := s.Resumed()
	if len(resumed) != 1 {
		t.Fatalf("resumed %d jobs, want 1", len(resumed))
	}
	res, err := resumed[0].Wait()
	if err != nil {
		t.Fatalf("resumed job failed: %v", err)
	}
	if res.ReattachedMaps == 0 {
		t.Fatalf("no maps re-attached after a fully journaled map wave")
	}
	checkAgainstReference(t, "midreduce-resume", restartSubs("midreduce")[0], res)
}

// TestClusterRestartMidQueue: a 1-concurrent service with three admitted
// jobs is killed after the first completes — resume re-enters exactly the
// unfinished jobs (running and still-queued), each byte-identical.
func TestClusterRestartMidQueue(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash-restart test")
	}
	subs := restartSubs("midqueue")
	rc := startRestartCluster(t, "midqueue", 1, 3, "MPEXEC_SLOW=1")
	rc.waitJournal(t, len(subs), func(c map[byte]int) bool { return c['d'] >= 1 }, 120*time.Second)
	rc.kill(t)
	s := rc.resume(t)
	resumed := s.Resumed()
	if len(resumed) == 0 || len(resumed) > len(subs)-1 {
		t.Fatalf("resumed %d jobs, want 1..%d", len(resumed), len(subs)-1)
	}
	for _, tk := range resumed {
		if tk.ID <= 0 || tk.ID >= len(subs) {
			t.Fatalf("resumed ticket %d out of range (job 0 completed pre-kill)", tk.ID)
		}
		res, err := tk.Wait()
		if err != nil {
			t.Fatalf("resumed job %d failed: %v", tk.ID, err)
		}
		sub := subs[tk.ID]
		checkAgainstReference(t, sub.app.Name+"-resume", sub, res)
	}
}

// benchCoordRestart measures restart-to-completion after a coordinator
// crash at the map/reduce boundary of a slow-map, slow-reduce WordCount.
// The timed region is the full recovery path: rebind the address, wait for
// the three workers to re-register, replay the journal, and run the
// resumed job to completion. Reattach resumes against the intact journal —
// the whole map wave re-attaches from surviving sealed runs, so only the
// reduce tail re-runs; Cold resumes against the same journal with its
// map/reduce completions stripped, re-executing everything. Re-attach must
// beat cold by roughly the map wave. Snapshotted by scripts/bench.sh
// (coordinator crash-restart section).
func benchCoordRestart(b *testing.B, cold bool) {
	sub := submission{apps.WordCount(), workload.Text(47, 1500, 300, 8),
		blexec.Options{Mappers: 6, Reducers: 3, Mode: blexec.Barrier}}
	reattached := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := mpexec.Listen()
		if err != nil {
			b.Fatal(err)
		}
		addr := c.Addr()
		stateDir := b.TempDir()
		path := filepath.Join(stateDir, "journal.wal")
		spawnWorkers(b, addr, 3, "MPEXEC_REGISTRY=1", "MPEXEC_SLOW=1", "MPEXEC_SLOWRED=1")
		if err := c.WaitWorkers(3, 30*time.Second); err != nil {
			b.Fatal(err)
		}
		svc, err := mpexec.NewService(c, 3, mpexec.ServiceConfig{
			StateDir: stateDir, Resolver: testResolver(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Submit(jobFor(sub.app), sub.input, sub.opts); err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(60 * time.Second)
		for journalKinds(b, path)[jMapDoneKind] < sub.opts.Mappers {
			if time.Now().After(deadline) {
				b.Fatal("map wave not journaled in time")
			}
			time.Sleep(2 * time.Millisecond)
		}
		svc.Abandon()
		if cold {
			// Strip the completion records: same admission, no recoverable
			// task state — the re-execute-everything baseline.
			log, recs, err := wal.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			var kept [][]byte
			for _, rec := range recs {
				if len(rec) > 0 && (rec[0] == jMapDoneKind || rec[0] == jReduceDoneKind) {
					continue
				}
				kept = append(kept, rec)
			}
			if err := log.Compact(kept); err != nil {
				b.Fatal(err)
			}
			_ = log.Close()
		}

		b.StartTimer()
		var c2 *mpexec.Coordinator
		rebind := time.Now().Add(10 * time.Second)
		for {
			if c2, err = mpexec.ListenOn(addr); err == nil {
				break
			}
			if time.Now().After(rebind) {
				b.Fatalf("rebind %s: %v", addr, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err := c2.WaitWorkers(3, 60*time.Second); err != nil {
			b.Fatal(err)
		}
		svc2, err := mpexec.NewService(c2, 3, mpexec.ServiceConfig{
			StateDir: stateDir, Resolver: testResolver(),
		})
		if err != nil {
			b.Fatal(err)
		}
		resumed := svc2.Resumed()
		if len(resumed) != 1 {
			b.Fatalf("resumed %d jobs, want 1", len(resumed))
		}
		res, err := resumed[0].Wait()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if !cold && res.ReattachedMaps == 0 {
			b.Fatal("re-attach benchmark recovered nothing")
		}
		if cold && res.ReattachedMaps != 0 {
			b.Fatal("cold benchmark unexpectedly re-attached maps")
		}
		reattached += res.ReattachedMaps
		svc2.Close()
		c2.Close()
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(reattached)/float64(b.N), "reattached/job")
}

// Journal kind bytes mirrored for the test package (the schema doc in
// internal/mpexec/journal.go is authoritative).
const (
	jMapDoneKind    = byte('m')
	jReduceDoneKind = byte('r')
)

func BenchmarkCoordRestart_Cold(b *testing.B) {
	benchCoordRestart(b, true)
}

func BenchmarkCoordRestart_Reattach(b *testing.B) {
	benchCoordRestart(b, false)
}
