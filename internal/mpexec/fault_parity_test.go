package mpexec_test

// Sim-vs-real parity for worker-churn recovery: the simulator's
// harness.FaultPrediction models losing one of three workers mid-job; this
// test kills a real worker at the same relative point and requires the
// measured relative overhead to agree within harness.FaultTolerance. The
// band is wide (the sim predicts a calibrated multi-GB cluster, this is a
// laptop-scale wall-clock job), but it pins the sign and the order of
// magnitude of recovery cost to the model.

import (
	"math"
	"testing"
	"time"

	"blmr/internal/apps"
	blexec "blmr/internal/exec"
	"blmr/internal/harness"
	"blmr/internal/mpexec"
	"blmr/internal/mr"
	"blmr/internal/simmr"
	"blmr/internal/workload"
)

const parityKillFrac = 0.4

func TestClusterRecoveryParity(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock parity run")
	}
	input := workload.Text(27, 3000, 400, 8)
	opts := blexec.Options{Mappers: 6, Reducers: 3, Mode: blexec.Barrier}
	run := func(killAfter time.Duration) (*mr.Result, float64) {
		c, err := mpexec.Listen()
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		cmds := spawnWorkers(t, c.Addr(), 3, "MPEXEC_SLOW=1")
		if err := c.WaitWorkers(3, 30*time.Second); err != nil {
			t.Fatal(err)
		}
		if killAfter > 0 {
			go func() {
				time.Sleep(killAfter)
				_ = cmds[0].Process.Kill()
			}()
		}
		start := time.Now()
		res, err := c.Run(jobFor(apps.WordCount()), input, opts)
		if err != nil {
			t.Fatalf("job failed (killAfter=%v): %v", killAfter, err)
		}
		return res, time.Since(start).Seconds()
	}

	_, baseWall := run(0)
	killedRes, killedWall := run(time.Duration(parityKillFrac * baseWall * float64(time.Second)))
	measured := killedWall/baseWall - 1
	pred := harness.FaultPrediction(1, 3, parityKillFrac, simmr.Barrier)
	t.Logf("recovery overhead: measured %.2f (%.2fs -> %.2fs, %d map retries), predicted %.2f (lost=%d)",
		measured, baseWall, killedWall, killedRes.MapRetries, pred.Overhead, pred.LostMaps)
	if killedRes.MapRetries < 1 {
		t.Fatalf("the kill at %.0f%% of the base run cost no map re-execution", parityKillFrac*100)
	}
	if measured < -0.25 {
		t.Fatalf("killed run substantially faster than baseline (%.2f): measurement is broken", measured)
	}
	if diff := math.Abs(measured - pred.Overhead); diff > harness.FaultTolerance {
		t.Fatalf("sim and real recovery overhead disagree beyond the stated tolerance: |%.2f - %.2f| = %.2f > %.2f",
			measured, pred.Overhead, diff, harness.FaultTolerance)
	}
}
