// Package mpexec runs a MapReduce job across worker subprocesses: a
// Coordinator in the driver process dispatches map and reduce tasks over a
// loopback TCP control connection to Serve loops in worker processes, and
// workers exchange intermediate data as sealed spill runs served by each
// worker's run-server (the same shuffle.Server wire format the in-process
// TCP transport uses, fetched through each worker's pooled "BLR2" plane).
// The coordinator runs no user code — it ships input splits out, collects
// sealed-run metadata, routes it to reduce tasks, and concatenates their
// outputs — so the data plane is exactly the exec.RunMapTask /
// exec.RunReduceTask bodies the single-process engine runs, byte-identical
// output included.
//
// The control plane breaks the stage barrier: reduce tasks are dispatched
// at job start alongside the maps (unless exec.Options.Staged), and each
// completed map's 'm' metadata is re-routed as 'S' push frames to every
// running reduce task, so reducers fetch and consume sealed runs while
// later maps are still running — the paper's cross-wave overlap at real
// process granularity. The connection therefore carries concurrent
// in-flight tasks: replies are matched to requests by task identity
// (map index / partition), not by request/response order.
//
// Control wire format (one frame per message, over the worker's dialed
// connection; all integers unsigned varints, strings length-prefixed):
//
//	frame:       type byte | payloadLen | payload
//	'H' hello:   runServerAddr | workerName           (worker -> coord)
//	'A' reattach: jobCount | { job | fileCount | { fileID | crc } }
//	                                                  (worker -> coord)
//	'h' beat:    (empty)                              (worker -> coord)
//	'J' job:     job | name | mode | reducers | spillBytes | spillThreshold |
//	             kvCacheBytes | mergeFanIn | batchSize | combineKeys |
//	             queueCap | store | compression       (coord -> worker)
//	'j' jobEnd:  job                                  (coord -> worker)
//	'M' map:     job | index | attempt | recordCount | codec records
//	                                                  (coord -> worker)
//	'm' mapDone: job | index | attempt | shuffleRecords | spills |
//	             spilledBytes | rawSpilledBytes | serverOpens |
//	             waveCount | { fileID | comp | crc | spanCount | { off | n } }
//	'R' reduce:  job | partition | nMaps |
//	             mapCount | { mapIndex | attempt | segCount |
//	                          { addr | fileID | off | n | comp } }
//	'S' segPush: job | partition | mapIndex | attempt+1 | segCount |
//	             { segment }                          (coord -> worker)
//	'r' redDone: job | partition | spills | peakPartialBytes | mergePasses |
//	             spilledBytes | rawSpilledBytes | fetchBytes | fetchDials |
//	             serverOpens | recordCount | codec records
//	'E' error:   job | replyKind byte ('m'|'r') | id | message
//	                                                  (worker -> coord)
//	'F' abort:   job | message                        (coord -> worker)
//	'B' bye:     (empty)                              (coord -> worker)
//
// The coordinator is multi-tenant: every job-scoped frame leads with the
// coordinator-assigned job ID, so one worker pool carries several admitted
// jobs concurrently with no cross-talk — each job gets its own worker-side
// state (spill directory, reduce sources, buffered pushes, latched abort).
// 'J' opens a job on the worker: it names the user code (resolved from the
// worker's job registry — both sides are launched from the same binary) and
// ships the task-body option subset that must match the coordinator
// (mode, partition count, spill budget, codec, ...), so heterogeneous jobs
// can share one pool. 'j' closes it: the worker drops the job's state and
// removes its sealed runs once in-flight tasks drain. 'R' carries the
// routing snapshot of every map already completed at dispatch; one 'S'
// follows for each map that completes afterwards (empty segment lists
// included — the reduce task counts distinct maps to know when its routing
// table is sealed). 'F' aborts the job's running reduce sources, the
// cross-process mirror of a transport Fail. comp is the
// wave/segment's sealed-run codec (codec.Compression): sealed runs travel
// compressed between workers' run-servers and decompress only at the
// consuming merger.
//
// Failure semantics ride on two additions. 'h' heartbeats flow every
// exec.Options.HeartbeatInterval; the coordinator treats a worker silent
// for four intervals (or a closed control connection — the fast path for a
// killed process) as dead, re-executes the maps whose sealed runs died
// with it, and re-routes reducers. attempt is the job-unique attempt ID
// the scheduler stamped on the dispatch ('M' echoes it back on 'm'), so
// routing pushes from re-executions and speculative clones are ordered: a
// reduce task keeps the highest-attempt route per map and treats a
// replayed push of the attempt it already holds as an idempotent no-op.
// 'S' encodes the attempt as attempt+1; a zero in that position is a route
// invalidation (the map's previous owner died — the push carries no
// segments, and the reducer parks any fetch of that map until a
// replacement route arrives).
//
// Control-plane durability rides on 'A'. A worker follows every 'H' hello —
// first registration and re-registrations alike — with an 'A' re-attach
// frame advertising the sealed run files it still serves, per open job:
// each file's run-server ID plus the CRC-32C of its on-disk bytes,
// recomputed at advertise time. A restarted coordinator matches the
// advertisement against its replayed journal (which recorded each completed
// map's wave file IDs and seal-time CRCs) and re-attaches matching maps
// into the routing table instead of re-executing them. A fresh worker's 'A'
// is simply empty. Each wave's CRC also travels on 'm' so the coordinator
// can journal it.
package mpexec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"blmr/internal/codec"
	"blmr/internal/core"
	"blmr/internal/exec"
	"blmr/internal/shuffle"
	"blmr/internal/store"
)

// Message types.
const (
	msgHello      = 'H'
	msgReattach   = 'A'
	msgHeartbeat  = 'h'
	msgJobStart   = 'J'
	msgJobEnd     = 'j'
	msgMapTask    = 'M'
	msgMapDone    = 'm'
	msgReduceTask = 'R'
	msgReduceDone = 'r'
	msgSegPush    = 'S'
	msgError      = 'E'
	msgAbort      = 'F'
	msgBye        = 'B'
)

// maxFrame guards against garbage length prefixes (1 GiB).
const maxFrame = 1 << 30

func writeMsg(w io.Writer, typ byte, payload []byte) error {
	hdr := []byte{typ}
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readMsg(br *bufio.Reader) (byte, []byte, error) {
	typ, err := br.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, fmt.Errorf("mpexec: bad frame length: %w", err)
	}
	if n > maxFrame {
		return 0, nil, fmt.Errorf("mpexec: implausible frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, fmt.Errorf("mpexec: truncated frame: %w", err)
	}
	return typ, payload, nil
}

// dec is a cursor over one frame's payload with sticky errors.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("mpexec: corrupt uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if d.off+int(n) > len(d.buf) {
		d.err = fmt.Errorf("mpexec: truncated string at offset %d", d.off)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *dec) records() []core.Record {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	// A record encodes to >= 2 bytes (two zero-length strings), so any
	// count beyond remaining/2 is corrupt — reject it before allocating,
	// instead of letting a garbage varint panic makeslice.
	if n > uint64(len(d.buf)-d.off)/2 {
		d.err = fmt.Errorf("mpexec: implausible record count %d for %d payload bytes", n, len(d.buf)-d.off)
		return nil
	}
	out := make([]core.Record, 0, n)
	rd := codec.NewStreamReaderBytes(d.buf[d.off:])
	for i := uint64(0); i < n; i++ {
		rec, ok := rd.Next()
		if !ok {
			d.err = fmt.Errorf("mpexec: truncated record stream: %v", rd.Err())
			return nil
		}
		out = append(out, rec)
	}
	d.off = len(d.buf) // records are always the final field
	return out
}

func putStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func putRecords(b []byte, recs []core.Record) []byte {
	b = binary.AppendUvarint(b, uint64(len(recs)))
	return codec.AppendRecords(b, recs)
}

// encodeJobStart frames the 'J' that opens job id on a worker: the job's
// registry name plus the task-body option subset both sides must agree on.
func encodeJobStart(id int, name string, o exec.Options) []byte {
	b := binary.AppendUvarint(nil, uint64(id))
	b = putStr(b, name)
	b = binary.AppendUvarint(b, uint64(o.Mode))
	b = binary.AppendUvarint(b, uint64(o.Reducers))
	b = binary.AppendUvarint(b, uint64(o.SpillBytes))
	b = binary.AppendUvarint(b, uint64(o.SpillThresholdBytes))
	b = binary.AppendUvarint(b, uint64(o.KVCacheBytes))
	b = binary.AppendUvarint(b, uint64(o.MergeFanIn))
	b = binary.AppendUvarint(b, uint64(o.BatchSize))
	b = binary.AppendUvarint(b, uint64(o.CombineKeys))
	b = binary.AppendUvarint(b, uint64(o.QueueCap))
	b = binary.AppendUvarint(b, uint64(o.Store))
	b = binary.AppendUvarint(b, uint64(o.Compression))
	return b
}

// decodeJobStart unpacks a 'J' frame into the job id, registry name, and a
// patch over the worker's base options.
func decodeJobStart(payload []byte, base exec.Options) (id int, name string, o exec.Options, err error) {
	d := &dec{buf: payload}
	id = int(d.uvarint())
	name = d.str()
	o = base
	o.Mode = exec.Mode(d.uvarint())
	o.Reducers = int(d.uvarint())
	o.SpillBytes = int64(d.uvarint())
	o.SpillThresholdBytes = int64(d.uvarint())
	o.KVCacheBytes = int64(d.uvarint())
	o.MergeFanIn = int(d.uvarint())
	o.BatchSize = int(d.uvarint())
	o.CombineKeys = int(d.uvarint())
	o.QueueCap = int(d.uvarint())
	o.Store = store.Kind(d.uvarint())
	o.Compression = codec.Compression(d.uvarint())
	return id, name, o, d.err
}

// waveMeta is one sealed wave's location as the coordinator tracks it.
type waveMeta struct {
	addr   string
	fileID uint64
	comp   codec.Compression
	crc    uint32 // seal-time CRC-32C of the file (re-attach identity)
	spans  []shuffle.Span
}

// segmentOf returns partition r's segment of the wave, ok=false when empty.
func (w waveMeta) segmentOf(r int) (shuffle.Segment, bool) {
	if r >= len(w.spans) || w.spans[r].N == 0 {
		return shuffle.Segment{}, false
	}
	sp := w.spans[r]
	return shuffle.Segment{Addr: w.addr, FileID: w.fileID, Off: sp.Off, N: sp.N, Comp: w.comp}, true
}

// mapDone carries one completed map task's stats alongside its waves.
type mapDone struct {
	job             int
	index           int
	attempt         int
	shuffleRecords  int64
	spills          int
	spilledBytes    int64
	rawSpilledBytes int64
	serverOpens     int64
	waves           []waveMeta
}

func encodeMapDone(job, index, attempt int, shuffleRecords int64, spills int, spilledBytes, rawSpilledBytes, serverOpens int64, waves []shuffle.Wave) []byte {
	b := binary.AppendUvarint(nil, uint64(job))
	b = binary.AppendUvarint(b, uint64(index))
	b = binary.AppendUvarint(b, uint64(attempt))
	b = binary.AppendUvarint(b, uint64(shuffleRecords))
	b = binary.AppendUvarint(b, uint64(spills))
	b = binary.AppendUvarint(b, uint64(spilledBytes))
	b = binary.AppendUvarint(b, uint64(rawSpilledBytes))
	b = binary.AppendUvarint(b, uint64(serverOpens))
	b = binary.AppendUvarint(b, uint64(len(waves)))
	for _, w := range waves {
		b = binary.AppendUvarint(b, w.FileID)
		b = binary.AppendUvarint(b, uint64(w.Comp))
		b = binary.AppendUvarint(b, uint64(w.CRC))
		b = binary.AppendUvarint(b, uint64(len(w.Spans)))
		for _, sp := range w.Spans {
			b = binary.AppendUvarint(b, uint64(sp.Off))
			b = binary.AppendUvarint(b, uint64(sp.N))
		}
	}
	return b
}

func decodeMapDone(payload []byte, addr string) (mapDone, error) {
	d := &dec{buf: payload}
	md := mapDone{
		job:             int(d.uvarint()),
		index:           int(d.uvarint()),
		attempt:         int(d.uvarint()),
		shuffleRecords:  int64(d.uvarint()),
		spills:          int(d.uvarint()),
		spilledBytes:    int64(d.uvarint()),
		rawSpilledBytes: int64(d.uvarint()),
		serverOpens:     int64(d.uvarint()),
	}
	n := d.uvarint()
	for i := uint64(0); i < n && d.err == nil; i++ {
		w := waveMeta{addr: addr, fileID: d.uvarint(), comp: codec.Compression(d.uvarint()), crc: uint32(d.uvarint())}
		spanN := d.uvarint()
		for j := uint64(0); j < spanN && d.err == nil; j++ {
			off := int64(d.uvarint())
			ln := int64(d.uvarint())
			w.spans = append(w.spans, shuffle.Span{Off: off, N: ln})
		}
		md.waves = append(md.waves, w)
	}
	return md, d.err
}

func putSegs(b []byte, segs []shuffle.Segment) []byte {
	b = binary.AppendUvarint(b, uint64(len(segs)))
	for _, s := range segs {
		b = putStr(b, s.Addr)
		b = binary.AppendUvarint(b, s.FileID)
		b = binary.AppendUvarint(b, uint64(s.Off))
		b = binary.AppendUvarint(b, uint64(s.N))
		b = binary.AppendUvarint(b, uint64(s.Comp))
	}
	return b
}

func (d *dec) segs() []shuffle.Segment {
	n := d.uvarint()
	var segs []shuffle.Segment
	for i := uint64(0); i < n && d.err == nil; i++ {
		s := shuffle.Segment{Addr: d.str()}
		s.FileID = d.uvarint()
		s.Off = int64(d.uvarint())
		s.N = int64(d.uvarint())
		s.Comp = codec.Compression(d.uvarint())
		segs = append(segs, s)
	}
	return segs
}

// mapSegs is one completed map task's segments for one partition, tagged
// with the attempt that produced them. attempt == -1 is a route
// invalidation (the owning worker died; replacement segments follow under
// a higher attempt).
type mapSegs struct {
	mapIndex int
	attempt  int
	segs     []shuffle.Segment
}

func encodeReduceTask(job, partition, nMaps int, routed []mapSegs) []byte {
	b := binary.AppendUvarint(nil, uint64(job))
	b = binary.AppendUvarint(b, uint64(partition))
	b = binary.AppendUvarint(b, uint64(nMaps))
	b = binary.AppendUvarint(b, uint64(len(routed)))
	for _, ms := range routed {
		b = binary.AppendUvarint(b, uint64(ms.mapIndex))
		b = binary.AppendUvarint(b, uint64(ms.attempt))
		b = putSegs(b, ms.segs)
	}
	return b
}

func decodeReduceTask(payload []byte) (job, partition, nMaps int, routed []mapSegs, err error) {
	d := &dec{buf: payload}
	job = int(d.uvarint())
	partition = int(d.uvarint())
	nMaps = int(d.uvarint())
	n := d.uvarint()
	for i := uint64(0); i < n && d.err == nil; i++ {
		ms := mapSegs{mapIndex: int(d.uvarint()), attempt: int(d.uvarint())}
		ms.segs = d.segs()
		routed = append(routed, ms)
	}
	return job, partition, nMaps, routed, d.err
}

// encodeSegPush frames one routing push. attempt == -1 encodes an
// invalidation (wire value 0; segs must be nil).
func encodeSegPush(job, partition, mapIndex, attempt int, segs []shuffle.Segment) []byte {
	b := binary.AppendUvarint(nil, uint64(job))
	b = binary.AppendUvarint(b, uint64(partition))
	b = binary.AppendUvarint(b, uint64(mapIndex))
	b = binary.AppendUvarint(b, uint64(attempt+1))
	return putSegs(b, segs)
}

func decodeSegPush(payload []byte) (job, partition, mapIndex, attempt int, segs []shuffle.Segment, err error) {
	d := &dec{buf: payload}
	job = int(d.uvarint())
	partition = int(d.uvarint())
	mapIndex = int(d.uvarint())
	attempt = int(d.uvarint()) - 1
	segs = d.segs()
	return job, partition, mapIndex, attempt, segs, d.err
}

// encodeTaskError frames a worker-side task failure: the job, the reply
// kind the coordinator is awaiting ('m' or 'r'), the task id, and the
// message.
func encodeTaskError(job int, replyKind byte, id int, msg string) []byte {
	b := binary.AppendUvarint(nil, uint64(job))
	b = append(b, replyKind)
	b = binary.AppendUvarint(b, uint64(id))
	return putStr(b, msg)
}

// sealedFile is one surviving sealed run a returning worker advertises:
// its run-server file ID and the CRC-32C of its on-disk bytes.
type sealedFile struct {
	fileID uint64
	crc    uint32
}

// encodeReattach frames the 'A' advertisement: for each open job, the
// sealed files the worker verified on disk at advertise time. A worker with
// nothing to re-attach sends an empty map.
func encodeReattach(sealed map[int][]sealedFile) []byte {
	b := binary.AppendUvarint(nil, uint64(len(sealed)))
	for job, files := range sealed {
		b = binary.AppendUvarint(b, uint64(job))
		b = binary.AppendUvarint(b, uint64(len(files)))
		for _, f := range files {
			b = binary.AppendUvarint(b, f.fileID)
			b = binary.AppendUvarint(b, uint64(f.crc))
		}
	}
	return b
}

// decodeReattach unpacks an 'A' frame into job -> fileID -> crc.
func decodeReattach(payload []byte) (map[int]map[uint64]uint32, error) {
	d := &dec{buf: payload}
	n := d.uvarint()
	out := make(map[int]map[uint64]uint32, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		job := int(d.uvarint())
		fn := d.uvarint()
		files := make(map[uint64]uint32, fn)
		for j := uint64(0); j < fn && d.err == nil; j++ {
			id := d.uvarint()
			files[id] = uint32(d.uvarint())
		}
		out[job] = files
	}
	return out, d.err
}

func decodeTaskError(payload []byte) (job int, replyKind byte, id int, msg string, err error) {
	d := &dec{buf: payload}
	job = int(d.uvarint())
	if d.err == nil && d.off >= len(d.buf) {
		d.err = fmt.Errorf("mpexec: truncated error frame")
	}
	if d.err != nil {
		return 0, 0, 0, "", d.err
	}
	replyKind = d.buf[d.off]
	d.off++
	id = int(d.uvarint())
	msg = d.str()
	return job, replyKind, id, msg, d.err
}
