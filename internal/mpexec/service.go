package mpexec

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"blmr/internal/core"
	"blmr/internal/exec"
	"blmr/internal/mr"
	"blmr/internal/wal"
)

// Service is the long-running, multi-tenant face of the multi-process
// engine: one Coordinator, one worker pool, and a stream of submitted jobs.
// Admission control is a bounded queue (a full queue rejects instead of
// buffering unboundedly) feeding a dispatcher that keeps at most
// MaxConcurrent jobs running; every admitted job gets its per-worker slot
// shares, the shared cross-job SlotPool, and a fresh instance of the
// configured placement policy. Close drains: already-admitted jobs run to
// completion, new submissions are refused.
//
// Per-job isolation is inherited from the coordinator's job IDs: each job's
// control frames, worker-side spill directories, reduce sources and abort
// latch are its own, so a failing (or churn-hit) job cannot corrupt a
// neighbor, and every job's barrier output stays byte-identical to the
// single-process engine's.

// Service errors distinguish "try later" from "gone".
var (
	// ErrQueueFull rejects a submission when the admission queue is at
	// capacity — backpressure, not failure; the caller may retry.
	ErrQueueFull = errors.New("mpexec: admission queue full")
	// ErrServiceClosed rejects submissions after Close began draining.
	ErrServiceClosed = errors.New("mpexec: service closed")
)

// ServiceConfig shapes the service's admission and sharing behavior. The
// zero value is usable: see the field defaults.
type ServiceConfig struct {
	// MaxQueued bounds the admission queue (default 16).
	MaxQueued int
	// MaxConcurrent bounds simultaneously running jobs (default 2).
	MaxConcurrent int
	// MapShare is each job's per-worker map slots (default 1).
	MapShare int
	// ReduceShare is each job's per-worker reduce dispatch width
	// (default 0 = auto: the whole wave up front, or 1 when staged).
	ReduceShare int
	// PoolMapSlots caps running map tasks per worker across all jobs
	// (default MaxConcurrent*MapShare — full shares for everyone; a
	// negative value removes the cap).
	PoolMapSlots int
	// PoolReduceSlots caps running reduce tasks per worker across all jobs
	// (default 0 = unlimited: overlapped reduce tasks are mostly parked
	// goroutines, not CPU work).
	PoolReduceSlots int
	// Policy names the placement policy every job runs under (see
	// exec.PolicyNames; "" = work-stealing dispatch). Each job gets a
	// fresh instance, so stateful policies (round-robin cursors) don't
	// leak placement across jobs.
	Policy string

	// StateDir, when non-empty, makes the service durable: every state
	// transition — job admitted, map attempt completed, reduce partition
	// completed, job done/aborted — is appended to StateDir/journal.wal
	// before it takes effect downstream. NewService replays the journal
	// first, so a service restarted over the same StateDir re-enters every
	// job that was admitted but unfinished when the previous process died,
	// re-attaching completed maps that survived on returning workers (see
	// ReattachState). Empty keeps the service purely in-memory.
	StateDir string
	// Resolver maps a journaled job name back to its user code on resume —
	// the journal records inputs and options but never functions. Required
	// when StateDir's journal holds live jobs; a name it cannot resolve
	// fails NewService. Typically the same registry serve-mode workers use.
	Resolver JobResolver
}

func (c *ServiceConfig) normalize() {
	if c.MaxQueued <= 0 {
		c.MaxQueued = 16
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.MapShare <= 0 {
		c.MapShare = 1
	}
	if c.ReduceShare < 0 {
		c.ReduceShare = 0
	}
	switch {
	case c.PoolMapSlots < 0:
		c.PoolMapSlots = 0 // explicit "no cap"
	case c.PoolMapSlots == 0:
		c.PoolMapSlots = c.MaxConcurrent * c.MapShare
	}
	if c.PoolReduceSlots < 0 {
		c.PoolReduceSlots = 0
	}
}

// Ticket is one submitted job's handle. The submitter blocks on Wait (or
// selects on Done) for the result; tickets resolve in completion order, not
// submission order.
type Ticket struct {
	// ID is the service-assigned submission number (dense, from 0). A
	// durable service doubles it as the journal ticket, so resumed tickets
	// keep their pre-crash IDs.
	ID int

	job   exec.Job
	input []core.Record
	opts  exec.Options

	jobID  int            // journaled coordinator job ID (resume; 0 = fresh)
	resume *ReattachState // replayed journal state (resume; nil = fresh)

	done chan struct{}
	res  *mr.Result
	err  error
}

// Spec returns the ticket's job, input and options — what a resumed ticket
// will run, for verification harnesses re-deriving a reference result.
func (t *Ticket) Spec() (exec.Job, []core.Record, exec.Options) {
	return t.job, t.input, t.opts
}

// Done is closed when the job completes (either way).
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks for the job's result.
func (t *Ticket) Wait() (*mr.Result, error) {
	<-t.done
	return t.res, t.err
}

// Service runs a stream of jobs on one coordinator's worker pool.
type Service struct {
	coord *Coordinator
	cfg   ServiceConfig
	pool  *exec.SlotPool

	queue    chan *Ticket
	dispDone chan struct{}
	wg       sync.WaitGroup // running jobs

	mu      sync.Mutex
	closed  bool
	nextID  int
	running int

	// Journal state (StateDir services only; log == nil otherwise). jmu
	// serializes appends from Submit, completion and coordinator task
	// goroutines, and guards the retained-record index compaction reads.
	jmu       sync.Mutex
	log       *wal.Log
	abandoned bool              // crash simulation: suppress all appends
	jlive     map[uint64]*jrecs // live ticket -> its latest records
	jorder    []uint64          // live tickets in admission order
	japps     int               // records framed since the last rewrite
	resumed   []*Ticket
}

// jrecs retains a live ticket's latest journal records (one admit, one
// start, the winning record per map index and per partition) so compaction
// can rewrite the journal down to exactly the state replay would keep.
type jrecs struct {
	admit, start []byte
	maps         map[int][]byte
	reds         map[int][]byte
}

// NewService starts a job service over the coordinator's worker pool.
// workers is the pool size the cross-job slot ledger covers — pass the
// number of workers the coordinator waits for (workers registering later
// are scheduled but not slot-capped). The config's policy name is
// validated here so a bad -policy fails at startup, not per job.
//
// With a StateDir, NewService first replays the journal: every job that
// was admitted but unfinished when the previous process died is re-entered
// (same ticket ID, same coordinator job ID, same input and options) ahead
// of any new submission, and the coordinator's job ID counter is placed
// past the journaled history. Returning workers must already be registered
// on c — re-attach matches their advertisements at job admission — so call
// WaitWorkers before NewService when resuming.
func NewService(c *Coordinator, workers int, cfg ServiceConfig) (*Service, error) {
	cfg.normalize()
	if _, err := exec.ParsePolicy(cfg.Policy); err != nil {
		return nil, err
	}
	s := &Service{
		coord:    c,
		cfg:      cfg,
		pool:     exec.NewSlotPool(workers, cfg.PoolMapSlots, cfg.PoolReduceSlots),
		dispDone: make(chan struct{}),
	}
	if cfg.StateDir != "" {
		if err := s.openJournal(c, cfg); err != nil {
			return nil, err
		}
	}
	// The queue is sized for the admission bound plus every resumed ticket,
	// which must enqueue (in admission order, ahead of new submissions)
	// without blocking before the dispatcher starts; Submit enforces
	// MaxQueued explicitly.
	s.queue = make(chan *Ticket, cfg.MaxQueued+len(s.resumed))
	for _, t := range s.resumed {
		s.queue <- t
	}
	go s.dispatch()
	return s, nil
}

// openJournal replays StateDir's journal into resumed tickets and leaves
// the log open for appending (torn tail truncated).
func (s *Service) openJournal(c *Coordinator, cfg ServiceConfig) error {
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return fmt.Errorf("mpexec: state dir: %w", err)
	}
	log, recs, err := wal.Open(filepath.Join(cfg.StateDir, "journal.wal"))
	if err != nil {
		return fmt.Errorf("mpexec: open journal: %w", err)
	}
	live, maxTicket, maxJobID, err := replayJournal(recs)
	if err != nil {
		_ = log.Close()
		return err
	}
	s.log, s.japps = log, len(recs)
	s.jlive = make(map[uint64]*jrecs, len(live))
	for _, jj := range live {
		t := &Ticket{
			ID: int(jj.ticket), input: jj.input, opts: jj.opts,
			jobID: jj.jobID, resume: jj.reattachState(),
			done: make(chan struct{}),
		}
		ok := false
		if cfg.Resolver != nil {
			t.job, ok = cfg.Resolver(jj.name)
		}
		if !ok {
			_ = log.Close()
			return fmt.Errorf("mpexec: resume: cannot resolve journaled job %d (%q) — configure ServiceConfig.Resolver", jj.ticket, jj.name)
		}
		t.job.Name = jj.name
		s.retainJob(jj)
		s.resumed = append(s.resumed, t)
	}
	if len(recs) > 0 {
		s.nextID = int(maxTicket) + 1
	}
	c.SetMinJobID(maxJobID + 1)
	return nil
}

// Resumed returns the tickets replayed out of the journal at startup, in
// admission order. Callers resume-verifying a restarted service wait on
// these.
func (s *Service) Resumed() []*Ticket {
	return append([]*Ticket(nil), s.resumed...)
}

// Submit admits one job, never blocking: a full queue returns ErrQueueFull
// (backpressure) and a draining service returns ErrServiceClosed. The
// returned ticket resolves when the job completes. A durable service
// journals the admission — spec, input and options — before the ticket
// enters the queue, so a submission this method accepted survives a crash.
func (s *Service) Submit(job exec.Job, input []core.Record, opts exec.Options) (*Ticket, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrServiceClosed
	}
	if len(s.queue) >= s.cfg.MaxQueued {
		return nil, ErrQueueFull
	}
	t := &Ticket{ID: s.nextID, job: job, input: input, opts: opts, done: make(chan struct{})}
	if err := s.journal(encodeJournalAdmit(uint64(t.ID), job.Name, opts, input)); err != nil {
		return nil, fmt.Errorf("mpexec: journal admit: %w", err)
	}
	// Cannot block: capacity was checked under s.mu and only the dispatcher
	// drains the queue.
	s.queue <- t
	s.nextID++
	return t, nil
}

// Stats reports the queue depth and running job count, for admission
// decisions and tests.
func (s *Service) Stats() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue), s.running
}

// Close drains the service: no new submissions, every already-admitted job
// (queued or running) completes, then Close returns. The coordinator stays
// open — callers own its lifecycle.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.dispDone
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	<-s.dispDone
	s.wg.Wait()
	s.jmu.Lock()
	if s.log != nil {
		_ = s.log.Close()
		s.log = nil
	}
	s.jmu.Unlock()
}

// dispatch admits queued jobs up to the concurrency bound, each in its own
// runner goroutine, until the queue closes and drains.
func (s *Service) dispatch() {
	defer close(s.dispDone)
	sem := make(chan struct{}, s.cfg.MaxConcurrent)
	for {
		// Claim the run slot before dequeuing: a ticket leaves the queue
		// only when it can start, so MaxQueued is a strict admission bound
		// (no hidden +1 sitting in the dispatcher's hand).
		sem <- struct{}{}
		t, ok := <-s.queue
		if !ok {
			return
		}
		s.mu.Lock()
		s.running++
		s.mu.Unlock()
		s.wg.Add(1)
		go func(t *Ticket) {
			defer func() {
				<-sem
				s.mu.Lock()
				s.running--
				s.mu.Unlock()
				s.wg.Done()
			}()
			s.run(t)
		}(t)
	}
}

// run executes one admitted job under the service's sharing config.
func (s *Service) run(t *Ticket) {
	policy, err := exec.ParsePolicy(s.cfg.Policy) // fresh instance per job
	if err != nil {
		t.err = fmt.Errorf("mpexec: job %d: %w", t.ID, err)
		close(t.done)
		return
	}
	jc := JobConfig{
		MapSlots:    s.cfg.MapShare,
		ReduceSlots: s.cfg.ReduceShare,
		Pool:        s.pool,
		Policy:      policy,
	}
	if s.log != nil {
		jc.Ticket = uint64(t.ID)
		jc.Journal = s.journalBestEffort
		jc.JobID = t.jobID
		jc.Reattach = t.resume
	}
	t.res, t.err = s.coord.RunJob(t.job, t.input, t.opts, jc)
	// Retire the ticket in the journal (and compact when the dead-record
	// overhang warrants it) before the submitter observes completion.
	if t.err == nil {
		_ = s.journal(encodeJournalDone(uint64(t.ID)))
	} else {
		_ = s.journal(encodeJournalAborted(uint64(t.ID), t.err.Error()))
	}
	close(t.done)
}

// journal appends one record to the write-ahead log and retains it for
// compaction. No-op for in-memory services and after Abandon.
func (s *Service) journal(rec []byte) error {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if s.log == nil || s.abandoned {
		return nil
	}
	if err := s.log.Append(rec); err != nil {
		return err
	}
	s.japps++
	s.retain(rec)
	s.maybeCompact()
	return nil
}

// journalBestEffort is the coordinator's append hook: a journal write
// failure degrades durability (the transition re-runs after a crash) but
// must not fail the task that completed.
func (s *Service) journalBestEffort(rec []byte) { _ = s.journal(rec) }

// retain indexes one appended record under its ticket, keeping only the
// records replay would keep. Caller holds jmu.
func (s *Service) retain(rec []byte) {
	kind, ticket, err := journalKey(rec)
	if err != nil {
		return
	}
	e := s.jlive[ticket]
	switch kind {
	case jAdmit:
		s.jlive[ticket] = &jrecs{admit: rec, maps: make(map[int][]byte), reds: make(map[int][]byte)}
		s.jorder = append(s.jorder, ticket)
	case jStart:
		if e != nil {
			e.start = rec
		}
	case jMapDone, jReduceDone:
		if e == nil {
			return
		}
		d := &dec{buf: rec, off: 1}
		d.uvarint() // ticket
		id := int(d.uvarint())
		if d.err != nil {
			return
		}
		if kind == jMapDone {
			e.maps[id] = rec
		} else {
			e.reds[id] = rec
		}
	case jDone, jAborted:
		delete(s.jlive, ticket)
	}
}

// retainJob rebuilds a replayed job's retained records (resume startup).
func (s *Service) retainJob(jj *journalJob) {
	e := &jrecs{
		admit: encodeJournalAdmit(jj.ticket, jj.name, jj.opts, jj.input),
		maps:  make(map[int][]byte, len(jj.maps)),
		reds:  make(map[int][]byte, len(jj.reduces)),
	}
	if jj.jobID > 0 {
		e.start = encodeJournalStart(jj.ticket, jj.jobID)
	}
	for idx, jm := range jj.maps {
		e.maps[idx] = encodeJournalMapDone(jj.ticket, idx, jm.attempt, jm.worker,
			mapDone{shuffleRecords: jm.shuffleRecords, spills: jm.spills, waves: jm.waves})
	}
	for part, res := range jj.reduces {
		e.reds[part] = encodeJournalReduceDone(jj.ticket, part, res)
	}
	s.jlive[jj.ticket] = e
	s.jorder = append(s.jorder, jj.ticket)
}

// maybeCompact rewrites the journal down to the live tickets' records when
// the file holds more than twice as many records as replay would keep
// (plus a floor so small journals never churn). Caller holds jmu.
func (s *Service) maybeCompact() {
	liveRecs := 0
	for _, e := range s.jlive {
		liveRecs += 1 + len(e.maps) + len(e.reds)
		if e.start != nil {
			liveRecs++
		}
	}
	if s.japps <= 2*liveRecs+64 {
		return
	}
	var recs [][]byte
	order := s.jorder[:0]
	for _, ticket := range s.jorder {
		e, ok := s.jlive[ticket]
		if !ok {
			continue // retired
		}
		order = append(order, ticket)
		recs = append(recs, e.admit)
		if e.start != nil {
			recs = append(recs, e.start)
		}
		for _, id := range sortedKeys(e.maps) {
			recs = append(recs, e.maps[id])
		}
		for _, id := range sortedKeys(e.reds) {
			recs = append(recs, e.reds[id])
		}
	}
	s.jorder = order
	if err := s.log.Compact(recs); err != nil {
		return // keep appending to the uncompacted journal
	}
	s.japps = len(recs)
}

func sortedKeys(m map[int][]byte) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Abandon simulates this service process dying without cleanup, for
// restart tests and benchmarks: journal appends stop (a SIGKILLed process
// writes nothing either), the log file handle closes so a successor can
// reopen it, and the coordinator is abandoned — listener and worker
// connections sever with no teardown handshake. In-flight jobs fail with
// worker-lost errors whose abort records are deliberately suppressed, so
// a successor service replays them as live and resumes them. The Service
// is dead afterwards; do not Close it.
func (s *Service) Abandon() {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	s.jmu.Lock()
	s.abandoned = true
	if s.log != nil {
		_ = s.log.Close()
	}
	s.jmu.Unlock()
	if !alreadyClosed {
		close(s.queue)
	}
	s.coord.Abandon()
}
