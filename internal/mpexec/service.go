package mpexec

import (
	"errors"
	"fmt"
	"sync"

	"blmr/internal/core"
	"blmr/internal/exec"
	"blmr/internal/mr"
)

// Service is the long-running, multi-tenant face of the multi-process
// engine: one Coordinator, one worker pool, and a stream of submitted jobs.
// Admission control is a bounded queue (a full queue rejects instead of
// buffering unboundedly) feeding a dispatcher that keeps at most
// MaxConcurrent jobs running; every admitted job gets its per-worker slot
// shares, the shared cross-job SlotPool, and a fresh instance of the
// configured placement policy. Close drains: already-admitted jobs run to
// completion, new submissions are refused.
//
// Per-job isolation is inherited from the coordinator's job IDs: each job's
// control frames, worker-side spill directories, reduce sources and abort
// latch are its own, so a failing (or churn-hit) job cannot corrupt a
// neighbor, and every job's barrier output stays byte-identical to the
// single-process engine's.

// Service errors distinguish "try later" from "gone".
var (
	// ErrQueueFull rejects a submission when the admission queue is at
	// capacity — backpressure, not failure; the caller may retry.
	ErrQueueFull = errors.New("mpexec: admission queue full")
	// ErrServiceClosed rejects submissions after Close began draining.
	ErrServiceClosed = errors.New("mpexec: service closed")
)

// ServiceConfig shapes the service's admission and sharing behavior. The
// zero value is usable: see the field defaults.
type ServiceConfig struct {
	// MaxQueued bounds the admission queue (default 16).
	MaxQueued int
	// MaxConcurrent bounds simultaneously running jobs (default 2).
	MaxConcurrent int
	// MapShare is each job's per-worker map slots (default 1).
	MapShare int
	// ReduceShare is each job's per-worker reduce dispatch width
	// (default 0 = auto: the whole wave up front, or 1 when staged).
	ReduceShare int
	// PoolMapSlots caps running map tasks per worker across all jobs
	// (default MaxConcurrent*MapShare — full shares for everyone; a
	// negative value removes the cap).
	PoolMapSlots int
	// PoolReduceSlots caps running reduce tasks per worker across all jobs
	// (default 0 = unlimited: overlapped reduce tasks are mostly parked
	// goroutines, not CPU work).
	PoolReduceSlots int
	// Policy names the placement policy every job runs under (see
	// exec.PolicyNames; "" = work-stealing dispatch). Each job gets a
	// fresh instance, so stateful policies (round-robin cursors) don't
	// leak placement across jobs.
	Policy string
}

func (c *ServiceConfig) normalize() {
	if c.MaxQueued <= 0 {
		c.MaxQueued = 16
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.MapShare <= 0 {
		c.MapShare = 1
	}
	if c.ReduceShare < 0 {
		c.ReduceShare = 0
	}
	switch {
	case c.PoolMapSlots < 0:
		c.PoolMapSlots = 0 // explicit "no cap"
	case c.PoolMapSlots == 0:
		c.PoolMapSlots = c.MaxConcurrent * c.MapShare
	}
	if c.PoolReduceSlots < 0 {
		c.PoolReduceSlots = 0
	}
}

// Ticket is one submitted job's handle. The submitter blocks on Wait (or
// selects on Done) for the result; tickets resolve in completion order, not
// submission order.
type Ticket struct {
	// ID is the service-assigned submission number (dense, from 0).
	ID int

	job   exec.Job
	input []core.Record
	opts  exec.Options

	done chan struct{}
	res  *mr.Result
	err  error
}

// Done is closed when the job completes (either way).
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks for the job's result.
func (t *Ticket) Wait() (*mr.Result, error) {
	<-t.done
	return t.res, t.err
}

// Service runs a stream of jobs on one coordinator's worker pool.
type Service struct {
	coord *Coordinator
	cfg   ServiceConfig
	pool  *exec.SlotPool

	queue    chan *Ticket
	dispDone chan struct{}
	wg       sync.WaitGroup // running jobs

	mu      sync.Mutex
	closed  bool
	nextID  int
	running int
}

// NewService starts a job service over the coordinator's worker pool.
// workers is the pool size the cross-job slot ledger covers — pass the
// number of workers the coordinator waits for (workers registering later
// are scheduled but not slot-capped). The config's policy name is
// validated here so a bad -policy fails at startup, not per job.
func NewService(c *Coordinator, workers int, cfg ServiceConfig) (*Service, error) {
	cfg.normalize()
	if _, err := exec.ParsePolicy(cfg.Policy); err != nil {
		return nil, err
	}
	s := &Service{
		coord:    c,
		cfg:      cfg,
		pool:     exec.NewSlotPool(workers, cfg.PoolMapSlots, cfg.PoolReduceSlots),
		queue:    make(chan *Ticket, cfg.MaxQueued),
		dispDone: make(chan struct{}),
	}
	go s.dispatch()
	return s, nil
}

// Submit admits one job, never blocking: a full queue returns ErrQueueFull
// (backpressure) and a draining service returns ErrServiceClosed. The
// returned ticket resolves when the job completes.
func (s *Service) Submit(job exec.Job, input []core.Record, opts exec.Options) (*Ticket, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrServiceClosed
	}
	t := &Ticket{ID: s.nextID, job: job, input: input, opts: opts, done: make(chan struct{})}
	select {
	case s.queue <- t:
		s.nextID++
		return t, nil
	default:
		return nil, ErrQueueFull
	}
}

// Stats reports the queue depth and running job count, for admission
// decisions and tests.
func (s *Service) Stats() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue), s.running
}

// Close drains the service: no new submissions, every already-admitted job
// (queued or running) completes, then Close returns. The coordinator stays
// open — callers own its lifecycle.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.dispDone
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	<-s.dispDone
	s.wg.Wait()
}

// dispatch admits queued jobs up to the concurrency bound, each in its own
// runner goroutine, until the queue closes and drains.
func (s *Service) dispatch() {
	defer close(s.dispDone)
	sem := make(chan struct{}, s.cfg.MaxConcurrent)
	for {
		// Claim the run slot before dequeuing: a ticket leaves the queue
		// only when it can start, so MaxQueued is a strict admission bound
		// (no hidden +1 sitting in the dispatcher's hand).
		sem <- struct{}{}
		t, ok := <-s.queue
		if !ok {
			return
		}
		s.mu.Lock()
		s.running++
		s.mu.Unlock()
		s.wg.Add(1)
		go func(t *Ticket) {
			defer func() {
				<-sem
				s.mu.Lock()
				s.running--
				s.mu.Unlock()
				s.wg.Done()
			}()
			s.run(t)
		}(t)
	}
}

// run executes one admitted job under the service's sharing config.
func (s *Service) run(t *Ticket) {
	policy, err := exec.ParsePolicy(s.cfg.Policy) // fresh instance per job
	if err != nil {
		t.err = fmt.Errorf("mpexec: job %d: %w", t.ID, err)
		close(t.done)
		return
	}
	t.res, t.err = s.coord.RunJob(t.job, t.input, t.opts, JobConfig{
		MapSlots:    s.cfg.MapShare,
		ReduceSlots: s.cfg.ReduceShare,
		Pool:        s.pool,
		Policy:      policy,
	})
	close(t.done)
}
