package mpexec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"blmr/internal/core"
	"blmr/internal/exec"
	"blmr/internal/mr"
	"blmr/internal/shuffle"
)

// Coordinator drives one multi-process job execution. It listens for worker
// registrations, then schedules map and reduce tasks over the registered
// workers through the same exec.Scheduler the in-process engine uses. The
// reduce wave is dispatched after the map wave completes (the coordinator
// needs every sealed-run location before it can route a partition), so
// pipelined mode keeps its streaming reduce semantics on the workers but
// not cross-wave overlap — the trade the control plane makes for a
// stateless request/response protocol.
type Coordinator struct {
	ln net.Listener

	mu      sync.Mutex
	workers []*remoteWorker
	waves   map[int][]waveMeta // map task index -> sealed waves
}

// remoteWorker proxies one worker process as an exec.Worker. The control
// connection carries one request/response at a time under mu.
type remoteWorker struct {
	c    *Coordinator
	id   int
	conn net.Conn
	br   *bufio.Reader
	addr string // the worker's run-server

	mu sync.Mutex

	// per-worker byte aggregation (written under c.mu)
	spilledBytes    int64
	rawSpilledBytes int64
}

// Listen opens the coordinator's registration listener on an ephemeral
// loopback port.
func Listen() (*Coordinator, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("mpexec: listen: %w", err)
	}
	return &Coordinator{ln: ln, waves: make(map[int][]waveMeta)}, nil
}

// Addr returns the address workers dial (pass it to Serve / -worker-coord).
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// WaitWorkers blocks until n workers have registered or the timeout lapses.
func (c *Coordinator) WaitWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for len(c.workers) < n {
		if tl, ok := c.ln.(*net.TCPListener); ok {
			_ = tl.SetDeadline(deadline)
		}
		conn, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("mpexec: waiting for worker %d/%d: %w", len(c.workers)+1, n, err)
		}
		br := bufio.NewReader(conn)
		typ, payload, err := readMsg(br)
		if err != nil || typ != msgHello {
			_ = conn.Close()
			return fmt.Errorf("mpexec: bad registration (type %q): %v", typ, err)
		}
		d := &dec{buf: payload}
		addr := d.str()
		if d.err != nil {
			_ = conn.Close()
			return fmt.Errorf("mpexec: bad hello: %w", d.err)
		}
		c.workers = append(c.workers, &remoteWorker{
			c: c, id: len(c.workers), conn: conn, br: br, addr: addr,
		})
	}
	return nil
}

// Close severs every worker connection (after sending a best-effort bye)
// and stops the listener. Workers exit when their control connection ends.
func (c *Coordinator) Close() error {
	for _, w := range c.workers {
		w.mu.Lock()
		_ = writeMsg(w.conn, msgBye, nil)
		_ = w.conn.Close()
		w.mu.Unlock()
	}
	return c.ln.Close()
}

// Run executes job over input across the registered workers and returns the
// assembled result. opts follow mr.Options semantics; the transport is
// forcibly the TCP run exchange (the only one that crosses process
// boundaries). A worker that dies mid-task fails the job with an error —
// the scheduler drains cleanly, no goroutine outlives the call.
func (c *Coordinator) Run(job exec.Job, input []core.Record, opts exec.Options) (*mr.Result, error) {
	opts.Transport = shuffle.TCP
	opts.Normalize()
	if err := mr.Validate(job, opts); err != nil {
		return nil, err
	}
	if len(c.workers) == 0 {
		return nil, fmt.Errorf("mpexec: no workers registered")
	}
	start := time.Now()
	assignments := make([]exec.Assignment, len(c.workers))
	for i, w := range c.workers {
		assignments[i] = exec.Assignment{W: w, MapSlots: 1, ReduceSlots: 1}
	}
	maps := exec.SplitMaps(input, opts.Mappers)

	// Map wave. The reduce wave needs the full sealed-run routing table, so
	// the phases are scheduled back to back.
	mapSched := exec.Scheduler{Workers: assignments}
	mapSum, err := mapSched.Run(maps, nil)
	if err != nil {
		return nil, fmt.Errorf("mpexec: job %q: %w", job.Name, err)
	}

	redSched := exec.Scheduler{Workers: assignments}
	redSum, err := redSched.Run(nil, exec.ReduceTasks(opts.Reducers))
	if err != nil {
		return nil, fmt.Errorf("mpexec: job %q: %w", job.Name, err)
	}

	mapSum.Reduces = redSum.Reduces
	res := mr.Assemble(mapSum)
	for _, w := range c.workers {
		res.SpilledBytes += w.spilledBytes
		res.RawSpillBytes += w.rawSpilledBytes
	}
	res.CompressedSpillBytes = res.SpilledBytes
	res.Wall = time.Since(start)
	return res, nil
}

// segmentsFor routes partition r: every completed map task's waves in (map
// task, publish order) order — the ordering whose stable merge reproduces
// the single-process engine byte for byte.
func (c *Coordinator) segmentsFor(r, nMaps int) []shuffle.Segment {
	c.mu.Lock()
	defer c.mu.Unlock()
	var segs []shuffle.Segment
	for m := 0; m < nMaps; m++ {
		for _, w := range c.waves[m] {
			sp := w.spans[r]
			if sp.N == 0 {
				continue
			}
			segs = append(segs, shuffle.Segment{
				Addr: w.addr, FileID: w.fileID, Off: sp.Off, N: sp.N, Comp: w.comp,
			})
		}
	}
	return segs
}

// String implements exec.Worker.
func (w *remoteWorker) String() string { return fmt.Sprintf("worker-%d@%s", w.id, w.addr) }

// call sends one request frame and reads the worker's reply, serializing
// use of the control connection.
func (w *remoteWorker) call(typ byte, payload []byte) (byte, []byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := writeMsg(w.conn, typ, payload); err != nil {
		return 0, nil, fmt.Errorf("send to %s: %w", w, err)
	}
	rtyp, rpayload, err := readMsg(w.br)
	if err != nil {
		// A dead worker (killed mid-task) surfaces here as EOF/reset.
		return 0, nil, fmt.Errorf("worker %s died: %w", w, err)
	}
	if rtyp == msgError {
		d := &dec{buf: rpayload}
		return 0, nil, fmt.Errorf("%s: %s", w, d.str())
	}
	return rtyp, rpayload, nil
}

// RunMap implements exec.Worker: ship the split, collect sealed-run
// metadata.
func (w *remoteWorker) RunMap(t exec.MapTask) (exec.MapStats, error) {
	b := binary.AppendUvarint(nil, uint64(t.Index))
	b = putRecords(b, t.Split)
	rtyp, payload, err := w.call(msgMapTask, b)
	if err != nil {
		return exec.MapStats{}, err
	}
	if rtyp != msgMapDone {
		return exec.MapStats{}, fmt.Errorf("%s: unexpected reply %q to map task", w, rtyp)
	}
	md, err := decodeMapDone(payload, w.addr)
	if err != nil {
		return exec.MapStats{}, fmt.Errorf("%s: %w", w, err)
	}
	if md.index != t.Index {
		return exec.MapStats{}, fmt.Errorf("%s: map reply for task %d, want %d", w, md.index, t.Index)
	}
	w.c.mu.Lock()
	w.c.waves[t.Index] = md.waves
	w.spilledBytes += md.spilledBytes
	w.rawSpilledBytes += md.rawSpilledBytes
	w.c.mu.Unlock()
	return exec.MapStats{ShuffleRecords: md.shuffleRecords, Spills: md.spills}, nil
}

// RunReduce implements exec.Worker: ship the partition's routing table,
// collect output records.
func (w *remoteWorker) RunReduce(t exec.ReduceTask) (exec.ReduceResult, error) {
	segs := w.c.segmentsFor(t.Partition, w.c.mapCount())
	rtyp, payload, err := w.call(msgReduceTask, encodeReduceTask(t.Partition, segs))
	if err != nil {
		return exec.ReduceResult{}, err
	}
	if rtyp != msgReduceDone {
		return exec.ReduceResult{}, fmt.Errorf("%s: unexpected reply %q to reduce task", w, rtyp)
	}
	d := &dec{buf: payload}
	partition := int(d.uvarint())
	res := exec.ReduceResult{
		Spills:           int(d.uvarint()),
		PeakPartialBytes: int64(d.uvarint()),
		MergePasses:      int(d.uvarint()),
	}
	spilledBytes := int64(d.uvarint())
	rawSpilledBytes := int64(d.uvarint())
	res.FetchBytes = int64(d.uvarint())
	res.Output = d.records()
	if d.err != nil {
		return exec.ReduceResult{}, fmt.Errorf("%s: %w", w, d.err)
	}
	if partition != t.Partition {
		return exec.ReduceResult{}, fmt.Errorf("%s: reduce reply for partition %d, want %d", w, partition, t.Partition)
	}
	w.c.mu.Lock()
	w.spilledBytes += spilledBytes
	w.rawSpilledBytes += rawSpilledBytes
	w.c.mu.Unlock()
	return res, nil
}

// mapCount returns how many map tasks have published waves.
func (c *Coordinator) mapCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for m := range c.waves {
		if m+1 > n {
			n = m + 1
		}
	}
	return n
}
